// lrt-report: render lrt.report/1 from a run's artifacts and gate on
// regressions.
//
//   lrt-report [--trace TRACE.json] [--bench BENCH_x.json]
//              [--baseline BENCH_x.json] [--gate METRIC:PCT]...
//              [--out-json PATH] [--out-md PATH] [--quiet]
//
// Ingests a Chrome trace (as written under LRT_TRACE) and/or lrt.bench/1
// files, prints the markdown report to stdout (unless --quiet), and
// optionally writes the JSON/markdown artifacts. With --baseline and at
// least one --gate, compares every record label present in both files:
// exit 0 = all gates pass, 1 = a gated metric regressed past its
// allowance, 2 = a gate references a metric/label absent from the
// matched records (typo or schema drift). See docs/OBSERVABILITY.md §6.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/report.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: lrt-report [--trace TRACE.json] [--bench BENCH.json]\n"
      "                  [--baseline BENCH.json] [--gate METRIC:PCT]...\n"
      "                  [--out-json PATH] [--out-md PATH] [--quiet]\n");
  return 2;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool load_json(const std::string& path, lrt::obs::json::Value* out) {
  std::string text;
  if (!read_file(path, &text)) {
    std::fprintf(stderr, "lrt-report: cannot read '%s'\n", path.c_str());
    return false;
  }
  try {
    *out = lrt::obs::json::parse(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lrt-report: '%s': %s\n", path.c_str(), e.what());
    return false;
  }
  return true;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "lrt-report: cannot write '%s'\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string bench_path;
  std::string baseline_path;
  std::string out_json_path;
  std::string out_md_path;
  std::vector<lrt::obs::GateSpec> gates;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string* dst) {
      if (i + 1 >= argc) return false;
      *dst = argv[++i];
      return true;
    };
    if (arg == "--trace") {
      if (!next(&trace_path)) return usage();
    } else if (arg == "--bench") {
      if (!next(&bench_path)) return usage();
    } else if (arg == "--baseline") {
      if (!next(&baseline_path)) return usage();
    } else if (arg == "--gate") {
      std::string spec_text;
      if (!next(&spec_text)) return usage();
      lrt::obs::GateSpec spec;
      if (!lrt::obs::parse_gate(spec_text, spec)) {
        std::fprintf(stderr, "lrt-report: bad gate '%s' (want METRIC:PCT)\n",
                     spec_text.c_str());
        return 2;
      }
      gates.push_back(std::move(spec));
    } else if (arg == "--out-json") {
      if (!next(&out_json_path)) return usage();
    } else if (arg == "--out-md") {
      if (!next(&out_md_path)) return usage();
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return usage();
    }
  }
  if (trace_path.empty() && bench_path.empty() && baseline_path.empty()) {
    return usage();
  }
  if (!gates.empty() && baseline_path.empty()) {
    std::fprintf(stderr, "lrt-report: --gate requires --baseline\n");
    return 2;
  }

  lrt::obs::PerfReport report;
  lrt::obs::json::Value doc;
  if (!trace_path.empty()) {
    if (!load_json(trace_path, &doc)) return 2;
    report.add_trace(doc);
  }
  if (!bench_path.empty()) {
    if (!load_json(bench_path, &doc)) return 2;
    if (!report.add_bench(doc)) {
      std::fprintf(stderr, "lrt-report: '%s' is not an lrt.bench/1 file\n",
                   bench_path.c_str());
      return 2;
    }
  }
  if (!baseline_path.empty()) {
    if (!load_json(baseline_path, &doc)) return 2;
    if (!report.add_baseline(doc)) {
      std::fprintf(stderr, "lrt-report: '%s' is not an lrt.bench/1 file\n",
                   baseline_path.c_str());
      return 2;
    }
  }
  for (const lrt::obs::GateSpec& g : gates) report.add_gate(g);
  report.run_gates();

  const std::string markdown = report.to_markdown();
  if (!quiet) std::fputs(markdown.c_str(), stdout);
  if (!out_json_path.empty() &&
      !write_file(out_json_path, lrt::obs::json::dump(report.to_json()))) {
    return 2;
  }
  if (!out_md_path.empty() && !write_file(out_md_path, markdown)) return 2;

  return lrt::obs::gate_exit_code(report.gate_results());
}
