#!/usr/bin/env bash
# Bench-regression driver (docs/PERFORMANCE.md): builds the bench
# binaries, runs the kernel and paper-figure benches, and validates
# every emitted BENCH_*.json against the lrt.bench/1 schema.
#
# Full mode (default) regenerates the committed snapshots: reports land
# at the repo root and are mirrored into bench/results/, the tracked
# performance trajectory. Smoke mode (--smoke, the CI bench-smoke
# stage) runs a seconds-long subset into a scratch directory so the
# committed snapshots are never clobbered by a CI box's timings.
#
# Usage: tools/bench.sh [--smoke] [--build-dir DIR]
set -eu
cd "$(dirname "$0")/.."

smoke=0
build_dir=build
while [ "$#" -gt 0 ]; do
  case "$1" in
    --smoke) smoke=1 ;;
    --build-dir) shift; build_dir="$1" ;;
    *) echo "usage: tools/bench.sh [--smoke] [--build-dir DIR]" >&2; exit 2 ;;
  esac
  shift
done

jobs="$(nproc 2>/dev/null || echo 2)"

echo "=== [bench] build ($build_dir) ==="
if [ ! -f "$build_dir/CMakeCache.txt" ]; then
  cmake -B "$build_dir" -S .
fi
cmake --build "$build_dir" -j "$jobs" --target \
  bench_micro_substrates bench_fig8_breakdown bench_table3_point_selection \
  bench_analyze validate_bench lrt-report

if [ "$smoke" -eq 1 ]; then
  out_dir="$build_dir/bench-smoke"
  rm -rf "$out_dir"
  mkdir -p "$out_dir"
  echo "=== [bench] micro substrates (smoke, --compare) ==="
  LRT_BENCH_DIR="$out_dir" \
    "./$build_dir/bench/bench_micro_substrates" --smoke --compare
  echo "=== [bench] analyzer self-bench (3 reps, gated at 30 s median) ==="
  # A full analyze_repo run takes well under a second; the generous gate
  # only exists to catch a complexity blowup in the lexer, call graph,
  # or pass layer, not machine-to-machine jitter.
  LRT_BENCH_DIR="$out_dir" \
    "./$build_dir/bench/bench_analyze" --reps 3 --max-ms 30000
  echo "=== [bench] fig8 comm-budget gate (<= 432 collective calls at 8 ranks) ==="
  # Collective call counts are deterministic (unlike timings), so the
  # budget — reduce + bcast + allreduce invocations of the fused
  # 8-rank driver, 4x under the pre-fusion schedule's 1728 — is safe to
  # gate in CI. A regression here means someone reintroduced a
  # per-block reduction or split a fused round.
  LRT_BENCH_DIR="$out_dir" \
    "./$build_dir/bench/bench_fig8_breakdown" --smoke \
    --gate-max-collective-calls 432
  echo "=== [bench] validate lrt.bench/1 schema ==="
  "./$build_dir/bench/validate_bench" "$out_dir"/BENCH_*.json
  echo "=== [bench] lrt-report regression gate vs bench/results/BENCH_fig8.json ==="
  # Gate on collective *call counts*, not timings: the fused driver's
  # schedule is deterministic, so any growth over the committed snapshot
  # is a real regression, while wall-clock gates would flake across CI
  # boxes. 0 = no regression allowed.
  "./$build_dir/tools/lrt-report" --quiet \
    --bench "$out_dir/BENCH_fig8.json" \
    --baseline bench/results/BENCH_fig8.json \
    --gate comm.allreduce.calls:0 \
    --gate comm.alltoallv.calls:0 \
    --gate comm.reduce.calls:0 \
    --gate comm.bcast.calls:0 \
    --out-json "$out_dir/report.json" \
    --out-md "$out_dir/report.md"
  echo "bench: smoke passed ($out_dir; report at $out_dir/report.{json,md})"
  exit 0
fi

echo "=== [bench] micro substrates (--compare) ==="
LRT_BENCH_DIR="$PWD" "./$build_dir/bench/bench_micro_substrates" --compare
echo "=== [bench] fig8 breakdown ==="
LRT_BENCH_DIR="$PWD" "./$build_dir/bench/bench_fig8_breakdown"
echo "=== [bench] table3 point selection ==="
LRT_BENCH_DIR="$PWD" "./$build_dir/bench/bench_table3_point_selection"

echo "=== [bench] validate lrt.bench/1 schema ==="
"./$build_dir/bench/validate_bench" \
  BENCH_micro.json BENCH_fig8.json BENCH_table3.json

cp BENCH_micro.json BENCH_fig8.json BENCH_table3.json bench/results/
echo "bench: reports written to repo root and bench/results/"
