// lrt-analyze: the project-specific static gate.
//
//   lrt-analyze [check] [--repo DIR] [--json PATH] [--sarif PATH]
//               [--baseline FILE] [--pass NAME]... [--jobs N] [--verbose]
//       Runs every pass (or the selected ones) over src/, tests/, bench/,
//       examples/ and tools/*.sh. Exit 0 when no *new* findings remain
//       after inline suppressions and the baseline; 1 otherwise. The
//       per-TU lex and call-graph stages run on N OpenMP threads
//       (default: the OpenMP default team size); findings are
//       deterministic regardless of N.
//
//   lrt-analyze gen-phases [--repo DIR] [--write]
//       Regenerates src/obs/phase_registry.hpp from src/obs/phases.def
//       (to stdout without --write).
//
//   lrt-analyze gen-counters [--repo DIR] [--write]
//       Same for src/obs/counter_registry.hpp from src/obs/counters.def.
//
//   lrt-analyze list-passes
//
// This binary is the primary static gate run by tools/lint.sh; see
// docs/STATIC_ANALYSIS.md for the pass catalogue and workflow.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analyze/analyzer.hpp"
#include "analyze/passes.hpp"
#include "analyze/registry_gen.hpp"
#include "analyze/sarif.hpp"
#include "common/error.hpp"
#include "obs/json.hpp"

namespace {

namespace fs = std::filesystem;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [check] [--repo DIR] [--json PATH] [--sarif PATH]\n"
      "          [--baseline FILE] [--pass NAME]... [--jobs N] [--verbose]\n"
      "       %s gen-phases [--repo DIR] [--write]\n"
      "       %s gen-counters [--repo DIR] [--write]\n"
      "       %s list-passes\n",
      argv0, argv0, argv0, argv0);
  return 2;
}

/// Ascends from `start` to the first directory that looks like the repo
/// root (has both src/ and tools/). Returns empty when not found.
std::string find_root(const fs::path& start) {
  fs::path dir = fs::absolute(start);
  while (true) {
    if (fs::is_directory(dir / "src") && fs::is_directory(dir / "tools")) {
      return dir.string();
    }
    if (!dir.has_parent_path() || dir.parent_path() == dir) return {};
    dir = dir.parent_path();
  }
}

/// Shared driver for gen-phases and gen-counters: regenerate a registry
/// header from its def file, to stdout or in place with --write.
int run_gen_registry(const std::string& root, bool write, const char* def_rel,
                     const char* header_rel, const char* what,
                     std::string (*generate)(
                         const std::vector<lrt::analyze::PhaseDef>&)) {
  const std::string def_path = root + "/" + def_rel;
  const std::vector<lrt::analyze::PhaseDef> defs =
      lrt::analyze::parse_phases_def_entries(lrt::analyze::read_file(def_path));
  const std::string header = generate(defs);
  if (!write) {
    std::fputs(header.c_str(), stdout);
    return 0;
  }
  const std::string out_path = root + "/" + header_rel;
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "lrt-analyze: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << header;
  std::fprintf(stderr, "lrt-analyze: wrote %s (%zu %s)\n", out_path.c_str(),
               defs.size(), what);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string repo;
  std::string json_path;
  std::string sarif_path;
  std::string baseline_path;
  std::vector<std::string> selected;
  int jobs = 0;
  bool verbose = false;
  bool gen_phases = false;
  bool gen_counters = false;
  bool write = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "check") {
      // default mode; accepted for readability in scripts
    } else if (arg == "gen-phases") {
      gen_phases = true;
    } else if (arg == "gen-counters") {
      gen_counters = true;
    } else if (arg == "list-passes") {
      for (const std::string& name : lrt::analyze::all_pass_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (arg == "--repo") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      repo = v;
    } else if (arg == "--json") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      json_path = v;
    } else if (arg == "--sarif") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      sarif_path = v;
    } else if (arg == "--baseline") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      baseline_path = v;
    } else if (arg == "--pass") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      selected.emplace_back(v);
    } else if (arg == "--jobs" || arg == "-j") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      try {
        jobs = std::stoi(v);
      } catch (const std::exception&) {
        std::fprintf(stderr, "lrt-analyze: --jobs expects an integer\n");
        return usage(argv[0]);
      }
      if (jobs < 0) {
        std::fprintf(stderr, "lrt-analyze: --jobs expects N >= 0\n");
        return usage(argv[0]);
      }
    } else if (arg == "--write") {
      write = true;
    } else if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else {
      std::fprintf(stderr, "lrt-analyze: unknown argument '%s'\n",
                   arg.c_str());
      return usage(argv[0]);
    }
  }

  try {
    const std::string root =
        repo.empty() ? find_root(fs::current_path()) : find_root(repo);
    if (root.empty()) {
      std::fprintf(stderr,
                   "lrt-analyze: cannot locate repo root (need src/ and "
                   "tools/); pass --repo DIR\n");
      return 2;
    }

    if (gen_phases) {
      return run_gen_registry(root, write, "src/obs/phases.def",
                              "src/obs/phase_registry.hpp", "phases",
                              &lrt::analyze::generate_phase_registry_header);
    }
    if (gen_counters) {
      return run_gen_registry(root, write, "src/obs/counters.def",
                              "src/obs/counter_registry.hpp", "counters",
                              &lrt::analyze::generate_counter_registry_header);
    }

    lrt::analyze::Config config;
    config.root = root;
    config.jobs = jobs;
    for (const std::string& name : selected) {
      const auto& names = lrt::analyze::all_pass_names();
      if (std::find(names.begin(), names.end(), name) == names.end()) {
        std::fprintf(stderr, "lrt-analyze: unknown pass '%s'\n",
                     name.c_str());
        return 2;
      }
      config.passes.insert(name);
    }

    if (baseline_path.empty()) {
      const std::string committed = root + "/tools/lrt-analyze.baseline";
      if (fs::is_regular_file(committed)) baseline_path = committed;
    }
    if (!baseline_path.empty()) {
      lrt::analyze::load_baseline(lrt::analyze::read_file(baseline_path),
                                  &config);
    }

    const std::string def_path = root + "/src/obs/phases.def";
    if (fs::is_regular_file(def_path)) {
      config.phase_registry =
          lrt::analyze::parse_phases_def(lrt::analyze::read_file(def_path));
    }
    const std::string counters_def = root + "/src/obs/counters.def";
    if (fs::is_regular_file(counters_def)) {
      config.counter_registry = lrt::analyze::parse_phases_def(
          lrt::analyze::read_file(counters_def));
    }
    const std::string src_cmake = root + "/src/CMakeLists.txt";
    if (fs::is_regular_file(src_cmake)) {
      lrt::analyze::load_hot_tus(lrt::analyze::read_file(src_cmake), &config);
    }

    const lrt::analyze::Report report = lrt::analyze::analyze_repo(config);

    if (!json_path.empty()) {
      std::ofstream out(json_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "lrt-analyze: cannot write %s\n",
                     json_path.c_str());
        return 2;
      }
      out << lrt::obs::json::dump(
                 lrt::analyze::report_to_json(config, report))
          << "\n";
    }
    if (!sarif_path.empty()) {
      std::ofstream out(sarif_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "lrt-analyze: cannot write %s\n",
                     sarif_path.c_str());
        return 2;
      }
      out << lrt::obs::json::dump(
                 lrt::analyze::report_to_sarif(config, report))
          << "\n";
    }

    const std::string text = lrt::analyze::report_to_text(report, verbose);
    std::fputs(text.c_str(), report.clean() ? stdout : stderr);
    return report.clean() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lrt-analyze: %s\n", e.what());
    return 2;
  }
}
