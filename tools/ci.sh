#!/usr/bin/env bash
# CI gate: lint, then three build flavors, each running the full ctest
# suite. Mirrors what a hosted workflow would run; kept as a script so it
# works in any container with cmake + g++.
#
#   plain       -Werror build; ctest twice — once bare, once with the
#               MUST-style verifier ambient (LRT_CHECK=1) to prove the
#               production collective patterns run clean under checking.
#   asan+ubsan  -fsanitize=address,undefined, halt on first report.
#   tsan        -fsanitize=thread. OpenMP is disabled in this flavor:
#               libgomp is not TSan-instrumented and reports false
#               positives on its internal barriers.
#   bench       bench-smoke: tools/bench.sh --smoke in the plain tree —
#               seconds-long kernel benches with --compare correctness
#               cross-checks, then lrt.bench/1 schema validation of the
#               emitted reports (see docs/PERFORMANCE.md).
#   fault       full ctest with deterministic fault injection ambient
#               (fixed-seed LRT_FAULT: transient send failures + delays)
#               and the verifier on — injected faults must heal
#               transparently with zero result or traffic divergence
#               (docs/RESILIENCE.md). Also repeated under ASan+UBSan in
#               that flavor's tree when it exists.
#
# Usage: tools/ci.sh [plain|asan|tsan|lint|bench|fault]...   (default: all)
set -eu
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"

run_flavor() {
  local name="$1" build_dir="$2"
  shift 2
  echo "=== [$name] configure + build ==="
  cmake -B "$build_dir" -S . -DLRT_WERROR=ON "$@"
  cmake --build "$build_dir" -j "$jobs"
  echo "=== [$name] ctest ==="
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
}

# Fixed-seed injection spec for the fault flavor: roughly one transient
# failure and one delay per 500 sends, reproducible run to run. The
# verifier rides along so any fault-induced divergence in the collective
# call sequence fails loudly instead of hanging.
fault_spec="seed=2026,fail=0.002,delay=0.002,delay_us=20"

do_lint=0 do_plain=0 do_asan=0 do_tsan=0 do_bench=0 do_fault=0
if [ "$#" -eq 0 ]; then
  do_lint=1 do_plain=1 do_asan=1 do_tsan=1 do_bench=1 do_fault=1
else
  for arg in "$@"; do
    case "$arg" in
      lint) do_lint=1 ;;
      plain) do_plain=1 ;;
      asan) do_asan=1 ;;
      tsan) do_tsan=1 ;;
      bench) do_bench=1 ;;
      fault) do_fault=1 ;;
      *) echo "unknown flavor: $arg" >&2; exit 2 ;;
    esac
  done
fi

if [ "$do_lint" -eq 1 ]; then
  # The lint stage shares the plain flavor's tree (build-ci): one
  # configure covers lrt-analyze, compile_commands.json for clang-tidy,
  # and the subsequent plain build — no extra tree just for lint.
  echo "=== [lint] build lrt-analyze (build-ci) ==="
  cmake -B build-ci -S . -DLRT_WERROR=ON -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  cmake --build build-ci --target lrt-analyze -j "$jobs"
  echo "=== [lint] registry self-checks ==="
  # The committed headers must match their generators byte-for-byte
  # (also passes inside lrt-analyze; run explicitly so a drift fails
  # loudly even if someone baselines the pass).
  ./build-ci/tools/lrt-analyze gen-phases | cmp - src/obs/phase_registry.hpp \
    || { echo "ci: src/obs/phase_registry.hpp out of sync with" \
              "src/obs/phases.def (run lrt-analyze gen-phases --write)" >&2; \
         exit 1; }
  ./build-ci/tools/lrt-analyze gen-counters \
    | cmp - src/obs/counter_registry.hpp \
    || { echo "ci: src/obs/counter_registry.hpp out of sync with" \
              "src/obs/counters.def (run lrt-analyze gen-counters --write)" \
              >&2; \
         exit 1; }
  echo "=== [lint] tools/lint.sh ==="
  LRT_LINT_BUILD_DIR=build-ci bash tools/lint.sh
  echo "=== [lint] publish analyzer reports as CI artifacts ==="
  # lint.sh wrote both reports next to the binary's tree; artifacts/ is
  # the directory a hosted workflow would upload.
  mkdir -p build-ci/artifacts
  cp build-ci/lrt-analyze.json build-ci/lrt-analyze.sarif build-ci/artifacts/
fi

if [ "$do_plain" -eq 1 ]; then
  run_flavor plain build-ci
  echo "=== [plain] ctest with LRT_CHECK=1 (runtime verifier ambient) ==="
  LRT_CHECK=1 LRT_CHECK_STALL_SECONDS=120 \
    ctest --test-dir build-ci --output-on-failure -j "$jobs"
  echo "=== [plain] disabled-span overhead gate ==="
  ./build-ci/bench/bench_obs_overhead --max-ns 20
  echo "=== [plain] trace-enabled ctest + Chrome-JSON validation ==="
  # Parallel on purpose: each test process merges its spans into the
  # shared trace file at exit under flock(2), so concurrent writers
  # serialize instead of clobbering each other (docs/OBSERVABILITY.md §2).
  rm -f build-ci/ctest.trace.json
  LRT_TRACE="$PWD/build-ci/ctest.trace.json" \
    ctest --test-dir build-ci -R tddft_dist --output-on-failure -j "$jobs"
  ./build-ci/bench/validate_trace build-ci/ctest.trace.json \
    --require-phase kmeans --require-phase fft --require-phase mpi \
    --require-phase gemm --require-phase diag --require-flow
  echo "=== [plain] critical-path report from the merged trace ==="
  mkdir -p build-ci/artifacts
  ./build-ci/tools/lrt-report --quiet \
    --trace build-ci/ctest.trace.json \
    --out-json build-ci/artifacts/trace-report.json \
    --out-md build-ci/artifacts/trace-report.md
fi

if [ "$do_bench" -eq 1 ]; then
  # bench-smoke shares the plain flavor's tree (build-ci) — the smoke
  # subset finishes in seconds and its reports stay inside the build
  # tree, so the committed bench/results/ snapshots are untouched.
  echo "=== [bench] bench-smoke (tools/bench.sh --smoke) ==="
  bash tools/bench.sh --smoke --build-dir build-ci
  if [ -f build-ci/lrt-analyze.json ]; then
    echo "=== [bench] lrt.analyze/1 schema validation ==="
    # validate_bench dispatches on the schema field, so the analyzer's
    # machine-readable report goes through the same validator as the
    # bench reports.
    ./build-ci/bench/validate_bench build-ci/lrt-analyze.json
  fi
  echo "=== [bench] publish regression report as CI artifact ==="
  mkdir -p build-ci/artifacts
  cp build-ci/bench-smoke/report.json build-ci/bench-smoke/report.md \
    build-ci/artifacts/
fi

if [ "$do_fault" -eq 1 ]; then
  # Shares the plain flavor's tree; configure+build is a no-op when the
  # plain flavor already ran in this invocation.
  echo "=== [fault] configure + build (build-ci) ==="
  cmake -B build-ci -S . -DLRT_WERROR=ON
  cmake --build build-ci -j "$jobs"
  echo "=== [fault] ctest with LRT_FAULT + LRT_CHECK=1 ==="
  LRT_FAULT="$fault_spec" LRT_CHECK=1 LRT_CHECK_STALL_SECONDS=120 \
    ctest --test-dir build-ci --output-on-failure -j "$jobs"
fi

if [ "$do_asan" -eq 1 ]; then
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    run_flavor asan+ubsan build-asan "-DLRT_SANITIZE=address;undefined"
  echo "=== [asan+ubsan] ctest with LRT_FAULT (injection under sanitizers) ==="
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  LRT_FAULT="$fault_spec" \
    ctest --test-dir build-asan --output-on-failure -j "$jobs"
fi

if [ "$do_tsan" -eq 1 ]; then
  TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1" \
    run_flavor tsan build-tsan -DLRT_SANITIZE=thread \
      -DCMAKE_DISABLE_FIND_PACKAGE_OpenMP=ON
fi

echo "CI: all requested flavors passed"
