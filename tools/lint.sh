#!/usr/bin/env bash
# Static gate: include hygiene, banned concurrency patterns, and (when the
# binary exists) clang-tidy over src/. Run from anywhere; exits non-zero
# on any finding. CI runs this before the build matrix (tools/ci.sh).
set -u
cd "$(dirname "$0")/.."

fail=0
note() { printf '%s\n' "$*"; }
finding() { printf 'lint: %s\n' "$*"; fail=1; }

# --- include hygiene ---------------------------------------------------------
# Library headers must be included by their src/-relative path, never via
# "../"; relative parent includes break once a TU moves.
if grep -rn --include='*.hpp' --include='*.cpp' '#include "\.\./' src tests bench examples; then
  finding 'parent-relative #include (use src/-relative paths)'
fi

# Headers must be self-contained: every .hpp starts with #pragma once.
for h in $(find src -name '*.hpp'); do
  if ! head -n 40 "$h" | grep -q '#pragma once'; then
    finding "$h: missing #pragma once"
  fi
done

# --- banned patterns in the parallel layer -----------------------------------
# Rank code must not create ad-hoc threads or roll its own synchronization:
# all cross-rank traffic goes through Comm, and the only sanctioned thread
# outside the runtime is the verifier watchdog (see docs/CONCURRENCY.md).
if grep -rn --include='*.cpp' --include='*.hpp' 'std::thread' src \
    | grep -v 'src/par/runtime' | grep -v 'src/par/check'; then
  finding 'std::thread outside par/runtime and par/check (route work through par::run)'
fi

# volatile is never a synchronization primitive; atomics or mutexes only.
if grep -rn --include='*.cpp' --include='*.hpp' -w 'volatile' src; then
  finding 'volatile in library code (use std::atomic or a mutex)'
fi

# sleep-based synchronization masks ordering bugs; the runtime provides
# condition variables and the verifier provides the watchdog.
if grep -rn --include='*.cpp' --include='*.hpp' 'sleep_for\|sleep_until' src; then
  finding 'sleep-based waiting in library code (use condition variables)'
fi

# Naked new/delete: the codebase is RAII throughout. Comments are
# stripped first so prose about "a new row" doesn't trip the gate.
for f in $(find src \( -name '*.cpp' -o -name '*.hpp' \)); do
  if sed 's@//.*@@' "$f" \
      | grep -nE '\bnew +[A-Za-z_][A-Za-z0-9_:<,> ]*[({[]|\bdelete +[A-Za-z_*([]|\bdelete\[\]' \
      >/dev/null; then
    finding "$f: naked new/delete (use containers or unique_ptr)"
  fi
done

# --- clang-tidy (optional: the container may not ship it) --------------------
if command -v clang-tidy >/dev/null 2>&1; then
  build_dir="${LRT_LINT_BUILD_DIR:-build}"
  if [ ! -f "$build_dir/compile_commands.json" ]; then
    cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  note "running clang-tidy over src/ ..."
  if ! find src -name '*.cpp' -print0 \
      | xargs -0 clang-tidy -p "$build_dir" --quiet; then
    finding 'clang-tidy reported findings'
  fi
else
  note "clang-tidy not found; skipping (pattern checks still gate)"
fi

if [ "$fail" -ne 0 ]; then
  note 'lint FAILED'
  exit 1
fi
note 'lint OK'
