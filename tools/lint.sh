#!/usr/bin/env bash
# Static gate. Primary: the token-aware lrt-analyze binary (layer DAG,
# collective divergence, phase registry, migrated pattern gates — see
# docs/STATIC_ANALYSIS.md). Secondary: clang-tidy, when installed. When
# neither a built lrt-analyze nor a compiler is available, a minimal
# correctly-quoted shell fallback keeps the cheapest checks alive.
#
# Environment:
#   LRT_LINT_BUILD_DIR  build tree to (re)use for lrt-analyze and
#                       compile_commands.json (default: build)
#   LRT_ANALYZE         explicit path to an lrt-analyze binary
#   LRT_ANALYZE_JOBS    worker threads for the analyzer's per-TU stages
#                       (default 0 = OpenMP default team size; findings
#                       are deterministic at any job count)
#
# Run from anywhere; exits non-zero on any finding.
set -u
cd "$(dirname "$0")/.."

fail=0
note() { printf '%s\n' "$*"; }
finding() { printf 'lint: %s\n' "$*"; fail=1; }

build_dir="${LRT_LINT_BUILD_DIR:-build}"

# --- locate or build the analyzer --------------------------------------------
analyze_bin=""
for cand in "${LRT_ANALYZE:-}" \
            "$build_dir/tools/lrt-analyze" \
            build/tools/lrt-analyze \
            build-ci/tools/lrt-analyze; do
  if [ -n "$cand" ] && [ -x "$cand" ]; then
    analyze_bin="$cand"
    break
  fi
done
if [ -z "$analyze_bin" ] && command -v cmake >/dev/null 2>&1; then
  note "lint: building lrt-analyze in $build_dir ..."
  if cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null &&
     cmake --build "$build_dir" --target lrt-analyze -j >/dev/null; then
    analyze_bin="$build_dir/tools/lrt-analyze"
  else
    note "lint: lrt-analyze build failed; falling back to shell checks"
  fi
fi

# --- primary gate: lrt-analyze ------------------------------------------------
if [ -n "$analyze_bin" ]; then
  # The machine-readable reports land in the tree the binary came from
  # (which exists by construction, unlike $build_dir). The SARIF twin of
  # the lrt.analyze/1 report is what external CI viewers ingest.
  report_dir="$(dirname "$(dirname "$analyze_bin")")"
  note "lint: running $analyze_bin ..."
  if ! "$analyze_bin" --repo . --jobs "${LRT_ANALYZE_JOBS:-0}" \
         --json "$report_dir/lrt-analyze.json" \
         --sarif "$report_dir/lrt-analyze.sarif"; then
    finding 'lrt-analyze reported new findings (see above)'
  fi
  # The committed baseline must stay empty: regressions are fixed or
  # suppressed inline with an explanatory comment, never grandfathered.
  if grep -Ev '^[[:space:]]*(#|$)' tools/lrt-analyze.baseline; then
    finding 'tools/lrt-analyze.baseline has entries (fix or allow() inline)'
  fi
else
  # Minimal fallback for containers without a toolchain. Token-blind by
  # construction (grep does not understand block comments or strings), so
  # only the checks that tolerate that run here; lrt-analyze is the
  # authority whenever it can be built. src/analyze is excluded: the
  # analyzer's own sources necessarily *name* every banned pattern.
  note "lint: lrt-analyze unavailable; running minimal shell fallback"

  if grep -rn --include='*.hpp' --include='*.cpp' \
       --exclude-dir=analyze_fixtures --exclude-dir=analyze \
       '#include "\.\./' src tests bench examples; then
    finding 'parent-relative #include (use src/-relative paths)'
  fi

  while IFS= read -r -d '' h; do
    if ! head -n 40 "$h" | grep -q '#pragma once'; then
      finding "$h: missing #pragma once"
    fi
  done < <(find src -name '*.hpp' -print0)

  if grep -rn --include='*.cpp' --include='*.hpp' --exclude-dir=analyze \
      'std::thread' src \
      | grep -v 'src/par/runtime' | grep -v 'src/par/check'; then
    finding 'std::thread outside par/runtime and par/check'
  fi
  if grep -rn --include='*.cpp' --include='*.hpp' --exclude-dir=analyze \
      -w 'volatile' src; then
    finding 'volatile in library code (use std::atomic or a mutex)'
  fi
  if grep -rn --include='*.cpp' --include='*.hpp' --exclude-dir=analyze \
      'sleep_for\|sleep_until' src; then
    finding 'sleep-based waiting in library code (use condition variables)'
  fi
  # Approximate comment stripping (line comments and single-line block
  # comments); multi-line block comments are only handled by lrt-analyze.
  while IFS= read -r -d '' f; do
    if sed -e 's@//.*@@' -e 's@/\*.*\*/@@' "$f" \
        | grep -nE '\bnew +[A-Za-z_][A-Za-z0-9_:<,> ]*[({[]|\bdelete +[A-Za-z_*([]|\bdelete\[\]' \
        >/dev/null; then
      finding "$f: naked new/delete (use containers or unique_ptr)"
    fi
  done < <(find src \( -name '*.cpp' -o -name '*.hpp' \) \
             -not -path 'src/analyze/*' -print0)
fi

# --- secondary gate: clang-tidy (optional) ------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f "$build_dir/compile_commands.json" ]; then
    cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  note "running clang-tidy over src/ ..."
  if ! find src -name '*.cpp' -print0 \
      | xargs -0 clang-tidy -p "$build_dir" --quiet; then
    finding 'clang-tidy reported findings'
  fi
else
  note "clang-tidy not found; skipping (lrt-analyze still gates)"
fi

if [ "$fail" -ne 0 ]; then
  note 'lint FAILED'
  exit 1
fi
note 'lint OK'
