// Bilayer-graphene application (MATBG analog of paper Fig 9).
//
// Computes ground-state DOS for two interlayer distances (D = 2.6 Å and
// 4.0 Å) and the excitation-energy DOS at the smaller distance, writing
// three CSV curves. The paper's observation — interlayer-coupling-induced
// states near the Fermi level at small D that vanish at large D, and a
// cluster of low-lying excitations — is reproduced in shape at patch scale
// (see DESIGN.md for the MATBG substitution).
//
//   ./matbg_dos [--nx 1] [--ny 1] [--ecut 6] [--out-prefix matbg]
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "io/cube.hpp"
#include "tddft/driver.hpp"
#include "tddft/spectrum.hpp"

using namespace lrt;

namespace {

dft::KohnShamResult run_scf(const grid::Structure& s, Real ecut) {
  dft::ScfOptions scf;
  scf.ecut = ecut;
  scf.num_conduction = 8;
  scf.smearing = 0.005;  // graphene-like systems are (semi)metallic
  scf.density_tolerance = 5e-5;
  scf.max_iterations = 60;
  return dft::solve_ground_state(s, scf);
}

void write_dos_csv(const std::string& path, const std::vector<Real>& grid_ev,
                   const std::vector<Real>& dos, const char* title) {
  Table t(title, {"energy_eV", "dos"});
  for (std::size_t i = 0; i < grid_ev.size(); ++i) {
    t.row().cell(grid_ev[i], 4).cell(dos[i], 6);
  }
  t.write_csv(path);
  std::printf("wrote %s (%zu rows)\n", path.c_str(), grid_ev.size());
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Bilayer graphene ground/excited DOS (Fig 9 analog)");
  cli.add("nx", "1", "graphene cells along x (per layer)")
      .add("ny", "1", "graphene cells along y")
      .add("ecut", "6.0", "kinetic cutoff (Hartree)")
      .add("vacuum", "5.0", "vacuum padding (Bohr)")
      .add("out-prefix", "matbg", "CSV output prefix");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  const Real d_small = 2.6 * units::kAngstromToBohr;
  const Real d_large = 4.0 * units::kAngstromToBohr;
  const Index nx = cli.get_index("nx");
  const Index ny = cli.get_index("ny");
  const Real vacuum = cli.get_real("vacuum");
  const std::string prefix = cli.get("out-prefix");

  // ---- ground-state DOS at both distances ---------------------------------
  std::vector<Real> fermi(2);
  for (int which = 0; which < 2; ++which) {
    const Real dz = which == 0 ? d_small : d_large;
    const grid::Structure s =
        grid::make_bilayer_graphene(nx, ny, dz, vacuum);
    std::printf("D = %.1f Angstrom: %td C atoms ... ",
                dz * units::kBohrToAngstrom, s.num_atoms());
    std::fflush(stdout);
    const dft::KohnShamResult ks = run_scf(s, cli.get_real("ecut"));
    std::printf("SCF %s (%td iters), EF = %.3f eV\n",
                ks.converged ? "ok" : "unconverged", ks.iterations,
                ks.fermi_level * units::kHartreeToEv);
    fermi[static_cast<std::size_t>(which)] = ks.fermi_level;

    // DOS relative to the Fermi level, in eV.
    std::vector<Real> ev;
    for (const Real e : ks.eigenvalues) {
      ev.push_back((e - ks.fermi_level) * units::kHartreeToEv);
    }
    const std::vector<Real> egrid = tddft::linspace(-8.0, 8.0, 321);
    const std::vector<Real> dos = tddft::gaussian_dos(ev, egrid, 0.25);
    write_dos_csv(prefix + (which == 0 ? "_dos_d2.6.csv" : "_dos_d4.0.csv"),
                  egrid, dos, "ground-state DOS (E - EF, eV)");

    // Volumetric density for VMD/VESTA (the isosurface insets of Fig 9).
    const std::string cube_path =
        prefix + (which == 0 ? "_density_d2.6.cube" : "_density_d4.0.cube");
    io::write_cube_file(cube_path, "bilayer graphene ground-state density",
                        ks.grid, s, ks.density);
    std::printf("wrote %s\n", cube_path.c_str());
  }

  // ---- excitation DOS at the small distance --------------------------------
  {
    const grid::Structure s =
        grid::make_bilayer_graphene(nx, ny, d_small, vacuum);
    const dft::KohnShamResult ks = run_scf(s, cli.get_real("ecut"));
    const Index nv_use = std::min<Index>(8, ks.num_occupied);
    const Index nc_use = std::min<Index>(
        6, ks.orbitals.cols() - ks.num_occupied);
    const tddft::CasidaProblem problem =
        tddft::make_problem_from_scf(ks, nv_use, nc_use);

    tddft::DriverOptions opts;
    opts.version = tddft::Version::kImplicit;
    opts.num_states = std::min<Index>(8, problem.ncv());
    const tddft::DriverResult r = tddft::solve_casida(problem, opts);

    std::vector<Real> ev;
    for (const Real e : r.energies) ev.push_back(e * units::kHartreeToEv);
    const std::vector<Real> egrid = tddft::linspace(0.0, 3.0, 151);
    const std::vector<Real> dos = tddft::gaussian_dos(ev, egrid, 0.1);
    write_dos_csv(prefix + "_excitation_dos_d2.6.csv", egrid, dos,
                  "excitation-energy DOS (eV)");
    std::printf("lowest excitation: %.3f eV\n", ev.front());
  }
  return 0;
}
