// Parallel driver demo: run the distributed LR-TDDFT solver on a chosen
// number of simulated ranks and print the paper-style phase breakdown
// (K-Means / FFT / MPI / GEMM, Fig 8 categories).
//
// Ranks are threads of the message-passing runtime (see DESIGN.md); on a
// single-core container the interesting output is the per-rank busy time
// and communication volume, not the wall clock.
//
//   ./parallel_scaling [--ranks 4] [--nv 10] [--nc 8] [--grid 12]
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "obs/obs.hpp"
#include "tddft/dist_driver.hpp"

using namespace lrt;

int main(int argc, char** argv) {
  CliParser cli("Distributed LR-TDDFT demo with phase breakdown");
  cli.add("ranks", "4", "simulated MPI ranks (threads)")
      .add("nv", "10", "valence orbitals")
      .add("nc", "8", "conduction orbitals")
      .add("grid", "12", "grid points per axis")
      .add("version", "implicit", "naive | implicit")
      .add("pipelined", "false", "use pipelined GEMM+Reduce (Fig 5)");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  const Index n = cli.get_index("grid");
  const grid::RealSpaceGrid g(grid::UnitCell::cubic(9.0), {n, n, n});
  dft::SyntheticOptions sopts;
  sopts.num_centers = 8;
  const dft::SyntheticOrbitals orbs = dft::make_synthetic_orbitals(
      g, cli.get_index("nv"), cli.get_index("nc"), sopts);
  const tddft::CasidaProblem problem =
      tddft::make_problem_from_synthetic(g, orbs);

  tddft::DistDriverOptions opts;
  opts.version = cli.get("version") == "naive" ? tddft::Version::kNaive
                                               : tddft::Version::kImplicit;
  opts.num_states = 3;
  opts.pipelined_reduce = cli.get_bool("pipelined");

  const int ranks = static_cast<int>(cli.get_index("ranks"));
  // Record spans so we can report per-rank load imbalance afterwards
  // (aggregated from the same trace LRT_TRACE would export).
  const bool was_enabled = obs::tracing_enabled();
  obs::set_tracing_enabled(true);
  obs::reset_trace();
  tddft::DistDriverStats stats;
  par::run(ranks, [&](par::Comm& comm) {
    stats = tddft::solve_casida_distributed(comm, problem, opts);
  });

  std::printf("version: %s on %d ranks\n", tddft::version_name(opts.version),
              ranks);
  std::printf("energies:");
  for (const Real e : stats.energies) std::printf("  %.6f", e);
  std::printf(" Ha\n\n");

  Table table("Per-phase wall time (max over ranks)",
              {"phase", "seconds"});
  for (const auto& [name, seconds] : stats.phases) {
    table.row().cell(name).cell(seconds, 4);
  }
  table.row().cell("TOTAL wall").cell(stats.wall_seconds, 4);
  table.row().cell("comm (blocked)").cell(stats.comm_seconds, 4);
  table.row().cell("busy (wall-comm)").cell(stats.busy_seconds, 4);
  table.print();

  // Per-rank imbalance from the span trace: for every phase, compare the
  // busiest rank against the mean (1.00 = perfectly balanced).
  std::printf("\n");
  Table imbalance("Per-rank load imbalance (from span trace)",
                  {"phase", "count", "ranks", "total [s]", "min [s]",
                   "max [s]", "mean [s]", "max/mean"});
  for (const obs::PhaseStats& s : obs::aggregate_phases()) {
    imbalance.row()
        .cell(s.name)
        .cell(static_cast<Index>(s.count))
        .cell(static_cast<Index>(s.ranks))
        .cell(s.total_seconds, 4)
        .cell(s.min_rank_seconds, 4)
        .cell(s.max_rank_seconds, 4)
        .cell(s.mean_rank_seconds, 4)
        .cell(s.imbalance, 2);
  }
  imbalance.print();
  if (!was_enabled) {
    obs::set_tracing_enabled(false);
  }
  return 0;
}
