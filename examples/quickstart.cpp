// Quickstart: solve one LR-TDDFT problem five ways.
//
// Generates a synthetic set of localized Kohn-Sham orbitals (no SCF —
// this keeps the example fast) and runs every optimization level of the
// paper's Table 4, printing the lowest excitation energies, timings and
// memory estimates side by side.
//
//   ./quickstart [--nv 8] [--nc 6] [--grid 12] [--states 3] [--nmu 0]
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "tddft/driver.hpp"

using namespace lrt;

int main(int argc, char** argv) {
  CliParser cli(
      "LR-TDDFT quickstart: all five optimization levels on one problem");
  cli.add("nv", "8", "number of valence orbitals")
      .add("nc", "6", "number of conduction orbitals")
      .add("grid", "12", "real-space grid points per axis")
      .add("states", "3", "excitation states to report")
      .add("nmu", "0", "ISDF interpolation points (0 = auto rule of thumb)");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  const Index n = cli.get_index("grid");
  const grid::RealSpaceGrid g(grid::UnitCell::cubic(8.0), {n, n, n});
  dft::SyntheticOptions sopts;
  sopts.num_centers = 8;
  const dft::SyntheticOrbitals orbs = dft::make_synthetic_orbitals(
      g, cli.get_index("nv"), cli.get_index("nc"), sopts);
  const tddft::CasidaProblem problem =
      tddft::make_problem_from_synthetic(g, orbs);

  std::printf("problem: Nr=%td  Nv=%td  Nc=%td  (pair space %td)\n\n",
              problem.nr(), problem.nv(), problem.nc(), problem.ncv());

  const tddft::Version versions[] = {
      tddft::Version::kNaive, tddft::Version::kQrcpIsdf,
      tddft::Version::kKmeansIsdf, tddft::Version::kKmeansIsdfLobpcg,
      tddft::Version::kImplicit};

  Table table("Lowest excitation energies (Hartree) by version",
              {"version", "E1", "E2", "E3", "time [s]", "memory est [MB]",
               "Nmu"});
  for (const tddft::Version v : versions) {
    tddft::DriverOptions opts;
    opts.version = v;
    opts.num_states = cli.get_index("states");
    opts.nmu = cli.get_index("nmu");
    const tddft::DriverResult r = tddft::solve_casida(problem, opts);
    table.row()
        .cell(tddft::version_name(v))
        .cell(r.energies[0], 6)
        .cell(r.energies.size() > 1 ? r.energies[1] : 0.0, 6)
        .cell(r.energies.size() > 2 ? r.energies[2] : 0.0, 6)
        .cell(r.seconds_total, 3)
        .cell(r.memory_bytes_estimate / 1e6, 2)
        .cell(r.nmu_used);
  }
  table.print();
  std::printf(
      "\nAll ISDF versions should agree with Naive to ~1%% — the low-rank\n"
      "error floor — while Implicit-Kmeans-ISDF-LOBPCG is fastest and\n"
      "smallest (paper Table 4, version 5).\n");
  return 0;
}
