// Full first-principles chain on one water molecule (paper Table 5 setup):
// plane-wave Kohn-Sham SCF in a vacuum box, then Casida LR-TDDFT with the
// naive explicit build and with the accelerated ISDF-LOBPCG version,
// comparing the lowest excitation energies.
//
//   ./water_casida [--box 16.0] [--ecut 8] [--states 3]
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "tddft/driver.hpp"

using namespace lrt;

int main(int argc, char** argv) {
  CliParser cli("H2O-in-a-box LR-TDDFT accuracy demo");
  cli.add("box", "16.0", "cubic box edge (Bohr)")
      .add("ecut", "8.0", "kinetic cutoff (Hartree)")
      .add("states", "3", "excitation states to report")
      .add("nc", "4", "conduction orbitals to converge");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  const grid::Structure water = grid::make_water_box(cli.get_real("box"));
  std::printf("H2O in a %.1f Bohr box: %td atoms, %.0f electrons\n",
              cli.get_real("box"), water.num_atoms(), water.num_electrons());

  dft::ScfOptions scf;
  scf.ecut = cli.get_real("ecut");
  scf.num_conduction = cli.get_index("nc");
  scf.smearing = 0.0;  // large-gap molecule: integer occupations
  scf.density_tolerance = 1e-6;
  const dft::KohnShamResult ks = dft::solve_ground_state(water, scf);
  std::printf("SCF: %s after %td iterations, Etot = %.6f Ha, gap = %.3f eV\n",
              ks.converged ? "converged" : "NOT converged", ks.iterations,
              ks.total_energy, ks.band_gap * units::kHartreeToEv);
  std::printf("grid: %td points (%td x %td x %td)\n\n", ks.grid.size(),
              ks.grid.shape()[0], ks.grid.shape()[1], ks.grid.shape()[2]);

  const tddft::CasidaProblem problem = tddft::make_problem_from_scf(ks);

  tddft::DriverOptions naive;
  naive.version = tddft::Version::kNaive;
  naive.num_states = cli.get_index("states");
  const tddft::DriverResult reference = tddft::solve_casida(problem, naive);

  tddft::DriverOptions fast;
  fast.version = tddft::Version::kImplicit;
  fast.num_states = cli.get_index("states");
  const tddft::DriverResult accel = tddft::solve_casida(problem, fast);

  Table table("Lowest excitation energies of H2O (Hartree)",
              {"state", "Naive (LR-TDDFT)", "ISDF-LOBPCG", "rel. error"});
  for (std::size_t i = 0; i < reference.energies.size(); ++i) {
    const Real e0 = reference.energies[i];
    const Real e1 = accel.energies[i];
    table.row()
        .cell(static_cast<Index>(i + 1))
        .cell(e0, 6)
        .cell(e1, 6)
        .cell(format_real(100.0 * (e0 - e1) / e0, 4) + "%");
  }
  table.print();
  std::printf("\nnaive: %.2f s   ISDF-LOBPCG: %.2f s  (Nmu = %td)\n",
              reference.seconds_total, accel.seconds_total, accel.nmu_used);
  return 0;
}
