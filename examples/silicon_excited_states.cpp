// Periodic bulk silicon (Si8 conventional cell): SCF ground state with HGH
// pseudopotentials, then the excitation spectrum through both the naive
// and the Implicit-Kmeans-ISDF-LOBPCG drivers — the crystalline
// counterpart of the water example and a miniature of the paper's Si
// benchmark series.
//
//   ./silicon_excited_states [--ecut 6] [--states 4] [--nv 8] [--nc 6]
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "tddft/driver.hpp"
#include "tddft/spectrum.hpp"

using namespace lrt;

int main(int argc, char** argv) {
  CliParser cli("Bulk silicon LR-TDDFT demo (Si8 conventional cell)");
  cli.add("ecut", "6.0", "kinetic cutoff (Hartree)")
      .add("states", "4", "excitation states to report")
      .add("nv", "8", "valence orbitals entering the Casida space (top of VB)")
      .add("nc", "6", "conduction orbitals entering the Casida space");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  const grid::Structure si8 = grid::make_silicon_supercell(1);
  std::printf("Si8 diamond cell, a = %.3f Bohr, %td atoms\n",
              si8.cell.length(0), si8.num_atoms());

  dft::ScfOptions scf;
  scf.ecut = cli.get_real("ecut");
  scf.num_conduction = cli.get_index("nc") + 2;  // headroom for smearing
  scf.smearing = 0.003;
  scf.density_tolerance = 3e-5;
  const dft::KohnShamResult ks = dft::solve_ground_state(si8, scf);
  std::printf("SCF: %s after %td iters, Etot = %.6f Ha, KS gap = %.3f eV\n\n",
              ks.converged ? "converged" : "NOT converged", ks.iterations,
              ks.total_energy, ks.band_gap * units::kHartreeToEv);

  const tddft::CasidaProblem problem = tddft::make_problem_from_scf(
      ks, cli.get_index("nv"), cli.get_index("nc"));

  tddft::DriverOptions naive;
  naive.version = tddft::Version::kNaive;
  naive.num_states = cli.get_index("states");
  const tddft::DriverResult ref = tddft::solve_casida(problem, naive);

  tddft::DriverOptions fast;
  fast.version = tddft::Version::kImplicit;
  fast.num_states = cli.get_index("states");
  const tddft::DriverResult accel = tddft::solve_casida(problem, fast);

  // Oscillator strengths from the naive eigenvectors.
  const tddft::Spectrum spec = tddft::oscillator_spectrum(
      problem, ref.energies, ref.wavefunctions.view());

  Table table("Si8 excitations",
              {"state", "E naive [eV]", "E ISDF-LOBPCG [eV]", "rel err",
               "osc. strength"});
  for (std::size_t i = 0; i < ref.energies.size(); ++i) {
    table.row()
        .cell(static_cast<Index>(i + 1))
        .cell(ref.energies[i] * units::kHartreeToEv, 4)
        .cell(accel.energies[i] * units::kHartreeToEv, 4)
        .cell(format_real(
                  100.0 * (ref.energies[i] - accel.energies[i]) /
                      ref.energies[i],
                  3) +
              "%")
        .cell(spec.strengths[i], 5);
  }
  table.print();
  std::printf("\nnaive %.2f s vs ISDF-LOBPCG %.2f s  ->  speedup %.2fx\n",
              ref.seconds_total, accel.seconds_total,
              ref.seconds_total / accel.seconds_total);
  return 0;
}
