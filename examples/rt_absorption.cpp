// RT-TDDFT vs LR-TDDFT cross-validation (paper Table 1 context: the same
// PWDFT code family ships both).
//
// Runs the full chain on one water molecule: SCF ground state, then
// (a) LR-TDDFT excitation energies + oscillator strengths, and
// (b) real-time propagation after a δ-kick with the dipole spectrum.
// The RT absorption peaks should line up with the bright LR excitations —
// two completely different algorithms agreeing on the same physics.
//
//   ./rt_absorption [--box 12] [--ecut 5] [--steps 1500] [--dt 0.08]
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "dft/pseudopotential.hpp"
#include "tddft/driver.hpp"
#include "tddft/rt_propagation.hpp"
#include "tddft/spectrum.hpp"

using namespace lrt;

int main(int argc, char** argv) {
  CliParser cli("RT-TDDFT dipole spectrum vs LR-TDDFT excitations (H2O)");
  cli.add("box", "12.0", "cubic box edge (Bohr)")
      .add("ecut", "5.0", "kinetic cutoff (Hartree)")
      .add("steps", "1500", "propagation steps")
      .add("dt", "0.08", "time step (a.u.)")
      .add("kick", "0.002", "delta-kick strength")
      .add("out", "rt_spectrum.csv", "spectrum CSV path");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  const grid::Structure water = grid::make_water_box(cli.get_real("box"));
  dft::ScfOptions scf;
  scf.ecut = cli.get_real("ecut");
  scf.num_conduction = 4;
  scf.smearing = 0.0;
  scf.density_tolerance = 1e-6;
  const dft::KohnShamResult ks = dft::solve_ground_state(water, scf);
  std::printf("SCF %s (%td iters), gap %.2f eV, grid %td points\n",
              ks.converged ? "converged" : "UNCONVERGED", ks.iterations,
              ks.band_gap * units::kHartreeToEv, ks.grid.size());

  // ---- LR-TDDFT reference ---------------------------------------------------
  const tddft::CasidaProblem problem = tddft::make_problem_from_scf(ks);
  tddft::DriverOptions opts;
  opts.version = tddft::Version::kNaive;
  opts.num_states = std::min<Index>(6, problem.ncv());
  const tddft::DriverResult lr = tddft::solve_casida(problem, opts);
  const tddft::Spectrum lr_spec = tddft::oscillator_spectrum(
      problem, lr.energies, lr.wavefunctions.view());

  Table lr_table("LR-TDDFT excitations", {"state", "E [eV]", "f_osc"});
  for (std::size_t i = 0; i < lr_spec.energies.size(); ++i) {
    lr_table.row()
        .cell(static_cast<Index>(i + 1))
        .cell(lr_spec.energies[i] * units::kHartreeToEv, 3)
        .cell(lr_spec.strengths[i], 5);
  }
  lr_table.print();

  // ---- RT-TDDFT propagation -------------------------------------------------
  const grid::GVectors gvectors(ks.grid);
  const std::vector<Real> vloc =
      dft::build_local_potential(ks.grid, gvectors, water);

  tddft::RtOptions rt;
  rt.dt = cli.get_real("dt");
  rt.steps = cli.get_index("steps");
  rt.kick = cli.get_real("kick");
  rt.kick_axis = 2;  // water dipole axis (z in the built geometry)
  std::printf("\npropagating %td steps of dt=%.3f (T = %.1f a.u.) ...\n",
              rt.steps, rt.dt, rt.dt * static_cast<Real>(rt.steps));
  const tddft::RtResult dynamics = tddft::propagate(
      ks.grid, gvectors, water, ks.valence(),
      std::vector<Real>(ks.occupations.begin(),
                        ks.occupations.begin() + ks.num_occupied),
      vloc, rt);
  std::printf("max norm drift: %.2e\n",
              *std::max_element(dynamics.norm_drift.begin(),
                                dynamics.norm_drift.end()));

  // Spectrum over the LR energy window.
  const Real emax = 1.6 * lr_spec.energies.back();
  std::vector<Real> omegas;
  for (Real w = 0.02; w < emax; w += 0.002) omegas.push_back(w);
  const std::vector<Real> sigma =
      tddft::dipole_spectrum(dynamics.time, dynamics.dipole, omegas, 0.02);

  Table csv("RT dipole spectrum", {"omega_eV", "intensity"});
  for (std::size_t i = 0; i < omegas.size(); ++i) {
    csv.row().cell(omegas[i] * units::kHartreeToEv, 4).cell(sigma[i], 8);
  }
  csv.write_csv(cli.get("out"));
  std::printf("wrote %s\n", cli.get("out").c_str());

  // Report the dominant RT peak vs the strongest LR transition.
  const auto peak_it = std::max_element(sigma.begin(), sigma.end());
  const Real rt_peak = omegas[static_cast<std::size_t>(
      peak_it - sigma.begin())];
  std::size_t brightest = 0;
  for (std::size_t i = 1; i < lr_spec.strengths.size(); ++i) {
    if (lr_spec.strengths[i] > lr_spec.strengths[brightest]) brightest = i;
  }
  std::printf(
      "\nRT dominant peak: %.3f eV   brightest LR excitation: %.3f eV\n"
      "(agreement within the spectral resolution 2π/T = %.3f eV validates\n"
      "the two solvers against each other)\n",
      rt_peak * units::kHartreeToEv,
      lr_spec.energies[brightest] * units::kHartreeToEv,
      constants::kTwoPi / (rt.dt * static_cast<Real>(rt.steps)) *
          units::kHartreeToEv);
  return 0;
}
