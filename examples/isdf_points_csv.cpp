// Interpolation-point visualization (paper Fig 2 analog).
//
// Builds localized orbitals, computes the pair-product weight function
// w(r) (Eq 14), runs weighted K-Means, and writes two CSVs:
//  - a z-slice of the projected weight (the "excitation wavefunction
//    projection"), and
//  - the 3-D coordinates of the chosen interpolation points.
// Plot them together to reproduce the red-dots-on-density picture.
//
//   ./isdf_points_csv [--grid 16] [--nmu 15] [--out-prefix fig2]
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "dft/synthetic.hpp"
#include "isdf/kmeans_points.hpp"
#include "kmeans/kmeans.hpp"

using namespace lrt;

int main(int argc, char** argv) {
  CliParser cli("K-Means interpolation point visualization (Fig 2)");
  cli.add("grid", "16", "grid points per axis")
      .add("nv", "6", "valence orbitals")
      .add("nc", "4", "conduction orbitals")
      .add("nmu", "15", "interpolation points (paper Fig 2 uses 15)")
      .add("out-prefix", "fig2", "CSV output prefix");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  const Index n = cli.get_index("grid");
  const grid::RealSpaceGrid g(grid::UnitCell::cubic(10.0), {n, n, n});
  dft::SyntheticOptions sopts;
  sopts.num_centers = 6;
  sopts.seed = 2024;
  const dft::SyntheticOrbitals orbs = dft::make_synthetic_orbitals(
      g, cli.get_index("nv"), cli.get_index("nc"), sopts);

  const std::vector<Real> weights =
      kmeans::pair_weights(orbs.psi_v.view(), orbs.psi_c.view());

  const isdf::KmeansPointResult km = isdf::select_points_kmeans(
      g, orbs.psi_v.view(), orbs.psi_c.view(), cli.get_index("nmu"), {});
  std::printf("K-Means: %td iterations, %td grid points pruned of %td\n",
              km.kmeans_iterations, km.num_pruned, g.size());

  const std::string prefix = cli.get("out-prefix");

  // (1) Weight projected along z (sum over z-planes) on the x-y grid.
  {
    Table t("pair-product weight, z-projection", {"x", "y", "weight"});
    for (Index ix = 0; ix < n; ++ix) {
      for (Index iy = 0; iy < n; ++iy) {
        Real sum = 0;
        for (Index iz = 0; iz < n; ++iz) {
          sum += weights[static_cast<std::size_t>(g.flat_index(ix, iy, iz))];
        }
        const grid::Vec3 r = g.position(g.flat_index(ix, iy, 0));
        t.row().cell(r[0], 3).cell(r[1], 3).cell(sum, 6);
      }
    }
    t.write_csv(prefix + "_weight_xy.csv");
    std::printf("wrote %s_weight_xy.csv\n", prefix.c_str());
  }

  // (2) Interpolation point coordinates.
  {
    Table t("K-Means interpolation points", {"x", "y", "z", "weight"});
    for (const Index p : km.points) {
      const grid::Vec3 r = g.position(p);
      t.row()
          .cell(r[0], 3)
          .cell(r[1], 3)
          .cell(r[2], 3)
          .cell(weights[static_cast<std::size_t>(p)], 6);
    }
    t.write_csv(prefix + "_points.csv");
    std::printf("wrote %s_points.csv (%zu points)\n", prefix.c_str(),
                km.points.size());
  }
  return 0;
}
