// Eigensolver ablation (DESIGN.md §5): dense SYEV vs LOBPCG (the paper's
// choice, Alg 2) vs block Davidson (the paper's cited alternative [8]),
// all on the same implicit ISDF Casida operator — iterations, operator
// applications, time, and agreement. Also TDA vs full linear response
// (paper Eq 1 vs Eq 2) on the same problem.
#include <cstdio>

#include "bench_util.hpp"
#include "tddft/casida_isdf.hpp"
#include "tddft/full_casida.hpp"
#include "tddft/lobpcg_tddft.hpp"

using namespace lrt;

int main() {
  const bench::Workload w{"Si27*", 32, 16, 14, 15.5, 27};
  const tddft::CasidaProblem problem = bench::make_workload(w);
  const grid::GVectors gv(problem.grid);
  const tddft::HxcKernel kernel(problem.grid, gv, problem.ground_density,
                                true);
  std::printf("system: Nr=%td Nv=%td Nc=%td (Ncv=%td)\n\n", problem.nr(),
              problem.nv(), problem.nc(), problem.ncv());

  isdf::IsdfOptions iopts;
  iopts.nmu = 4 * (problem.nv() + problem.nc());
  const isdf::IsdfResult dec = isdf_decompose(
      problem.grid, problem.psi_v.view(), problem.psi_c.view(), iopts);
  const la::RealMatrix m = tddft::build_kernel_projection(dec, kernel);
  const la::RealMatrix h_dense =
      tddft::build_hamiltonian_isdf(problem, dec, kernel);
  const tddft::ImplicitHamiltonian h = tddft::make_implicit_hamiltonian(
      tddft::energy_differences(problem), dec, la::to_matrix<Real>(m.view()));

  const Index k = 6;

  Timer t_dense;
  const tddft::CasidaSolution dense = tddft::diagonalize_dense(h_dense, k);
  const double dense_s = t_dense.seconds();

  tddft::TddftEigenOptions eopts;
  eopts.num_states = k;
  eopts.tolerance = 1e-9;

  Timer t_lobpcg;
  const la::LobpcgResult lobpcg = tddft::solve_casida_lobpcg(h, eopts);
  const double lobpcg_s = t_lobpcg.seconds();

  Timer t_davidson;
  const la::DavidsonResult dav = tddft::solve_casida_davidson(h, eopts);
  const double davidson_s = t_davidson.seconds();

  Table table("Eigensolver ablation on the implicit Casida operator",
              {"solver", "time [s]", "iterations", "H applies",
               "max |dE| vs dense"});
  auto max_diff = [&](const std::vector<Real>& e) {
    Real worst = 0;
    for (Index j = 0; j < k; ++j) {
      worst = std::max(worst,
                       std::abs(e[static_cast<std::size_t>(j)] -
                                dense.energies[static_cast<std::size_t>(j)]));
    }
    return worst;
  };
  table.row()
      .cell("dense SYEV (oracle)")
      .cell(dense_s, 4)
      .cell(Index{0})
      .cell(Index{0})
      .cell(0.0, 2);
  table.row()
      .cell("LOBPCG (paper Alg 2)")
      .cell(lobpcg_s, 4)
      .cell(lobpcg.iterations)
      .cell(lobpcg.iterations)  // one block apply per iteration
      .cell(format_real(max_diff(lobpcg.eigenvalues), 9));
  table.row()
      .cell("Davidson")
      .cell(davidson_s, 4)
      .cell(dav.iterations)
      .cell(dav.operator_applications)
      .cell(format_real(max_diff(dav.eigenvalues), 9));
  table.print();

  // ---- TDA vs full linear response ----------------------------------------
  const la::RealMatrix omega_dense =
      tddft::build_omega_isdf(problem, dec, kernel);
  const tddft::FullCasidaSolution full =
      tddft::solve_full_casida_dense(omega_dense, k);
  const tddft::ImplicitOmega omega(
      tddft::energy_differences(problem), la::to_matrix<Real>(m.view()),
      la::to_matrix<Real>(dec.psi_v_mu.view()),
      la::to_matrix<Real>(dec.psi_c_mu.view()));
  Timer t_full;
  const tddft::FullCasidaSolution full_it =
      tddft::solve_full_casida_lobpcg(omega, eopts);
  const double full_s = t_full.seconds();

  Table tda("TDA (paper Eq 2) vs full response (paper Eq 1), lowest states [Ha]",
            {"state", "TDA", "full (dense)", "full (implicit LOBPCG)",
             "TDA - full"});
  for (Index j = 0; j < k; ++j) {
    tda.row()
        .cell(j + 1)
        .cell(dense.energies[static_cast<std::size_t>(j)], 6)
        .cell(full.energies[static_cast<std::size_t>(j)], 6)
        .cell(full_it.energies[static_cast<std::size_t>(j)], 6)
        .cell(dense.energies[static_cast<std::size_t>(j)] -
                  full.energies[static_cast<std::size_t>(j)],
              6);
  }
  tda.print();
  std::printf("\nfull-response implicit solve: %.3f s, %td iterations.\n"
              "Expected shape: TDA >= full response for every state, both\n"
              "iterative solvers at machine-precision agreement.\n",
              full_s, full_it.iterations);
  return 0;
}
