// Paper Table 6: wall-clock time and speedup, Naive vs ISDF-LOBPCG,
// across system sizes (the paper reports 13.1x -> 6.3x from Si64 to
// Si1000 on constrained memory).
//
// We sweep the scaled silicon ladder; the shape to reproduce is a solid
// ~order-of-magnitude speedup that *decreases* slowly as the system grows
// (the naive path's FFT count Nv·Nc grows quadratically, but its dense
// diagonalization — cubic in Nv·Nc — starts from a smaller base here).
#include <cstdio>

#include "bench_util.hpp"

using namespace lrt;

int main() {
  Table table("Table 6 (scaled): Naive vs Implicit-Kmeans-ISDF-LOBPCG [s]",
              {"system", "Nv", "Nc", "Nr", "Naive", "ISDF-LOBPCG",
               "Speedup", "E1 rel err"});

  for (const bench::Workload& w : bench::silicon_ladder()) {
    const tddft::CasidaProblem problem = bench::make_workload(w);

    tddft::DriverOptions naive;
    naive.version = tddft::Version::kNaive;
    naive.num_states = 5;
    const tddft::DriverResult ref = tddft::solve_casida(problem, naive);

    tddft::DriverOptions fast;
    fast.version = tddft::Version::kImplicit;
    fast.num_states = 5;
    fast.nmu_ratio = 4.0;
    const tddft::DriverResult accel = tddft::solve_casida(problem, fast);

    table.row()
        .cell(w.label)
        .cell(problem.nv())
        .cell(problem.nc())
        .cell(problem.nr())
        .cell(ref.seconds_total, 2)
        .cell(accel.seconds_total, 2)
        .cell(ref.seconds_total / accel.seconds_total, 2)
        .cell(format_real(100.0 * (ref.energies[0] - accel.energies[0]) /
                              ref.energies[0],
                          3) +
              "%");
  }
  table.print();
  std::printf(
      "\npaper reference (Table 6): speedups 13.1, 9.9, 7.8, 6.3 from the\n"
      "smallest to the largest system, with ISDF error well under 1%%.\n");
  return 0;
}
