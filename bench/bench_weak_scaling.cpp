// Paper §6.4: weak scaling — growing system size at a fixed rank count
// (the paper runs Si512..Si4096 on 1024 cores: 3.58, 10.23, 26.95, 35.58,
// 41.89 s). The shape to reproduce: time grows polynomially but gently
// with the system (the accelerated method's cost model), staying within
// "interactive" range as the problem quadruples.
#include <cstdio>

#include "bench_util.hpp"
#include "tddft/dist_driver.hpp"

using namespace lrt;

int main() {
  constexpr int kRanks = 4;
  std::printf("fixed ranks: %d (implicit ISDF-LOBPCG version)\n\n", kRanks);

  Table table("Weak scaling (scaled ladder) at 4 ranks",
              {"system", "Nv", "Nc", "Nr", "busy max [s]", "comm max [s]",
               "t / t_first"});
  double first = 0;
  for (const bench::Workload& w : bench::silicon_ladder()) {
    const tddft::CasidaProblem problem = bench::make_workload(w);
    tddft::DistDriverStats stats;
    par::run(kRanks, [&](par::Comm& comm) {
      tddft::DistDriverOptions opts;
      opts.version = tddft::Version::kImplicit;
      opts.num_states = 4;
      opts.nmu_ratio = 4.0;
      stats = tddft::solve_casida_distributed(comm, problem, opts);
    });
    if (first == 0) first = stats.busy_seconds;
    table.row()
        .cell(w.label)
        .cell(w.nv)
        .cell(w.nc)
        .cell(problem.nr())
        .cell(stats.busy_seconds, 3)
        .cell(stats.comm_seconds, 3)
        .cell(stats.busy_seconds / first, 2);
  }
  table.print();
  std::printf(
      "\npaper reference (§6.4): 3.58 -> 41.89 s (11.7x) as the system\n"
      "grows 8x in atoms on fixed cores — 'suits the computational\n"
      "complexity well'. Compare the t/t_first trend.\n");
  return 0;
}
