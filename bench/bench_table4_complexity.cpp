// Paper Table 4 (and Table 2): computational and memory complexity of the
// five optimization levels.
//
// Empirical check: run every version over a geometric ladder of system
// sizes and fit the log-log slope of time vs Ne (= Nv + Nc). The paper's
// theory: the naive path's diagonalization is O(Ne^6) and its build
// O(Ne^5) (dominant terms), while the implicit path is ~O(Ne^3) overall.
// At laptop sizes the measured slopes land between the asymptotic
// exponents of the build and solve stages; what must hold is the ORDERING
// and the widening gap. Memory uses the closed-form Table 4 estimates.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"

using namespace lrt;

namespace {

double fit_slope(const std::vector<double>& x, const std::vector<double>& y) {
  // least squares slope of log(y) vs log(x)
  const std::size_t n = x.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double lx = std::log(x[i]);
    const double ly = std::log(std::max(y[i], 1e-9));
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

}  // namespace

int main() {
  const std::vector<bench::Workload> ladder = {
      {"S", 8, 6, 10, 9.0, 8},
      {"M", 12, 9, 11, 11.0, 12},
      {"L", 18, 13, 13, 13.0, 18},
      {"XL", 26, 20, 15, 16.0, 27},
  };

  const tddft::Version versions[] = {
      tddft::Version::kNaive, tddft::Version::kQrcpIsdf,
      tddft::Version::kKmeansIsdf, tddft::Version::kKmeansIsdfLobpcg,
      tddft::Version::kImplicit};

  Table table("Table 4 (empirical): time [s] per version and size",
              {"version", "S", "M", "L", "XL", "slope t~Ne^x",
               "mem XL [MB]"});

  for (const tddft::Version v : versions) {
    std::vector<double> ne, secs;
    double memory_xl = 0;
    std::vector<std::string> cells;
    for (const bench::Workload& w : ladder) {
      const tddft::CasidaProblem problem = bench::make_workload(w);
      tddft::DriverOptions opts;
      opts.version = v;
      opts.num_states = 4;
      opts.nmu_ratio = 4.0;
      const tddft::DriverResult r = tddft::solve_casida(problem, opts);
      ne.push_back(double(w.nv + w.nc));
      secs.push_back(r.seconds_total);
      memory_xl = r.memory_bytes_estimate;
      cells.push_back(format_real(r.seconds_total, 3));
    }
    table.row()
        .cell(tddft::version_name(v))
        .cell(cells[0])
        .cell(cells[1])
        .cell(cells[2])
        .cell(cells[3])
        .cell(fit_slope(ne, secs), 2)
        .cell(memory_xl / 1e6, 2);
  }
  table.print();
  std::printf(
      "\npaper reference (Table 4): memory of the implicit version is\n"
      "O(Nmu^2) vs O(Nv^2 Nc^2) explicit — compare the last column — and\n"
      "the time slope of the naive version exceeds every ISDF version,\n"
      "with the implicit variant lowest.\n");
  return 0;
}
