// Analyzer self-benchmark.
//
// Times full lrt-analyze runs (lex, call-graph construction with
// bottom-up summaries, every pass) over a repository checkout and emits
// an lrt.bench/1 report, so analyzer cost rides the same regression
// trajectory as the numeric kernels. With --max-ms N the median wall
// time becomes a CI gate: the analyzer runs on every lint invocation,
// so a quadratic blowup in the call-graph or pass layer should fail
// loudly, not silently stretch CI.
//
//   bench_analyze [--repo PATH] [--reps N] [--jobs N]
//                 [--max-ms N] [--out FILE]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analyze/analyzer.hpp"
#include "common/timer.hpp"
#include "obs/bench_report.hpp"

using namespace lrt;

namespace {

analyze::Config repo_config(const std::string& root) {
  analyze::Config config;
  config.root = root;
  config.phase_registry = analyze::parse_phases_def(
      analyze::read_file(root + "/src/obs/phases.def"));
  config.counter_registry = analyze::parse_phases_def(
      analyze::read_file(root + "/src/obs/counters.def"));
  analyze::load_hot_tus(analyze::read_file(root + "/src/CMakeLists.txt"),
                        &config);
  analyze::load_baseline(
      analyze::read_file(root + "/tools/lrt-analyze.baseline"), &config);
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  std::string repo = ".";
  std::string out;
  int reps = 5;
  int jobs = 0;
  double max_ms = -1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--repo") == 0 && i + 1 < argc) {
      repo = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-ms") == 0 && i + 1 < argc) {
      max_ms = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_analyze [--repo PATH] [--reps N] [--jobs N] "
                   "[--max-ms N] [--out FILE]\n");
      return 2;
    }
  }
  if (reps < 1) reps = 1;

  analyze::Config config = repo_config(repo);
  config.jobs = jobs;

  std::vector<double> wall_ms(static_cast<std::size_t>(reps));
  analyze::Report last;
  for (std::size_t r = 0; r < wall_ms.size(); ++r) {
    Timer timer;
    last = analyze::analyze_repo(config);
    wall_ms[r] = timer.seconds() * 1e3;
  }
  std::nth_element(wall_ms.begin(), wall_ms.begin() + wall_ms.size() / 2,
                   wall_ms.end());
  const double median_ms = wall_ms[wall_ms.size() / 2];
  const double min_ms = *std::min_element(wall_ms.begin(), wall_ms.end());

  obs::BenchReport report("analyze");
  report.meta("repo", repo);
  obs::BenchReport::Record& rec = report.record("analyze_repo");
  rec.param("reps", static_cast<long long>(reps));
  rec.param("jobs", static_cast<long long>(jobs));
  rec.metric("wall_ms_median", median_ms);
  rec.metric("wall_ms_min", min_ms);
  rec.metric("findings", static_cast<double>(last.findings.size()));
  rec.metric("new", static_cast<double>(last.new_count));
  rec.metric("suppressed", static_cast<double>(last.suppressed_count));
  rec.metric("baselined", static_cast<double>(last.baselined_count));
  const bool wrote = out.empty() ? report.write() : report.write(out);
  if (!wrote) {
    std::fprintf(stderr, "bench_analyze: could not write report\n");
    return 2;
  }

  std::printf("analyze_repo over %s: median %.1f ms, min %.1f ms "
              "(%d reps, jobs=%d, %zu findings)\n",
              repo.c_str(), median_ms, min_ms, reps, jobs,
              last.findings.size());
  if (max_ms >= 0.0 && median_ms > max_ms) {
    std::fprintf(stderr, "bench_analyze: median %.1f ms exceeds --max-ms %.1f\n",
                 median_ms, max_ms);
    return 1;
  }
  return 0;
}
