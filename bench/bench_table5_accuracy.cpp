// Paper Table 5: numerical accuracy of the accelerated solver.
//
// The paper compares Quantum Espresso (accuracy oracle), its naive
// LR-TDDFT, and ISDF-LOBPCG on H2O and Si64, reporting the three lowest
// excitation energies and relative errors ΔE1/ΔE2. Our oracle is the
// explicit dense Casida diagonalization on the same self-consistent
// orbitals (the role QE plays in the paper; see DESIGN.md). Systems:
// one H2O molecule in a box and periodic Si8, both from full SCF.
#include <cstdio>

#include "bench_util.hpp"
#include "dft/scf.hpp"

using namespace lrt;

namespace {

void run_system(const char* title, const grid::Structure& structure,
                const dft::ScfOptions& scf_opts, Index nv_use, Index nc_use) {
  const dft::KohnShamResult ks = dft::solve_ground_state(structure, scf_opts);
  std::printf("%s: SCF %s (%td iters), Ecut = %.1f Ha, Nr = %td, gap = %.3f eV\n",
              title, ks.converged ? "converged" : "UNCONVERGED",
              ks.iterations, scf_opts.ecut, ks.grid.size(),
              ks.band_gap * units::kHartreeToEv);

  const tddft::CasidaProblem problem =
      tddft::make_problem_from_scf(ks, nv_use, nc_use);
  std::printf("Casida space: Nv = %td, Nc = %td\n", problem.nv(),
              problem.nc());

  // Oracle: dense diagonalization of the exact explicit Hamiltonian.
  tddft::DriverOptions oracle;
  oracle.version = tddft::Version::kNaive;
  oracle.num_states = 3;
  const tddft::DriverResult ref = tddft::solve_casida(problem, oracle);

  // Naive LR-TDDFT == the same algorithm in this codebase, so the paper's
  // LR-TDDFT column is played by a LOBPCG-on-naive-H run (version 4 with
  // QRCP to differ meaningfully), and the ISDF-LOBPCG column by version 5.
  // Constrain Nμ below the pair rank so the table shows the actual
  // low-rank approximation error (at Nμ >= Nv·Nc ISDF is exact and every
  // column would read 0.000%).
  const Index nmu = std::max<Index>(4, (2 * problem.ncv()) / 3);

  tddft::DriverOptions mid;
  mid.version = tddft::Version::kKmeansIsdf;
  mid.num_states = 3;
  mid.nmu = nmu;
  const tddft::DriverResult isdf_explicit = tddft::solve_casida(problem, mid);

  tddft::DriverOptions fast;
  fast.version = tddft::Version::kImplicit;
  fast.num_states = 3;
  fast.nmu = nmu;
  const tddft::DriverResult accel = tddft::solve_casida(problem, fast);

  std::printf("Nmu = %td of Ncv = %td\n", nmu, problem.ncv());
  Table table(std::string("Table 5 (scaled): ") + title +
                  " — three lowest excitation energies [Ha]",
              {"oracle (dense Casida)", "Kmeans-ISDF", "ISDF-LOBPCG",
               "dE1", "dE2"});
  for (std::size_t i = 0; i < ref.energies.size(); ++i) {
    const Real e0 = ref.energies[i];
    const Real e1 = isdf_explicit.energies[i];
    const Real e2 = accel.energies[i];
    table.row()
        .cell(e0, 6)
        .cell(e1, 6)
        .cell(e2, 6)
        .cell(format_real(100.0 * (e0 - e1) / e0, 3) + "%")
        .cell(format_real(100.0 * (e0 - e2) / e0, 3) + "%");
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  {
    dft::ScfOptions scf;
    scf.ecut = 7.0;
    scf.num_conduction = 4;
    scf.smearing = 0.0;
    scf.density_tolerance = 1e-6;
    run_system("single water molecule H2O (14 Bohr box)",
               grid::make_water_box(14.0), scf, 4, 4);
  }
  {
    dft::ScfOptions scf;
    scf.ecut = 5.0;
    scf.num_conduction = 8;
    scf.smearing = 0.003;
    scf.density_tolerance = 3e-5;
    run_system("periodic bulk silicon Si8", grid::make_silicon_supercell(1),
               scf, 8, 6);
  }
  std::printf(
      "paper reference: dE errors of 0.001%%..0.9%% (Table 5); the shape to\n"
      "check is dE1 == dE2 to displayed digits (ISDF dominates the error,\n"
      "LOBPCG adds nothing) and sub-percent magnitudes.\n");
  return 0;
}
