// Paper Figure 8: strong-scaling breakdown of the Hamiltonian-construction
// phases — K-Means, FFT, MPI, GEMM(+Allreduce) — for the accelerated
// version, across rank counts.
//
// Flags:
//   --smoke                          ranks {1, 8} only (CI bench-smoke);
//   --gate-max-collective-calls N    fail unless reduce + bcast + allreduce
//                                    calls at the largest rank count <= N
//                                    (0 disables; the comm-budget gate).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "obs/bench_report.hpp"
#include "obs/counters.hpp"
#include "tddft/dist_driver.hpp"

using namespace lrt;

namespace {

/// Sum of the rank-visible collective invocations the fused schedules
/// target: legacy reduce + bcast pairs plus single-round allreduces.
long long collective_calls() {
  long long total = 0;
  for (const auto& [name, value] : obs::snapshot_counters()) {
    if (name == "comm.reduce.calls" || name == "comm.bcast.calls" ||
        name == "comm.allreduce.calls") {
      total += value;
    }
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  long long gate = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--gate-max-collective-calls") == 0 &&
               i + 1 < argc) {
      gate = std::atoll(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_fig8_breakdown [--smoke] "
                   "[--gate-max-collective-calls N]\n");
      return 2;
    }
  }

  const bench::Workload w{"Si16*", 24, 16, 14, 13.0, 16};
  const tddft::CasidaProblem problem = bench::make_workload(w);
  std::printf("system: Nr=%td Nv=%td Nc=%td  (implicit version)\n\n",
              problem.nr(), problem.nv(), problem.nc());

  obs::BenchReport report("fig8");
  report.meta("workload", w.label);
  report.meta("figure", "8");

  Table table("Fig 8 (scaled): construction phase seconds (max over ranks)",
              {"ranks", "kmeans", "fft", "mpi", "gemm", "diag",
               "gemm+mpi share", "speedup", "coll calls"});
  const std::vector<int> rank_counts =
      smoke ? std::vector<int>{1, 8} : std::vector<int>{1, 2, 4, 8};
  double wall_1rank = 0;
  long long gated_calls = 0;
  int gated_ranks = 0;
  for (const int ranks : rank_counts) {
    // Isolate this rank count's counter snapshot (bytes per collective
    // kind, FFT/GEMM totals) from the previous runs'.
    obs::reset_counters();
    tddft::DistDriverStats stats;
    par::run(ranks, [&](par::Comm& comm) {
      tddft::DistDriverOptions opts;
      opts.version = tddft::Version::kImplicit;
      opts.num_states = 4;
      opts.nmu_ratio = 4.0;
      stats = tddft::solve_casida_distributed(comm, problem, opts);
    });
    const long long calls = collective_calls();
    gated_calls = calls;
    gated_ranks = ranks;
    double phase[6] = {0, 0, 0, 0, 0, 0};
    double total = 0;
    for (const auto& [name, seconds] : stats.phases) {
      if (name == "kmeans") phase[0] = seconds;
      if (name == "fft") phase[1] = seconds;
      if (name == "mpi") phase[2] = seconds;
      if (name == "gemm") phase[3] = seconds;
      if (name == "diag") phase[4] = seconds;
      total += seconds;
    }
    const double share =
        total > 0 ? 100.0 * (phase[2] + phase[3]) / total : 0.0;
    if (ranks == 1) wall_1rank = stats.wall_seconds;
    const double speedup =
        stats.wall_seconds > 0 ? wall_1rank / stats.wall_seconds : 0.0;
    const double efficiency = 100.0 * speedup / ranks;
    table.row()
        .cell(ranks)
        .cell(phase[0], 3)
        .cell(phase[1], 3)
        .cell(phase[2], 3)
        .cell(phase[3], 3)
        .cell(phase[4], 3)
        .cell(format_real(share, 1) + "%")
        .cell(format_real(speedup, 2) + "x")
        .cell(static_cast<Index>(calls));

    obs::BenchReport::Record& record =
        report.record("ranks=" + std::to_string(ranks));
    record.param("ranks", static_cast<long long>(ranks))
        .param("nr", static_cast<long long>(problem.nr()))
        .param("nv", static_cast<long long>(problem.nv()))
        .param("nc", static_cast<long long>(problem.nc()))
        .metric("wall_seconds", stats.wall_seconds)
        .metric("comm_seconds", stats.comm_seconds)
        .metric("busy_seconds", stats.busy_seconds)
        .metric("gemm_mpi_share_pct", share)
        .metric("speedup_vs_1rank", speedup)
        .metric("parallel_efficiency_pct", efficiency);
    for (const auto& [name, seconds] : stats.phases) {
      record.phase(name, seconds);
    }
    record.counters_from_registry();
  }
  table.print();
  if (report.write()) {
    std::printf("\nwrote %s\n", report.default_path().c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n",
                 report.default_path().c_str());
    return 1;
  }
  if (gate > 0) {
    std::printf("\ncomm budget: %lld reduce+bcast+allreduce calls at %d "
                "ranks (gate: <= %lld)\n",
                gated_calls, gated_ranks, gate);
    if (gated_calls > gate) {
      std::fprintf(stderr,
                   "fig8: comm-budget gate FAILED: %lld collective calls "
                   "> %lld at %d ranks\n",
                   gated_calls, gate, gated_ranks);
      return 1;
    }
  }
  std::printf(
      "\npaper reference (Fig 8): K-Means, FFT and GEMM scale almost\n"
      "ideally while the MPI share grows with rank count; GEMM+Allreduce\n"
      "stays a small fraction (12.87%% in the paper's test).\n");
  return 0;
}
