// Paper Figure 8: strong-scaling breakdown of the Hamiltonian-construction
// phases — K-Means, FFT, MPI, GEMM(+Allreduce) — for the accelerated
// version, across rank counts.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "obs/bench_report.hpp"
#include "obs/counters.hpp"
#include "tddft/dist_driver.hpp"

using namespace lrt;

int main() {
  const bench::Workload w{"Si16*", 24, 16, 14, 13.0, 16};
  const tddft::CasidaProblem problem = bench::make_workload(w);
  std::printf("system: Nr=%td Nv=%td Nc=%td  (implicit version)\n\n",
              problem.nr(), problem.nv(), problem.nc());

  obs::BenchReport report("fig8");
  report.meta("workload", w.label);
  report.meta("figure", "8");

  Table table("Fig 8 (scaled): construction phase seconds (max over ranks)",
              {"ranks", "kmeans", "fft", "mpi", "gemm", "diag",
               "gemm+mpi share"});
  for (const int ranks : {1, 2, 4, 8}) {
    // Isolate this rank count's counter snapshot (bytes per collective
    // kind, FFT/GEMM totals) from the previous runs'.
    obs::reset_counters();
    tddft::DistDriverStats stats;
    par::run(ranks, [&](par::Comm& comm) {
      tddft::DistDriverOptions opts;
      opts.version = tddft::Version::kImplicit;
      opts.num_states = 4;
      opts.nmu_ratio = 4.0;
      stats = tddft::solve_casida_distributed(comm, problem, opts);
    });
    double phase[6] = {0, 0, 0, 0, 0, 0};
    double total = 0;
    for (const auto& [name, seconds] : stats.phases) {
      if (name == "kmeans") phase[0] = seconds;
      if (name == "fft") phase[1] = seconds;
      if (name == "mpi") phase[2] = seconds;
      if (name == "gemm") phase[3] = seconds;
      if (name == "diag") phase[4] = seconds;
      total += seconds;
    }
    const double share =
        total > 0 ? 100.0 * (phase[2] + phase[3]) / total : 0.0;
    table.row()
        .cell(ranks)
        .cell(phase[0], 3)
        .cell(phase[1], 3)
        .cell(phase[2], 3)
        .cell(phase[3], 3)
        .cell(phase[4], 3)
        .cell(format_real(share, 1) + "%");

    obs::BenchReport::Record& record =
        report.record("ranks=" + std::to_string(ranks));
    record.param("ranks", static_cast<long long>(ranks))
        .param("nr", static_cast<long long>(problem.nr()))
        .param("nv", static_cast<long long>(problem.nv()))
        .param("nc", static_cast<long long>(problem.nc()))
        .metric("wall_seconds", stats.wall_seconds)
        .metric("comm_seconds", stats.comm_seconds)
        .metric("busy_seconds", stats.busy_seconds)
        .metric("gemm_mpi_share_pct", share);
    for (const auto& [name, seconds] : stats.phases) {
      record.phase(name, seconds);
    }
    record.counters_from_registry();
  }
  table.print();
  if (report.write()) {
    std::printf("\nwrote %s\n", report.default_path().c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n",
                 report.default_path().c_str());
    return 1;
  }
  std::printf(
      "\npaper reference (Fig 8): K-Means, FFT and GEMM scale almost\n"
      "ideally while the MPI share grows with rank count; GEMM+Allreduce\n"
      "stays a small fraction (12.87%% in the paper's test).\n");
  return 0;
}
