// Paper Figure 7: strong scaling of three code versions (Naive, ISDF,
// ISDF-LOBPCG) with parallel efficiency bars.
//
// Ranks are threads of the message-passing runtime on a single-core
// container, so wall clock cannot shrink with rank count. Following the
// substitution documented in DESIGN.md, efficiency is computed on the
// max-per-rank BUSY time (wall minus time blocked in communication):
// busy(R)·R / busy(1) measures how evenly the fixed work divides and how
// much extra compute parallelization introduces — the quantity whose
// decay the paper's Figure 7 plots. Communication volume is also shown
// (it grows with R — the reason the paper's efficiency falls).
#include <cstdio>

#include "bench_util.hpp"
#include "tddft/dist_driver.hpp"

using namespace lrt;

namespace {

void sweep(const char* name, const tddft::Version version,
           const tddft::CasidaProblem& problem) {
  Table table(std::string("Fig 7 (scaled): strong scaling — ") + name,
              {"ranks", "busy max [s]", "comm max [s]", "efficiency",
               "MB sent/rank"});
  double busy1 = 0;
  for (const int ranks : {1, 2, 4, 8}) {
    tddft::DistDriverStats stats;
    long long bytes = 0;
    par::run(ranks, [&](par::Comm& comm) {
      tddft::DistDriverOptions opts;
      opts.version = version;
      opts.num_states = 4;
      opts.nmu_ratio = 4.0;
      stats = tddft::solve_casida_distributed(comm, problem, opts);
      if (comm.rank() == 0) bytes = comm.bytes_sent();
    });
    if (ranks == 1) busy1 = stats.busy_seconds;
    const double efficiency = busy1 / (stats.busy_seconds * ranks);
    table.row()
        .cell(ranks)
        .cell(stats.busy_seconds, 3)
        .cell(stats.comm_seconds, 3)
        .cell(format_real(100.0 * efficiency, 1) + "%")
        .cell(double(bytes) / 1e6, 2);
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  const bench::Workload w{"Si16*", 24, 16, 14, 13.0, 16};
  const tddft::CasidaProblem problem = bench::make_workload(w);
  std::printf("system: Nr=%td Nv=%td Nc=%td\n\n", problem.nr(), problem.nv(),
              problem.nc());

  sweep("Naive (version 1)", tddft::Version::kNaive, problem);
  sweep("Implicit-Kmeans-ISDF-LOBPCG (version 5)", tddft::Version::kImplicit,
        problem);

  std::printf(
      "paper reference (Fig 7): parallel efficiency stays above ~50%% to\n"
      "2048 cores for the naive version; the ISDF versions trade a little\n"
      "strong-scaling efficiency for the 10x absolute speedup.\n");
  return 0;
}
