// Shared helpers for the paper-reproduction benches.
//
// Workloads are scaled-down versions of the paper's silicon series: the
// synthetic-orbital generator produces localized orbital sets whose pair
// products have the same low-rank structure ISDF exploits (DESIGN.md
// documents the substitution). `SiWorkload` entries mimic the ratios
// Nv ≈ Nc ≈ Ne/2, Nr ≈ 100..1000 x Ne of the paper's Table 2.
#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "dft/synthetic.hpp"
#include "tddft/driver.hpp"

namespace lrt::bench {

struct Workload {
  std::string label;   ///< e.g. "Si8*" (scaled analog)
  Index nv = 0;
  Index nc = 0;
  Index grid = 0;      ///< points per axis
  Real cell = 10.0;    ///< cubic cell edge (Bohr)
  Index centers = 8;   ///< synthetic atom count
};

inline tddft::CasidaProblem make_workload(const Workload& w,
                                          unsigned seed = 1234) {
  const grid::RealSpaceGrid g(grid::UnitCell::cubic(w.cell),
                              {w.grid, w.grid, w.grid});
  dft::SyntheticOptions opts;
  opts.num_centers = w.centers;
  opts.seed = seed;
  return tddft::make_problem_from_synthetic(
      g, dft::make_synthetic_orbitals(g, w.nv, w.nc, opts));
}

/// The scaled silicon ladder used by the speedup / weak-scaling benches.
/// Atom counts follow the paper's labels divided by 8 (one conventional
/// cell of the paper's system per 8 atoms here).
inline std::vector<Workload> silicon_ladder() {
  return {
      {"Si8*", 16, 8, 10, 10.3, 8},
      {"Si16*", 24, 12, 12, 13.0, 16},
      {"Si27*", 32, 16, 14, 15.5, 27},
      {"Si64*", 48, 24, 16, 20.5, 64},
  };
}

}  // namespace lrt::bench
