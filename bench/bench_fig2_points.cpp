// Paper Figure 2: interpolation points track the support of the
// excitation wavefunctions.
//
// Numeric stand-in for the visualization (the isdf_points_csv example
// writes plottable CSVs): checks that the K-Means points of a strongly
// localized problem (a) carry far-above-average weight, (b) cover every
// weight blob, and prints the weighted-coverage statistics.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "isdf/kmeans_points.hpp"
#include "kmeans/kmeans.hpp"

using namespace lrt;

int main() {
  const grid::RealSpaceGrid g(grid::UnitCell::cubic(12.0), {16, 16, 16});
  dft::SyntheticOptions sopts;
  sopts.num_centers = 6;
  sopts.width = 1.2;  // tight lobes -> well separated support blobs
  sopts.seed = 99;
  const dft::SyntheticOrbitals orbs = dft::make_synthetic_orbitals(g, 6, 4,
                                                                   sopts);

  const std::vector<Real> weights =
      kmeans::pair_weights(orbs.psi_v.view(), orbs.psi_c.view());
  Real wmax = 0, wsum = 0;
  for (const Real w : weights) {
    wmax = std::max(wmax, w);
    wsum += w;
  }
  const Real wmean = wsum / static_cast<Real>(weights.size());

  Table table("Fig 2 (statistics): K-Means points vs weight landscape",
              {"Nmu", "min w(point)/mean w", "median w(point)/mean w",
               "weight within 2 Bohr of a point"});
  for (const Index nmu : {15, 30, 60}) {
    const isdf::KmeansPointResult km = isdf::select_points_kmeans(
        g, orbs.psi_v.view(), orbs.psi_c.view(), nmu, {});

    std::vector<Real> point_weights;
    for (const Index p : km.points) {
      point_weights.push_back(weights[static_cast<std::size_t>(p)]);
    }
    std::sort(point_weights.begin(), point_weights.end());

    // Weighted coverage: fraction of total weight within 2 Bohr of the
    // nearest interpolation point.
    Real covered = 0;
    for (Index i = 0; i < g.size(); ++i) {
      const grid::Vec3 r = g.position(i);
      for (const Index p : km.points) {
        const grid::Vec3 d = g.cell().minimum_image(g.position(p), r);
        if (grid::norm2(d) < 4.0) {
          covered += weights[static_cast<std::size_t>(i)];
          break;
        }
      }
    }

    table.row()
        .cell(nmu)
        .cell(point_weights.front() / wmean, 2)
        .cell(point_weights[point_weights.size() / 2] / wmean, 2)
        .cell(format_real(100.0 * covered / wsum, 1) + "%");
  }
  table.print();
  std::printf("\nmax weight / mean weight in this landscape: %.1f\n",
              wmax / wmean);
  std::printf(
      "paper reference (Fig 2): the 15 chosen points all sit on the\n"
      "wavefunction support — here: point weights well above the mean and\n"
      "high weighted coverage, improving with Nmu.\n");
  return 0;
}
