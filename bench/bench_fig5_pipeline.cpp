// Paper §5.3 / Figures 4-5: pipelined GEMM + MPI_Reduce vs monolithic
// GEMM + MPI_Allreduce for assembling Vhxc.
//
// Two effects to reproduce: (1) the pipelined path sends ~p times fewer
// bytes (each output row lands on one owner instead of being replicated
// everywhere) and each rank stores only its slice; (2) per-chunk reduces
// interleave communication between GEMM pieces.
#include <cstdio>

#include "bench_util.hpp"
#include "la/blas.hpp"
#include "par/pipeline.hpp"

using namespace lrt;

int main() {
  const Index m = 20000;  // grid rows (distributed)
  const Index k = 256;    // output rows (pair space)
  const Index n = 256;

  std::printf("Vhxc assembly model: C = Aᵀ B with A,B %td x %td/%td row-"
              "distributed\n\n", m, k, n);

  Table table("Fig 5 (model): GEMM+Allreduce vs pipelined GEMM+Reduce",
              {"ranks", "strategy", "time [s]", "MB sent/rank",
               "C rows held/rank"});

  for (const int ranks : {2, 4, 8}) {
    for (const bool pipelined : {false, true}) {
      double seconds = 0;
      long long bytes = 0;
      Index rows_held = 0;
      par::run(ranks, [&](par::Comm& comm) {
        Rng rng(7 + comm.rank());
        const par::BlockPartition part(m, comm.size());
        const la::RealMatrix a = la::RealMatrix::random_normal(
            part.count(comm.rank()), k, rng);
        const la::RealMatrix b = la::RealMatrix::random_normal(
            part.count(comm.rank()), n, rng);
        comm.barrier();
        Timer t;
        if (pipelined) {
          const par::PipelineResult r =
              par::gram_reduce_pipelined(comm, a.view(), b.view(), 32);
          if (comm.rank() == 0) rows_held = r.local_rows.rows();
        } else {
          const la::RealMatrix c =
              par::gram_reduce_monolithic(comm, a.view(), b.view());
          if (comm.rank() == 0) rows_held = c.rows();
        }
        comm.barrier();
        if (comm.rank() == 0) {
          seconds = t.seconds();
          bytes = comm.bytes_sent();
        }
      });
      table.row()
          .cell(ranks)
          .cell(pipelined ? "pipelined GEMM+Reduce" : "GEMM+Allreduce")
          .cell(seconds, 3)
          .cell(double(bytes) / 1e6, 2)
          .cell(rows_held);
    }
  }
  table.print();
  std::printf(
      "\npaper reference (§5.3): the optimization removes the all-to-all\n"
      "replication — each rank keeps a Vhxc slice — and overlaps reduces\n"
      "with remaining GEMM chunks. Compare bytes/rank and rows held.\n");
  return 0;
}
