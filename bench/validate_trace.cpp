// Chrome-trace validator for CI.
//
// Loads a trace produced via LRT_TRACE, checks it is well-formed Chrome
// trace JSON, and — for each --require-phase NAME — checks that every
// rank thread present in the trace (tid other than the non-rank sentinel)
// recorded at least one complete ("X") event with that name.
//
// Required phase names must come from the generated registry
// (src/obs/phase_registry.hpp): a typo'd or retired phase name fails
// immediately with the known vocabulary instead of "missing on every
// rank". lrt-analyze enforces the same vocabulary statically.
//
// Flow events (ph:"s"/"f", the message arrows) are always checked for
// well-formedness: every id must pair exactly one "s" with exactly one
// "f", the send must not postdate the receive, and each endpoint must
// bind to a complete slice on its row (Perfetto silently drops unbound
// arrows). --require-flow additionally fails when the trace carries no
// flow pairs at all (the ci.sh trace pass uses this).
//
//   validate_trace trace.json --require-phase fft --require-flow
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/phase_registry.hpp"

namespace {

// Must match the sentinel tid obs.cpp assigns to threads outside par::run.
constexpr long long kNonRankTid = 1000000;

// Merged [start, end] slice coverage per (pid, tid) row, for the flow
// binding check: a flow endpoint binds iff some slice on its row covers
// its timestamp.
struct RowCoverage {
  std::vector<std::pair<double, double>> raw;

  bool covers(double ts) const {
    // raw is merged+sorted by the time contains() is called.
    auto it = std::upper_bound(
        raw.begin(), raw.end(), ts,
        [](double t, const std::pair<double, double>& iv) { return t < iv.first; });
    if (it == raw.begin()) return false;
    --it;
    return ts <= it->second;
  }

  void merge() {
    std::sort(raw.begin(), raw.end());
    std::vector<std::pair<double, double>> merged;
    for (const auto& [a, b] : raw) {
      if (!merged.empty() && a <= merged.back().second) {
        merged.back().second = std::max(merged.back().second, b);
      } else {
        merged.push_back({a, b});
      }
    }
    raw = std::move(merged);
  }
};

struct FlowEndpoint {
  int sends = 0;
  int recvs = 0;
  double send_ts = 0.0;
  double recv_ts = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::vector<std::string> required;
  bool require_flow = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--require-phase" && i + 1 < argc) {
      required.emplace_back(argv[++i]);
    } else if (arg == "--require-flow") {
      require_flow = true;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: %s TRACE.json [--require-phase NAME]... "
                   "[--require-flow]\n",
                   argv[0]);
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: %s TRACE.json [--require-phase NAME]... "
                 "[--require-flow]\n",
                 argv[0]);
    return 2;
  }
  for (const std::string& phase : required) {
    if (!lrt::obs::phase::is_registered(phase)) {
      std::fprintf(stderr,
                   "validate_trace: \"%s\" is not a registered phase "
                   "(see src/obs/phases.def); known phases:\n",
                   phase.c_str());
      for (const char* known : lrt::obs::phase::kAll) {
        std::fprintf(stderr, "  %s\n", known);
      }
      return 2;
    }
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "validate_trace: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  lrt::obs::json::Value root;
  try {
    root = lrt::obs::json::parse(buffer.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "validate_trace: %s is not valid JSON: %s\n",
                 path.c_str(), e.what());
    return 1;
  }

  if (!root.is_object()) {
    std::fprintf(stderr, "validate_trace: top level is not an object\n");
    return 1;
  }
  const lrt::obs::json::Value* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "validate_trace: missing traceEvents array\n");
    return 1;
  }

  // phase name -> set of rank tids that recorded it.
  std::map<std::string, std::set<long long>> phase_tids;
  std::set<long long> rank_tids;
  long long complete_events = 0;
  // (pid, tid) -> slice coverage; flow id -> endpoints. A flow event's
  // binding row is checked after all slices are collected.
  std::map<std::pair<long long, long long>, RowCoverage> coverage;
  std::map<std::string, FlowEndpoint> flows;
  struct FlowSite {
    std::string id;
    char phase;
    long long pid;
    long long tid;
    double ts;
  };
  std::vector<FlowSite> flow_sites;
  for (const auto& ev : events->array) {
    if (!ev.is_object()) {
      std::fprintf(stderr, "validate_trace: non-object trace event\n");
      return 1;
    }
    const auto* ph = ev.find("ph");
    const auto* tid = ev.find("tid");
    if (ph == nullptr || !ph->is_string() || tid == nullptr ||
        !tid->is_number()) {
      std::fprintf(stderr, "validate_trace: event missing ph/tid\n");
      return 1;
    }
    const auto* pid = ev.find("pid");
    const long long pid_v =
        pid != nullptr && pid->is_number() ? static_cast<long long>(pid->number)
                                           : 0;
    if (ph->string == "s" || ph->string == "f") {
      const auto* id = ev.find("id");
      const auto* ts = ev.find("ts");
      if (id == nullptr || !id->is_string() || ts == nullptr ||
          !ts->is_number()) {
        std::fprintf(stderr, "validate_trace: flow event missing id/ts\n");
        return 1;
      }
      FlowEndpoint& f = flows[id->string];
      if (ph->string == "s") {
        f.sends += 1;
        f.send_ts = ts->number;
      } else {
        f.recvs += 1;
        f.recv_ts = ts->number;
        const auto* bp = ev.find("bp");
        if (bp == nullptr || !bp->is_string() || bp->string != "e") {
          std::fprintf(stderr,
                       "validate_trace: flow finish %s lacks bp:\"e\"\n",
                       id->string.c_str());
          return 1;
        }
      }
      flow_sites.push_back(FlowSite{id->string, ph->string[0], pid_v,
                                    static_cast<long long>(tid->number),
                                    ts->number});
      continue;
    }
    if (ph->string != "X") continue;
    const auto* name = ev.find("name");
    const auto* ts = ev.find("ts");
    const auto* dur = ev.find("dur");
    if (name == nullptr || !name->is_string() || ts == nullptr ||
        !ts->is_number() || dur == nullptr || !dur->is_number()) {
      std::fprintf(stderr,
                   "validate_trace: complete event missing name/ts/dur\n");
      return 1;
    }
    if (dur->number < 0) {
      std::fprintf(stderr, "validate_trace: negative duration in %s\n",
                   name->string.c_str());
      return 1;
    }
    ++complete_events;
    coverage[{pid_v, static_cast<long long>(tid->number)}].raw.push_back(
        {ts->number, ts->number + dur->number});
    const long long t = static_cast<long long>(tid->number);
    if (t == kNonRankTid) continue;
    rank_tids.insert(t);
    phase_tids[name->string].insert(t);
  }

  // Flow well-formedness: exact s/f pairing, causal order, bound slices.
  bool flow_ok = true;
  for (const auto& [id, f] : flows) {
    if (f.sends != 1 || f.recvs != 1) {
      std::fprintf(stderr,
                   "validate_trace: flow %s has %d start(s)/%d finish(es), "
                   "want exactly 1/1\n",
                   id.c_str(), f.sends, f.recvs);
      flow_ok = false;
      continue;
    }
    if (f.send_ts > f.recv_ts) {
      std::fprintf(stderr,
                   "validate_trace: flow %s finishes (%.3f) before it starts "
                   "(%.3f)\n",
                   id.c_str(), f.recv_ts, f.send_ts);
      flow_ok = false;
    }
  }
  for (auto& [row, cov] : coverage) cov.merge();
  for (const FlowSite& site : flow_sites) {
    const auto it = coverage.find({site.pid, site.tid});
    // %.3f µs rendering is exact at ns resolution, but leave a 1 ns slack.
    if (it == coverage.end() || !it->second.covers(site.ts) ) {
      if (it != coverage.end() && (it->second.covers(site.ts - 0.001) ||
                                   it->second.covers(site.ts + 0.001))) {
        continue;
      }
      std::fprintf(stderr,
                   "validate_trace: flow %s endpoint '%c' at ts %.3f on "
                   "pid %lld tid %lld binds to no slice\n",
                   site.id.c_str(), site.phase, site.ts, site.pid, site.tid);
      flow_ok = false;
    }
  }
  if (!flow_ok) return 1;
  if (require_flow && flows.empty()) {
    std::fprintf(stderr,
                 "validate_trace: --require-flow but the trace has no flow "
                 "events\n");
    return 1;
  }

  std::printf(
      "validate_trace: %s — %lld complete events, %zu flow pairs, %zu rank "
      "tids\n",
      path.c_str(), complete_events, flows.size(), rank_tids.size());

  if (!required.empty() && rank_tids.empty()) {
    std::fprintf(stderr, "validate_trace: no rank threads in trace\n");
    return 1;
  }
  bool ok = true;
  for (const std::string& phase : required) {
    const auto it = phase_tids.find(phase);
    for (const long long tid : rank_tids) {
      if (it == phase_tids.end() || it->second.count(tid) == 0) {
        std::fprintf(stderr,
                     "validate_trace: phase \"%s\" missing on rank tid "
                     "%lld\n",
                     phase.c_str(), tid);
        ok = false;
      }
    }
    if (ok) {
      std::printf("  phase \"%s\": present on all %zu rank tids\n",
                  phase.c_str(), rank_tids.size());
    }
  }
  return ok ? 0 : 1;
}
