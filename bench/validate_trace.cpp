// Chrome-trace validator for CI.
//
// Loads a trace produced via LRT_TRACE, checks it is well-formed Chrome
// trace JSON, and — for each --require-phase NAME — checks that every
// rank thread present in the trace (tid other than the non-rank sentinel)
// recorded at least one complete ("X") event with that name.
//
// Required phase names must come from the generated registry
// (src/obs/phase_registry.hpp): a typo'd or retired phase name fails
// immediately with the known vocabulary instead of "missing on every
// rank". lrt-analyze enforces the same vocabulary statically.
//
//   validate_trace trace.json --require-phase fft --require-phase mpi
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/phase_registry.hpp"

namespace {

// Must match the sentinel tid obs.cpp assigns to threads outside par::run.
constexpr long long kNonRankTid = 1000000;

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::vector<std::string> required;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--require-phase" && i + 1 < argc) {
      required.emplace_back(argv[++i]);
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "usage: %s TRACE.json [--require-phase NAME]...\n",
                   argv[0]);
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: %s TRACE.json [--require-phase NAME]...\n",
                 argv[0]);
    return 2;
  }
  for (const std::string& phase : required) {
    if (!lrt::obs::phase::is_registered(phase)) {
      std::fprintf(stderr,
                   "validate_trace: \"%s\" is not a registered phase "
                   "(see src/obs/phases.def); known phases:\n",
                   phase.c_str());
      for (const char* known : lrt::obs::phase::kAll) {
        std::fprintf(stderr, "  %s\n", known);
      }
      return 2;
    }
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "validate_trace: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  lrt::obs::json::Value root;
  try {
    root = lrt::obs::json::parse(buffer.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "validate_trace: %s is not valid JSON: %s\n",
                 path.c_str(), e.what());
    return 1;
  }

  if (!root.is_object()) {
    std::fprintf(stderr, "validate_trace: top level is not an object\n");
    return 1;
  }
  const lrt::obs::json::Value* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "validate_trace: missing traceEvents array\n");
    return 1;
  }

  // phase name -> set of rank tids that recorded it.
  std::map<std::string, std::set<long long>> phase_tids;
  std::set<long long> rank_tids;
  long long complete_events = 0;
  for (const auto& ev : events->array) {
    if (!ev.is_object()) {
      std::fprintf(stderr, "validate_trace: non-object trace event\n");
      return 1;
    }
    const auto* ph = ev.find("ph");
    const auto* tid = ev.find("tid");
    if (ph == nullptr || !ph->is_string() || tid == nullptr ||
        !tid->is_number()) {
      std::fprintf(stderr, "validate_trace: event missing ph/tid\n");
      return 1;
    }
    if (ph->string != "X") continue;
    const auto* name = ev.find("name");
    const auto* ts = ev.find("ts");
    const auto* dur = ev.find("dur");
    if (name == nullptr || !name->is_string() || ts == nullptr ||
        !ts->is_number() || dur == nullptr || !dur->is_number()) {
      std::fprintf(stderr,
                   "validate_trace: complete event missing name/ts/dur\n");
      return 1;
    }
    if (dur->number < 0) {
      std::fprintf(stderr, "validate_trace: negative duration in %s\n",
                   name->string.c_str());
      return 1;
    }
    ++complete_events;
    const long long t = static_cast<long long>(tid->number);
    if (t == kNonRankTid) continue;
    rank_tids.insert(t);
    phase_tids[name->string].insert(t);
  }

  std::printf("validate_trace: %s — %lld complete events, %zu rank tids\n",
              path.c_str(), complete_events, rank_tids.size());

  if (!required.empty() && rank_tids.empty()) {
    std::fprintf(stderr, "validate_trace: no rank threads in trace\n");
    return 1;
  }
  bool ok = true;
  for (const std::string& phase : required) {
    const auto it = phase_tids.find(phase);
    for (const long long tid : rank_tids) {
      if (it == phase_tids.end() || it->second.count(tid) == 0) {
        std::fprintf(stderr,
                     "validate_trace: phase \"%s\" missing on rank tid "
                     "%lld\n",
                     phase.c_str(), tid);
        ok = false;
      }
    }
    if (ok) {
      std::printf("  phase \"%s\": present on all %zu rank tids\n",
                  phase.c_str(), rank_tids.size());
    }
  }
  return ok ? 0 : 1;
}
