// Machine-readable-report validator for CI.
//
// Dispatches on the top-level "schema" field:
//
//   lrt.bench/1    reports produced by obs::BenchReport — checks the
//                  schema/name/records envelope, the per-record
//                  label/params/phases/counters/metrics shape, and that
//                  every numeric payload is finite (BenchReport
//                  serializes non-finite values as null, which would
//                  silently poison a regression comparison).
//   lrt.analyze/1  reports produced by lrt-analyze --json — checks the
//                  passes/summary/findings envelope, per-finding
//                  pass/file/line/message/status shape, and that the
//                  summary counts agree with the findings list.
//
//   validate_bench BENCH_micro.json [lrt-analyze.json ...]
//
// Exit codes: 0 valid, 1 schema violation, 2 usage/unreadable file.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"

namespace {

using lrt::obs::json::Value;

int errors = 0;

void fail(const std::string& path, const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", path.c_str(), message.c_str());
  ++errors;
}

/// Checks one {"key": value, ...} section (params also admit strings).
void check_section(const std::string& path, const Value& record,
                   const std::string& section, bool allow_strings) {
  const Value* obj = record.find(section);
  if (!obj || !obj->is_object()) {
    fail(path, "record missing object section '" + section + "'");
    return;
  }
  for (const auto& [key, value] : obj->object) {
    if (key.empty()) fail(path, "empty key in '" + section + "'");
    if (value.is_number()) {
      const double v = value.number;
      if (!(v == v) || v > 1e300 || v < -1e300) {
        fail(path, "non-finite value for '" + key + "' in '" + section + "'");
      }
    } else if (!(allow_strings && value.is_string())) {
      // BenchReport emits null for NaN/Inf metrics; reject it here.
      fail(path, "'" + section + "' entry '" + key +
                     "' is neither a finite number nor an allowed string");
    }
  }
}

void check_bench(const std::string& path, const Value& doc) {
  const Value* name = doc.find("name");
  if (!name || !name->is_string() || name->string.empty()) {
    fail(path, "missing bench name");
  }
  const Value* records = doc.find("records");
  if (!records || !records->is_array()) {
    fail(path, "missing records array");
    return;
  }
  if (records->array.empty()) {
    fail(path, "records array is empty");
  }
  for (const Value& record : records->array) {
    if (!record.is_object()) {
      fail(path, "record is not an object");
      continue;
    }
    const Value* label = record.find("label");
    if (!label || !label->is_string() || label->string.empty()) {
      fail(path, "record missing label");
    }
    check_section(path, record, "params", /*allow_strings=*/true);
    check_section(path, record, "phases", /*allow_strings=*/false);
    check_section(path, record, "counters", /*allow_strings=*/false);
    check_section(path, record, "metrics", /*allow_strings=*/false);
  }
}

void check_analyze(const std::string& path, const Value& doc) {
  const Value* passes = doc.find("passes");
  if (!passes || !passes->is_array() || passes->array.empty()) {
    fail(path, "missing or empty passes array");
  } else {
    for (const Value& pass : passes->array) {
      if (!pass.is_string() || pass.string.empty()) {
        fail(path, "passes entry is not a non-empty string");
      }
    }
  }

  const Value* summary = doc.find("summary");
  double expected[3] = {0, 0, 0};  // new, suppressed, baselined
  if (!summary || !summary->is_object()) {
    fail(path, "missing summary object");
    summary = nullptr;
  } else {
    const char* keys[3] = {"new", "suppressed", "baselined"};
    for (int i = 0; i < 3; ++i) {
      const Value* v = summary->find(keys[i]);
      if (!v || !v->is_number() || v->number < 0) {
        fail(path, std::string("summary missing count '") + keys[i] + "'");
      } else {
        expected[i] = v->number;
      }
    }
  }

  const Value* findings = doc.find("findings");
  if (!findings || !findings->is_array()) {
    fail(path, "missing findings array");
    return;
  }
  double counted[3] = {0, 0, 0};
  for (const Value& f : findings->array) {
    if (!f.is_object()) {
      fail(path, "finding is not an object");
      continue;
    }
    const Value* pass = f.find("pass");
    const Value* file = f.find("file");
    const Value* line = f.find("line");
    const Value* message = f.find("message");
    const Value* status = f.find("status");
    if (!pass || !pass->is_string() || pass->string.empty()) {
      fail(path, "finding missing pass");
    }
    if (!file || !file->is_string() || file->string.empty()) {
      fail(path, "finding missing file");
    }
    if (!line || !line->is_number() || line->number < 1) {
      fail(path, "finding missing positive line");
    }
    if (!message || !message->is_string() || message->string.empty()) {
      fail(path, "finding missing message");
    }
    if (!status || !status->is_string()) {
      fail(path, "finding missing status");
    } else if (status->string == "new") {
      ++counted[0];
    } else if (status->string == "suppressed") {
      ++counted[1];
    } else if (status->string == "baselined") {
      ++counted[2];
    } else {
      fail(path, "finding status '" + status->string + "' is not one of "
                     "new/suppressed/baselined");
    }
  }
  if (summary &&
      (counted[0] != expected[0] || counted[1] != expected[1] ||
       counted[2] != expected[2])) {
    fail(path, "summary counts disagree with the findings list");
  }
}

int check_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();

  Value doc;
  try {
    doc = lrt::obs::json::parse(text.str());
  } catch (const std::exception& e) {
    fail(path, std::string("malformed JSON: ") + e.what());
    return 1;
  }
  if (!doc.is_object()) {
    fail(path, "top level is not an object");
    return 1;
  }

  const Value* schema = doc.find("schema");
  if (!schema || !schema->is_string()) {
    fail(path, "missing schema field");
  } else if (schema->string == "lrt.bench/1") {
    check_bench(path, doc);
  } else if (schema->string == "lrt.analyze/1") {
    check_analyze(path, doc);
  } else {
    fail(path, "unknown schema \"" + schema->string + "\"");
  }
  return errors ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s REPORT.json [REPORT.json ...]\n",
                 argv[0]);
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    const int file_rc = check_file(argv[i]);
    rc = std::max(rc, file_rc);
    if (file_rc == 0) {
      std::printf("%s: ok\n", argv[i]);
    }
  }
  return rc;
}
