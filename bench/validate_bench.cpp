// BENCH_*.json validator for CI (the bench-smoke stage).
//
// Loads one or more reports produced by obs::BenchReport and checks them
// against the lrt.bench/1 schema: the schema/name/records envelope, the
// per-record label/params/phases/counters/metrics shape, and that every
// numeric payload is finite (BenchReport serializes non-finite values as
// null, which would silently poison a regression comparison).
//
//   validate_bench BENCH_micro.json [BENCH_fig8.json ...]
//
// Exit codes: 0 valid, 1 schema violation, 2 usage/unreadable file.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"

namespace {

using lrt::obs::json::Value;

int errors = 0;

void fail(const std::string& path, const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", path.c_str(), message.c_str());
  ++errors;
}

/// Checks one {"key": value, ...} section (params also admit strings).
void check_section(const std::string& path, const Value& record,
                   const std::string& section, bool allow_strings) {
  const Value* obj = record.find(section);
  if (!obj || !obj->is_object()) {
    fail(path, "record missing object section '" + section + "'");
    return;
  }
  for (const auto& [key, value] : obj->object) {
    if (key.empty()) fail(path, "empty key in '" + section + "'");
    if (value.is_number()) {
      const double v = value.number;
      if (!(v == v) || v > 1e300 || v < -1e300) {
        fail(path, "non-finite value for '" + key + "' in '" + section + "'");
      }
    } else if (!(allow_strings && value.is_string())) {
      // BenchReport emits null for NaN/Inf metrics; reject it here.
      fail(path, "'" + section + "' entry '" + key +
                     "' is neither a finite number nor an allowed string");
    }
  }
}

int check_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();

  Value doc;
  try {
    doc = lrt::obs::json::parse(text.str());
  } catch (const std::exception& e) {
    fail(path, std::string("malformed JSON: ") + e.what());
    return 1;
  }
  if (!doc.is_object()) {
    fail(path, "top level is not an object");
    return 1;
  }

  const Value* schema = doc.find("schema");
  if (!schema || !schema->is_string() || schema->string != "lrt.bench/1") {
    fail(path, "schema is not \"lrt.bench/1\"");
  }
  const Value* name = doc.find("name");
  if (!name || !name->is_string() || name->string.empty()) {
    fail(path, "missing bench name");
  }
  const Value* records = doc.find("records");
  if (!records || !records->is_array()) {
    fail(path, "missing records array");
    return errors ? 1 : 0;
  }
  if (records->array.empty()) {
    fail(path, "records array is empty");
  }
  for (const Value& record : records->array) {
    if (!record.is_object()) {
      fail(path, "record is not an object");
      continue;
    }
    const Value* label = record.find("label");
    if (!label || !label->is_string() || label->string.empty()) {
      fail(path, "record missing label");
    }
    check_section(path, record, "params", /*allow_strings=*/true);
    check_section(path, record, "phases", /*allow_strings=*/false);
    check_section(path, record, "counters", /*allow_strings=*/false);
    check_section(path, record, "metrics", /*allow_strings=*/false);
  }
  return errors ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s BENCH.json [BENCH.json ...]\n", argv[0]);
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    const int file_rc = check_file(argv[i]);
    rc = std::max(rc, file_rc);
    if (file_rc == 0) {
      std::printf("%s: ok\n", argv[i]);
    }
  }
  return rc;
}
