// Paper Figure 9: ground- and excited-state DOS of the bilayer-graphene
// system at two interlayer distances (MATBG analog; DESIGN.md documents
// the substitution of the 1,180-atom magic-angle cell by an AB-stacked
// patch).
//
// Shape to reproduce: at D = 2.6 Å the interlayer coupling produces extra
// states near the Fermi level that are absent at D = 4.0 Å, and the
// excitation spectrum has a cluster of low-lying states.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "dft/scf.hpp"
#include "tddft/spectrum.hpp"

using namespace lrt;

namespace {

dft::KohnShamResult run_scf(Real dz_angstrom) {
  const grid::Structure s = grid::make_bilayer_graphene(
      1, 1, dz_angstrom * units::kAngstromToBohr, 4.5);
  dft::ScfOptions scf;
  scf.ecut = 5.0;
  scf.num_conduction = 8;
  scf.smearing = 0.005;
  scf.density_tolerance = 1e-4;
  scf.max_iterations = 50;
  return dft::solve_ground_state(s, scf);
}

/// DOS integral around the Fermi level (|E-EF| < window eV).
Real near_fermi_weight(const dft::KohnShamResult& ks, Real window_ev) {
  Real count = 0;
  for (const Real e : ks.eigenvalues) {
    const Real de = std::abs(e - ks.fermi_level) * units::kHartreeToEv;
    if (de < window_ev) count += 1;
  }
  return count;
}

}  // namespace

int main() {
  std::printf("bilayer graphene patch (8 C atoms/layer pair), Fig 9 analog\n\n");

  const dft::KohnShamResult close_layers = run_scf(2.6);
  const dft::KohnShamResult far_layers = run_scf(4.0);

  Table dos("Fig 9a (scaled): states near the Fermi level",
            {"interlayer D [A]", "SCF iters", "EF [eV]",
             "# states |E-EF| < 1.5 eV", "# states |E-EF| < 3 eV"});
  for (const auto* ks : {&close_layers, &far_layers}) {
    dos.row()
        .cell(ks == &close_layers ? "2.6" : "4.0")
        .cell(ks->iterations)
        .cell(ks->fermi_level * units::kHartreeToEv, 3)
        .cell(static_cast<Index>(near_fermi_weight(*ks, 1.5)))
        .cell(static_cast<Index>(near_fermi_weight(*ks, 3.0)));
  }
  dos.print();

  // Excited states at D = 2.6 A.
  const Index nv_use = std::min<Index>(6, close_layers.num_occupied);
  const Index nc_use =
      std::min<Index>(6, close_layers.orbitals.cols() -
                             close_layers.num_occupied);
  const tddft::CasidaProblem problem =
      tddft::make_problem_from_scf(close_layers, nv_use, nc_use);
  tddft::DriverOptions opts;
  opts.version = tddft::Version::kImplicit;
  opts.num_states = std::min<Index>(8, problem.ncv());
  const tddft::DriverResult r = tddft::solve_casida(problem, opts);

  Table exc("Fig 9b (scaled): low-lying excitation energies at D = 2.6 A",
            {"state", "E [eV]"});
  for (std::size_t i = 0; i < r.energies.size(); ++i) {
    exc.row()
        .cell(static_cast<Index>(i + 1))
        .cell(r.energies[i] * units::kHartreeToEv, 3);
  }
  exc.print();
  std::printf(
      "\nlowest excitation: %.2f eV (a single AB-stacked cell has no moire\n"
      "flat band, so the cluster sits higher than the paper's 0-0.5 eV;\n"
      "the D = 2.6 vs 4.0 near-EF state count above is the transferable\n"
      "observable — see EXPERIMENTS.md).\n",
      r.energies.front() * units::kHartreeToEv);
  return 0;
}
