// Disabled-mode span overhead microbench.
//
// An obs::Span with tracing off must cost a relaxed atomic load and two
// untaken branches — cheap enough to leave in hot paths permanently. This
// bench measures the median per-span cost over many batches and, with
// --max-ns N, exits nonzero when the median exceeds the budget (used as a
// CI gate; the ISSUE-2 acceptance bound is 20 ns).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/timer.hpp"
#include "obs/obs.hpp"

using namespace lrt;

namespace {

constexpr int kBatches = 101;
constexpr int kSpansPerBatch = 100000;

double median_ns_per_span() {
  std::vector<double> batch_ns(kBatches);
  for (int b = 0; b < kBatches; ++b) {
    Timer timer;
    for (int i = 0; i < kSpansPerBatch; ++i) {
      // Synthetic probe, deliberately outside the phase vocabulary.
      obs::Span span("overhead_probe");  // lrt-analyze: allow(phase-registry)
      // Keep the loop body from being hoisted/elided: the span object's
      // address escaping into asm is enough.
      asm volatile("" : : "r"(&span) : "memory");
    }
    batch_ns[static_cast<std::size_t>(b)] =
        timer.seconds() * 1e9 / kSpansPerBatch;
  }
  std::nth_element(batch_ns.begin(), batch_ns.begin() + kBatches / 2,
                   batch_ns.end());
  return batch_ns[kBatches / 2];
}

}  // namespace

int main(int argc, char** argv) {
  double max_ns = -1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-ns") == 0 && i + 1 < argc) {
      max_ns = std::atof(argv[++i]);
    }
  }

  const bool was_enabled = obs::tracing_enabled();
  obs::set_tracing_enabled(false);
  const double disabled_ns = median_ns_per_span();

  // Enabled-mode cost, for information only (it includes the record copy
  // into the thread buffer; not gated).
  obs::set_tracing_enabled(true);
  std::vector<double> enabled_batches(11);
  for (std::size_t b = 0; b < enabled_batches.size(); ++b) {
    Timer timer;
    for (int i = 0; i < 10000; ++i) {
      obs::Span span(
          "overhead_probe_enabled");  // lrt-analyze: allow(phase-registry)
      asm volatile("" : : "r"(&span) : "memory");
    }
    enabled_batches[b] = timer.seconds() * 1e9 / 10000;
    obs::reset_trace();
  }
  std::nth_element(enabled_batches.begin(),
                   enabled_batches.begin() + enabled_batches.size() / 2,
                   enabled_batches.end());
  const double enabled_ns = enabled_batches[enabled_batches.size() / 2];
  obs::set_tracing_enabled(was_enabled);

  std::printf("obs::Span overhead (median over batches)\n");
  std::printf("  disabled: %7.2f ns/span  (%d x %d spans)\n", disabled_ns,
              kBatches, kSpansPerBatch);
  std::printf("  enabled:  %7.2f ns/span  (info only)\n", enabled_ns);

  if (max_ns >= 0.0) {
    if (disabled_ns > max_ns) {
      std::fprintf(stderr,
                   "FAIL: disabled-span median %.2f ns exceeds budget %.2f "
                   "ns\n",
                   disabled_ns, max_ns);
      return 1;
    }
    std::printf("  budget:   %7.2f ns/span  OK\n", max_ns);
  }
  return 0;
}
