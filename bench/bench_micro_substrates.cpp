// Substrate micro-benchmarks (google-benchmark): the kernels whose costs
// the paper's Table 2 accounts — GEMM, 3-D FFT, QRCP, K-Means, the
// Hartree solve, and the implicit Hamiltonian apply.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "fft/fft3d.hpp"
#include "isdf/qrcp_points.hpp"
#include "isdf/kmeans_points.hpp"
#include "la/blas.hpp"
#include "la/qrcp.hpp"
#include "tddft/casida_isdf.hpp"
#include "tddft/implicit_hamiltonian.hpp"

using namespace lrt;

namespace {

void BM_Gemm(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(1);
  const la::RealMatrix a = la::RealMatrix::random_normal(n, n, rng);
  const la::RealMatrix b = la::RealMatrix::random_normal(n, n, rng);
  la::RealMatrix c(n, n);
  for (auto _ : state) {
    la::gemm(la::Trans::kNo, la::Trans::kNo, 1.0, a.view(), b.view(), 0.0,
             c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Fft3D(benchmark::State& state) {
  const Index n = state.range(0);
  const fft::Fft3D fft(n, n, n);
  Rng rng(2);
  std::vector<fft::Complex> x(static_cast<std::size_t>(fft.size()));
  for (auto& v : x) v = fft::Complex(rng.normal(), rng.normal());
  for (auto _ : state) {
    fft.forward(x.data());
    fft.inverse(x.data());
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * fft.size());
}
BENCHMARK(BM_Fft3D)->Arg(16)->Arg(21)->Arg(32);  // 21: Bluestein path

void BM_QrcpTruncated(benchmark::State& state) {
  const Index rank = state.range(0);
  Rng rng(3);
  const la::RealMatrix a = la::RealMatrix::random_normal(128, 4096, rng);
  for (auto _ : state) {
    la::QrcpOptions opts;
    opts.max_rank = rank;
    auto f = la::qrcp_factor(a.view(), opts);
    benchmark::DoNotOptimize(f.rank);
  }
}
BENCHMARK(BM_QrcpTruncated)->Arg(32)->Arg(64)->Arg(128);

void BM_KmeansSelect(benchmark::State& state) {
  const Index nmu = state.range(0);
  const grid::RealSpaceGrid g(grid::UnitCell::cubic(10.0), {16, 16, 16});
  dft::SyntheticOptions sopts;
  sopts.num_centers = 8;
  const dft::SyntheticOrbitals orbs =
      dft::make_synthetic_orbitals(g, 12, 8, sopts);
  for (auto _ : state) {
    auto km = isdf::select_points_kmeans(g, orbs.psi_v.view(),
                                         orbs.psi_c.view(), nmu, {});
    benchmark::DoNotOptimize(km.points.data());
  }
}
BENCHMARK(BM_KmeansSelect)->Arg(32)->Arg(64)->Arg(128);

void BM_ImplicitApply(benchmark::State& state) {
  const bench::Workload w{"S", 16, 12, 12, 11.0, 12};
  const tddft::CasidaProblem problem = bench::make_workload(w);
  const grid::GVectors gv(problem.grid);
  const tddft::HxcKernel kernel(problem.grid, gv, problem.ground_density,
                                true);
  isdf::IsdfOptions iopts;
  iopts.nmu = 96;
  const isdf::IsdfResult dec = isdf_decompose(
      problem.grid, problem.psi_v.view(), problem.psi_c.view(), iopts);
  const la::RealMatrix m = tddft::build_kernel_projection(dec, kernel);
  const tddft::ImplicitHamiltonian h = tddft::make_implicit_hamiltonian(
      tddft::energy_differences(problem), dec, la::to_matrix<Real>(m.view()));
  Rng rng(4);
  const la::RealMatrix x =
      la::RealMatrix::random_normal(problem.ncv(), 8, rng);
  la::RealMatrix y(problem.ncv(), 8);
  for (auto _ : state) {
    h.apply(x.view(), y.view());
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ImplicitApply);

}  // namespace

BENCHMARK_MAIN();
