// Hot-kernel micro substrates: packed GEMM, batched 3-D FFT, pruned
// K-Means — seconds, GFLOP/s, and bytes/point per kernel, emitted as
// BENCH_micro.json (schema lrt.bench/1).
//
// Flags:
//   --compare   also time the pre-PR baselines (gemm_reference, the old
//               per-line Fft3D algorithm, exact K-Means assignment) and
//               report speedup_vs_ref on each new-path record — this is
//               the committed evidence for the PR-4 acceptance numbers;
//   --smoke     tiny sizes for the CI bench-smoke stage (seconds total);
//   --reps N    best-of-N timing (default 3, smoke 2).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/random.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "fft/fft1d.hpp"
#include "fft/fft3d.hpp"
#include "kmeans/kmeans.hpp"
#include "la/blas.hpp"
#include "obs/bench_report.hpp"
#include "obs/counters.hpp"

using namespace lrt;

namespace {

struct Options {
  bool compare = false;
  bool smoke = false;
  int reps = 0;  // 0 = pick by mode
};

void set_threads([[maybe_unused]] int n) {
#ifdef _OPENMP
  omp_set_num_threads(n);
#endif
}

template <typename F>
double best_of(int reps, F&& body) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    body();
    best = std::min(best, timer.seconds());
  }
  return best;
}

// ----- GEMM ----------------------------------------------------------------

void bench_gemm(const Options& opt, Table& table, obs::BenchReport& report) {
  struct Case {
    Index m, n, k;
    la::Trans ta, tb;
    const char* label;
  };
  std::vector<Case> cases;
  if (opt.smoke) {
    cases = {{48, 48, 48, la::Trans::kNo, la::Trans::kNo, "gemm.nn.48"},
             {64, 64, 64, la::Trans::kNo, la::Trans::kNo, "gemm.nn.64"}};
  } else {
    cases = {{128, 128, 128, la::Trans::kNo, la::Trans::kNo, "gemm.nn.128"},
             {256, 256, 256, la::Trans::kNo, la::Trans::kNo, "gemm.nn.256"},
             {512, 512, 512, la::Trans::kNo, la::Trans::kNo, "gemm.nn.512"},
             {256, 256, 256, la::Trans::kYes, la::Trans::kNo, "gemm.tn.256"},
             {256, 256, 256, la::Trans::kNo, la::Trans::kYes, "gemm.nt.256"}};
  }
  const int reps = opt.reps > 0 ? opt.reps : (opt.smoke ? 2 : 3);
  set_threads(1);  // the acceptance claim is single-thread throughput

  for (const Case& c : cases) {
    Rng rng(static_cast<unsigned>(c.m + 2 * c.k));
    const la::RealMatrix a =
        (c.ta == la::Trans::kNo)
            ? la::RealMatrix::random_uniform(c.m, c.k, rng)
            : la::RealMatrix::random_uniform(c.k, c.m, rng);
    const la::RealMatrix b =
        (c.tb == la::Trans::kNo)
            ? la::RealMatrix::random_uniform(c.k, c.n, rng)
            : la::RealMatrix::random_uniform(c.n, c.k, rng);
    la::RealMatrix out(c.m, c.n);

    const double flops = la::gemm_flops(c.m, c.n, c.k);
    // Compulsory traffic per output element: read A and B once, read and
    // write C, amortized over the m*n outputs.
    const double bytes_per_point =
        8.0 *
        (static_cast<double>(c.m) * static_cast<double>(c.k) +
         static_cast<double>(c.k) * static_cast<double>(c.n) +
         2.0 * static_cast<double>(c.m) * static_cast<double>(c.n)) /
        (static_cast<double>(c.m) * static_cast<double>(c.n));

    const double sec_new = best_of(reps, [&] {
      la::gemm(c.ta, c.tb, 1.0, a.view(), b.view(), 0.0, out.view());
    });
    double sec_ref = 0;
    if (opt.compare) {
      sec_ref = best_of(reps, [&] {
        la::gemm_reference(c.ta, c.tb, 1.0, a.view(), b.view(), 0.0,
                           out.view());
      });
    }

    const double gflops_new = flops / sec_new / 1e9;
    table.row()
        .cell(c.label)
        .cell(Index{1})
        .cell(sec_new, 5)
        .cell(gflops_new, 2)
        .cell(bytes_per_point, 1)
        .cell(opt.compare ? format_real(sec_ref / sec_new, 2) + "x" : "-");

    obs::BenchReport::Record& rec = report.record(c.label);
    rec.param("kernel", "gemm")
        .param("path", "new")
        .param("m", static_cast<long long>(c.m))
        .param("n", static_cast<long long>(c.n))
        .param("k", static_cast<long long>(c.k))
        .param("threads", 1LL)
        .metric("seconds_best", sec_new)
        .metric("gflops", gflops_new)
        .metric("bytes_per_point", bytes_per_point);
    if (opt.compare) {
      rec.metric("speedup_vs_ref", sec_ref / sec_new);
      report.record(std::string(c.label) + ".ref")
          .param("kernel", "gemm")
          .param("path", "ref")
          .param("m", static_cast<long long>(c.m))
          .param("n", static_cast<long long>(c.n))
          .param("k", static_cast<long long>(c.k))
          .param("threads", 1LL)
          .metric("seconds_best", sec_ref)
          .metric("gflops", flops / sec_ref / 1e9)
          .metric("bytes_per_point", bytes_per_point);
    }
  }
}

// ----- 3-D FFT -------------------------------------------------------------

/// The pre-PR Fft3D algorithm (scalar per-line transforms, per-element
/// strided gather), kept as the --compare baseline.
void reference_fft3d(const fft::Fft1D& plan, Index n, fft::Complex* x,
                     bool inverse) {
  for (Index i0 = 0; i0 < n; ++i0) {
    for (Index i1 = 0; i1 < n; ++i1) {
      fft::Complex* line = x + (i0 * n + i1) * n;
      if (inverse) {
        plan.inverse(line);
      } else {
        plan.forward(line);
      }
    }
  }
  std::vector<fft::Complex> buffer(static_cast<std::size_t>(n));
  for (Index i0 = 0; i0 < n; ++i0) {
    fft::Complex* slab = x + i0 * n * n;
    for (Index i2 = 0; i2 < n; ++i2) {
      for (Index i1 = 0; i1 < n; ++i1) {
        buffer[static_cast<std::size_t>(i1)] = slab[i1 * n + i2];
      }
      if (inverse) {
        plan.inverse(buffer.data());
      } else {
        plan.forward(buffer.data());
      }
      for (Index i1 = 0; i1 < n; ++i1) {
        slab[i1 * n + i2] = buffer[static_cast<std::size_t>(i1)];
      }
    }
  }
  const Index stride0 = n * n;
  for (Index rem = 0; rem < stride0; ++rem) {
    for (Index i0 = 0; i0 < n; ++i0) {
      buffer[static_cast<std::size_t>(i0)] = x[i0 * stride0 + rem];
    }
    if (inverse) {
      plan.inverse(buffer.data());
    } else {
      plan.forward(buffer.data());
    }
    for (Index i0 = 0; i0 < n; ++i0) {
      x[i0 * stride0 + rem] = buffer[static_cast<std::size_t>(i0)];
    }
  }
}

void bench_fft(const Options& opt, Table& table, obs::BenchReport& report) {
  struct Case {
    Index n;
    int threads;
  };
  std::vector<Case> cases;
  if (opt.smoke) {
    cases = {{16, 1}, {12, 1}};
  } else {
    // 64^3 x 8 threads is the PR-4 acceptance configuration; 21 covers
    // the Bluestein (non-power-of-two) path the paper's grids hit.
    cases = {{32, 1}, {64, 1}, {64, 8}, {21, 1}};
  }
  const int reps = opt.reps > 0 ? opt.reps : (opt.smoke ? 2 : 3);

  for (const Case& c : cases) {
    set_threads(c.threads);
    const Index total = c.n * c.n * c.n;
    Rng rng(static_cast<unsigned>(c.n));
    std::vector<fft::Complex> grid(static_cast<std::size_t>(total));
    for (auto& v : grid) {
      v = fft::Complex(rng.uniform() * 2 - 1, rng.uniform() * 2 - 1);
    }
    const fft::Fft3D fft3(c.n, c.n, c.n);
    std::vector<fft::Complex> work = grid;

    // One forward + one inverse per rep (round-trip, like the Hartree
    // kernel); radix-2 flop model 5 N log2 N per transform.
    const double flops = 2.0 * 5.0 * static_cast<double>(total) *
                         std::log2(static_cast<double>(total));
    // Ideal traffic: 3 axis passes x read+write x 16 bytes, twice.
    const double bytes_per_point = 2.0 * 3.0 * 2.0 * 16.0;

    const double sec_new = best_of(reps, [&] {
      work = grid;
      fft3.forward(work.data());
      fft3.inverse(work.data());
    });
    double sec_ref = 0;
    if (opt.compare) {
      const fft::Fft1D plan(c.n);
      sec_ref = best_of(reps, [&] {
        work = grid;
        reference_fft3d(plan, c.n, work.data(), false);
        reference_fft3d(plan, c.n, work.data(), true);
      });
    }

    const std::string label = "fft.fft3d." + std::to_string(c.n) + ".t" +
                              std::to_string(c.threads);
    table.row()
        .cell(label)
        .cell(static_cast<Index>(c.threads))
        .cell(sec_new, 5)
        .cell(flops / sec_new / 1e9, 2)
        .cell(bytes_per_point, 1)
        .cell(opt.compare ? format_real(sec_ref / sec_new, 2) + "x" : "-");

    obs::BenchReport::Record& rec = report.record(label);
    rec.param("kernel", "fft3d")
        .param("path", "new")
        .param("n", static_cast<long long>(c.n))
        .param("threads", static_cast<long long>(c.threads))
        .metric("seconds_best", sec_new)
        .metric("gflops", flops / sec_new / 1e9)
        .metric("bytes_per_point", bytes_per_point);
    if (opt.compare) {
      rec.metric("speedup_vs_ref", sec_ref / sec_new);
      report.record(label + ".ref")
          .param("kernel", "fft3d")
          .param("path", "ref")
          .param("n", static_cast<long long>(c.n))
          .param("threads", static_cast<long long>(c.threads))
          .metric("seconds_best", sec_ref)
          .metric("gflops", flops / sec_ref / 1e9)
          .metric("bytes_per_point", bytes_per_point);
    }
  }
  set_threads(1);
}

// ----- K-Means -------------------------------------------------------------

int bench_kmeans(const Options& opt, Table& table, obs::BenchReport& report) {
  const Index n = opt.smoke ? 1500 : 20000;
  const Index k = opt.smoke ? 8 : 48;
  const int reps = opt.reps > 0 ? opt.reps : (opt.smoke ? 2 : 3);

  // Clustered weights: the regime the paper's pair-product weights are
  // in, and the one pruning exploits.
  Rng rng(9);
  std::vector<grid::Vec3> points;
  std::vector<Real> weights;
  points.reserve(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    const Real cx = static_cast<Real>(2 + 3 * (i % 3));
    const Real cy = static_cast<Real>(2 + 3 * ((i / 3) % 3));
    const Real cz = static_cast<Real>(2 + 3 * ((i / 9) % 3));
    points.push_back({cx + rng.uniform() - 0.5, cy + rng.uniform() - 0.5,
                      cz + rng.uniform() - 0.5});
    weights.push_back(rng.uniform() + 1e-3);
  }

  kmeans::KMeansOptions opts;
  opts.seeding = kmeans::Seeding::kTopWeight;
  set_threads(1);

  opts.pruned_assignment = false;
  kmeans::KMeansResult exact;
  const double sec_ref = best_of(
      reps, [&] { exact = kmeans::weighted_kmeans(points, weights, k, opts); });

  opts.pruned_assignment = true;
  const long long full_before = obs::counter("kmeans.assign.full").value();
  const long long skip_before = obs::counter("kmeans.assign.skipped").value();
  kmeans::KMeansResult pruned;
  const double sec_new = best_of(
      reps, [&] { pruned = kmeans::weighted_kmeans(points, weights, k, opts); });
  const double full_scans = static_cast<double>(
      obs::counter("kmeans.assign.full").value() - full_before);
  const double skips = static_cast<double>(
      obs::counter("kmeans.assign.skipped").value() - skip_before);
  const double skip_fraction =
      (full_scans + skips) > 0 ? skips / (full_scans + skips) : 0.0;

  if (exact.assignment != pruned.assignment ||
      exact.interpolation_points != pruned.interpolation_points) {
    std::fprintf(stderr,
                 "FATAL: pruned K-Means diverged from the exact path\n");
    return 1;
  }

  // Distance flops: 8 per point-center pair (3 sub, 3 mul, 2 add); the
  // pruned path replaces a k-scan with one distance for skipped points.
  const double pairs_exact = static_cast<double>(exact.iterations) *
                             static_cast<double>(n) * static_cast<double>(k);
  // Effective centroid traffic per point per iteration.
  const double bytes_ref = 24.0 * static_cast<double>(k);
  const double bytes_new = bytes_ref * (1.0 - skip_fraction) + 24.0;

  const std::string label =
      "kmeans.assign." + std::to_string(n) + "x" + std::to_string(k);
  table.row()
      .cell(label)
      .cell(Index{1})
      .cell(sec_new, 5)
      .cell(8.0 * pairs_exact * (1 - skip_fraction) / sec_new / 1e9, 2)
      .cell(bytes_new, 1)
      .cell(format_real(sec_ref / sec_new, 2) + "x");

  obs::BenchReport::Record& rec = report.record(label);
  rec.param("kernel", "kmeans")
      .param("path", "new")
      .param("points", static_cast<long long>(n))
      .param("clusters", static_cast<long long>(k))
      .param("threads", 1LL)
      .metric("seconds_best", sec_new)
      .metric("skip_fraction", skip_fraction)
      .metric("bytes_per_point", bytes_new)
      .metric("iterations", static_cast<double>(pruned.iterations))
      .metric("speedup_vs_ref", sec_ref / sec_new);
  report.record(label + ".ref")
      .param("kernel", "kmeans")
      .param("path", "ref")
      .param("points", static_cast<long long>(n))
      .param("clusters", static_cast<long long>(k))
      .param("threads", 1LL)
      .metric("seconds_best", sec_ref)
      .metric("skip_fraction", 0.0)
      .metric("bytes_per_point", bytes_ref)
      .metric("iterations", static_cast<double>(exact.iterations));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compare") == 0) {
      opt.compare = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      opt.smoke = true;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      opt.reps = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--compare] [--smoke] [--reps N]\n",
                   argv[0]);
      return 2;
    }
  }

  obs::BenchReport report("micro");
  report.meta("mode", opt.smoke ? "smoke" : "full");
  report.meta("compare", opt.compare ? "true" : "false");

  Table table("micro substrates (best-of-reps)",
              {"kernel", "threads", "seconds", "GFLOP/s", "bytes/pt",
               "speedup"});
  bench_gemm(opt, table, report);
  bench_fft(opt, table, report);
  // K-Means always compares (the exact path is its reference by
  // definition) and doubles as an exactness assertion.
  if (bench_kmeans(opt, table, report) != 0) return 1;

  table.print();
  if (report.write()) {
    std::printf("\nwrote %s\n", report.default_path().c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n",
                 report.default_path().c_str());
    return 1;
  }
  return 0;
}
