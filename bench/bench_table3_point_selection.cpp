// Paper Table 3: time spent selecting ISDF interpolation points —
// QRCP vs K-Means — plus the seeding ablation of DESIGN.md §5.
//
// The paper sweeps Nμ ∈ {512, 1024, 2048} on Si64 with one core; we sweep
// a scaled ladder on the synthetic silicon analog. The claim under test is
// the *ratio*: K-Means selects points an order of magnitude faster, and
// the resulting ISDF accuracy matches QRCP's.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "isdf/interpolation.hpp"
#include "isdf/kmeans_points.hpp"
#include "isdf/qrcp_points.hpp"
#include "obs/bench_report.hpp"

using namespace lrt;

int main() {
  // One mid-sized problem, like the paper's fixed Si64 test system.
  bench::Workload w{"Si16*", 24, 18, 18, 13.0, 16};
  const tddft::CasidaProblem problem = bench::make_workload(w);
  std::printf("system: %s  Nr=%td  Nv=%td Nc=%td (Ncv=%td)\n\n",
              w.label.c_str(), problem.nr(), problem.nv(), problem.nc(),
              problem.ncv());

  obs::BenchReport report("table3");
  report.meta("workload", w.label);
  report.meta("table", "3");

  Table table("Table 3 (scaled): interpolation point selection time [s]",
              {"Nmu", "QRCP (plain)", "QRCP (randomized)", "K-Means",
               "speedup KM vs QRCP", "ISDF err QRCP", "ISDF err KM"});

  for (const Index nmu : {64, 128, 256}) {
    isdf::QrcpPointOptions plain;
    plain.randomized = false;
    Timer t1;
    const auto p_qrcp = isdf::select_points_qrcp(
        problem.psi_v.view(), problem.psi_c.view(), nmu, plain);
    const double qrcp_s = t1.seconds();

    Timer t2;
    const auto p_rand = isdf::select_points_qrcp(
        problem.psi_v.view(), problem.psi_c.view(), nmu, {});
    const double rand_s = t2.seconds();
    (void)p_rand;

    Timer t3;
    const auto km = isdf::select_points_kmeans(
        problem.grid, problem.psi_v.view(), problem.psi_c.view(), nmu, {});
    const double km_s = t3.seconds();

    const la::RealMatrix theta_qrcp = isdf::interpolation_vectors(
        problem.psi_v.view(), problem.psi_c.view(), p_qrcp);
    const Real err_qrcp = isdf::isdf_relative_error(
        problem.psi_v.view(), problem.psi_c.view(), p_qrcp,
        theta_qrcp.view());
    const la::RealMatrix theta_km = isdf::interpolation_vectors(
        problem.psi_v.view(), problem.psi_c.view(), km.points);
    const Real err_km = isdf::isdf_relative_error(
        problem.psi_v.view(), problem.psi_c.view(), km.points,
        theta_km.view());

    table.row()
        .cell(nmu)
        .cell(qrcp_s, 3)
        .cell(rand_s, 3)
        .cell(km_s, 3)
        .cell(qrcp_s / km_s, 1)
        .cell(err_qrcp, 4)
        .cell(err_km, 4);

    report.record("nmu=" + std::to_string(nmu))
        .param("nmu", static_cast<long long>(nmu))
        .metric("qrcp_seconds", qrcp_s)
        .metric("qrcp_randomized_seconds", rand_s)
        .metric("kmeans_seconds", km_s)
        .metric("speedup_kmeans_vs_qrcp", qrcp_s / km_s)
        .metric("isdf_err_qrcp", err_qrcp)
        .metric("isdf_err_kmeans", err_km);
  }
  table.print();

  // Seeding ablation (DESIGN.md §5.1): K-Means objective and iteration
  // count under the three seeding policies at fixed Nμ.
  const Index nmu = 128;
  Table ablation("Ablation: K-Means seeding policies (Nmu = 128)",
                 {"seeding", "iterations", "objective", "time [s]"});
  const std::pair<kmeans::Seeding, const char*> modes[] = {
      {kmeans::Seeding::kWeightedKpp, "weighted k-means++"},
      {kmeans::Seeding::kTopWeight, "top-weight (paper)"},
      {kmeans::Seeding::kUniformRandom, "uniform random"},
  };
  for (const auto& [mode, name] : modes) {
    kmeans::KMeansOptions opts;
    opts.seeding = mode;
    Timer t;
    const auto km = isdf::select_points_kmeans(
        problem.grid, problem.psi_v.view(), problem.psi_c.view(), nmu, opts);
    ablation.row()
        .cell(name)
        .cell(km.kmeans_iterations)
        .cell(km.objective, 5)
        .cell(t.seconds(), 3);
    report.record(std::string("seeding:") + name)
        .param("nmu", static_cast<long long>(nmu))
        .param("seeding", std::string(name))
        .metric("iterations", static_cast<double>(km.kmeans_iterations))
        .metric("objective", km.objective)
        .metric("seconds", t.seconds());
  }
  ablation.print();

  // Pruning ablation: weight threshold vs kept points and time.
  Table pruning("Ablation: weight-threshold pruning (Nmu = 128)",
                {"threshold", "kept points (Nr')", "time [s]"});
  for (const Real threshold : {0.0, 1e-8, 1e-6, 1e-4, 1e-3}) {
    kmeans::KMeansOptions opts;
    opts.weight_threshold = threshold;
    Timer t;
    const auto km = isdf::select_points_kmeans(
        problem.grid, problem.psi_v.view(), problem.psi_c.view(), nmu, opts);
    pruning.row()
        .cell(format_real(threshold, 8))
        .cell(problem.nr() - km.num_pruned)
        .cell(t.seconds(), 3);
    report.record("pruning:" + format_real(threshold, 8))
        .param("nmu", static_cast<long long>(nmu))
        .param("weight_threshold", static_cast<double>(threshold))
        .metric("kept_points", static_cast<double>(problem.nr() - km.num_pruned))
        .metric("seconds", t.seconds());
  }
  pruning.print();
  if (report.write()) {
    std::printf("\nwrote %s\n", report.default_path().c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n",
                 report.default_path().c_str());
    return 1;
  }
  return 0;
}
