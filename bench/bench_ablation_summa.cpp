// Distributed dense-algebra ablation: SUMMA GEMM grids and the
// distributed Jacobi eigensolver vs the gathered SYEVD stand-in — the
// ScaLAPACK-like substrate pieces behind the paper's §5 design choices.
#include <cstdio>

#include "bench_util.hpp"
#include "la/eig.hpp"
#include "par/disteig.hpp"
#include "par/jacobi_eig.hpp"
#include "par/summa.hpp"

using namespace lrt;

int main() {
  // ---- SUMMA on different grid shapes --------------------------------------
  {
    const Index m = 384, n = 384, k = 384;
    Rng rng(1);
    const la::RealMatrix a = la::RealMatrix::random_normal(m, k, rng);
    const la::RealMatrix b = la::RealMatrix::random_normal(k, n, rng);

    Table table("SUMMA distributed GEMM (384³), grid shape sweep",
                {"grid", "busy CPU max [s]", "MB sent/rank"});
    const std::pair<int, int> grids[] = {{1, 1}, {1, 4}, {4, 1}, {2, 2}};
    for (const auto& [prow, pcol] : grids) {
      double busy = 0;
      long long bytes = 0;
      par::run(prow * pcol, [&](par::Comm& comm) {
        par::ProcessGrid2D grid(comm, prow, pcol);
        const par::BlockPartition rows_m(m, prow);
        const par::BlockPartition cols_n(n, pcol);
        const par::BlockPartition k_col(k, pcol);
        const par::BlockPartition k_row(k, prow);
        const auto a_loc = a.view().block(
            rows_m.offset(grid.my_row()), k_col.offset(grid.my_col()),
            rows_m.count(grid.my_row()), k_col.count(grid.my_col()));
        const auto b_loc = b.view().block(
            k_row.offset(grid.my_row()), cols_n.offset(grid.my_col()),
            k_row.count(grid.my_row()), cols_n.count(grid.my_col()));
        comm.barrier();
        ThreadCpuTimer cpu;
        const la::RealMatrix c_loc =
            summa_gemm(grid, a_loc, b_loc, m, n, k);
        double local_busy = cpu.seconds();
        comm.allreduce(&local_busy, 1, par::ReduceOp::kMax);
        if (comm.rank() == 0) {
          busy = local_busy;
          // SUMMA traffic flows through the row/column subcommunicators.
          bytes = grid.row_comm().bytes_sent() + grid.col_comm().bytes_sent();
        }
        (void)c_loc;
      });
      table.row()
          .cell(std::to_string(prow) + "x" + std::to_string(pcol))
          .cell(busy, 3)
          .cell(double(bytes) / 1e6, 2);
    }
    table.print();
    std::printf("\n");
  }

  // ---- distributed Jacobi vs gathered SYEVD stand-in ------------------------
  {
    const Index n = 96;
    Rng rng(2);
    la::RealMatrix a = la::RealMatrix::random_normal(n, n, rng);
    for (Index i = 0; i < n; ++i) {
      for (Index j = 0; j < i; ++j) a(j, i) = a(i, j);
    }
    const la::EigResult serial = la::syev(a.view());

    Table table("Distributed eigensolvers (n=96): Jacobi vs gathered SYEVD",
                {"ranks", "solver", "busy CPU max [s]", "max |dλ|"});
    for (const int p : {1, 2, 4}) {
      for (const bool jacobi : {false, true}) {
        double busy = 0;
        Real max_err = 0;
        par::run(p, [&](par::Comm& comm) {
          ThreadCpuTimer cpu;
          std::vector<Real> values;
          if (jacobi) {
            values = par::dist_jacobi_syev(comm, a.view()).values;
          } else {
            const par::Layout layout = par::Layout::block_row(n, n, p);
            par::DistMatrix dist(layout, comm.rank());
            dist.fill_global([&a](Index i, Index j) { return a(i, j); });
            values = par::dist_syev(comm, dist).values;
          }
          double local_busy = cpu.seconds();
          comm.allreduce(&local_busy, 1, par::ReduceOp::kMax);
          if (comm.rank() == 0) {
            busy = local_busy;
            for (Index i = 0; i < n; ++i) {
              max_err = std::max(
                  max_err, std::abs(values[static_cast<std::size_t>(i)] -
                                    serial.values[static_cast<std::size_t>(i)]));
            }
          }
        });
        table.row()
            .cell(p)
            .cell(jacobi ? "one-sided Jacobi (distributed)"
                         : "gathered SYEVD stand-in")
            .cell(busy, 4)
            .cell(format_real(max_err, 10));
      }
    }
    table.print();
    std::printf(
        "\nshape to see: the gathered stand-in's busy time is flat in rank\n"
        "count (serial bottleneck, Amdahl), while Jacobi's per-rank busy\n"
        "time falls — the trade ScaLAPACK's true parallel SYEVD makes.\n");
  }
  return 0;
}
