// Block Davidson eigensolver vs dense reference and vs LOBPCG.
#include <gtest/gtest.h>

#include "la/blas.hpp"
#include "la/davidson.hpp"
#include "la/eig.hpp"
#include "la/ortho.hpp"

namespace lrt::la {
namespace {

BlockOperator dense_operator(const RealMatrix& a) {
  return [&a](RealConstView x, RealView y) {
    gemm(Trans::kNo, Trans::kNo, 1.0, a.view(), x, 0.0, y);
  };
}

RealMatrix random_symmetric(Index n, Rng& rng) {
  RealMatrix a = RealMatrix::random_normal(n, n, rng);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < i; ++j) a(j, i) = a(i, j);
  }
  return a;
}

TEST(Davidson, DiagonalOperatorExact) {
  const Index n = 60;
  RealMatrix a(n, n);
  for (Index i = 0; i < n; ++i) a(i, i) = static_cast<Real>(i + 1);
  Rng rng(1);
  DavidsonOptions opts;
  opts.tolerance = 1e-10;
  const DavidsonResult r = davidson(dense_operator(a), nullptr,
                                    RealMatrix::random_normal(n, 3, rng),
                                    opts);
  EXPECT_TRUE(r.converged);
  for (Index j = 0; j < 3; ++j) {
    EXPECT_NEAR(r.eigenvalues[static_cast<std::size_t>(j)], Real(j + 1),
                1e-8);
  }
}

class DavidsonSweep
    : public ::testing::TestWithParam<std::pair<Index, Index>> {};

TEST_P(DavidsonSweep, MatchesDenseLowestEigenvalues) {
  const auto [n, k] = GetParam();
  Rng rng(static_cast<unsigned>(7 * n + k));
  const RealMatrix a = random_symmetric(n, rng);
  const EigResult dense = syev(a.view());

  DavidsonOptions opts;
  opts.tolerance = 1e-9;
  opts.max_iterations = 300;
  const DavidsonResult r = davidson(dense_operator(a), nullptr,
                                    RealMatrix::random_normal(n, k, rng),
                                    opts);
  EXPECT_TRUE(r.converged) << "n=" << n << " k=" << k;
  for (Index j = 0; j < k; ++j) {
    EXPECT_NEAR(r.eigenvalues[static_cast<std::size_t>(j)],
                dense.values[static_cast<std::size_t>(j)], 1e-6);
  }
  EXPECT_LT(orthogonality_error(r.eigenvectors.view()), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBlocks, DavidsonSweep,
    ::testing::Values(std::make_pair<Index, Index>(40, 1),
                      std::make_pair<Index, Index>(60, 3),
                      std::make_pair<Index, Index>(100, 5)));

TEST(Davidson, ThickRestartKeepsConverging) {
  // Tight subspace cap forces restarts every other iteration; a well
  // separated (diagonally dominant) spectrum keeps convergence brisk even
  // in this steepest-descent-like regime.
  const Index n = 80;
  Rng rng(5);
  RealMatrix a = random_symmetric(n, rng);
  for (Index i = 0; i < n; ++i) a(i, i) += 3.0 * static_cast<Real>(i);
  const EigResult dense = syev(a.view());
  DavidsonOptions opts;
  opts.max_subspace = 8;  // 2k with k=4: restart every iteration
  opts.tolerance = 1e-8;
  opts.max_iterations = 800;
  const DavidsonResult r = davidson(dense_operator(a), nullptr,
                                    RealMatrix::random_normal(n, 4, rng),
                                    opts);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvalues[0], dense.values[0], 1e-6);
}

TEST(Davidson, PreconditionerReducesIterations) {
  const Index n = 150;
  RealMatrix a(n, n);
  Rng rng(6);
  for (Index i = 0; i < n; ++i) a(i, i) = 1.0 + 50.0 * rng.uniform();
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < i; ++j) {
      const Real v = 0.01 * rng.normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  DavidsonOptions opts;
  opts.tolerance = 1e-8;
  opts.max_iterations = 400;
  const DavidsonResult plain = davidson(
      dense_operator(a), nullptr, RealMatrix::random_normal(n, 2, rng), opts);

  BlockPreconditioner prec = [&a](RealView r,
                                  const std::vector<Real>& theta) {
    for (Index j = 0; j < r.cols(); ++j) {
      for (Index i = 0; i < r.rows(); ++i) {
        Real gap = a(i, i) - theta[static_cast<std::size_t>(j)];
        if (std::abs(gap) < 0.1) gap = gap < 0 ? -0.1 : 0.1;
        r(i, j) /= gap;
      }
    }
  };
  const DavidsonResult fast = davidson(
      dense_operator(a), prec, RealMatrix::random_normal(n, 2, rng), opts);
  EXPECT_TRUE(fast.converged);
  EXPECT_LE(fast.iterations, plain.iterations);
}

TEST(Davidson, CountsOperatorApplications) {
  const Index n = 50;
  Rng rng(8);
  const RealMatrix a = random_symmetric(n, rng);
  const DavidsonResult r = davidson(dense_operator(a), nullptr,
                                    RealMatrix::random_normal(n, 2, rng),
                                    {});
  // One apply for the seed block plus one per iteration that expanded.
  EXPECT_GE(r.operator_applications, 2);
  EXPECT_LE(r.operator_applications, r.iterations + 1);
}

}  // namespace
}  // namespace lrt::la
