// Message-passing runtime: p2p semantics and every collective, swept over
// rank counts (including non-powers of two, which stress the tree and
// ring algorithms).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "par/comm.hpp"

namespace lrt::par {
namespace {

class CommSweep : public ::testing::TestWithParam<int> {};

TEST_P(CommSweep, SendRecvRoundTrip) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP() << "needs two ranks";
  run(p, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> data = {1.5, 2.5, 3.5};
      comm.send(data.data(), 3, 1, 42);
    } else if (comm.rank() == 1) {
      std::vector<double> data(3);
      comm.recv(data.data(), 3, 0, 42);
      EXPECT_DOUBLE_EQ(data[0], 1.5);
      EXPECT_DOUBLE_EQ(data[2], 3.5);
    }
  });
}

TEST_P(CommSweep, TagMatchingIsSelective) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP();
  run(p, [](Comm& comm) {
    if (comm.rank() == 0) {
      const double a = 1.0, b = 2.0;
      comm.send(&a, 1, 1, 7);
      comm.send(&b, 1, 1, 8);
    } else if (comm.rank() == 1) {
      double value = 0;
      comm.recv(&value, 1, 0, 8);  // out-of-order tag first
      EXPECT_DOUBLE_EQ(value, 2.0);
      comm.recv(&value, 1, 0, 7);
      EXPECT_DOUBLE_EQ(value, 1.0);
    }
  });
}

TEST_P(CommSweep, FifoOrderPerTag) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP();
  run(p, [](Comm& comm) {
    constexpr int kCount = 20;
    if (comm.rank() == 0) {
      for (int i = 0; i < kCount; ++i) {
        const double v = i;
        comm.send(&v, 1, 1, 5);
      }
    } else if (comm.rank() == 1) {
      for (int i = 0; i < kCount; ++i) {
        double v = -1;
        comm.recv(&v, 1, 0, 5);
        EXPECT_DOUBLE_EQ(v, i);
      }
    }
  });
}

TEST_P(CommSweep, BarrierSynchronizes) {
  const int p = GetParam();
  run(p, [p](Comm& comm) {
    static std::atomic<int> counter{0};
    if (comm.rank() == 0) counter.store(0);
    comm.barrier();
    counter.fetch_add(1);
    comm.barrier();
    EXPECT_EQ(counter.load(), p);
    comm.barrier();
  });
}

TEST_P(CommSweep, BcastFromEveryRoot) {
  const int p = GetParam();
  run(p, [p](Comm& comm) {
    for (int root = 0; root < p; ++root) {
      std::vector<double> data(4, comm.rank() == root ? 3.25 : 0.0);
      comm.bcast(data.data(), 4, root);
      for (const double v : data) EXPECT_DOUBLE_EQ(v, 3.25);
    }
  });
}

TEST_P(CommSweep, ReduceSumToEveryRoot) {
  const int p = GetParam();
  run(p, [p](Comm& comm) {
    for (int root = 0; root < p; ++root) {
      std::vector<double> data = {double(comm.rank()), 1.0};
      comm.reduce(data.data(), 2, ReduceOp::kSum, root);
      if (comm.rank() == root) {
        EXPECT_DOUBLE_EQ(data[0], p * (p - 1) / 2.0);
        EXPECT_DOUBLE_EQ(data[1], p);
      }
    }
  });
}

TEST_P(CommSweep, AllreduceSumMaxMin) {
  const int p = GetParam();
  run(p, [p](Comm& comm) {
    double sum = comm.rank() + 1.0;
    comm.allreduce(&sum, 1, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(sum, p * (p + 1) / 2.0);

    double mx = comm.rank();
    comm.allreduce(&mx, 1, ReduceOp::kMax);
    EXPECT_DOUBLE_EQ(mx, p - 1.0);

    double mn = comm.rank();
    comm.allreduce(&mn, 1, ReduceOp::kMin);
    EXPECT_DOUBLE_EQ(mn, 0.0);
  });
}

TEST_P(CommSweep, AlltoallExchangesBlocks) {
  const int p = GetParam();
  run(p, [p](Comm& comm) {
    // Rank r sends value 100*r + q to rank q.
    std::vector<double> send(static_cast<std::size_t>(p));
    for (int q = 0; q < p; ++q) send[static_cast<std::size_t>(q)] = 100.0 * comm.rank() + q;
    std::vector<double> recv(static_cast<std::size_t>(p));
    comm.alltoall(send.data(), recv.data(), 1);
    for (int q = 0; q < p; ++q) {
      EXPECT_DOUBLE_EQ(recv[static_cast<std::size_t>(q)],
                       100.0 * q + comm.rank());
    }
  });
}

TEST_P(CommSweep, AlltoallvVariableCounts) {
  const int p = GetParam();
  run(p, [p](Comm& comm) {
    // Rank r sends (q+1) copies of value r*1000+q to rank q.
    std::vector<Index> scounts(static_cast<std::size_t>(p));
    std::vector<Index> sdispls(static_cast<std::size_t>(p));
    Index total = 0;
    for (int q = 0; q < p; ++q) {
      scounts[static_cast<std::size_t>(q)] = q + 1;
      sdispls[static_cast<std::size_t>(q)] = total;
      total += q + 1;
    }
    std::vector<double> send(static_cast<std::size_t>(total));
    for (int q = 0; q < p; ++q) {
      for (Index i = 0; i < scounts[static_cast<std::size_t>(q)]; ++i) {
        send[static_cast<std::size_t>(sdispls[static_cast<std::size_t>(q)] + i)] =
            comm.rank() * 1000.0 + q;
      }
    }
    // Everyone receives (rank+1) values from each source.
    std::vector<Index> rcounts(static_cast<std::size_t>(p),
                               comm.rank() + 1);
    std::vector<Index> rdispls(static_cast<std::size_t>(p));
    for (int q = 1; q < p; ++q) {
      rdispls[static_cast<std::size_t>(q)] =
          rdispls[static_cast<std::size_t>(q - 1)] + comm.rank() + 1;
    }
    std::vector<double> recv(
        static_cast<std::size_t>(p * (comm.rank() + 1)));
    comm.alltoallv(send.data(), scounts, sdispls, recv.data(), rcounts,
                   rdispls);
    for (int q = 0; q < p; ++q) {
      for (Index i = 0; i < comm.rank() + 1; ++i) {
        EXPECT_DOUBLE_EQ(
            recv[static_cast<std::size_t>(rdispls[static_cast<std::size_t>(q)] + i)],
            q * 1000.0 + comm.rank());
      }
    }
  });
}

TEST_P(CommSweep, AllgatherRing) {
  const int p = GetParam();
  run(p, [p](Comm& comm) {
    const double mine[2] = {double(comm.rank()), double(comm.rank()) * 10};
    std::vector<double> all(static_cast<std::size_t>(2 * p));
    comm.allgather(mine, 2, all.data());
    for (int r = 0; r < p; ++r) {
      EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(2 * r)], r);
      EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(2 * r + 1)], 10.0 * r);
    }
  });
}

TEST_P(CommSweep, GatherAndScatter) {
  const int p = GetParam();
  run(p, [p](Comm& comm) {
    const double mine = 7.0 + comm.rank();
    std::vector<double> gathered(static_cast<std::size_t>(p));
    comm.gather(&mine, 1, gathered.data(), 0);
    if (comm.rank() == 0) {
      for (int r = 0; r < p; ++r) {
        EXPECT_DOUBLE_EQ(gathered[static_cast<std::size_t>(r)], 7.0 + r);
      }
      for (auto& v : gathered) v *= 2;
    }
    double back = 0;
    comm.scatter(gathered.data(), 1, &back, 0);
    EXPECT_DOUBLE_EQ(back, 2 * (7.0 + comm.rank()));
  });
}

TEST_P(CommSweep, SplitByParity) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP();
  run(p, [p](Comm& comm) {
    const int color = comm.rank() % 2;
    Comm sub = comm.split(color, comm.rank());
    const int expected_size = p / 2 + (color == 0 ? p % 2 : 0);
    EXPECT_EQ(sub.size(), expected_size);
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
    // The subcommunicator must be functional and isolated.
    double sum = 1.0;
    sub.allreduce(&sum, 1, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(sum, expected_size);
  });
}

TEST_P(CommSweep, CommSecondsAccumulate) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP();
  run(p, [](Comm& comm) {
    comm.reset_comm_seconds();
    EXPECT_DOUBLE_EQ(comm.comm_seconds(), 0.0);
    comm.barrier();
    EXPECT_GE(comm.comm_seconds(), 0.0);
    EXPECT_GT(comm.bytes_sent(), 0);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CommSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8));

TEST(Runtime, RankExceptionPropagatesWithoutDeadlock) {
  EXPECT_THROW(run(4,
                   [](Comm& comm) {
                     if (comm.rank() == 2) {
                       throw Error("rank 2 failed");
                     }
                     // Other ranks block on a message that never comes;
                     // poisoning must wake them.
                     double v;
                     comm.recv(&v, 1, (comm.rank() + 1) % 4, 9);
                   }),
               Error);
}

TEST(Runtime, MessageSizeMismatchThrows) {
  EXPECT_THROW(run(2,
                   [](Comm& comm) {
                     if (comm.rank() == 0) {
                       double v[2] = {1, 2};
                       comm.send(v, 2, 1, 1);
                     } else {
                       double v[3];
                       comm.recv(v, 3, 0, 1);  // wrong count
                     }
                   }),
               Error);
}

TEST(Runtime, SingleRankRunsInline) {
  int calls = 0;
  run(1, [&calls](Comm& comm) {
    EXPECT_EQ(comm.size(), 1);
    EXPECT_EQ(comm.rank(), 0);
    double v = 5;
    comm.allreduce(&v, 1, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(v, 5.0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace lrt::par
