// Pseudopotential, LDA exchange-correlation, and Ewald tests.
#include <gtest/gtest.h>

#include <cmath>

#include "dft/ewald.hpp"
#include "dft/pseudopotential.hpp"
#include "dft/xc.hpp"
#include "grid/crystal.hpp"

namespace lrt::dft {
namespace {

TEST(HghLocal, FormFactorLimits) {
  const grid::Species si = grid::species_silicon();
  // Large G: everything is Gaussian-suppressed.
  EXPECT_NEAR(hgh_local_form_factor(si, 1e4), 0.0, 1e-12);
  // Small G: Coulomb tail dominates (negative, large magnitude).
  EXPECT_LT(hgh_local_form_factor(si, 1e-2), -1000.0);
  EXPECT_THROW(hgh_local_form_factor(si, 0.0), Error);
}

TEST(HghLocal, G0TermMatchesClosedForm) {
  const grid::Species si = grid::species_silicon();
  const Real r2 = si.r_loc * si.r_loc;
  const Real expected =
      constants::kTwoPi * si.z_ion * r2 +
      std::pow(constants::kTwoPi, 1.5) * r2 * si.r_loc * si.c1;
  EXPECT_NEAR(hgh_local_g0(si), expected, 1e-12);
}

TEST(HghLocal, PotentialIsRealAndAttractiveAtNuclei) {
  const grid::Structure s = grid::make_silicon_supercell(1);
  const grid::RealSpaceGrid g = grid::RealSpaceGrid::from_cutoff(s.cell, 5.0);
  const grid::GVectors gv(g);
  const std::vector<Real> v = build_local_potential(g, gv, s);
  ASSERT_EQ(static_cast<Index>(v.size()), g.size());

  // The potential must be most negative near an atom and higher far away.
  // Atom 0 sits at the origin = grid point 0.
  Real at_atom = v[0];
  Real far = -1e9;
  for (const Real value : v) far = std::max(far, value);
  EXPECT_LT(at_atom, far);
  EXPECT_LT(at_atom, 0.0);
}

TEST(HghLocal, PotentialTranslatesWithAtom) {
  // Moving the atom by one grid spacing must shift the potential grid.
  grid::Structure s;
  s.cell = grid::UnitCell::cubic(8.0);
  s.species = {grid::species_silicon()};
  s.atoms = {grid::Atom{0, {0, 0, 0}}};
  const grid::RealSpaceGrid g(s.cell, {8, 8, 8});
  const grid::GVectors gv(g);
  const std::vector<Real> v0 = build_local_potential(g, gv, s);

  s.atoms[0].position = {1.0, 0, 0};  // one grid spacing along x
  const std::vector<Real> v1 = build_local_potential(g, gv, s);
  for (Index i0 = 0; i0 < 8; ++i0) {
    const Real a = v0[static_cast<std::size_t>(g.flat_index(i0, 2, 3))];
    const Real b = v1[static_cast<std::size_t>(g.flat_index((i0 + 1) % 8, 2, 3))];
    EXPECT_NEAR(a, b, 1e-9);
  }
}

TEST(InitialDensity, IntegratesToElectronCount) {
  const grid::Structure s = grid::make_water_box(14.0);
  const grid::RealSpaceGrid g(s.cell, {16, 16, 16});
  const std::vector<Real> n = initial_density(g, s);
  Real total = 0;
  for (const Real v : n) total += v;
  EXPECT_NEAR(total * g.dv(), s.num_electrons(), 1e-10);
  for (const Real v : n) EXPECT_GE(v, 0.0);
}

TEST(Lda, ExchangeOnlyClosedForm) {
  // For n = 1: εx = -(3/4)(3/π)^{1/3}.
  const Real cx = 0.75 * std::cbrt(3.0 / constants::kPi);
  // exc includes correlation; test vx against the known 4/3 relation via
  // the derivative identity instead: vxc - exc has correct exchange part.
  const Real n = 1.0;
  const Real fd = (lda_exc(n + 1e-6) * (n + 1e-6) - lda_exc(n - 1e-6) * (n - 1e-6)) /
                  2e-6;
  EXPECT_NEAR(lda_vxc(n), fd, 1e-6);
  EXPECT_LT(lda_exc(n), -cx + 0.0);  // correlation adds negative energy
}

TEST(Lda, VxcIsDerivativeOfEnergyDensity) {
  for (const Real n : {0.01, 0.1, 0.3, 1.0, 5.0}) {
    const Real h = 1e-6 * n;
    const Real fd =
        ((n + h) * lda_exc(n + h) - (n - h) * lda_exc(n - h)) / (2 * h);
    EXPECT_NEAR(lda_vxc(n), fd, 1e-5 * std::abs(fd) + 1e-8) << "n=" << n;
  }
}

TEST(Lda, FxcIsDerivativeOfVxc) {
  for (const Real n : {0.01, 0.1, 0.3, 1.0, 5.0}) {
    const Real h = 1e-6 * n;
    const Real fd = (lda_vxc(n + h) - lda_vxc(n - h)) / (2 * h);
    EXPECT_NEAR(lda_fxc(n), fd, 1e-4 * std::abs(fd) + 1e-8) << "n=" << n;
  }
}

TEST(Lda, VacuumIsSafe) {
  EXPECT_DOUBLE_EQ(lda_exc(0.0), 0.0);
  EXPECT_DOUBLE_EQ(lda_vxc(0.0), 0.0);
  EXPECT_DOUBLE_EQ(lda_fxc(1e-30), 0.0);
}

TEST(Lda, ArraysAndEnergy) {
  const std::vector<Real> n = {0.1, 0.2, 0.0};
  const auto v = lda_vxc_array(n);
  const auto f = lda_fxc_array(n);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], lda_vxc(0.1));
  EXPECT_DOUBLE_EQ(f[1], lda_fxc(0.2));
  const Real e = lda_exc_energy(n, 2.0);
  EXPECT_NEAR(e, 2.0 * (0.1 * lda_exc(0.1) + 0.2 * lda_exc(0.2)), 1e-14);
}

TEST(Ewald, NaClStyleMadelungCheck) {
  // Two opposite charges cannot be built from our neutral species, so
  // check a simpler exact property instead: the Ewald energy of one ion
  // in a cubic cell is the Madelung self-energy  E = -α q²/(2L) with
  // α ≈ 2.8372974794806 (simple cubic point-charge lattice with
  // neutralizing background).
  grid::Structure s;
  s.cell = grid::UnitCell::cubic(7.0);
  s.species = {grid::Species{"Q", 1.0, 0.1, 0, 0, 0, 0}};
  s.atoms = {grid::Atom{0, {0, 0, 0}}};
  const Real e = ewald_energy(s);
  EXPECT_NEAR(e, -2.8372974794806 / (2.0 * 7.0), 1e-6);
}

TEST(Ewald, ScalesWithChargeSquared) {
  grid::Structure s;
  s.cell = grid::UnitCell::cubic(9.0);
  s.species = {grid::Species{"Q", 2.0, 0.1, 0, 0, 0, 0}};
  s.atoms = {grid::Atom{0, {1, 2, 3}}};
  const Real e2 = ewald_energy(s);
  s.species[0].z_ion = 1.0;
  const Real e1 = ewald_energy(s);
  EXPECT_NEAR(e2, 4.0 * e1, 1e-9);
}

TEST(Ewald, TranslationInvariant) {
  grid::Structure s = grid::make_silicon_supercell(1);
  const Real e0 = ewald_energy(s);
  for (auto& atom : s.atoms) {
    atom.position = s.cell.wrap(
        {atom.position[0] + 1.3, atom.position[1] - 0.7, atom.position[2]});
  }
  EXPECT_NEAR(ewald_energy(s), e0, 1e-8);
}

TEST(Ewald, SiliconValueIsNegativeAndSizeConsistent) {
  const Real e1 = ewald_energy(grid::make_silicon_supercell(1));
  EXPECT_LT(e1, 0.0);
  // Doubling the supercell octuples the energy (same lattice, 8x atoms).
  const Real e2 = ewald_energy(grid::make_silicon_supercell(2));
  EXPECT_NEAR(e2 / e1, 8.0, 1e-6);
}

}  // namespace
}  // namespace lrt::dft
