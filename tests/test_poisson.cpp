// Poisson (Hartree) solver: Gaussian charge closed form, linearity,
// energy values, and kernel behaviour at G = 0.
#include <gtest/gtest.h>

#include <cmath>

#include "dft/hartree.hpp"
#include "grid/gvectors.hpp"

namespace lrt {
namespace {

using fft::Complex;
using grid::GVectors;
using grid::RealSpaceGrid;
using grid::UnitCell;

/// Periodic Gaussian density of total charge q centered in the cell.
std::vector<Real> gaussian_density(const RealSpaceGrid& g, Real q,
                                   Real sigma) {
  const grid::Vec3 center = {g.cell().length(0) / 2, g.cell().length(1) / 2,
                             g.cell().length(2) / 2};
  std::vector<Real> n(static_cast<std::size_t>(g.size()));
  const Real norm = q / std::pow(constants::kPi, 1.5) / (sigma * sigma * sigma);
  for (Index i = 0; i < g.size(); ++i) {
    const grid::Vec3 d = g.cell().minimum_image(center, g.position(i));
    n[static_cast<std::size_t>(i)] =
        norm * std::exp(-grid::norm2(d) / (sigma * sigma));
  }
  return n;
}

TEST(Poisson, GaussianPotentialMatchesErfForm) {
  // v(r) = q erf(r/σ)/r for an isolated Gaussian; with a large box and a
  // narrow Gaussian, the periodic solution matches away from the boundary
  // up to the uniform-background constant shift. Compare *differences* of
  // the potential at two radii to cancel the shift.
  const UnitCell cell = UnitCell::cubic(20.0);
  const RealSpaceGrid g(cell, {48, 48, 48});
  const GVectors gv(g);
  const fft::PoissonSolver solver = dft::make_poisson_solver(g, gv);

  const Real sigma = 1.0, q = 1.0;
  const std::vector<Real> density = gaussian_density(g, q, sigma);
  std::vector<Real> v(static_cast<std::size_t>(g.size()));
  solver.solve(density.data(), v.data());

  auto exact = [&](Real r) { return q * std::erf(r / sigma) / r; };
  // Two probe points along x at radii 3 and 5 from the center.
  const Index c = 24;
  auto at = [&](Index dx) { return v[static_cast<std::size_t>(g.flat_index(c + dx, c, c))]; };
  const Real dx_len = cell.length(0) / 48.0;
  const Real measured_diff = at(7) - at(12);
  const Real exact_diff = exact(7 * dx_len) - exact(12 * dx_len);
  EXPECT_NEAR(measured_diff, exact_diff, 5e-3);
}

TEST(Poisson, LinearInDensity) {
  const RealSpaceGrid g(UnitCell::cubic(8.0), {12, 12, 12});
  const GVectors gv(g);
  const fft::PoissonSolver solver = dft::make_poisson_solver(g, gv);
  const std::vector<Real> n1 = gaussian_density(g, 1.0, 1.0);
  const std::vector<Real> n2 = gaussian_density(g, 1.0, 1.5);
  std::vector<Real> combo(n1.size());
  for (std::size_t i = 0; i < n1.size(); ++i) combo[i] = 2 * n1[i] + 3 * n2[i];

  std::vector<Real> v1(n1.size()), v2(n1.size()), vc(n1.size());
  solver.solve(n1.data(), v1.data());
  solver.solve(n2.data(), v2.data());
  solver.solve(combo.data(), vc.data());
  for (std::size_t i = 0; i < n1.size(); i += 97) {
    EXPECT_NEAR(vc[i], 2 * v1[i] + 3 * v2[i], 1e-10);
  }
}

TEST(Poisson, UniformDensityGivesZeroPotential) {
  // G = 0 is projected out: a constant density (neutralized by the
  // background) produces exactly zero potential.
  const RealSpaceGrid g(UnitCell::cubic(5.0), {8, 8, 8});
  const GVectors gv(g);
  const fft::PoissonSolver solver = dft::make_poisson_solver(g, gv);
  std::vector<Real> n(static_cast<std::size_t>(g.size()), 3.7);
  std::vector<Real> v(n.size());
  solver.solve(n.data(), v.data());
  for (const Real value : v) EXPECT_NEAR(value, 0.0, 1e-12);
}

TEST(Poisson, HartreeEnergyOfGaussianMatchesClosedForm) {
  // Self-energy of an isolated Gaussian: E = q²/(σ √(2π)). The periodic
  // correction scales as 1/L (Madelung-like); with q=1, σ=0.8, L=24 the
  // background error is ≈ 1.4/L ≈ 0.06, so compare loosely.
  const UnitCell cell = UnitCell::cubic(24.0);
  const RealSpaceGrid g(cell, {54, 54, 54});
  const GVectors gv(g);
  const fft::PoissonSolver solver = dft::make_poisson_solver(g, gv);
  const Real sigma = 0.8;
  const std::vector<Real> density = gaussian_density(g, 1.0, sigma);
  std::vector<Real> v(density.size());
  solver.solve(density.data(), v.data());
  const Real energy = solver.energy(density.data(), v.data(), g.dv());
  const Real exact = 1.0 / (sigma * std::sqrt(constants::kTwoPi));
  EXPECT_NEAR(energy, exact, 0.08);
  EXPECT_GT(energy, 0);
}

TEST(Poisson, KernelZeroesG0) {
  const RealSpaceGrid g(UnitCell::cubic(5.0), {6, 6, 6});
  const GVectors gv(g);
  const fft::PoissonSolver solver = dft::make_poisson_solver(g, gv);
  std::vector<Complex> rho(static_cast<std::size_t>(g.size()),
                           Complex{1.0, 0.5});
  solver.apply_kernel_g(rho.data());
  EXPECT_EQ(rho[0], (Complex{0, 0}));
  // A G != 0 entry is scaled by 4π/G².
  EXPECT_NEAR(rho[1].real(), constants::kFourPi / gv.g2(1), 1e-12);
}

TEST(Poisson, SizeMismatchThrows) {
  const RealSpaceGrid g(UnitCell::cubic(5.0), {6, 6, 6});
  std::vector<Real> wrong_g2(10);
  EXPECT_THROW(fft::PoissonSolver(fft::Fft3D(6, 6, 6), wrong_g2), Error);
}

}  // namespace
}  // namespace lrt
