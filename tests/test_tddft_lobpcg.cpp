// Excited-state LOBPCG (paper Algorithm 2) vs dense diagonalization.
#include <gtest/gtest.h>

#include "dft/synthetic.hpp"
#include "tddft/casida_isdf.hpp"
#include "tddft/driver.hpp"
#include "tddft/lobpcg_tddft.hpp"

namespace lrt::tddft {
namespace {

struct Solved {
  CasidaProblem problem;
  isdf::IsdfResult dec;
  la::RealMatrix h_explicit;
  la::RealMatrix m;
};

Solved make_solved(Index nv = 5, Index nc = 4, Index nmu = 20) {
  const grid::RealSpaceGrid g(grid::UnitCell::cubic(8.0), {10, 10, 10});
  dft::SyntheticOptions sopts;
  sopts.num_centers = 8;
  sopts.seed = 11;
  Solved s{make_problem_from_synthetic(
               g, dft::make_synthetic_orbitals(g, nv, nc, sopts)),
           {}, {}, {}};
  const grid::GVectors gv(s.problem.grid);
  const HxcKernel kernel(s.problem.grid, gv, s.problem.ground_density, true);
  isdf::IsdfOptions opts;
  opts.nmu = nmu;
  s.dec = isdf_decompose(s.problem.grid, s.problem.psi_v.view(),
                         s.problem.psi_c.view(), opts);
  s.h_explicit = build_hamiltonian_isdf(s.problem, s.dec, kernel);
  s.m = build_kernel_projection(s.dec, kernel);
  return s;
}

TEST(TddftLobpcg, ImplicitMatchesDenseEigenvalues) {
  Solved s = make_solved();
  const ImplicitHamiltonian h = make_implicit_hamiltonian(
      energy_differences(s.problem), s.dec, la::to_matrix<Real>(s.m.view()));

  TddftEigenOptions opts;
  opts.num_states = 4;
  opts.tolerance = 1e-9;
  const la::LobpcgResult iterative = solve_casida_lobpcg(h, opts);
  const CasidaSolution dense = diagonalize_dense(s.h_explicit, 4);

  EXPECT_TRUE(iterative.converged);
  for (Index j = 0; j < 4; ++j) {
    EXPECT_NEAR(iterative.eigenvalues[static_cast<std::size_t>(j)],
                dense.energies[static_cast<std::size_t>(j)], 1e-6)
        << "state " << j;
  }
}

TEST(TddftLobpcg, DenseOperatorVariantAgrees) {
  Solved s = make_solved();
  TddftEigenOptions opts;
  opts.num_states = 3;
  opts.tolerance = 1e-9;
  const la::LobpcgResult iterative = solve_casida_lobpcg_dense(
      s.h_explicit, energy_differences(s.problem), opts);
  const CasidaSolution dense = diagonalize_dense(s.h_explicit, 3);
  EXPECT_TRUE(iterative.converged);
  for (Index j = 0; j < 3; ++j) {
    EXPECT_NEAR(iterative.eigenvalues[static_cast<std::size_t>(j)],
                dense.energies[static_cast<std::size_t>(j)], 1e-6);
  }
}

TEST(TddftLobpcg, GapPreconditionerConvergesFastOnGappedSpectrum) {
  Solved s = make_solved(6, 5, 24);
  const ImplicitHamiltonian h = make_implicit_hamiltonian(
      energy_differences(s.problem), s.dec, la::to_matrix<Real>(s.m.view()));
  TddftEigenOptions opts;
  opts.num_states = 3;
  opts.tolerance = 1e-8;
  const la::LobpcgResult r = solve_casida_lobpcg(h, opts);
  EXPECT_TRUE(r.converged);
  // Physically-seeded start + gap preconditioner: well under the cap.
  EXPECT_LT(r.iterations, 150);
}

TEST(TddftLobpcg, ExcitationEnergiesArePositive) {
  Solved s = make_solved();
  const ImplicitHamiltonian h = make_implicit_hamiltonian(
      energy_differences(s.problem), s.dec, la::to_matrix<Real>(s.m.view()));
  TddftEigenOptions opts;
  opts.num_states = 3;
  const la::LobpcgResult r = solve_casida_lobpcg(h, opts);
  for (const Real e : r.eigenvalues) EXPECT_GT(e, 0.0);
}

}  // namespace
}  // namespace lrt::tddft
