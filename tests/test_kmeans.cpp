// Weighted K-Means: objective monotonicity, pruning, seeding modes,
// representative-point properties, and the distributed variant.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "kmeans/dist_kmeans.hpp"
#include "kmeans/kmeans.hpp"
#include "par/layout.hpp"

namespace lrt::kmeans {
namespace {

/// Three well-separated weighted blobs on a small grid.
struct BlobFixture {
  grid::RealSpaceGrid grid{grid::UnitCell::cubic(12.0), {12, 12, 12}};
  std::vector<grid::Vec3> points;
  std::vector<Real> weights;

  BlobFixture() {
    points = grid.positions();
    weights.assign(points.size(), 0.0);
    const grid::Vec3 centers[3] = {{3, 3, 3}, {9, 9, 3}, {3, 9, 9}};
    for (std::size_t i = 0; i < points.size(); ++i) {
      for (const auto& c : centers) {
        const grid::Vec3 d = grid.cell().minimum_image(c, points[i]);
        weights[i] += std::exp(-grid::norm2(d) / 2.0);
      }
    }
  }
};

TEST(WeightedKmeans, FindsSeparatedBlobs) {
  BlobFixture f;
  KMeansOptions opts;
  opts.seed = 1;
  const KMeansResult r = weighted_kmeans(f.points, f.weights, 3, opts);
  ASSERT_EQ(r.centroids.size(), 3u);

  // Each blob center must be close to some centroid.
  const grid::Vec3 centers[3] = {{3, 3, 3}, {9, 9, 3}, {3, 9, 9}};
  for (const auto& c : centers) {
    Real best = 1e18;
    for (const auto& centroid : r.centroids) {
      const Real dx = c[0] - centroid[0], dy = c[1] - centroid[1],
                 dz = c[2] - centroid[2];
      best = std::min(best, dx * dx + dy * dy + dz * dz);
    }
    EXPECT_LT(std::sqrt(best), 1.5);
  }
}

TEST(WeightedKmeans, InterpolationPointsAreDistinctAndValid) {
  BlobFixture f;
  const KMeansResult r = weighted_kmeans(f.points, f.weights, 8, {});
  std::set<Index> unique(r.interpolation_points.begin(),
                         r.interpolation_points.end());
  EXPECT_EQ(unique.size(), 8u);
  for (const Index p : r.interpolation_points) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, f.grid.size());
  }
  // Sorted as documented.
  EXPECT_TRUE(std::is_sorted(r.interpolation_points.begin(),
                             r.interpolation_points.end()));
}

TEST(WeightedKmeans, PruningRemovesLowWeightPoints) {
  BlobFixture f;
  KMeansOptions strict;
  strict.weight_threshold = 1e-2;
  const KMeansResult pruned = weighted_kmeans(f.points, f.weights, 4, strict);
  KMeansOptions loose;
  loose.weight_threshold = 0.0;
  const KMeansResult full = weighted_kmeans(f.points, f.weights, 4, loose);
  EXPECT_GT(pruned.num_pruned, 0);
  EXPECT_EQ(full.num_pruned, 0);
  EXPECT_LT(static_cast<Index>(pruned.kept_points.size()), f.grid.size());
  // Representative points still live on heavy regions.
  for (const Index p : pruned.interpolation_points) {
    EXPECT_GE(f.weights[static_cast<std::size_t>(p)],
              1e-2 * *std::max_element(f.weights.begin(), f.weights.end()));
  }
}

TEST(WeightedKmeans, ObjectiveImprovesWithMoreClusters) {
  BlobFixture f;
  KMeansOptions opts;
  opts.weight_threshold = 1e-4;
  const Real obj4 = weighted_kmeans(f.points, f.weights, 4, opts).objective;
  const Real obj16 = weighted_kmeans(f.points, f.weights, 16, opts).objective;
  EXPECT_LT(obj16, obj4);
}

class SeedingSweep : public ::testing::TestWithParam<Seeding> {};

TEST_P(SeedingSweep, AllSeedingsProduceValidClusterings) {
  BlobFixture f;
  KMeansOptions opts;
  opts.seeding = GetParam();
  opts.seed = 3;
  const KMeansResult r = weighted_kmeans(f.points, f.weights, 6, opts);
  EXPECT_EQ(r.interpolation_points.size(), 6u);
  EXPECT_GT(r.iterations, 0);
  EXPECT_GE(r.objective, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Modes, SeedingSweep,
                         ::testing::Values(Seeding::kWeightedKpp,
                                           Seeding::kTopWeight,
                                           Seeding::kUniformRandom));

TEST(WeightedKmeans, WeightAwareSeedingBeatsUniformOnObjective) {
  // With strongly structured weights, weight-aware seeding should reach an
  // equal or better objective than uniform seeding (the paper's rationale
  // for seeding from the weight function).
  BlobFixture f;
  KMeansOptions weighted;
  weighted.seeding = Seeding::kWeightedKpp;
  weighted.seed = 5;
  KMeansOptions uniform;
  uniform.seeding = Seeding::kUniformRandom;
  uniform.seed = 5;
  uniform.max_iterations = weighted.max_iterations = 4;  // before full converge
  const Real w_obj = weighted_kmeans(f.points, f.weights, 12, weighted).objective;
  const Real u_obj = weighted_kmeans(f.points, f.weights, 12, uniform).objective;
  EXPECT_LE(w_obj, u_obj * 1.05);
}

TEST(WeightedKmeans, PeriodicDistanceUnifiesBoundaryBlob) {
  // One weight blob centered ON the cell corner: with plain Euclidean
  // distances its eight wrapped images look like separate clusters; with
  // minimum-image distances a single cluster covers it and the objective
  // drops sharply.
  const grid::RealSpaceGrid g(grid::UnitCell::cubic(10.0), {10, 10, 10});
  const std::vector<grid::Vec3> points = g.positions();
  std::vector<Real> weights(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const grid::Vec3 d = g.cell().minimum_image({0, 0, 0}, points[i]);
    weights[i] = std::exp(-grid::norm2(d) / 2.0) + 1e-9;
  }
  KMeansOptions euclid;
  euclid.seeding = Seeding::kTopWeight;
  KMeansOptions periodic = euclid;
  const grid::UnitCell cell = g.cell();
  periodic.periodic_cell = &cell;

  const Real obj_euclid = weighted_kmeans(points, weights, 1, euclid).objective;
  const Real obj_periodic =
      weighted_kmeans(points, weights, 1, periodic).objective;
  EXPECT_LT(obj_periodic, 0.5 * obj_euclid);
}

TEST(WeightedKmeans, InputValidation) {
  BlobFixture f;
  std::vector<Real> bad_weights(3, 1.0);
  EXPECT_THROW(weighted_kmeans(f.points, bad_weights, 2, {}), Error);
  EXPECT_THROW(weighted_kmeans(f.points, f.weights, 0, {}), Error);
  std::vector<Real> zeros(f.points.size(), 0.0);
  EXPECT_THROW(weighted_kmeans(f.points, zeros, 2, {}), Error);
}

TEST(PairWeights, MatchesDefinition) {
  // w(r) = Σ_i ψ² · Σ_j φ² per row.
  la::RealMatrix psi_v{{1, 2}, {0, 1}};
  la::RealMatrix psi_c{{3}, {4}};
  const std::vector<Real> w = pair_weights(psi_v.view(), psi_c.view());
  EXPECT_DOUBLE_EQ(w[0], (1 + 4) * 9);
  EXPECT_DOUBLE_EQ(w[1], 1 * 16);
}

class DistKmeansSweep : public ::testing::TestWithParam<int> {};

TEST_P(DistKmeansSweep, MatchesSerialObjectiveScale) {
  const int p = GetParam();
  BlobFixture f;
  const Index k = 6;

  KMeansOptions opts;
  opts.seeding = Seeding::kTopWeight;
  opts.seed = 2;
  const KMeansResult serial =
      weighted_kmeans(f.points, f.weights, k, opts);

  par::run(p, [&](par::Comm& comm) {
    const par::BlockPartition part(f.grid.size(), comm.size());
    const Index off = part.offset(comm.rank());
    const Index cnt = part.count(comm.rank());
    std::vector<grid::Vec3> local_points(
        f.points.begin() + off, f.points.begin() + off + cnt);
    std::vector<Real> local_weights(
        f.weights.begin() + off, f.weights.begin() + off + cnt);

    const DistKMeansResult dist = dist_weighted_kmeans(
        comm, local_points, local_weights, off, k, opts);

    ASSERT_EQ(dist.interpolation_points.size(), static_cast<std::size_t>(k));
    std::set<Index> unique(dist.interpolation_points.begin(),
                           dist.interpolation_points.end());
    EXPECT_EQ(unique.size(), static_cast<std::size_t>(k));
    // Same ballpark objective as serial (algorithms differ only in
    // empty-cluster handling).
    EXPECT_LT(dist.objective, 2.0 * serial.objective + 1e-9);
    // Points are valid global indices.
    for (const Index gp : dist.interpolation_points) {
      EXPECT_GE(gp, 0);
      EXPECT_LT(gp, f.grid.size());
    }
  });
}

TEST_P(DistKmeansSweep, SingleRankMatchesDistributedExactly) {
  const int p = GetParam();
  if (p != 1) GTEST_SKIP() << "exact comparison only meaningful at p=1";
  BlobFixture f;
  KMeansOptions opts;
  opts.seeding = Seeding::kTopWeight;
  par::run(1, [&](par::Comm& comm) {
    const DistKMeansResult dist =
        dist_weighted_kmeans(comm, f.points, f.weights, 0, 5, opts);
    EXPECT_EQ(dist.interpolation_points.size(), 5u);
    EXPECT_GT(dist.objective, 0.0);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistKmeansSweep,
                         ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace lrt::kmeans
