// Resilience subsystem: fault-spec grammar, deterministic injection,
// retry-with-backoff, and the lrt.ckpt/1 checkpoint format including its
// corruption taxonomy (docs/RESILIENCE.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "ft/checkpoint.hpp"
#include "ft/fault.hpp"
#include "ft/retry.hpp"
#include "obs/counters.hpp"
#include "par/comm.hpp"

namespace lrt::ft {
namespace {

// ----- FaultSpec grammar ------------------------------------------------------

TEST(FaultSpec, ParsesFullGrammar) {
  const FaultSpec spec = FaultSpec::parse(
      "seed=42, fail=0.25,delay=0.5,\tdelay_us=7,crash=2@100,retries=3,"
      "backoff_us=5");
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_DOUBLE_EQ(spec.send_fail_prob, 0.25);
  EXPECT_DOUBLE_EQ(spec.delay_prob, 0.5);
  EXPECT_EQ(spec.delay_us, 7);
  EXPECT_EQ(spec.crash_rank, 2);
  EXPECT_EQ(spec.crash_at, 100);
  EXPECT_EQ(spec.max_attempts, 3);
  EXPECT_EQ(spec.backoff_us, 5);
}

TEST(FaultSpec, EmptyStringYieldsDefaults) {
  const FaultSpec spec = FaultSpec::parse("");
  EXPECT_EQ(spec.seed, 1u);
  EXPECT_DOUBLE_EQ(spec.send_fail_prob, 0.0);
  EXPECT_DOUBLE_EQ(spec.delay_prob, 0.0);
  EXPECT_EQ(spec.crash_rank, -1);
  EXPECT_EQ(spec.max_attempts, 6);
}

TEST(FaultSpec, RejectsMalformedInput) {
  EXPECT_THROW(FaultSpec::parse("bogus_key=1"), Error);
  EXPECT_THROW(FaultSpec::parse("fail=1.5"), Error);
  EXPECT_THROW(FaultSpec::parse("fail=x"), Error);
  EXPECT_THROW(FaultSpec::parse("crash=3"), Error);   // missing @query
  EXPECT_THROW(FaultSpec::parse("retries=0"), Error); // needs >= 1
  EXPECT_THROW(FaultSpec::parse("no_equals"), Error);
}

TEST(FaultPlan, FromEnvHonorsVariable) {
  const char* saved = std::getenv("LRT_FAULT");
  const std::string restore = saved != nullptr ? saved : "";

  ASSERT_EQ(setenv("LRT_FAULT", "fail=0.5,seed=9", 1), 0);
  const std::unique_ptr<FaultPlan> plan = FaultPlan::from_env(2);
  ASSERT_NE(plan, nullptr);
  EXPECT_DOUBLE_EQ(plan->spec().send_fail_prob, 0.5);
  EXPECT_EQ(plan->spec().seed, 9u);

  ASSERT_EQ(unsetenv("LRT_FAULT"), 0);
  EXPECT_EQ(FaultPlan::from_env(2), nullptr);

  if (saved != nullptr) setenv("LRT_FAULT", restore.c_str(), 1);
}

// ----- Retry ------------------------------------------------------------------

TEST(Retry, HealsTransientFailuresAndCountsAttempts) {
  obs::Counter& attempts = obs::counter("ft.retry.attempts");
  obs::Counter& exhausted = obs::counter("ft.retry.exhausted");
  const long long a0 = attempts.value();
  const long long e0 = exhausted.value();

  RetryOptions options;
  options.max_attempts = 6;
  options.base_backoff_us = 0;
  Retry retry(options, default_retry_site(), nullptr, 0);
  int calls = 0;
  const int result = retry.run([&] {
    if (++calls <= 2) throw TransientError("flaky");
    return 42;
  });
  EXPECT_EQ(result, 42);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(attempts.value() - a0, 2);
  EXPECT_EQ(exhausted.value() - e0, 0);
}

TEST(Retry, ExhaustedBudgetRethrowsTransientError) {
  obs::Counter& attempts = obs::counter("ft.retry.attempts");
  obs::Counter& exhausted = obs::counter("ft.retry.exhausted");
  const long long a0 = attempts.value();
  const long long e0 = exhausted.value();

  RetryOptions options;
  options.max_attempts = 3;
  options.base_backoff_us = 0;
  Retry retry(options, default_retry_site(), nullptr, 0);
  int calls = 0;
  EXPECT_THROW(retry.run([&]() -> int {
    ++calls;
    throw TransientError("always");
  }),
               TransientError);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(attempts.value() - a0, 2);
  EXPECT_EQ(exhausted.value() - e0, 1);
}

TEST(Retry, OtherExceptionsPassThroughUnretried) {
  RetryOptions options;
  options.base_backoff_us = 0;
  Retry retry(options, RetrySite{}, nullptr, 0);
  int calls = 0;
  EXPECT_THROW(retry.run([&]() -> int {
    ++calls;
    throw RankCrashError("down");
  }),
               RankCrashError);
  EXPECT_EQ(calls, 1);
}

// ----- injection through par::Comm --------------------------------------------

/// Mixed collective + p2p workload; returns rank 0's allreduced total so
/// correctness under injection is easy to assert.
double faulty_workload(par::Comm& comm) {
  double total = 0;
  for (int round = 0; round < 10; ++round) {
    double value = 1.0;
    comm.allreduce(&value, 1, par::ReduceOp::kSum);
    total += value;
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() - 1 + comm.size()) % comm.size();
    double token = comm.rank();
    double received = 0;
    comm.sendrecv(&token, 1, next, &received, 1, prev, 11);
    EXPECT_DOUBLE_EQ(received, prev);
    comm.barrier();
  }
  return total;
}

TEST(FaultInjection, TransientSendFailuresAreHealed) {
  obs::Counter& fails = obs::counter("ft.inject.send_fail");
  obs::Counter& retried = obs::counter("comm.retry.attempts");
  const long long f0 = fails.value();
  const long long r0 = retried.value();

  FaultSpec spec;
  spec.seed = 12;
  spec.send_fail_prob = 0.2;
  spec.max_attempts = 50;
  spec.backoff_us = 0;
  par::run(4, [&](par::Comm& comm) {
    EXPECT_DOUBLE_EQ(faulty_workload(comm), 40.0);
  }, {}, spec);

  EXPECT_GT(fails.value() - f0, 0);
  EXPECT_EQ(retried.value() - r0, fails.value() - f0);
}

TEST(FaultInjection, HealedRetriesDoNotPerturbTrafficTotals) {
  // Byte/call accounting must be identical with and without injected
  // transient failures: a failed attempt neither delivers nor bills.
  std::map<std::string, long long> clean, faulty;
  const auto traffic_delta = [](const FaultSpec& spec) {
    std::map<std::string, long long> before;
    for (const auto& [name, value] : obs::snapshot_counters()) {
      if (name.rfind("comm.", 0) == 0 && name.find(".retry.") ==
                                             std::string::npos) {
        before[name] = value;
      }
    }
    par::run(3, [](par::Comm& comm) { faulty_workload(comm); }, {}, spec);
    std::map<std::string, long long> delta;
    for (const auto& [name, value] : obs::snapshot_counters()) {
      // Counters register on first use, so a name can be missing from the
      // pre-run snapshot; treat that as a zero baseline.
      if (name.rfind("comm.", 0) == 0 &&
          name.find(".retry.") == std::string::npos) {
        const auto it = before.find(name);
        delta[name] = value - (it == before.end() ? 0 : it->second);
      }
    }
    return delta;
  };
  FaultSpec benign;
  benign.seed = 3;
  clean = traffic_delta(benign);
  FaultSpec spec;
  spec.seed = 3;
  spec.send_fail_prob = 0.25;
  spec.max_attempts = 60;
  spec.backoff_us = 0;
  faulty = traffic_delta(spec);
  EXPECT_EQ(clean, faulty);
}

TEST(FaultInjection, ExhaustedRetriesEscapeAsTransientError) {
  obs::Counter& exhausted = obs::counter("comm.retry.exhausted");
  const long long e0 = exhausted.value();

  FaultSpec spec;
  spec.seed = 5;
  spec.send_fail_prob = 1.0;
  spec.max_attempts = 2;
  spec.backoff_us = 0;
  EXPECT_THROW(par::run(2,
                        [](par::Comm& comm) {
                          double value = 1.0;
                          comm.allreduce(&value, 1, par::ReduceOp::kSum);
                        },
                        {}, spec),
               TransientError);
  EXPECT_GT(exhausted.value() - e0, 0);
}

TEST(FaultInjection, CrashPropagatesAsRankCrashError) {
  obs::Counter& crashes = obs::counter("ft.inject.crash");
  const long long c0 = crashes.value();

  FaultSpec spec;
  spec.seed = 8;
  spec.crash_rank = 1;
  spec.crash_at = 3;
  EXPECT_THROW(par::run(2,
                        [](par::Comm& comm) {
                          for (int i = 0; i < 50; ++i) {
                            double value = 1.0;
                            comm.allreduce(&value, 1, par::ReduceOp::kSum);
                          }
                        },
                        {}, spec),
               RankCrashError);
  EXPECT_EQ(crashes.value() - c0, 1);
}

TEST(FaultInjection, DelaysAreInjectedWithoutChangingResults) {
  obs::Counter& delays = obs::counter("ft.inject.delay");
  const long long d0 = delays.value();

  FaultSpec spec;
  spec.seed = 21;
  spec.delay_prob = 1.0;
  spec.delay_us = 1;
  par::run(2, [](par::Comm& comm) {
    EXPECT_DOUBLE_EQ(faulty_workload(comm), 20.0);
  }, {}, spec);
  EXPECT_GT(delays.value() - d0, 0);
}

TEST(FaultInjection, IdenticalSeedReplaysIdenticalSchedule) {
  // Acceptance gate: two runs with the same seed + spec produce the exact
  // same injection and retry counter deltas.
  const char* names[] = {"ft.inject.queries", "ft.inject.send_fail",
                         "ft.inject.delay", "comm.retry.attempts"};
  const auto run_once = [&] {
    std::map<std::string, long long> before;
    for (const char* name : names) before[name] = obs::counter(name).value();
    FaultSpec spec;
    spec.seed = 777;
    spec.send_fail_prob = 0.15;
    spec.delay_prob = 0.05;
    spec.delay_us = 1;
    spec.max_attempts = 40;
    spec.backoff_us = 0;
    par::run(4, [](par::Comm& comm) { faulty_workload(comm); }, {}, spec);
    std::map<std::string, long long> delta;
    for (const char* name : names) {
      delta[name] = obs::counter(name).value() - before[name];
    }
    return delta;
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first, second);
  EXPECT_GT(first.at("ft.inject.queries"), 0);
  EXPECT_GT(first.at("ft.inject.send_fail"), 0);
}

// ----- checkpoint format ------------------------------------------------------

struct Meta {
  std::int64_t iteration;
  double objective;
};
static_assert(std::is_trivially_copyable_v<Meta>);

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "lrt_ft_" + name + ".ckpt";
}

/// Writes a small well-formed checkpoint and returns its path.
std::string write_sample(const std::string& name) {
  const std::string path = temp_path(name);
  std::remove(path.c_str());
  CheckpointWriter writer;
  writer.add_pod("meta", Meta{17, 2.5});
  writer.add_array("values", std::vector<double>{1.0, 2.0, 3.0});
  la::RealMatrix m(2, 3);
  for (Index i = 0; i < 2; ++i) {
    for (Index j = 0; j < 3; ++j) m(i, j) = static_cast<Real>(10 * i + j);
  }
  writer.add_matrix("m", m.view());
  writer.write(path);
  return path;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Checkpoint, RoundTripsAllSectionKinds) {
  const std::string path = write_sample("roundtrip");
  EXPECT_TRUE(checkpoint_exists(path));
  // The atomic write leaves no temp file behind.
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());

  const CheckpointReader reader(path);
  EXPECT_TRUE(reader.has("meta"));
  EXPECT_FALSE(reader.has("absent"));
  const Meta meta = reader.pod<Meta>("meta");
  EXPECT_EQ(meta.iteration, 17);
  EXPECT_DOUBLE_EQ(meta.objective, 2.5);
  const std::vector<double> values = reader.array<double>("values");
  EXPECT_EQ(values, (std::vector<double>{1.0, 2.0, 3.0}));
  const la::RealMatrix m = reader.matrix("m");
  ASSERT_EQ(m.rows(), 2);
  ASSERT_EQ(m.cols(), 3);
  EXPECT_EQ(m(1, 2), 12.0);
  std::remove(path.c_str());
}

TEST(Checkpoint, EmptyMatrixRoundTrips) {
  const std::string path = temp_path("empty");
  CheckpointWriter writer;
  writer.add_matrix("p", la::RealMatrix(0, 0).view());
  writer.write(path);
  const CheckpointReader reader(path);
  const la::RealMatrix p = reader.matrix("p");
  EXPECT_EQ(p.rows(), 0);
  EXPECT_EQ(p.cols(), 0);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileIsIoFault) {
  const std::string path = temp_path("nonexistent");
  std::remove(path.c_str());
  EXPECT_FALSE(checkpoint_exists(path));
  try {
    CheckpointReader reader(path);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.fault(), CheckpointFault::kIo);
  }
}

TEST(Checkpoint, LeftoverTmpFromTornWriteNeverCounts) {
  const std::string path = temp_path("torn");
  std::remove(path.c_str());
  spit(path + ".tmp", {'h', 'a', 'l', 'f'});
  EXPECT_FALSE(checkpoint_exists(path));
  std::remove((path + ".tmp").c_str());
}

TEST(Checkpoint, TruncationIsDetected) {
  const std::string path = write_sample("truncated");
  std::vector<char> bytes = slurp(path);
  bytes.resize(bytes.size() - 5);
  spit(path, bytes);
  try {
    CheckpointReader reader(path);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.fault(), CheckpointFault::kTruncated);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, FlippedPayloadByteFailsCrc) {
  const std::string path = write_sample("bitrot");
  std::vector<char> bytes = slurp(path);
  bytes.back() = static_cast<char>(bytes.back() ^ 0x40);
  spit(path, bytes);
  try {
    CheckpointReader reader(path);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.fault(), CheckpointFault::kBadCrc);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, WrongVersionIsRejected) {
  const std::string path = write_sample("version");
  std::vector<char> bytes = slurp(path);
  bytes[8] = 99;  // u32 version follows the 8-byte magic
  spit(path, bytes);
  try {
    CheckpointReader reader(path);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.fault(), CheckpointFault::kBadVersion);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, BadMagicIsRejected) {
  const std::string path = write_sample("magic");
  std::vector<char> bytes = slurp(path);
  bytes[0] = 'X';
  spit(path, bytes);
  try {
    CheckpointReader reader(path);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.fault(), CheckpointFault::kBadMagic);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingSectionAndBadShapeAreTyped) {
  const std::string path = write_sample("shape");
  const CheckpointReader reader(path);
  try {
    reader.section("absent");
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.fault(), CheckpointFault::kMissingSection);
  }
  try {
    reader.pod<double>("meta");  // meta is 16 bytes, double is 8
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.fault(), CheckpointFault::kBadShape);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lrt::ft
