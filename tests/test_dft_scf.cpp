// Kohn-Sham Hamiltonian, band solver, SCF, and synthetic orbitals.
#include <gtest/gtest.h>

#include <cmath>

#include "dft/hamiltonian.hpp"
#include "dft/lobpcg_gs.hpp"
#include "dft/scf.hpp"
#include "dft/synthetic.hpp"
#include "la/blas.hpp"
#include "la/ortho.hpp"

namespace lrt::dft {
namespace {

TEST(KsHamiltonian, FreeElectronEigenvaluesAreHalfG2) {
  // Zero potential: the exact lowest eigenvalues are ½|G|² sorted.
  const grid::RealSpaceGrid g(grid::UnitCell::cubic(2 * constants::kPi),
                              {8, 8, 8});
  const grid::GVectors gv(g);
  KsHamiltonian h(g, gv);

  BandSolveOptions opts;
  opts.tolerance = 1e-9;
  opts.max_iterations = 300;
  const la::LobpcgResult bands = solve_bands(h, 5, la::RealMatrix(), opts);

  std::vector<Real> expected(gv.g2_table());
  std::sort(expected.begin(), expected.end());
  for (Index j = 0; j < 5; ++j) {
    EXPECT_NEAR(bands.eigenvalues[static_cast<std::size_t>(j)],
                0.5 * expected[static_cast<std::size_t>(j)], 1e-6);
  }
}

TEST(KsHamiltonian, ApplyIsSymmetric) {
  const grid::RealSpaceGrid g(grid::UnitCell::cubic(6.0), {6, 6, 6});
  const grid::GVectors gv(g);
  KsHamiltonian h(g, gv);
  // Random potential.
  Rng rng(2);
  std::vector<Real> v(static_cast<std::size_t>(g.size()));
  for (auto& x : v) x = rng.normal();
  h.set_potential(v);

  const la::RealMatrix x = la::RealMatrix::random_normal(g.size(), 2, rng);
  const la::RealMatrix y = la::RealMatrix::random_normal(g.size(), 2, rng);
  la::RealMatrix hx(g.size(), 2), hy(g.size(), 2);
  h.apply(x.view(), hx.view());
  h.apply(y.view(), hy.view());
  // <y, Hx> == <Hy, x> column-wise.
  for (Index j = 0; j < 2; ++j) {
    Real a = 0, b = 0;
    for (Index i = 0; i < g.size(); ++i) {
      a += y(i, j) * hx(i, j);
      b += hy(i, j) * x(i, j);
    }
    EXPECT_NEAR(a, b, 1e-8 * std::abs(a) + 1e-10);
  }
}

TEST(KsHamiltonian, KineticEnergyOfPlaneWave) {
  const grid::RealSpaceGrid g(grid::UnitCell::cubic(2 * constants::kPi),
                              {8, 8, 8});
  const grid::GVectors gv(g);
  const KsHamiltonian h(g, gv);
  // ψ ∝ cos(x): mixture of G = ±1, kinetic energy = ½ for l2-normalized.
  std::vector<Real> psi(static_cast<std::size_t>(g.size()));
  Real norm = 0;
  for (Index i = 0; i < g.size(); ++i) {
    const grid::Vec3 r = g.position(i);
    psi[static_cast<std::size_t>(i)] = std::cos(r[0]);
    norm += psi[static_cast<std::size_t>(i)] * psi[static_cast<std::size_t>(i)];
  }
  norm = std::sqrt(norm);
  for (auto& x : psi) x /= norm;
  EXPECT_NEAR(h.kinetic_energy(psi.data()), 0.5, 1e-10);
}

TEST(KsHamiltonian, PreconditionerDampsHighFrequencies) {
  const grid::RealSpaceGrid g(grid::UnitCell::cubic(2 * constants::kPi),
                              {8, 8, 8});
  const grid::GVectors gv(g);
  const KsHamiltonian h(g, gv);
  // A pure high-G plane wave must shrink much more than a low-G one.
  la::RealMatrix r(g.size(), 2);
  for (Index i = 0; i < g.size(); ++i) {
    const grid::Vec3 pos = g.position(i);
    r(i, 0) = std::cos(pos[0]);          // |G| = 1
    r(i, 1) = std::cos(4.0 * pos[0]);    // |G| = 4 (Nyquist)
  }
  const Real low_before = la::nrm2(&r(0, 0), 1);  // just magnitudes later
  (void)low_before;
  la::RealMatrix before = r;
  h.precondition(r.view(), {1.0, 1.0});
  Real low_ratio = 0, high_ratio = 0, low_norm = 0, high_norm = 0;
  for (Index i = 0; i < g.size(); ++i) {
    low_ratio += r(i, 0) * before(i, 0);
    low_norm += before(i, 0) * before(i, 0);
    high_ratio += r(i, 1) * before(i, 1);
    high_norm += before(i, 1) * before(i, 1);
  }
  EXPECT_GT(low_ratio / low_norm, 3.0 * high_ratio / high_norm);
}

TEST(Scf, Silicon8ConvergesWithGapAndNegativeEnergy) {
  ScfOptions opts;
  opts.ecut = 5.0;
  opts.num_conduction = 6;  // headroom above the smeared frontier
  opts.smearing = 0.005;
  opts.max_iterations = 40;
  opts.density_tolerance = 1e-5;
  const KohnShamResult ks =
      solve_ground_state(grid::make_silicon_supercell(1), opts);

  EXPECT_TRUE(ks.converged);
  EXPECT_EQ(ks.num_occupied, 16);
  EXPECT_EQ(static_cast<Index>(ks.eigenvalues.size()), 22);
  // Eigenvalues ascending.
  for (std::size_t i = 1; i < ks.eigenvalues.size(); ++i) {
    EXPECT_LE(ks.eigenvalues[i - 1], ks.eigenvalues[i] + 1e-10);
  }
  // Silicon has a positive KS gap (loose bounds at this small cutoff).
  EXPECT_GT(ks.band_gap, 0.0);
  EXPECT_LT(ks.band_gap, 0.5);
  // Binding: total energy well below zero.
  EXPECT_LT(ks.total_energy, -10.0);

  // Density integrates to the electron count.
  Real total = 0;
  for (const Real n : ks.density) total += n;
  EXPECT_NEAR(total * ks.grid.dv(), 32.0, 1e-6);

  // Orbitals dv-orthonormal.
  const Real dv = ks.grid.dv();
  const la::RealMatrix overlap = la::gram(ks.orbitals.view());
  for (Index i = 0; i < overlap.rows(); ++i) {
    for (Index j = 0; j < overlap.cols(); ++j) {
      const Real expected = (i == j) ? 1.0 / dv : 0.0;
      EXPECT_NEAR(overlap(i, j), expected, 1e-4 / dv);
    }
  }
}

TEST(Synthetic, OrbitalsAreOrthonormalAndLaddersOrdered) {
  const grid::RealSpaceGrid g(grid::UnitCell::cubic(8.0), {12, 12, 12});
  SyntheticOptions opts;
  opts.num_centers = 8;
  const SyntheticOrbitals orbs = make_synthetic_orbitals(g, 6, 4, opts);

  const Real dv = g.dv();
  // dv-orthonormality within each block.
  const la::RealMatrix gv = la::gram(orbs.psi_v.view());
  for (Index i = 0; i < 6; ++i) {
    for (Index j = 0; j < 6; ++j) {
      EXPECT_NEAR(gv(i, j) * dv, i == j ? 1.0 : 0.0, 1e-9);
    }
  }
  // Cross-block orthogonality.
  const la::RealMatrix cross = la::gemm(
      la::Trans::kYes, la::Trans::kNo, orbs.psi_v.view(), orbs.psi_c.view());
  EXPECT_LT(la::max_abs(cross.view()) * dv, 1e-9);

  // Energy ladders: ascending, gap respected.
  for (std::size_t i = 1; i < orbs.eps_v.size(); ++i) {
    EXPECT_LE(orbs.eps_v[i - 1], orbs.eps_v[i]);
  }
  EXPECT_LT(orbs.eps_v.back(), 0.0);
  EXPECT_GT(orbs.eps_c.front(), 0.0);
}

TEST(Synthetic, DeterministicForFixedSeed) {
  const grid::RealSpaceGrid g(grid::UnitCell::cubic(6.0), {10, 10, 10});
  const SyntheticOrbitals a = make_synthetic_orbitals(g, 3, 2);
  const SyntheticOrbitals b = make_synthetic_orbitals(g, 3, 2);
  EXPECT_LT(la::max_abs_diff(a.psi_v.view(), b.psi_v.view()), 0.0 + 1e-15);
}

}  // namespace
}  // namespace lrt::dft
