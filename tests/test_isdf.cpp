// ISDF decomposition: pair products, point selection (QRCP plain vs
// randomized vs K-Means), interpolation vectors (fast vs direct), and the
// error-decay property that justifies the low-rank approximation.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "dft/synthetic.hpp"
#include "isdf/interpolation.hpp"
#include "isdf/isdf.hpp"
#include "isdf/pairproduct.hpp"
#include "la/blas.hpp"

namespace lrt::isdf {
namespace {

struct OrbitalFixture {
  grid::RealSpaceGrid grid{grid::UnitCell::cubic(8.0), {10, 10, 10}};
  dft::SyntheticOrbitals orbs;
  OrbitalFixture() {
    dft::SyntheticOptions opts;
    opts.num_centers = 8;
    opts.seed = 77;
    orbs = dft::make_synthetic_orbitals(grid, 6, 4, opts);
  }
  la::RealConstView v() const { return orbs.psi_v.view(); }
  la::RealConstView c() const { return orbs.psi_c.view(); }
};

TEST(PairProduct, MatchesManualOuterProducts) {
  la::RealMatrix psi_v{{1, 2}, {3, 4}};
  la::RealMatrix psi_c{{5, 6, 7}, {8, 9, 10}};
  const la::RealMatrix z = pair_product_matrix(psi_v.view(), psi_c.view());
  EXPECT_EQ(z.rows(), 2);
  EXPECT_EQ(z.cols(), 6);
  // Row 0: [1*5, 1*6, 1*7, 2*5, 2*6, 2*7].
  EXPECT_DOUBLE_EQ(z(0, 0), 5);
  EXPECT_DOUBLE_EQ(z(0, 2), 7);
  EXPECT_DOUBLE_EQ(z(0, 3), 10);
  EXPECT_DOUBLE_EQ(z(1, 5), 40);
  EXPECT_EQ(pair_index(1, 2, 3), 5);
}

TEST(PairProduct, CoefficientMatrixSamplesRows) {
  OrbitalFixture f;
  const std::vector<Index> points = {0, 5, 99};
  const la::RealMatrix z = pair_product_matrix(f.v(), f.c());
  const la::RealMatrix c = coefficient_matrix(f.v(), f.c(), points);
  for (std::size_t m = 0; m < points.size(); ++m) {
    for (Index j = 0; j < z.cols(); ++j) {
      EXPECT_DOUBLE_EQ(c(static_cast<Index>(m), j), z(points[m], j));
    }
  }
}

TEST(PairProduct, SampleRowsBoundsChecked) {
  OrbitalFixture f;
  EXPECT_THROW(sample_rows(f.v(), {f.grid.size()}), Error);
}

TEST(QrcpPoints, PlainAndRandomizedSelectValidPoints) {
  OrbitalFixture f;
  const Index nmu = 20;
  QrcpPointOptions plain;
  plain.randomized = false;
  const std::vector<Index> p1 = select_points_qrcp(f.v(), f.c(), nmu, plain);
  QrcpPointOptions rand_opts;
  rand_opts.randomized = true;
  const std::vector<Index> p2 =
      select_points_qrcp(f.v(), f.c(), nmu, rand_opts);

  for (const auto* pts : {&p1, &p2}) {
    EXPECT_EQ(pts->size(), static_cast<std::size_t>(nmu));
    std::set<Index> unique(pts->begin(), pts->end());
    EXPECT_EQ(unique.size(), static_cast<std::size_t>(nmu));
    for (const Index p : *pts) {
      EXPECT_GE(p, 0);
      EXPECT_LT(p, f.grid.size());
    }
  }
}

TEST(QrcpPoints, RandomizedApproximatesPlainQuality) {
  // The two selections need not coincide, but the ISDF error they induce
  // must be comparable.
  OrbitalFixture f;
  const Index nmu = 18;
  QrcpPointOptions plain;
  plain.randomized = false;
  const auto p_plain = select_points_qrcp(f.v(), f.c(), nmu, plain);
  const auto p_rand = select_points_qrcp(f.v(), f.c(), nmu, {});
  const la::RealMatrix th_plain =
      interpolation_vectors(f.v(), f.c(), p_plain);
  const la::RealMatrix th_rand = interpolation_vectors(f.v(), f.c(), p_rand);
  const Real e_plain =
      isdf_relative_error(f.v(), f.c(), p_plain, th_plain.view());
  const Real e_rand =
      isdf_relative_error(f.v(), f.c(), p_rand, th_rand.view());
  EXPECT_LT(e_rand, std::max(2.0 * e_plain, 0.05));
}

TEST(Interpolation, FastMatchesDirect) {
  OrbitalFixture f;
  const auto points = select_points_qrcp(f.v(), f.c(), 15, {});
  const la::RealMatrix fast = interpolation_vectors(f.v(), f.c(), points);
  const la::RealMatrix direct =
      interpolation_vectors_direct(f.v(), f.c(), points);
  EXPECT_LT(la::max_abs_diff(fast.view(), direct.view()),
            1e-8 * (1.0 + la::max_abs(direct.view())));
}

TEST(Interpolation, ExactAtInterpolationPoints) {
  // The Galerkin solution reproduces Z exactly on the sampled rows when
  // the coefficient Gram matrix is well conditioned... in general it is a
  // least-squares fit; instead verify the stronger algebraic identity
  // (Θ C) Cᵀ = Z Cᵀ (the normal equations).
  OrbitalFixture f;
  const auto points = select_points_qrcp(f.v(), f.c(), 12, {});
  const la::RealMatrix theta = interpolation_vectors(f.v(), f.c(), points);
  const la::RealMatrix z = pair_product_matrix(f.v(), f.c());
  const la::RealMatrix c = coefficient_matrix(f.v(), f.c(), points);

  const la::RealMatrix zc =
      la::gemm(la::Trans::kNo, la::Trans::kYes, z.view(), c.view());
  const la::RealMatrix cct =
      la::gemm(la::Trans::kNo, la::Trans::kYes, c.view(), c.view());
  const la::RealMatrix tcct =
      la::gemm(la::Trans::kNo, la::Trans::kNo, theta.view(), cct.view());
  EXPECT_LT(la::max_abs_diff(tcct.view(), zc.view()),
            1e-6 * (1.0 + la::max_abs(zc.view())));
}

TEST(Isdf, ErrorDecaysWithNmu) {
  // The core low-rank property (paper §4.1): more interpolation points,
  // smaller reconstruction error, reaching ~exact at Nμ = rank(Z) = Nv*Nc.
  OrbitalFixture f;
  Real previous = 1e9;
  for (const Index nmu : {6, 12, 24}) {
    const auto points = select_points_qrcp(f.v(), f.c(), nmu, {});
    const la::RealMatrix theta = interpolation_vectors(f.v(), f.c(), points);
    const Real error = isdf_relative_error(f.v(), f.c(), points, theta.view());
    EXPECT_LT(error, previous * 1.10) << "Nμ=" << nmu;
    previous = error;
  }
  // Near-full rank: error should be tiny (rank(Z) <= Nv*Nc = 24).
  QrcpPointOptions plain;
  plain.randomized = false;
  const auto points = select_points_qrcp(f.v(), f.c(), 24, plain);
  const la::RealMatrix theta = interpolation_vectors(f.v(), f.c(), points);
  EXPECT_LT(isdf_relative_error(f.v(), f.c(), points, theta.view()), 1e-6);
}

TEST(Isdf, KmeansAndQrcpReachSimilarAccuracy) {
  // The paper's claim: K-Means points are as good as QRCP points at a
  // fraction of the cost. Check the induced ISDF error is comparable.
  OrbitalFixture f;
  const Index nmu = 20;

  IsdfOptions qrcp_opts;
  qrcp_opts.nmu = nmu;
  qrcp_opts.method = PointMethod::kQrcp;
  const IsdfResult qrcp = isdf_decompose(f.grid, f.v(), f.c(), qrcp_opts);

  IsdfOptions km_opts;
  km_opts.nmu = nmu;
  km_opts.method = PointMethod::kKmeans;
  const IsdfResult km = isdf_decompose(f.grid, f.v(), f.c(), km_opts);

  const Real e_qrcp =
      isdf_relative_error(f.v(), f.c(), qrcp.points, qrcp.theta.view());
  const Real e_km =
      isdf_relative_error(f.v(), f.c(), km.points, km.theta.view());
  EXPECT_LT(e_qrcp, 0.3);
  EXPECT_LT(e_km, std::max(3.0 * e_qrcp, 0.3));
}

TEST(Isdf, DecomposeFillsAllFactors) {
  OrbitalFixture f;
  IsdfOptions opts;
  opts.nmu = 10;
  obs::WallProfiler profiler;
  const IsdfResult r = isdf_decompose(f.grid, f.v(), f.c(), opts, &profiler);
  EXPECT_EQ(r.nmu(), 10);
  EXPECT_EQ(r.c.rows(), 10);
  EXPECT_EQ(r.c.cols(), f.v().cols() * f.c().cols());
  EXPECT_EQ(r.theta.rows(), f.grid.size());
  EXPECT_EQ(r.theta.cols(), 10);
  EXPECT_EQ(r.psi_v_mu.rows(), 10);
  EXPECT_EQ(r.psi_c_mu.cols(), f.c().cols());
  EXPECT_GT(profiler.total("select_points"), 0.0);
  EXPECT_GT(profiler.total("interp_vectors"), 0.0);
}

TEST(Isdf, ImplicitModeSkipsCoefficientMatrix) {
  OrbitalFixture f;
  IsdfOptions opts;
  opts.nmu = 8;
  opts.build_coefficients = false;
  const IsdfResult r = isdf_decompose(f.grid, f.v(), f.c(), opts);
  EXPECT_TRUE(r.c.empty());
  EXPECT_EQ(r.psi_v_mu.rows(), 8);
}

}  // namespace
}  // namespace lrt::isdf
