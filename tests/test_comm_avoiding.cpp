// Communication-avoiding primitives: the single-round allreduce, the
// nonblocking collectives and the overlapped transpose built on them, the
// slab-decomposed distributed FFT, the batched small-block GEMM, and the
// fused-reduction LOBPCG iteration. Every replacement here claims bitwise
// identity with the schedule it displaces (or, for the fused LOBPCG,
// with its per-block twin), so these tests compare exactly — no
// tolerances except where a kernel legitimately reassociates.
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "fft/fft3d.hpp"
#include "la/blas.hpp"
#include "la/eig.hpp"
#include "la/matrix.hpp"
#include "par/comm.hpp"
#include "par/dist_fft3d.hpp"
#include "par/dist_lobpcg.hpp"
#include "par/layout.hpp"
#include "par/transpose.hpp"

namespace lrt {
namespace {

// ----- single-round allreduce -------------------------------------------------

class AllreduceSweep : public ::testing::TestWithParam<int> {};

TEST_P(AllreduceSweep, BitwiseMatchesReduceThenBcast) {
  const int p = GetParam();
  const Index n = 37;
  // Payloads with nontrivial rounding behavior so an operand-order slip
  // in the butterfly would show up as a bitwise difference.
  la::RealMatrix data(n, p);
  Rng rng(11);
  la::RealMatrix noise = la::RealMatrix::random_normal(n, p, rng);
  for (Index i = 0; i < n; ++i) {
    for (Index r = 0; r < p; ++r) {
      data(i, r) = noise(i, r) * (1.0 + 1e-13 * r);
    }
  }

  for (const par::ReduceOp op :
       {par::ReduceOp::kSum, par::ReduceOp::kMax, par::ReduceOp::kMin}) {
    la::RealMatrix fused(n, p), legacy(n, p);
    par::run(p, [&](par::Comm& comm) {
      std::vector<Real> buf(static_cast<std::size_t>(n));
      for (Index i = 0; i < n; ++i) {
        buf[static_cast<std::size_t>(i)] = data(i, comm.rank());
      }
      comm.allreduce(buf.data(), n, op);
      for (Index i = 0; i < n; ++i) {
        fused(i, comm.rank()) = buf[static_cast<std::size_t>(i)];
      }
    });
    par::run(p, [&](par::Comm& comm) {
      std::vector<Real> buf(static_cast<std::size_t>(n));
      for (Index i = 0; i < n; ++i) {
        buf[static_cast<std::size_t>(i)] = data(i, comm.rank());
      }
      comm.reduce(buf.data(), n, op, /*root=*/0);
      comm.bcast(buf.data(), n, /*root=*/0);
      for (Index i = 0; i < n; ++i) {
        legacy(i, comm.rank()) = buf[static_cast<std::size_t>(i)];
      }
    });
    for (Index i = 0; i < n; ++i) {
      for (Index r = 0; r < p; ++r) {
        EXPECT_EQ(fused(i, r), legacy(i, r))
            << "p=" << p << " op=" << static_cast<int>(op) << " i=" << i
            << " rank=" << r;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, AllreduceSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8));

TEST(Allreduce, BillsItsOwnTrafficKind) {
  par::run(4, [](par::Comm& comm) {
    double x = comm.rank() + 1.0;
    comm.allreduce(&x, 1, par::ReduceOp::kSum);
    // One user-facing collective, billed to the allreduce kind only: the
    // comm-budget gate counts reduce + bcast + allreduce calls, so a
    // fused primitive leaking into the legacy kinds would corrupt it.
    EXPECT_EQ(comm.calls_made(par::Traffic::kAllreduce), 1);
    EXPECT_EQ(comm.calls_made(par::Traffic::kReduce), 0);
    EXPECT_EQ(comm.calls_made(par::Traffic::kBcast), 0);
    if (comm.size() > 1) {
      EXPECT_GT(comm.bytes_sent(par::Traffic::kAllreduce), 0);
    }
  });
}

// ----- nonblocking collectives ------------------------------------------------

TEST(NonblockingCollectives, AlltoallvMatchesBlockingExactly) {
  const int p = 4;
  par::run(p, [](par::Comm& comm) {
    const int np = comm.size();
    const int me = comm.rank();
    // Rank r sends (r + 1) elements to every peer, value-tagged by the
    // (src, dst) pair so misrouted payloads are visible.
    std::vector<Index> scounts(static_cast<std::size_t>(np));
    std::vector<Index> sdispls(static_cast<std::size_t>(np));
    std::vector<Index> rcounts(static_cast<std::size_t>(np));
    std::vector<Index> rdispls(static_cast<std::size_t>(np));
    Index stot = 0, rtot = 0;
    for (int r = 0; r < np; ++r) {
      scounts[static_cast<std::size_t>(r)] = me + 1;
      sdispls[static_cast<std::size_t>(r)] = stot;
      stot += me + 1;
      rcounts[static_cast<std::size_t>(r)] = r + 1;
      rdispls[static_cast<std::size_t>(r)] = rtot;
      rtot += r + 1;
    }
    std::vector<double> send(static_cast<std::size_t>(stot));
    for (int r = 0; r < np; ++r) {
      for (Index i = 0; i < me + 1; ++i) {
        send[static_cast<std::size_t>(sdispls[static_cast<std::size_t>(r)] +
                                      i)] = 100.0 * me + 10.0 * r + i;
      }
    }
    std::vector<double> blocking(static_cast<std::size_t>(rtot), -1.0);
    std::vector<double> nonblocking(static_cast<std::size_t>(rtot), -2.0);
    comm.alltoallv(send.data(), scounts, sdispls, blocking.data(), rcounts,
                   rdispls);
    par::Comm::Request req = comm.i_alltoallv(
        send.data(), scounts, sdispls, nonblocking.data(), rcounts, rdispls);
    EXPECT_TRUE(req.pending() || np == 1);
    req.wait();
    EXPECT_FALSE(req.pending());
    req.wait();  // idempotent
    EXPECT_EQ(blocking, nonblocking);
  });
}

TEST(NonblockingCollectives, AllgathervMatchesBlockingExactly) {
  const int p = 5;
  par::run(p, [](par::Comm& comm) {
    const int np = comm.size();
    const int me = comm.rank();
    std::vector<Index> counts(static_cast<std::size_t>(np));
    std::vector<Index> displs(static_cast<std::size_t>(np));
    Index total = 0;
    for (int r = 0; r < np; ++r) {
      counts[static_cast<std::size_t>(r)] = r % 3 + 1;
      displs[static_cast<std::size_t>(r)] = total;
      total += counts[static_cast<std::size_t>(r)];
    }
    const Index mine = counts[static_cast<std::size_t>(me)];
    std::vector<double> send(static_cast<std::size_t>(mine));
    for (Index i = 0; i < mine; ++i) {
      send[static_cast<std::size_t>(i)] = 10.0 * me + i;
    }
    std::vector<double> blocking(static_cast<std::size_t>(total), -1.0);
    std::vector<double> nonblocking(static_cast<std::size_t>(total), -2.0);
    comm.allgatherv(send.data(), mine, blocking.data(), counts, displs);
    par::Comm::Request req =
        comm.i_allgatherv(send.data(), mine, nonblocking.data(), counts,
                          displs);
    req.wait();
    EXPECT_EQ(blocking, nonblocking);
  });
}

// ----- overlapped transpose ---------------------------------------------------

class OverlapSweep : public ::testing::TestWithParam<int> {};

TEST_P(OverlapSweep, RealTransposeBitwiseMatchesBlocking) {
  const int p = GetParam();
  const Index n_rows = 23, n_cols = 17;
  Rng rng(7);
  const la::RealMatrix global = la::RealMatrix::random_normal(n_rows, n_cols,
                                                              rng);
  for (const Index chunks : {Index{1}, Index{2}, Index{4}, Index{7}}) {
    par::run(p, [&](par::Comm& comm) {
      const par::BlockPartition rows(n_rows, comm.size());
      const la::RealConstView my_rows = global.view().rows_block(
          rows.offset(comm.rank()), rows.count(comm.rank()));
      const la::RealMatrix blocking =
          par::row_block_to_col_block(comm, my_rows, n_rows, n_cols);
      const la::RealMatrix overlapped = par::row_block_to_col_block_overlapped(
          comm, my_rows, n_rows, n_cols, chunks);
      ASSERT_EQ(overlapped.rows(), blocking.rows());
      ASSERT_EQ(overlapped.cols(), blocking.cols());
      for (Index i = 0; i < blocking.rows(); ++i) {
        for (Index j = 0; j < blocking.cols(); ++j) {
          EXPECT_EQ(overlapped(i, j), blocking(i, j))
              << "p=" << p << " chunks=" << chunks;
        }
      }
      // And back: the inverse overlapped exchange restores the row block.
      const la::RealMatrix back = par::col_block_to_row_block_overlapped(
          comm, overlapped.view(), n_rows, n_cols, chunks);
      for (Index i = 0; i < my_rows.rows(); ++i) {
        for (Index j = 0; j < n_cols; ++j) {
          EXPECT_EQ(back(i, j), my_rows(i, j));
        }
      }
    });
  }
}

TEST_P(OverlapSweep, ComplexTransposeRoundTripsExactly) {
  const int p = GetParam();
  using Cplx = std::complex<Real>;
  const Index n_rows = 19, n_cols = 12;
  la::ComplexMatrix global(n_rows, n_cols);
  for (Index i = 0; i < n_rows; ++i) {
    for (Index j = 0; j < n_cols; ++j) {
      global(i, j) = Cplx(static_cast<Real>(i + 1), static_cast<Real>(j - 3));
    }
  }
  par::run(p, [&](par::Comm& comm) {
    const par::BlockPartition rows(n_rows, comm.size());
    const par::BlockPartition cols(n_cols, comm.size());
    const la::ComplexConstView my_rows = global.view().rows_block(
        rows.offset(comm.rank()), rows.count(comm.rank()));
    const la::ComplexMatrix col_block = par::row_block_to_col_block_overlapped(
        comm, my_rows, n_rows, n_cols);
    // The column block is the full-height slice of the global matrix.
    ASSERT_EQ(col_block.rows(), n_rows);
    ASSERT_EQ(col_block.cols(), cols.count(comm.rank()));
    for (Index i = 0; i < n_rows; ++i) {
      for (Index j = 0; j < col_block.cols(); ++j) {
        EXPECT_EQ(col_block(i, j), global(i, cols.offset(comm.rank()) + j));
      }
    }
    const la::ComplexMatrix back = par::col_block_to_row_block_overlapped(
        comm, col_block.view(), n_rows, n_cols);
    for (Index i = 0; i < my_rows.rows(); ++i) {
      for (Index j = 0; j < n_cols; ++j) {
        EXPECT_EQ(back(i, j), my_rows(i, j));
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, OverlapSweep,
                         ::testing::Values(1, 2, 3, 4));

// ----- distributed FFT --------------------------------------------------------

class DistFftSweep : public ::testing::TestWithParam<int> {};

TEST_P(DistFftSweep, ForwardBitwiseMatchesSerial) {
  const int p = GetParam();
  const Index n0 = 6, n1 = 4, n2 = 5;
  std::vector<fft::Complex> serial(static_cast<std::size_t>(n0 * n1 * n2));
  for (std::size_t i = 0; i < serial.size(); ++i) {
    serial[i] = fft::Complex(0.3 * static_cast<Real>(i % 13) - 1.0,
                             0.1 * static_cast<Real>(i % 7));
  }
  const std::vector<fft::Complex> input = serial;
  fft::Fft3D(n0, n1, n2).forward(serial.data());

  par::run(p, [&](par::Comm& comm) {
    const par::DistFft3D dist(comm, n0, n1, n2);
    std::vector<fft::Complex> slab(
        static_cast<std::size_t>(dist.local_size()));
    const std::size_t base =
        static_cast<std::size_t>(dist.offset0() * n1 * n2);
    for (std::size_t i = 0; i < slab.size(); ++i) slab[i] = input[base + i];
    dist.forward(slab.data());
    for (std::size_t i = 0; i < slab.size(); ++i) {
      EXPECT_EQ(slab[i].real(), serial[base + i].real()) << "p=" << p;
      EXPECT_EQ(slab[i].imag(), serial[base + i].imag()) << "p=" << p;
    }
  });
}

TEST_P(DistFftSweep, InverseBitwiseMatchesSerialAndRoundTrips) {
  const int p = GetParam();
  const Index n0 = 8, n1 = 3, n2 = 4;
  std::vector<fft::Complex> freq(static_cast<std::size_t>(n0 * n1 * n2));
  for (std::size_t i = 0; i < freq.size(); ++i) {
    freq[i] = fft::Complex(static_cast<Real>(i % 5) - 2.0,
                           0.25 * static_cast<Real>(i % 11));
  }
  std::vector<fft::Complex> serial = freq;
  fft::Fft3D(n0, n1, n2).inverse(serial.data());

  par::run(p, [&](par::Comm& comm) {
    const par::DistFft3D dist(comm, n0, n1, n2);
    std::vector<fft::Complex> slab(
        static_cast<std::size_t>(dist.local_size()));
    const std::size_t base =
        static_cast<std::size_t>(dist.offset0() * n1 * n2);
    for (std::size_t i = 0; i < slab.size(); ++i) slab[i] = freq[base + i];
    dist.inverse(slab.data());
    for (std::size_t i = 0; i < slab.size(); ++i) {
      EXPECT_EQ(slab[i].real(), serial[base + i].real()) << "p=" << p;
      EXPECT_EQ(slab[i].imag(), serial[base + i].imag()) << "p=" << p;
    }
    // forward(inverse(x)) restores the spectrum to rounding error.
    dist.forward(slab.data());
    for (std::size_t i = 0; i < slab.size(); ++i) {
      EXPECT_NEAR(slab[i].real(), freq[base + i].real(), 1e-10);
      EXPECT_NEAR(slab[i].imag(), freq[base + i].imag(), 1e-10);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistFftSweep,
                         ::testing::Values(1, 2, 3, 4));

// ----- batched GEMM -----------------------------------------------------------

TEST(GemmMany, BitwiseMatchesPackedGemmPerItem) {
  // Shapes above the packed-dispatch threshold (2 * 24^3 flops), so the
  // plain gemm comparator takes the packed path too and the contract —
  // each item bitwise identical to a packed gemm of the same shapes —
  // is checked exactly.
  Rng rng(23);
  const Index n = 26, k = 25;
  const la::RealMatrix b = la::RealMatrix::random_normal(k, n, rng);
  const std::vector<Index> ms = {24, 31, 6, 40};
  std::vector<la::RealMatrix> as, batched, looped;
  for (const Index m : ms) {
    as.push_back(la::RealMatrix::random_normal(m, k, rng));
    batched.emplace_back(m, n);
    looped.emplace_back(m, n);
    for (Index i = 0; i < m; ++i) {
      for (Index j = 0; j < n; ++j) {
        batched.back()(i, j) = 0.5 * static_cast<Real>(i - j);
        looped.back()(i, j) = batched.back()(i, j);
      }
    }
  }
  std::vector<la::GemmBatchItem> items;
  for (std::size_t t = 0; t < ms.size(); ++t) {
    items.push_back({as[t].view(), batched[t].view()});
  }
  la::gemm_many(la::Trans::kNo, la::Trans::kNo, Real{1.25}, items, b.view(),
                Real{-0.5});
  for (std::size_t t = 0; t < ms.size(); ++t) {
    la::gemm(la::Trans::kNo, la::Trans::kNo, Real{1.25}, as[t].view(),
             b.view(), Real{-0.5}, looped[t].view());
  }
  for (std::size_t t = 0; t < ms.size(); ++t) {
    // Items large enough for plain gemm's packed dispatch compare
    // bitwise; the 6-row panel would fall to the reference kernel in a
    // gemm loop, which is exactly the case gemm_many exists for, so it
    // compares to packed-path rounding instead.
    const bool above = 2 * ms[t] * n * k >= 2 * 24 * 24 * 24;
    for (Index i = 0; i < batched[t].rows(); ++i) {
      for (Index j = 0; j < n; ++j) {
        if (above) {
          EXPECT_EQ(batched[t](i, j), looped[t](i, j)) << "item " << t;
        } else {
          EXPECT_NEAR(batched[t](i, j), looped[t](i, j), 1e-10)
              << "item " << t;
        }
      }
    }
  }
}

TEST(GemmMany, TransposedGramBlocksMatchGemm) {
  // The fused LOBPCG's Gram assembly shape: A^T B with tall skinny
  // operands, several column blocks against a shared right-hand side.
  Rng rng(29);
  const Index rows = 400, n = 9;
  const la::RealMatrix b = la::RealMatrix::random_normal(rows, n, rng);
  const std::vector<Index> widths = {3, 4, 2};
  std::vector<la::RealMatrix> as, batched, looped;
  for (const Index w : widths) {
    as.push_back(la::RealMatrix::random_normal(rows, w, rng));
    batched.emplace_back(w, n);
    looped.emplace_back(w, n);
  }
  std::vector<la::GemmBatchItem> items;
  for (std::size_t t = 0; t < widths.size(); ++t) {
    items.push_back({as[t].view(), batched[t].view()});
  }
  la::gemm_many(la::Trans::kYes, la::Trans::kNo, Real{1}, items, b.view(),
                Real{0});
  for (std::size_t t = 0; t < widths.size(); ++t) {
    la::RealMatrix ref = la::gemm(la::Trans::kYes, la::Trans::kNo,
                                  as[t].view(), b.view());
    for (Index i = 0; i < ref.rows(); ++i) {
      for (Index j = 0; j < n; ++j) {
        EXPECT_NEAR(batched[t](i, j), ref(i, j), 1e-10) << "item " << t;
      }
    }
  }
}

// ----- fused LOBPCG -----------------------------------------------------------

struct DenseProblem {
  la::RealMatrix a;
  la::RealMatrix x0;
  la::EigResult dense;
};

DenseProblem make_dense_problem(Index n, Index k) {
  Rng rng(3);
  DenseProblem prob{la::RealMatrix::random_normal(n, n, rng), {}, {}};
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < i; ++j) prob.a(j, i) = prob.a(i, j);
  }
  prob.dense = la::syev(prob.a.view());
  prob.x0 = la::RealMatrix::random_normal(n, k, rng);
  return prob;
}

la::LobpcgResult run_dist_lobpcg(int p, const DenseProblem& prob,
                                 par::GramReduction reduction) {
  const Index n = prob.a.rows();
  la::LobpcgResult out;
  par::run(p, [&](par::Comm& comm) {
    const par::BlockPartition part(n, comm.size());
    const Index off = part.offset(comm.rank());
    const Index cnt = part.count(comm.rank());
    par::DistBlockOperator apply = [&](la::RealConstView x_loc,
                                       la::RealView y_loc) {
      la::RealMatrix x_full(n, x_loc.cols());
      std::vector<Index> counts(static_cast<std::size_t>(comm.size()));
      std::vector<Index> displs(static_cast<std::size_t>(comm.size()));
      for (int r = 0; r < comm.size(); ++r) {
        counts[static_cast<std::size_t>(r)] = part.count(r) * x_loc.cols();
        displs[static_cast<std::size_t>(r)] = part.offset(r) * x_loc.cols();
      }
      const la::RealMatrix x_copy = la::to_matrix(x_loc);
      comm.allgatherv(x_copy.data(), x_copy.size(), x_full.data(), counts,
                      displs);
      const la::RealMatrix y_full =
          la::gemm(la::Trans::kNo, la::Trans::kNo, prob.a.view(),
                   x_full.view());
      la::copy<Real>(y_full.view().rows_block(off, cnt), y_loc);
    };
    la::LobpcgOptions opts;
    opts.tolerance = 1e-9;
    opts.max_iterations = 400;
    const la::LobpcgResult r = par::dist_lobpcg(
        comm, apply, nullptr,
        la::to_matrix<Real>(prob.x0.view().rows_block(off, cnt)), opts,
        reduction);
    if (comm.rank() == 0) {
      out.converged = r.converged;
      out.iterations = r.iterations;
      out.eigenvalues = r.eigenvalues;
    }
  });
  return out;
}

class FusedLobpcgSweep : public ::testing::TestWithParam<int> {};

TEST_P(FusedLobpcgSweep, FusedBitwiseMatchesPerBlockTwin) {
  const int p = GetParam();
  const DenseProblem prob = make_dense_problem(48, 3);
  const la::LobpcgResult fused =
      run_dist_lobpcg(p, prob, par::GramReduction::kFused);
  const la::LobpcgResult per_block =
      run_dist_lobpcg(p, prob, par::GramReduction::kPerBlock);
  // The fused round concatenates the same locally-reduced blocks into
  // one payload; elementwise reduction over the same tree makes the two
  // schedules bitwise identical, iteration for iteration.
  EXPECT_EQ(fused.converged, per_block.converged);
  EXPECT_EQ(fused.iterations, per_block.iterations);
  ASSERT_EQ(fused.eigenvalues.size(), per_block.eigenvalues.size());
  for (std::size_t j = 0; j < fused.eigenvalues.size(); ++j) {
    EXPECT_EQ(fused.eigenvalues[j], per_block.eigenvalues[j]) << "p=" << p;
  }
}

TEST_P(FusedLobpcgSweep, FusedMatchesDenseReference) {
  const int p = GetParam();
  const DenseProblem prob = make_dense_problem(48, 3);
  const la::LobpcgResult fused =
      run_dist_lobpcg(p, prob, par::GramReduction::kFused);
  EXPECT_TRUE(fused.converged) << "p=" << p;
  for (std::size_t j = 0; j < fused.eigenvalues.size(); ++j) {
    EXPECT_NEAR(fused.eigenvalues[j], prob.dense.values[j], 1e-6)
        << "p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, FusedLobpcgSweep,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace lrt
