// Checkpoint/restart bit-identity (docs/RESILIENCE.md): a solver killed
// mid-run by an injected crash and restarted from its checkpoint must
// finish bit-identical to a run that was never interrupted — for serial
// and distributed LOBPCG, serial and distributed K-Means, and the
// distributed driver's phase-granular K-Means restart.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "dft/synthetic.hpp"
#include "ft/checkpoint.hpp"
#include "ft/fault.hpp"
#include "kmeans/dist_kmeans.hpp"
#include "la/blas.hpp"
#include "obs/counters.hpp"
#include "par/dist_lobpcg.hpp"
#include "par/layout.hpp"
#include "tddft/dist_driver.hpp"

namespace lrt {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "lrt_restart_" + name + ".ckpt";
}

void expect_bitwise_equal(const la::RealMatrix& a, const la::RealMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(a(i, j), b(i, j)) << "(" << i << "," << j << ")";
    }
  }
}

// ----- serial LOBPCG ----------------------------------------------------------

la::RealMatrix random_symmetric(Index n, unsigned seed) {
  Rng rng(seed);
  la::RealMatrix a = la::RealMatrix::random_normal(n, n, rng);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < i; ++j) a(j, i) = a(i, j);
  }
  return a;
}

TEST(LobpcgRestart, ResumedRunIsBitIdentical) {
  const Index n = 40, k = 3;
  const la::RealMatrix a = random_symmetric(n, 3);
  Rng rng(5);
  const la::RealMatrix x0 = la::RealMatrix::random_normal(n, k, rng);
  const la::BlockOperator apply = [&](la::RealConstView x, la::RealView y) {
    const la::RealMatrix hx =
        la::gemm(la::Trans::kNo, la::Trans::kNo, a.view(), x);
    la::copy<Real>(hx.view(), y);
  };

  la::LobpcgOptions options;
  options.max_iterations = 25;
  options.tolerance = 0;  // fixed iteration count in both runs
  options.checkpoint_interval = 7;
  std::vector<la::LobpcgCheckpoint> snapshots;
  options.checkpoint_sink = [&](const la::LobpcgCheckpoint& ck) {
    snapshots.push_back(ck);
  };
  const la::LobpcgResult reference = la::lobpcg(apply, nullptr, x0, options);
  ASSERT_EQ(snapshots.size(), 3u);  // iterations 7, 14, 21
  EXPECT_EQ(snapshots[1].iteration, 14);

  la::LobpcgOptions resumed = options;
  resumed.checkpoint_sink = nullptr;
  resumed.checkpoint_interval = 0;
  resumed.restore = &snapshots[1];
  const la::LobpcgResult restarted = la::lobpcg(apply, nullptr, x0, resumed);

  EXPECT_EQ(restarted.iterations, reference.iterations);
  ASSERT_EQ(restarted.eigenvalues.size(), reference.eigenvalues.size());
  for (std::size_t j = 0; j < reference.eigenvalues.size(); ++j) {
    EXPECT_EQ(restarted.eigenvalues[j], reference.eigenvalues[j]);
  }
  expect_bitwise_equal(restarted.eigenvectors, reference.eigenvectors);
}

TEST(LobpcgRestart, CheckpointFileRoundTripsExactState) {
  const Index n = 12, k = 2;
  const la::RealMatrix a = random_symmetric(n, 9);
  Rng rng(2);
  const la::RealMatrix x0 = la::RealMatrix::random_normal(n, k, rng);
  const la::BlockOperator apply = [&](la::RealConstView x, la::RealView y) {
    const la::RealMatrix hx =
        la::gemm(la::Trans::kNo, la::Trans::kNo, a.view(), x);
    la::copy<Real>(hx.view(), y);
  };
  la::LobpcgOptions options;
  options.max_iterations = 6;
  options.tolerance = 0;
  options.checkpoint_interval = 4;
  la::LobpcgCheckpoint snapshot;
  options.checkpoint_sink = [&](const la::LobpcgCheckpoint& ck) {
    snapshot = ck;
  };
  la::lobpcg(apply, nullptr, x0, options);
  ASSERT_EQ(snapshot.iteration, 4);

  const std::string path = temp_path("lobpcg_io");
  ft::save_lobpcg(snapshot, path);
  const la::LobpcgCheckpoint loaded = ft::load_lobpcg(path);
  EXPECT_EQ(loaded.iteration, snapshot.iteration);
  expect_bitwise_equal(loaded.x, snapshot.x);
  expect_bitwise_equal(loaded.hx, snapshot.hx);
  expect_bitwise_equal(loaded.p, snapshot.p);
  expect_bitwise_equal(loaded.hp, snapshot.hp);
  EXPECT_EQ(loaded.eigenvalues, snapshot.eigenvalues);
  EXPECT_EQ(loaded.previous_values, snapshot.previous_values);
  EXPECT_EQ(loaded.residual_norms, snapshot.residual_norms);
  std::remove(path.c_str());
}

// ----- serial K-Means ---------------------------------------------------------

/// Three well-separated weighted blobs (same shape as test_kmeans.cpp).
struct BlobFixture {
  grid::RealSpaceGrid grid{grid::UnitCell::cubic(12.0), {12, 12, 12}};
  std::vector<grid::Vec3> points;
  std::vector<Real> weights;

  BlobFixture() {
    points = grid.positions();
    weights.assign(points.size(), 0.0);
    const grid::Vec3 centers[3] = {{3, 3, 3}, {9, 9, 3}, {3, 9, 9}};
    for (std::size_t i = 0; i < points.size(); ++i) {
      for (const auto& c : centers) {
        const grid::Vec3 d = grid.cell().minimum_image(c, points[i]);
        weights[i] += std::exp(-grid::norm2(d) / 2.0);
      }
    }
  }
};

TEST(KmeansRestart, ResumedSerialRunIsBitIdentical) {
  const BlobFixture f;
  const Index k = 5;
  kmeans::KMeansOptions options;
  options.seed = 11;
  options.max_iterations = 30;
  options.checkpoint_interval = 3;
  std::vector<ft::KMeansState> snapshots;
  options.checkpoint_sink = [&](const ft::KMeansState& state) {
    snapshots.push_back(state);
  };
  const kmeans::KMeansResult reference =
      kmeans::weighted_kmeans(f.points, f.weights, k, options);
  ASSERT_GE(snapshots.size(), 1u);
  const ft::KMeansState& mid = snapshots[snapshots.size() / 2];
  EXPECT_TRUE(mid.has_rng);

  kmeans::KMeansOptions resumed = options;
  resumed.checkpoint_sink = nullptr;
  resumed.checkpoint_interval = 0;
  resumed.restore = &mid;
  const kmeans::KMeansResult restarted =
      kmeans::weighted_kmeans(f.points, f.weights, k, resumed);

  EXPECT_EQ(restarted.iterations, reference.iterations);
  EXPECT_EQ(restarted.objective, reference.objective);
  ASSERT_EQ(restarted.centroids.size(), reference.centroids.size());
  for (std::size_t c = 0; c < reference.centroids.size(); ++c) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_EQ(restarted.centroids[c][static_cast<std::size_t>(d)],
                reference.centroids[c][static_cast<std::size_t>(d)]);
    }
  }
  EXPECT_EQ(restarted.interpolation_points, reference.interpolation_points);
  EXPECT_EQ(restarted.assignment, reference.assignment);

  const std::string path = temp_path("kmeans_io");
  ft::save_kmeans(mid, path);
  const ft::KMeansState loaded = ft::load_kmeans(path);
  EXPECT_EQ(loaded.iteration, mid.iteration);
  EXPECT_EQ(loaded.objective, mid.objective);
  EXPECT_TRUE(loaded.has_rng);
  std::remove(path.c_str());
}

// ----- distributed K-Means: crash, then restart from the checkpoint -----------

TEST(DistKmeansRestart, CrashedRunRestartsBitIdentical) {
  const int p = 4;
  const BlobFixture f;
  const Index n = static_cast<Index>(f.points.size());
  const Index k = 5;
  const std::string path = temp_path("dist_kmeans");
  std::remove(path.c_str());

  const auto local_slab = [&](par::Comm& comm, std::vector<grid::Vec3>& pts,
                              std::vector<Real>& wts, Index& offset) {
    const par::BlockPartition part(n, comm.size());
    offset = part.offset(comm.rank());
    const Index count = part.count(comm.rank());
    pts.assign(f.points.begin() + offset, f.points.begin() + offset + count);
    wts.assign(f.weights.begin() + offset, f.weights.begin() + offset + count);
  };

  // Uninterrupted reference, under a benign plan so the per-rank query
  // counts (which crash=R@N is keyed on) get measured.
  std::vector<grid::Vec3> ref_centroids;
  Real ref_objective = 0;
  Index ref_iterations = 0;
  obs::Counter& queries = obs::counter("ft.inject.queries");
  const long long q0 = queries.value();
  ft::FaultSpec benign;
  benign.seed = 1;
  par::run(p, [&](par::Comm& comm) {
    std::vector<grid::Vec3> pts;
    std::vector<Real> wts;
    Index offset = 0;
    local_slab(comm, pts, wts, offset);
    const kmeans::DistKMeansResult r =
        kmeans::dist_weighted_kmeans(comm, pts, wts, offset, k, {});
    if (comm.rank() == 0) {
      ref_centroids = r.centroids;
      ref_objective = r.objective;
      ref_iterations = r.iterations;
    }
  }, {}, benign);
  const long long per_rank_queries = (queries.value() - q0) / p;
  ASSERT_GT(per_rank_queries, 4);

  // Killed mid-run: rank 2 crashes three quarters of the way through its
  // injection-site queries; rank 0 checkpoints every completed Lloyd
  // iteration (the state is replicated, one file is the whole truth).
  // The 3/4 point lands past iteration 2's allreduce, which rank 2 can
  // only complete after receiving rank 0's butterfly partial — i.e. after
  // rank 0 has sequentially finished iteration 1 and written its
  // checkpoint. (The halfway point is not safe: the rootless butterfly
  // lets rank 2 finish an allreduce round and crash before rank 0 —
  // possibly still waiting on rank 1 — completes the same round.)
  ft::FaultSpec crash;
  crash.seed = 1;
  crash.crash_rank = 2;
  crash.crash_at = 3 * per_rank_queries / 4;
  EXPECT_THROW(
      par::run(p,
               [&](par::Comm& comm) {
                 std::vector<grid::Vec3> pts;
                 std::vector<Real> wts;
                 Index offset = 0;
                 local_slab(comm, pts, wts, offset);
                 kmeans::KMeansOptions options;
                 options.checkpoint_interval = 1;
                 if (comm.rank() == 0) {
                   options.checkpoint_sink = [&](const ft::KMeansState& s) {
                     ft::save_kmeans(s, path);
                   };
                 }
                 kmeans::dist_weighted_kmeans(comm, pts, wts, offset, k,
                                              options);
               },
               {}, crash),
      ft::RankCrashError);
  ASSERT_TRUE(ft::checkpoint_exists(path));

  // Restart every rank from the surviving checkpoint: the finished run
  // must be bit-identical to the uninterrupted one.
  const ft::KMeansState state = ft::load_kmeans(path);
  EXPECT_FALSE(state.has_rng);  // the distributed solver draws no randomness
  par::run(p, [&](par::Comm& comm) {
    std::vector<grid::Vec3> pts;
    std::vector<Real> wts;
    Index offset = 0;
    local_slab(comm, pts, wts, offset);
    kmeans::KMeansOptions options;
    options.restore = &state;
    const kmeans::DistKMeansResult r =
        kmeans::dist_weighted_kmeans(comm, pts, wts, offset, k, options);
    if (comm.rank() == 0) {
      EXPECT_EQ(r.iterations, ref_iterations);
      EXPECT_EQ(r.objective, ref_objective);
      ASSERT_EQ(r.centroids.size(), ref_centroids.size());
      for (std::size_t c = 0; c < ref_centroids.size(); ++c) {
        for (std::size_t d = 0; d < 3; ++d) {
          EXPECT_EQ(r.centroids[c][d], ref_centroids[c][d]);
        }
      }
    }
  }, {}, benign);
  std::remove(path.c_str());
}

// ----- distributed LOBPCG: crash, then restart from per-rank slabs ------------

TEST(DistLobpcgRestart, CrashedRunRestartsBitIdentical) {
  const int p = 3;
  const Index n = 48, k = 3;
  const la::RealMatrix a = random_symmetric(n, 7);
  Rng rng(4);
  const la::RealMatrix x0_full = la::RealMatrix::random_normal(n, k, rng);
  const std::string base = temp_path("dist_lobpcg");
  const auto rank_path = [&](int r) {
    return base + ".rank" + std::to_string(r);
  };
  for (int r = 0; r < p; ++r) std::remove(rank_path(r).c_str());

  // Dense distributed operator (test-only): allgather the slabs. The
  // returned closure pins `comm` (which outlives it in every body below)
  // and copies the small partition descriptor.
  const auto make_apply = [&a, n](par::Comm& comm, par::BlockPartition part) {
    return [&a, n, &comm, part](la::RealConstView x_loc, la::RealView y_loc) {
      la::RealMatrix x_full(n, x_loc.cols());
      std::vector<Index> counts(static_cast<std::size_t>(comm.size()));
      std::vector<Index> displs(static_cast<std::size_t>(comm.size()));
      for (int r = 0; r < comm.size(); ++r) {
        counts[static_cast<std::size_t>(r)] = part.count(r) * x_loc.cols();
        displs[static_cast<std::size_t>(r)] = part.offset(r) * x_loc.cols();
      }
      const la::RealMatrix x_copy = la::to_matrix(x_loc);
      comm.allgatherv(x_copy.data(), x_copy.size(), x_full.data(), counts,
                      displs);
      const la::RealMatrix y_full =
          la::gemm(la::Trans::kNo, la::Trans::kNo, a.view(), x_full.view());
      la::copy<Real>(
          y_full.view().rows_block(part.offset(comm.rank()),
                                   part.count(comm.rank())),
          y_loc);
    };
  };

  la::LobpcgOptions options;
  options.max_iterations = 16;
  options.tolerance = 0;

  // Uninterrupted reference + per-rank query-count measurement.
  std::vector<Real> ref_values;
  std::vector<la::RealMatrix> ref_slabs(static_cast<std::size_t>(p));
  obs::Counter& queries = obs::counter("ft.inject.queries");
  const long long q0 = queries.value();
  ft::FaultSpec benign;
  benign.seed = 1;
  par::run(p, [&](par::Comm& comm) {
    const par::BlockPartition part(n, comm.size());
    const auto apply = make_apply(comm, part);
    const la::LobpcgResult r = par::dist_lobpcg(
        comm, apply, nullptr,
        la::to_matrix<Real>(x0_full.view().rows_block(
            part.offset(comm.rank()), part.count(comm.rank()))),
        options);
    ref_slabs[static_cast<std::size_t>(comm.rank())] = r.eigenvectors;
    if (comm.rank() == 0) ref_values = r.eigenvalues;
  }, {}, benign);
  const long long per_rank_queries = (queries.value() - q0) / p;

  // Killed at ~3/4 of the run; every rank has long since written its
  // iteration-6 slab snapshot (sinks fire at the end of each iteration,
  // saving at a fixed early iteration keeps the per-rank file set
  // consistent even though ranks run loosely synchronized).
  ft::FaultSpec crash;
  crash.seed = 1;
  crash.crash_rank = 1;
  crash.crash_at = per_rank_queries * 3 / 4;
  EXPECT_THROW(
      par::run(p,
               [&](par::Comm& comm) {
                 const par::BlockPartition part(n, comm.size());
                 const auto apply = make_apply(comm, part);
                 la::LobpcgOptions with_sink = options;
                 with_sink.checkpoint_interval = 1;
                 const std::string path = rank_path(comm.rank());
                 with_sink.checkpoint_sink =
                     [&path](const la::LobpcgCheckpoint& ck) {
                       if (ck.iteration == 6) ft::save_lobpcg(ck, path);
                     };
                 par::dist_lobpcg(
                     comm, apply, nullptr,
                     la::to_matrix<Real>(x0_full.view().rows_block(
                         part.offset(comm.rank()), part.count(comm.rank()))),
                     with_sink);
               },
               {}, crash),
      ft::RankCrashError);
  for (int r = 0; r < p; ++r) {
    ASSERT_TRUE(ft::checkpoint_exists(rank_path(r))) << "rank " << r;
  }

  // Restart from the per-rank files: bit-identical to the reference.
  par::run(p, [&](par::Comm& comm) {
    const par::BlockPartition part(n, comm.size());
    const auto apply = make_apply(comm, part);
    const la::LobpcgCheckpoint ck =
        ft::load_lobpcg(rank_path(comm.rank()));
    EXPECT_EQ(ck.iteration, 6);
    la::LobpcgOptions resumed = options;
    resumed.restore = &ck;
    const la::LobpcgResult r = par::dist_lobpcg(
        comm, apply, nullptr,
        la::to_matrix<Real>(x0_full.view().rows_block(
            part.offset(comm.rank()), part.count(comm.rank()))),
        resumed);
    ASSERT_EQ(r.eigenvalues.size(), ref_values.size());
    if (comm.rank() == 0) {
      for (std::size_t j = 0; j < ref_values.size(); ++j) {
        EXPECT_EQ(r.eigenvalues[j], ref_values[j]);
      }
    }
    expect_bitwise_equal(r.eigenvectors,
                         ref_slabs[static_cast<std::size_t>(comm.rank())]);
  }, {}, benign);
  for (int r = 0; r < p; ++r) std::remove(rank_path(r).c_str());
}

// ----- driver phase-granular restart ------------------------------------------

TEST(DriverRestart, SecondRunSkipsKmeansPhaseAndReproducesEnergies) {
  const int p = 2;
  const grid::RealSpaceGrid g(grid::UnitCell::cubic(7.0), {8, 8, 8});
  dft::SyntheticOptions sopts;
  sopts.num_centers = 8;
  sopts.seed = 33;
  const tddft::CasidaProblem problem = tddft::make_problem_from_synthetic(
      g, dft::make_synthetic_orbitals(g, 4, 3, sopts));

  const std::string path = temp_path("driver");
  std::remove(path.c_str());

  tddft::DistDriverOptions options;
  options.version = tddft::Version::kImplicit;
  options.num_states = 2;
  options.nmu = 12;
  options.kmeans.seeding = kmeans::Seeding::kTopWeight;
  options.checkpoint_path = path;

  obs::Counter& lloyd = obs::counter("kmeans.dist.iterations");

  const long long l0 = lloyd.value();
  std::vector<Real> first;
  par::run(p, [&](par::Comm& comm) {
    const tddft::DistDriverStats stats =
        tddft::solve_casida_distributed(comm, problem, options);
    if (comm.rank() == 0) first = stats.energies;
  });
  EXPECT_GT(lloyd.value() - l0, 0);
  ASSERT_TRUE(ft::checkpoint_exists(path));

  // Re-run with the checkpoint present: the whole K-Means phase is
  // skipped (no Lloyd iterations run) and the energies are bit-identical.
  const long long l1 = lloyd.value();
  std::vector<Real> second;
  par::run(p, [&](par::Comm& comm) {
    const tddft::DistDriverStats stats =
        tddft::solve_casida_distributed(comm, problem, options);
    if (comm.rank() == 0) second = stats.energies;
  });
  EXPECT_EQ(lloyd.value() - l1, 0);
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t j = 0; j < first.size(); ++j) {
    EXPECT_EQ(second[j], first[j]);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lrt
