// Generic LOBPCG solver validated against the dense eigensolver.
#include <gtest/gtest.h>

#include <cmath>

#include "la/blas.hpp"
#include "la/eig.hpp"
#include "la/lobpcg.hpp"
#include "la/ortho.hpp"

namespace lrt::la {
namespace {

/// Dense symmetric test operator captured in a lambda.
BlockOperator dense_operator(const RealMatrix& a) {
  return [&a](RealConstView x, RealView y) {
    gemm(Trans::kNo, Trans::kNo, 1.0, a.view(), x, 0.0, y);
  };
}

RealMatrix random_symmetric(Index n, Rng& rng) {
  RealMatrix a = RealMatrix::random_normal(n, n, rng);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < i; ++j) a(j, i) = a(i, j);
  }
  return a;
}

TEST(Lobpcg, DiagonalOperatorExact) {
  const Index n = 50;
  RealMatrix a(n, n);
  for (Index i = 0; i < n; ++i) a(i, i) = static_cast<Real>(i + 1);
  Rng rng(1);
  LobpcgOptions opts;
  opts.tolerance = 1e-10;
  const LobpcgResult r = lobpcg(dense_operator(a), nullptr,
                                RealMatrix::random_normal(n, 4, rng), opts);
  EXPECT_TRUE(r.converged);
  for (Index j = 0; j < 4; ++j) {
    EXPECT_NEAR(r.eigenvalues[static_cast<std::size_t>(j)],
                static_cast<Real>(j + 1), 1e-7);
  }
}

class LobpcgSweep
    : public ::testing::TestWithParam<std::pair<Index, Index>> {};

TEST_P(LobpcgSweep, MatchesDenseLowestEigenvalues) {
  const auto [n, k] = GetParam();
  Rng rng(static_cast<unsigned>(n * 10 + k));
  const RealMatrix a = random_symmetric(n, rng);
  const EigResult dense = syev(a.view());

  LobpcgOptions opts;
  opts.tolerance = 1e-9;
  opts.max_iterations = 400;
  const LobpcgResult r = lobpcg(dense_operator(a), nullptr,
                                RealMatrix::random_normal(n, k, rng), opts);
  EXPECT_TRUE(r.converged) << "n=" << n << " k=" << k;
  for (Index j = 0; j < k; ++j) {
    EXPECT_NEAR(r.eigenvalues[static_cast<std::size_t>(j)],
                dense.values[static_cast<std::size_t>(j)], 1e-6)
        << "pair " << j;
  }
  EXPECT_LT(orthogonality_error(r.eigenvectors.view()), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBlocks, LobpcgSweep,
    ::testing::Values(std::make_pair<Index, Index>(30, 1),
                      std::make_pair<Index, Index>(40, 3),
                      std::make_pair<Index, Index>(80, 5),
                      std::make_pair<Index, Index>(120, 8)));

TEST(Lobpcg, PreconditionerAcceleratesDiagonal) {
  // Diagonally dominant operator with large spread: the Jacobi-like
  // preconditioner should reduce iteration count substantially.
  const Index n = 200;
  RealMatrix a(n, n);
  Rng rng(7);
  for (Index i = 0; i < n; ++i) a(i, i) = 1.0 + 100.0 * rng.uniform();
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < i; ++j) {
      const Real v = 0.01 * rng.normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  }

  LobpcgOptions opts;
  opts.tolerance = 1e-8;
  opts.max_iterations = 500;

  const LobpcgResult plain = lobpcg(
      dense_operator(a), nullptr, RealMatrix::random_normal(n, 3, rng), opts);

  BlockPreconditioner prec = [&a](RealView r, const std::vector<Real>& theta) {
    for (Index j = 0; j < r.cols(); ++j) {
      for (Index i = 0; i < r.rows(); ++i) {
        Real gap = a(i, i) - theta[static_cast<std::size_t>(j)];
        if (std::abs(gap) < 0.1) gap = gap < 0 ? -0.1 : 0.1;
        r(i, j) /= gap;
      }
    }
  };
  const LobpcgResult fast = lobpcg(
      dense_operator(a), prec, RealMatrix::random_normal(n, 3, rng), opts);

  EXPECT_TRUE(fast.converged);
  EXPECT_LE(fast.iterations, plain.iterations);
}

TEST(Lobpcg, RejectsOversizedBlock) {
  RealMatrix a = RealMatrix::identity(5);
  Rng rng(1);
  EXPECT_THROW(lobpcg(dense_operator(a), nullptr,
                      RealMatrix::random_normal(5, 2, rng), {}),
               Error);
}

TEST(Lobpcg, ReportsResidualNorms) {
  const Index n = 40;
  Rng rng(3);
  const RealMatrix a = random_symmetric(n, rng);
  LobpcgOptions opts;
  opts.tolerance = 1e-9;
  const LobpcgResult r = lobpcg(dense_operator(a), nullptr,
                                RealMatrix::random_normal(n, 2, rng), opts);
  ASSERT_EQ(r.residual_norms.size(), 2u);
  for (const Real rn : r.residual_norms) {
    EXPECT_LT(rn, 1e-7 * std::max<Real>(1.0, std::abs(r.eigenvalues[0])));
  }
}

}  // namespace
}  // namespace lrt::la
