// Tests for the common utilities: error macros, RNG, CLI, tables, timers.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <set>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "obs/obs.hpp"

namespace lrt {
namespace {

TEST(Error, CheckThrowsWithMessage) {
  try {
    LRT_CHECK(1 == 2, "expected " << 1 << " got " << 2);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("expected 1 got 2"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) {
  EXPECT_NO_THROW(LRT_CHECK(2 + 2 == 4));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const Real u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIndexUnbiasedCoverage) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.uniform_index(10));
  EXPECT_EQ(seen.size(), 10u);  // all residues hit
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(5);
  const int n = 20000;
  Real sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const Real x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Cli, ParsesValuesAndDefaults) {
  CliParser cli("test");
  cli.add("n", "4", "count").add("x", "1.5", "value").add("flag", "false",
                                                          "bool");
  const char* argv[] = {"prog", "--n", "7", "--flag", "--x=2.25"};
  cli.parse(5, argv);
  EXPECT_EQ(cli.get_index("n"), 7);
  EXPECT_DOUBLE_EQ(cli.get_real("x"), 2.25);
  EXPECT_TRUE(cli.get_bool("flag"));
}

TEST(Cli, RejectsUnknownOption) {
  CliParser cli("test");
  cli.add("n", "4", "count");
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW(cli.parse(3, argv), Error);
}

TEST(Cli, RejectsMalformedNumbers) {
  CliParser cli("test");
  cli.add("n", "4", "count");
  const char* argv[] = {"prog", "--n", "4x"};
  cli.parse(3, argv);
  EXPECT_THROW(cli.get_index("n"), Error);
}

TEST(Table, AlignsAndCounts) {
  Table t("demo", {"a", "bb"});
  t.row().cell("x").cell(1.5, 2);
  t.row().cell("longer").cell(Index{42});
  EXPECT_EQ(t.num_rows(), 2);
  const std::string s = t.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
}

TEST(Table, CsvRoundTrip) {
  Table t("csv", {"x", "y"});
  t.row().cell(Index{1}).cell(Index{2});
  const std::string path = testing::TempDir() + "/lrt_table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "# csv");
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
}

TEST(WallProfiler, AccumulatesNamedPhases) {
  obs::WallProfiler p;
  p.add("fft", 1.0);
  p.add("gemm", 2.0);
  p.add("fft", 0.5);
  EXPECT_DOUBLE_EQ(p.total("fft"), 1.5);
  EXPECT_DOUBLE_EQ(p.total("gemm"), 2.0);
  EXPECT_DOUBLE_EQ(p.total("missing"), 0.0);
  EXPECT_DOUBLE_EQ(p.grand_total(), 3.5);
  const auto phases = p.phases();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0], "fft");  // insertion order preserved
}

TEST(WallProfiler, ScopedPhaseAddsTime) {
  obs::WallProfiler p;
  { obs::ScopedPhase guard(p, "work"); }
  EXPECT_GE(p.total("work"), 0.0);
  EXPECT_EQ(p.phases().size(), 1u);
}

TEST(Timer, MeasuresNonNegative) {
  Timer t;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_GE(t.seconds(), 0.0);
}

}  // namespace
}  // namespace lrt
