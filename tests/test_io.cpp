// XYZ round trip and cube file structure tests.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "io/cube.hpp"
#include "io/xyz.hpp"

namespace lrt::io {
namespace {

TEST(Xyz, RoundTripPreservesGeometry) {
  const grid::Structure original = grid::make_water_box(14.0);
  std::stringstream stream;
  write_xyz(stream, original, "water");

  XyzReadOptions opts;
  opts.cell = original.cell;
  const grid::Structure parsed = read_xyz(stream, opts);

  ASSERT_EQ(parsed.num_atoms(), original.num_atoms());
  EXPECT_DOUBLE_EQ(parsed.num_electrons(), original.num_electrons());
  for (Index i = 0; i < original.num_atoms(); ++i) {
    const auto& a = original.atoms[static_cast<std::size_t>(i)];
    const auto& b = parsed.atoms[static_cast<std::size_t>(i)];
    const grid::Species& sa =
        original.species[static_cast<std::size_t>(a.species)];
    const grid::Species& sb =
        parsed.species[static_cast<std::size_t>(b.species)];
    EXPECT_EQ(sa.symbol, sb.symbol);
    for (int ax = 0; ax < 3; ++ax) {
      EXPECT_NEAR(a.position[static_cast<std::size_t>(ax)],
                  b.position[static_cast<std::size_t>(ax)], 1e-8);
    }
  }
}

TEST(Xyz, SiliconSupercellRoundTrip) {
  const grid::Structure original = grid::make_silicon_supercell(1);
  std::stringstream stream;
  write_xyz(stream, original);
  XyzReadOptions opts;
  opts.cell = original.cell;
  const grid::Structure parsed = read_xyz(stream, opts);
  EXPECT_EQ(parsed.num_atoms(), 8);
  EXPECT_DOUBLE_EQ(parsed.species[0].r_loc, grid::species_silicon().r_loc);
}

TEST(Xyz, RejectsMalformedInput) {
  XyzReadOptions opts;
  opts.cell = grid::UnitCell::cubic(10.0);
  {
    std::stringstream s("not_a_number\ncomment\n");
    EXPECT_THROW(read_xyz(s, opts), Error);
  }
  {
    std::stringstream s("2\ncomment\nH 0 0 0\n");  // truncated
    EXPECT_THROW(read_xyz(s, opts), Error);
  }
  {
    std::stringstream s("1\ncomment\nXx 0 0 0\n");  // unknown element
    EXPECT_THROW(read_xyz(s, opts), Error);
  }
}

TEST(Xyz, WrapsAtomsIntoCell) {
  XyzReadOptions opts;
  opts.cell = grid::UnitCell::cubic(10.0);
  std::stringstream s("1\ncomment\nH -1.0 0 0\n");
  const grid::Structure parsed = read_xyz(s, opts);
  EXPECT_GE(parsed.atoms[0].position[0], 0.0);
  EXPECT_LT(parsed.atoms[0].position[0], 10.0);
}

TEST(Cube, HeaderAndDataLayout) {
  const grid::Structure water = grid::make_water_box(12.0);
  const grid::RealSpaceGrid g(water.cell, {4, 3, 5});
  std::vector<Real> values(static_cast<std::size_t>(g.size()));
  for (Index i = 0; i < g.size(); ++i) {
    values[static_cast<std::size_t>(i)] = static_cast<Real>(i);
  }

  std::stringstream stream;
  write_cube(stream, "test volume", g, water, values);
  std::string line;
  std::getline(stream, line);
  EXPECT_EQ(line, "test volume");
  std::getline(stream, line);  // generator comment
  std::getline(stream, line);  // natoms + origin
  {
    std::istringstream fields(line);
    int natoms;
    fields >> natoms;
    EXPECT_EQ(natoms, 3);
  }
  // Three axis lines with correct point counts.
  int counts[3];
  for (int ax = 0; ax < 3; ++ax) {
    std::getline(stream, line);
    std::istringstream fields(line);
    fields >> counts[ax];
  }
  EXPECT_EQ(counts[0], 4);
  EXPECT_EQ(counts[1], 3);
  EXPECT_EQ(counts[2], 5);
  // Atom lines: first is oxygen (charge 6).
  std::getline(stream, line);
  {
    std::istringstream fields(line);
    int z;
    fields >> z;
    EXPECT_EQ(z, 6);
  }
  std::getline(stream, line);
  std::getline(stream, line);
  // All 60 values present in the remaining stream.
  std::vector<double> data;
  double v;
  while (stream >> v) data.push_back(v);
  ASSERT_EQ(data.size(), 60u);
  EXPECT_DOUBLE_EQ(data[0], 0.0);
  EXPECT_DOUBLE_EQ(data[59], 59.0);
}

TEST(Cube, SizeMismatchThrows) {
  const grid::Structure water = grid::make_water_box(12.0);
  const grid::RealSpaceGrid g(water.cell, {4, 4, 4});
  std::vector<Real> wrong(10);
  std::stringstream stream;
  EXPECT_THROW(write_cube(stream, "x", g, water, wrong), Error);
}

}  // namespace
}  // namespace lrt::io
