// Layout math: block partitions, numroc, global<->local index maps.
#include <gtest/gtest.h>

#include <set>

#include "par/layout.hpp"

namespace lrt::par {
namespace {

TEST(BlockPartition, CountsSumToTotal) {
  for (const Index n : {0, 1, 7, 10, 100}) {
    for (const int p : {1, 2, 3, 4, 7}) {
      const BlockPartition part(n, p);
      Index total = 0;
      for (int r = 0; r < p; ++r) total += part.count(r);
      EXPECT_EQ(total, n) << "n=" << n << " p=" << p;
    }
  }
}

TEST(BlockPartition, OffsetsAreCumulative) {
  const BlockPartition part(11, 3);  // blocks of 4, 4, 3
  EXPECT_EQ(part.count(0), 4);
  EXPECT_EQ(part.count(2), 3);
  EXPECT_EQ(part.offset(0), 0);
  EXPECT_EQ(part.offset(1), 4);
  EXPECT_EQ(part.offset(2), 8);
}

TEST(BlockPartition, OwnerInvertsOffsets) {
  const BlockPartition part(23, 5);
  for (Index i = 0; i < 23; ++i) {
    const int r = part.owner(i);
    EXPECT_GE(i, part.offset(r));
    EXPECT_LT(i, part.offset(r) + part.count(r));
  }
}

TEST(Numroc, MatchesScalapackSemantics) {
  // n=10, nb=2 over 3 procs: blocks 0..4 go to procs 0,1,2,0,1.
  EXPECT_EQ(numroc(10, 2, 0, 3), 4);  // blocks 0 and 3
  EXPECT_EQ(numroc(10, 2, 1, 3), 4);  // blocks 1 and 4
  EXPECT_EQ(numroc(10, 2, 2, 3), 2);  // block 2
  // Ragged tail: n=11 gives proc 0 an extra element (block 5 partial).
  EXPECT_EQ(numroc(11, 2, 0, 3), 4);
  EXPECT_EQ(numroc(11, 2, 1, 3), 4);
  EXPECT_EQ(numroc(11, 2, 2, 3), 3);
}

class LayoutRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(LayoutRoundTrip, LocateAndGlobalAreInverse) {
  const int scheme_id = GetParam();
  const Index m = 13, n = 9;
  Layout layout = Layout::block_row(m, n, 4);
  if (scheme_id == 1) layout = Layout::block_col(m, n, 4);
  if (scheme_id == 2) layout = Layout::block_cyclic_2d(m, n, 2, 2, 3, 2);

  // Every global element maps to exactly one (rank, li, lj), and the
  // inverse maps recover the global indices.
  std::set<std::tuple<int, Index, Index>> seen;
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < n; ++j) {
      const Layout::Location loc = layout.locate(i, j);
      EXPECT_GE(loc.rank, 0);
      EXPECT_LT(loc.rank, layout.nranks());
      EXPECT_LT(loc.local_row, layout.local_rows(loc.rank));
      EXPECT_LT(loc.local_col, layout.local_cols(loc.rank));
      EXPECT_EQ(layout.global_row(loc.rank, loc.local_row), i);
      EXPECT_EQ(layout.global_col(loc.rank, loc.local_col), j);
      seen.insert({loc.rank, loc.local_row, loc.local_col});
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(m * n));

  // Local sizes account for every element.
  Index total = 0;
  for (int r = 0; r < layout.nranks(); ++r) {
    total += layout.local_rows(r) * layout.local_cols(r);
  }
  EXPECT_EQ(total, m * n);
}

INSTANTIATE_TEST_SUITE_P(Schemes, LayoutRoundTrip, ::testing::Values(0, 1, 2));

TEST(Layout, BlockCyclicMatchesHandComputedMap) {
  // 2x2 grid, 2x2 blocks, 6x6 matrix: row blocks 0,1,2 -> prow 0,1,0.
  const Layout l = Layout::block_cyclic_2d(6, 6, 2, 2, 2, 2);
  EXPECT_EQ(l.locate(0, 0).rank, 0);
  EXPECT_EQ(l.locate(2, 0).rank, 2);  // row block 1 -> prow 1 -> rank 1*2+0
  EXPECT_EQ(l.locate(0, 2).rank, 1);  // col block 1 -> pcol 1
  EXPECT_EQ(l.locate(2, 2).rank, 3);
  EXPECT_EQ(l.locate(4, 4).rank, 0);  // blocks wrap around
  EXPECT_EQ(l.locate(4, 4).local_row, 2);
  EXPECT_EQ(l.locate(4, 4).local_col, 2);
}

}  // namespace
}  // namespace lrt::par
