// Distributed LOBPCG and the distributed implicit Casida operator.
#include <gtest/gtest.h>

#include <cmath>

#include "dft/synthetic.hpp"
#include "la/blas.hpp"
#include "la/eig.hpp"
#include "par/dist_lobpcg.hpp"
#include "par/layout.hpp"
#include "tddft/casida_isdf.hpp"
#include "tddft/dist_implicit.hpp"
#include "tddft/driver.hpp"

namespace lrt {
namespace {

class DistLobpcgSweep : public ::testing::TestWithParam<int> {};

TEST_P(DistLobpcgSweep, MatchesSerialEigenvaluesOnDenseOperator) {
  const int p = GetParam();
  const Index n = 60, k = 3;
  Rng rng(3);
  la::RealMatrix a = la::RealMatrix::random_normal(n, n, rng);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < i; ++j) a(j, i) = a(i, j);
  }
  const la::EigResult dense = la::syev(a.view());
  const la::RealMatrix x0_full = la::RealMatrix::random_normal(n, k, rng);

  par::run(p, [&](par::Comm& comm) {
    const par::BlockPartition part(n, comm.size());
    const Index off = part.offset(comm.rank());
    const Index cnt = part.count(comm.rank());

    // Dense distributed operator: y_local = (A x)_local needs the full x;
    // allgather the slabs (test-only operator).
    par::DistBlockOperator apply = [&](la::RealConstView x_loc,
                                       la::RealView y_loc) {
      la::RealMatrix x_full(n, x_loc.cols());
      std::vector<Index> counts(static_cast<std::size_t>(comm.size()));
      std::vector<Index> displs(static_cast<std::size_t>(comm.size()));
      for (int r = 0; r < comm.size(); ++r) {
        counts[static_cast<std::size_t>(r)] = part.count(r) * x_loc.cols();
        displs[static_cast<std::size_t>(r)] = part.offset(r) * x_loc.cols();
      }
      const la::RealMatrix x_copy = la::to_matrix(x_loc);
      comm.allgatherv(x_copy.data(), x_copy.size(), x_full.data(), counts,
                      displs);
      const la::RealMatrix y_full =
          la::gemm(la::Trans::kNo, la::Trans::kNo, a.view(), x_full.view());
      la::copy<Real>(y_full.view().rows_block(off, cnt), y_loc);
    };

    la::LobpcgOptions opts;
    opts.tolerance = 1e-9;
    opts.max_iterations = 400;
    const la::LobpcgResult r = par::dist_lobpcg(
        comm, apply, nullptr,
        la::to_matrix<Real>(x0_full.view().rows_block(off, cnt)), opts);

    EXPECT_TRUE(r.converged) << "p=" << comm.size();
    for (Index j = 0; j < k; ++j) {
      EXPECT_NEAR(r.eigenvalues[static_cast<std::size_t>(j)],
                  dense.values[static_cast<std::size_t>(j)], 1e-6);
    }
    EXPECT_EQ(r.eigenvectors.rows(), cnt);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistLobpcgSweep,
                         ::testing::Values(1, 2, 3, 4));

struct CasidaPieces {
  tddft::CasidaProblem problem;
  la::RealMatrix m;
  isdf::IsdfResult dec;
  std::vector<Real> d;
};

CasidaPieces make_pieces() {
  const grid::RealSpaceGrid g(grid::UnitCell::cubic(7.0), {8, 8, 8});
  dft::SyntheticOptions sopts;
  sopts.num_centers = 8;
  sopts.seed = 17;
  CasidaPieces pieces{
      tddft::make_problem_from_synthetic(
          g, dft::make_synthetic_orbitals(g, 6, 4, sopts)),
      {}, {}, {}};
  const grid::GVectors gv(pieces.problem.grid);
  const tddft::HxcKernel kernel(pieces.problem.grid, gv,
                                pieces.problem.ground_density, true);
  isdf::IsdfOptions opts;
  opts.nmu = 20;
  pieces.dec = isdf_decompose(pieces.problem.grid,
                              pieces.problem.psi_v.view(),
                              pieces.problem.psi_c.view(), opts);
  pieces.m = tddft::build_kernel_projection(pieces.dec, kernel);
  pieces.d = tddft::energy_differences(pieces.problem);
  return pieces;
}

class DistImplicitSweep : public ::testing::TestWithParam<int> {};

TEST_P(DistImplicitSweep, ApplyMatchesSerialImplicit) {
  const int p = GetParam();
  const CasidaPieces pieces = make_pieces();
  const tddft::ImplicitHamiltonian serial = tddft::make_implicit_hamiltonian(
      pieces.d, pieces.dec, la::to_matrix<Real>(pieces.m.view()));
  Rng rng(5);
  const la::RealMatrix x =
      la::RealMatrix::random_normal(pieces.problem.ncv(), 2, rng);
  la::RealMatrix y_serial(pieces.problem.ncv(), 2);
  serial.apply(x.view(), y_serial.view());

  par::run(p, [&](par::Comm& comm) {
    const tddft::DistImplicitHamiltonian h(
        comm, pieces.d, la::to_matrix<Real>(pieces.m.view()),
        pieces.dec.psi_v_mu.view(), pieces.dec.psi_c_mu.view());
    const Index row0 = h.valence_offset() * h.nc();
    const Index nl = h.local_dimension();
    la::RealMatrix y_local(nl, 2);
    h.apply(x.view().rows_block(row0, nl), y_local.view());
    EXPECT_LT(la::max_abs_diff(y_local.view(),
                               y_serial.view().rows_block(row0, nl)),
              1e-10);
  });
}

TEST_P(DistImplicitSweep, DistributedSolveMatchesSerialEnergies) {
  const int p = GetParam();
  const CasidaPieces pieces = make_pieces();
  const tddft::ImplicitHamiltonian serial = tddft::make_implicit_hamiltonian(
      pieces.d, pieces.dec, la::to_matrix<Real>(pieces.m.view()));
  tddft::TddftEigenOptions eopts;
  eopts.num_states = 3;
  eopts.tolerance = 1e-9;
  const la::LobpcgResult reference =
      tddft::solve_casida_lobpcg(serial, eopts);

  par::run(p, [&](par::Comm& comm) {
    const tddft::DistImplicitHamiltonian h(
        comm, pieces.d, la::to_matrix<Real>(pieces.m.view()),
        pieces.dec.psi_v_mu.view(), pieces.dec.psi_c_mu.view());
    const tddft::DistCasidaSolution sol =
        solve_casida_lobpcg_distributed(comm, h, eopts);
    EXPECT_TRUE(sol.converged);
    for (Index j = 0; j < 3; ++j) {
      EXPECT_NEAR(sol.energies[static_cast<std::size_t>(j)],
                  reference.eigenvalues[static_cast<std::size_t>(j)], 1e-7)
          << "p=" << comm.size();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistImplicitSweep,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace lrt
