// Real-time TDDFT propagation tests: unitarity, frozen-Hamiltonian
// oscillation at exact Kohn-Sham gaps, linear-response regime, and the
// RT-vs-LR cross-validation on a noninteracting reference.
#include <gtest/gtest.h>

#include <cmath>

#include "dft/lobpcg_gs.hpp"
#include "tddft/rt_propagation.hpp"

namespace lrt::tddft {
namespace {

/// Small closed single-particle test system: a cosine well on a cubic
/// grid, diagonalized for reference energies/orbitals.
struct ToySystem {
  grid::RealSpaceGrid grid{grid::UnitCell::cubic(8.0), {8, 8, 8}};
  grid::GVectors gvectors{grid};
  std::vector<Real> potential;
  la::RealMatrix orbitals;       // dv-normalized columns
  std::vector<Real> energies;
  grid::Structure empty_structure;  // no atoms: no nonlocal projectors

  explicit ToySystem(Index nbands = 4) {
    potential.resize(static_cast<std::size_t>(grid.size()));
    for (Index i = 0; i < grid.size(); ++i) {
      const grid::Vec3 r = grid.position(i);
      // Phase offsets break inversion symmetry so low excitations carry
      // nonzero dipole matrix elements.
      potential[static_cast<std::size_t>(i)] =
          -1.5 * std::cos(constants::kTwoPi * r[0] / 8.0 + 0.9) -
          0.6 * std::cos(2 * constants::kTwoPi * r[0] / 8.0) -
          0.7 * std::cos(constants::kTwoPi * r[1] / 8.0 + 0.4);
    }
    dft::KsHamiltonian h(grid, gvectors);
    h.set_potential(potential);
    dft::BandSolveOptions opts;
    opts.tolerance = 1e-10;
    opts.max_iterations = 400;
    la::LobpcgResult bands = dft::solve_bands(h, nbands, {}, opts);
    energies = bands.eigenvalues;
    orbitals = std::move(bands.eigenvectors);
    const Real scale = 1.0 / std::sqrt(grid.dv());
    for (Index i = 0; i < grid.size(); ++i) {
      for (Index j = 0; j < nbands; ++j) orbitals(i, j) *= scale;
    }
    empty_structure.cell = grid.cell();
  }
};

TEST(RtPropagation, NormConservedByTaylorPropagator) {
  ToySystem sys;
  RtOptions opts;
  opts.dt = 0.02;
  opts.steps = 100;
  opts.kick = 1e-3;
  opts.self_consistent = false;
  opts.include_hxc = false;
  const RtResult r = propagate(sys.grid, sys.gvectors, sys.empty_structure,
                               sys.orbitals.view().cols_block(0, 1), {2.0},
                               sys.potential, opts);
  ASSERT_EQ(r.norm_drift.size(), 101u);
  for (const Real drift : r.norm_drift) {
    EXPECT_LT(drift, 1e-8);
  }
}

TEST(RtPropagation, StationaryStateHasNoDipoleDynamics) {
  // Without a kick, an eigenstate only picks up a global phase: the
  // induced dipole stays ~0.
  ToySystem sys;
  RtOptions opts;
  opts.dt = 0.05;
  opts.steps = 60;
  opts.kick = 0.0;
  opts.self_consistent = false;
  opts.include_hxc = false;
  const RtResult r = propagate(sys.grid, sys.gvectors, sys.empty_structure,
                               sys.orbitals.view().cols_block(0, 1), {2.0},
                               sys.potential, opts);
  // Residual band-solver error causes a slow linear drift; bound it well
  // below the physical dipole scale.
  for (const Real d : r.dipole) {
    EXPECT_NEAR(d, 0.0, 1e-5);
  }
}

TEST(RtPropagation, SuperpositionOscillatesAtExactGap) {
  // A frozen-H two-state superposition has dipole d(t) ∝ cos((E1-E0) t):
  // the spectrum must peak at the exact eigenvalue difference. The x-
  // excited partner sits several states up (the low excitations are y/z
  // modes with no x dipole), so solve a wider band window.
  ToySystem sys(8);
  const Index nr = sys.grid.size();

  // Pick the excited state with the largest x-dipole coupling to the
  // ground state (a symmetry-forbidden partner would give no signal).
  Index partner = 1;
  Real best_coupling = 0;
  for (Index j = 1; j < sys.orbitals.cols(); ++j) {
    Real dx = 0;
    for (Index i = 0; i < nr; ++i) {
      const Real x = sys.grid.position(i)[0] - 4.0;
      dx += sys.orbitals(i, 0) * x * sys.orbitals(i, j);
    }
    dx = std::abs(dx) * sys.grid.dv();
    if (dx > best_coupling) {
      best_coupling = dx;
      partner = j;
    }
  }
  ASSERT_GT(best_coupling, 1e-6) << "no dipole-coupled state in the basis";

  la::RealMatrix mixed(nr, 1);
  for (Index i = 0; i < nr; ++i) {
    mixed(i, 0) = std::sqrt(0.9) * sys.orbitals(i, 0) +
                  std::sqrt(0.1) * sys.orbitals(i, partner);
  }
  RtOptions opts;
  opts.dt = 0.05;
  opts.steps = 1200;
  opts.kick = 0.0;
  opts.self_consistent = false;
  opts.include_hxc = false;
  const RtResult r = propagate(sys.grid, sys.gvectors, sys.empty_structure,
                               mixed.view(), {1.0}, sys.potential, opts);

  const Real gap = sys.energies[static_cast<std::size_t>(partner)] -
                   sys.energies[0];
  const std::vector<Real> omegas = [&] {
    std::vector<Real> w;
    for (Real x = 0.05; x < 3.0 * gap; x += 0.005) w.push_back(x);
    return w;
  }();
  const std::vector<Real> spec =
      dipole_spectrum(r.time, r.dipole, omegas, 0.02);
  const auto it = std::max_element(spec.begin(), spec.end());
  const Real peak = omegas[static_cast<std::size_t>(it - spec.begin())];
  EXPECT_NEAR(peak, gap, 0.02) << "exact gap " << gap;
}

TEST(RtPropagation, DipoleResponseIsLinearInKick) {
  ToySystem sys;
  RtOptions opts;
  opts.dt = 0.05;
  opts.steps = 80;
  opts.self_consistent = false;
  opts.include_hxc = false;

  opts.kick = 1e-3;
  const RtResult small = propagate(
      sys.grid, sys.gvectors, sys.empty_structure,
      sys.orbitals.view().cols_block(0, 1), {2.0}, sys.potential, opts);
  opts.kick = 2e-3;
  const RtResult big = propagate(
      sys.grid, sys.gvectors, sys.empty_structure,
      sys.orbitals.view().cols_block(0, 1), {2.0}, sys.potential, opts);

  // d(t; 2κ) ≈ 2 d(t; κ) in the linear regime.
  Real max_rel = 0, scale = 0;
  for (std::size_t t = 5; t < small.dipole.size(); ++t) {
    scale = std::max(scale, std::abs(small.dipole[t]));
  }
  ASSERT_GT(scale, 0);
  for (std::size_t t = 5; t < small.dipole.size(); ++t) {
    max_rel = std::max(max_rel,
                       std::abs(big.dipole[t] - 2 * small.dipole[t]) / scale);
  }
  EXPECT_LT(max_rel, 0.02);
}

TEST(RtPropagation, SelfConsistentPathRunsAndConservesNorm) {
  ToySystem sys(2);
  RtOptions opts;
  opts.dt = 0.02;
  opts.steps = 40;
  opts.kick = 1e-3;
  opts.self_consistent = true;
  const RtResult r = propagate(sys.grid, sys.gvectors, sys.empty_structure,
                               sys.orbitals.view().cols_block(0, 1), {2.0},
                               sys.potential, opts);
  for (const Real drift : r.norm_drift) {
    EXPECT_LT(drift, 1e-6);
  }
}

TEST(DipoleSpectrum, ResolvesTwoFrequencies) {
  std::vector<Real> time, signal;
  for (int i = 0; i <= 4000; ++i) {
    const Real t = 0.05 * i;
    time.push_back(t);
    signal.push_back(std::cos(0.5 * t) + 0.4 * std::cos(1.3 * t));
  }
  std::vector<Real> omegas;
  for (Real w = 0.1; w < 2.0; w += 0.002) omegas.push_back(w);
  const std::vector<Real> spec = dipole_spectrum(time, signal, omegas, 0.02);
  // Local maxima near 0.5 and 1.3.
  Real best1 = 0, best2 = 0, peak1 = 0, peak2 = 0;
  for (std::size_t i = 0; i < omegas.size(); ++i) {
    if (std::abs(omegas[i] - 0.5) < 0.15 && spec[i] > best1) {
      best1 = spec[i];
      peak1 = omegas[i];
    }
    if (std::abs(omegas[i] - 1.3) < 0.15 && spec[i] > best2) {
      best2 = spec[i];
      peak2 = omegas[i];
    }
  }
  EXPECT_NEAR(peak1, 0.5, 0.02);
  EXPECT_NEAR(peak2, 1.3, 0.02);
}

TEST(RtPropagation, InputValidation) {
  ToySystem sys;
  RtOptions opts;
  opts.dt = -1;
  EXPECT_THROW(propagate(sys.grid, sys.gvectors, sys.empty_structure,
                         sys.orbitals.view().cols_block(0, 1), {2.0},
                         sys.potential, opts),
               Error);
}

}  // namespace
}  // namespace lrt::tddft
