// Tests for the lrt-analyze static analyzer (src/analyze/).
//
// The seeded-violation corpus lives in tests/analyze_fixtures/repo — a
// miniature repository tree the analyzer runs over exactly as it runs
// over the real one. LRT_ANALYZE_FIXTURES and LRT_REPO_ROOT are injected
// by tests/CMakeLists.txt.
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyze/analyzer.hpp"
#include "analyze/callgraph.hpp"
#include "analyze/lexer.hpp"
#include "analyze/passes.hpp"
#include "analyze/registry_gen.hpp"
#include "analyze/sarif.hpp"
#include "common/error.hpp"
#include "obs/counter_registry.hpp"
#include "obs/phase_registry.hpp"

namespace {

using lrt::analyze::Config;
using lrt::analyze::Finding;
using lrt::analyze::Report;
using lrt::analyze::TokKind;

const std::string kFixtureRepo = std::string(LRT_ANALYZE_FIXTURES) + "/repo";
const std::string kRepoRoot = LRT_REPO_ROOT;

/// Fixture-repo config running only `passes` (all when empty).
Config fixture_config(std::set<std::string> passes) {
  Config config;
  config.root = kFixtureRepo;
  config.passes = std::move(passes);
  config.phase_registry = lrt::analyze::parse_phases_def(
      lrt::analyze::read_file(kRepoRoot + "/src/obs/phases.def"));
  // The counter fixture registers one synthetic name; the hot-TU set
  // comes from the fixture's own CMakeLists (promotes la/hot.cpp).
  config.counter_registry = {"fixture.good"};
  lrt::analyze::load_hot_tus(
      lrt::analyze::read_file(kFixtureRepo + "/src/CMakeLists.txt"), &config);
  return config;
}

Report run_fixture(const Config& config) {
  return lrt::analyze::analyze(config,
                               lrt::analyze::discover_sources(config.root));
}

std::vector<Finding> findings_for(const Report& report,
                                  const std::string& pass) {
  std::vector<Finding> out;
  for (const Finding& f : report.findings) {
    if (f.pass == pass) out.push_back(f);
  }
  return out;
}

int count_status(const std::vector<Finding>& findings,
                 Finding::Status status) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.status == status; }));
}

// ----- lexer ------------------------------------------------------------------

TEST(AnalyzeLexer, CommentsAndStringsNeverYieldIdentifiers) {
  const std::string text =
      "// new in a line comment\n"
      "/* delete in a block\n"
      "   comment spanning lines */\n"
      "const char* s = \"volatile new delete\";\n"
      "const char* r = R\"(std::thread sleep_for)\";\n"
      "char c = 'v';\n"
      "int actual_identifier = 0;\n";
  const lrt::analyze::LexedFile file = lrt::analyze::lex("x.cpp", text);
  for (const auto& tok : file.tokens) {
    if (tok.kind != TokKind::kIdentifier) continue;
    EXPECT_NE(tok.text, "new");
    EXPECT_NE(tok.text, "delete");
    EXPECT_NE(tok.text, "volatile");
    EXPECT_NE(tok.text, "thread");
    EXPECT_NE(tok.text, "sleep_for");
  }
  const auto found =
      std::find_if(file.tokens.begin(), file.tokens.end(), [](const auto& t) {
        return t.kind == TokKind::kIdentifier &&
               t.text == "actual_identifier";
      });
  ASSERT_NE(found, file.tokens.end());
  EXPECT_EQ(found->line, 7);
}

TEST(AnalyzeLexer, IncludePathsAreDistinctFromStrings) {
  const std::string text =
      "#include \"la/matrix.hpp\"\n"
      "#include <vector>\n"
      "const char* fake = \"la/matrix.hpp\";\n";
  const lrt::analyze::LexedFile file = lrt::analyze::lex("x.cpp", text);
  int quoted = 0;
  int angled = 0;
  int strings = 0;
  for (const auto& tok : file.tokens) {
    if (tok.kind == TokKind::kIncludePath) {
      ++quoted;
      EXPECT_EQ(tok.text, "la/matrix.hpp");
    }
    if (tok.kind == TokKind::kSysInclude) ++angled;
    if (tok.kind == TokKind::kString) ++strings;
  }
  EXPECT_EQ(quoted, 1);
  EXPECT_EQ(angled, 1);
  EXPECT_EQ(strings, 1);
}

TEST(AnalyzeLexer, SuppressionDirectiveCoversOwnAndNextLine) {
  const std::string text =
      "// lrt-analyze: allow(banned-volatile, banned-sleep)\n"
      "int covered;\n"
      "int uncovered;\n"
      "int same = 1;  // lrt-analyze: allow(all)\n";
  const lrt::analyze::LexedFile file = lrt::analyze::lex("x.cpp", text);
  EXPECT_TRUE(file.suppressed("banned-volatile", 1));
  EXPECT_TRUE(file.suppressed("banned-volatile", 2));
  EXPECT_TRUE(file.suppressed("banned-sleep", 2));
  EXPECT_FALSE(file.suppressed("banned-thread", 2));
  EXPECT_FALSE(file.suppressed("banned-volatile", 3));
  EXPECT_TRUE(file.suppressed("banned-volatile", 4));  // allow(all)
  EXPECT_TRUE(file.suppressed("layer-dag", 4));
}

TEST(AnalyzeLexer, DigitSeparatorsLexAsOneNumber) {
  const lrt::analyze::LexedFile file =
      lrt::analyze::lex("x.cpp", "const long n = 1'000'000 + 0x1'FF;\n");
  int numbers = 0;
  for (const auto& tok : file.tokens) {
    if (tok.kind == TokKind::kNumber) ++numbers;
  }
  EXPECT_EQ(numbers, 2);
}

TEST(AnalyzeLexer, RawStringInsideMacroArgStaysOpaque) {
  const lrt::analyze::LexedFile file = lrt::analyze::lex(
      "x.cpp", "CHECK_MSG(R\"(volatile \"quoted\" new)\", value);\n");
  for (const auto& tok : file.tokens) {
    if (tok.kind != TokKind::kIdentifier) continue;
    EXPECT_NE(tok.text, "volatile");
    EXPECT_NE(tok.text, "new");
    EXPECT_NE(tok.text, "quoted");
  }
}

TEST(AnalyzeLexer, EncodingPrefixedStringsStayOpaque) {
  const lrt::analyze::LexedFile file = lrt::analyze::lex(
      "x.cpp",
      "const char* a = u8\"volatile new\";\n"
      "const wchar_t* b = L\"delete thread\";\n"
      "const char32_t* c = U\"sleep_for here\";\n"
      "const char16_t* d = u\"mutex\";\n"
      "const char* e = u8R\"(raw volatile)\";\n"
      "wchar_t wc = L'v';\n"
      "char32_t uc = U'w';\n");
  int strings = 0;
  for (const auto& tok : file.tokens) {
    if (tok.kind == TokKind::kString) ++strings;
    if (tok.kind != TokKind::kIdentifier) continue;
    // The literal contents must stay opaque — and so must the prefixes
    // themselves (no stray 'u8'/'L'/'U' identifier tokens).
    EXPECT_NE(tok.text, "volatile");
    EXPECT_NE(tok.text, "new");
    EXPECT_NE(tok.text, "delete");
    EXPECT_NE(tok.text, "thread");
    EXPECT_NE(tok.text, "sleep_for");
    EXPECT_NE(tok.text, "mutex");
    EXPECT_NE(tok.text, "u8");
    EXPECT_NE(tok.text, "L");
    EXPECT_NE(tok.text, "U");
  }
  EXPECT_EQ(strings, 5);
}

TEST(AnalyzeLexer, MemberPointerPunctuatorsAreSingleTokens) {
  const lrt::analyze::LexedFile file =
      lrt::analyze::lex("x.cpp", "(a->*pm)(); (b.*qm)(); c = a->b.x;\n");
  std::vector<std::string> puncts;
  for (const auto& tok : file.tokens) {
    if (tok.kind == TokKind::kPunct) puncts.push_back(tok.text);
  }
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "->*"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), ".*"), puncts.end());
  // Plain member access still lexes as its own punctuators.
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "->"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "."), puncts.end());
}

TEST(AnalyzeLexer, IncrementDecrementAreSingleTokens) {
  const lrt::analyze::LexedFile file =
      lrt::analyze::lex("x.cpp", "i++; --j; a += b;\n");
  std::vector<std::string> puncts;
  for (const auto& tok : file.tokens) {
    if (tok.kind == TokKind::kPunct) puncts.push_back(tok.text);
  }
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "++"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "--"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "+="), puncts.end());
}

TEST(AnalyzeLexer, SplicedPragmaIsOneDirectiveExtent) {
  const std::string text =
      "#pragma omp parallel for schedule(static) \\\n"
      "    reduction(+ : acc) \\\n"
      "    firstprivate(n)\n"
      "for (int i = 0; i < n; ++i) acc += 1;\n";
  const lrt::analyze::LexedFile file = lrt::analyze::lex("x.cpp", text);
  ASSERT_EQ(file.directives.size(), 1u);
  const auto& d = file.directives[0];
  // The extent spans every spliced clause: 'reduction' and
  // 'firstprivate' from the continuation lines are inside it, and it
  // closes before the loop statement on the first unspliced line.
  bool saw_reduction = false;
  bool saw_firstprivate = false;
  for (std::size_t i = d.begin; i < d.end; ++i) {
    if (file.tokens[i].kind != TokKind::kIdentifier) continue;
    if (file.tokens[i].text == "reduction") saw_reduction = true;
    if (file.tokens[i].text == "firstprivate") saw_firstprivate = true;
  }
  EXPECT_TRUE(saw_reduction);
  EXPECT_TRUE(saw_firstprivate);
  ASSERT_LT(d.end, file.tokens.size());
  EXPECT_EQ(file.tokens[d.end].text, "for");  // the associated loop
}

// ----- call graph -------------------------------------------------------------

/// Index of the `n`th occurrence (0-based) of identifier `name`.
std::size_t nth_ident(const lrt::analyze::LexedFile& file,
                      const std::string& name, int n) {
  for (std::size_t i = 0; i < file.tokens.size(); ++i) {
    if (file.tokens[i].kind == TokKind::kIdentifier &&
        file.tokens[i].text == name && n-- == 0) {
      return i;
    }
  }
  return lrt::analyze::kNoFunction;
}

const lrt::analyze::FunctionInfo* find_fn(const lrt::analyze::CallGraph& g,
                                          const std::string& name) {
  for (const auto& fn : g.functions()) {
    if (fn.name == name) return &fn;
  }
  return nullptr;
}

TEST(AnalyzeCallGraph, DiscoversDefinitionsParamsAndDirectFacts) {
  const lrt::analyze::LexedFile file = lrt::analyze::lex(
      "a.cpp",
      "#define SQ(x) ((x) * (x))\n"
      "void sink(double& acc, const double& ro, int n, double* out) {\n"
      "  acc += 1.0;\n"
      "  out[0] = SQ(ro);\n"
      "}\n"
      "void noisy() { printf(\"x\"); }\n"
      "int declared_only(int a);\n");
  const lrt::analyze::CallGraph g = lrt::analyze::CallGraph::build({file}, 1);
  ASSERT_EQ(g.functions().size(), 2u);  // the declaration is not a def

  const auto* sink = find_fn(g, "sink");
  ASSERT_NE(sink, nullptr);
  ASSERT_EQ(sink->params.size(), 4u);
  EXPECT_EQ(sink->params[0].name, "acc");
  EXPECT_TRUE(sink->params[0].mutable_ref);
  EXPECT_FALSE(sink->params[1].mutable_ref);  // const ref
  EXPECT_FALSE(sink->params[2].mutable_ref);  // by value
  EXPECT_TRUE(sink->params[3].mutable_ref);   // non-const pointer
  EXPECT_EQ(sink->writes.count(0), 1u);       // acc += 1.0
  EXPECT_EQ(sink->writes.count(3), 1u);       // out[0] = (literal index)
  EXPECT_FALSE(sink->allocates.holds);

  const auto* noisy = find_fn(g, "noisy");
  ASSERT_NE(noisy, nullptr);
  EXPECT_TRUE(noisy->does_io.holds);
  EXPECT_EQ(noisy->does_io.what, "printf");
}

TEST(AnalyzeCallGraph, ResolvesByArityAndDegradesToUnknown) {
  const lrt::analyze::LexedFile a = lrt::analyze::lex(
      "a.cpp",
      "int helper(int x) { return x; }\n"
      "int helper(int x, int y) { return x + y; }\n"
      "int twin() { return 1; }\n"
      "void caller(int v) {\n"
      "  helper(v);\n"
      "  helper(v, v);\n"
      "  obj.helper(v);\n"
      "  std::max(v, v);\n"
      "  twin();\n"
      "}\n");
  const lrt::analyze::LexedFile b =
      lrt::analyze::lex("b.cpp", "int twin() { return 2; }\n");
  const lrt::analyze::CallGraph g = lrt::analyze::CallGraph::build({a, b}, 1);

  // helper(v) resolves to the unary overload, helper(v, v) to the binary.
  const std::size_t c1 = g.resolve_call(a.tokens, nth_ident(a, "helper", 2),
                                        0);
  ASSERT_NE(c1, lrt::analyze::kNoFunction);
  EXPECT_EQ(g.functions()[c1].params.size(), 1u);
  const std::size_t c2 = g.resolve_call(a.tokens, nth_ident(a, "helper", 3),
                                        0);
  ASSERT_NE(c2, lrt::analyze::kNoFunction);
  EXPECT_EQ(g.functions()[c2].params.size(), 2u);

  // Member access and std:: qualification degrade to unknown.
  EXPECT_EQ(g.resolve_call(a.tokens, nth_ident(a, "helper", 4), 0),
            lrt::analyze::kNoFunction);
  EXPECT_EQ(g.resolve_call(a.tokens, nth_ident(a, "max", 0), 0),
            lrt::analyze::kNoFunction);

  // Same name + arity in two TUs: the same-file definition wins for the
  // caller in a.cpp (internal-linkage convention).
  const std::size_t ct = g.resolve_call(a.tokens, nth_ident(a, "twin", 1),
                                        0);
  ASSERT_NE(ct, lrt::analyze::kNoFunction);
  EXPECT_EQ(g.functions()[ct].path, "a.cpp");
  // A declaration shape (`Type name(...)`) is not a call.
  const lrt::analyze::LexedFile c = lrt::analyze::lex(
      "c.cpp", "void f() { Widget twin(2); }\n"
               "int twin(int x) { return x; }\n");
  const lrt::analyze::CallGraph g2 =
      lrt::analyze::CallGraph::build({c}, 1);
  EXPECT_EQ(g2.resolve_call(c.tokens, nth_ident(c, "twin", 0), 0),
            lrt::analyze::kNoFunction);
}

TEST(AnalyzeCallGraph, PropagatesFactsAndWritesBottomUp) {
  const lrt::analyze::LexedFile file = lrt::analyze::lex(
      "a.cpp",
      "void leaf(double& x) { x += 1.0; new int; }\n"
      "void mid(double& y) { leaf(y); }\n"
      "void top(double& z) { mid(z); }\n"
      "void recurse(int n) { if (n > 0) recurse(n - 1); }\n");
  const lrt::analyze::CallGraph g = lrt::analyze::CallGraph::build({file}, 1);
  const auto* top = find_fn(g, "top");
  ASSERT_NE(top, nullptr);
  EXPECT_TRUE(top->allocates.holds);
  EXPECT_EQ(top->allocates.what, "new");
  ASSERT_EQ(top->writes.count(0), 1u);
  const std::size_t top_idx =
      static_cast<std::size_t>(top - g.functions().data());
  EXPECT_EQ(g.fact_chain(top_idx, &lrt::analyze::FunctionInfo::allocates),
            "top -> mid -> leaf");
  EXPECT_EQ(g.write_chain(top_idx, 0), "top -> mid -> leaf");
  // Self-recursion (a one-function SCC) terminates and stays fact-free.
  const auto* recurse = find_fn(g, "recurse");
  ASSERT_NE(recurse, nullptr);
  EXPECT_FALSE(recurse->allocates.holds);
}

// ----- registry generator -----------------------------------------------------

TEST(AnalyzeRegistry, ConstantNames) {
  EXPECT_EQ(lrt::analyze::phase_constant_name("pair_product"),
            "kPairProduct");
  EXPECT_EQ(lrt::analyze::phase_constant_name("fft.fft3d"), "kFftFft3d");
  EXPECT_EQ(lrt::analyze::phase_constant_name("mpi"), "kMpi");
}

TEST(AnalyzeRegistry, ParseRejectsBadNamesAndDuplicates) {
  EXPECT_THROW(lrt::analyze::parse_phases_def_entries("Bad_Upper\n"),
               lrt::Error);
  EXPECT_THROW(lrt::analyze::parse_phases_def_entries("fft\nfft\n"),
               lrt::Error);
  const auto defs = lrt::analyze::parse_phases_def_entries(
      "# comment\n"
      "fft  3-D transforms\n"
      "mpi\n");
  ASSERT_EQ(defs.size(), 2u);
  EXPECT_EQ(defs[0].name, "fft");
  EXPECT_EQ(defs[0].description, "3-D transforms");
  EXPECT_EQ(defs[1].description, "");
}

TEST(AnalyzeRegistry, CompiledHeaderMatchesPhasesDef) {
  // The committed header this test compiled against must agree with the
  // committed def file — the compile-time face of the sync pass.
  const auto defs = lrt::analyze::parse_phases_def_entries(
      lrt::analyze::read_file(kRepoRoot + "/src/obs/phases.def"));
  EXPECT_EQ(lrt::obs::phase::kCount, defs.size());
  for (const auto& def : defs) {
    EXPECT_TRUE(lrt::obs::phase::is_registered(def.name)) << def.name;
  }
  EXPECT_FALSE(lrt::obs::phase::is_registered("bogus_phase"));
  EXPECT_TRUE(lrt::obs::phase::is_registered(lrt::obs::phase::kFft));
}

TEST(AnalyzeRegistry, SyncPassCleanOnRepo) {
  Config config;
  config.root = kRepoRoot;
  config.passes = {"phase-registry-sync"};
  const Report report = lrt::analyze::analyze(config, {});
  EXPECT_EQ(report.findings.size(), 0u)
      << lrt::analyze::report_to_text(report, true);
}

// ----- layer-dag --------------------------------------------------------------

TEST(AnalyzeLayerDag, FindsOrderViolationsAndCycle) {
  const Report report = run_fixture(fixture_config({"layer-dag"}));
  const auto findings = findings_for(report, "layer-dag");
  ASSERT_EQ(findings.size(), 4u)
      << lrt::analyze::report_to_text(report, true);

  std::set<std::string> files;
  bool saw_cycle = false;
  for (const Finding& f : findings) {
    files.insert(f.file);
    EXPECT_EQ(f.status, Finding::Status::kNew);
    if (f.message.find("module cycle: common -> obs -> common") !=
        std::string::npos) {
      saw_cycle = true;
      EXPECT_EQ(f.file, "src/obs/cyc_b.hpp");  // closing edge's site
    }
  }
  EXPECT_TRUE(saw_cycle);
  EXPECT_EQ(files.count("src/la/bad_layer.hpp"), 1u);
  EXPECT_EQ(files.count("src/common/cyc_a.hpp"), 1u);
  EXPECT_EQ(files.count("src/ft/bad_edge.hpp"), 1u);  // ft -> tddft
}

TEST(AnalyzeLayerDag, BaselineEdgeGrandfathersViolationAndCycle) {
  Config config = fixture_config({"layer-dag"});
  config.baseline_layer_edges = {"common->obs"};
  const Report report = run_fixture(config);
  const auto findings = findings_for(report, "layer-dag");
  ASSERT_EQ(findings.size(), 4u);
  EXPECT_EQ(count_status(findings, Finding::Status::kBaselined), 2);
  EXPECT_EQ(count_status(findings, Finding::Status::kNew), 2);
  for (const Finding& f : findings) {
    if (f.status == Finding::Status::kNew) {
      // la->par and ft->tddft are not baselined.
      EXPECT_TRUE(f.file == "src/la/bad_layer.hpp" ||
                  f.file == "src/ft/bad_edge.hpp")
          << f.file;
    }
  }
}

// ----- collective-divergence --------------------------------------------------

TEST(AnalyzeDivergence, FlagsCollectivesUnderRankDependentFlow) {
  const Report report = run_fixture(fixture_config({"collective-divergence"}));
  const auto findings = findings_for(report, "collective-divergence");
  ASSERT_EQ(findings.size(), 5u)
      << lrt::analyze::report_to_text(report, true);
  std::set<std::string> collectives;
  for (const Finding& f : findings) {
    EXPECT_EQ(f.status, Finding::Status::kNew);
    if (f.file != "src/par/divergent.cpp") continue;
    const std::size_t open = f.message.find('\'');
    const std::size_t close = f.message.find('\'', open + 1);
    collectives.insert(f.message.substr(open + 1, close - open - 1));
  }
  // The if body, its else branch, and the braceless rank-dependent
  // statement; the unconditional barrier and size-based loop are clean.
  EXPECT_EQ(collectives,
            (std::set<std::string>{"allreduce", "bcast", "barrier"}));
  // The nonblocking i_alltoallv issued only on rank 0 is flagged too; the
  // unconditional double-buffered pipeline in the same file stays clean.
  int nonblocking = 0;
  for (const Finding& f : findings) {
    if (f.file != "src/par/nonblocking.cpp") continue;
    ++nonblocking;
    EXPECT_NE(f.message.find("'i_alltoallv'"), std::string::npos)
        << f.message;
  }
  EXPECT_EQ(nonblocking, 1);
}

TEST(AnalyzeDivergence, ReachabilityFlagsCollectiveThroughHelperChain) {
  const Report report = run_fixture(fixture_config({"collective-divergence"}));
  std::vector<Finding> reach;
  for (const Finding& f : findings_for(report, "collective-divergence")) {
    if (f.file == "src/par/reach_collective.cpp") reach.push_back(f);
  }
  // Only bad_reach's rank-guarded call; the unconditional finish() and
  // the rank-guarded collective-free note_rank() stay silent.
  ASSERT_EQ(reach.size(), 1u)
      << lrt::analyze::report_to_text(report, true);
  EXPECT_NE(reach[0].message.find("call to 'finish'"), std::string::npos)
      << reach[0].message;
  EXPECT_NE(reach[0].message.find("reaches collective 'barrier'"),
            std::string::npos);
  EXPECT_NE(reach[0].message.find("finish -> sync_all"), std::string::npos);
}

TEST(AnalyzeDivergence, WholeFileBaselineResolvesFindings) {
  Config config = fixture_config({"collective-divergence"});
  config.baseline_files = {"collective-divergence:src/par/divergent.cpp"};
  const Report report = run_fixture(config);
  // The reachability finding in reach_collective.cpp and the nonblocking
  // finding in nonblocking.cpp are not baselined.
  EXPECT_EQ(report.new_count, 2);
  EXPECT_EQ(report.baselined_count, 3);
  EXPECT_FALSE(report.clean());
}

// ----- phase-registry ---------------------------------------------------------

TEST(AnalyzePhaseRegistry, FlagsOnlyUnregisteredNames) {
  const Report report = run_fixture(fixture_config({"phase-registry"}));
  const auto findings = findings_for(report, "phase-registry");
  ASSERT_EQ(findings.size(), 1u)
      << lrt::analyze::report_to_text(report, true);
  EXPECT_EQ(findings[0].file, "src/fft/phase_names.cpp");
  EXPECT_NE(findings[0].message.find("fixture_unregistered"),
            std::string::npos);
}

TEST(AnalyzePhaseRegistry, EmptyRegistryIsAConfigFinding) {
  Config config = fixture_config({"phase-registry"});
  config.phase_registry.clear();
  const Report report = run_fixture(config);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].file, "src/obs/phases.def");
  EXPECT_NE(report.findings[0].message.find("empty or missing"),
            std::string::npos);
}

// ----- phase-registry shell scan (--gate) -------------------------------------

/// Minimal PassContext over an in-memory shell script: the scan has no
/// fixture directory because it reads script text directly.
std::vector<Finding> scan_shell(const std::string& script) {
  Config config;
  config.root = kFixtureRepo;
  config.phase_registry = {"gemm"};
  config.counter_registry = {"comm.allreduce.calls"};
  std::vector<lrt::analyze::LexedFile> files;
  std::vector<Finding> findings;
  lrt::analyze::PassContext ctx;
  ctx.config = &config;
  ctx.files = &files;
  ctx.findings = &findings;
  lrt::analyze::run_phase_registry_shell(ctx, "tools/x.sh", script);
  return findings;
}

TEST(AnalyzePhaseRegistry, ShellGateScanAcceptsRegisteredNames) {
  EXPECT_TRUE(scan_shell("lrt-report --gate comm.allreduce.calls:0 \\\n"
                         "  --gate gemm:5 --gate wall_seconds:10\n")
                  .empty());
}

TEST(AnalyzePhaseRegistry, ShellGateScanFlagsTypos) {
  const auto findings =
      scan_shell("lrt-report --gate comm.allreduec.calls:0\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("comm.allreduec.calls"),
            std::string::npos);
  EXPECT_EQ(findings[0].line, 1);
}

TEST(AnalyzePhaseRegistry, ShellGateScanFlagsMalformedSpecs) {
  const auto findings = scan_shell("lrt-report --gate wall_seconds\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("malformed"), std::string::npos);
}

TEST(AnalyzePhaseRegistry, ShellGateScanSkipsPrefixFlagsAndVariables) {
  // --gate-max-collective-calls shares the prefix but is a different
  // flag; $var gates are runtime-checked.
  EXPECT_TRUE(scan_shell("bench --gate-max-collective-calls 432\n"
                         "report --gate \"$dynamic_gate\"\n"
                         "# --gate commented.out:1\n")
                  .empty());
}

// ----- omp-race ---------------------------------------------------------------

TEST(AnalyzeOmpRace, FlagsExactlyTheSeededSharedWrites) {
  const Report report = run_fixture(fixture_config({"omp-race"}));
  std::vector<Finding> findings;
  for (const Finding& f : findings_for(report, "omp-race")) {
    if (f.file == "src/kmeans/race.cpp") findings.push_back(f);
  }
  ASSERT_EQ(findings.size(), 4u)
      << lrt::analyze::report_to_text(report, true);
  // Three seeded writes are new; the allow()'d one resolves.
  EXPECT_EQ(count_status(findings, Finding::Status::kNew), 3);
  EXPECT_EQ(count_status(findings, Finding::Status::kSuppressed), 1);
  std::set<std::string> bases;
  for (const Finding& f : findings) {
    if (f.status != Finding::Status::kNew) continue;
    const std::size_t open = f.message.find('\'');
    const std::size_t close = f.message.find('\'', open + 1);
    // message shape: "... ('op') to shared 'base' ..."
    const std::size_t open2 = f.message.find('\'', close + 1);
    const std::size_t close2 = f.message.find('\'', open2 + 1);
    bases.insert(f.message.substr(open2 + 1, close2 - open2 - 1));
  }
  EXPECT_EQ(bases, (std::set<std::string>{"total", "hits", "buffer"}));
}

TEST(AnalyzeOmpRace, CalleeWritesSurfaceThroughSummaries) {
  const Report report = run_fixture(fixture_config({"omp-race"}));
  std::vector<Finding> findings;
  for (const Finding& f : findings_for(report, "omp-race")) {
    if (f.file == "src/kmeans/callee_write.cpp") findings.push_back(f);
  }
  // accumulate(total, ...) and bump(hits) write through mutable-ref
  // parameters; the reduction, region-local, and read-only calls in the
  // clean twin stay silent.
  ASSERT_EQ(findings.size(), 2u)
      << lrt::analyze::report_to_text(report, true);
  std::string all;
  for (const Finding& f : findings) {
    EXPECT_EQ(f.status, Finding::Status::kNew);
    all += f.message + "\n";
  }
  EXPECT_NE(all.find("call to 'accumulate' writes shared 'total'"),
            std::string::npos)
      << all;
  EXPECT_NE(all.find("(accumulate -> add_into)"), std::string::npos) << all;
  EXPECT_NE(all.find("call to 'bump' writes shared 'hits'"),
            std::string::npos)
      << all;
}

TEST(AnalyzeOmpRace, SavedDataPointerAliasIsTracedToItsOrigin) {
  const Report report = run_fixture(fixture_config({"omp-race"}));
  std::vector<Finding> findings;
  for (const Finding& f : findings_for(report, "omp-race")) {
    if (f.file == "src/la/alias_store.cpp") findings.push_back(f);
  }
  // Only the dereferencing store through the saved out.data() pointer;
  // the loop-var-indexed store, the pointer reassignment, and the
  // region-local alias in the clean twin stay silent.
  ASSERT_EQ(findings.size(), 1u)
      << lrt::analyze::report_to_text(report, true);
  EXPECT_EQ(findings[0].status, Finding::Status::kNew);
  EXPECT_NE(findings[0].message.find("'p', an alias of shared 'out'"),
            std::string::npos)
      << findings[0].message;
}

// ----- hot-path-purity --------------------------------------------------------

TEST(AnalyzeHotPath, CmakeParsingPromotesOnlyO3Blocks) {
  Config config;
  lrt::analyze::load_hot_tus(
      lrt::analyze::read_file(kFixtureRepo + "/src/CMakeLists.txt"), &config);
  EXPECT_EQ(config.hot_files, (std::set<std::string>{"src/fft/deep_alloc.cpp",
                                                     "src/la/hot.cpp"}));
}

TEST(AnalyzeHotPath, FlagsHotTuAndOmpFunctionViolations) {
  const Report report = run_fixture(fixture_config({"hot-path-purity"}));
  const auto findings = findings_for(report, "hot-path-purity");
  ASSERT_EQ(findings.size(), 7u)
      << lrt::analyze::report_to_text(report, true);
  int hot_tu = 0;
  int omp_fn = 0;
  int deep = 0;
  for (const Finding& f : findings) {
    if (f.file == "src/la/hot.cpp") ++hot_tu;
    if (f.file == "src/fft/omp_fn.cpp") ++omp_fn;
    if (f.file == "src/fft/deep_alloc.cpp") ++deep;
  }
  EXPECT_EQ(hot_tu, 5);  // malloc, free, printf, unreserved growth, allow'd
  EXPECT_EQ(omp_fn, 1);  // growth in a loop of an omp-containing function
  EXPECT_EQ(deep, 1);    // in-loop call whose callee allocates two hops down
  EXPECT_EQ(count_status(findings, Finding::Status::kNew), 6);
  EXPECT_EQ(count_status(findings, Finding::Status::kSuppressed), 1);
}

TEST(AnalyzeHotPath, TransitiveAllocationNamesTheCalleeChain) {
  const Report report = run_fixture(fixture_config({"hot-path-purity"}));
  std::vector<Finding> findings;
  for (const Finding& f : findings_for(report, "hot-path-purity")) {
    if (f.file == "src/fft/deep_alloc.cpp") findings.push_back(f);
  }
  // Only the in-loop grab_scratch call: the setup-time call outside the
  // loop and the pure in-loop helper stay silent, and nothing in the
  // helper TU (not hot, no omp) is flagged directly.
  ASSERT_EQ(findings.size(), 1u)
      << lrt::analyze::report_to_text(report, true);
  EXPECT_NE(findings[0].message.find("call to 'grab_scratch'"),
            std::string::npos)
      << findings[0].message;
  EXPECT_NE(findings[0].message.find("allocates ('malloc'"),
            std::string::npos);
  EXPECT_NE(findings[0].message.find("grab_scratch -> make_scratch"),
            std::string::npos);
  for (const Finding& f : findings_for(report, "hot-path-purity")) {
    EXPECT_NE(f.file, "src/fft/alloc_helpers.cpp");
  }
}

// ----- counter-registry -------------------------------------------------------

TEST(AnalyzeCounterRegistry, FlagsOnlyUnregisteredLiterals) {
  const Report report = run_fixture(fixture_config({"counter-registry"}));
  const auto findings = findings_for(report, "counter-registry");
  ASSERT_EQ(findings.size(), 2u)
      << lrt::analyze::report_to_text(report, true);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.file, "src/obs/counter_use.cpp");
  }
  EXPECT_EQ(count_status(findings, Finding::Status::kNew), 1);
  EXPECT_EQ(count_status(findings, Finding::Status::kSuppressed), 1);
  for (const Finding& f : findings) {
    if (f.status == Finding::Status::kNew) {
      EXPECT_NE(f.message.find("fixture.rogue"), std::string::npos);
    }
  }
}

TEST(AnalyzeCounterRegistry, EmptyRegistryIsAConfigFinding) {
  Config config = fixture_config({"counter-registry"});
  config.counter_registry.clear();
  const Report report = run_fixture(config);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].file, "src/obs/counters.def");
  EXPECT_NE(report.findings[0].message.find("empty or missing"),
            std::string::npos);
}

TEST(AnalyzeCounterRegistry, CompiledHeaderMatchesCountersDef) {
  const auto defs = lrt::analyze::parse_phases_def_entries(
      lrt::analyze::read_file(kRepoRoot + "/src/obs/counters.def"));
  EXPECT_EQ(lrt::obs::cnt::kCount, defs.size());
  for (const auto& def : defs) {
    EXPECT_TRUE(lrt::obs::cnt::is_registered(def.name)) << def.name;
  }
  EXPECT_FALSE(lrt::obs::cnt::is_registered("bogus.counter"));
  EXPECT_TRUE(lrt::obs::cnt::is_registered("kmeans.assign.skipped"));
}

TEST(AnalyzeCounterRegistry, SyncPassCleanOnRepo) {
  Config config;
  config.root = kRepoRoot;
  config.passes = {"counter-registry-sync"};
  const Report report = lrt::analyze::analyze(config, {});
  EXPECT_EQ(report.findings.size(), 0u)
      << lrt::analyze::report_to_text(report, true);
}

// ----- migrated pattern gates -------------------------------------------------

TEST(AnalyzePatterns, NakedNewDeleteIgnoresCommentsStringsAndDeletedFns) {
  const Report report = run_fixture(fixture_config({"naked-new-delete"}));
  const auto findings = findings_for(report, "naked-new-delete");
  // Exactly the real allocation pair in block_comment.cpp; the block
  // comment, the string literal, and `= delete` stay silent.
  ASSERT_EQ(findings.size(), 2u)
      << lrt::analyze::report_to_text(report, true);
  EXPECT_EQ(findings[0].file, "src/grid/block_comment.cpp");
  EXPECT_NE(findings[0].message.find("naked new"), std::string::npos);
  EXPECT_EQ(findings[1].file, "src/grid/block_comment.cpp");
  EXPECT_NE(findings[1].message.find("naked delete"), std::string::npos);
}

TEST(AnalyzePatterns, SuppressionDirectivesResolveFindings) {
  const Report report = run_fixture(fixture_config({"banned-volatile"}));
  const auto findings = findings_for(report, "banned-volatile");
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(count_status(findings, Finding::Status::kSuppressed), 2);
  EXPECT_EQ(count_status(findings, Finding::Status::kNew), 1);
  EXPECT_EQ(report.new_count, 1);
  EXPECT_EQ(report.suppressed_count, 2);
}

TEST(AnalyzePatterns, ThreadSleepParentIncludePragmaOnce) {
  const Report report = run_fixture(fixture_config(
      {"banned-thread", "banned-sleep", "parent-include", "pragma-once"}));
  EXPECT_EQ(findings_for(report, "banned-thread").size(), 1u);
  EXPECT_EQ(findings_for(report, "banned-sleep").size(), 1u);
  const auto parent = findings_for(report, "parent-include");
  ASSERT_EQ(parent.size(), 1u);
  EXPECT_EQ(parent[0].file, "src/kmeans/parent_inc.cpp");
  const auto pragma = findings_for(report, "pragma-once");
  ASSERT_EQ(pragma.size(), 1u);
  EXPECT_EQ(pragma[0].file, "src/grid/no_pragma.hpp");
}

// ----- orchestration ----------------------------------------------------------

TEST(AnalyzeReport, FullFixtureRunCountsEveryState) {
  // Every pass except the two sync passes (the fixture repo has no def
  // files; sync over the real repo is covered above).
  std::set<std::string> passes;
  for (const std::string& name : lrt::analyze::all_pass_names()) {
    if (name != "phase-registry-sync" && name != "counter-registry-sync") {
      passes.insert(name);
    }
  }
  const Report report = run_fixture(fixture_config(std::move(passes)));
  // 4 layer-dag + 5 collective-divergence + 7 omp-race +
  // 7 hot-path-purity + 1 phase-registry + 2 counter-registry +
  // 2 naked-new-delete + 3 banned-volatile + 1 banned-thread +
  // 1 banned-sleep + 1 parent-include + 1 pragma-once.
  EXPECT_EQ(report.findings.size(), 35u)
      << lrt::analyze::report_to_text(report, true);
  EXPECT_EQ(report.new_count, 30);
  EXPECT_EQ(report.suppressed_count, 5);
  EXPECT_EQ(report.baselined_count, 0);
  EXPECT_FALSE(report.clean());

  // Sorted by (file, line, pass).
  for (std::size_t i = 1; i < report.findings.size(); ++i) {
    const Finding& a = report.findings[i - 1];
    const Finding& b = report.findings[i];
    EXPECT_LE(std::tie(a.file, a.line, a.pass),
              std::tie(b.file, b.line, b.pass));
  }
}

TEST(AnalyzeReport, JsonReportSchema) {
  Config config = fixture_config({"banned-volatile"});
  const Report report = run_fixture(config);
  const lrt::obs::json::Value doc =
      lrt::analyze::report_to_json(config, report);
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->string, "lrt.analyze/1");

  const auto* passes = doc.find("passes");
  ASSERT_NE(passes, nullptr);
  ASSERT_TRUE(passes->is_array());
  ASSERT_EQ(passes->array.size(), 1u);
  EXPECT_EQ(passes->array[0].string, "banned-volatile");

  const auto* summary = doc.find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->find("new")->number, 1.0);
  EXPECT_EQ(summary->find("suppressed")->number, 2.0);
  EXPECT_EQ(summary->find("baselined")->number, 0.0);

  const auto* findings = doc.find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_EQ(findings->array.size(), report.findings.size());
  for (const auto& item : findings->array) {
    ASSERT_TRUE(item.is_object());
    EXPECT_NE(item.find("pass"), nullptr);
    EXPECT_NE(item.find("file"), nullptr);
    EXPECT_TRUE(item.find("line")->is_number());
    EXPECT_NE(item.find("message"), nullptr);
    const std::string status = item.find("status")->string;
    EXPECT_TRUE(status == "new" || status == "suppressed" ||
                status == "baselined");
  }
  // The document round-trips through the obs JSON parser.
  EXPECT_NO_THROW(lrt::obs::json::parse(lrt::obs::json::dump(doc)));
}

TEST(AnalyzeReport, TextReportShowsNewAlwaysOthersOnlyVerbose) {
  const Report report = run_fixture(fixture_config({"banned-volatile"}));
  const std::string terse = lrt::analyze::report_to_text(report, false);
  EXPECT_NE(terse.find("1 new, 0 baselined, 2 suppressed"),
            std::string::npos);
  EXPECT_EQ(terse.find("suppressed]"), std::string::npos);
  const std::string verbose = lrt::analyze::report_to_text(report, true);
  EXPECT_NE(verbose.find("suppressed]"), std::string::npos);
}

TEST(AnalyzeReport, LoadBaselineParsesAndRejectsMalformed) {
  Config config;
  lrt::analyze::load_baseline(
      "# comment\n"
      "layer-dag common -> obs\n"
      "collective-divergence tests/test_par_check.cpp  # trailing\n",
      &config);
  EXPECT_EQ(config.baseline_layer_edges.count("common->obs"), 1u);
  EXPECT_EQ(config.baseline_files.count(
                "collective-divergence:tests/test_par_check.cpp"),
            1u);
  EXPECT_THROW(lrt::analyze::load_baseline("no-such-pass src/x.cpp\n",
                                           &config),
               lrt::Error);
  EXPECT_THROW(lrt::analyze::load_baseline("layer-dag common obs\n", &config),
               lrt::Error);
}

TEST(AnalyzeReport, DiscoverySkipsFixtureCorpus) {
  const auto sources = lrt::analyze::discover_sources(kRepoRoot);
  EXPECT_NE(std::find(sources.begin(), sources.end(),
                      "src/analyze/analyzer.cpp"),
            sources.end());
  for (const std::string& path : sources) {
    EXPECT_EQ(path.find("analyze_fixtures/"), std::string::npos) << path;
  }
}

/// The exact gate CI runs: committed baseline, def files, and hot-TU
/// promotions from src/CMakeLists.txt.
Config real_repo_config() {
  Config config;
  config.root = kRepoRoot;
  config.phase_registry = lrt::analyze::parse_phases_def(
      lrt::analyze::read_file(kRepoRoot + "/src/obs/phases.def"));
  config.counter_registry = lrt::analyze::parse_phases_def(
      lrt::analyze::read_file(kRepoRoot + "/src/obs/counters.def"));
  lrt::analyze::load_hot_tus(
      lrt::analyze::read_file(kRepoRoot + "/src/CMakeLists.txt"), &config);
  lrt::analyze::load_baseline(
      lrt::analyze::read_file(kRepoRoot + "/tools/lrt-analyze.baseline"),
      &config);
  return config;
}

TEST(AnalyzeReport, RealRepositoryIsClean) {
  // New findings here mean the tree regressed (or the analyzer did).
  Config config = real_repo_config();
  const Report report = lrt::analyze::analyze_repo(config);
  EXPECT_TRUE(report.clean())
      << lrt::analyze::report_to_text(report, false);
  // The baseline is empty and must stay that way: new findings are fixed
  // or suppressed inline with a comment, never grandfathered.
  EXPECT_EQ(report.baselined_count, 0);
  EXPECT_GT(report.suppressed_count, 0);  // bench probes + par_check allows
}

TEST(AnalyzeReport, RealRepositoryOmpRaceIsCleanWithoutBaseline) {
  // The parallel kernels must satisfy the race pass on their own: no
  // baseline entries, no grandfathering.
  Config config = real_repo_config();
  config.passes = {"omp-race"};
  config.baseline_files.clear();
  config.baseline_layer_edges.clear();
  const Report report = lrt::analyze::analyze_repo(config);
  EXPECT_EQ(report.new_count, 0)
      << lrt::analyze::report_to_text(report, false);
  EXPECT_EQ(report.baselined_count, 0);
}

TEST(AnalyzeReport, RealRepositoryHotPathIsCleanWithoutBaseline) {
  Config config = real_repo_config();
  config.passes = {"hot-path-purity"};
  config.baseline_files.clear();
  config.baseline_layer_edges.clear();
  EXPECT_FALSE(config.hot_files.empty());  // the -O3 block must parse
  const Report report = lrt::analyze::analyze_repo(config);
  EXPECT_EQ(report.new_count, 0)
      << lrt::analyze::report_to_text(report, false);
  EXPECT_EQ(report.baselined_count, 0);
}

TEST(AnalyzeReport, RealRepositoryCountersAreRegistered) {
  Config config = real_repo_config();
  config.passes = {"counter-registry"};
  config.baseline_files.clear();
  config.baseline_layer_edges.clear();
  const Report report = lrt::analyze::analyze_repo(config);
  EXPECT_EQ(report.new_count, 0)
      << lrt::analyze::report_to_text(report, false);
  EXPECT_EQ(report.baselined_count, 0);
}

TEST(AnalyzeReport, LayerDagNeedsNoBaselineEdges) {
  // The common -> obs shim edge was retired when ScopedPhase moved into
  // obs/; the layer DAG must now hold with an empty edge baseline.
  Config config = real_repo_config();
  config.passes = {"layer-dag"};
  config.baseline_layer_edges.clear();
  const Report report = lrt::analyze::analyze_repo(config);
  EXPECT_EQ(report.new_count, 0)
      << lrt::analyze::report_to_text(report, false);
}

TEST(AnalyzeReport, SarifDocumentHasRequiredShape) {
  Config config = fixture_config({"banned-volatile"});
  const Report report = run_fixture(config);
  const lrt::obs::json::Value doc =
      lrt::analyze::report_to_sarif(config, report);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("version")->string, "2.1.0");
  ASSERT_NE(doc.find("$schema"), nullptr);

  const auto* runs = doc.find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->array.size(), 1u);
  const auto& run = runs->array[0];
  const auto* driver = run.find("tool")->find("driver");
  ASSERT_NE(driver, nullptr);
  EXPECT_EQ(driver->find("name")->string, "lrt-analyze");
  // One reportingDescriptor per pass that ran (only banned-volatile).
  ASSERT_EQ(driver->find("rules")->array.size(), 1u);
  EXPECT_EQ(driver->find("rules")->array[0].find("id")->string,
            "banned-volatile");

  const auto* results = run.find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->array.size(), report.findings.size());
  int errors = 0;
  int suppressed = 0;
  for (const auto& result : results->array) {
    EXPECT_EQ(result.find("ruleId")->string, "banned-volatile");
    ASSERT_NE(result.find("message")->find("text"), nullptr);
    const auto* location =
        result.find("locations")->array[0].find("physicalLocation");
    ASSERT_NE(location, nullptr);
    EXPECT_FALSE(
        location->find("artifactLocation")->find("uri")->string.empty());
    EXPECT_GT(location->find("region")->find("startLine")->number, 0.0);
    if (result.find("level")->string == "error") ++errors;
    const auto* sup = result.find("suppressions");
    if (sup != nullptr) {
      EXPECT_EQ(sup->array[0].find("kind")->string, "inSource");
      ++suppressed;
    }
  }
  EXPECT_EQ(errors, report.new_count);
  EXPECT_EQ(suppressed, report.suppressed_count);
  // Round-trips through the obs JSON parser.
  EXPECT_NO_THROW(lrt::obs::json::parse(lrt::obs::json::dump(doc)));
}

}  // namespace
