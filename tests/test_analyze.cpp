// Tests for the lrt-analyze static analyzer (src/analyze/).
//
// The seeded-violation corpus lives in tests/analyze_fixtures/repo — a
// miniature repository tree the analyzer runs over exactly as it runs
// over the real one. LRT_ANALYZE_FIXTURES and LRT_REPO_ROOT are injected
// by tests/CMakeLists.txt.
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyze/analyzer.hpp"
#include "analyze/lexer.hpp"
#include "analyze/registry_gen.hpp"
#include "common/error.hpp"
#include "obs/phase_registry.hpp"

namespace {

using lrt::analyze::Config;
using lrt::analyze::Finding;
using lrt::analyze::Report;
using lrt::analyze::TokKind;

const std::string kFixtureRepo = std::string(LRT_ANALYZE_FIXTURES) + "/repo";
const std::string kRepoRoot = LRT_REPO_ROOT;

/// Fixture-repo config running only `passes` (all when empty).
Config fixture_config(std::set<std::string> passes) {
  Config config;
  config.root = kFixtureRepo;
  config.passes = std::move(passes);
  config.phase_registry = lrt::analyze::parse_phases_def(
      lrt::analyze::read_file(kRepoRoot + "/src/obs/phases.def"));
  return config;
}

Report run_fixture(const Config& config) {
  return lrt::analyze::analyze(config,
                               lrt::analyze::discover_sources(config.root));
}

std::vector<Finding> findings_for(const Report& report,
                                  const std::string& pass) {
  std::vector<Finding> out;
  for (const Finding& f : report.findings) {
    if (f.pass == pass) out.push_back(f);
  }
  return out;
}

int count_status(const std::vector<Finding>& findings,
                 Finding::Status status) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.status == status; }));
}

// ----- lexer ------------------------------------------------------------------

TEST(AnalyzeLexer, CommentsAndStringsNeverYieldIdentifiers) {
  const std::string text =
      "// new in a line comment\n"
      "/* delete in a block\n"
      "   comment spanning lines */\n"
      "const char* s = \"volatile new delete\";\n"
      "const char* r = R\"(std::thread sleep_for)\";\n"
      "char c = 'v';\n"
      "int actual_identifier = 0;\n";
  const lrt::analyze::LexedFile file = lrt::analyze::lex("x.cpp", text);
  for (const auto& tok : file.tokens) {
    if (tok.kind != TokKind::kIdentifier) continue;
    EXPECT_NE(tok.text, "new");
    EXPECT_NE(tok.text, "delete");
    EXPECT_NE(tok.text, "volatile");
    EXPECT_NE(tok.text, "thread");
    EXPECT_NE(tok.text, "sleep_for");
  }
  const auto found =
      std::find_if(file.tokens.begin(), file.tokens.end(), [](const auto& t) {
        return t.kind == TokKind::kIdentifier &&
               t.text == "actual_identifier";
      });
  ASSERT_NE(found, file.tokens.end());
  EXPECT_EQ(found->line, 7);
}

TEST(AnalyzeLexer, IncludePathsAreDistinctFromStrings) {
  const std::string text =
      "#include \"la/matrix.hpp\"\n"
      "#include <vector>\n"
      "const char* fake = \"la/matrix.hpp\";\n";
  const lrt::analyze::LexedFile file = lrt::analyze::lex("x.cpp", text);
  int quoted = 0;
  int angled = 0;
  int strings = 0;
  for (const auto& tok : file.tokens) {
    if (tok.kind == TokKind::kIncludePath) {
      ++quoted;
      EXPECT_EQ(tok.text, "la/matrix.hpp");
    }
    if (tok.kind == TokKind::kSysInclude) ++angled;
    if (tok.kind == TokKind::kString) ++strings;
  }
  EXPECT_EQ(quoted, 1);
  EXPECT_EQ(angled, 1);
  EXPECT_EQ(strings, 1);
}

TEST(AnalyzeLexer, SuppressionDirectiveCoversOwnAndNextLine) {
  const std::string text =
      "// lrt-analyze: allow(banned-volatile, banned-sleep)\n"
      "int covered;\n"
      "int uncovered;\n"
      "int same = 1;  // lrt-analyze: allow(all)\n";
  const lrt::analyze::LexedFile file = lrt::analyze::lex("x.cpp", text);
  EXPECT_TRUE(file.suppressed("banned-volatile", 1));
  EXPECT_TRUE(file.suppressed("banned-volatile", 2));
  EXPECT_TRUE(file.suppressed("banned-sleep", 2));
  EXPECT_FALSE(file.suppressed("banned-thread", 2));
  EXPECT_FALSE(file.suppressed("banned-volatile", 3));
  EXPECT_TRUE(file.suppressed("banned-volatile", 4));  // allow(all)
  EXPECT_TRUE(file.suppressed("layer-dag", 4));
}

// ----- registry generator -----------------------------------------------------

TEST(AnalyzeRegistry, ConstantNames) {
  EXPECT_EQ(lrt::analyze::phase_constant_name("pair_product"),
            "kPairProduct");
  EXPECT_EQ(lrt::analyze::phase_constant_name("fft.fft3d"), "kFftFft3d");
  EXPECT_EQ(lrt::analyze::phase_constant_name("mpi"), "kMpi");
}

TEST(AnalyzeRegistry, ParseRejectsBadNamesAndDuplicates) {
  EXPECT_THROW(lrt::analyze::parse_phases_def_entries("Bad_Upper\n"),
               lrt::Error);
  EXPECT_THROW(lrt::analyze::parse_phases_def_entries("fft\nfft\n"),
               lrt::Error);
  const auto defs = lrt::analyze::parse_phases_def_entries(
      "# comment\n"
      "fft  3-D transforms\n"
      "mpi\n");
  ASSERT_EQ(defs.size(), 2u);
  EXPECT_EQ(defs[0].name, "fft");
  EXPECT_EQ(defs[0].description, "3-D transforms");
  EXPECT_EQ(defs[1].description, "");
}

TEST(AnalyzeRegistry, CompiledHeaderMatchesPhasesDef) {
  // The committed header this test compiled against must agree with the
  // committed def file — the compile-time face of the sync pass.
  const auto defs = lrt::analyze::parse_phases_def_entries(
      lrt::analyze::read_file(kRepoRoot + "/src/obs/phases.def"));
  EXPECT_EQ(lrt::obs::phase::kCount, defs.size());
  for (const auto& def : defs) {
    EXPECT_TRUE(lrt::obs::phase::is_registered(def.name)) << def.name;
  }
  EXPECT_FALSE(lrt::obs::phase::is_registered("bogus_phase"));
  EXPECT_TRUE(lrt::obs::phase::is_registered(lrt::obs::phase::kFft));
}

TEST(AnalyzeRegistry, SyncPassCleanOnRepo) {
  Config config;
  config.root = kRepoRoot;
  config.passes = {"phase-registry-sync"};
  const Report report = lrt::analyze::analyze(config, {});
  EXPECT_EQ(report.findings.size(), 0u)
      << lrt::analyze::report_to_text(report, true);
}

// ----- layer-dag --------------------------------------------------------------

TEST(AnalyzeLayerDag, FindsOrderViolationsAndCycle) {
  const Report report = run_fixture(fixture_config({"layer-dag"}));
  const auto findings = findings_for(report, "layer-dag");
  ASSERT_EQ(findings.size(), 3u)
      << lrt::analyze::report_to_text(report, true);

  std::set<std::string> files;
  bool saw_cycle = false;
  for (const Finding& f : findings) {
    files.insert(f.file);
    EXPECT_EQ(f.status, Finding::Status::kNew);
    if (f.message.find("module cycle: common -> obs -> common") !=
        std::string::npos) {
      saw_cycle = true;
      EXPECT_EQ(f.file, "src/obs/cyc_b.hpp");  // closing edge's site
    }
  }
  EXPECT_TRUE(saw_cycle);
  EXPECT_EQ(files.count("src/la/bad_layer.hpp"), 1u);
  EXPECT_EQ(files.count("src/common/cyc_a.hpp"), 1u);
}

TEST(AnalyzeLayerDag, BaselineEdgeGrandfathersViolationAndCycle) {
  Config config = fixture_config({"layer-dag"});
  config.baseline_layer_edges = {"common->obs"};
  const Report report = run_fixture(config);
  const auto findings = findings_for(report, "layer-dag");
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(count_status(findings, Finding::Status::kBaselined), 2);
  EXPECT_EQ(count_status(findings, Finding::Status::kNew), 1);
  for (const Finding& f : findings) {
    if (f.status == Finding::Status::kNew) {
      EXPECT_EQ(f.file, "src/la/bad_layer.hpp");  // la->par is not baselined
    }
  }
}

// ----- collective-divergence --------------------------------------------------

TEST(AnalyzeDivergence, FlagsCollectivesUnderRankDependentFlow) {
  const Report report = run_fixture(fixture_config({"collective-divergence"}));
  const auto findings = findings_for(report, "collective-divergence");
  ASSERT_EQ(findings.size(), 3u)
      << lrt::analyze::report_to_text(report, true);
  std::set<std::string> collectives;
  for (const Finding& f : findings) {
    EXPECT_EQ(f.file, "src/par/divergent.cpp");
    EXPECT_EQ(f.status, Finding::Status::kNew);
    const std::size_t open = f.message.find('\'');
    const std::size_t close = f.message.find('\'', open + 1);
    collectives.insert(f.message.substr(open + 1, close - open - 1));
  }
  // The if body, its else branch, and the braceless rank-dependent
  // statement; the unconditional barrier and size-based loop are clean.
  EXPECT_EQ(collectives,
            (std::set<std::string>{"allreduce", "bcast", "barrier"}));
}

TEST(AnalyzeDivergence, WholeFileBaselineResolvesFindings) {
  Config config = fixture_config({"collective-divergence"});
  config.baseline_files = {"collective-divergence:src/par/divergent.cpp"};
  const Report report = run_fixture(config);
  EXPECT_EQ(report.new_count, 0);
  EXPECT_EQ(report.baselined_count, 3);
  EXPECT_TRUE(report.clean());
}

// ----- phase-registry ---------------------------------------------------------

TEST(AnalyzePhaseRegistry, FlagsOnlyUnregisteredNames) {
  const Report report = run_fixture(fixture_config({"phase-registry"}));
  const auto findings = findings_for(report, "phase-registry");
  ASSERT_EQ(findings.size(), 1u)
      << lrt::analyze::report_to_text(report, true);
  EXPECT_EQ(findings[0].file, "src/fft/phase_names.cpp");
  EXPECT_NE(findings[0].message.find("fixture_unregistered"),
            std::string::npos);
}

TEST(AnalyzePhaseRegistry, EmptyRegistryIsAConfigFinding) {
  Config config = fixture_config({"phase-registry"});
  config.phase_registry.clear();
  const Report report = run_fixture(config);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].file, "src/obs/phases.def");
  EXPECT_NE(report.findings[0].message.find("empty or missing"),
            std::string::npos);
}

// ----- migrated pattern gates -------------------------------------------------

TEST(AnalyzePatterns, NakedNewDeleteIgnoresCommentsStringsAndDeletedFns) {
  const Report report = run_fixture(fixture_config({"naked-new-delete"}));
  const auto findings = findings_for(report, "naked-new-delete");
  // Exactly the real allocation pair in block_comment.cpp; the block
  // comment, the string literal, and `= delete` stay silent.
  ASSERT_EQ(findings.size(), 2u)
      << lrt::analyze::report_to_text(report, true);
  EXPECT_EQ(findings[0].file, "src/grid/block_comment.cpp");
  EXPECT_NE(findings[0].message.find("naked new"), std::string::npos);
  EXPECT_EQ(findings[1].file, "src/grid/block_comment.cpp");
  EXPECT_NE(findings[1].message.find("naked delete"), std::string::npos);
}

TEST(AnalyzePatterns, SuppressionDirectivesResolveFindings) {
  const Report report = run_fixture(fixture_config({"banned-volatile"}));
  const auto findings = findings_for(report, "banned-volatile");
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(count_status(findings, Finding::Status::kSuppressed), 2);
  EXPECT_EQ(count_status(findings, Finding::Status::kNew), 1);
  EXPECT_EQ(report.new_count, 1);
  EXPECT_EQ(report.suppressed_count, 2);
}

TEST(AnalyzePatterns, ThreadSleepParentIncludePragmaOnce) {
  const Report report = run_fixture(fixture_config(
      {"banned-thread", "banned-sleep", "parent-include", "pragma-once"}));
  EXPECT_EQ(findings_for(report, "banned-thread").size(), 1u);
  EXPECT_EQ(findings_for(report, "banned-sleep").size(), 1u);
  const auto parent = findings_for(report, "parent-include");
  ASSERT_EQ(parent.size(), 1u);
  EXPECT_EQ(parent[0].file, "src/kmeans/parent_inc.cpp");
  const auto pragma = findings_for(report, "pragma-once");
  ASSERT_EQ(pragma.size(), 1u);
  EXPECT_EQ(pragma[0].file, "src/grid/no_pragma.hpp");
}

// ----- orchestration ----------------------------------------------------------

TEST(AnalyzeReport, FullFixtureRunCountsEveryState) {
  // Every pass except phase-registry-sync (the fixture repo has no
  // phases.def; sync over the real repo is covered above).
  std::set<std::string> passes;
  for (const std::string& name : lrt::analyze::all_pass_names()) {
    if (name != "phase-registry-sync") passes.insert(name);
  }
  const Report report = run_fixture(fixture_config(std::move(passes)));
  // 3 layer-dag + 3 collective-divergence + 1 phase-registry +
  // 2 naked-new-delete + 3 banned-volatile + 1 banned-thread +
  // 1 banned-sleep + 1 parent-include + 1 pragma-once.
  EXPECT_EQ(report.findings.size(), 16u)
      << lrt::analyze::report_to_text(report, true);
  EXPECT_EQ(report.new_count, 14);
  EXPECT_EQ(report.suppressed_count, 2);
  EXPECT_EQ(report.baselined_count, 0);
  EXPECT_FALSE(report.clean());

  // Sorted by (file, line, pass).
  for (std::size_t i = 1; i < report.findings.size(); ++i) {
    const Finding& a = report.findings[i - 1];
    const Finding& b = report.findings[i];
    EXPECT_LE(std::tie(a.file, a.line, a.pass),
              std::tie(b.file, b.line, b.pass));
  }
}

TEST(AnalyzeReport, JsonReportSchema) {
  Config config = fixture_config({"banned-volatile"});
  const Report report = run_fixture(config);
  const lrt::obs::json::Value doc =
      lrt::analyze::report_to_json(config, report);
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->string, "lrt.analyze/1");

  const auto* passes = doc.find("passes");
  ASSERT_NE(passes, nullptr);
  ASSERT_TRUE(passes->is_array());
  ASSERT_EQ(passes->array.size(), 1u);
  EXPECT_EQ(passes->array[0].string, "banned-volatile");

  const auto* summary = doc.find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->find("new")->number, 1.0);
  EXPECT_EQ(summary->find("suppressed")->number, 2.0);
  EXPECT_EQ(summary->find("baselined")->number, 0.0);

  const auto* findings = doc.find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_EQ(findings->array.size(), report.findings.size());
  for (const auto& item : findings->array) {
    ASSERT_TRUE(item.is_object());
    EXPECT_NE(item.find("pass"), nullptr);
    EXPECT_NE(item.find("file"), nullptr);
    EXPECT_TRUE(item.find("line")->is_number());
    EXPECT_NE(item.find("message"), nullptr);
    const std::string status = item.find("status")->string;
    EXPECT_TRUE(status == "new" || status == "suppressed" ||
                status == "baselined");
  }
  // The document round-trips through the obs JSON parser.
  EXPECT_NO_THROW(lrt::obs::json::parse(lrt::obs::json::dump(doc)));
}

TEST(AnalyzeReport, TextReportShowsNewAlwaysOthersOnlyVerbose) {
  const Report report = run_fixture(fixture_config({"banned-volatile"}));
  const std::string terse = lrt::analyze::report_to_text(report, false);
  EXPECT_NE(terse.find("1 new, 0 baselined, 2 suppressed"),
            std::string::npos);
  EXPECT_EQ(terse.find("suppressed]"), std::string::npos);
  const std::string verbose = lrt::analyze::report_to_text(report, true);
  EXPECT_NE(verbose.find("suppressed]"), std::string::npos);
}

TEST(AnalyzeReport, LoadBaselineParsesAndRejectsMalformed) {
  Config config;
  lrt::analyze::load_baseline(
      "# comment\n"
      "layer-dag common -> obs\n"
      "collective-divergence tests/test_par_check.cpp  # trailing\n",
      &config);
  EXPECT_EQ(config.baseline_layer_edges.count("common->obs"), 1u);
  EXPECT_EQ(config.baseline_files.count(
                "collective-divergence:tests/test_par_check.cpp"),
            1u);
  EXPECT_THROW(lrt::analyze::load_baseline("no-such-pass src/x.cpp\n",
                                           &config),
               lrt::Error);
  EXPECT_THROW(lrt::analyze::load_baseline("layer-dag common obs\n", &config),
               lrt::Error);
}

TEST(AnalyzeReport, DiscoverySkipsFixtureCorpus) {
  const auto sources = lrt::analyze::discover_sources(kRepoRoot);
  EXPECT_NE(std::find(sources.begin(), sources.end(),
                      "src/analyze/analyzer.cpp"),
            sources.end());
  for (const std::string& path : sources) {
    EXPECT_EQ(path.find("analyze_fixtures/"), std::string::npos) << path;
  }
}

TEST(AnalyzeReport, RealRepositoryIsClean) {
  // The exact gate CI runs: committed baseline + committed phases.def.
  // New findings here mean the tree regressed (or the analyzer did).
  Config config;
  config.root = kRepoRoot;
  config.phase_registry = lrt::analyze::parse_phases_def(
      lrt::analyze::read_file(kRepoRoot + "/src/obs/phases.def"));
  lrt::analyze::load_baseline(
      lrt::analyze::read_file(kRepoRoot + "/tools/lrt-analyze.baseline"),
      &config);
  const Report report = lrt::analyze::analyze_repo(config);
  EXPECT_TRUE(report.clean())
      << lrt::analyze::report_to_text(report, false);
  EXPECT_GT(report.baselined_count, 0);   // the grandfathered shim edge
  EXPECT_GT(report.suppressed_count, 0);  // the bench probe names
}

}  // namespace
