// SUMMA distributed GEMM vs serial reference across grid shapes.
#include <gtest/gtest.h>

#include "la/blas.hpp"
#include "par/summa.hpp"

namespace lrt::par {
namespace {

struct SummaCase {
  int prow, pcol;
  Index m, n, k;
  Index panel;
};

class SummaSweep : public ::testing::TestWithParam<SummaCase> {};

TEST_P(SummaSweep, MatchesSerialGemm) {
  const SummaCase c = GetParam();
  const int p = c.prow * c.pcol;

  Rng rng(42);
  const la::RealMatrix a = la::RealMatrix::random_normal(c.m, c.k, rng);
  const la::RealMatrix b = la::RealMatrix::random_normal(c.k, c.n, rng);
  const la::RealMatrix expected =
      la::gemm(la::Trans::kNo, la::Trans::kNo, a.view(), b.view());

  run(p, [&](Comm& comm) {
    ProcessGrid2D grid(comm, c.prow, c.pcol);
    const BlockPartition rows_m(c.m, c.prow);
    const BlockPartition cols_n(c.n, c.pcol);
    const BlockPartition k_by_col(c.k, c.pcol);
    const BlockPartition k_by_row(c.k, c.prow);

    const auto a_loc = a.view().block(
        rows_m.offset(grid.my_row()), k_by_col.offset(grid.my_col()),
        rows_m.count(grid.my_row()), k_by_col.count(grid.my_col()));
    const auto b_loc = b.view().block(
        k_by_row.offset(grid.my_row()), cols_n.offset(grid.my_col()),
        k_by_row.count(grid.my_row()), cols_n.count(grid.my_col()));

    SummaOptions opts;
    opts.panel = c.panel;
    const la::RealMatrix c_loc =
        summa_gemm(grid, a_loc, b_loc, c.m, c.n, c.k, opts);

    const auto c_expected = expected.view().block(
        rows_m.offset(grid.my_row()), cols_n.offset(grid.my_col()),
        rows_m.count(grid.my_row()), cols_n.count(grid.my_col()));
    EXPECT_LT(la::max_abs_diff(c_loc.view(), c_expected), 1e-10)
        << "grid " << c.prow << "x" << c.pcol;
  });
}

INSTANTIATE_TEST_SUITE_P(
    GridsAndShapes, SummaSweep,
    ::testing::Values(SummaCase{1, 1, 12, 9, 7, 4},
                      SummaCase{1, 4, 16, 12, 10, 3},
                      SummaCase{4, 1, 16, 12, 10, 5},
                      SummaCase{2, 2, 20, 20, 20, 8},
                      SummaCase{2, 3, 17, 13, 11, 4},
                      SummaCase{2, 2, 33, 21, 19, 64}));

TEST(ProcessGrid2D, SubcommunicatorsHaveExpectedShape) {
  run(6, [](Comm& comm) {
    ProcessGrid2D grid(comm, 2, 3);
    EXPECT_EQ(grid.row_comm().size(), 3);
    EXPECT_EQ(grid.col_comm().size(), 2);
    EXPECT_EQ(grid.row_comm().rank(), grid.my_col());
    EXPECT_EQ(grid.col_comm().rank(), grid.my_row());
    // Row members share my_row: verify by allreducing my_row over the
    // row communicator (max == min == my_row).
    double v = grid.my_row();
    grid.row_comm().allreduce(&v, 1, ReduceOp::kMax);
    EXPECT_DOUBLE_EQ(v, grid.my_row());
  });
}

TEST(ProcessGrid2D, RejectsMismatchedGrid) {
  run(4, [](Comm& comm) {
    EXPECT_THROW(ProcessGrid2D(comm, 3, 2), Error);
  });
}

}  // namespace
}  // namespace lrt::par
