// Critical-path extraction, work/wait decomposition, and the
// lrt.report/1 report + regression-gate library (docs/OBSERVABILITY.md
// §6).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "ft/fault.hpp"
#include "obs/counters.hpp"
#include "obs/critical_path.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "par/comm.hpp"
#include "par/runtime.hpp"
#include "tddft/dist_driver.hpp"

namespace lrt {
namespace {

/// Saves the tracing flag, forces a known state, restores on exit; also
/// clears recorded spans so tests see only their own.
class TracingFixture {
 public:
  explicit TracingFixture(bool enable) : saved_(obs::tracing_enabled()) {
    obs::set_tracing_enabled(enable);
    obs::reset_trace();
  }
  ~TracingFixture() {
    obs::reset_trace();
    obs::set_tracing_enabled(saved_);
  }

 private:
  bool saved_;
};

constexpr long long kMs = 1000000;  // ns per millisecond

const obs::CriticalPhase* find_phase(const obs::CriticalPathReport& report,
                                     const std::string& name) {
  for (const obs::CriticalPhase& p : report.phases) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

const obs::PhaseWorkWait* find_phase(
    const std::vector<obs::PhaseWorkWait>& phases, const std::string& name) {
  for (const obs::PhaseWorkWait& p : phases) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

// ----- critical path on a hand-built trace ---------------------------------

/// Three ranks chained by two messages:
///   rank 0: "a" [0, 100ms], sends at 100ms
///   rank 1: "b" [10, 250ms], blocked on rank 0 from 10ms, sends at 250ms
///   rank 2: "c" [50, 400ms], blocked on rank 1 from 50ms
/// The critical path is a -> msg -> b -> msg -> c and tiles [0, 400ms].
obs::Trace three_rank_chain() {
  obs::Trace trace;
  trace.spans = {{"a", 0, 0, 0, 100 * kMs},
                 {"b", 0, 1, 10 * kMs, 250 * kMs},
                 {"c", 0, 2, 50 * kMs, 400 * kMs}};
  trace.flows = {{0, 0, 1, 100 * kMs, 10 * kMs, 101 * kMs},
                 {0, 1, 2, 250 * kMs, 50 * kMs, 251 * kMs}};
  return trace;
}

TEST(CriticalPath, HandBuiltChainFollowsBothMessageEdges) {
  const obs::CriticalPathReport report =
      obs::critical_path(three_rank_chain());

  EXPECT_EQ(report.hops, 2);
  EXPECT_NEAR(report.total_seconds, 0.400, 1e-9);
  // Exact by construction: the segments tile [first start, last end].
  EXPECT_NEAR(report.attributed_seconds, report.total_seconds, 1e-9);

  const obs::CriticalPhase* a = find_phase(report, "a");
  const obs::CriticalPhase* b = find_phase(report, "b");
  const obs::CriticalPhase* c = find_phase(report, "c");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_NEAR(a->work_seconds + a->wait_seconds, 0.100, 1e-6);
  EXPECT_NEAR(b->work_seconds + b->wait_seconds, 0.150, 1e-6);
  EXPECT_NEAR(c->work_seconds + c->wait_seconds, 0.150, 1e-6);
  // The 1 ms receive tails after each send are wait, the rest is work.
  EXPECT_NEAR(b->wait_seconds, 0.001, 1e-6);
  EXPECT_NEAR(c->wait_seconds, 0.001, 1e-6);
  // Phases are sorted by share, descending.
  for (std::size_t i = 1; i < report.phases.size(); ++i) {
    EXPECT_GE(report.phases[i - 1].share_pct, report.phases[i].share_pct);
  }
}

TEST(CriticalPath, EmptyTraceYieldsZeroReport) {
  const obs::CriticalPathReport report = obs::critical_path(obs::Trace{});
  EXPECT_EQ(report.hops, 0);
  EXPECT_EQ(report.total_seconds, 0.0);
  EXPECT_TRUE(report.segments.empty());
}

// ----- critical path on the real Fig-8 smoke workload ----------------------

tddft::CasidaProblem make_fig8_problem() {
  const grid::RealSpaceGrid g(grid::UnitCell::cubic(7.0), {8, 8, 8});
  dft::SyntheticOptions opts;
  opts.num_centers = 8;
  opts.seed = 33;
  return tddft::make_problem_from_synthetic(
      g, dft::make_synthetic_orbitals(g, 4, 3, opts));
}

TEST(CriticalPath, Fig8SmokeAttributionMatchesWallTimeWithinOnePercent) {
  TracingFixture tracing(true);
  const tddft::CasidaProblem problem = make_fig8_problem();
  par::run(8, [&](par::Comm& comm) {
    tddft::DistDriverOptions opts;
    opts.version = tddft::Version::kImplicit;
    opts.num_states = 2;
    opts.nmu = 12;
    opts.kmeans.seeding = kmeans::Seeding::kTopWeight;
    tddft::solve_casida_distributed(comm, problem, opts);
  });

  const obs::CriticalPathReport report = obs::critical_path();
  EXPECT_GT(report.total_seconds, 0.0);
  EXPECT_NEAR(report.attributed_seconds, report.total_seconds,
              0.01 * report.total_seconds);
  double phase_sum = 0.0;
  for (const obs::CriticalPhase& p : report.phases) {
    phase_sum += p.work_seconds + p.wait_seconds;
  }
  EXPECT_NEAR(phase_sum, report.total_seconds, 0.01 * report.total_seconds);

  // The Fig-8 driver records the peak-memory gauge at phase boundaries.
  EXPECT_GT(obs::counter("mem.hwm.bytes").value(), 0);
}

// ----- work/wait decomposition ---------------------------------------------

TEST(WorkWait, StragglerShowsUpAsBarrierWait) {
  TracingFixture tracing(true);
  par::run(4, [](par::Comm& comm) {
    if (comm.rank() == 0) ft::spin_wait_us(30000);
    comm.barrier();
  });

  const std::vector<obs::PhaseWorkWait> phases =
      obs::work_wait_by_phase(obs::snapshot_trace());
  const obs::PhaseWorkWait* barrier = find_phase(phases, "barrier");
  ASSERT_NE(barrier, nullptr);
  EXPECT_EQ(barrier->ranks, 4);
  // Three on-time ranks each blocked ~30 ms for the straggler; allow
  // generous slack for scheduling noise.
  EXPECT_GT(barrier->wait_seconds, 0.020);
  // The straggler's 30 ms burn is outside the barrier, so the busiest
  // rank's barrier time dwarfs the mean -> imbalance well above 1.
  EXPECT_GE(barrier->imbalance, 1.0);
}

TEST(WorkWait, InjectedDelaysCountAsCollectiveWait) {
  TracingFixture tracing(true);
  obs::counter("ft.inject.delay").reset();
  ft::FaultSpec faults;
  faults.seed = 11;
  faults.delay_prob = 0.5;
  faults.delay_us = 5000;
  par::run(4, [](par::Comm& comm) {
    for (int i = 0; i < 4; ++i) comm.barrier();
  }, par::check::Options{}, faults);

  EXPECT_GT(obs::counter("ft.inject.delay").value(), 0);
  const std::vector<obs::PhaseWorkWait> phases =
      obs::work_wait_by_phase(obs::snapshot_trace());
  const obs::PhaseWorkWait* barrier = find_phase(phases, "barrier");
  ASSERT_NE(barrier, nullptr);
  // The injected pre-rendezvous delays make some ranks late, so the
  // on-time ranks accumulate barrier wait.
  EXPECT_GT(barrier->wait_seconds, 0.001);
}

// ----- chrome JSON round trip ----------------------------------------------

TEST(CriticalPath, ChromeJsonRoundTripPreservesTheAnalysis) {
  TracingFixture tracing(true);
  par::run(4, [](par::Comm& comm) {
    std::vector<double> x(64, static_cast<double>(comm.rank()));
    comm.allreduce(x.data(), static_cast<Index>(x.size()), par::ReduceOp::kSum);
    if (comm.rank() == 0) {
      comm.send(x.data(), 8, /*dst=*/1, /*tag=*/7);
    } else if (comm.rank() == 1) {
      comm.recv(x.data(), 8, /*src=*/0, /*tag=*/7);
    }
    comm.barrier();
  });

  const obs::Trace direct = obs::snapshot_trace();
  const obs::CriticalPathReport from_memory = obs::critical_path(direct);

  const std::string path = ::testing::TempDir() + "obs_report_roundtrip.json";
  ASSERT_TRUE(obs::write_chrome_trace(path));
  std::string text;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
    std::fclose(f);
  }
  std::remove(path.c_str());

  const obs::Trace parsed =
      obs::trace_from_chrome_json(obs::json::parse(text));
  EXPECT_EQ(parsed.spans.size(), direct.spans.size());
  EXPECT_EQ(parsed.flows.size(), direct.flows.size());
  // p2p flows: the explicit send above plus the collectives' internal
  // messages all close into matched pairs.
  EXPECT_GE(parsed.flows.size(), 1u);

  const obs::CriticalPathReport from_json = obs::critical_path(parsed);
  // Chrome ts/dur are microseconds with 3 decimals, so the round trip
  // is exact to the nanosecond.
  EXPECT_NEAR(from_json.total_seconds, from_memory.total_seconds, 1e-6);
  EXPECT_NEAR(from_json.attributed_seconds, from_json.total_seconds,
              0.01 * from_json.total_seconds + 1e-9);
}

// ----- lrt.report/1 + gates ------------------------------------------------

const char* kBaselineBench = R"({
  "schema": "lrt.bench/1",
  "name": "fig8",
  "records": [
    {"label": "ranks=8",
     "params": {"ranks": 8},
     "phases": {"gemm": 1.0},
     "counters": {"comm.allreduce.calls": 100},
     "metrics": {"wall_seconds": 2.0}}
  ]
})";

const char* kCurrentBench = R"({
  "schema": "lrt.bench/1",
  "name": "fig8",
  "records": [
    {"label": "ranks=8",
     "params": {"ranks": 8},
     "phases": {"gemm": 1.02},
     "counters": {"comm.allreduce.calls": 112},
     "metrics": {"wall_seconds": 2.1}}
  ]
})";

TEST(Report, ParseGateAcceptsMetricColonPct) {
  obs::GateSpec gate;
  ASSERT_TRUE(obs::parse_gate("wall_seconds:10", gate));
  EXPECT_EQ(gate.metric, "wall_seconds");
  EXPECT_DOUBLE_EQ(gate.max_regress_pct, 10.0);
  ASSERT_TRUE(obs::parse_gate("comm.allreduce.calls:0", gate));
  EXPECT_EQ(gate.metric, "comm.allreduce.calls");
  EXPECT_DOUBLE_EQ(gate.max_regress_pct, 0.0);
  EXPECT_FALSE(obs::parse_gate("wall_seconds", gate));
  EXPECT_FALSE(obs::parse_gate(":10", gate));
  EXPECT_FALSE(obs::parse_gate("wall_seconds:", gate));
  EXPECT_FALSE(obs::parse_gate("wall_seconds:-5", gate));
}

TEST(Report, GateVerdictsAndExitCodes) {
  obs::PerfReport report;
  ASSERT_TRUE(report.add_bench(obs::json::parse(kCurrentBench)));
  ASSERT_TRUE(report.add_baseline(obs::json::parse(kBaselineBench)));

  obs::GateSpec gate;
  // 5% regression on a 10% budget: pass.
  ASSERT_TRUE(obs::parse_gate("wall_seconds:10", gate));
  report.add_gate(gate);
  // 12% counter growth on a 0% budget: fail.
  ASSERT_TRUE(obs::parse_gate("comm.allreduce.calls:0", gate));
  report.add_gate(gate);
  // Phase lookup, 2% growth on a 5% budget: pass.
  ASSERT_TRUE(obs::parse_gate("gemm:5", gate));
  report.add_gate(gate);
  report.run_gates();

  const std::vector<obs::GateResult>& results = report.gate_results();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].status, obs::GateStatus::kPass);
  EXPECT_EQ(results[1].status, obs::GateStatus::kFail);
  EXPECT_NEAR(results[1].change_pct, 12.0, 1e-9);
  EXPECT_EQ(results[2].status, obs::GateStatus::kPass);
  EXPECT_EQ(obs::gate_exit_code(results), 1);
}

TEST(Report, MissingMetricOutranksFailure) {
  obs::PerfReport report;
  ASSERT_TRUE(report.add_bench(obs::json::parse(kCurrentBench)));
  ASSERT_TRUE(report.add_baseline(obs::json::parse(kBaselineBench)));
  obs::GateSpec gate;
  ASSERT_TRUE(obs::parse_gate("comm.allreduce.calls:0", gate));  // fails
  report.add_gate(gate);
  ASSERT_TRUE(obs::parse_gate("no_such_metric:5", gate));  // missing
  report.add_gate(gate);
  report.run_gates();
  EXPECT_EQ(obs::gate_exit_code(report.gate_results()), 2);
}

TEST(Report, ImprovementPassesAZeroBudgetGate) {
  obs::PerfReport report;
  // Swap the roles: current is the *smaller* run.
  ASSERT_TRUE(report.add_bench(obs::json::parse(kBaselineBench)));
  ASSERT_TRUE(report.add_baseline(obs::json::parse(kCurrentBench)));
  obs::GateSpec gate;
  ASSERT_TRUE(obs::parse_gate("comm.allreduce.calls:0", gate));
  report.add_gate(gate);
  ASSERT_TRUE(obs::parse_gate("wall_seconds:0", gate));
  report.add_gate(gate);
  report.run_gates();
  EXPECT_EQ(obs::gate_exit_code(report.gate_results()), 0);
}

TEST(Report, RejectsWrongSchema) {
  obs::PerfReport report;
  EXPECT_FALSE(report.add_bench(
      obs::json::parse(R"({"schema": "not.bench/9", "records": []})")));
}

TEST(Report, JsonDocumentRoundTripsThroughTheParser) {
  obs::PerfReport report;
  report.add_trace(three_rank_chain());
  ASSERT_TRUE(report.add_bench(obs::json::parse(kCurrentBench)));
  ASSERT_TRUE(report.add_baseline(obs::json::parse(kBaselineBench)));
  obs::GateSpec gate;
  ASSERT_TRUE(obs::parse_gate("wall_seconds:10", gate));
  report.add_gate(gate);
  report.run_gates();

  const obs::json::Value doc =
      obs::json::parse(obs::json::dump(report.to_json()));
  const obs::json::Value* schema = doc.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string, obs::kReportSchema);
  const obs::json::Value* cp = doc.find("critical_path");
  ASSERT_NE(cp, nullptr);
  const obs::json::Value* hops = cp->find("hops");
  ASSERT_NE(hops, nullptr);
  EXPECT_DOUBLE_EQ(hops->number, 2.0);
  const obs::json::Value* gates = doc.find("gates");
  ASSERT_NE(gates, nullptr);
  ASSERT_EQ(gates->array.size(), 1u);
  const obs::json::Value* verdict = doc.find("verdict");
  ASSERT_NE(verdict, nullptr);
  EXPECT_EQ(verdict->string, "pass");
  // Counter deltas surface the allreduce growth even though no gate
  // names it.
  const obs::json::Value* deltas = doc.find("counter_deltas");
  ASSERT_NE(deltas, nullptr);
  EXPECT_GE(deltas->array.size(), 1u);

  const std::string markdown = report.to_markdown();
  EXPECT_NE(markdown.find("# lrt-report"), std::string::npos);
  EXPECT_NE(markdown.find("wall_seconds"), std::string::npos);
  EXPECT_NE(markdown.find("verdict: pass"), std::string::npos);
}

}  // namespace
}  // namespace lrt
