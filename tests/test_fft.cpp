// FFT tests: delta/plane-wave closed forms, round trips, Parseval,
// linearity, power-of-two and Bluestein paths, 3-D transforms.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"
#include "fft/fft3d.hpp"

namespace lrt::fft {
namespace {

using constants::kTwoPi;

TEST(Fft1D, PowerOfTwoDetection) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(96));
  EXPECT_EQ(next_power_of_two(17), 32);
  EXPECT_EQ(next_power_of_two(1), 1);
}

TEST(Fft1D, DeltaTransformsToConstant) {
  for (const Index n : {8, 12, 17, 104}) {
    std::vector<Complex> x(static_cast<std::size_t>(n), Complex{0, 0});
    x[0] = Complex{1, 0};
    Fft1D(n).forward(x.data());
    for (Index k = 0; k < n; ++k) {
      EXPECT_NEAR(x[static_cast<std::size_t>(k)].real(), 1.0, 1e-12) << n;
      EXPECT_NEAR(x[static_cast<std::size_t>(k)].imag(), 0.0, 1e-12);
    }
  }
}

TEST(Fft1D, PlaneWaveTransformsToDelta) {
  // x_j = exp(2πi m j / n) -> X_k = n δ_{k, -m mod n} for forward
  // convention exp(-2πi jk/n).
  for (const Index n : {16, 15}) {
    const Index m = 3;
    std::vector<Complex> x(static_cast<std::size_t>(n));
    for (Index j = 0; j < n; ++j) {
      const Real angle = kTwoPi * m * j / static_cast<Real>(n);
      x[static_cast<std::size_t>(j)] = Complex(std::cos(angle), std::sin(angle));
    }
    Fft1D(n).forward(x.data());
    for (Index k = 0; k < n; ++k) {
      const Real expected = (k == m) ? static_cast<Real>(n) : 0.0;
      EXPECT_NEAR(x[static_cast<std::size_t>(k)].real(), expected, 1e-9)
          << "n=" << n << " k=" << k;
    }
  }
}

class FftRoundTrip : public ::testing::TestWithParam<Index> {};

TEST_P(FftRoundTrip, InverseOfForwardIsIdentity) {
  const Index n = GetParam();
  lrt::Rng rng(static_cast<unsigned>(n));
  std::vector<Complex> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = Complex(rng.normal(), rng.normal());
  const std::vector<Complex> original = x;
  const Fft1D plan(n);
  plan.forward(x.data());
  plan.inverse(x.data());
  for (Index i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)].real(),
                original[static_cast<std::size_t>(i)].real(), 1e-10);
    EXPECT_NEAR(x[static_cast<std::size_t>(i)].imag(),
                original[static_cast<std::size_t>(i)].imag(), 1e-10);
  }
}

// Mix of radix-2 sizes and Bluestein sizes, including the paper's
// non-power-of-two grid dimensions 104 and 166.
INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values<Index>(1, 2, 4, 8, 64, 3, 5, 7, 12,
                                                  17, 104, 166, 1000));

TEST(Fft1D, ParsevalHolds) {
  const Index n = 60;
  lrt::Rng rng(2);
  std::vector<Complex> x(static_cast<std::size_t>(n));
  Real time_energy = 0;
  for (auto& v : x) {
    v = Complex(rng.normal(), rng.normal());
    time_energy += std::norm(v);
  }
  Fft1D(n).forward(x.data());
  Real freq_energy = 0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * n, 1e-8 * time_energy * n);
}

TEST(Fft1D, LinearityOfTransform) {
  const Index n = 24;
  lrt::Rng rng(3);
  std::vector<Complex> a(static_cast<std::size_t>(n)), b = a, sum = a;
  for (Index i = 0; i < n; ++i) {
    a[static_cast<std::size_t>(i)] = Complex(rng.normal(), rng.normal());
    b[static_cast<std::size_t>(i)] = Complex(rng.normal(), rng.normal());
    sum[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(i)] +
                                       Real{2} * b[static_cast<std::size_t>(i)];
  }
  const Fft1D plan(n);
  plan.forward(a.data());
  plan.forward(b.data());
  plan.forward(sum.data());
  for (Index i = 0; i < n; ++i) {
    const Complex expected = a[static_cast<std::size_t>(i)] +
                             Real{2} * b[static_cast<std::size_t>(i)];
    EXPECT_NEAR(std::abs(sum[static_cast<std::size_t>(i)] - expected), 0.0,
                1e-10);
  }
}

TEST(Fft3D, RoundTripMixedSizes) {
  const Fft3D fft(4, 6, 5);
  lrt::Rng rng(4);
  std::vector<Complex> x(static_cast<std::size_t>(fft.size()));
  for (auto& v : x) v = Complex(rng.normal(), rng.normal());
  const std::vector<Complex> original = x;
  fft.forward(x.data());
  fft.inverse(x.data());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(x[i] - original[i]), 0.0, 1e-10);
  }
}

TEST(Fft3D, PlaneWaveLandsOnSingleFrequency) {
  const Index n0 = 6, n1 = 4, n2 = 8;
  const Fft3D fft(n0, n1, n2);
  const Index m0 = 2, m1 = 1, m2 = 5;
  std::vector<Complex> x(static_cast<std::size_t>(n0 * n1 * n2));
  for (Index i0 = 0; i0 < n0; ++i0) {
    for (Index i1 = 0; i1 < n1; ++i1) {
      for (Index i2 = 0; i2 < n2; ++i2) {
        const Real angle = kTwoPi * (Real(m0 * i0) / n0 + Real(m1 * i1) / n1 +
                                     Real(m2 * i2) / n2);
        x[static_cast<std::size_t>((i0 * n1 + i1) * n2 + i2)] =
            Complex(std::cos(angle), std::sin(angle));
      }
    }
  }
  fft.forward(x.data());
  const Index hot = (m0 * n1 + m1) * n2 + m2;
  for (Index i = 0; i < n0 * n1 * n2; ++i) {
    const Real expected = (i == hot) ? static_cast<Real>(n0 * n1 * n2) : 0.0;
    EXPECT_NEAR(x[static_cast<std::size_t>(i)].real(), expected, 1e-8);
    EXPECT_NEAR(x[static_cast<std::size_t>(i)].imag(), 0.0, 1e-8);
  }
}

TEST(Fft3D, RealConvenienceWrappers) {
  const Fft3D fft(4, 4, 4);
  lrt::Rng rng(5);
  std::vector<Real> input(static_cast<std::size_t>(fft.size()));
  for (auto& v : input) v = rng.normal();
  std::vector<Complex> freq(static_cast<std::size_t>(fft.size()));
  fft.forward(input.data(), freq.data());
  std::vector<Real> output(static_cast<std::size_t>(fft.size()));
  fft.inverse_real(freq.data(), output.data());
  for (std::size_t i = 0; i < input.size(); ++i) {
    EXPECT_NEAR(output[i], input[i], 1e-10);
  }
}

TEST(Fft1D, RejectsBadLength) {
  EXPECT_THROW(Fft1D(0), lrt::Error);
}

}  // namespace
}  // namespace lrt::fft
