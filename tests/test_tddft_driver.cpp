// End-to-end driver: the five Table-4 versions must agree on excitation
// energies within the low-rank approximation error; memory estimates and
// profiler phases must behave as documented.
#include <gtest/gtest.h>

#include <cmath>

#include "tddft/driver.hpp"

namespace lrt::tddft {
namespace {

CasidaProblem make_test_problem() {
  const grid::RealSpaceGrid g(grid::UnitCell::cubic(8.0), {10, 10, 10});
  dft::SyntheticOptions opts;
  opts.num_centers = 8;
  opts.seed = 21;
  return make_problem_from_synthetic(
      g, dft::make_synthetic_orbitals(g, 5, 4, opts));
}

class VersionSweep : public ::testing::TestWithParam<Version> {};

TEST_P(VersionSweep, AgreesWithNaiveReference) {
  const CasidaProblem p = make_test_problem();

  DriverOptions naive;
  naive.version = Version::kNaive;
  naive.num_states = 3;
  const DriverResult reference = solve_casida(p, naive);

  DriverOptions opts;
  opts.version = GetParam();
  opts.num_states = 3;
  opts.nmu = 18;  // comfortably above the numerical pair rank
  opts.eigen.tolerance = 1e-9;
  const DriverResult result = solve_casida(p, opts);

  ASSERT_EQ(result.energies.size(), 3u);
  for (Index j = 0; j < 3; ++j) {
    // Low-rank approximation error budget: relative 2e-2.
    EXPECT_NEAR(result.energies[static_cast<std::size_t>(j)],
                reference.energies[static_cast<std::size_t>(j)],
                2e-2 * std::abs(reference.energies[static_cast<std::size_t>(j)]))
        << version_name(GetParam()) << " state " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(AllVersions, VersionSweep,
                         ::testing::Values(Version::kNaive,
                                           Version::kQrcpIsdf,
                                           Version::kKmeansIsdf,
                                           Version::kKmeansIsdfLobpcg,
                                           Version::kImplicit),
                         [](const auto& info) {
                           std::string n = version_name(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(Driver, MemoryEstimateShrinksForImplicit) {
  const CasidaProblem p = make_test_problem();
  DriverOptions naive;
  naive.version = Version::kNaive;
  const DriverResult r_naive = solve_casida(p, naive);
  DriverOptions imp;
  imp.version = Version::kImplicit;
  imp.nmu = 18;
  const DriverResult r_imp = solve_casida(p, imp);
  EXPECT_LT(r_imp.memory_bytes_estimate, r_naive.memory_bytes_estimate);
  EXPECT_EQ(r_imp.nmu_used, 18);
  EXPECT_GT(r_imp.eigen_iterations, 0);
  EXPECT_EQ(r_naive.eigen_iterations, 0);
}

TEST(Driver, NmuRatioDerivesPointCount) {
  const CasidaProblem p = make_test_problem();
  DriverOptions opts;
  opts.version = Version::kImplicit;
  opts.nmu = 0;
  opts.nmu_ratio = 2.0;  // 2 * (5 + 4) = 18, capped by Ncv = 20
  const DriverResult r = solve_casida(p, opts);
  EXPECT_EQ(r.nmu_used, 18);
}

TEST(Driver, ProfilerPhasesPresentPerVersion) {
  const CasidaProblem p = make_test_problem();
  DriverOptions naive;
  naive.version = Version::kNaive;
  const DriverResult r1 = solve_casida(p, naive);
  EXPECT_GT(r1.profiler.total("pair_product"), 0.0);
  EXPECT_GT(r1.profiler.total("diag"), 0.0);
  EXPECT_DOUBLE_EQ(r1.profiler.total("select_points"), 0.0);

  DriverOptions imp;
  imp.version = Version::kImplicit;
  imp.nmu = 16;
  const DriverResult r2 = solve_casida(p, imp);
  EXPECT_GT(r2.profiler.total("select_points"), 0.0);
  EXPECT_GT(r2.profiler.total("interp_vectors"), 0.0);
  EXPECT_GT(r2.profiler.total("fft"), 0.0);
  EXPECT_DOUBLE_EQ(r2.profiler.total("pair_product"), 0.0);
  EXPECT_GT(r2.seconds_total, 0.0);
}

TEST(Driver, RpaKernelOptionLowersCoupling) {
  // Dropping fxc changes the energies (sanity that the flag is honored).
  const CasidaProblem p = make_test_problem();
  DriverOptions with_xc;
  with_xc.version = Version::kNaive;
  DriverOptions rpa = with_xc;
  rpa.include_xc = false;
  const DriverResult a = solve_casida(p, with_xc);
  const DriverResult b = solve_casida(p, rpa);
  EXPECT_NE(a.energies[0], b.energies[0]);
}

TEST(Driver, DavidsonEigenMethodMatchesLobpcg) {
  const CasidaProblem p = make_test_problem();
  DriverOptions lobpcg;
  lobpcg.version = Version::kImplicit;
  lobpcg.num_states = 3;
  lobpcg.nmu = 18;
  DriverOptions davidson = lobpcg;
  davidson.eigen.method = EigenMethod::kDavidson;
  const DriverResult a = solve_casida(p, lobpcg);
  const DriverResult b = solve_casida(p, davidson);
  for (Index j = 0; j < 3; ++j) {
    EXPECT_NEAR(a.energies[static_cast<std::size_t>(j)],
                b.energies[static_cast<std::size_t>(j)], 1e-6);
  }
  EXPECT_GT(b.eigen_iterations, 0);
}

TEST(Driver, VersionNames) {
  EXPECT_STREQ(version_name(Version::kNaive), "Naive");
  EXPECT_STREQ(version_name(Version::kImplicit),
               "Implicit-Kmeans-ISDF-LOBPCG");
}

TEST(Driver, InvalidStateCountThrows) {
  const CasidaProblem p = make_test_problem();
  DriverOptions opts;
  opts.num_states = p.ncv() + 1;
  EXPECT_THROW(solve_casida(p, opts), Error);
}

}  // namespace
}  // namespace lrt::tddft
