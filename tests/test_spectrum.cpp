// DOS broadening and oscillator-strength post-processing.
#include <gtest/gtest.h>

#include <cmath>

#include "dft/synthetic.hpp"
#include "tddft/driver.hpp"
#include "tddft/spectrum.hpp"

namespace lrt::tddft {
namespace {

TEST(GaussianDos, NormalizationIntegratesToStateCount) {
  const std::vector<Real> energies = {0.2, 0.5, 0.55};
  const std::vector<Real> grid = linspace(-1.0, 2.0, 3001);
  const std::vector<Real> dos = gaussian_dos(energies, grid, 0.05);
  Real integral = 0;
  const Real de = grid[1] - grid[0];
  for (const Real d : dos) integral += d * de;
  EXPECT_NEAR(integral, 3.0, 1e-6);
}

TEST(GaussianDos, PeaksAtStateEnergies) {
  const std::vector<Real> energies = {1.0};
  const std::vector<Real> grid = linspace(0.0, 2.0, 201);
  const std::vector<Real> dos = gaussian_dos(energies, grid, 0.1);
  const auto it = std::max_element(dos.begin(), dos.end());
  EXPECT_NEAR(grid[static_cast<std::size_t>(it - dos.begin())], 1.0, 0.011);
}

TEST(GaussianDos, WeightsScaleContributions) {
  const std::vector<Real> energies = {0.0};
  const std::vector<Real> grid = {0.0};
  const std::vector<Real> w = {2.5};
  const std::vector<Real> unweighted = gaussian_dos(energies, grid, 0.1);
  const std::vector<Real> weighted = gaussian_dos(energies, grid, 0.1, &w);
  EXPECT_NEAR(weighted[0], 2.5 * unweighted[0], 1e-12);
}

TEST(Linspace, EndpointsAndSpacing) {
  const std::vector<Real> g = linspace(1.0, 2.0, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g.front(), 1.0);
  EXPECT_DOUBLE_EQ(g.back(), 2.0);
  EXPECT_DOUBLE_EQ(g[1] - g[0], 0.25);
  EXPECT_THROW(linspace(0, 1, 1), Error);
}

struct SpectrumFixture {
  CasidaProblem problem;
  DriverResult solution;
  SpectrumFixture() {
    const grid::RealSpaceGrid g(grid::UnitCell::cubic(8.0), {10, 10, 10});
    dft::SyntheticOptions opts;
    opts.num_centers = 8;
    opts.seed = 55;
    problem = make_problem_from_synthetic(
        g, dft::make_synthetic_orbitals(g, 4, 3, opts));
    DriverOptions dopts;
    dopts.version = Version::kNaive;
    dopts.num_states = 4;
    solution = solve_casida(problem, dopts);
  }
};

TEST(Spectrum, DipolesHaveExpectedShape) {
  SpectrumFixture f;
  const auto d = transition_dipoles(f.problem);
  EXPECT_EQ(static_cast<Index>(d.size()), f.problem.ncv());
  // Orbitals are bounded in the box, so dipoles are finite and not all
  // identically zero.
  Real total = 0;
  for (const auto& v : d) {
    for (const Real x : v) {
      EXPECT_TRUE(std::isfinite(x));
      total += std::abs(x);
    }
  }
  EXPECT_GT(total, 0.0);
}

TEST(Spectrum, OscillatorStrengthsNonNegativeAndFinite) {
  SpectrumFixture f;
  const Spectrum s = oscillator_spectrum(
      f.problem, f.solution.energies, f.solution.wavefunctions.view());
  ASSERT_EQ(s.strengths.size(), 4u);
  for (const Real strength : s.strengths) {
    EXPECT_GE(strength, 0.0);
    EXPECT_TRUE(std::isfinite(strength));
  }
  EXPECT_EQ(s.energies, f.solution.energies);
}

TEST(Spectrum, AbsorptionPeaksAtStrongTransitions) {
  Spectrum s;
  s.energies = {1.0, 2.0};
  s.strengths = {0.1, 1.0};
  const std::vector<Real> grid = linspace(0.0, 3.0, 301);
  const std::vector<Real> sigma = absorption_spectrum(s, grid, 0.05);
  // Global maximum at the strong transition.
  const auto it = std::max_element(sigma.begin(), sigma.end());
  EXPECT_NEAR(grid[static_cast<std::size_t>(it - sigma.begin())], 2.0, 0.02);
  // Lorentzian area per state ≈ strength (within grid truncation).
  Real integral = 0;
  for (const Real v : sigma) integral += v * (grid[1] - grid[0]);
  EXPECT_NEAR(integral, 1.1, 0.1);
}

TEST(Spectrum, AbsorptionValidation) {
  Spectrum s;
  s.energies = {1.0};
  s.strengths = {1.0, 2.0};  // out of sync
  EXPECT_THROW(absorption_spectrum(s, {0.0}, 0.1), Error);
  s.strengths = {1.0};
  EXPECT_THROW(absorption_spectrum(s, {0.0}, 0.0), Error);
}

TEST(Spectrum, MismatchedInputsThrow) {
  SpectrumFixture f;
  const std::vector<Real> wrong_count = {0.1};
  EXPECT_THROW(oscillator_spectrum(f.problem, wrong_count,
                                   f.solution.wavefunctions.view()),
               Error);
}

}  // namespace
}  // namespace lrt::tddft
