// Distributed one-sided Jacobi eigensolver vs the serial dense solver.
#include <gtest/gtest.h>

#include <cmath>

#include "la/blas.hpp"
#include "la/eig.hpp"
#include "la/ortho.hpp"
#include "par/jacobi_eig.hpp"

namespace lrt::par {
namespace {

la::RealMatrix random_symmetric(Index n, unsigned seed) {
  Rng rng(seed);
  la::RealMatrix a = la::RealMatrix::random_normal(n, n, rng);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < i; ++j) a(j, i) = a(i, j);
  }
  return a;
}

class JacobiSweep
    : public ::testing::TestWithParam<std::pair<int, Index>> {};

TEST_P(JacobiSweep, MatchesSerialEigensolver) {
  const auto [p, n] = GetParam();
  const la::RealMatrix a = random_symmetric(n, static_cast<unsigned>(n));
  const la::EigResult serial = la::syev(a.view());

  run(p, [&](Comm& comm) {
    const JacobiEigResult r = dist_jacobi_syev(comm, a.view());
    EXPECT_TRUE(r.converged) << "p=" << comm.size() << " n=" << n;
    for (Index i = 0; i < n; ++i) {
      EXPECT_NEAR(r.values[static_cast<std::size_t>(i)],
                  serial.values[static_cast<std::size_t>(i)], 1e-7 * n)
          << "eigenvalue " << i;
    }
    // Eigenvector quality: residual and orthogonality.
    la::EigResult check;
    check.values = r.values;
    check.vectors = la::to_matrix<Real>(r.vectors.view());
    EXPECT_LT(la::eig_residual(a.view(), check), 1e-6 * n);
    EXPECT_LT(la::orthogonality_error(r.vectors.view()), 1e-8);
  });
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndSizes, JacobiSweep,
    ::testing::Values(std::make_pair<int, Index>(1, 12),
                      std::make_pair<int, Index>(2, 16),
                      std::make_pair<int, Index>(3, 17),
                      std::make_pair<int, Index>(4, 24)));

TEST(JacobiEig, NegativeSpectraHandledByShift) {
  // All-negative spectrum exercises the Gershgorin shift path.
  const Index n = 10;
  la::RealMatrix a = random_symmetric(n, 3);
  for (Index i = 0; i < n; ++i) a(i, i) -= 50.0;
  const la::EigResult serial = la::syev(a.view());
  run(2, [&](Comm& comm) {
    const JacobiEigResult r = dist_jacobi_syev(comm, a.view());
    EXPECT_TRUE(r.converged);
    for (Index i = 0; i < n; ++i) {
      EXPECT_NEAR(r.values[static_cast<std::size_t>(i)],
                  serial.values[static_cast<std::size_t>(i)], 1e-7);
      EXPECT_LT(r.values[static_cast<std::size_t>(i)], 0);
    }
  });
}

TEST(JacobiEig, DiagonalMatrixConvergesInOneSweep) {
  la::RealMatrix a(6, 6);
  for (Index i = 0; i < 6; ++i) a(i, i) = static_cast<Real>(i);
  run(2, [&](Comm& comm) {
    const JacobiEigResult r = dist_jacobi_syev(comm, a.view());
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.sweeps, 2);
    for (Index i = 0; i < 6; ++i) {
      EXPECT_NEAR(r.values[static_cast<std::size_t>(i)], Real(i), 1e-10);
    }
  });
}

}  // namespace
}  // namespace lrt::par
