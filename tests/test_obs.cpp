// Observability subsystem: span recording, rank aggregation, counters,
// Chrome-trace export, disabled-mode cost, and composition with the
// runtime verifier.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <set>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/bench_report.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "par/comm.hpp"
#include "par/runtime.hpp"

// Global allocation counter for the zero-allocation test. Replacing
// operator new/delete clashes with sanitizer interceptors (and GCC's
// -Wmismatched-new-delete analysis false-positives on the malloc-backed
// definitions), so instrumented builds skip the counting test instead —
// the zero-alloc property is only meaningful uninstrumented anyway.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define LRT_TEST_COUNTS_ALLOCATIONS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define LRT_TEST_COUNTS_ALLOCATIONS 0
#else
#define LRT_TEST_COUNTS_ALLOCATIONS 1
#endif
#else
#define LRT_TEST_COUNTS_ALLOCATIONS 1
#endif

#if LRT_TEST_COUNTS_ALLOCATIONS
namespace {
std::atomic<long long> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // LRT_TEST_COUNTS_ALLOCATIONS

namespace lrt {
namespace {

/// Saves the tracing flag, forces a known state, restores on exit; also
/// clears recorded spans so tests see only their own.
class TracingFixture {
 public:
  explicit TracingFixture(bool enable) : saved_(obs::tracing_enabled()) {
    obs::set_tracing_enabled(enable);
    obs::reset_trace();
  }
  ~TracingFixture() {
    obs::reset_trace();
    obs::set_tracing_enabled(saved_);
  }

 private:
  bool saved_;
};

const obs::PhaseStats* find_phase(const std::vector<obs::PhaseStats>& stats,
                                  const std::string& name) {
  for (const obs::PhaseStats& s : stats) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

/// Burns a few cycles so span durations are nonzero; the atomic store
/// keeps the loop from being optimized away.
void busy_work(int salt) {
  static std::atomic<long long> sink{0};
  long long acc = salt;
  for (int i = 0; i < 10000; ++i) acc += i * (salt + 1);
  sink.fetch_add(acc, std::memory_order_relaxed);
}

TEST(ObsSpan, NestedSpansRecordSeparately) {
  TracingFixture tracing(true);
  {
    obs::Span outer("outer");
    {
      obs::Span inner("inner");
    }
    {
      obs::Span inner("inner");
    }
  }
  const auto stats = obs::aggregate_phases();
  const obs::PhaseStats* outer = find_phase(stats, "outer");
  const obs::PhaseStats* inner = find_phase(stats, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1);
  EXPECT_EQ(inner->count, 2);
  // The outer span contains both inner ones.
  EXPECT_GE(outer->total_seconds, inner->total_seconds);
}

TEST(ObsSpan, EndIsIdempotentAndStopsTheClock) {
  TracingFixture tracing(true);
  obs::Span span("early_end");
  span.end();
  span.end();  // second end must not double-record
  const auto stats = obs::aggregate_phases();
  const obs::PhaseStats* s = find_phase(stats, "early_end");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 1);
}

TEST(ObsSpan, DisabledModeRecordsNothingAndDoesNotAllocate) {
  TracingFixture tracing(false);
  // Warm up: the first span on a thread may lazily create its buffer
  // (only when enabled; disabled spans never touch the registry).
  {
    obs::Span warm("warmup");
  }
#if LRT_TEST_COUNTS_ALLOCATIONS
  const long long before = g_alloc_count.load(std::memory_order_relaxed);
#endif
  for (int i = 0; i < 1000; ++i) {
    obs::Span span("disabled");
  }
#if LRT_TEST_COUNTS_ALLOCATIONS
  const long long after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
#endif
  EXPECT_EQ(obs::span_count(), 0u);
}

TEST(ObsSpan, AggregationAcrossConcurrentRankThreads) {
  TracingFixture tracing(true);
  constexpr int kRanks = 4;
  par::run(kRanks, [](par::Comm& comm) {
    obs::Span span("rank_work");
    busy_work(comm.rank());
  });
  const auto stats = obs::aggregate_phases();
  const obs::PhaseStats* s = find_phase(stats, "rank_work");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, kRanks);
  EXPECT_EQ(s->ranks, kRanks);
  EXPECT_GE(s->max_rank_seconds, s->min_rank_seconds);
  EXPECT_GE(s->imbalance, 1.0);
  EXPECT_NEAR(s->mean_rank_seconds * kRanks, s->total_seconds, 1e-12);
}

TEST(ObsCounters, AccumulateAcrossConcurrentRankThreads) {
  obs::Counter& c = obs::counter("test.obs.rank_adds");
  c.reset();
  constexpr int kRanks = 4;
  constexpr long long kPerRank = 1000;
  par::run(kRanks, [](par::Comm&) {
    obs::Counter& mine = obs::counter("test.obs.rank_adds");
    for (long long i = 0; i < kPerRank; ++i) mine.add(1);
  });
  EXPECT_EQ(c.value(), kRanks * kPerRank);
}

TEST(ObsCounters, SnapshotIsSortedAndResettable) {
  obs::counter("test.obs.zzz").reset();
  obs::counter("test.obs.aaa").add(7);
  const auto snap = obs::snapshot_counters();
  ASSERT_GE(snap.size(), 2u);
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].first, snap[i].first);
  }
  obs::reset_counters();
  for (const auto& [name, value] : obs::snapshot_counters()) {
    EXPECT_EQ(value, 0) << name;
  }
}

TEST(ObsTrace, ChromeExportIsWellFormedWithPerRankTids) {
  TracingFixture tracing(true);
  constexpr int kRanks = 4;
  par::run(kRanks, [](par::Comm& comm) {
    obs::Span span("traced_phase");
    busy_work(comm.rank());
  });
  const std::string path = "test_obs_trace.json";
  ASSERT_TRUE(obs::write_chrome_trace(path));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const obs::json::Value doc = obs::json::parse(buf.str());
  ASSERT_TRUE(doc.is_object());
  const obs::json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::set<long long> tids;
  for (const obs::json::Value& event : events->array) {
    ASSERT_TRUE(event.is_object());
    const obs::json::Value* ph = event.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string != "X") continue;
    const obs::json::Value* name = event.find("name");
    const obs::json::Value* tid = event.find("tid");
    const obs::json::Value* dur = event.find("dur");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(tid, nullptr);
    ASSERT_NE(dur, nullptr);
    EXPECT_GE(dur->number, 0.0);
    if (name->string == "traced_phase") {
      tids.insert(static_cast<long long>(tid->number));
    }
  }
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kRanks));
  std::remove(path.c_str());
}

TEST(ObsTrace, ComposesWithRuntimeVerifier) {
  TracingFixture tracing(true);
  par::check::Options check_opts;
  check_opts.enabled = true;
  par::run(3, [](par::Comm& comm) {
    double x = comm.rank();
    comm.bcast(&x, 1, /*root=*/0);
    comm.allreduce(&x, 1, par::ReduceOp::kSum);
    if (comm.rank() == 0) {
      // The binomial-tree root sends in bcast.
      EXPECT_GT(comm.bytes_sent(par::Traffic::kBcast), 0);
    }
    // Every rank exchanges partials in the single-round allreduce.
    EXPECT_GT(comm.bytes_sent(par::Traffic::kAllreduce), 0);
    // Call counts are per user-facing collective: one explicit bcast and
    // one allreduce (a single-round primitive, not a reduce+bcast pair).
    EXPECT_EQ(comm.calls_made(par::Traffic::kBcast), 1);
    EXPECT_EQ(comm.calls_made(par::Traffic::kReduce), 0);
    EXPECT_EQ(comm.calls_made(par::Traffic::kAllreduce), 1);
    // Backward compat: the flat total is the sum over kinds.
    long long sum = 0;
    for (int k = 0; k < par::kNumTrafficKinds; ++k) {
      sum += comm.bytes_sent(static_cast<par::Traffic>(k));
    }
    EXPECT_EQ(comm.bytes_sent(), sum);
  }, check_opts);
  // Collective spans were recorded while the verifier was active.
  const auto stats = obs::aggregate_phases();
  EXPECT_NE(find_phase(stats, "bcast"), nullptr);
  EXPECT_NE(find_phase(stats, "allreduce"), nullptr);
}

TEST(ObsShim, ScopedPhaseFeedsProfilerAndTrace) {
  TracingFixture tracing(true);
  obs::WallProfiler profiler;
  {
    obs::ScopedPhase phase(profiler, "shim_phase");
  }
  EXPECT_GE(profiler.total("shim_phase"), 0.0);
  ASSERT_EQ(profiler.phases().size(), 1u);
  EXPECT_EQ(profiler.phases()[0], "shim_phase");
  const auto stats = obs::aggregate_phases();
  EXPECT_NE(find_phase(stats, "shim_phase"), nullptr);
}

TEST(ObsBenchReport, JsonRoundTripsWithSchemaAndCounters) {
  obs::counter("test.obs.bench").reset();
  obs::counter("test.obs.bench").add(42);
  obs::BenchReport report("unittest");
  report.meta("note", "round-trip");
  report.record("cfg1")
      .param("ranks", static_cast<long long>(4))
      .param("method", std::string("kmeans"))
      .phase("fft", 0.125)
      .metric("speedup", 2.5)
      .counters_from_registry();

  const obs::json::Value doc = obs::json::parse(report.json());
  ASSERT_TRUE(doc.is_object());
  const obs::json::Value* schema = doc.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string, obs::kBenchSchema);
  const obs::json::Value* records = doc.find("records");
  ASSERT_NE(records, nullptr);
  ASSERT_EQ(records->array.size(), 1u);
  const obs::json::Value& rec = records->array[0];
  EXPECT_EQ(rec.find("label")->string, "cfg1");
  EXPECT_EQ(rec.find("params")->find("ranks")->number, 4.0);
  EXPECT_EQ(rec.find("phases")->find("fft")->number, 0.125);
  EXPECT_EQ(rec.find("metrics")->find("speedup")->number, 2.5);
  const obs::json::Value* counters = rec.find("counters");
  ASSERT_NE(counters, nullptr);
  const obs::json::Value* bench_counter = counters->find("test.obs.bench");
  ASSERT_NE(bench_counter, nullptr);
  EXPECT_EQ(bench_counter->number, 42.0);
  const obs::json::Value* build = doc.find("build");
  ASSERT_NE(build, nullptr);
  EXPECT_NE(build->find("compiler"), nullptr);
}

TEST(ObsJson, ParseRejectsMalformedInput) {
  EXPECT_THROW(obs::json::parse("{\"a\":"), Error);
  EXPECT_THROW(obs::json::parse("[1,2,]"), Error);
  EXPECT_THROW(obs::json::parse("{} trailing"), Error);
  const obs::json::Value v =
      obs::json::parse("{\"s\":\"\\u00e9\",\"n\":-1.5e3,\"b\":true}");
  EXPECT_EQ(v.find("s")->string, "\xc3\xa9");
  EXPECT_EQ(v.find("n")->number, -1500.0);
  EXPECT_TRUE(v.find("b")->boolean);
}

}  // namespace
}  // namespace lrt
