// Casida Hamiltonian construction: naive vs ISDF vs implicit consistency
// — the central correctness chain of the reproduction.
#include <gtest/gtest.h>

#include <cmath>

#include "dft/synthetic.hpp"
#include "la/blas.hpp"
#include "la/eig.hpp"
#include "tddft/casida_isdf.hpp"
#include "tddft/driver.hpp"
#include "tddft/implicit_hamiltonian.hpp"

namespace lrt::tddft {
namespace {

CasidaProblem make_test_problem(Index nv = 5, Index nc = 4) {
  const grid::RealSpaceGrid g(grid::UnitCell::cubic(8.0), {10, 10, 10});
  dft::SyntheticOptions opts;
  opts.num_centers = 8;
  opts.seed = 42;
  return make_problem_from_synthetic(
      g, dft::make_synthetic_orbitals(g, nv, nc, opts));
}

HxcKernel make_kernel(const CasidaProblem& p, bool xc = true) {
  const grid::GVectors gv(p.grid);
  return HxcKernel(p.grid, gv, p.ground_density, xc);
}

TEST(EnergyDifferences, PairOrderingAndValues) {
  CasidaProblem p = make_test_problem(2, 3);
  p.eps_v = {-0.4, -0.2};
  p.eps_c = {0.1, 0.2, 0.5};
  const std::vector<Real> d = energy_differences(p);
  ASSERT_EQ(d.size(), 6u);
  EXPECT_DOUBLE_EQ(d[0], 0.5);   // (iv=0, ic=0)
  EXPECT_DOUBLE_EQ(d[2], 0.9);   // (iv=0, ic=2)
  EXPECT_DOUBLE_EQ(d[3], 0.3);   // (iv=1, ic=0)
  EXPECT_DOUBLE_EQ(d[5], 0.7);
}

TEST(NaiveHamiltonian, IsSymmetricWithDOnDiagonalTail) {
  const CasidaProblem p = make_test_problem();
  const HxcKernel kernel = make_kernel(p);
  obs::WallProfiler profiler;
  const la::RealMatrix h = build_hamiltonian_naive(p, kernel, &profiler);

  EXPECT_EQ(h.rows(), p.ncv());
  for (Index i = 0; i < h.rows(); ++i) {
    for (Index j = 0; j < i; ++j) {
      EXPECT_NEAR(h(i, j), h(j, i), 1e-10);
    }
  }
  // Diagonal dominated by D (the Hxc correction is a fraction of it).
  const std::vector<Real> d = energy_differences(p);
  for (Index i = 0; i < h.rows(); ++i) {
    EXPECT_NEAR(h(i, i), d[static_cast<std::size_t>(i)],
                0.8 * std::abs(d[static_cast<std::size_t>(i)]) + 0.3);
  }
  EXPECT_GT(profiler.total("pair_product"), 0.0);
  EXPECT_GT(profiler.total("fft"), 0.0);
  EXPECT_GT(profiler.total("gemm"), 0.0);
}

TEST(IsdfHamiltonian, ConvergesToNaiveAsNmuGrows) {
  // The headline accuracy claim: with enough interpolation points the
  // ISDF Hamiltonian reproduces the naive one.
  const CasidaProblem p = make_test_problem();
  const HxcKernel kernel = make_kernel(p);
  const la::RealMatrix h_naive = build_hamiltonian_naive(p, kernel);

  Real previous = 1e9;
  for (const Index nmu : {8, 14, 20}) {
    isdf::IsdfOptions opts;
    opts.nmu = nmu;
    opts.method = isdf::PointMethod::kQrcp;
    const isdf::IsdfResult dec =
        isdf_decompose(p.grid, p.psi_v.view(), p.psi_c.view(), opts);
    const la::RealMatrix h_isdf = build_hamiltonian_isdf(p, dec, kernel);
    const Real err = la::max_abs_diff(h_naive.view(), h_isdf.view()) /
                     la::max_abs(h_naive.view());
    EXPECT_LT(err, previous * 1.5) << "Nμ=" << nmu;
    previous = err;
  }
  // At Nμ = Ncv (full rank) the two must coincide to solver precision.
  isdf::IsdfOptions full;
  full.nmu = p.ncv();
  full.method = isdf::PointMethod::kQrcp;
  full.qrcp.randomized = false;
  const isdf::IsdfResult dec =
      isdf_decompose(p.grid, p.psi_v.view(), p.psi_c.view(), full);
  const la::RealMatrix h_isdf = build_hamiltonian_isdf(p, dec, kernel);
  EXPECT_LT(la::max_abs_diff(h_naive.view(), h_isdf.view()), 5e-4);
}

TEST(KernelProjection, IsSymmetric) {
  const CasidaProblem p = make_test_problem();
  const HxcKernel kernel = make_kernel(p);
  isdf::IsdfOptions opts;
  opts.nmu = 12;
  const isdf::IsdfResult dec =
      isdf_decompose(p.grid, p.psi_v.view(), p.psi_c.view(), opts);
  const la::RealMatrix m = build_kernel_projection(dec, kernel);
  EXPECT_EQ(m.rows(), 12);
  for (Index i = 0; i < 12; ++i) {
    for (Index j = 0; j < i; ++j) {
      EXPECT_DOUBLE_EQ(m(i, j), m(j, i));
    }
  }
}

TEST(ImplicitHamiltonian, ApplyMatchesExplicitIsdfMatrix) {
  const CasidaProblem p = make_test_problem();
  const HxcKernel kernel = make_kernel(p);
  isdf::IsdfOptions opts;
  opts.nmu = 16;
  const isdf::IsdfResult dec =
      isdf_decompose(p.grid, p.psi_v.view(), p.psi_c.view(), opts);
  const la::RealMatrix h_explicit = build_hamiltonian_isdf(p, dec, kernel);
  const la::RealMatrix m = build_kernel_projection(dec, kernel);
  const ImplicitHamiltonian h_implicit =
      make_implicit_hamiltonian(energy_differences(p), dec, m);

  Rng rng(3);
  const la::RealMatrix x = la::RealMatrix::random_normal(p.ncv(), 3, rng);
  la::RealMatrix y_implicit(p.ncv(), 3);
  h_implicit.apply(x.view(), y_implicit.view());
  const la::RealMatrix y_explicit =
      la::gemm(la::Trans::kNo, la::Trans::kNo, h_explicit.view(), x.view());
  EXPECT_LT(la::max_abs_diff(y_implicit.view(), y_explicit.view()),
            1e-9 * (1 + la::max_abs(y_explicit.view())));
}

TEST(ImplicitHamiltonian, FactoredCApplicationsMatchExplicitC) {
  const CasidaProblem p = make_test_problem(4, 3);
  isdf::IsdfOptions opts;
  opts.nmu = 10;
  const isdf::IsdfResult dec =
      isdf_decompose(p.grid, p.psi_v.view(), p.psi_c.view(), opts);
  la::RealMatrix m = la::RealMatrix::identity(10);
  const ImplicitHamiltonian h = make_implicit_hamiltonian(
      energy_differences(p), dec, std::move(m));

  Rng rng(4);
  const la::RealMatrix x = la::RealMatrix::random_normal(p.ncv(), 2, rng);
  const la::RealMatrix cx = h.apply_c(x.view());
  const la::RealMatrix cx_explicit =
      la::gemm(la::Trans::kNo, la::Trans::kNo, dec.c.view(), x.view());
  EXPECT_LT(la::max_abs_diff(cx.view(), cx_explicit.view()), 1e-10);

  const la::RealMatrix w = la::RealMatrix::random_normal(10, 2, rng);
  const la::RealMatrix ctw = h.apply_ct(w.view());
  const la::RealMatrix ctw_explicit =
      la::gemm(la::Trans::kYes, la::Trans::kNo, dec.c.view(), w.view());
  EXPECT_LT(la::max_abs_diff(ctw.view(), ctw_explicit.view()), 1e-10);
}

TEST(ImplicitHamiltonian, MemoryFootprintIsFactored) {
  const CasidaProblem p = make_test_problem(6, 5);
  isdf::IsdfOptions opts;
  opts.nmu = 12;
  opts.build_coefficients = false;
  const isdf::IsdfResult dec =
      isdf_decompose(p.grid, p.psi_v.view(), p.psi_c.view(), opts);
  const ImplicitHamiltonian h = make_implicit_hamiltonian(
      energy_differences(p), dec, la::RealMatrix::identity(12));
  // Factored storage ≈ Nμ² + Nμ(Nv+Nc) + NvNc words — far below the
  // explicit (NvNc)² matrix.
  const double explicit_bytes =
      sizeof(Real) * double(p.ncv()) * double(p.ncv());
  EXPECT_LT(h.memory_bytes(), explicit_bytes);
  EXPECT_EQ(h.dimension(), p.ncv());
  EXPECT_EQ(h.nmu(), 12);
}

TEST(DenseDiagonalization, ReturnsLowestStates) {
  la::RealMatrix h{{2, 0, 0}, {0, 1, 0}, {0, 0, 3}};
  const CasidaSolution s = diagonalize_dense(h, 2);
  ASSERT_EQ(s.energies.size(), 2u);
  EXPECT_NEAR(s.energies[0], 1.0, 1e-12);
  EXPECT_NEAR(s.energies[1], 2.0, 1e-12);
  EXPECT_EQ(s.wavefunctions.cols(), 2);
}

}  // namespace
}  // namespace lrt::tddft
