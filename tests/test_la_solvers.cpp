// Cholesky, LU, and least-squares solver tests.
#include <gtest/gtest.h>

#include <cmath>

#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/lstsq.hpp"
#include "la/lu.hpp"

namespace lrt::la {
namespace {

RealMatrix random_spd(Index n, Rng& rng) {
  const RealMatrix a = RealMatrix::random_normal(n, n, rng);
  RealMatrix g = gram(a.view());
  for (Index i = 0; i < n; ++i) g(i, i) += static_cast<Real>(n);
  return g;
}

TEST(Cholesky, FactorReconstructs) {
  Rng rng(1);
  const RealMatrix a = random_spd(8, rng);
  const RealMatrix l = cholesky(a.view());
  const RealMatrix llt = gemm(Trans::kNo, Trans::kYes, l.view(), l.view());
  EXPECT_LT(max_abs_diff(llt.view(), a.view()), 1e-10);
  // Strict upper triangle is zero.
  for (Index i = 0; i < 8; ++i) {
    for (Index j = i + 1; j < 8; ++j) EXPECT_DOUBLE_EQ(l(i, j), 0.0);
  }
}

TEST(Cholesky, IndefiniteThrows) {
  RealMatrix a{{1, 0}, {0, -1}};
  EXPECT_THROW(cholesky(a.view()), Error);
  RealMatrix l;
  EXPECT_FALSE(try_cholesky(a.view(), l));
}

TEST(Cholesky, SolveSpd) {
  Rng rng(2);
  const RealMatrix a = random_spd(10, rng);
  const RealMatrix x_true = RealMatrix::random_normal(10, 3, rng);
  const RealMatrix b = gemm(Trans::kNo, Trans::kNo, a.view(), x_true.view());
  const RealMatrix x = solve_spd(a.view(), b.view());
  EXPECT_LT(max_abs_diff(x.view(), x_true.view()), 1e-9);
}

TEST(Cholesky, SpdInverse) {
  Rng rng(3);
  const RealMatrix a = random_spd(6, rng);
  const RealMatrix inv = spd_inverse(a.view());
  const RealMatrix prod = gemm(Trans::kNo, Trans::kNo, a.view(), inv.view());
  EXPECT_LT(max_abs_diff(prod.view(), RealMatrix::identity(6).view()), 1e-10);
}

TEST(Lu, SolveGeneral) {
  Rng rng(4);
  const RealMatrix a = RealMatrix::random_normal(12, 12, rng);
  const RealMatrix x_true = RealMatrix::random_normal(12, 2, rng);
  const RealMatrix b = gemm(Trans::kNo, Trans::kNo, a.view(), x_true.view());
  const RealMatrix x = solve(a.view(), b.view());
  EXPECT_LT(max_abs_diff(x.view(), x_true.view()), 1e-8);
}

TEST(Lu, SingularThrows) {
  RealMatrix a{{1, 2}, {2, 4}};
  EXPECT_THROW(lu_factor(a.view()), Error);
}

TEST(Lu, DeterminantKnownValues) {
  RealMatrix a{{2, 0}, {0, 3}};
  EXPECT_NEAR(determinant(a.view()), 6.0, 1e-12);
  RealMatrix b{{0, 1}, {1, 0}};  // permutation, det = -1
  EXPECT_NEAR(determinant(b.view()), -1.0, 1e-12);
}

TEST(Lstsq, QrSolvesConsistentSystemExactly) {
  Rng rng(5);
  const RealMatrix a = RealMatrix::random_normal(20, 6, rng);
  const RealMatrix x_true = RealMatrix::random_normal(6, 2, rng);
  const RealMatrix b = gemm(Trans::kNo, Trans::kNo, a.view(), x_true.view());
  const RealMatrix x = lstsq_qr(a.view(), b.view());
  EXPECT_LT(max_abs_diff(x.view(), x_true.view()), 1e-10);
}

TEST(Lstsq, ResidualIsOrthogonalToRange) {
  // Least-squares optimality: Aᵀ(Ax - b) = 0.
  Rng rng(6);
  const RealMatrix a = RealMatrix::random_normal(15, 4, rng);
  const RealMatrix b = RealMatrix::random_normal(15, 1, rng);
  const RealMatrix x = lstsq_qr(a.view(), b.view());
  RealMatrix residual = b;
  gemm(Trans::kNo, Trans::kNo, -1.0, a.view(), x.view(), 1.0,
       residual.view());
  const RealMatrix atr =
      gemm(Trans::kYes, Trans::kNo, a.view(), residual.view());
  EXPECT_LT(max_abs(atr.view()), 1e-10);
}

TEST(Lstsq, SolveGramFromRightMatchesDirect) {
  // X (C Cᵀ) = B with well-conditioned C.
  Rng rng(7);
  const RealMatrix c = RealMatrix::random_normal(5, 30, rng);
  const RealMatrix cct = gemm(Trans::kNo, Trans::kYes, c.view(), c.view());
  const RealMatrix x_true = RealMatrix::random_normal(8, 5, rng);
  const RealMatrix b =
      gemm(Trans::kNo, Trans::kNo, x_true.view(), cct.view());
  const RealMatrix x = solve_gram_from_right(b.view(), cct.view());
  EXPECT_LT(max_abs_diff(x.view(), x_true.view()), 1e-8);
}

TEST(Lstsq, SolveGramSurvivesRankDeficiency) {
  // Singular Gram matrix: the ridge fallback must not throw and must
  // satisfy the normal equations approximately.
  RealMatrix cct{{1, 1}, {1, 1}};  // rank 1
  RealMatrix b{{2, 2}};
  const RealMatrix x = solve_gram_from_right(b.view(), cct.view());
  const RealMatrix back =
      gemm(Trans::kNo, Trans::kNo, x.view(), cct.view());
  EXPECT_NEAR(back(0, 0), 2.0, 1e-5);
  EXPECT_NEAR(back(0, 1), 2.0, 1e-5);
}

}  // namespace
}  // namespace lrt::la
