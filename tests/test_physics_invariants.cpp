// Cross-module physics invariants: symmetries that any correct
// implementation must respect regardless of parameters.
#include <gtest/gtest.h>

#include <cmath>

#include "dft/scf.hpp"
#include "tddft/driver.hpp"

namespace lrt {
namespace {

TEST(PhysicsInvariants, ScfEnergyIsTranslationInvariant) {
  // Rigidly translating every atom by a GRID-COMMENSURATE vector
  // (periodic wrap included) must leave the total energy and the spectrum
  // unchanged: at these coarse cutoffs an arbitrary shift suffers the
  // egg-box discretization error, but integer-grid shifts are an exact
  // symmetry — exercising the phase factors of the pseudopotential
  // builder, the Ewald sum, and the projector tabulation together.
  dft::ScfOptions opts;
  opts.ecut = 5.0;
  opts.num_conduction = 6;  // smearing needs tail headroom (see test_dft_scf)
  opts.smearing = 0.005;
  opts.density_tolerance = 1e-4;
  opts.max_iterations = 40;

  grid::Structure base = grid::make_silicon_supercell(1);
  const dft::KohnShamResult a = dft::solve_ground_state(base, opts);

  // Shift by integer grid steps along each axis.
  const auto shape = a.grid.shape();
  const grid::Vec3 t = {2.0 * base.cell.length(0) / Real(shape[0]),
                        3.0 * base.cell.length(1) / Real(shape[1]),
                        1.0 * base.cell.length(2) / Real(shape[2])};
  grid::Structure shifted = base;
  for (auto& atom : shifted.atoms) {
    atom.position = shifted.cell.wrap({atom.position[0] + t[0],
                                       atom.position[1] + t[1],
                                       atom.position[2] + t[2]});
  }
  const dft::KohnShamResult b = dft::solve_ground_state(shifted, opts);

  EXPECT_TRUE(a.converged);
  EXPECT_TRUE(b.converged);
  EXPECT_NEAR(a.total_energy, b.total_energy, 1e-4 * std::abs(a.total_energy));
  for (std::size_t i = 0; i < a.eigenvalues.size(); ++i) {
    EXPECT_NEAR(a.eigenvalues[i], b.eigenvalues[i], 1e-3) << "band " << i;
  }
}

TEST(PhysicsInvariants, ExcitationsAreGaugeInvariant) {
  // Flipping the sign of any Kohn-Sham orbital is a gauge change: every
  // excitation energy must be identical.
  const grid::RealSpaceGrid g(grid::UnitCell::cubic(8.0), {10, 10, 10});
  dft::SyntheticOptions sopts;
  sopts.num_centers = 8;
  sopts.seed = 61;
  tddft::CasidaProblem problem = tddft::make_problem_from_synthetic(
      g, dft::make_synthetic_orbitals(g, 4, 3, sopts));

  tddft::DriverOptions opts;
  opts.version = tddft::Version::kNaive;
  opts.num_states = 4;
  const tddft::DriverResult original = tddft::solve_casida(problem, opts);

  // Flip ψ_v[1] and ψ_c[2].
  for (Index i = 0; i < problem.nr(); ++i) {
    problem.psi_v(i, 1) = -problem.psi_v(i, 1);
    problem.psi_c(i, 2) = -problem.psi_c(i, 2);
  }
  const tddft::DriverResult flipped = tddft::solve_casida(problem, opts);
  for (Index j = 0; j < 4; ++j) {
    EXPECT_NEAR(original.energies[static_cast<std::size_t>(j)],
                flipped.energies[static_cast<std::size_t>(j)], 1e-10);
  }
}

TEST(PhysicsInvariants, ExcitationsBoundedBelowByGapMinusCoupling) {
  // TDA with a positive-semidefinite Hartree-dominated kernel keeps the
  // lowest excitation near or above the KS gap minus the xc softening —
  // in particular it must stay positive for a gapped problem.
  const grid::RealSpaceGrid g(grid::UnitCell::cubic(8.0), {10, 10, 10});
  dft::SyntheticOptions sopts;
  sopts.num_centers = 8;
  sopts.gap = 0.2;
  sopts.seed = 62;
  const tddft::CasidaProblem problem = tddft::make_problem_from_synthetic(
      g, dft::make_synthetic_orbitals(g, 4, 3, sopts));
  tddft::DriverOptions opts;
  opts.version = tddft::Version::kNaive;
  opts.num_states = 3;
  const tddft::DriverResult r = tddft::solve_casida(problem, opts);
  EXPECT_GT(r.energies[0], 0.0);
  // RPA-only (Hartree) kernel can only push excitations UP from D.
  tddft::DriverOptions rpa = opts;
  rpa.include_xc = false;
  const tddft::DriverResult rr = tddft::solve_casida(problem, rpa);
  const std::vector<Real> d = tddft::energy_differences(problem);
  const Real d_min = *std::min_element(d.begin(), d.end());
  EXPECT_GE(rr.energies[0], d_min - 1e-10);
}

TEST(PhysicsInvariants, KernelScalesWithCellVolume) {
  // The same dimensionless problem in a scaled cell: Hartree couplings
  // scale as 1/L (Coulomb), so excitation corrections shrink for larger
  // boxes while D stays fixed. Verifies the dv/volume bookkeeping chain.
  dft::SyntheticOptions sopts;
  sopts.num_centers = 8;
  sopts.seed = 63;

  auto lowest_shift = [&](Real box) {
    const grid::RealSpaceGrid g(grid::UnitCell::cubic(box), {10, 10, 10});
    sopts.width = 0.22 * box;  // scale orbitals with the box
    const tddft::CasidaProblem problem = tddft::make_problem_from_synthetic(
        g, dft::make_synthetic_orbitals(g, 4, 3, sopts));
    tddft::DriverOptions opts;
    opts.version = tddft::Version::kNaive;
    opts.num_states = 1;
    opts.include_xc = false;  // pure Coulomb for clean scaling
    const tddft::DriverResult r = tddft::solve_casida(problem, opts);
    const std::vector<Real> d = tddft::energy_differences(problem);
    return r.energies[0] - *std::min_element(d.begin(), d.end());
  };

  const Real shift_small = lowest_shift(6.0);
  const Real shift_large = lowest_shift(12.0);
  EXPECT_GT(shift_small, 0);
  // 2x box -> roughly half the Coulomb shift (loose factor for shape
  // mixing).
  EXPECT_LT(shift_large, 0.8 * shift_small);
}

}  // namespace
}  // namespace lrt
