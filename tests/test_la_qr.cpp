// Householder QR: reconstruction, orthogonality, Q application, and
// triangular solves.
#include <gtest/gtest.h>

#include "la/blas.hpp"
#include "la/ortho.hpp"
#include "la/qr.hpp"

namespace lrt::la {
namespace {

class QrShapes : public ::testing::TestWithParam<std::pair<Index, Index>> {};

TEST_P(QrShapes, ReconstructsAndIsOrthogonal) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<unsigned>(m * 100 + n));
  const RealMatrix a = RealMatrix::random_uniform(m, n, rng);
  const QrFactors f = qr_factor(a.view());
  const RealMatrix q = qr_form_q(f, n);
  const RealMatrix r = qr_form_r(f);

  EXPECT_LT(orthogonality_error(q.view()), 1e-12);
  const RealMatrix qr = gemm(Trans::kNo, Trans::kNo, q.view(), r.view());
  EXPECT_LT(max_abs_diff(qr.view(), a.view()), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    TallAndSquare, QrShapes,
    ::testing::Values(std::make_pair<Index, Index>(1, 1),
                      std::make_pair<Index, Index>(5, 5),
                      std::make_pair<Index, Index>(20, 5),
                      std::make_pair<Index, Index>(100, 30),
                      std::make_pair<Index, Index>(257, 64)));

TEST(Qr, WideMatrixRejected) {
  RealMatrix a(2, 5);
  EXPECT_THROW(qr_factor(a.view()), Error);
}

TEST(Qr, ApplyQtThenQIsIdentity) {
  Rng rng(2);
  const RealMatrix a = RealMatrix::random_uniform(12, 4, rng);
  const QrFactors f = qr_factor(a.view());
  const RealMatrix b = RealMatrix::random_uniform(12, 3, rng);
  RealMatrix work = b;
  qr_apply_qt(f, work.view());
  qr_apply_q(f, work.view());
  EXPECT_LT(max_abs_diff(work.view(), b.view()), 1e-12);
}

TEST(Qr, QtAMatchesR) {
  Rng rng(8);
  const RealMatrix a = RealMatrix::random_uniform(10, 4, rng);
  const QrFactors f = qr_factor(a.view());
  RealMatrix qta = a;
  qr_apply_qt(f, qta.view());
  const RealMatrix r = qr_form_r(f);
  for (Index i = 0; i < 4; ++i) {
    for (Index j = 0; j < 4; ++j) {
      EXPECT_NEAR(qta(i, j), r(i, j), 1e-12);
    }
  }
  // Rows below the triangle must be annihilated.
  for (Index i = 4; i < 10; ++i) {
    for (Index j = 0; j < 4; ++j) {
      EXPECT_NEAR(qta(i, j), 0.0, 1e-12);
    }
  }
}

TEST(TriangularSolves, UpperLowerAndTransposed) {
  RealMatrix l{{2, 0, 0}, {1, 3, 0}, {-1, 2, 4}};
  const RealMatrix u = transpose<Real>(l.view());
  Rng rng(3);
  const RealMatrix x_true = RealMatrix::random_uniform(3, 2, rng);

  // L x = b
  RealMatrix b = gemm(Trans::kNo, Trans::kNo, l.view(), x_true.view());
  solve_lower_triangular(l.view(), b.view());
  EXPECT_LT(max_abs_diff(b.view(), x_true.view()), 1e-12);

  // U x = b
  b = gemm(Trans::kNo, Trans::kNo, u.view(), x_true.view());
  solve_upper_triangular(u.view(), b.view());
  EXPECT_LT(max_abs_diff(b.view(), x_true.view()), 1e-12);

  // Lᵀ x = b
  b = gemm(Trans::kYes, Trans::kNo, l.view(), x_true.view());
  solve_lower_transposed(l.view(), b.view());
  EXPECT_LT(max_abs_diff(b.view(), x_true.view()), 1e-12);
}

TEST(TriangularSolves, SingularThrows) {
  RealMatrix l{{1, 0}, {2, 0}};
  RealMatrix b(2, 1);
  EXPECT_THROW(solve_lower_triangular(l.view(), b.view()), Error);
}

}  // namespace
}  // namespace lrt::la
