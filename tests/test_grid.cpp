// Unit cell, real-space grid, G-vectors, and crystal builders.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "grid/crystal.hpp"
#include "grid/gvectors.hpp"
#include "grid/rsgrid.hpp"

namespace lrt::grid {
namespace {

TEST(UnitCell, VolumeAndReciprocal) {
  const UnitCell cell({2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cell.volume(), 24.0);
  EXPECT_DOUBLE_EQ(cell.reciprocal(0), constants::kPi);
  EXPECT_THROW(UnitCell({1.0, -1.0, 1.0}), Error);
}

TEST(UnitCell, MinimumImageWraps) {
  const UnitCell cell = UnitCell::cubic(10.0);
  const Vec3 d = cell.minimum_image({1, 1, 1}, {9.5, 1, 1});
  EXPECT_NEAR(d[0], -1.5, 1e-14);  // wrapped, not +8.5
  EXPECT_NEAR(d[1], 0.0, 1e-14);
}

TEST(UnitCell, WrapIntoCell) {
  const UnitCell cell = UnitCell::cubic(5.0);
  const Vec3 w = cell.wrap({-1.0, 6.0, 2.5});
  EXPECT_NEAR(w[0], 4.0, 1e-14);
  EXPECT_NEAR(w[1], 1.0, 1e-14);
  EXPECT_NEAR(w[2], 2.5, 1e-14);
}

TEST(RealSpaceGrid, CutoffRuleMatchesPaperFormula) {
  // (Nr)_i = sqrt(2 Ecut) L_i / π, rounded up.
  const UnitCell cell = UnitCell::cubic(10.0);
  const RealSpaceGrid g = RealSpaceGrid::from_cutoff(cell, 8.0);
  const Real ideal = std::sqrt(16.0) * 10.0 / constants::kPi;  // 12.73
  EXPECT_EQ(g.shape()[0], static_cast<Index>(std::ceil(ideal)));
}

TEST(RealSpaceGrid, FlattenRoundTrip) {
  const RealSpaceGrid g(UnitCell::cubic(4.0), {3, 4, 5});
  EXPECT_EQ(g.size(), 60);
  for (Index f = 0; f < g.size(); ++f) {
    const auto idx = g.unflatten(f);
    EXPECT_EQ(g.flat_index(idx[0], idx[1], idx[2]), f);
  }
}

TEST(RealSpaceGrid, PositionsAndVolumeElement) {
  const RealSpaceGrid g(UnitCell::cubic(6.0), {3, 3, 3});
  EXPECT_DOUBLE_EQ(g.dv(), 216.0 / 27.0);
  const Vec3 p = g.position(g.flat_index(1, 2, 0));
  EXPECT_DOUBLE_EQ(p[0], 2.0);
  EXPECT_DOUBLE_EQ(p[1], 4.0);
  EXPECT_DOUBLE_EQ(p[2], 0.0);
  EXPECT_EQ(static_cast<Index>(g.positions().size()), g.size());
}

TEST(GVectors, FrequencyWrapAndG2) {
  const RealSpaceGrid g(UnitCell::cubic(constants::kTwoPi), {4, 4, 4});
  const GVectors gv(g);  // b = 1 for this cell
  EXPECT_DOUBLE_EQ(gv.g2(0), 0.0);
  // Index (0,0,1) -> G = (0,0,1).
  EXPECT_DOUBLE_EQ(gv.g2(g.flat_index(0, 0, 1)), 1.0);
  // Index (0,0,3) wraps to -1.
  EXPECT_DOUBLE_EQ(gv.g2(g.flat_index(0, 0, 3)), 1.0);
  // Index (2,0,0) is the Nyquist +2.
  EXPECT_DOUBLE_EQ(gv.g2(g.flat_index(2, 0, 0)), 4.0);
  const Vec3 gvec = gv.g(g.flat_index(0, 3, 0));
  EXPECT_DOUBLE_EQ(gvec[1], -1.0);
}

TEST(GVectors, CutoffCountGrowsWithEcut) {
  const RealSpaceGrid g(UnitCell::cubic(10.0), {12, 12, 12});
  const GVectors gv(g);
  const Index small = gv.count_within_cutoff(0.5);
  const Index large = gv.count_within_cutoff(4.0);
  EXPECT_GT(large, small);
  EXPECT_GE(small, 1);  // at least G = 0
}

TEST(Crystal, SiliconSupercellCounts) {
  for (const Index n : {Index{1}, Index{2}}) {
    const Structure s = make_silicon_supercell(n);
    EXPECT_EQ(s.num_atoms(), 8 * n * n * n);
    EXPECT_DOUBLE_EQ(s.num_electrons(), 4.0 * 8 * n * n * n);
    EXPECT_EQ(s.num_occupied(), 16 * n * n * n);
    // All atoms inside the cell.
    for (const Atom& a : s.atoms) {
      for (int ax = 0; ax < 3; ++ax) {
        EXPECT_GE(a.position[static_cast<std::size_t>(ax)], 0.0);
        EXPECT_LT(a.position[static_cast<std::size_t>(ax)],
                  s.cell.length(ax) + 1e-12);
      }
    }
  }
}

TEST(Crystal, SiliconNearestNeighborDistance) {
  // Diamond nearest-neighbor distance is a * sqrt(3)/4 ≈ 2.35 Å.
  const Structure s = make_silicon_supercell(1);
  const Real a = 5.431 * units::kAngstromToBohr;
  Real min_dist = 1e9;
  for (Index i = 0; i < s.num_atoms(); ++i) {
    for (Index j = 0; j < s.num_atoms(); ++j) {
      if (i == j) continue;
      const Vec3 d = s.cell.minimum_image(
          s.atoms[static_cast<std::size_t>(i)].position,
          s.atoms[static_cast<std::size_t>(j)].position);
      min_dist = std::min(min_dist, std::sqrt(norm2(d)));
    }
  }
  EXPECT_NEAR(min_dist, a * std::sqrt(3.0) / 4.0, 1e-10);
}

TEST(Crystal, WaterGeometry) {
  const Structure s = make_water_box(20.0);
  ASSERT_EQ(s.num_atoms(), 3);
  EXPECT_DOUBLE_EQ(s.num_electrons(), 8.0);
  EXPECT_EQ(s.num_occupied(), 4);
  const Vec3 d1 = s.cell.minimum_image(s.atoms[0].position,
                                       s.atoms[1].position);
  EXPECT_NEAR(std::sqrt(norm2(d1)), 0.9572 * units::kAngstromToBohr, 1e-10);
}

TEST(Crystal, BilayerGrapheneStacking) {
  const Real dz = 2.6 * units::kAngstromToBohr;
  const Structure s = make_bilayer_graphene(2, 1, dz, 4.0);
  EXPECT_EQ(s.num_atoms(), 2 * 4 * 2);  // 4 atoms/cell/layer, 2 cells, 2 layers
  // Exactly two distinct z planes separated by dz.
  std::set<long long> zs;
  for (const Atom& a : s.atoms) {
    zs.insert(static_cast<long long>(std::llround(a.position[2] * 1e6)));
  }
  EXPECT_EQ(zs.size(), 2u);
  const Real z_low = static_cast<Real>(*zs.begin()) * 1e-6;
  const Real z_high = static_cast<Real>(*zs.rbegin()) * 1e-6;
  // z values were keyed at 1e-6 resolution above, so compare at 1e-5.
  EXPECT_NEAR(z_high - z_low, dz, 1e-5);
}

TEST(Crystal, SpeciesData) {
  EXPECT_DOUBLE_EQ(species_silicon().z_ion, 4.0);
  EXPECT_DOUBLE_EQ(species_oxygen().z_ion, 6.0);
  EXPECT_DOUBLE_EQ(species_hydrogen().z_ion, 1.0);
  EXPECT_DOUBLE_EQ(species_carbon().z_ion, 4.0);
  EXPECT_GT(species_silicon().r_loc, 0.0);
}

}  // namespace
}  // namespace lrt::grid
