// Matrix / view semantics: indexing, blocks, copies, transpose.
#include <gtest/gtest.h>

#include "la/matrix.hpp"

namespace lrt::la {
namespace {

TEST(Matrix, ConstructAndIndex) {
  RealMatrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Matrix, InitializerList) {
  RealMatrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((RealMatrix{{1, 2}, {3}}), Error);
}

TEST(Matrix, Identity) {
  const RealMatrix eye = RealMatrix::identity(3);
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(eye(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, NegativeDimensionsThrow) {
  EXPECT_THROW(RealMatrix(-1, 2), Error);
}

TEST(MatrixView, BlockIsAliasedWindow) {
  RealMatrix m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  RealView b = m.view().block(1, 1, 2, 2);
  EXPECT_EQ(b.rows(), 2);
  EXPECT_EQ(b.cols(), 2);
  EXPECT_DOUBLE_EQ(b(0, 0), 5.0);
  b(0, 0) = -5.0;
  EXPECT_DOUBLE_EQ(m(1, 1), -5.0);  // writes through
}

TEST(MatrixView, RowAndColBlocks) {
  RealMatrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_DOUBLE_EQ(m.view().rows_block(1, 1)(0, 2), 6.0);
  EXPECT_DOUBLE_EQ(m.view().cols_block(2, 1)(1, 0), 6.0);
}

TEST(MatrixView, FillOnStridedBlock) {
  RealMatrix m(3, 3);
  m.view().block(0, 1, 3, 1).fill(7.0);
  for (Index i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(m(i, 1), 7.0);
    EXPECT_DOUBLE_EQ(m(i, 0), 0.0);
    EXPECT_DOUBLE_EQ(m(i, 2), 0.0);
  }
}

TEST(MatrixOps, CopyHandlesStrides) {
  RealMatrix src{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  RealMatrix dst(2, 2);
  copy<Real>(src.view().block(0, 1, 2, 2), dst.view());
  EXPECT_DOUBLE_EQ(dst(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(dst(1, 1), 6.0);
}

TEST(MatrixOps, CopyShapeMismatchThrows) {
  RealMatrix a(2, 2), b(2, 3);
  EXPECT_THROW(copy<Real>(a.view(), b.view()), Error);
}

TEST(MatrixOps, Transpose) {
  RealMatrix m{{1, 2, 3}, {4, 5, 6}};
  const RealMatrix t = transpose<Real>(m.view());
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
}

TEST(MatrixOps, ToMatrixFromStridedView) {
  RealMatrix m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  const RealMatrix sub = to_matrix<Real>(m.view().block(1, 0, 2, 2));
  EXPECT_EQ(sub.rows(), 2);
  EXPECT_DOUBLE_EQ(sub(1, 1), 8.0);
}

TEST(Matrix, RandomReproducible) {
  Rng r1(9), r2(9);
  const RealMatrix a = RealMatrix::random_normal(4, 4, r1);
  const RealMatrix b = RealMatrix::random_normal(4, 4, r2);
  for (Index i = 0; i < 4; ++i) {
    for (Index j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(a(i, j), b(i, j));
  }
}

}  // namespace
}  // namespace lrt::la
