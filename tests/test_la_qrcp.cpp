// Column-pivoted QR: pivot quality, rank revelation, threshold truncation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "la/blas.hpp"
#include "la/qrcp.hpp"

namespace lrt::la {
namespace {

/// Builds an m x n matrix of exact rank r with known column magnitudes.
RealMatrix low_rank_matrix(Index m, Index n, Index r, Rng& rng) {
  const RealMatrix u = RealMatrix::random_normal(m, r, rng);
  const RealMatrix v = RealMatrix::random_normal(r, n, rng);
  return gemm(Trans::kNo, Trans::kNo, u.view(), v.view());
}

TEST(Qrcp, DiagonalOfRIsNonIncreasing) {
  Rng rng(1);
  const RealMatrix a = RealMatrix::random_normal(30, 30, rng);
  const QrcpResult f = qrcp_factor(a.view());
  for (std::size_t k = 1; k < f.rdiag.size(); ++k) {
    EXPECT_LE(f.rdiag[k], f.rdiag[k - 1] + 1e-10);
  }
}

TEST(Qrcp, PermIsAPermutation) {
  Rng rng(2);
  const RealMatrix a = RealMatrix::random_normal(10, 18, rng);
  const QrcpResult f = qrcp_factor(a.view());
  std::vector<Index> perm = f.perm;
  std::sort(perm.begin(), perm.end());
  for (Index j = 0; j < 18; ++j) EXPECT_EQ(perm[static_cast<std::size_t>(j)], j);
}

TEST(Qrcp, RevealsNumericalRank) {
  Rng rng(3);
  const RealMatrix a = low_rank_matrix(40, 60, 7, rng);
  QrcpOptions opts;
  opts.rel_threshold = 1e-10;
  const QrcpResult f = qrcp_factor(a.view(), opts);
  EXPECT_EQ(f.rank, 7);
}

TEST(Qrcp, MaxRankStopsEarly) {
  Rng rng(4);
  const RealMatrix a = RealMatrix::random_normal(20, 20, rng);
  QrcpOptions opts;
  opts.max_rank = 5;
  const QrcpResult f = qrcp_factor(a.view(), opts);
  EXPECT_EQ(f.rank, 5);
  EXPECT_EQ(qrcp_pivots(f, 5).size(), 5u);
  EXPECT_THROW(qrcp_pivots(f, 6), Error);
}

TEST(Qrcp, FirstPivotIsLargestColumn) {
  RealMatrix a(4, 3);
  // Column norms: col0 = 1, col1 = 10, col2 = 2.
  a(0, 0) = 1;
  a(0, 1) = 10;
  a(0, 2) = 2;
  const QrcpResult f = qrcp_factor(a.view());
  EXPECT_EQ(f.perm[0], 1);
}

TEST(Qrcp, LeadingPivotsSpanLowRankMatrix) {
  // For a rank-r matrix, the first r pivot columns must span the range:
  // projecting all columns onto them leaves ~0 residual.
  Rng rng(5);
  const Index r = 5;
  const RealMatrix a = low_rank_matrix(30, 50, r, rng);
  QrcpOptions opts;
  opts.max_rank = r;
  const QrcpResult f = qrcp_factor(a.view(), opts);
  const std::vector<Index> pivots = qrcp_pivots(f, r);

  // Gather pivot columns into S (30 x r), then residual = ||A - S S⁺ A||.
  RealMatrix s(30, r);
  for (Index j = 0; j < r; ++j) {
    for (Index i = 0; i < 30; ++i) {
      s(i, j) = a(i, pivots[static_cast<std::size_t>(j)]);
    }
  }
  // Least squares via normal equations.
  const RealMatrix g = gram(s.view());
  const RealMatrix sta = gemm(Trans::kYes, Trans::kNo, s.view(), a.view());
  // Solve g x = sta with a plain Gaussian pass (g is r x r SPD here).
  RealMatrix x = sta;
  {
    RealMatrix gc = g;
    for (Index k = 0; k < r; ++k) {
      const Real piv = gc(k, k);
      for (Index i = k + 1; i < r; ++i) {
        const Real factor = gc(i, k) / piv;
        for (Index j = k; j < r; ++j) gc(i, j) -= factor * gc(k, j);
        for (Index j = 0; j < x.cols(); ++j) x(i, j) -= factor * x(k, j);
      }
    }
    for (Index k = r - 1; k >= 0; --k) {
      for (Index j = 0; j < x.cols(); ++j) {
        Real sum = x(k, j);
        for (Index i = k + 1; i < r; ++i) sum -= gc(k, i) * x(i, j);
        x(k, j) = sum / gc(k, k);
      }
    }
  }
  RealMatrix residual = a;
  gemm(Trans::kNo, Trans::kNo, -1.0, s.view(), x.view(), 1.0,
       residual.view());
  EXPECT_LT(frobenius_norm(residual.view()),
            1e-8 * frobenius_norm(a.view()));
}

}  // namespace
}  // namespace lrt::la
