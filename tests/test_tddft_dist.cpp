// Distributed LR-TDDFT driver vs the serial driver, across rank counts
// and both Vhxc assembly strategies.
#include <gtest/gtest.h>

#include <cmath>

#include "obs/obs.hpp"
#include "tddft/dist_driver.hpp"

namespace lrt::tddft {
namespace {

CasidaProblem make_test_problem() {
  const grid::RealSpaceGrid g(grid::UnitCell::cubic(7.0), {8, 8, 8});
  dft::SyntheticOptions opts;
  opts.num_centers = 8;
  opts.seed = 33;
  return make_problem_from_synthetic(
      g, dft::make_synthetic_orbitals(g, 4, 3, opts));
}

class DistDriverSweep : public ::testing::TestWithParam<int> {};

TEST_P(DistDriverSweep, NaiveMatchesSerialNaive) {
  const int p = GetParam();
  const CasidaProblem problem = make_test_problem();

  DriverOptions serial;
  serial.version = Version::kNaive;
  serial.num_states = 3;
  const DriverResult reference = solve_casida(problem, serial);

  par::run(p, [&](par::Comm& comm) {
    DistDriverOptions opts;
    opts.version = Version::kNaive;
    opts.num_states = 3;
    const DistDriverStats stats =
        solve_casida_distributed(comm, problem, opts);
    ASSERT_EQ(stats.energies.size(), 3u);
    for (Index j = 0; j < 3; ++j) {
      EXPECT_NEAR(stats.energies[static_cast<std::size_t>(j)],
                  reference.energies[static_cast<std::size_t>(j)], 1e-8)
          << "p=" << comm.size() << " state " << j;
    }
  });
}

TEST_P(DistDriverSweep, ImplicitMatchesSerialImplicitEnergies) {
  const int p = GetParam();
  const CasidaProblem problem = make_test_problem();

  // Reference: serial naive — the implicit path approximates it within
  // the ISDF budget, which is what we assert.
  DriverOptions serial;
  serial.version = Version::kNaive;
  serial.num_states = 2;
  const DriverResult reference = solve_casida(problem, serial);

  par::run(p, [&](par::Comm& comm) {
    DistDriverOptions opts;
    opts.version = Version::kImplicit;
    opts.num_states = 2;
    opts.nmu = 12;  // == Ncv -> near-exact ISDF
    opts.kmeans.seeding = kmeans::Seeding::kTopWeight;
    const DistDriverStats stats =
        solve_casida_distributed(comm, problem, opts);
    for (Index j = 0; j < 2; ++j) {
      EXPECT_NEAR(stats.energies[static_cast<std::size_t>(j)],
                  reference.energies[static_cast<std::size_t>(j)],
                  3e-2 * std::abs(reference.energies[static_cast<std::size_t>(j)]))
          << "p=" << comm.size();
    }
  });
}

TEST_P(DistDriverSweep, RankCountDoesNotChangeNaiveResult) {
  // Determinism across p: the naive path is exact, so energies must agree
  // between 1 rank and p ranks to roundoff.
  const int p = GetParam();
  if (p == 1) GTEST_SKIP();
  const CasidaProblem problem = make_test_problem();

  std::vector<Real> e1;
  par::run(1, [&](par::Comm& comm) {
    DistDriverOptions opts;
    opts.version = Version::kNaive;
    opts.num_states = 2;
    e1 = solve_casida_distributed(comm, problem, opts).energies;
  });
  par::run(p, [&](par::Comm& comm) {
    DistDriverOptions opts;
    opts.version = Version::kNaive;
    opts.num_states = 2;
    const auto ep = solve_casida_distributed(comm, problem, opts).energies;
    for (std::size_t j = 0; j < e1.size(); ++j) {
      EXPECT_NEAR(ep[j], e1[j], 1e-9);
    }
  });
}

TEST_P(DistDriverSweep, PipelinedReduceGivesSameEnergies) {
  const int p = GetParam();
  const CasidaProblem problem = make_test_problem();
  std::vector<Real> mono, piped;
  par::run(p, [&](par::Comm& comm) {
    DistDriverOptions opts;
    opts.version = Version::kNaive;
    opts.num_states = 2;
    opts.pipelined_reduce = false;
    // Every rank computes the same energies; only rank 0 writes the
    // shared capture so the rank threads do not race on it.
    auto e = solve_casida_distributed(comm, problem, opts).energies;
    if (comm.rank() == 0) mono = std::move(e);
  });
  par::run(p, [&](par::Comm& comm) {
    DistDriverOptions opts;
    opts.version = Version::kNaive;
    opts.num_states = 2;
    opts.pipelined_reduce = true;
    opts.pipeline_chunk = 3;
    auto e = solve_casida_distributed(comm, problem, opts).energies;
    if (comm.rank() == 0) piped = std::move(e);
  });
  for (std::size_t j = 0; j < mono.size(); ++j) {
    EXPECT_NEAR(mono[j], piped[j], 1e-9);
  }
}

TEST_P(DistDriverSweep, StatsAreCoherent) {
  const int p = GetParam();
  const CasidaProblem problem = make_test_problem();
  par::run(p, [&](par::Comm& comm) {
    DistDriverOptions opts;
    opts.version = Version::kImplicit;
    opts.num_states = 2;
    opts.nmu = 10;
    opts.kmeans.seeding = kmeans::Seeding::kTopWeight;
    const DistDriverStats stats =
        solve_casida_distributed(comm, problem, opts);
    EXPECT_GT(stats.wall_seconds, 0.0);
    EXPECT_GE(stats.comm_seconds, 0.0);
    EXPECT_GT(stats.busy_seconds, 0.0);
    EXPECT_LE(stats.busy_seconds, stats.wall_seconds + 1e-9);
    // Phase map contains the Figure-8 categories.
    bool has_kmeans = false, has_fft = false, has_mpi = false;
    for (const auto& [name, seconds] : stats.phases) {
      if (name == "kmeans" && seconds > 0) has_kmeans = true;
      if (name == "fft" && seconds > 0) has_fft = true;
      if (name == "mpi" && seconds >= 0) has_mpi = true;
    }
    EXPECT_TRUE(has_kmeans);
    EXPECT_TRUE(has_fft);
    EXPECT_TRUE(has_mpi);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistDriverSweep,
                         ::testing::Values(1, 2, 3, 4));

TEST_P(DistDriverSweep, JacobiEigensolverMatchesGathered) {
  const int p = GetParam();
  const CasidaProblem problem = make_test_problem();
  std::vector<Real> gathered, jacobi;
  par::run(p, [&](par::Comm& comm) {
    DistDriverOptions opts;
    opts.version = Version::kNaive;
    opts.num_states = 2;
    opts.eig_method = par::DistEigMethod::kGathered;
    auto e = solve_casida_distributed(comm, problem, opts).energies;
    if (comm.rank() == 0) gathered = std::move(e);
  });
  par::run(p, [&](par::Comm& comm) {
    DistDriverOptions opts;
    opts.version = Version::kNaive;
    opts.num_states = 2;
    opts.eig_method = par::DistEigMethod::kJacobi;
    auto e = solve_casida_distributed(comm, problem, opts).energies;
    if (comm.rank() == 0) jacobi = std::move(e);
  });
  for (std::size_t j = 0; j < gathered.size(); ++j) {
    EXPECT_NEAR(jacobi[j], gathered[j], 1e-8);
  }
}

TEST(DistDriverObs, Fig8PhaseSpansPerRank) {
  // Every Figure-8 phase must record at least one span on every rank
  // thread, so traces explain where each rank's time went.
  const bool was_enabled = obs::tracing_enabled();
  obs::set_tracing_enabled(true);
  obs::reset_trace();
  const CasidaProblem problem = make_test_problem();
  constexpr int kRanks = 4;
  par::run(kRanks, [&](par::Comm& comm) {
    DistDriverOptions opts;
    opts.version = Version::kImplicit;
    opts.num_states = 2;
    opts.nmu = 12;
    opts.kmeans.seeding = kmeans::Seeding::kTopWeight;
    solve_casida_distributed(comm, problem, opts);
  });
  const auto stats = obs::aggregate_phases();
  for (const char* phase : {"kmeans", "fft", "mpi", "gemm", "diag"}) {
    const obs::PhaseStats* found = nullptr;
    for (const auto& s : stats) {
      if (s.name == phase) found = &s;
    }
    ASSERT_NE(found, nullptr) << "missing phase " << phase;
    EXPECT_GE(found->ranks, kRanks) << phase;
    EXPECT_GE(found->count, kRanks) << phase;
  }
  if (!was_enabled) {
    obs::reset_trace();
    obs::set_tracing_enabled(false);
  }
}

TEST(DistDriver, RejectsUnsupportedVersion) {
  const CasidaProblem problem = make_test_problem();
  par::run(1, [&](par::Comm& comm) {
    DistDriverOptions opts;
    opts.version = Version::kKmeansIsdf;
    EXPECT_THROW(solve_casida_distributed(comm, problem, opts), Error);
  });
}

}  // namespace
}  // namespace lrt::tddft
