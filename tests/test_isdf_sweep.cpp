// Parameterized ISDF property sweep: for every (Nv, Nc, method)
// configuration, the decomposition must satisfy the same invariants —
// valid distinct points, normal-equation optimality, and monotone-ish
// error decay in Nμ. Complements the targeted cases in test_isdf.cpp.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "dft/synthetic.hpp"
#include "isdf/interpolation.hpp"
#include "isdf/isdf.hpp"
#include "la/blas.hpp"

namespace lrt::isdf {
namespace {

struct SweepCase {
  Index nv, nc;
  PointMethod method;
  unsigned seed;
};

class IsdfSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(IsdfSweep, InvariantsHoldAcrossConfigurations) {
  const SweepCase c = GetParam();
  const grid::RealSpaceGrid g(grid::UnitCell::cubic(8.0), {9, 9, 9});
  dft::SyntheticOptions sopts;
  sopts.num_centers = 8;
  sopts.seed = c.seed;
  const dft::SyntheticOrbitals orbs =
      dft::make_synthetic_orbitals(g, c.nv, c.nc, sopts);

  const Index ncv = c.nv * c.nc;
  Real previous_error = 1e18;
  for (const Real fraction : {0.3, 0.6, 0.95}) {
    const Index nmu = std::max<Index>(2, static_cast<Index>(fraction * ncv));
    IsdfOptions opts;
    opts.nmu = nmu;
    opts.method = c.method;
    const IsdfResult r =
        isdf_decompose(g, orbs.psi_v.view(), orbs.psi_c.view(), opts);

    // Valid, distinct, sorted points.
    ASSERT_EQ(r.nmu(), nmu);
    std::set<Index> unique(r.points.begin(), r.points.end());
    EXPECT_EQ(static_cast<Index>(unique.size()), nmu);
    EXPECT_GE(*unique.begin(), 0);
    EXPECT_LT(*unique.rbegin(), g.size());

    // Factor shapes are consistent.
    EXPECT_EQ(r.theta.rows(), g.size());
    EXPECT_EQ(r.theta.cols(), nmu);
    EXPECT_EQ(r.c.rows(), nmu);
    EXPECT_EQ(r.c.cols(), ncv);

    // Error behaves: bounded by 1 (Z itself) and does not grow
    // significantly as Nμ increases.
    const Real error = isdf_relative_error(
        orbs.psi_v.view(), orbs.psi_c.view(), r.points, r.theta.view());
    EXPECT_GE(error, 0.0);
    EXPECT_LT(error, 1.0);
    EXPECT_LT(error, previous_error * 1.25)
        << "method=" << (c.method == PointMethod::kQrcp ? "qrcp" : "kmeans")
        << " nmu=" << nmu;
    previous_error = error;
  }
  // Near-full-rank decomposition is accurate for every configuration.
  EXPECT_LT(previous_error, 0.2);
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, IsdfSweep,
    ::testing::Values(SweepCase{3, 3, PointMethod::kQrcp, 1},
                      SweepCase{3, 3, PointMethod::kKmeans, 1},
                      SweepCase{6, 4, PointMethod::kQrcp, 2},
                      SweepCase{6, 4, PointMethod::kKmeans, 2},
                      SweepCase{8, 2, PointMethod::kQrcp, 3},
                      SweepCase{8, 2, PointMethod::kKmeans, 3},
                      SweepCase{2, 8, PointMethod::kKmeans, 4},
                      SweepCase{10, 6, PointMethod::kKmeans, 5}),
    [](const auto& info) {
      return "nv" + std::to_string(info.param.nv) + "_nc" +
             std::to_string(info.param.nc) + "_" +
             (info.param.method == PointMethod::kQrcp ? "qrcp" : "kmeans");
    });

}  // namespace
}  // namespace lrt::isdf
