// BLAS kernel tests, including a parameterized sweep of gemm transpose
// cases and shapes against a reference triple loop.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "la/blas.hpp"

namespace lrt::la {
namespace {

RealMatrix reference_gemm(Trans ta, Trans tb, Real alpha, const RealMatrix& a,
                          const RealMatrix& b, Real beta,
                          const RealMatrix& c0) {
  const Index m = (ta == Trans::kNo) ? a.rows() : a.cols();
  const Index k = (ta == Trans::kNo) ? a.cols() : a.rows();
  const Index n = (tb == Trans::kNo) ? b.cols() : b.rows();
  RealMatrix c = c0;
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < n; ++j) {
      Real sum = 0;
      for (Index p = 0; p < k; ++p) {
        const Real av = (ta == Trans::kNo) ? a(i, p) : a(p, i);
        const Real bv = (tb == Trans::kNo) ? b(p, j) : b(j, p);
        sum += av * bv;
      }
      c(i, j) = alpha * sum + beta * c(i, j);
    }
  }
  return c;
}

TEST(Blas1, DotAxpyScalNrm2) {
  const Real x[] = {1, 2, 3};
  Real y[] = {4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(x, y, 3), 32.0);
  EXPECT_DOUBLE_EQ(nrm2(x, 3), std::sqrt(14.0));
  axpy(2.0, x, y, 3);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
  scal(0.5, y, 3);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
}

TEST(Gemv, NoTransAndTrans) {
  RealMatrix a{{1, 2}, {3, 4}, {5, 6}};
  const Real x2[] = {1, 1};
  Real y3[] = {0, 0, 0};
  gemv(Trans::kNo, 1.0, a.view(), x2, 0.0, y3);
  EXPECT_DOUBLE_EQ(y3[0], 3.0);
  EXPECT_DOUBLE_EQ(y3[2], 11.0);

  const Real x3[] = {1, 1, 1};
  Real y2[] = {10, 10};
  gemv(Trans::kYes, 1.0, a.view(), x3, 0.5, y2);
  EXPECT_DOUBLE_EQ(y2[0], 9.0 + 5.0);
  EXPECT_DOUBLE_EQ(y2[1], 12.0 + 5.0);
}

struct GemmCase {
  Index m, n, k;
  int ta, tb;
  Real alpha, beta;
};

class GemmSweep : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmSweep, MatchesReference) {
  const GemmCase p = GetParam();
  Rng rng(static_cast<unsigned>(p.m * 131 + p.n * 17 + p.k));
  const Trans ta = p.ta ? Trans::kYes : Trans::kNo;
  const Trans tb = p.tb ? Trans::kYes : Trans::kNo;
  const RealMatrix a = (ta == Trans::kNo)
                           ? RealMatrix::random_uniform(p.m, p.k, rng)
                           : RealMatrix::random_uniform(p.k, p.m, rng);
  const RealMatrix b = (tb == Trans::kNo)
                           ? RealMatrix::random_uniform(p.k, p.n, rng)
                           : RealMatrix::random_uniform(p.n, p.k, rng);
  RealMatrix c = RealMatrix::random_uniform(p.m, p.n, rng);
  const RealMatrix expected =
      reference_gemm(ta, tb, p.alpha, a, b, p.beta, c);
  gemm(ta, tb, p.alpha, a.view(), b.view(), p.beta, c.view());
  EXPECT_LT(max_abs_diff(c.view(), expected.view()), 1e-11)
      << "m=" << p.m << " n=" << p.n << " k=" << p.k << " ta=" << p.ta
      << " tb=" << p.tb;
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndTranspose, GemmSweep,
    ::testing::Values(
        GemmCase{1, 1, 1, 0, 0, 1.0, 0.0}, GemmCase{3, 5, 7, 0, 0, 1.0, 0.0},
        GemmCase{3, 5, 7, 1, 0, 2.0, 0.0}, GemmCase{3, 5, 7, 0, 1, 1.0, 1.0},
        GemmCase{3, 5, 7, 1, 1, -1.5, 0.5},
        GemmCase{64, 64, 64, 0, 0, 1.0, 0.0},
        GemmCase{65, 33, 129, 0, 0, 1.0, 0.0},
        GemmCase{65, 33, 129, 1, 0, 1.0, 0.0},
        GemmCase{65, 33, 129, 0, 1, 1.0, 0.0},
        GemmCase{65, 33, 129, 1, 1, 1.0, 2.0},
        GemmCase{130, 70, 300, 0, 0, 0.5, -1.0},
        GemmCase{7, 300, 2, 0, 0, 1.0, 0.0}));

TEST(Gemm, InnerDimensionMismatchThrows) {
  RealMatrix a(2, 3), b(4, 2), c(2, 2);
  EXPECT_THROW(
      gemm(Trans::kNo, Trans::kNo, 1.0, a.view(), b.view(), 0.0, c.view()),
      Error);
}

TEST(Gemm, StridedViewsWork) {
  Rng rng(3);
  const RealMatrix big_a = RealMatrix::random_uniform(8, 8, rng);
  const RealMatrix big_b = RealMatrix::random_uniform(8, 8, rng);
  RealConstView a = big_a.view().block(1, 2, 4, 3);
  RealConstView b = big_b.view().block(0, 1, 3, 5);
  RealMatrix c(4, 5);
  gemm(Trans::kNo, Trans::kNo, 1.0, a, b, 0.0, c.view());
  const RealMatrix a_copy = to_matrix(a);
  const RealMatrix b_copy = to_matrix(b);
  const RealMatrix expected = reference_gemm(
      Trans::kNo, Trans::kNo, 1.0, a_copy, b_copy, 0.0, RealMatrix(4, 5));
  EXPECT_LT(max_abs_diff(c.view(), expected.view()), 1e-12);
}

TEST(Gram, SymmetricAndCorrect) {
  Rng rng(4);
  const RealMatrix a = RealMatrix::random_uniform(20, 6, rng);
  const RealMatrix g = gram(a.view());
  const RealMatrix expected =
      gemm(Trans::kYes, Trans::kNo, a.view(), a.view());
  EXPECT_LT(max_abs_diff(g.view(), expected.view()), 1e-12);
  for (Index i = 0; i < 6; ++i) {
    for (Index j = 0; j < 6; ++j) {
      EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
    }
  }
}

TEST(Norms, FrobeniusAndMaxAbs) {
  RealMatrix m{{3, 4}, {0, 0}};
  EXPECT_DOUBLE_EQ(frobenius_norm(m.view()), 5.0);
  EXPECT_DOUBLE_EQ(max_abs(m.view()), 4.0);
  RealMatrix n{{3, 4}, {0, 1}};
  EXPECT_DOUBLE_EQ(max_abs_diff(m.view(), n.view()), 1.0);
}

}  // namespace
}  // namespace lrt::la
