// Hot-kernel performance layer exactness tests (docs/PERFORMANCE.md):
//  - packed micro-kernel GEMM vs. a naive triple loop over odd shapes,
//    all transpose combinations, strided views and aliased inputs;
//  - batched FFT (forward_many/inverse_many) vs. the per-line plan,
//    asserted BITWISE, and the rewritten Fft3D vs. a copy of the old
//    per-line algorithm, also bitwise;
//  - pruned (Elkan-lite) K-Means vs. the exact full-scan assignment,
//    asserted bit-identical for the serial and distributed variants.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "fft/fft1d.hpp"
#include "fft/fft3d.hpp"
#include "kmeans/dist_kmeans.hpp"
#include "kmeans/kmeans.hpp"
#include "la/blas.hpp"
#include "obs/counters.hpp"
#include "par/layout.hpp"

namespace lrt {
namespace {

// ----- GEMM ----------------------------------------------------------------

la::RealMatrix naive_gemm(la::Trans ta, la::Trans tb, Real alpha,
                          const la::RealMatrix& a, const la::RealMatrix& b,
                          Real beta, const la::RealMatrix& c0) {
  const Index m = (ta == la::Trans::kNo) ? a.rows() : a.cols();
  const Index k = (ta == la::Trans::kNo) ? a.cols() : a.rows();
  const Index n = (tb == la::Trans::kNo) ? b.cols() : b.rows();
  la::RealMatrix c = c0;
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < n; ++j) {
      Real sum = 0;
      for (Index p = 0; p < k; ++p) {
        const Real av = (ta == la::Trans::kNo) ? a(i, p) : a(p, i);
        const Real bv = (tb == la::Trans::kNo) ? b(p, j) : b(j, p);
        sum += av * bv;
      }
      c(i, j) = alpha * sum + beta * c(i, j);
    }
  }
  return c;
}

struct PackedGemmCase {
  Index m, n, k;
};

class PackedGemmSweep : public ::testing::TestWithParam<PackedGemmCase> {};

TEST_P(PackedGemmSweep, AllTransposesMatchNaive) {
  const PackedGemmCase shape = GetParam();
  Rng rng(static_cast<unsigned>(shape.m * 977 + shape.n * 31 + shape.k));
  for (const la::Trans ta : {la::Trans::kNo, la::Trans::kYes}) {
    for (const la::Trans tb : {la::Trans::kNo, la::Trans::kYes}) {
      for (const auto& [alpha, beta] : {std::pair<Real, Real>{1.0, 0.0},
                                        std::pair<Real, Real>{-0.75, 1.5}}) {
        const la::RealMatrix a =
            (ta == la::Trans::kNo)
                ? la::RealMatrix::random_uniform(shape.m, shape.k, rng)
                : la::RealMatrix::random_uniform(shape.k, shape.m, rng);
        const la::RealMatrix b =
            (tb == la::Trans::kNo)
                ? la::RealMatrix::random_uniform(shape.k, shape.n, rng)
                : la::RealMatrix::random_uniform(shape.n, shape.k, rng);
        la::RealMatrix c = la::RealMatrix::random_uniform(shape.m, shape.n, rng);
        const la::RealMatrix expected = naive_gemm(ta, tb, alpha, a, b, beta, c);

        la::RealMatrix got = c;
        la::gemm(ta, tb, alpha, a.view(), b.view(), beta, got.view());
        // Different summation order than the naive loop, so compare with a
        // k-scaled tolerance, not bitwise.
        const Real tol =
            1e-13 * static_cast<Real>(shape.k + 8) * std::max(Real{1}, la::max_abs(expected.view()));
        EXPECT_LE(la::max_abs_diff(got.view(), expected.view()), tol)
            << "ta=" << (ta == la::Trans::kYes) << " tb="
            << (tb == la::Trans::kYes) << " alpha=" << alpha;

        // The preserved baseline must satisfy the same contract.
        la::RealMatrix ref = c;
        la::gemm_reference(ta, tb, alpha, a.view(), b.view(), beta, ref.view());
        EXPECT_LE(la::max_abs_diff(ref.view(), expected.view()), tol);
      }
    }
  }
}

// Odd primes, micro-tile remainders, degenerate dims, and shapes big
// enough to take the packed path (2mnk >= 2*24^3).
INSTANTIATE_TEST_SUITE_P(
    Shapes, PackedGemmSweep,
    ::testing::Values(PackedGemmCase{37, 53, 29}, PackedGemmCase{129, 65, 127},
                      PackedGemmCase{64, 64, 64}, PackedGemmCase{6, 8, 300},
                      PackedGemmCase{61, 7, 83}, PackedGemmCase{1, 1, 1},
                      PackedGemmCase{1, 96, 96}, PackedGemmCase{96, 1, 96},
                      PackedGemmCase{96, 96, 1}, PackedGemmCase{23, 24, 25}));

TEST(PackedGemm, StridedViewsMatchNaive) {
  Rng rng(11);
  const la::RealMatrix big_a = la::RealMatrix::random_uniform(80, 90, rng);
  const la::RealMatrix big_b = la::RealMatrix::random_uniform(90, 70, rng);
  la::RealMatrix big_c = la::RealMatrix::random_uniform(80, 70, rng);
  // Interior blocks: ld exceeds cols on every operand.
  const la::RealConstView a = big_a.view().block(3, 5, 50, 40);
  const la::RealConstView b = big_b.view().block(7, 2, 40, 60);
  const la::RealView c = big_c.view().block(11, 4, 50, 60);

  const la::RealMatrix expected =
      naive_gemm(la::Trans::kNo, la::Trans::kNo, 2.0, la::to_matrix(a),
                 la::to_matrix(b), -1.0, la::to_matrix(la::RealConstView(c)));
  la::gemm(la::Trans::kNo, la::Trans::kNo, 2.0, a, b, -1.0, c);
  EXPECT_LE(la::max_abs_diff(c, expected.view()), 1e-11);
}

TEST(PackedGemm, AliasedGramInputsMatchNaive) {
  Rng rng(12);
  const la::RealMatrix a = la::RealMatrix::random_uniform(90, 45, rng);
  la::RealMatrix c(45, 45);
  // C = Aᵀ A with the SAME view passed for both operands.
  la::gemm(la::Trans::kYes, la::Trans::kNo, 1.0, a.view(), a.view(), 0.0,
           c.view());
  const la::RealMatrix expected =
      naive_gemm(la::Trans::kYes, la::Trans::kNo, 1.0, a, a, 0.0,
                 la::RealMatrix(45, 45));
  EXPECT_LE(la::max_abs_diff(c.view(), expected.view()),
            1e-13 * 90 * la::max_abs(expected.view()));
}

// ----- batched FFT ---------------------------------------------------------

std::vector<fft::Complex> random_lines(Index total, unsigned seed) {
  Rng rng(seed);
  std::vector<fft::Complex> data(static_cast<std::size_t>(total));
  for (auto& v : data) {
    v = fft::Complex(rng.uniform() * 2 - 1, rng.uniform() * 2 - 1);
  }
  return data;
}

struct BatchLayout {
  Index count, stride, dist;
};

void expect_bitwise_equal(const std::vector<fft::Complex>& got,
                          const std::vector<fft::Complex>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].real(), want[i].real()) << "element " << i;
    ASSERT_EQ(got[i].imag(), want[i].imag()) << "element " << i;
  }
}

class BatchedFftSweep : public ::testing::TestWithParam<Index> {};

TEST_P(BatchedFftSweep, ForwardManyIsBitwisePerLine) {
  const Index n = GetParam();
  const fft::Fft1D plan(n);
  for (const BatchLayout layout :
       {BatchLayout{37, 1, n},          // packed contiguous lines
        BatchLayout{37, 1, n + 3},      // padded line distance
        BatchLayout{24, 24, 1},         // fully interleaved (transposed)
        BatchLayout{1, 5, 1}}) {        // single strided line
    // Buffer large enough for the furthest element of the last line.
    const Index total =
        (layout.count - 1) * layout.dist + (n - 1) * layout.stride + 1;
    const std::vector<fft::Complex> input =
        random_lines(total, static_cast<unsigned>(n * 7 + layout.count));

    std::vector<fft::Complex> batched = input;
    plan.forward_many(batched.data(), layout.count, layout.stride,
                      layout.dist);

    std::vector<fft::Complex> per_line = input;
    std::vector<fft::Complex> line(static_cast<std::size_t>(n));
    for (Index t = 0; t < layout.count; ++t) {
      fft::Complex* base = per_line.data() + t * layout.dist;
      for (Index j = 0; j < n; ++j) {
        line[static_cast<std::size_t>(j)] = base[j * layout.stride];
      }
      plan.forward(line.data());
      for (Index j = 0; j < n; ++j) {
        base[j * layout.stride] = line[static_cast<std::size_t>(j)];
      }
    }
    expect_bitwise_equal(batched, per_line);

    // Inverse: batched inverse must bitwise-match per-line inverse, and
    // (for the power-of-two path) round-trip the input bitwise is NOT
    // expected — only equality between the two implementations is.
    plan.inverse_many(batched.data(), layout.count, layout.stride,
                      layout.dist);
    for (Index t = 0; t < layout.count; ++t) {
      fft::Complex* base = per_line.data() + t * layout.dist;
      for (Index j = 0; j < n; ++j) {
        line[static_cast<std::size_t>(j)] = base[j * layout.stride];
      }
      plan.inverse(line.data());
      for (Index j = 0; j < n; ++j) {
        base[j * layout.stride] = line[static_cast<std::size_t>(j)];
      }
    }
    expect_bitwise_equal(batched, per_line);
  }
}

// Power-of-two radix-2 sizes and Bluestein sizes (12, 21, 104 is the
// paper's grid flavor).
INSTANTIATE_TEST_SUITE_P(Sizes, BatchedFftSweep,
                         ::testing::Values<Index>(1, 2, 8, 64, 12, 21, 104));

/// The pre-PR Fft3D::transform algorithm, kept verbatim as the bitwise
/// reference: per-line scalar transforms with an element-by-element
/// strided gather for axes 1 and 0.
void reference_fft3d(const fft::Fft1D& plan0, const fft::Fft1D& plan1,
                     const fft::Fft1D& plan2, Index n0, Index n1, Index n2,
                     fft::Complex* x, bool inverse) {
  for (Index i0 = 0; i0 < n0; ++i0) {
    for (Index i1 = 0; i1 < n1; ++i1) {
      fft::Complex* line = x + (i0 * n1 + i1) * n2;
      if (inverse) {
        plan2.inverse(line);
      } else {
        plan2.forward(line);
      }
    }
  }
  std::vector<fft::Complex> buffer(
      static_cast<std::size_t>(std::max(n0, n1)));
  for (Index i0 = 0; i0 < n0; ++i0) {
    fft::Complex* slab = x + i0 * n1 * n2;
    for (Index i2 = 0; i2 < n2; ++i2) {
      for (Index i1 = 0; i1 < n1; ++i1) {
        buffer[static_cast<std::size_t>(i1)] = slab[i1 * n2 + i2];
      }
      if (inverse) {
        plan1.inverse(buffer.data());
      } else {
        plan1.forward(buffer.data());
      }
      for (Index i1 = 0; i1 < n1; ++i1) {
        slab[i1 * n2 + i2] = buffer[static_cast<std::size_t>(i1)];
      }
    }
  }
  const Index stride0 = n1 * n2;
  for (Index rem = 0; rem < stride0; ++rem) {
    for (Index i0 = 0; i0 < n0; ++i0) {
      buffer[static_cast<std::size_t>(i0)] = x[i0 * stride0 + rem];
    }
    if (inverse) {
      plan0.inverse(buffer.data());
    } else {
      plan0.forward(buffer.data());
    }
    for (Index i0 = 0; i0 < n0; ++i0) {
      x[i0 * stride0 + rem] = buffer[static_cast<std::size_t>(i0)];
    }
  }
}

TEST(Fft3DBatched, BitwiseMatchesOldPerLineAlgorithm) {
  struct Shape {
    Index n0, n1, n2;
  };
  for (const Shape s : {Shape{8, 8, 8}, Shape{4, 6, 5}, Shape{1, 8, 3},
                        Shape{16, 1, 1}, Shape{12, 10, 21}}) {
    const fft::Fft3D fft3(s.n0, s.n1, s.n2);
    const fft::Fft1D plan0(s.n0), plan1(s.n1), plan2(s.n2);
    const std::vector<fft::Complex> input = random_lines(
        s.n0 * s.n1 * s.n2, static_cast<unsigned>(s.n0 * 100 + s.n2));

    for (const bool inverse : {false, true}) {
      std::vector<fft::Complex> batched = input;
      if (inverse) {
        fft3.inverse(batched.data());
      } else {
        fft3.forward(batched.data());
      }
      std::vector<fft::Complex> reference = input;
      reference_fft3d(plan0, plan1, plan2, s.n0, s.n1, s.n2,
                      reference.data(), inverse);
      expect_bitwise_equal(batched, reference);
    }
  }
}

// ----- pruned K-Means ------------------------------------------------------

struct KmeansFixture {
  std::vector<grid::Vec3> points;
  std::vector<Real> weights;
  grid::UnitCell cell = grid::UnitCell::cubic(10.0);
};

/// Uniform random positions and weights in a 10^3 box.
KmeansFixture random_fixture(Index n, unsigned seed) {
  KmeansFixture f;
  Rng rng(seed);
  for (Index i = 0; i < n; ++i) {
    f.points.push_back(
        {rng.uniform() * 10, rng.uniform() * 10, rng.uniform() * 10});
    f.weights.push_back(rng.uniform() + 1e-3);
  }
  return f;
}

/// Tight weight blobs: the pruning-friendly regime (most points far from
/// every center but their own).
KmeansFixture clustered_fixture(Index n, unsigned seed) {
  KmeansFixture f;
  Rng rng(seed);
  const grid::Vec3 centers[4] = {
      {2, 2, 2}, {8, 8, 2}, {2, 8, 8}, {8, 2, 5}};
  for (Index i = 0; i < n; ++i) {
    const grid::Vec3& c = centers[i % 4];
    f.points.push_back({c[0] + rng.uniform() - 0.5, c[1] + rng.uniform() - 0.5,
                        c[2] + rng.uniform() - 0.5});
    f.weights.push_back(rng.uniform() * rng.uniform() + 1e-4);
  }
  return f;
}

void expect_kmeans_bit_identical(const kmeans::KMeansResult& exact,
                                 const kmeans::KMeansResult& pruned) {
  EXPECT_EQ(exact.iterations, pruned.iterations);
  EXPECT_EQ(exact.objective, pruned.objective);  // bitwise
  EXPECT_EQ(exact.assignment, pruned.assignment);
  EXPECT_EQ(exact.interpolation_points, pruned.interpolation_points);
  EXPECT_EQ(exact.kept_points, pruned.kept_points);
  ASSERT_EQ(exact.centroids.size(), pruned.centroids.size());
  for (std::size_t c = 0; c < exact.centroids.size(); ++c) {
    for (int ax = 0; ax < 3; ++ax) {
      EXPECT_EQ(exact.centroids[c][static_cast<std::size_t>(ax)],
                pruned.centroids[c][static_cast<std::size_t>(ax)]);
    }
  }
}

class PrunedKmeansSweep : public ::testing::TestWithParam<int> {};

TEST_P(PrunedKmeansSweep, BitIdenticalToExactScan) {
  // One thread keeps the objective reduction order identical between the
  // two runs; the per-point terms are bit-identical by construction.
#ifdef _OPENMP
  omp_set_num_threads(1);
#endif
  const auto seeding = static_cast<kmeans::Seeding>(GetParam());
  for (const bool clustered : {false, true}) {
    for (const bool periodic : {false, true}) {
      const KmeansFixture f = clustered ? clustered_fixture(1500, 3)
                                        : random_fixture(1500, 4);
      kmeans::KMeansOptions opts;
      opts.seeding = seeding;
      opts.seed = 17;
      opts.periodic_cell = periodic ? &f.cell : nullptr;

      opts.pruned_assignment = false;
      const kmeans::KMeansResult exact =
          kmeans::weighted_kmeans(f.points, f.weights, 12, opts);

      const long long skipped_before =
          obs::counter("kmeans.assign.skipped").value();
      opts.pruned_assignment = true;
      const kmeans::KMeansResult pruned =
          kmeans::weighted_kmeans(f.points, f.weights, 12, opts);

      expect_kmeans_bit_identical(exact, pruned);
      // The pruning must actually fire, not just agree.
      EXPECT_GT(obs::counter("kmeans.assign.skipped").value(),
                skipped_before);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seedings, PrunedKmeansSweep,
    ::testing::Values(static_cast<int>(kmeans::Seeding::kWeightedKpp),
                      static_cast<int>(kmeans::Seeding::kTopWeight),
                      static_cast<int>(kmeans::Seeding::kUniformRandom)));

class PrunedDistKmeansSweep : public ::testing::TestWithParam<int> {};

TEST_P(PrunedDistKmeansSweep, BitIdenticalToExactScan) {
#ifdef _OPENMP
  omp_set_num_threads(1);
#endif
  const int p = GetParam();
  const KmeansFixture f = clustered_fixture(1200, 5);
  const Index n = static_cast<Index>(f.points.size());
  par::run(p, [&](par::Comm& comm) {
    const par::BlockPartition part(n, comm.size());
    const Index off = part.offset(comm.rank());
    const Index cnt = part.count(comm.rank());
    const std::vector<grid::Vec3> local_points(
        f.points.begin() + off, f.points.begin() + off + cnt);
    const std::vector<Real> local_weights(
        f.weights.begin() + off, f.weights.begin() + off + cnt);

    kmeans::KMeansOptions opts;
    opts.seeding = kmeans::Seeding::kTopWeight;
    opts.pruned_assignment = false;
    const kmeans::DistKMeansResult exact = kmeans::dist_weighted_kmeans(
        comm, local_points, local_weights, off, 10, opts);
    opts.pruned_assignment = true;
    const kmeans::DistKMeansResult pruned = kmeans::dist_weighted_kmeans(
        comm, local_points, local_weights, off, 10, opts);

    EXPECT_EQ(exact.iterations, pruned.iterations);
    EXPECT_EQ(exact.objective, pruned.objective);  // bitwise
    EXPECT_EQ(exact.interpolation_points, pruned.interpolation_points);
    ASSERT_EQ(exact.centroids.size(), pruned.centroids.size());
    for (std::size_t c = 0; c < exact.centroids.size(); ++c) {
      for (int ax = 0; ax < 3; ++ax) {
        EXPECT_EQ(exact.centroids[c][static_cast<std::size_t>(ax)],
                  pruned.centroids[c][static_cast<std::size_t>(ax)]);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, PrunedDistKmeansSweep,
                         ::testing::Values(1, 3));

}  // namespace
}  // namespace lrt
