// MUST-style verifier (par/check): collective-consistency checking, p2p
// tag validation, the deadlock watchdog, and message-leak detection. Each
// detection test injects a real parallel bug and expects a VerifierError
// whose report names the violation; the clean-run tests pin down that
// correct programs produce no findings.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "par/comm.hpp"

namespace lrt::par {
namespace {

check::Options checked(double stall_seconds = 5.0) {
  check::Options options;
  options.enabled = true;
  options.stall_seconds = stall_seconds;
  options.check_leaks = true;
  return options;
}

/// Runs `body` expecting a VerifierError and returns its report.
template <typename Body>
std::string expect_verifier_error(int nranks, Body body,
                                  const check::Options& options) {
  try {
    run(nranks, body, options);
  } catch (const check::VerifierError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected VerifierError, but the run finished";
  return {};
}

TEST(ParCheck, CleanRunProducesNoFindings) {
  EXPECT_NO_THROW(run(
      4,
      [](Comm& comm) {
        const int p = comm.size();
        comm.barrier();
        double v = comm.rank();
        comm.bcast(&v, 1, 0);
        comm.allreduce(&v, 1, ReduceOp::kSum);
        std::vector<double> all(static_cast<std::size_t>(p));
        const double mine = comm.rank();
        comm.allgather(&mine, 1, all.data());
        // Sibling subcommunicators may legally run different collectives.
        Comm sub = comm.split(comm.rank() % 2, comm.rank());
        if (comm.rank() % 2 == 0) {
          double s = 1;
          // The divergence IS the fixture: this test checks that the
          // runtime verifier detects sibling-subcommunicator patterns.
          // lrt-analyze: allow(collective-divergence)
          sub.allreduce(&s, 1, ReduceOp::kSum);
        } else {
          double b = 2;
          // lrt-analyze: allow(collective-divergence)
          sub.bcast(&b, 1, 0);
        }
        comm.barrier();
      },
      checked()));
}

TEST(ParCheck, FlowTracingDoesNotPerturbVerifierSignatures) {
  // The tracer stamps flow sequence ids into in-flight messages
  // (Message::flow_seq / flow_send_ns); the verifier must never see
  // them, so a traced run stays signature-identical to an untraced one.
  const bool saved = obs::tracing_enabled();
  obs::set_tracing_enabled(true);
  EXPECT_NO_THROW(run(
      4,
      [](Comm& comm) {
        comm.barrier();
        double v = comm.rank();
        comm.allreduce(&v, 1, ReduceOp::kSum);
        if (comm.rank() == 0) {
          comm.send(&v, 1, /*dst=*/3, /*tag=*/5);
        } else if (comm.rank() == 3) {
          comm.recv(&v, 1, /*src=*/0, /*tag=*/5);
        }
        std::vector<double> all(static_cast<std::size_t>(comm.size()));
        const double mine = comm.rank();
        comm.allgather(&mine, 1, all.data());
        comm.barrier();
      },
      checked()));
  obs::set_tracing_enabled(saved);
  obs::reset_trace();
}

TEST(ParCheck, CollectiveCountMismatchDetected) {
  const std::string report = expect_verifier_error(
      2,
      [](Comm& comm) {
        double buf[5] = {0, 0, 0, 0, 0};
        comm.bcast(buf, comm.rank() == 0 ? 4 : 5, 0);
      },
      checked());
  EXPECT_NE(report.find("collective mismatch"), std::string::npos) << report;
  EXPECT_NE(report.find("count=4"), std::string::npos) << report;
  EXPECT_NE(report.find("count=5"), std::string::npos) << report;
}

TEST(ParCheck, CollectiveKindMismatchDetected) {
  const std::string report = expect_verifier_error(
      2,
      [](Comm& comm) {
        if (comm.rank() == 0) {
          // Deliberately divergent: the verifier must report the
          // barrier/bcast kind mismatch.
          // lrt-analyze: allow(collective-divergence)
          comm.barrier();
        } else {
          double v = 0;
          // lrt-analyze: allow(collective-divergence)
          comm.bcast(&v, 1, 0);
        }
      },
      checked());
  EXPECT_NE(report.find("collective mismatch"), std::string::npos) << report;
  EXPECT_NE(report.find("barrier"), std::string::npos) << report;
  EXPECT_NE(report.find("bcast"), std::string::npos) << report;
}

TEST(ParCheck, RootMismatchDetected) {
  const std::string report = expect_verifier_error(
      2,
      [](Comm& comm) {
        double v = 1;
        comm.bcast(&v, 1, /*root=*/comm.rank());
      },
      checked());
  EXPECT_NE(report.find("collective mismatch"), std::string::npos) << report;
  EXPECT_NE(report.find("root=0"), std::string::npos) << report;
  EXPECT_NE(report.find("root=1"), std::string::npos) << report;
}

TEST(ParCheck, ReduceOpMismatchDetected) {
  const std::string report = expect_verifier_error(
      2,
      [](Comm& comm) {
        double v = comm.rank();
        comm.allreduce(&v, 1,
                       comm.rank() == 0 ? ReduceOp::kSum : ReduceOp::kMax);
      },
      checked());
  EXPECT_NE(report.find("collective mismatch"), std::string::npos) << report;
}

TEST(ParCheck, AlltoallvInconsistentCountMatrixDetected) {
  const std::string report = expect_verifier_error(
      2,
      [](Comm& comm) {
        // Rank 0 sends 2 elements to rank 1, but rank 1 expects 3.
        const bool r0 = comm.rank() == 0;
        std::vector<Index> scounts = r0 ? std::vector<Index>{0, 2}
                                        : std::vector<Index>{1, 0};
        std::vector<Index> rcounts = r0 ? std::vector<Index>{0, 1}
                                        : std::vector<Index>{3, 0};
        std::vector<Index> sdispls = {0, 0};
        std::vector<Index> rdispls = {0, 0};
        std::vector<double> send(4, 1.0), recv(4, 0.0);
        comm.alltoallv(send.data(), scounts, sdispls, recv.data(), rcounts,
                       rdispls);
      },
      checked());
  EXPECT_NE(report.find("alltoallv count matrix inconsistent"),
            std::string::npos)
      << report;
}

TEST(ParCheck, AllgathervDisagreeingCountsDetected) {
  const std::string report = expect_verifier_error(
      2,
      [](Comm& comm) {
        // Each rank's own entry is consistent locally, but the vectors
        // disagree about the *other* rank's contribution.
        const bool r0 = comm.rank() == 0;
        std::vector<Index> counts = r0 ? std::vector<Index>{1, 2}
                                       : std::vector<Index>{1, 1};
        std::vector<Index> displs = {0, 1};
        std::vector<double> recv(3, 0.0);
        const double mine = comm.rank();
        comm.allgatherv(&mine, counts[static_cast<std::size_t>(comm.rank())],
                        recv.data(), counts, displs);
      },
      checked());
  EXPECT_NE(report.find("allgatherv counts disagree"), std::string::npos)
      << report;
}

TEST(ParCheck, NonblockingAlltoallvInconsistentCountMatrixDetected) {
  const std::string report = expect_verifier_error(
      2,
      [](Comm& comm) {
        // Same seeded bug as the blocking variant: rank 0 sends 2
        // elements to rank 1, but rank 1 expects 3. The nonblocking
        // issue records the same count matrices, so the cross-rank check
        // fires before any wait().
        const bool r0 = comm.rank() == 0;
        std::vector<Index> scounts = r0 ? std::vector<Index>{0, 2}
                                        : std::vector<Index>{1, 0};
        std::vector<Index> rcounts = r0 ? std::vector<Index>{0, 1}
                                        : std::vector<Index>{3, 0};
        std::vector<Index> sdispls = {0, 0};
        std::vector<Index> rdispls = {0, 0};
        std::vector<double> send(4, 1.0), recv(4, 0.0);
        Comm::Request req = comm.i_alltoallv(send.data(), scounts, sdispls,
                                             recv.data(), rcounts, rdispls);
        req.wait();
      },
      checked());
  EXPECT_NE(report.find("alltoallv count matrix inconsistent"),
            std::string::npos)
      << report;
}

TEST(ParCheck, UnwaitedNonblockingHandleReportedAsLeak) {
  const std::string report = expect_verifier_error(
      2,
      [](Comm& comm) {
        const int p = comm.size();
        std::vector<Index> counts(static_cast<std::size_t>(p), 1);
        std::vector<Index> displs = {0, 1};
        std::vector<double> recv(static_cast<std::size_t>(p), 0.0);
        const double mine = comm.rank();
        Comm::Request req =
            comm.i_allgatherv(&mine, 1, recv.data(), counts, displs);
        // The handle goes out of scope without wait(): its receives never
        // drain, and the handle sweep names the abandoned call.
        (void)req;
      },
      checked());
  EXPECT_NE(report.find("nonblocking handle leak"), std::string::npos)
      << report;
  EXPECT_NE(report.find("never waited"), std::string::npos) << report;
  EXPECT_NE(report.find("i_allgatherv"), std::string::npos) << report;
}

TEST(ParCheck, OverlappingNonblockingHandlesRunClean) {
  EXPECT_NO_THROW(run(
      4,
      [](Comm& comm) {
        const int p = comm.size();
        std::vector<Index> counts(static_cast<std::size_t>(p), 1);
        std::vector<Index> displs(static_cast<std::size_t>(p));
        for (int r = 0; r < p; ++r) displs[static_cast<std::size_t>(r)] = r;
        std::vector<double> recv_a(static_cast<std::size_t>(p), 0.0);
        std::vector<double> recv_b(static_cast<std::size_t>(p), 0.0);
        const double mine = comm.rank();
        const double twice = 2.0 * comm.rank();
        // Two collectives in flight at once, waited in reverse order:
        // the tag window keeps their traffic separate.
        Comm::Request a =
            comm.i_allgatherv(&mine, 1, recv_a.data(), counts, displs);
        Comm::Request b =
            comm.i_allgatherv(&twice, 1, recv_b.data(), counts, displs);
        b.wait();
        a.wait();
        for (int r = 0; r < p; ++r) {
          LRT_CHECK(recv_a[static_cast<std::size_t>(r)] == r &&
                        recv_b[static_cast<std::size_t>(r)] == 2.0 * r,
                    "overlapped allgatherv payload mismatch");
        }
        comm.barrier();
      },
      checked()));
}

TEST(ParCheck, DeadlockWatchdogFiresOnUnmatchedRecv) {
  const std::string report = expect_verifier_error(
      2,
      [](Comm& comm) {
        if (comm.rank() == 0) {
          double v = 0;
          comm.recv(&v, 1, 1, /*tag=*/9);  // rank 1 never sends
        }
      },
      checked(/*stall_seconds=*/0.2));
  EXPECT_NE(report.find("deadlock watchdog"), std::string::npos) << report;
  EXPECT_NE(report.find("blocked"), std::string::npos) << report;
  EXPECT_NE(report.find("tag=9"), std::string::npos) << report;
  // The dump covers every rank, including the one that already returned.
  EXPECT_NE(report.find("rank 1: running"), std::string::npos) << report;
}

TEST(ParCheck, SendWithNoRecvReportedAsLeak) {
  const std::string report = expect_verifier_error(
      2,
      [](Comm& comm) {
        if (comm.rank() == 0) {
          const double v = 1.5;
          comm.send(&v, 1, 1, /*tag=*/3);  // rank 1 never receives
        }
      },
      checked());
  EXPECT_NE(report.find("message leak"), std::string::npos) << report;
  EXPECT_NE(report.find("never received"), std::string::npos) << report;
  EXPECT_NE(report.find("tag 3"), std::string::npos) << report;
}

TEST(ParCheck, UserSendWithReservedTagDetected) {
  const std::string report = expect_verifier_error(
      2,
      [](Comm& comm) {
        const double v = 1.0;
        if (comm.rank() == 0) comm.send(&v, 1, 1, detail::kTagBcast);
      },
      checked());
  EXPECT_NE(report.find("reserved"), std::string::npos) << report;
}

TEST(ParCheck, NegativeTagDetected) {
  const std::string report = expect_verifier_error(
      2,
      [](Comm& comm) {
        const double v = 1.0;
        if (comm.rank() == 0) comm.send(&v, 1, 1, -4);
      },
      checked());
  EXPECT_NE(report.find("negative tag"), std::string::npos) << report;
}

TEST(ParCheck, WatchdogCoversSingleRankRuns) {
  // nranks == 1 runs inline on the caller thread; the watchdog must still
  // break an unmatched self-receive.
  const std::string report = expect_verifier_error(
      1,
      [](Comm& comm) {
        double v = 0;
        comm.recv(&v, 1, 0, /*tag=*/11);
      },
      checked(/*stall_seconds=*/0.2));
  EXPECT_NE(report.find("deadlock watchdog"), std::string::npos) << report;
}

TEST(ParCheck, DisabledVerifierKeepsLegacyBehavior) {
  // A send with no recv is silent without the verifier (mailboxes are
  // simply dropped) — the seed behavior tests rely on.
  EXPECT_NO_THROW(run(
      2,
      [](Comm& comm) {
        if (comm.rank() == 0) {
          const double v = 1.5;
          comm.send(&v, 1, 1, 3);
        }
      },
      check::Options{}));
}

TEST(ParCheck, OptionsFromEnvParsesFields) {
  // from_env reads the ambient environment; only exercise the default
  // (unset) path here to stay hermetic.
  const check::Options options = check::Options::from_env();
  if (std::getenv("LRT_CHECK") == nullptr) {
    EXPECT_FALSE(options.enabled);
  }
  EXPECT_GE(options.stall_seconds, 0.0);
}

/// The full distributed TDDFT path runs clean under the verifier — the
/// production-workload regression for the whole check layer.
TEST(ParCheck, DistributedCollectivePatternsRunClean) {
  EXPECT_NO_THROW(run(
      4,
      [](Comm& comm) {
        const int p = comm.size();
        // Mimic the transpose/redistribute traffic: alltoallv with a
        // consistent, non-uniform count matrix.
        std::vector<Index> scounts(static_cast<std::size_t>(p));
        std::vector<Index> sdispls(static_cast<std::size_t>(p));
        Index total = 0;
        for (int q = 0; q < p; ++q) {
          scounts[static_cast<std::size_t>(q)] = q + 1;
          sdispls[static_cast<std::size_t>(q)] = total;
          total += q + 1;
        }
        std::vector<double> send(static_cast<std::size_t>(total), 1.0);
        std::vector<Index> rcounts(static_cast<std::size_t>(p),
                                   comm.rank() + 1);
        std::vector<Index> rdispls(static_cast<std::size_t>(p));
        for (int q = 1; q < p; ++q) {
          rdispls[static_cast<std::size_t>(q)] =
              rdispls[static_cast<std::size_t>(q - 1)] + comm.rank() + 1;
        }
        std::vector<double> recv(
            static_cast<std::size_t>(p * (comm.rank() + 1)));
        comm.alltoallv(send.data(), scounts, sdispls, recv.data(), rcounts,
                       rdispls);
        // Pipelined GEMM+reduce shape: repeated rooted reductions.
        for (int owner = 0; owner < p; ++owner) {
          std::vector<double> chunk(8, 1.0);
          comm.reduce(chunk.data(), 8, ReduceOp::kSum, owner);
        }
        comm.barrier();
      },
      checked()));
}

}  // namespace
}  // namespace lrt::par
