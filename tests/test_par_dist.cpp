// Distributed matrix machinery: scatter/gather, redistribute (pdgemr2d
// analog), row<->column transposes, distributed GEMM/Gram, the pipelined
// reduction, and the distributed eigensolver.
#include <gtest/gtest.h>

#include "la/blas.hpp"
#include "la/eig.hpp"
#include "par/distblas.hpp"
#include "par/disteig.hpp"
#include "par/distmatrix.hpp"
#include "par/pipeline.hpp"
#include "par/transpose.hpp"

namespace lrt::par {
namespace {

la::RealMatrix numbered_matrix(Index m, Index n) {
  la::RealMatrix a(m, n);
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < n; ++j) a(i, j) = 100.0 * i + j;
  }
  return a;
}

class DistSweep : public ::testing::TestWithParam<int> {};

TEST_P(DistSweep, FillGatherRoundTrip) {
  const int p = GetParam();
  run(p, [p](Comm& comm) {
    const Layout layout = Layout::block_row(10, 6, p);
    DistMatrix m(layout, comm.rank());
    m.fill_global([](Index i, Index j) { return 100.0 * i + j; });
    const la::RealMatrix full = m.gather(comm, 0);
    if (comm.rank() == 0) {
      const la::RealMatrix expected = numbered_matrix(10, 6);
      EXPECT_LT(la::max_abs_diff(full.view(), expected.view()), 1e-14);
    }
  });
}

TEST_P(DistSweep, ScatterThenAllgatherFull) {
  const int p = GetParam();
  run(p, [p](Comm& comm) {
    const Layout layout = Layout::block_col(7, 9, p);
    la::RealMatrix global;
    if (comm.rank() == 0) global = numbered_matrix(7, 9);
    const DistMatrix m = DistMatrix::scatter(comm, layout, global.view(), 0);
    const la::RealMatrix full = m.allgather_full(comm);
    const la::RealMatrix expected = numbered_matrix(7, 9);
    EXPECT_LT(la::max_abs_diff(full.view(), expected.view()), 1e-14);
  });
}

struct RedistCase {
  int p;
  int from, to;  // 0 row, 1 col, 2 cyclic
};

class RedistSweep : public ::testing::TestWithParam<RedistCase> {};

Layout make_layout(int scheme, Index m, Index n, int p) {
  switch (scheme) {
    case 0:
      return Layout::block_row(m, n, p);
    case 1:
      return Layout::block_col(m, n, p);
    default: {
      int prow = 1;
      for (int r = 1; r * r <= p; ++r) {
        if (p % r == 0) prow = r;
      }
      return Layout::block_cyclic_2d(m, n, prow, p / prow, 3, 2);
    }
  }
}

TEST_P(RedistSweep, PreservesEveryElement) {
  const RedistCase c = GetParam();
  run(c.p, [&c](Comm& comm) {
    const Index m = 11, n = 8;
    const Layout src_layout = make_layout(c.from, m, n, c.p);
    const Layout dst_layout = make_layout(c.to, m, n, c.p);
    DistMatrix src(src_layout, comm.rank());
    src.fill_global([](Index i, Index j) { return 100.0 * i + j; });
    const DistMatrix dst = redistribute(comm, src, dst_layout);
    // Verify local blocks directly against the generator.
    for (Index li = 0; li < dst.local().rows(); ++li) {
      const Index gi = dst_layout.global_row(comm.rank(), li);
      for (Index lj = 0; lj < dst.local().cols(); ++lj) {
        const Index gj = dst_layout.global_col(comm.rank(), lj);
        EXPECT_DOUBLE_EQ(dst.local()(li, lj), 100.0 * gi + gj);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    SchemePairs, RedistSweep,
    ::testing::Values(RedistCase{3, 0, 1}, RedistCase{3, 1, 0},
                      RedistCase{4, 0, 2}, RedistCase{4, 2, 0},
                      RedistCase{4, 1, 2}, RedistCase{2, 2, 2},
                      RedistCase{1, 0, 2}, RedistCase{5, 0, 1}));

TEST_P(DistSweep, RowColTransposeRoundTrip) {
  const int p = GetParam();
  run(p, [p](Comm& comm) {
    const Index m = 13, n = 7;
    const BlockPartition rows(m, p);
    const la::RealMatrix full = numbered_matrix(m, n);
    const la::RealConstView my_rows =
        full.view().rows_block(rows.offset(comm.rank()),
                               rows.count(comm.rank()));

    const la::RealMatrix my_cols = row_block_to_col_block(
        comm, my_rows, m, n);
    const BlockPartition cols(n, p);
    EXPECT_EQ(my_cols.rows(), m);
    EXPECT_EQ(my_cols.cols(), cols.count(comm.rank()));
    for (Index i = 0; i < m; ++i) {
      for (Index j = 0; j < my_cols.cols(); ++j) {
        EXPECT_DOUBLE_EQ(my_cols(i, j),
                         full(i, cols.offset(comm.rank()) + j));
      }
    }

    const la::RealMatrix back =
        col_block_to_row_block(comm, my_cols.view(), m, n);
    EXPECT_LT(la::max_abs_diff(back.view(), my_rows), 1e-14);
  });
}

TEST_P(DistSweep, DistGemmTnMatchesSerial) {
  const int p = GetParam();
  run(p, [p](Comm& comm) {
    const Index m = 20, ka = 5, kb = 4;
    Rng rng(11);
    const la::RealMatrix a = la::RealMatrix::random_normal(m, ka, rng);
    const la::RealMatrix b = la::RealMatrix::random_normal(m, kb, rng);
    const BlockPartition rows(m, p);
    const la::RealMatrix c = dist_gemm_tn(
        comm,
        a.view().rows_block(rows.offset(comm.rank()), rows.count(comm.rank())),
        b.view().rows_block(rows.offset(comm.rank()), rows.count(comm.rank())));
    const la::RealMatrix expected =
        la::gemm(la::Trans::kYes, la::Trans::kNo, a.view(), b.view());
    EXPECT_LT(la::max_abs_diff(c.view(), expected.view()), 1e-10);
  });
}

TEST_P(DistSweep, DistGramAndNorm) {
  const int p = GetParam();
  run(p, [p](Comm& comm) {
    const Index m = 18, n = 4;
    Rng rng(12);
    const la::RealMatrix a = la::RealMatrix::random_normal(m, n, rng);
    const BlockPartition rows(m, p);
    const auto local = a.view().rows_block(rows.offset(comm.rank()),
                                           rows.count(comm.rank()));
    const la::RealMatrix g = dist_gram(comm, local);
    EXPECT_LT(la::max_abs_diff(g.view(), la::gram(a.view()).view()), 1e-10);
    EXPECT_NEAR(dist_frobenius_norm(comm, local),
                la::frobenius_norm(a.view()), 1e-10);
    EXPECT_NEAR(dist_sum(comm, 1.0), double(p), 1e-14);
  });
}

TEST_P(DistSweep, PipelinedReduceMatchesMonolithic) {
  const int p = GetParam();
  run(p, [p](Comm& comm) {
    const Index m = 24, k = 9, n = 6;
    Rng rng(13);
    const la::RealMatrix a = la::RealMatrix::random_normal(m, k, rng);
    const la::RealMatrix b = la::RealMatrix::random_normal(m, n, rng);
    const BlockPartition rows(m, p);
    const auto a_loc = a.view().rows_block(rows.offset(comm.rank()),
                                           rows.count(comm.rank()));
    const auto b_loc = b.view().rows_block(rows.offset(comm.rank()),
                                           rows.count(comm.rank()));

    const la::RealMatrix mono = gram_reduce_monolithic(comm, a_loc, b_loc);
    const PipelineResult piped =
        gram_reduce_pipelined(comm, a_loc, b_loc, /*chunk_rows=*/2);

    const BlockPartition out(k, p);
    EXPECT_EQ(piped.row_offset, out.offset(comm.rank()));
    EXPECT_EQ(piped.local_rows.rows(), out.count(comm.rank()));
    for (Index i = 0; i < piped.local_rows.rows(); ++i) {
      for (Index j = 0; j < n; ++j) {
        EXPECT_NEAR(piped.local_rows(i, j), mono(piped.row_offset + i, j),
                    1e-10);
      }
    }
  });
}

TEST_P(DistSweep, DistSyevMatchesSerial) {
  const int p = GetParam();
  run(p, [p](Comm& comm) {
    const Index n = 16;
    Rng rng(14);
    la::RealMatrix a = la::RealMatrix::random_normal(n, n, rng);
    for (Index i = 0; i < n; ++i) {
      for (Index j = 0; j < i; ++j) a(j, i) = a(i, j);
    }
    const Layout layout = Layout::block_row(n, n, p);
    DistMatrix dist(layout, comm.rank());
    dist.fill_global([&a](Index i, Index j) { return a(i, j); });

    const DistEigResult result = dist_syev(comm, dist);
    const la::EigResult serial = la::syev(a.view());
    for (Index i = 0; i < n; ++i) {
      EXPECT_NEAR(result.values[static_cast<std::size_t>(i)],
                  serial.values[static_cast<std::size_t>(i)], 1e-9);
    }
    // Vectors come back in the input layout and diagonalize A:
    // gather and check the residual.
    const la::RealMatrix v = result.vectors.gather(comm, 0);
    if (comm.rank() == 0) {
      la::EigResult check;
      check.values = result.values;
      check.vectors = v;
      EXPECT_LT(la::eig_residual(a.view(), check), 1e-8);
    }
  });
}

TEST_P(DistSweep, DistSyevJacobiMethodMatchesSerial) {
  const int p = GetParam();
  run(p, [p](Comm& comm) {
    const Index n = 14;
    Rng rng(21);
    la::RealMatrix a = la::RealMatrix::random_normal(n, n, rng);
    for (Index i = 0; i < n; ++i) {
      for (Index j = 0; j < i; ++j) a(j, i) = a(i, j);
    }
    const Layout layout = Layout::block_row(n, n, p);
    DistMatrix dist(layout, comm.rank());
    dist.fill_global([&a](Index i, Index j) { return a(i, j); });

    const DistEigResult result =
        dist_syev(comm, dist, DistEigMethod::kJacobi);
    const la::EigResult serial = la::syev(a.view());
    for (Index i = 0; i < n; ++i) {
      EXPECT_NEAR(result.values[static_cast<std::size_t>(i)],
                  serial.values[static_cast<std::size_t>(i)], 1e-8);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistSweep, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace lrt::par
