// Orthonormalization utilities: CholQR, QR fallback, projection.
#include <gtest/gtest.h>

#include <cmath>

#include "la/blas.hpp"
#include "la/ortho.hpp"

namespace lrt::la {
namespace {

TEST(CholQr, OrthonormalizesWellConditionedBlock) {
  Rng rng(1);
  RealMatrix a = RealMatrix::random_normal(50, 8, rng);
  EXPECT_TRUE(cholqr(a.view()));
  EXPECT_LT(orthogonality_error(a.view()), 1e-10);
}

TEST(CholQr, PreservesColumnSpan) {
  Rng rng(2);
  const RealMatrix original = RealMatrix::random_normal(30, 4, rng);
  RealMatrix q = original;
  cholqr2(q.view());
  // original columns must be expressible in the Q basis:
  // ||original - Q Qᵀ original|| ≈ 0.
  const RealMatrix coeff =
      gemm(Trans::kYes, Trans::kNo, q.view(), original.view());
  RealMatrix residual = original;
  gemm(Trans::kNo, Trans::kNo, -1.0, q.view(), coeff.view(), 1.0,
       residual.view());
  EXPECT_LT(frobenius_norm(residual.view()),
            1e-10 * frobenius_norm(original.view()));
}

TEST(CholQr, FallsBackOnRankDeficiency) {
  // A zero column makes the Gram matrix exactly singular: Cholesky must
  // fail and the QR fallback engage (reported via `false`).
  RealMatrix a(10, 2);
  for (Index i = 0; i < 10; ++i) {
    a(i, 0) = static_cast<Real>(i + 1);
    a(i, 1) = 0.0;
  }
  EXPECT_FALSE(cholqr(a.view()));
}

TEST(CholQr2, MachinePrecisionForIllConditioned) {
  // Columns with wildly different scales.
  Rng rng(3);
  RealMatrix a = RealMatrix::random_normal(60, 6, rng);
  for (Index i = 0; i < 60; ++i) {
    a(i, 0) *= 1e-7;
    a(i, 5) *= 1e+5;
  }
  cholqr2(a.view());
  EXPECT_LT(orthogonality_error(a.view()), 1e-12);
}

TEST(OrthoQr, AlwaysOrthonormalizes) {
  Rng rng(4);
  RealMatrix a = RealMatrix::random_normal(25, 5, rng);
  ortho_qr(a.view());
  EXPECT_LT(orthogonality_error(a.view()), 1e-12);
}

TEST(ProjectOut, RemovesComponentsInQ) {
  Rng rng(5);
  RealMatrix q = RealMatrix::random_normal(40, 5, rng);
  cholqr2(q.view());
  RealMatrix x = RealMatrix::random_normal(40, 3, rng);
  project_out(q.view(), x.view());
  const RealMatrix overlap = gemm(Trans::kYes, Trans::kNo, q.view(), x.view());
  EXPECT_LT(max_abs(overlap.view()), 1e-11);
}

TEST(ProjectOut, IdempotentOnOrthogonalInput) {
  Rng rng(6);
  RealMatrix q = RealMatrix::random_normal(40, 4, rng);
  cholqr2(q.view());
  RealMatrix x = RealMatrix::random_normal(40, 2, rng);
  project_out(q.view(), x.view());
  const RealMatrix before = x;
  project_out(q.view(), x.view());
  EXPECT_LT(max_abs_diff(before.view(), x.view()), 1e-11);
}

TEST(OrthogonalityError, ZeroForIdentityBasis) {
  RealMatrix eye = RealMatrix::identity(5);
  EXPECT_NEAR(orthogonality_error(eye.view()), 0.0, 1e-15);
}

}  // namespace
}  // namespace lrt::la
