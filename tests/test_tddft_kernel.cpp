// f_Hxc kernel application tests.
#include <gtest/gtest.h>

#include <cmath>

#include "dft/xc.hpp"
#include "tddft/kernel.hpp"

namespace lrt::tddft {
namespace {

struct KernelFixture {
  grid::RealSpaceGrid grid{grid::UnitCell::cubic(8.0), {10, 10, 10}};
  grid::GVectors gvectors{grid};
  std::vector<Real> density;

  KernelFixture() {
    density.assign(static_cast<std::size_t>(grid.size()), 0.0);
    for (Index i = 0; i < grid.size(); ++i) {
      const grid::Vec3 r = grid.position(i);
      const grid::Vec3 d = grid.cell().minimum_image({4, 4, 4}, r);
      density[static_cast<std::size_t>(i)] =
          0.3 * std::exp(-grid::norm2(d) / 3.0) + 0.01;
    }
  }
};

TEST(HxcKernel, HartreeOnlyMatchesPoissonSolve) {
  KernelFixture f;
  const HxcKernel kernel(f.grid, f.gvectors, f.density,
                         /*include_xc=*/false);
  // Apply to one test column.
  la::RealMatrix in(f.grid.size(), 1);
  for (Index i = 0; i < f.grid.size(); ++i) {
    in(i, 0) = f.density[static_cast<std::size_t>(i)];
  }
  la::RealMatrix out(f.grid.size(), 1);
  kernel.apply(in.view(), out.view());

  const fft::PoissonSolver poisson(
      fft::Fft3D(f.grid.shape()[0], f.grid.shape()[1], f.grid.shape()[2]),
      f.gvectors.g2_table());
  std::vector<Real> expected(static_cast<std::size_t>(f.grid.size()));
  poisson.solve(f.density.data(), expected.data());
  for (Index i = 0; i < f.grid.size(); i += 37) {
    EXPECT_NEAR(out(i, 0), expected[static_cast<std::size_t>(i)], 1e-12);
  }
}

TEST(HxcKernel, XcPartIsDiagonalMultiply) {
  KernelFixture f;
  const HxcKernel with_xc(f.grid, f.gvectors, f.density, true);
  const HxcKernel without(f.grid, f.gvectors, f.density, false);

  Rng rng(1);
  la::RealMatrix in = la::RealMatrix::random_normal(f.grid.size(), 2, rng);
  la::RealMatrix out1(f.grid.size(), 2), out2(f.grid.size(), 2);
  with_xc.apply(in.view(), out1.view());
  without.apply(in.view(), out2.view());

  for (Index i = 0; i < f.grid.size(); i += 53) {
    for (Index j = 0; j < 2; ++j) {
      const Real fxc = dft::lda_fxc(f.density[static_cast<std::size_t>(i)]);
      EXPECT_NEAR(out1(i, j) - out2(i, j), fxc * in(i, j), 1e-10);
    }
  }
}

TEST(HxcKernel, OperatorIsSymmetricUnderGridInnerProduct) {
  // <f, K g> == <K f, g> — required for a symmetric Casida matrix.
  KernelFixture f;
  const HxcKernel kernel(f.grid, f.gvectors, f.density, true);
  Rng rng(2);
  la::RealMatrix a = la::RealMatrix::random_normal(f.grid.size(), 1, rng);
  la::RealMatrix b = la::RealMatrix::random_normal(f.grid.size(), 1, rng);
  la::RealMatrix ka(f.grid.size(), 1), kb(f.grid.size(), 1);
  kernel.apply(a.view(), ka.view());
  kernel.apply(b.view(), kb.view());
  Real lhs = 0, rhs = 0;
  for (Index i = 0; i < f.grid.size(); ++i) {
    lhs += a(i, 0) * kb(i, 0);
    rhs += ka(i, 0) * b(i, 0);
  }
  EXPECT_NEAR(lhs, rhs, 1e-8 * (std::abs(lhs) + 1));
}

TEST(HxcKernel, ProfilerReceivesFftPhase) {
  KernelFixture f;
  const HxcKernel kernel(f.grid, f.gvectors, f.density, true);
  la::RealMatrix in(f.grid.size(), 1, 1.0);
  la::RealMatrix out(f.grid.size(), 1);
  obs::WallProfiler profiler;
  kernel.apply(in.view(), out.view(), &profiler);
  EXPECT_GT(profiler.total("fft"), 0.0);
}

TEST(HxcKernel, ShapeChecks) {
  KernelFixture f;
  const HxcKernel kernel(f.grid, f.gvectors, f.density, true);
  la::RealMatrix in(5, 1), out(f.grid.size(), 1);
  EXPECT_THROW(kernel.apply(in.view(), out.view()), Error);
}

}  // namespace
}  // namespace lrt::tddft
