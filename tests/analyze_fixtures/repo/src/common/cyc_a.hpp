// Seeds: the upward half of a common <-> obs module cycle (and, being
// upward, also an order violation common -> obs). With the baseline edge
// `layer-dag common -> obs` both the violation and the cycle resolve to
// baselined, mirroring the grandfathered ScopedPhase shim in the real
// tree.
#pragma once

#include "obs/cyc_b.hpp"

namespace fixture {
inline int a() { return 1; }
}  // namespace fixture
