// Seeds: a src/ header without #pragma once -> one `pragma-once` finding.
namespace fixture {
inline int no_guard() { return 3; }
}  // namespace fixture
