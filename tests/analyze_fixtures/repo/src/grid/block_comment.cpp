// Seeds: token-awareness for the naked-new-delete gate. The `new` and
// `delete` inside the block comment and the string literal below must NOT
// be findings (the old grep gate flagged both); the real allocation pair
// further down must. `= delete` is a declaration, not a deallocation.
namespace fixture {

/* Legacy code kept for reference:
   double* p = new double[n];
   delete[] p;
*/
inline const char* kBanner = "allocated via new Widget(), freed via delete";

inline double first_element(int n) {
  double* p = new double[static_cast<unsigned>(n)];  // finding: naked new
  const double head = p[0];
  delete[] p;  // finding: naked delete
  return head;
}

struct NoCopy {
  NoCopy() = default;
  NoCopy(const NoCopy&) = delete;  // clean: deleted function, not delete-expr
};

}  // namespace fixture
