// Seeds: layer-dag order violation — ft (between io and par) includes
// tddft (top of the numeric stack). The resilience layer must never
// depend on the solvers it checkpoints; adapters point the other way.
// Expected: one `layer-dag` finding on the include line; no cycle (no
// tddft file includes ft in this corpus).
#pragma once

#include "tddft/driver.hpp"

namespace fixture {
inline int uses_tddft() { return 3; }
}  // namespace fixture
