// Seeds: inline suppression handling for banned-volatile. The first two
// declarations are covered by a directive (standalone line above, then
// same-line) and must resolve to suppressed; the third has no directive
// and stays a new finding.
namespace fixture {

// lrt-analyze: allow(banned-volatile)
volatile int covered_by_line_above = 0;

volatile int covered_same_line = 1;  // lrt-analyze: allow(banned-volatile)

volatile int uncovered = 2;  // finding: no directive

}  // namespace fixture
