// Seeds: the downward half of the common <-> obs cycle. obs -> common is
// fine order-wise; this include only closes the cycle opened by
// common/cyc_a.hpp.
#pragma once

#include "common/cyc_a.hpp"

namespace fixture {
inline int b() { return 2; }
}  // namespace fixture
