// counter-registry fixture. The test config registers only
// "fixture.good"; everything except the rogue literal must stay silent.

namespace fx {

const char* dynamic_name();
const char* suffix();

void touch_counters() {
  obs::counter("fixture.good").add(1);         // clean: registered
  obs::counter("fixture.rogue").add(1);        // finding: unregistered
  // lrt-analyze: allow(counter-registry)
  obs::counter("fixture.allowed").add(1);      // suppressed
  obs::counter(dynamic_name()).add(1);         // clean: not a literal
  obs::counter("fixture." + suffix()).add(1);  // clean: runtime concat
}

}  // namespace fx
