// Seeds: layer-dag order violation — la (rank 3) includes par (rank 6).
// Expected: one `layer-dag` finding on the include line; no cycle (par
// never includes la in this corpus).
#pragma once

#include "par/above.hpp"

namespace fixture {
inline int uses_par() { return fixture::par_value(); }
}  // namespace fixture
