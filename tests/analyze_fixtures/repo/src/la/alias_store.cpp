// omp-race fixture (aliasing): a region-local pointer saved from
// `.data()` is a window onto shared storage, not private state, so a
// dereferencing write through it races. bad_alias_store seeds exactly
// one finding; clean_alias exercises the exemptions: loop-variable
// indexing, pointer reassignment (writes nothing shared), and an alias
// whose origin is itself region-local.

namespace fx {

struct Span {
  double* data();
};

struct Local {
  double* data();
};

double bad_alias_store(Span& out, int n) {
  double sum = 0.0;
#pragma omp parallel for reduction(+ : sum)
  for (int i = 0; i < n; ++i) {
    double* p = out.data();
    p[0] += 1.0;  // finding: write through 'p', an alias of shared 'out'
    sum += p[0];
  }
  return sum;
}

void clean_alias(Span& out, int n) {
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    double* q = out.data();
    q[i] = 1.0;  // clean: indexed by the privatized loop variable
    q = q + 1;   // clean: advancing the pointer itself is private
    Local tmp;
    double* r = tmp.data();
    r[0] = 2.0;  // clean: the alias origin is region-local
  }
}

}  // namespace fx
