// hot-path-purity fixture: this TU is promoted to -O3 by the fixture
// src/CMakeLists.txt, so every function body here is a hot path.
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace fx {

double hot_violations(int n) {
  void* scratch = std::malloc(64);  // finding: C heap call
  std::free(scratch);               // finding: C heap call
  std::printf("%d\n", n);           // finding: I/O call

  std::vector<int> grown;
  for (int i = 0; i < n; ++i) {
    grown.push_back(i);  // finding: growth in a loop without reserve
  }

  // lrt-analyze: allow(hot-path-purity)
  std::printf("allowed\n");  // suppressed by the inline allow
  return static_cast<double>(grown.size());
}

double hot_clean(int n) {
  std::vector<int> reserved;
  reserved.reserve(static_cast<unsigned long>(n));
  for (int i = 0; i < n; ++i) {
    reserved.push_back(i);  // clean: reserve() precedes the loop
  }
  std::vector<int> setup;
  setup.push_back(1);  // clean: one-off growth outside any loop
  return static_cast<double>(reserved.size() + setup.size());
}

}  // namespace fx
