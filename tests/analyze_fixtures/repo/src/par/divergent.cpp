// Seeds: collectives lexically nested in rank-dependent control flow.
// Expected `collective-divergence` findings: the allreduce under
// `if (comm.rank() == 0)`, the bcast in its else branch, and the barrier
// in the single-statement (braceless) rank body. The trailing barrier and
// the gather under a size-based loop are clean.
namespace fixture {

struct Comm {
  int rank() const { return 0; }
  int size() const { return 1; }
  void allreduce(double* x, int n) const;
  void bcast(double* x, int n, int root) const;
  void gather(const double* x, double* y, int n) const;
  void barrier() const;
};

void divergent(const Comm& comm, double* x) {
  if (comm.rank() == 0) {
    comm.allreduce(x, 1);  // finding: inside rank-dependent block
  } else {
    comm.bcast(x, 1, 0);  // finding: else of a rank-dependent if
  }
  if (comm.rank() != 0)
    comm.barrier();  // finding: braceless rank-dependent statement
  comm.barrier();  // clean: every rank reaches this
  for (int i = 0; i < comm.size(); ++i) {
    comm.gather(x, x, 1);  // clean: size-based loop is not rank-dependent
  }
}

}  // namespace fixture
