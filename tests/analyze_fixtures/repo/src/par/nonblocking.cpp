// Seeds: nonblocking collectives in rank-dependent control flow.
// Expected `collective-divergence` finding: the i_alltoallv issued only
// on rank 0 — the matching ranks never post their sends, so the waits
// deadlock. The unconditional double-buffered pipeline below it is the
// clean twin: every rank issues and waits the same sequence.
namespace fixture {

struct Request {
  void wait();
};

struct NbComm {
  int rank() const { return 0; }
  int size() const { return 1; }
  Request i_alltoallv(const double* s, const int* sc, double* r,
                      const int* rc) const;
  Request i_allgatherv(const double* s, int n, double* r,
                       const int* rc) const;
};

void skewed_exchange(const NbComm& comm, const double* s, const int* sc,
                     double* r, const int* rc) {
  if (comm.rank() == 0) {
    Request req = comm.i_alltoallv(s, sc, r, rc);  // finding: rank-guarded
    req.wait();
  }
}

void overlapped_exchange(const NbComm& comm, const double* s, const int* sc,
                         double* r, const int* rc) {
  // Clean: both slices issue and wait on every rank; overlap does not
  // make the schedule rank-dependent.
  Request first = comm.i_alltoallv(s, sc, r, rc);
  Request second = comm.i_allgatherv(s, 1, r, rc);
  first.wait();
  second.wait();
}

}  // namespace fixture
