// Support header for bad_layer.hpp; clean on its own.
#pragma once

namespace fixture {
inline int par_value() { return 7; }
}  // namespace fixture
