// collective-divergence fixture (interprocedural): a call under
// rank-dependent control flow whose callee transitively enters a
// collective diverges just like a lexically nested collective.
// bad_reach seeds exactly one finding through the finish -> sync_all
// chain; clean_reach shows the unconditional call and a rank-guarded
// call to a collective-free helper staying silent.

namespace fixture {

struct Comm2 {
  int rank() const;
  void barrier() const;
};

int note_rank(const Comm2& comm) { return comm.rank(); }

void sync_all(const Comm2& comm) { comm.barrier(); }

void finish(const Comm2& comm) { sync_all(comm); }

void bad_reach(const Comm2& comm) {
  if (comm.rank() == 0) {
    finish(comm);  // finding: reaches 'barrier' via finish -> sync_all
  }
}

void clean_reach(const Comm2& comm) {
  finish(comm);  // clean: every rank reaches this call
  if (comm.rank() == 0) {
    note_rank(comm);  // clean: the callee enters no collective
  }
}

}  // namespace fixture
