// Seeds: a parent-relative include -> one `parent-include` finding. The
// same path spelled inside a string literal is clean.
#include "../kmeans/parent_inc_helper.hpp"

namespace fixture {
inline const char* kNotAnInclude = "#include \"../kmeans/fake.hpp\"";
}  // namespace fixture
