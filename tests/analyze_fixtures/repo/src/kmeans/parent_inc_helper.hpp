// Support header for parent_inc.cpp; clean on its own.
#pragma once

namespace fixture {
inline int helper() { return 4; }
}  // namespace fixture
