// omp-race fixture: writes to shared variables inside parallel regions.
// bad_shared_writes seeds exactly three findings; the other functions
// exercise every exemption the pass grants (reduction/private clauses,
// region-local declarations, per-iteration indexing, guarded updates,
// inline suppression).

namespace fx {

int bad_shared_writes(int n) {
  double total = 0.0;
  int hits = 0;
  double buffer[4] = {0.0, 0.0, 0.0, 0.0};
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    total += 1.0;       // finding: '+=' on shared 'total'
    hits++;             // finding: '++' on shared 'hits'
    buffer[0] = total;  // finding: '=' on shared 'buffer'
  }
  return hits + static_cast<int>(buffer[0]);
}

double clean_counterpart(int n, double* out) {
  double total = 0.0;
  int last = 0;
#pragma omp parallel for reduction(+ : total) schedule(static) \
    lastprivate(last)
  for (int i = 0; i < n; ++i) {
    double local = 1.0;  // region-local: exempt
    local *= 2.0;
    total += local;  // reduction clause: exempt
    last = i;        // lastprivate (on the spliced clause line): exempt
    out[i] = local;  // indexed by the privatized loop variable: exempt
  }
  return total + last;
}

int guarded_update(int n) {
  int shared_count = 0;
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
#pragma omp atomic
    shared_count += 1;  // guarded by the atomic directive: exempt
  }
  return shared_count;
}

int suppressed_write(int n) {
  int flag = 0;
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    // lrt-analyze: allow(omp-race)
    flag = 1;  // suppressed by the inline allow
  }
  return flag + n;
}

}  // namespace fx
