// omp-race fixture (interprocedural): forwarding a shared variable to a
// callee that writes its non-const reference parameter races exactly
// like an in-region assignment. bad_callee_write seeds two findings —
// one through a two-hop chain (accumulate -> add_into), one direct
// (bump). clean_callee_write exercises the exemptions: region-local and
// reduction-clause arguments, and a callee that only reads.

namespace fx {

void add_into(double& acc, double v) { acc += v; }

void accumulate(double& acc, double v) { add_into(acc, v); }

void bump(int& h) { ++h; }

double probe(const double& x) { return x * 2.0; }

double bad_callee_write(int n) {
  double total = 0.0;
  int hits = 0;
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    accumulate(total, 1.0);  // finding: writes shared 'total'
                             //   (accumulate -> add_into)
    bump(hits);              // finding: writes shared 'hits'
  }
  return total + hits;
}

double clean_callee_write(int n) {
  double total = 0.0;
#pragma omp parallel for reduction(+ : total)
  for (int i = 0; i < n; ++i) {
    double local = 0.0;
    accumulate(local, 1.0);    // clean: region-local target
    local += probe(total);     // clean: probe only reads its argument
    accumulate(total, local);  // clean: reduction-clause target
  }
  return total;
}

}  // namespace fx
