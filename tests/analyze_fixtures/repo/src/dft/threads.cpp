// Seeds: std::thread outside par/runtime + par/check (banned-thread) and
// sleep-based waiting (banned-sleep). `std::this_thread` alone is not a
// std::thread construction and must not double-count.
#include <chrono>
#include <thread>

namespace fixture {

void spin() {
  std::thread worker([] {});  // finding: banned-thread
  std::this_thread::sleep_for(
      std::chrono::milliseconds(1));  // finding: banned-sleep
  worker.join();
}

}  // namespace fixture
