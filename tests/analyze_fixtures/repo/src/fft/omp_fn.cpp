// hot-path-purity fixture for the function-scope rule: this TU is NOT
// -O3-promoted, but a function lexically containing an omp region is hot
// anyway. cold_fn shows the counterexample.
#include <vector>

namespace fx {

void omp_hot(int n, double* out) {
  std::vector<double> tmp;
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    out[i] = static_cast<double>(i);  // race-exempt: indexed by i
  }
  for (int i = 0; i < n; ++i) {
    tmp.push_back(0.0);  // finding: growth in a loop, function is hot
  }
}

void cold_fn(std::vector<double>* v) {
  for (int i = 0; i < 3; ++i) {
    v->push_back(0.0);  // clean: no omp region here, TU not promoted
  }
}

}  // namespace fx
