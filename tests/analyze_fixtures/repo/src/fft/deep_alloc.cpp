// hot-path-purity fixture (interprocedural), hot half: this TU is
// promoted to -O3 by the fixture src/CMakeLists.txt. A call inside one
// of its loops whose callee allocates two levels down
// (grab_scratch -> make_scratch, defined in fft/alloc_helpers.cpp)
// flags at the call site — the impurity is invisible lexically. The
// setup-time call outside the loop and the pure in-loop call are clean.

namespace fx {

double* grab_scratch(int n);
double pure_helper(double x);

double bad_deep_alloc(int n) {
  double acc = 0.0;
  double* setup = grab_scratch(n);  // clean: setup-time, outside any loop
  for (int i = 0; i < n; ++i) {
    double* t = grab_scratch(n);  // finding: allocates ('malloc') via
                                  //   grab_scratch -> make_scratch
    acc += pure_helper(t[0] + setup[0]);  // clean: callee is pure
  }
  return acc;
}

}  // namespace fx
