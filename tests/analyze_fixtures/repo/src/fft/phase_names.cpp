// Seeds: one unregistered Span name ("fixture_unregistered") next to a
// registered one ("fft") and a PhaseTimer with a registered name. Only
// the unregistered literal should produce a `phase-registry` finding.
namespace obs {
struct Span {
  explicit Span(const char* name);
};
}  // namespace obs

struct PhaseTimer {
  PhaseTimer(int& clock, const char* name);
};

void traced(int& clock) {
  obs::Span ok("fft");
  obs::Span bad("fixture_unregistered");
  PhaseTimer timer(clock, "mpi");
}
