// hot-path-purity fixture (interprocedural), helper half: these live in
// a TU that is neither -O3-promoted nor omp-containing, so nothing here
// is flagged directly. The malloc two calls down surfaces at the hot
// call site in fft/deep_alloc.cpp via the call-graph summaries.

namespace fx {

double* make_scratch(int n) {
  void* raw = malloc(static_cast<unsigned long>(n) * sizeof(double));
  return static_cast<double*>(raw);
}

double* grab_scratch(int n) { return make_scratch(n); }

double pure_helper(double x) { return x * 2.0; }

}  // namespace fx
