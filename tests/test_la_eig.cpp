// Symmetric and generalized eigensolver tests.
#include <gtest/gtest.h>

#include <cmath>

#include "la/blas.hpp"
#include "la/eig.hpp"
#include "la/ortho.hpp"

namespace lrt::la {
namespace {

TEST(Syev, DiagonalMatrix) {
  RealMatrix a{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}};
  const EigResult r = syev(a.view());
  ASSERT_EQ(r.values.size(), 3u);
  EXPECT_NEAR(r.values[0], 1.0, 1e-12);
  EXPECT_NEAR(r.values[1], 2.0, 1e-12);
  EXPECT_NEAR(r.values[2], 3.0, 1e-12);
}

TEST(Syev, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  RealMatrix a{{2, 1}, {1, 2}};
  const EigResult r = syev(a.view());
  EXPECT_NEAR(r.values[0], 1.0, 1e-12);
  EXPECT_NEAR(r.values[1], 3.0, 1e-12);
}

TEST(Syev, OneByOneAndEmpty) {
  RealMatrix a{{5}};
  const EigResult r = syev(a.view());
  EXPECT_NEAR(r.values[0], 5.0, 1e-14);
  EXPECT_NEAR(r.vectors(0, 0), 1.0, 1e-14);
}

class SyevSizes : public ::testing::TestWithParam<Index> {};

TEST_P(SyevSizes, ResidualAndOrthogonality) {
  const Index n = GetParam();
  Rng rng(static_cast<unsigned>(n));
  RealMatrix a = RealMatrix::random_normal(n, n, rng);
  // Symmetrize.
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < i; ++j) {
      a(j, i) = a(i, j);
    }
  }
  const EigResult r = syev(a.view());
  EXPECT_LT(eig_residual(a.view(), r), 1e-9 * n);
  EXPECT_LT(orthogonality_error(r.vectors.view()), 1e-11);
  // Ascending.
  for (Index i = 1; i < n; ++i) {
    EXPECT_LE(r.values[static_cast<std::size_t>(i - 1)],
              r.values[static_cast<std::size_t>(i)] + 1e-12);
  }
  // Trace preservation.
  Real trace = 0, sum = 0;
  for (Index i = 0; i < n; ++i) {
    trace += a(i, i);
    sum += r.values[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(trace, sum, 1e-8 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SyevSizes,
                         ::testing::Values<Index>(2, 3, 5, 10, 33, 64, 100));

TEST(Syev, DegenerateEigenvaluesHandled) {
  // Identity block plus shifted block: eigenvalues {1,1,1,4,4}.
  RealMatrix a(5, 5);
  for (Index i = 0; i < 3; ++i) a(i, i) = 1.0;
  for (Index i = 3; i < 5; ++i) a(i, i) = 4.0;
  const EigResult r = syev(a.view());
  EXPECT_NEAR(r.values[0], 1.0, 1e-12);
  EXPECT_NEAR(r.values[2], 1.0, 1e-12);
  EXPECT_NEAR(r.values[3], 4.0, 1e-12);
  EXPECT_LT(orthogonality_error(r.vectors.view()), 1e-12);
}

TEST(Sygv, MatchesDirectSubstitution) {
  Rng rng(9);
  const Index n = 12;
  // A symmetric, B SPD.
  RealMatrix a = RealMatrix::random_normal(n, n, rng);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < i; ++j) a(j, i) = a(i, j);
  }
  const RealMatrix c = RealMatrix::random_normal(n, n, rng);
  RealMatrix b = gram(c.view());
  for (Index i = 0; i < n; ++i) b(i, i) += n;

  const EigResult r = sygv(a.view(), b.view());
  // Check A x = λ B x for each pair.
  const RealMatrix ax = gemm(Trans::kNo, Trans::kNo, a.view(),
                             r.vectors.view());
  const RealMatrix bx = gemm(Trans::kNo, Trans::kNo, b.view(),
                             r.vectors.view());
  for (Index j = 0; j < n; ++j) {
    Real err = 0;
    for (Index i = 0; i < n; ++i) {
      const Real d =
          ax(i, j) - r.values[static_cast<std::size_t>(j)] * bx(i, j);
      err += d * d;
    }
    EXPECT_LT(std::sqrt(err), 1e-8);
  }
  // B-orthonormality: XᵀBX = I.
  const RealMatrix xtbx =
      gemm(Trans::kYes, Trans::kNo, r.vectors.view(), bx.view());
  EXPECT_LT(max_abs_diff(xtbx.view(), RealMatrix::identity(n).view()), 1e-9);
}

TEST(Sygv, IdentityBReducesToSyev) {
  Rng rng(10);
  RealMatrix a = RealMatrix::random_normal(6, 6, rng);
  for (Index i = 0; i < 6; ++i) {
    for (Index j = 0; j < i; ++j) a(j, i) = a(i, j);
  }
  const EigResult general = sygv(a.view(), RealMatrix::identity(6).view());
  const EigResult plain = syev(a.view());
  for (Index i = 0; i < 6; ++i) {
    EXPECT_NEAR(general.values[static_cast<std::size_t>(i)],
                plain.values[static_cast<std::size_t>(i)], 1e-10);
  }
}

}  // namespace
}  // namespace lrt::la
