// Full linear-response Casida (beyond TDA): dense vs implicit, TDA
// comparison, and physical sanity.
#include <gtest/gtest.h>

#include <cmath>

#include "dft/synthetic.hpp"
#include "la/blas.hpp"
#include "tddft/driver.hpp"
#include "tddft/full_casida.hpp"

namespace lrt::tddft {
namespace {

struct Fixture {
  CasidaProblem problem;
  grid::GVectors gvectors;
  HxcKernel kernel;

  Fixture()
      : problem(make()),
        gvectors(problem.grid),
        kernel(problem.grid, gvectors, problem.ground_density, true) {}

  static CasidaProblem make() {
    const grid::RealSpaceGrid g(grid::UnitCell::cubic(8.0), {10, 10, 10});
    dft::SyntheticOptions opts;
    opts.num_centers = 8;
    opts.seed = 31;
    return make_problem_from_synthetic(
        g, dft::make_synthetic_orbitals(g, 5, 4, opts));
  }
};

TEST(FullCasida, OmegaIsSymmetricWithDSquaredDiagonalBaseline) {
  Fixture f;
  const la::RealMatrix omega = build_omega_naive(f.problem, f.kernel);
  ASSERT_EQ(omega.rows(), f.problem.ncv());
  for (Index i = 0; i < omega.rows(); ++i) {
    for (Index j = 0; j < i; ++j) {
      EXPECT_NEAR(omega(i, j), omega(j, i), 1e-10);
    }
  }
}

TEST(FullCasida, ReducesToD2WithoutKernel) {
  // With a zero Hxc kernel Ω = D², so ω = D exactly.
  Fixture f;
  // Hartree-only kernel still couples; build from a problem where the
  // coupling is subtracted by comparing against energy differences with
  // the RPA-off trick: instead verify via the dense algebra on a zero V.
  const std::vector<Real> d = energy_differences(f.problem);
  la::RealMatrix zero_v(f.problem.ncv(), f.problem.ncv());
  // Ω = D^{1/2}(D + 0)D^{1/2} = D².
  // Use solve path: eigenvalues of diag(d²) are sorted d².
  la::RealMatrix omega(f.problem.ncv(), f.problem.ncv());
  for (Index i = 0; i < omega.rows(); ++i) {
    omega(i, i) = d[static_cast<std::size_t>(i)] * d[static_cast<std::size_t>(i)];
  }
  const FullCasidaSolution s = solve_full_casida_dense(omega, 3);
  std::vector<Real> sorted = d;
  std::sort(sorted.begin(), sorted.end());
  for (Index i = 0; i < 3; ++i) {
    EXPECT_NEAR(s.energies[static_cast<std::size_t>(i)],
                sorted[static_cast<std::size_t>(i)], 1e-12);
  }
  (void)zero_v;
}

TEST(FullCasida, IsdfOmegaConvergesToNaive) {
  Fixture f;
  const la::RealMatrix dense = build_omega_naive(f.problem, f.kernel);
  isdf::IsdfOptions opts;
  opts.nmu = f.problem.ncv();  // full rank -> exact
  opts.method = isdf::PointMethod::kQrcp;
  opts.qrcp.randomized = false;
  const isdf::IsdfResult dec = isdf_decompose(
      f.problem.grid, f.problem.psi_v.view(), f.problem.psi_c.view(), opts);
  const la::RealMatrix isdf_omega =
      build_omega_isdf(f.problem, dec, f.kernel);
  EXPECT_LT(la::max_abs_diff(dense.view(), isdf_omega.view()),
            1e-3 * (1 + la::max_abs(dense.view())));
}

TEST(FullCasida, ImplicitApplyMatchesDenseOmega) {
  Fixture f;
  isdf::IsdfOptions opts;
  opts.nmu = 16;
  const isdf::IsdfResult dec = isdf_decompose(
      f.problem.grid, f.problem.psi_v.view(), f.problem.psi_c.view(), opts);
  const la::RealMatrix omega_dense = build_omega_isdf(f.problem, dec, f.kernel);
  const la::RealMatrix m = build_kernel_projection(dec, f.kernel);
  const ImplicitOmega omega(energy_differences(f.problem),
                            la::to_matrix<Real>(m.view()),
                            la::to_matrix<Real>(dec.psi_v_mu.view()),
                            la::to_matrix<Real>(dec.psi_c_mu.view()));

  Rng rng(3);
  const la::RealMatrix x =
      la::RealMatrix::random_normal(f.problem.ncv(), 2, rng);
  la::RealMatrix y(f.problem.ncv(), 2);
  omega.apply(x.view(), y.view());
  const la::RealMatrix expected =
      la::gemm(la::Trans::kNo, la::Trans::kNo, omega_dense.view(), x.view());
  EXPECT_LT(la::max_abs_diff(y.view(), expected.view()),
            1e-8 * (1 + la::max_abs(expected.view())));
}

TEST(FullCasida, LobpcgMatchesDenseEnergies) {
  Fixture f;
  isdf::IsdfOptions opts;
  opts.nmu = 20;
  const isdf::IsdfResult dec = isdf_decompose(
      f.problem.grid, f.problem.psi_v.view(), f.problem.psi_c.view(), opts);
  const la::RealMatrix omega_dense = build_omega_isdf(f.problem, dec, f.kernel);
  const la::RealMatrix m = build_kernel_projection(dec, f.kernel);
  const ImplicitOmega omega(energy_differences(f.problem),
                            la::to_matrix<Real>(m.view()),
                            la::to_matrix<Real>(dec.psi_v_mu.view()),
                            la::to_matrix<Real>(dec.psi_c_mu.view()));

  const FullCasidaSolution dense = solve_full_casida_dense(omega_dense, 3);
  TddftEigenOptions eopts;
  eopts.num_states = 3;
  eopts.tolerance = 1e-10;
  const FullCasidaSolution iterative =
      solve_full_casida_lobpcg(omega, eopts);
  for (Index i = 0; i < 3; ++i) {
    EXPECT_NEAR(iterative.energies[static_cast<std::size_t>(i)],
                dense.energies[static_cast<std::size_t>(i)], 1e-6);
  }
}

TEST(FullCasida, FullResponseDoesNotExceedTda) {
  // For the lowest excitation, the full response energy is <= the TDA
  // energy (variational property of the Casida formalism with positive
  // definite coupling blocks).
  Fixture f;
  DriverOptions tda;
  tda.version = Version::kNaive;
  tda.num_states = 1;
  const DriverResult tda_result = solve_casida(f.problem, tda);

  const la::RealMatrix omega = build_omega_naive(f.problem, f.kernel);
  const FullCasidaSolution full = solve_full_casida_dense(omega, 1);
  EXPECT_LE(full.energies[0], tda_result.energies[0] + 1e-10);
  EXPECT_GT(full.energies[0], 0);
}

}  // namespace
}  // namespace lrt::tddft
