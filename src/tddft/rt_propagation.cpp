#include "tddft/rt_propagation.hpp"

#include <cmath>

#include "common/error.hpp"
#include "dft/hartree.hpp"
#include "dft/pseudopotential.hpp"
#include "dft/xc.hpp"

namespace lrt::tddft {

using Complex = std::complex<Real>;

ComplexKsOperator::ComplexKsOperator(const grid::RealSpaceGrid& grid,
                                     const grid::GVectors& gvectors)
    : nr_(grid.size()),
      fft_(grid.shape()[0], grid.shape()[1], grid.shape()[2]),
      half_g2_(static_cast<std::size_t>(nr_)),
      veff_(static_cast<std::size_t>(nr_), Real{0}) {
  for (Index i = 0; i < nr_; ++i) {
    half_g2_[static_cast<std::size_t>(i)] = Real{0.5} * gvectors.g2(i);
  }
}

void ComplexKsOperator::set_potential(std::vector<Real> veff) {
  LRT_CHECK(static_cast<Index>(veff.size()) == nr_, "potential size mismatch");
  veff_ = std::move(veff);
}

void ComplexKsOperator::apply(const ComplexMatrix& psi,
                              ComplexMatrix& out) const {
  LRT_CHECK(psi.rows() == nr_ && out.rows() == nr_ &&
                psi.cols() == out.cols(),
            "complex apply shape mismatch");
  const Index k = psi.cols();
  std::vector<Complex> work(static_cast<std::size_t>(nr_));

  for (Index j = 0; j < k; ++j) {
    for (Index i = 0; i < nr_; ++i) {
      work[static_cast<std::size_t>(i)] = psi(i, j);
    }
    fft_.forward(work.data());
    for (Index i = 0; i < nr_; ++i) {
      work[static_cast<std::size_t>(i)] *= half_g2_[static_cast<std::size_t>(i)];
    }
    fft_.inverse(work.data());
    for (Index i = 0; i < nr_; ++i) {
      out(i, j) = work[static_cast<std::size_t>(i)] +
                  veff_[static_cast<std::size_t>(i)] * psi(i, j);
    }
  }

  if (nonlocal_) {
    // The projectors are real: act on real and imaginary parts separately.
    la::RealMatrix part(nr_, k), acc(nr_, k);
    for (int comp = 0; comp < 2; ++comp) {
      for (Index i = 0; i < nr_; ++i) {
        for (Index j = 0; j < k; ++j) {
          part(i, j) = comp == 0 ? psi(i, j).real() : psi(i, j).imag();
        }
      }
      acc.fill(Real{0});
      nonlocal_->accumulate(part.view(), acc.view());
      for (Index i = 0; i < nr_; ++i) {
        for (Index j = 0; j < k; ++j) {
          out(i, j) += comp == 0 ? Complex(acc(i, j), 0)
                                 : Complex(0, acc(i, j));
        }
      }
    }
  }
}

namespace {

/// Density n(r) = Σ_j f_j |ψ_j(r)|² for dv-normalized complex orbitals.
std::vector<Real> density_of(const ComplexMatrix& psi,
                             const std::vector<Real>& occupations) {
  const Index nr = psi.rows();
  std::vector<Real> n(static_cast<std::size_t>(nr), Real{0});
  for (Index j = 0; j < psi.cols(); ++j) {
    const Real f = occupations[static_cast<std::size_t>(j)];
    if (f < 1e-14) continue;
    for (Index i = 0; i < nr; ++i) {
      n[static_cast<std::size_t>(i)] += f * std::norm(psi(i, j));
    }
  }
  return n;
}

Real dipole_of(const grid::RealSpaceGrid& grid, const std::vector<Real>& n,
               int axis) {
  const Real center = grid.cell().length(axis) / 2;
  Real d = 0;
  for (Index i = 0; i < grid.size(); ++i) {
    d += n[static_cast<std::size_t>(i)] *
         (grid.position(i)[static_cast<std::size_t>(axis)] - center);
  }
  return d * grid.dv();
}

}  // namespace

RtResult propagate(const grid::RealSpaceGrid& grid,
                   const grid::GVectors& gvectors,
                   const grid::Structure& structure,
                   la::RealConstView orbitals,
                   const std::vector<Real>& occupations,
                   const std::vector<Real>& vloc, const RtOptions& options) {
  const Index nr = grid.size();
  const Index nb = orbitals.cols();
  LRT_CHECK(orbitals.rows() == nr, "orbital grid mismatch");
  LRT_CHECK(static_cast<Index>(occupations.size()) == nb,
            "occupations per orbital required");
  LRT_CHECK(static_cast<Index>(vloc.size()) == nr, "vloc size mismatch");
  LRT_CHECK(options.dt > 0 && options.steps >= 1 && options.taylor_order >= 2,
            "bad propagation options");

  ComplexKsOperator op(grid, gvectors);
  auto nonlocal =
      std::make_shared<const dft::NonlocalProjectors>(grid, structure);
  op.set_nonlocal(nonlocal);
  const fft::PoissonSolver poisson = dft::make_poisson_solver(grid, gvectors);

  // δ-kick initial state: ψ_j -> e^{iκ x} ψ_j.
  ComplexMatrix psi(nr, nb);
  for (Index i = 0; i < nr; ++i) {
    const Real x =
        grid.position(i)[static_cast<std::size_t>(options.kick_axis)];
    const Complex phase(std::cos(options.kick * x),
                        std::sin(options.kick * x));
    for (Index j = 0; j < nb; ++j) {
      psi(i, j) = phase * orbitals(i, j);
    }
  }

  // Effective potential builder from the instantaneous density.
  std::vector<Real> vhartree(static_cast<std::size_t>(nr));
  auto build_veff = [&](const std::vector<Real>& n) {
    if (!options.include_hxc) return vloc;
    poisson.solve(n.data(), vhartree.data());
    const std::vector<Real> vxc = dft::lda_vxc_array(n);
    std::vector<Real> veff(static_cast<std::size_t>(nr));
    for (Index i = 0; i < nr; ++i) {
      veff[static_cast<std::size_t>(i)] = vloc[static_cast<std::size_t>(i)] +
                                          vhartree[static_cast<std::size_t>(i)] +
                                          vxc[static_cast<std::size_t>(i)];
    }
    return veff;
  };

  std::vector<Real> density = density_of(psi, occupations);
  op.set_potential(build_veff(density));
  const Real d0 = dipole_of(grid, density, options.kick_axis);

  RtResult result;
  result.time.reserve(static_cast<std::size_t>(options.steps + 1));
  result.dipole.reserve(static_cast<std::size_t>(options.steps + 1));
  result.time.push_back(0);
  result.dipole.push_back(0);
  result.norm_drift.push_back(0);

  ComplexMatrix term(nr, nb), h_term(nr, nb);
  const Real dv = grid.dv();

  for (Index step = 1; step <= options.steps; ++step) {
    // ψ(t+Δt) = Σ_m (-iΔt)^m/m! H^m ψ(t)  (truncated Taylor propagator).
    term = psi;
    for (Index m = 1; m <= options.taylor_order; ++m) {
      op.apply(term, h_term);
      const Complex factor =
          Complex(0, -options.dt) / static_cast<Real>(m);
      for (Index i = 0; i < nr; ++i) {
        for (Index j = 0; j < nb; ++j) {
          term(i, j) = factor * h_term(i, j);
          psi(i, j) += term(i, j);
        }
      }
    }

    density = density_of(psi, occupations);
    if (options.self_consistent) {
      op.set_potential(build_veff(density));
    }

    result.time.push_back(options.dt * static_cast<Real>(step));
    result.dipole.push_back(dipole_of(grid, density, options.kick_axis) - d0);

    Real drift = 0;
    for (Index j = 0; j < nb; ++j) {
      Real norm2 = 0;
      for (Index i = 0; i < nr; ++i) norm2 += std::norm(psi(i, j));
      drift = std::max(drift, std::abs(std::sqrt(norm2 * dv) - Real{1}));
    }
    result.norm_drift.push_back(drift);
  }
  return result;
}

std::vector<Real> dipole_spectrum(const std::vector<Real>& time,
                                  const std::vector<Real>& dipole,
                                  const std::vector<Real>& omega_grid,
                                  Real damping) {
  LRT_CHECK(time.size() == dipole.size() && time.size() >= 2,
            "time/dipole size mismatch");
  LRT_CHECK(damping >= 0, "damping must be nonnegative");
  std::vector<Real> spectrum(omega_grid.size(), Real{0});
  const Real dt = time[1] - time[0];
  // Remove the DC component: a static dipole offset otherwise swamps the
  // low-frequency end of the damped transform.
  Real mean = 0;
  for (const Real d : dipole) mean += d;
  mean /= static_cast<Real>(dipole.size());
  for (std::size_t w = 0; w < omega_grid.size(); ++w) {
    const Real omega = omega_grid[w];
    Real re = 0, im = 0;
    for (std::size_t t = 0; t < time.size(); ++t) {
      const Real weight =
          std::exp(-damping * time[t]) * (dipole[t] - mean) * dt;
      re += weight * std::cos(omega * time[t]);
      im += weight * std::sin(omega * time[t]);
    }
    spectrum[w] = std::sqrt(re * re + im * im);
  }
  return spectrum;
}

}  // namespace lrt::tddft
