// Distributed LR-TDDFT driver (paper §5).
//
// Reproduces the parallel data flow of the paper on the thread-backed
// runtime:
//  - wavefunctions and pair products are ROW-BLOCK partitioned over the
//    real-space grid (Fig 3b) for face-splitting products and GEMMs;
//  - MPI_Alltoall converts to COLUMN blocks (Fig 3a) so each rank runs
//    its FFTs (the f_Hxc kernel) on whole pair columns, then converts
//    back;
//  - Vhxc is assembled with local GEMM + Allreduce, or the pipelined
//    GEMM + MPI_Reduce of §5.3 (Fig 4-5);
//  - the naive path redistributes H to 2-D block-cyclic and calls the
//    dense eigensolver (Fig 3c); the ISDF paths run distributed K-Means
//    and keep the small factored Hamiltonian replicated for LOBPCG.
//
// Each rank accumulates wall time into the paper's Figure-8 phases
// (kmeans / fft / mpi / gemm); the returned stats carry the max across
// ranks plus the busy-time proxy used by the scaling benches (wall minus
// time blocked in communication; see DESIGN.md).
#pragma once

#include <string>

#include "kmeans/kmeans.hpp"
#include "par/comm.hpp"
#include "par/disteig.hpp"
#include "tddft/driver.hpp"

namespace lrt::tddft {

struct DistDriverOptions {
  /// kNaive or kImplicit (the end points of Table 4; the intermediate
  /// versions only differ serially).
  Version version = Version::kImplicit;
  Index num_states = 3;
  Index nmu = 0;
  Real nmu_ratio = 6.0;
  bool include_xc = true;
  TddftEigenOptions eigen;
  kmeans::KMeansOptions kmeans;
  /// Vhxc assembly: pipelined GEMM+Reduce (true) vs monolithic
  /// GEMM+Allreduce (false).
  bool pipelined_reduce = false;
  Index pipeline_chunk = 64;
  /// Dense eigensolver for the naive path: gathered SYEVD stand-in or the
  /// fully distributed one-sided Jacobi.
  par::DistEigMethod eig_method = par::DistEigMethod::kGathered;
  /// Phase-granular restart (docs/RESILIENCE.md): when non-empty and the
  /// file exists, the implicit path loads the distributed K-Means result
  /// from it and skips the whole K-Means phase; otherwise rank 0 writes
  /// the result there after the phase completes. Must be uniform across
  /// ranks (like every other option — the existence check is a branch
  /// around collectives).
  std::string checkpoint_path;
};

struct DistDriverStats {
  std::vector<Real> energies;   ///< replicated on every rank
  double wall_seconds = 0;      ///< max over ranks
  double comm_seconds = 0;      ///< max over ranks (blocked in comm calls)
  double busy_seconds = 0;      ///< max over ranks of wall - comm
  /// Phase seconds (max over ranks): kmeans, fft, mpi, gemm, diag,
  /// pair_product.
  std::vector<std::pair<std::string, double>> phases;
};

DistDriverStats solve_casida_distributed(par::Comm& comm,
                                         const CasidaProblem& problem,
                                         const DistDriverOptions& options);

}  // namespace lrt::tddft
