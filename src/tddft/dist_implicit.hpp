// Distributed implicitly factored Casida Hamiltonian.
//
// The pair space (iv, ic) is partitioned over ranks by VALENCE blocks —
// rank r owns pairs with iv in its block, all ic — so the Khatri-Rao
// factored application still works locally:
//   (C x)(μ)  = Σ_r Ψ_μ(:, block_r) Xmat_r Φ_μᵀ |_row μ   (one Allreduce)
//   (Cᵀ w)_r  = Ψ_μ(:, block_r)ᵀ diag(w) Φ_μ              (local)
// This distributes the excitation vectors X themselves — in the paper's
// large systems Nv·Nc reaches millions, so X cannot live on one rank.
#pragma once

#include "isdf/isdf.hpp"
#include "par/comm.hpp"
#include "par/layout.hpp"
#include "tddft/lobpcg_tddft.hpp"

namespace lrt::tddft {

class DistImplicitHamiltonian {
 public:
  /// All inputs replicated: `d_full` pair-ordered (Nv·Nc), `m` (Nμ x Nμ),
  /// sampled orbitals (Nμ x Nv / Nc). The constructor slices this rank's
  /// valence block. Collective by convention.
  DistImplicitHamiltonian(par::Comm& comm, const std::vector<Real>& d_full,
                          la::RealMatrix m, la::RealConstView psi_v_mu,
                          la::RealConstView psi_c_mu);

  Index global_dimension() const { return nv_global_ * nc_; }
  Index local_dimension() const { return nv_local_ * nc_; }
  Index valence_offset() const { return v_offset_; }
  Index nv_local() const { return nv_local_; }
  Index nc() const { return nc_; }

  /// This rank's slice of the energy-difference diagonal.
  const std::vector<Real>& local_d() const { return d_local_; }

  /// y_local = (H x)_local; one Allreduce of the Nμ x k contraction.
  void apply(la::RealConstView x_local, la::RealView y_local) const;

 private:
  par::Comm* comm_;
  Index nv_global_, nv_local_, v_offset_, nc_;
  std::vector<Real> d_local_;
  la::RealMatrix m_;
  la::RealMatrix psi_v_mu_local_;  ///< Nμ x nv_local (this rank's columns)
  la::RealMatrix psi_c_mu_;        ///< Nμ x Nc (replicated)
};

/// Distributed Algorithm 2: LOBPCG on the distributed operator with the
/// Eq (17) preconditioner. Energies replicated; eigenvector slabs local.
struct DistCasidaSolution {
  std::vector<Real> energies;
  la::RealMatrix local_wavefunctions;  ///< local pair rows x k
  Index iterations = 0;
  bool converged = false;
};

DistCasidaSolution solve_casida_lobpcg_distributed(
    par::Comm& comm, const DistImplicitHamiltonian& h,
    const TddftEigenOptions& options);

}  // namespace lrt::tddft
