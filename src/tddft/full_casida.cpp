#include "tddft/full_casida.hpp"

#include <cmath>

#include "la/blas.hpp"
#include "la/eig.hpp"
#include "common/random.hpp"

namespace lrt::tddft {
namespace {

/// Sandwiches a symmetric coupling matrix: Ω = D^{1/2}(D + 4V)D^{1/2}
/// given V (overwritten) and the diagonal D.
la::RealMatrix sandwich_omega(la::RealMatrix v, const std::vector<Real>& d) {
  const Index n = v.rows();
  std::vector<Real> sd(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    const Real di = d[static_cast<std::size_t>(i)];
    LRT_CHECK(di > 0, "full Casida needs positive energy differences; pair "
                          << i << " has D = " << di);
    sd[static_cast<std::size_t>(i)] = std::sqrt(di);
  }
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      v(i, j) = sd[static_cast<std::size_t>(i)] * Real{4} * v(i, j) *
                sd[static_cast<std::size_t>(j)];
    }
    v(i, i) += d[static_cast<std::size_t>(i)] * d[static_cast<std::size_t>(i)];
  }
  return v;
}

/// Extracts the raw coupling V = Pᵀ f P dv from an already-built TDA
/// Hamiltonian H = D + 2V.
la::RealMatrix coupling_from_tda(const la::RealMatrix& h,
                                 const std::vector<Real>& d) {
  la::RealMatrix v = h;
  const Index n = v.rows();
  for (Index i = 0; i < n; ++i) v(i, i) -= d[static_cast<std::size_t>(i)];
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) v(i, j) *= Real{0.5};
  }
  return v;
}

}  // namespace

la::RealMatrix build_omega_naive(const CasidaProblem& problem,
                                 const HxcKernel& kernel,
                                 obs::WallProfiler* profiler) {
  const std::vector<Real> d = energy_differences(problem);
  const la::RealMatrix h = build_hamiltonian_naive(problem, kernel, profiler);
  return sandwich_omega(coupling_from_tda(h, d), d);
}

la::RealMatrix build_omega_isdf(const CasidaProblem& problem,
                                const isdf::IsdfResult& isdf_result,
                                const HxcKernel& kernel,
                                obs::WallProfiler* profiler) {
  const std::vector<Real> d = energy_differences(problem);
  const la::RealMatrix h =
      build_hamiltonian_isdf(problem, isdf_result, kernel, profiler);
  return sandwich_omega(coupling_from_tda(h, d), d);
}

ImplicitOmega::ImplicitOmega(std::vector<Real> d, la::RealMatrix m,
                             la::RealMatrix psi_v_mu,
                             la::RealMatrix psi_c_mu)
    : implicit_(d, std::move(m), std::move(psi_v_mu), std::move(psi_c_mu)),
      d_(std::move(d)) {
  sqrt_d_.resize(d_.size());
  for (std::size_t i = 0; i < d_.size(); ++i) {
    LRT_CHECK(d_[i] > 0, "full Casida needs positive energy differences");
    sqrt_d_[i] = std::sqrt(d_[i]);
  }
}

void ImplicitOmega::apply(la::RealConstView x, la::RealView y) const {
  const Index n = dimension();
  const Index k = x.cols();
  LRT_CHECK(x.rows() == n && y.rows() == n && y.cols() == k,
            "implicit omega shape mismatch");

  // t = D^{1/2} x.
  la::RealMatrix t(n, k);
  for (Index i = 0; i < n; ++i) {
    const Real s = sqrt_d_[static_cast<std::size_t>(i)];
    for (Index j = 0; j < k; ++j) t(i, j) = s * x(i, j);
  }
  // Reuse the factored kernel through apply(): it returns D∘t + 2 CᵀMC t;
  // subtracting the diagonal part isolates the coupling term.
  la::RealMatrix full(n, k);
  implicit_.apply(t.view(), full.view());
  for (Index i = 0; i < n; ++i) {
    const Real di = d_[static_cast<std::size_t>(i)];
    const Real s = sqrt_d_[static_cast<std::size_t>(i)];
    for (Index j = 0; j < k; ++j) {
      const Real coupling = full(i, j) - di * t(i, j);  // = 2 CᵀMC t
      // Ω x = D² x + 4 D^{1/2} (CᵀMC) D^{1/2} x = D² x + 2 D^{1/2} coupling
      y(i, j) = di * di * x(i, j) + Real{2} * s * coupling;
    }
  }
}

FullCasidaSolution solve_full_casida_dense(const la::RealMatrix& omega,
                                           Index num_states) {
  LRT_CHECK(num_states >= 1 && num_states <= omega.rows(),
            "bad state count");
  const la::EigResult eig = la::syev(omega.view());
  FullCasidaSolution solution;
  for (Index i = 0; i < num_states; ++i) {
    const Real w2 = eig.values[static_cast<std::size_t>(i)];
    LRT_CHECK(w2 > 0, "negative ω² = " << w2
                                       << ": response instability (triplet "
                                          "or ghost state)");
    solution.energies.push_back(std::sqrt(w2));
  }
  solution.z_vectors =
      la::to_matrix<Real>(eig.vectors.view().cols_block(0, num_states));
  return solution;
}

FullCasidaSolution solve_full_casida_lobpcg(const ImplicitOmega& omega,
                                            const TddftEigenOptions& options) {
  const std::vector<Real>& d = omega.diagonal_d();
  const Index n = omega.dimension();

  la::BlockOperator apply = [&omega](la::RealConstView x, la::RealView y) {
    omega.apply(x, y);
  };
  // Preconditioner on the ω² scale: (D² - θ)⁻¹.
  la::BlockPreconditioner prec = [&d](la::RealView r,
                                      const std::vector<Real>& theta) {
    for (Index j = 0; j < r.cols(); ++j) {
      const Real t = theta[static_cast<std::size_t>(j)];
      for (Index i = 0; i < r.rows(); ++i) {
        const Real di = d[static_cast<std::size_t>(i)];
        Real gap = di * di - t;
        const Real floor = Real{1e-3};
        if (std::abs(gap) < floor) gap = gap < 0 ? -floor : floor;
        r(i, j) /= gap;
      }
    }
  };

  // Seed on the smallest D pairs, as in the TDA solver.
  std::vector<Index> order(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](Index a, Index b) {
    return d[static_cast<std::size_t>(a)] < d[static_cast<std::size_t>(b)];
  });
  Rng rng(options.seed);
  la::RealMatrix x0(n, options.num_states);
  for (Index j = 0; j < options.num_states; ++j) {
    x0(order[static_cast<std::size_t>(j)], j) = 1;
    for (Index i = 0; i < n; ++i) x0(i, j) += Real{0.01} * rng.normal();
  }

  la::LobpcgOptions opts;
  opts.max_iterations = options.max_iterations;
  opts.tolerance = options.tolerance;
  const la::LobpcgResult r = la::lobpcg(apply, prec, std::move(x0), opts);

  FullCasidaSolution solution;
  for (const Real w2 : r.eigenvalues) {
    LRT_CHECK(w2 > 0, "negative ω² from iterative solve");
    solution.energies.push_back(std::sqrt(w2));
  }
  solution.z_vectors = la::to_matrix<Real>(r.eigenvectors.view());
  solution.iterations = r.iterations;
  return solution;
}

}  // namespace lrt::tddft
