// Real-time TDDFT propagation (RT-TDDFT).
//
// The paper's Table 1 contrasts LR-TDDFT with the RT-TDDFT implemented in
// the same PWDFT code: instead of diagonalizing the response Hamiltonian,
// the occupied orbitals are propagated in time after a weak δ-kick dipole
// perturbation and the excitation spectrum is read off the Fourier
// transform of the induced dipole. This module provides that counterpart:
//
//   ψ_j(0⁺) = e^{i κ x} ψ_j(0)        (impulsive field along one axis)
//   i ∂ψ/∂t = H[n(t)] ψ               (adiabatic LDA)
//   d(t) = ∫ n(r,t) (x - x₀) dr       (induced dipole)
//   σ(ω) ∝ ω · Im FT[d(t) - d(0)]     (absorption)
//
// Peaks of σ(ω) sit at the same excitation energies LR-TDDFT computes —
// the cross-validation test the library runs between its two halves. The
// propagator is the 4th-order Taylor expansion of exp(-i H Δt) with a
// frozen-Hamiltonian step (optionally self-consistent via a
// predictor-corrector density update).
#pragma once

#include <complex>
#include <vector>

#include "dft/hamiltonian.hpp"
#include "grid/gvectors.hpp"
#include "la/matrix.hpp"

namespace lrt::tddft {

using ComplexMatrix = la::Matrix<std::complex<Real>>;

/// Complex-orbital application of the Kohn-Sham Hamiltonian (kinetic in
/// reciprocal space, local potential in real space, Kleinman-Bylander
/// nonlocal via the real projectors applied to both components).
class ComplexKsOperator {
 public:
  ComplexKsOperator(const grid::RealSpaceGrid& grid,
                    const grid::GVectors& gvectors);

  void set_potential(std::vector<Real> veff);
  void set_nonlocal(std::shared_ptr<const dft::NonlocalProjectors> nonlocal) {
    nonlocal_ = std::move(nonlocal);
  }

  Index grid_size() const { return nr_; }

  /// out = H psi for a block of complex orbital columns (Nr x k).
  void apply(const ComplexMatrix& psi, ComplexMatrix& out) const;

 private:
  Index nr_;
  fft::Fft3D fft_;
  std::vector<Real> half_g2_;
  std::vector<Real> veff_;
  std::shared_ptr<const dft::NonlocalProjectors> nonlocal_;
};

struct RtOptions {
  Real dt = 0.05;            ///< time step (atomic units)
  Index steps = 1000;
  Real kick = 1e-3;          ///< δ-kick strength κ (linear-response regime)
  int kick_axis = 0;         ///< 0/1/2 = x/y/z
  /// Update the Hartree+xc potential from n(t) every step (adiabatic TDDFT).
  /// false freezes H — useful for exact single-particle validation.
  bool self_consistent = true;
  /// Include Hartree + xc at all. false propagates under the bare `vloc`
  /// (independent-particle dynamics — exact validation against the KS
  /// spectrum of that potential).
  bool include_hxc = true;
  Index taylor_order = 4;    ///< expansion order of exp(-iHΔt)
};

struct RtResult {
  std::vector<Real> time;     ///< t_i
  std::vector<Real> dipole;   ///< induced dipole d(t) - d(0) along the kick
  std::vector<Real> norm_drift;  ///< max_j | ||ψ_j(t)|| - 1 |
};

/// Propagates the occupied orbitals of a converged ground state.
/// `orbitals` are dv-normalized real KS orbitals (Nr x N_occ columns);
/// `vloc` the ionic potential; the Hartree/xc parts are rebuilt from the
/// propagated density when self_consistent.
RtResult propagate(const grid::RealSpaceGrid& grid,
                   const grid::GVectors& gvectors,
                   const grid::Structure& structure,
                   la::RealConstView orbitals,
                   const std::vector<Real>& occupations,
                   const std::vector<Real>& vloc, const RtOptions& options);

/// Dipole power spectrum |FT[d]|(ω) with exponential damping, evaluated on
/// `omega_grid` by direct quadrature (the signal is short and non-uniform
/// FFT padding would be overkill).
std::vector<Real> dipole_spectrum(const std::vector<Real>& time,
                                  const std::vector<Real>& dipole,
                                  const std::vector<Real>& omega_grid,
                                  Real damping);

}  // namespace lrt::tddft
