#include "tddft/kernel.hpp"

#include "common/error.hpp"
#include "dft/xc.hpp"

namespace lrt::tddft {

HxcKernel::HxcKernel(const grid::RealSpaceGrid& grid,
                     const grid::GVectors& gvectors,
                     std::vector<Real> ground_density, bool include_xc)
    : nr_(grid.size()),
      dv_(grid.dv()),
      poisson_(fft::Fft3D(grid.shape()[0], grid.shape()[1], grid.shape()[2]),
               gvectors.g2_table()) {
  LRT_CHECK(static_cast<Index>(ground_density.size()) == nr_,
            "density size mismatch");
  if (include_xc) {
    fxc_ = dft::lda_fxc_array(ground_density);
  } else {
    fxc_.assign(static_cast<std::size_t>(nr_), Real{0});
  }
}

void HxcKernel::apply(la::RealConstView f, la::RealView out,
                      obs::WallProfiler* profiler) const {
  LRT_CHECK(f.rows() == nr_ && out.rows() == nr_ && f.cols() == out.cols(),
            "kernel apply shape mismatch");
  const Index k = f.cols();

  Timer fft_timer;
  std::vector<Real> column(static_cast<std::size_t>(nr_));
  std::vector<Real> hartree(static_cast<std::size_t>(nr_));
  for (Index j = 0; j < k; ++j) {
    for (Index i = 0; i < nr_; ++i) {
      column[static_cast<std::size_t>(i)] = f(i, j);
    }
    poisson_.solve(column.data(), hartree.data());
    for (Index i = 0; i < nr_; ++i) {
      out(i, j) = hartree[static_cast<std::size_t>(i)] +
                  fxc_[static_cast<std::size_t>(i)] *
                      column[static_cast<std::size_t>(i)];
    }
  }
  if (profiler) profiler->add("fft", fft_timer.seconds());
}

}  // namespace lrt::tddft
