#include "tddft/implicit_hamiltonian.hpp"

#include "common/error.hpp"
#include "la/blas.hpp"

namespace lrt::tddft {

ImplicitHamiltonian::ImplicitHamiltonian(std::vector<Real> d, la::RealMatrix m,
                                         la::RealMatrix psi_v_mu,
                                         la::RealMatrix psi_c_mu)
    : d_(std::move(d)),
      m_(std::move(m)),
      psi_v_mu_(std::move(psi_v_mu)),
      psi_c_mu_(std::move(psi_c_mu)) {
  LRT_CHECK(m_.rows() == m_.cols(), "kernel projection must be square");
  LRT_CHECK(psi_v_mu_.rows() == m_.rows() && psi_c_mu_.rows() == m_.rows(),
            "sampled orbital row counts must equal Nμ");
  LRT_CHECK(static_cast<Index>(d_.size()) ==
                psi_v_mu_.cols() * psi_c_mu_.cols(),
            "diagonal length must be Nv*Nc");
}

la::RealMatrix ImplicitHamiltonian::apply_c(la::RealConstView x) const {
  const Index nv = psi_v_mu_.cols();
  const Index nc = psi_c_mu_.cols();
  const Index nmu = m_.rows();
  const Index k = x.cols();
  LRT_CHECK(x.rows() == nv * nc, "apply_c: pair dimension mismatch");

  la::RealMatrix w(nmu, k);
  la::RealMatrix xmat(nv, nc);
  la::RealMatrix t(nmu, nc);
  for (Index l = 0; l < k; ++l) {
    for (Index iv = 0; iv < nv; ++iv) {
      for (Index ic = 0; ic < nc; ++ic) {
        xmat(iv, ic) = x(iv * nc + ic, l);
      }
    }
    la::gemm(la::Trans::kNo, la::Trans::kNo, Real{1}, psi_v_mu_.view(),
             xmat.view(), Real{0}, t.view());
    for (Index mu = 0; mu < nmu; ++mu) {
      w(mu, l) = la::dot(t.row_ptr(mu), psi_c_mu_.row_ptr(mu), nc);
    }
  }
  return w;
}

la::RealMatrix ImplicitHamiltonian::apply_ct(la::RealConstView w) const {
  const Index nv = psi_v_mu_.cols();
  const Index nc = psi_c_mu_.cols();
  const Index nmu = m_.rows();
  const Index k = w.cols();
  LRT_CHECK(w.rows() == nmu, "apply_ct: Nμ mismatch");

  la::RealMatrix x(nv * nc, k);
  la::RealMatrix scaled(nmu, nc);
  la::RealMatrix xmat(nv, nc);
  for (Index l = 0; l < k; ++l) {
    for (Index mu = 0; mu < nmu; ++mu) {
      const Real wl = w(mu, l);
      const Real* src = psi_c_mu_.row_ptr(mu);
      Real* dst = scaled.row_ptr(mu);
      for (Index ic = 0; ic < nc; ++ic) dst[ic] = wl * src[ic];
    }
    la::gemm(la::Trans::kYes, la::Trans::kNo, Real{1}, psi_v_mu_.view(),
             scaled.view(), Real{0}, xmat.view());
    for (Index iv = 0; iv < nv; ++iv) {
      for (Index ic = 0; ic < nc; ++ic) {
        x(iv * nc + ic, l) = xmat(iv, ic);
      }
    }
  }
  return x;
}

void ImplicitHamiltonian::apply(la::RealConstView x, la::RealView y) const {
  const Index n = dimension();
  const Index k = x.cols();
  LRT_CHECK(x.rows() == n && y.rows() == n && y.cols() == k,
            "implicit apply shape mismatch");

  const la::RealMatrix cx = apply_c(x);
  const la::RealMatrix mcx =
      la::gemm(la::Trans::kNo, la::Trans::kNo, m_.view(), cx.view());
  const la::RealMatrix ct = apply_ct(mcx.view());
  for (Index i = 0; i < n; ++i) {
    const Real di = d_[static_cast<std::size_t>(i)];
    for (Index j = 0; j < k; ++j) {
      y(i, j) = di * x(i, j) + Real{2} * ct(i, j);
    }
  }
}

double ImplicitHamiltonian::memory_bytes() const {
  return sizeof(Real) *
         (static_cast<double>(m_.size()) + psi_v_mu_.size() +
          psi_c_mu_.size() + static_cast<double>(d_.size()));
}

ImplicitHamiltonian make_implicit_hamiltonian(
    std::vector<Real> d, const isdf::IsdfResult& isdf_result,
    la::RealMatrix m) {
  return ImplicitHamiltonian(std::move(d), std::move(m),
                             la::to_matrix<Real>(isdf_result.psi_v_mu.view()),
                             la::to_matrix<Real>(isdf_result.psi_c_mu.view()));
}

}  // namespace lrt::tddft
