#include "tddft/spectrum.hpp"

#include <cmath>

#include "common/error.hpp"

namespace lrt::tddft {

std::vector<Real> gaussian_dos(const std::vector<Real>& energies,
                               const std::vector<Real>& energy_grid,
                               Real sigma,
                               const std::vector<Real>* weights) {
  LRT_CHECK(sigma > 0, "broadening must be positive");
  if (weights) {
    LRT_CHECK(weights->size() == energies.size(),
              "weights/energies size mismatch");
  }
  const Real norm = Real{1} / (sigma * std::sqrt(constants::kTwoPi));
  const Real inv_2s2 = Real{1} / (2 * sigma * sigma);
  std::vector<Real> dos(energy_grid.size(), Real{0});
  for (std::size_t g = 0; g < energy_grid.size(); ++g) {
    Real sum = 0;
    for (std::size_t n = 0; n < energies.size(); ++n) {
      const Real d = energy_grid[g] - energies[n];
      const Real w = weights ? (*weights)[n] : Real{1};
      sum += w * std::exp(-d * d * inv_2s2);
    }
    dos[g] = sum * norm;
  }
  return dos;
}

std::vector<Real> linspace(Real e_min, Real e_max, Index count) {
  LRT_CHECK(count >= 2, "linspace needs at least two samples");
  std::vector<Real> grid(static_cast<std::size_t>(count));
  const Real step = (e_max - e_min) / static_cast<Real>(count - 1);
  for (Index i = 0; i < count; ++i) {
    grid[static_cast<std::size_t>(i)] = e_min + step * static_cast<Real>(i);
  }
  return grid;
}

std::vector<std::array<Real, 3>> transition_dipoles(
    const CasidaProblem& problem) {
  const Index nr = problem.nr();
  const Index nv = problem.nv();
  const Index nc = problem.nc();
  const Real dv = problem.grid.dv();
  const grid::Vec3 center = {problem.grid.cell().length(0) / 2,
                             problem.grid.cell().length(1) / 2,
                             problem.grid.cell().length(2) / 2};

  std::vector<std::array<Real, 3>> dipoles(
      static_cast<std::size_t>(nv * nc), {0, 0, 0});
  for (Index r = 0; r < nr; ++r) {
    const grid::Vec3 pos = problem.grid.position(r);
    const Real x = pos[0] - center[0];
    const Real y = pos[1] - center[1];
    const Real z = pos[2] - center[2];
    const Real* v = problem.psi_v.row_ptr(r);
    const Real* c = problem.psi_c.row_ptr(r);
    for (Index iv = 0; iv < nv; ++iv) {
      const Real vv = v[iv] * dv;
      for (Index ic = 0; ic < nc; ++ic) {
        auto& d = dipoles[static_cast<std::size_t>(iv * nc + ic)];
        const Real p = vv * c[ic];
        d[0] += p * x;
        d[1] += p * y;
        d[2] += p * z;
      }
    }
  }
  return dipoles;
}

Spectrum oscillator_spectrum(const CasidaProblem& problem,
                             const std::vector<Real>& energies,
                             la::RealConstView wavefunctions) {
  const Index k = static_cast<Index>(energies.size());
  LRT_CHECK(wavefunctions.cols() == k,
            "wavefunction count must match energies");
  LRT_CHECK(wavefunctions.rows() == problem.ncv(),
            "wavefunctions must be pair-ordered");
  const auto dipoles = transition_dipoles(problem);

  Spectrum s;
  s.energies = energies;
  s.strengths.resize(static_cast<std::size_t>(k));
  for (Index n = 0; n < k; ++n) {
    std::array<Real, 3> total = {0, 0, 0};
    for (Index ij = 0; ij < problem.ncv(); ++ij) {
      const Real x = wavefunctions(ij, n);
      for (int ax = 0; ax < 3; ++ax) {
        total[static_cast<std::size_t>(ax)] +=
            x * dipoles[static_cast<std::size_t>(ij)][static_cast<std::size_t>(ax)];
      }
    }
    const Real d2 = total[0] * total[0] + total[1] * total[1] +
                    total[2] * total[2];
    s.strengths[static_cast<std::size_t>(n)] =
        (Real{2} / Real{3}) * energies[static_cast<std::size_t>(n)] * d2;
  }
  return s;
}

std::vector<Real> absorption_spectrum(const Spectrum& spectrum,
                                      const std::vector<Real>& energy_grid,
                                      Real gamma) {
  LRT_CHECK(gamma > 0, "broadening must be positive");
  LRT_CHECK(spectrum.energies.size() == spectrum.strengths.size(),
            "spectrum arrays out of sync");
  std::vector<Real> sigma(energy_grid.size(), Real{0});
  const Real norm = Real{1} / constants::kPi;
  for (std::size_t g = 0; g < energy_grid.size(); ++g) {
    Real sum = 0;
    for (std::size_t n = 0; n < spectrum.energies.size(); ++n) {
      const Real d = energy_grid[g] - spectrum.energies[n];
      sum += spectrum.strengths[n] * gamma / (d * d + gamma * gamma);
    }
    sigma[g] = sum * norm;
  }
  return sigma;
}

}  // namespace lrt::tddft
