#include "tddft/casida_isdf.hpp"

#include "la/blas.hpp"

namespace lrt::tddft {

la::RealMatrix build_kernel_projection(const isdf::IsdfResult& isdf_result,
                                       const HxcKernel& kernel,
                                       obs::WallProfiler* profiler) {
  const la::RealMatrix& theta = isdf_result.theta;
  la::RealMatrix ktheta(theta.rows(), theta.cols());
  kernel.apply(theta.view(), ktheta.view(), profiler);

  Timer t;
  la::RealMatrix m =
      la::gemm(la::Trans::kYes, la::Trans::kNo, theta.view(), ktheta.view());
  const Real dv = kernel.dv();
  for (Index i = 0; i < m.rows(); ++i) {
    for (Index j = i; j < m.cols(); ++j) {
      const Real avg = Real{0.5} * dv * (m(i, j) + m(j, i));
      m(i, j) = avg;
      m(j, i) = avg;
    }
  }
  if (profiler) profiler->add("gemm", t.seconds());
  return m;
}

la::RealMatrix build_hamiltonian_isdf(const CasidaProblem& problem,
                                      const isdf::IsdfResult& isdf_result,
                                      const HxcKernel& kernel,
                                      obs::WallProfiler* profiler) {
  LRT_CHECK(!isdf_result.c.empty(),
            "build_hamiltonian_isdf needs the explicit coefficient matrix");
  const la::RealMatrix m =
      build_kernel_projection(isdf_result, kernel, profiler);

  Timer t;
  // Vhxc = Cᵀ M C via two thin GEMMs.
  const la::RealMatrix mc =
      la::gemm(la::Trans::kNo, la::Trans::kNo, m.view(), isdf_result.c.view());
  la::RealMatrix h =
      la::gemm(la::Trans::kYes, la::Trans::kNo, isdf_result.c.view(),
               mc.view());
  const std::vector<Real> d = energy_differences(problem);
  const Index ncv = problem.ncv();
  LRT_CHECK(h.rows() == ncv, "coefficient matrix pair count mismatch");
  for (Index i = 0; i < ncv; ++i) {
    for (Index j = i; j < ncv; ++j) {
      const Real avg = h(i, j) + h(j, i);  // 2 * symmetrized Vhxc
      h(i, j) = avg;
      h(j, i) = avg;
    }
    h(i, i) += d[static_cast<std::size_t>(i)];
  }
  if (profiler) profiler->add("gemm", t.seconds());
  return h;
}

}  // namespace lrt::tddft
