#include "tddft/dist_implicit.hpp"

#include <algorithm>
#include <cmath>

#include "common/random.hpp"
#include "la/blas.hpp"
#include "par/dist_lobpcg.hpp"

namespace lrt::tddft {

DistImplicitHamiltonian::DistImplicitHamiltonian(
    par::Comm& comm, const std::vector<Real>& d_full, la::RealMatrix m,
    la::RealConstView psi_v_mu, la::RealConstView psi_c_mu)
    : comm_(&comm),
      nv_global_(psi_v_mu.cols()),
      nc_(psi_c_mu.cols()),
      m_(std::move(m)) {
  LRT_CHECK(static_cast<Index>(d_full.size()) == nv_global_ * nc_,
            "diagonal length must be Nv*Nc");
  LRT_CHECK(m_.rows() == psi_v_mu.rows() && m_.rows() == psi_c_mu.rows(),
            "sampled orbital Nμ mismatch");

  const par::BlockPartition part(nv_global_, comm.size());
  nv_local_ = part.count(comm.rank());
  v_offset_ = part.offset(comm.rank());

  psi_v_mu_local_ =
      la::to_matrix<Real>(psi_v_mu.cols_block(v_offset_, nv_local_));
  psi_c_mu_ = la::to_matrix<Real>(psi_c_mu);

  d_local_.assign(d_full.begin() + v_offset_ * nc_,
                  d_full.begin() + (v_offset_ + nv_local_) * nc_);
}

void DistImplicitHamiltonian::apply(la::RealConstView x_local,
                                    la::RealView y_local) const {
  const Index nl = local_dimension();
  const Index k = x_local.cols();
  const Index nmu = m_.rows();
  LRT_CHECK(x_local.rows() == nl && y_local.rows() == nl &&
                y_local.cols() == k,
            "distributed implicit apply shape mismatch");

  // w = C x: local contribution via the factored form, then Allreduce.
  // All k excitation columns are laid side by side so each of the two
  // tall contractions below is one GEMM over the concatenated block —
  // the per-column products are individually too small for the packed
  // kernel and would run k scalar-fallback calls instead.
  la::RealMatrix xmat_all(nv_local_, nc_ * k);
  for (Index l = 0; l < k; ++l) {
    for (Index iv = 0; iv < nv_local_; ++iv) {
      Real* dst = xmat_all.row_ptr(iv) + l * nc_;
      for (Index ic = 0; ic < nc_; ++ic) dst[ic] = x_local(iv * nc_ + ic, l);
    }
  }
  la::RealMatrix t_all(nmu, nc_ * k);
  la::gemm(la::Trans::kNo, la::Trans::kNo, Real{1}, psi_v_mu_local_.view(),
           xmat_all.view(), Real{0}, t_all.view());
  la::RealMatrix w(nmu, k);
  for (Index l = 0; l < k; ++l) {
    for (Index mu = 0; mu < nmu; ++mu) {
      w(mu, l) =
          la::dot(t_all.row_ptr(mu) + l * nc_, psi_c_mu_.row_ptr(mu), nc_);
    }
  }
  comm_->allreduce(w.data(), w.size(), par::ReduceOp::kSum);

  // mw = M w (replicated small GEMM).
  const la::RealMatrix mw =
      la::gemm(la::Trans::kNo, la::Trans::kNo, m_.view(), w.view());

  // y = D∘x + 2 (Cᵀ mw)_local, all local.
  la::RealMatrix scaled_all(nmu, nc_ * k);
  for (Index l = 0; l < k; ++l) {
    for (Index mu = 0; mu < nmu; ++mu) {
      const Real wl = mw(mu, l);
      const Real* src = psi_c_mu_.row_ptr(mu);
      Real* dst = scaled_all.row_ptr(mu) + l * nc_;
      for (Index ic = 0; ic < nc_; ++ic) dst[ic] = wl * src[ic];
    }
  }
  const la::RealMatrix yv_all = la::gemm(
      la::Trans::kYes, la::Trans::kNo, psi_v_mu_local_.view(), scaled_all.view());
  for (Index l = 0; l < k; ++l) {
    for (Index iv = 0; iv < nv_local_; ++iv) {
      const Real* yv = yv_all.row_ptr(iv) + l * nc_;
      for (Index ic = 0; ic < nc_; ++ic) {
        const Index row = iv * nc_ + ic;
        y_local(row, l) = d_local_[static_cast<std::size_t>(row)] *
                              x_local(row, l) +
                          Real{2} * yv[ic];
      }
    }
  }
}

DistCasidaSolution solve_casida_lobpcg_distributed(
    par::Comm& comm, const DistImplicitHamiltonian& h,
    const TddftEigenOptions& options) {
  const Index k = options.num_states;
  const std::vector<Real>& d_local = h.local_d();
  const Index nl = h.local_dimension();

  // Global seeding identical on all ranks: gather the full diagonal,
  // pick the k smallest pairs, build the local slice of the unit-vector
  // + noise guess.
  const Index n_global = h.global_dimension();
  std::vector<Real> d_full(static_cast<std::size_t>(n_global));
  {
    const par::BlockPartition part(h.global_dimension() / h.nc(),
                                   comm.size());
    // Per-rank pair counts follow the valence-block partition.
    std::vector<Index> counts(static_cast<std::size_t>(comm.size()));
    std::vector<Index> displs(static_cast<std::size_t>(comm.size()));
    for (int r = 0; r < comm.size(); ++r) {
      counts[static_cast<std::size_t>(r)] = part.count(r) * h.nc();
      displs[static_cast<std::size_t>(r)] = part.offset(r) * h.nc();
    }
    comm.allgatherv(d_local.data(), nl, d_full.data(), counts, displs);
  }
  std::vector<Index> order(static_cast<std::size_t>(n_global));
  for (Index i = 0; i < n_global; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](Index a, Index b) {
    return d_full[static_cast<std::size_t>(a)] <
           d_full[static_cast<std::size_t>(b)];
  });
  Rng rng(options.seed);
  const Index row0 = h.valence_offset() * h.nc();
  la::RealMatrix x0(nl, k);
  for (Index j = 0; j < k; ++j) {
    const Index hot = order[static_cast<std::size_t>(j)];
    for (Index gi = 0; gi < n_global; ++gi) {
      // Advance the RNG identically on every rank; keep local entries.
      const Real noise = Real{0.01} * rng.normal();
      if (gi >= row0 && gi < row0 + nl) {
        x0(gi - row0, j) = noise + (gi == hot ? Real{1} : Real{0});
      }
    }
  }

  par::DistBlockOperator apply = [&h](la::RealConstView x,
                                      la::RealView y) { h.apply(x, y); };
  par::DistBlockPreconditioner prec =
      [&d_local](la::RealView r, const std::vector<Real>& theta) {
        for (Index j = 0; j < r.cols(); ++j) {
          const Real t = theta[static_cast<std::size_t>(j)];
          for (Index i = 0; i < r.rows(); ++i) {
            Real gap = d_local[static_cast<std::size_t>(i)] - t;
            const Real floor = Real{1e-2};
            if (std::abs(gap) < floor) gap = gap < 0 ? -floor : floor;
            r(i, j) /= gap;
          }
        }
      };

  la::LobpcgOptions opts;
  opts.max_iterations = options.max_iterations;
  opts.tolerance = options.tolerance;
  // The library solve runs the fused communication-avoiding iteration
  // (three allreduce rounds instead of legacy's seven); callers needing
  // the legacy schedule call dist_lobpcg directly.
  la::LobpcgResult r =
      par::dist_lobpcg(comm, apply, prec, std::move(x0), opts,
                       par::GramReduction::kFused);

  DistCasidaSolution solution;
  solution.energies = std::move(r.eigenvalues);
  solution.local_wavefunctions = std::move(r.eigenvectors);
  solution.iterations = r.iterations;
  solution.converged = r.converged;
  return solution;
}

}  // namespace lrt::tddft
