#include "tddft/lobpcg_tddft.hpp"

#include <cmath>

#include "common/random.hpp"
#include "la/blas.hpp"

namespace lrt::tddft {
namespace {

/// Eq (17): divide each residual entry by (D_i - θ_j), regularized away
/// from zero so near-resonant entries do not explode.
la::BlockPreconditioner make_gap_preconditioner(const std::vector<Real>& d) {
  return [&d](la::RealView r, const std::vector<Real>& theta) {
    const Index n = r.rows();
    const Index k = r.cols();
    for (Index j = 0; j < k; ++j) {
      const Real t = theta[static_cast<std::size_t>(j)];
      for (Index i = 0; i < n; ++i) {
        Real gap = d[static_cast<std::size_t>(i)] - t;
        const Real floor = Real{1e-2};
        if (std::abs(gap) < floor) gap = (gap < 0 ? -floor : floor);
        r(i, j) /= gap;
      }
    }
  };
}

/// Initial guess: unit vectors on the k smallest energy-difference pairs
/// plus a small random perturbation (the physically dominant transitions).
la::RealMatrix make_initial_guess(const std::vector<Real>& d, Index k,
                                  unsigned seed) {
  const Index n = static_cast<Index>(d.size());
  std::vector<Index> order(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](Index a, Index b) {
    return d[static_cast<std::size_t>(a)] < d[static_cast<std::size_t>(b)];
  });
  Rng rng(seed);
  la::RealMatrix x(n, k);
  for (Index j = 0; j < k; ++j) {
    x(order[static_cast<std::size_t>(j)], j) = Real{1};
    for (Index i = 0; i < n; ++i) {
      x(i, j) += Real{0.01} * rng.normal();
    }
  }
  return x;
}

}  // namespace

la::LobpcgResult solve_casida_lobpcg(const ImplicitHamiltonian& h,
                                     const TddftEigenOptions& options) {
  const std::vector<Real>& d = h.diagonal_d();
  la::BlockOperator apply = [&h](la::RealConstView x, la::RealView y) {
    h.apply(x, y);
  };
  la::LobpcgOptions opts;
  opts.max_iterations = options.max_iterations;
  opts.tolerance = options.tolerance;
  return la::lobpcg(apply, make_gap_preconditioner(d),
                    make_initial_guess(d, options.num_states, options.seed),
                    opts);
}

la::DavidsonResult solve_casida_davidson(const ImplicitHamiltonian& h,
                                         const TddftEigenOptions& options) {
  const std::vector<Real>& d = h.diagonal_d();
  la::BlockOperator apply = [&h](la::RealConstView x, la::RealView y) {
    h.apply(x, y);
  };
  la::DavidsonOptions opts;
  opts.max_iterations = options.max_iterations;
  opts.tolerance = options.tolerance;
  return la::davidson(apply, make_gap_preconditioner(d),
                      make_initial_guess(d, options.num_states, options.seed),
                      opts);
}

la::LobpcgResult solve_casida_lobpcg_dense(const la::RealMatrix& h,
                                           const std::vector<Real>& d,
                                           const TddftEigenOptions& options) {
  la::BlockOperator apply = [&h](la::RealConstView x, la::RealView y) {
    la::gemm(la::Trans::kNo, la::Trans::kNo, Real{1}, h.view(), x, Real{0},
             y);
  };
  la::LobpcgOptions opts;
  opts.max_iterations = options.max_iterations;
  opts.tolerance = options.tolerance;
  return la::lobpcg(apply, make_gap_preconditioner(d),
                    make_initial_guess(d, options.num_states, options.seed),
                    opts);
}

}  // namespace lrt::tddft
