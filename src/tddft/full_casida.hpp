// Full linear-response Casida problem — beyond the Tamm-Dancoff
// approximation (paper Eq 1).
//
// The full response Hamiltonian couples excitations and de-excitations:
//   H = [  D + 2V   2W  ]      with W = V for a real adiabatic kernel.
//       [ -2W      -D - 2V ]
// For real orbitals this non-Hermitian problem collapses to the symmetric
// half-size eigenproblem (Casida's Ω-matrix):
//   Ω = D^{1/2} (D + 4V) D^{1/2},   Ω Z = ω² Z,
// because A - B = D is diagonal. Excitation energies are ω = √(eigenvalue).
// Both the dense build and the implicitly factored ISDF form
//   Ω x = D² x + 4 D^{1/2} Cᵀ (M (C (D^{1/2} x)))
// are provided; the latter keeps the paper's O(Nμ²) memory footprint.
#pragma once

#include "tddft/casida_isdf.hpp"
#include "tddft/lobpcg_tddft.hpp"

namespace lrt::tddft {

/// Dense Ω matrix via the naive (explicit pair product) path.
la::RealMatrix build_omega_naive(const CasidaProblem& problem,
                                 const HxcKernel& kernel,
                                 obs::WallProfiler* profiler = nullptr);

/// Dense Ω matrix from an ISDF decomposition.
la::RealMatrix build_omega_isdf(const CasidaProblem& problem,
                                const isdf::IsdfResult& isdf_result,
                                const HxcKernel& kernel,
                                obs::WallProfiler* profiler = nullptr);

/// Implicit Ω operator with the factored ISDF kernel.
class ImplicitOmega {
 public:
  ImplicitOmega(std::vector<Real> d, la::RealMatrix m,
                la::RealMatrix psi_v_mu, la::RealMatrix psi_c_mu);

  Index dimension() const { return implicit_.dimension(); }
  const std::vector<Real>& diagonal_d() const { return implicit_.diagonal_d(); }

  /// y = Ω x (block).
  void apply(la::RealConstView x, la::RealView y) const;

 private:
  ImplicitHamiltonian implicit_;  ///< carries C, M factors; D unused here
  std::vector<Real> d_;
  std::vector<Real> sqrt_d_;
};

struct FullCasidaSolution {
  std::vector<Real> energies;       ///< ω, ascending
  la::RealMatrix z_vectors;         ///< Ω eigenvectors (Ncv x k)
  Index iterations = 0;             ///< 0 for the dense path
};

/// Dense full-response solve (oracle / small systems).
FullCasidaSolution solve_full_casida_dense(const la::RealMatrix& omega,
                                           Index num_states);

/// Iterative LOBPCG solve of the implicit Ω (preconditioner (D² - θ)⁻¹).
FullCasidaSolution solve_full_casida_lobpcg(const ImplicitOmega& omega,
                                            const TddftEigenOptions& options);

}  // namespace lrt::tddft
