// ISDF-accelerated explicit Hamiltonian (paper Eq 6-7).
//
//   Vhxc ≈ Cᵀ (Θᵀ f_Hxc Θ) C = Cᵀ M C
// with M the Nμ x Nμ kernel projection onto the interpolation vectors.
// Only Nμ kernel FFTs (instead of Nv·Nc) and thin GEMMs remain.
#pragma once

#include "isdf/isdf.hpp"
#include "tddft/casida_naive.hpp"

namespace lrt::tddft {

/// M = Θᵀ (v_H + f_xc) Θ dv (symmetrized). Profile phases: "fft", "gemm".
la::RealMatrix build_kernel_projection(const isdf::IsdfResult& isdf_result,
                                       const HxcKernel& kernel,
                                       obs::WallProfiler* profiler = nullptr);

/// Explicit H = D + 2 Cᵀ M C (paper Eq 6) for versions (2)/(3)/(4) of
/// Table 4. Requires isdf_result.c (build_coefficients = true).
la::RealMatrix build_hamiltonian_isdf(const CasidaProblem& problem,
                                      const isdf::IsdfResult& isdf_result,
                                      const HxcKernel& kernel,
                                      obs::WallProfiler* profiler = nullptr);

}  // namespace lrt::tddft
