#include "tddft/driver.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace lrt::tddft {
namespace {

Index derive_nmu(const DriverOptions& options, const CasidaProblem& problem) {
  Index nmu = options.nmu;
  if (nmu <= 0) {
    nmu = static_cast<Index>(std::llround(
        options.nmu_ratio * static_cast<Real>(problem.nv() + problem.nc())));
  }
  // Nμ can never exceed the pair rank or the grid size.
  nmu = std::min({nmu, problem.ncv(), problem.nr()});
  LRT_CHECK(nmu >= 1, "derived Nμ < 1");
  return nmu;
}

/// Closed-form memory estimates of paper Table 4 (bytes, double words).
double memory_estimate(Version version, Index nr, Index nv, Index nc,
                       Index nmu) {
  const double w = sizeof(Real);
  const double ncv = double(nv) * double(nc);
  switch (version) {
    case Version::kNaive:
      // O(Nv²Nc² + Nr Nv Nc): explicit H plus the pair matrix.
      return w * (ncv * ncv + double(nr) * ncv);
    case Version::kQrcpIsdf:
    case Version::kKmeansIsdf:
    case Version::kKmeansIsdfLobpcg:
      // O(Nv²Nc² + Nμ Nv Nc): explicit H plus coefficients.
      return w * (ncv * ncv + double(nmu) * ncv);
    case Version::kImplicit:
      // O(Nμ² + Nμ(Nv+Nc)): kernel projection + sampled orbitals.
      return w * (double(nmu) * nmu + double(nmu) * (double(nv) + nc));
  }
  return 0;
}

}  // namespace

const char* version_name(Version version) {
  switch (version) {
    case Version::kNaive:
      return "Naive";
    case Version::kQrcpIsdf:
      return "QRCP-ISDF";
    case Version::kKmeansIsdf:
      return "Kmeans-ISDF";
    case Version::kKmeansIsdfLobpcg:
      return "Kmeans-ISDF-LOBPCG";
    case Version::kImplicit:
      return "Implicit-Kmeans-ISDF-LOBPCG";
  }
  return "?";
}

DriverResult solve_casida(const CasidaProblem& problem,
                          const DriverOptions& options) {
  LRT_CHECK(problem.nv() >= 1 && problem.nc() >= 1, "empty orbital blocks");
  LRT_CHECK(options.num_states >= 1 && options.num_states <= problem.ncv(),
            "bad num_states " << options.num_states);

  DriverResult result;
  Timer total;

  const grid::GVectors gvectors(problem.grid);
  const HxcKernel kernel(problem.grid, gvectors, problem.ground_density,
                         options.include_xc);

  const Version version = options.version;
  if (version == Version::kNaive) {
    const la::RealMatrix h =
        build_hamiltonian_naive(problem, kernel, &result.profiler);
    CasidaSolution sol =
        diagonalize_dense(h, options.num_states, &result.profiler);
    result.energies = std::move(sol.energies);
    result.wavefunctions = std::move(sol.wavefunctions);
    result.memory_bytes_estimate = memory_estimate(
        version, problem.nr(), problem.nv(), problem.nc(), 0);
    result.seconds_total = total.seconds();
    return result;
  }

  // All ISDF versions: decompose first.
  isdf::IsdfOptions isdf_opts = options.isdf;
  isdf_opts.nmu = derive_nmu(options, problem);
  isdf_opts.method = (version == Version::kQrcpIsdf)
                         ? isdf::PointMethod::kQrcp
                         : isdf::PointMethod::kKmeans;
  isdf_opts.build_coefficients = version != Version::kImplicit;
  const isdf::IsdfResult decomposition =
      isdf_decompose(problem.grid, problem.psi_v.view(), problem.psi_c.view(),
                     isdf_opts, &result.profiler);
  result.nmu_used = decomposition.nmu();

  if (version == Version::kImplicit) {
    la::RealMatrix m =
        build_kernel_projection(decomposition, kernel, &result.profiler);
    const ImplicitHamiltonian h = make_implicit_hamiltonian(
        energy_differences(problem), decomposition, std::move(m));
    TddftEigenOptions eig = options.eigen;
    eig.num_states = options.num_states;
    Timer diag;
    if (eig.method == EigenMethod::kDavidson) {
      la::DavidsonResult sol = solve_casida_davidson(h, eig);
      result.energies = std::move(sol.eigenvalues);
      result.wavefunctions = std::move(sol.eigenvectors);
      result.eigen_iterations = sol.iterations;
    } else {
      la::LobpcgResult sol = solve_casida_lobpcg(h, eig);
      result.energies = std::move(sol.eigenvalues);
      result.wavefunctions = std::move(sol.eigenvectors);
      result.eigen_iterations = sol.iterations;
    }
    result.profiler.add("diag", diag.seconds());
  } else {
    const la::RealMatrix h =
        build_hamiltonian_isdf(problem, decomposition, kernel,
                               &result.profiler);
    if (version == Version::kKmeansIsdfLobpcg) {
      TddftEigenOptions eig = options.eigen;
      eig.num_states = options.num_states;
      Timer diag;
      la::LobpcgResult sol =
          solve_casida_lobpcg_dense(h, energy_differences(problem), eig);
      result.profiler.add("diag", diag.seconds());
      result.energies = std::move(sol.eigenvalues);
      result.wavefunctions = std::move(sol.eigenvectors);
      result.eigen_iterations = sol.iterations;
    } else {
      CasidaSolution sol =
          diagonalize_dense(h, options.num_states, &result.profiler);
      result.energies = std::move(sol.energies);
      result.wavefunctions = std::move(sol.wavefunctions);
    }
  }

  result.memory_bytes_estimate =
      memory_estimate(version, problem.nr(), problem.nv(), problem.nc(),
                      result.nmu_used);
  result.seconds_total = total.seconds();
  return result;
}

CasidaProblem make_problem_from_scf(const dft::KohnShamResult& ks,
                                    Index nv_use, Index nc_use) {
  const Index nv_all = ks.num_occupied;
  const Index nc_all = ks.orbitals.cols() - ks.num_occupied;
  if (nv_use <= 0) nv_use = nv_all;
  if (nc_use <= 0) nc_use = nc_all;
  LRT_CHECK(nv_use <= nv_all && nc_use <= nc_all,
            "requested more orbitals than the SCF produced");

  CasidaProblem problem;
  problem.grid = ks.grid;
  // Top nv_use valence states (closest to the gap).
  problem.psi_v = la::to_matrix<Real>(
      ks.orbitals.view().cols_block(nv_all - nv_use, nv_use));
  problem.psi_c = la::to_matrix<Real>(
      ks.orbitals.view().cols_block(nv_all, nc_use));
  problem.eps_v.assign(ks.eigenvalues.begin() + (nv_all - nv_use),
                       ks.eigenvalues.begin() + nv_all);
  problem.eps_c.assign(ks.eigenvalues.begin() + nv_all,
                       ks.eigenvalues.begin() + nv_all + nc_use);
  problem.ground_density = ks.density;
  return problem;
}

CasidaProblem make_problem_from_synthetic(const grid::RealSpaceGrid& grid,
                                          const dft::SyntheticOrbitals& orbs) {
  CasidaProblem problem;
  problem.grid = grid;
  problem.psi_v = la::to_matrix<Real>(orbs.psi_v.view());
  problem.psi_c = la::to_matrix<Real>(orbs.psi_c.view());
  problem.eps_v = orbs.eps_v;
  problem.eps_c = orbs.eps_c;
  // Ground density consistent with the valence block.
  const Index nr = grid.size();
  problem.ground_density.assign(static_cast<std::size_t>(nr), Real{0});
  for (Index j = 0; j < orbs.psi_v.cols(); ++j) {
    for (Index i = 0; i < nr; ++i) {
      problem.ground_density[static_cast<std::size_t>(i)] +=
          2 * orbs.psi_v(i, j) * orbs.psi_v(i, j);
    }
  }
  return problem;
}

}  // namespace lrt::tddft
