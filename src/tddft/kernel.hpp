// The Hartree-exchange-correlation kernel f_Hxc (paper Eq 4).
//
//   f_Hxc(r, r') = 1/|r - r'|  +  δV_xc[n](r)/δn(r')
//                = Hartree     +  ALDA: f_xc(n(r)) δ(r - r')
//
// Applied to pair densities / interpolation vectors column by column:
// the Hartree piece through the reciprocal-space Poisson kernel 4π/G²
// (one forward + one inverse FFT per column — the "FFT" phase of the
// paper's Figure 8), the ALDA piece as a diagonal real-space multiply.
#pragma once

#include <vector>

#include "common/timer.hpp"
#include "fft/poisson.hpp"
#include "grid/gvectors.hpp"
#include "la/matrix.hpp"
#include "obs/obs.hpp"

namespace lrt::tddft {

class HxcKernel {
 public:
  /// `ground_density` is the converged ground-state n(r) from which the
  /// ALDA kernel f_xc is evaluated; pass include_xc = false for a
  /// Hartree-only (RPA) kernel.
  HxcKernel(const grid::RealSpaceGrid& grid, const grid::GVectors& gvectors,
            std::vector<Real> ground_density, bool include_xc = true);

  Index grid_size() const { return nr_; }
  Real dv() const { return dv_; }
  const std::vector<Real>& fxc() const { return fxc_; }

  /// out(:, j) = (v_H + f_xc) f(:, j) for every column. `profiler`
  /// receives the "fft" phase.
  void apply(la::RealConstView f, la::RealView out,
             obs::WallProfiler* profiler = nullptr) const;

 private:
  Index nr_;
  Real dv_;
  fft::PoissonSolver poisson_;
  std::vector<Real> fxc_;  ///< zeros when include_xc == false
};

}  // namespace lrt::tddft
