#include "tddft/casida_naive.hpp"

#include "common/error.hpp"
#include "isdf/pairproduct.hpp"
#include "la/blas.hpp"
#include "la/eig.hpp"

namespace lrt::tddft {

std::vector<Real> energy_differences(const CasidaProblem& problem) {
  const Index nv = problem.nv();
  const Index nc = problem.nc();
  LRT_CHECK(static_cast<Index>(problem.eps_v.size()) == nv &&
                static_cast<Index>(problem.eps_c.size()) == nc,
            "energy array sizes do not match orbital counts");
  std::vector<Real> d(static_cast<std::size_t>(nv * nc));
  for (Index iv = 0; iv < nv; ++iv) {
    for (Index ic = 0; ic < nc; ++ic) {
      d[static_cast<std::size_t>(iv * nc + ic)] =
          problem.eps_c[static_cast<std::size_t>(ic)] -
          problem.eps_v[static_cast<std::size_t>(iv)];
    }
  }
  return d;
}

la::RealMatrix build_hamiltonian_naive(const CasidaProblem& problem,
                                       const HxcKernel& kernel,
                                       obs::WallProfiler* profiler) {
  const Index ncv = problem.ncv();
  const Real dv = problem.grid.dv();

  // Line 2 of Algorithm 1: the face-splitting product.
  la::RealMatrix pvc;
  {
    Timer t;
    pvc = isdf::pair_product_matrix(problem.psi_v.view(),
                                    problem.psi_c.view());
    if (profiler) profiler->add("pair_product", t.seconds());
  }

  // Lines 4-5: kernel application to all pair densities (Nv*Nc FFTs).
  la::RealMatrix kpvc(problem.nr(), ncv);
  kernel.apply(pvc.view(), kpvc.view(), profiler);

  // Line 7: Vhxc = Pvcᵀ (K Pvc) dv via one large GEMM.
  la::RealMatrix h;
  {
    Timer t;
    h = la::gemm(la::Trans::kYes, la::Trans::kNo, pvc.view(), kpvc.view());
    if (profiler) profiler->add("gemm", t.seconds());
  }

  // H = D + 2 Vhxc (line 10); also symmetrize Vhxc roundoff.
  const std::vector<Real> d = energy_differences(problem);
  for (Index i = 0; i < ncv; ++i) {
    for (Index j = i; j < ncv; ++j) {
      const Real v = dv * (h(i, j) + h(j, i));  // = 2*avg*dv
      h(i, j) = v;
      h(j, i) = v;
    }
    h(i, i) += d[static_cast<std::size_t>(i)];
  }
  return h;
}

CasidaSolution diagonalize_dense(const la::RealMatrix& hamiltonian,
                                 Index num_states, obs::WallProfiler* profiler) {
  const Index n = hamiltonian.rows();
  LRT_CHECK(num_states >= 1 && num_states <= n,
            "bad state count " << num_states);
  Timer t;
  la::EigResult eig = la::syev(hamiltonian.view());
  if (profiler) profiler->add("diag", t.seconds());

  CasidaSolution solution;
  solution.energies.assign(eig.values.begin(),
                           eig.values.begin() + num_states);
  solution.wavefunctions =
      la::to_matrix<Real>(eig.vectors.view().cols_block(0, num_states));
  return solution;
}

}  // namespace lrt::tddft
