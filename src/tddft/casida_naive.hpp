// The Casida/TDA problem definition and the naive explicit Hamiltonian
// (paper §3, Algorithm 1).
//
// Under the Tamm-Dancoff approximation the LR-TDDFT Hamiltonian is
//   H = D + 2 Vhxc,                         (Eq 2)
//   D(ij, ij) = ε_ic - ε_iv,
//   Vhxc = Pvcᵀ f_Hxc Pvc                    (Eq 3)
// with Pvc the pair-product (face-splitting) matrix. The naive build
// materializes Pvc (O(Nv Nc Nr) memory), applies the kernel to all Nv·Nc
// pair densities (Nv·Nc FFTs) and contracts with one big GEMM — exactly
// the costs of paper Table 2.
#pragma once

#include <vector>

#include "grid/rsgrid.hpp"
#include "tddft/kernel.hpp"

namespace lrt::tddft {

/// Inputs to an LR-TDDFT calculation (from dft::solve_ground_state or
/// dft::make_synthetic_orbitals).
struct CasidaProblem {
  grid::RealSpaceGrid grid;
  la::RealMatrix psi_v;        ///< Nr x Nv, ∫ψψ dv = δ
  la::RealMatrix psi_c;        ///< Nr x Nc
  std::vector<Real> eps_v;     ///< ascending
  std::vector<Real> eps_c;
  std::vector<Real> ground_density;  ///< for the ALDA kernel

  Index nv() const { return psi_v.cols(); }
  Index nc() const { return psi_c.cols(); }
  Index ncv() const { return nv() * nc(); }
  Index nr() const { return grid.size(); }
};

/// Diagonal D of orbital-energy differences, pair-ordered (iv*Nc + ic).
std::vector<Real> energy_differences(const CasidaProblem& problem);

/// Explicit Nv·Nc x Nv·Nc Hamiltonian via Algorithm 1. Profile phases:
/// "pair_product", "fft" (kernel), "gemm".
la::RealMatrix build_hamiltonian_naive(const CasidaProblem& problem,
                                       const HxcKernel& kernel,
                                       obs::WallProfiler* profiler = nullptr);

/// Dense diagonalization returning the lowest `num_states` excitation
/// energies and eigenvectors (ScaLAPACK::SYEVD stand-in; paper Alg 1
/// line 11). Profile phase: "diag".
struct CasidaSolution {
  std::vector<Real> energies;       ///< lowest k excitation energies
  la::RealMatrix wavefunctions;     ///< Ncv x k eigenvector columns
};

CasidaSolution diagonalize_dense(const la::RealMatrix& hamiltonian,
                                 Index num_states,
                                 obs::WallProfiler* profiler = nullptr);

}  // namespace lrt::tddft
