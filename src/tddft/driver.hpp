// Serial LR-TDDFT driver: the five optimization levels of paper Table 4.
//
//   (1) kNaive              — explicit Pvc build + dense SYEV
//   (2) kQrcpIsdf           — QRCP-selected ISDF + explicit H + SYEV
//   (3) kKmeansIsdf         — K-Means-selected ISDF + explicit H + SYEV
//   (4) kKmeansIsdfLobpcg   — K-Means ISDF + explicit H + LOBPCG
//   (5) kImplicit           — K-Means ISDF + implicit factored H + LOBPCG
//
// The driver also estimates the per-version memory footprint with the
// closed forms of Table 4 so the benches can report both axes.
#pragma once

#include "dft/scf.hpp"
#include "dft/synthetic.hpp"
#include "tddft/casida_isdf.hpp"
#include "tddft/lobpcg_tddft.hpp"

namespace lrt::tddft {

enum class Version {
  kNaive,
  kQrcpIsdf,
  kKmeansIsdf,
  kKmeansIsdfLobpcg,
  kImplicit,
};

const char* version_name(Version version);

struct DriverOptions {
  Version version = Version::kImplicit;
  Index num_states = 3;  ///< excitation energies to report (k)
  /// Interpolation points; 0 derives Nμ = nmu_ratio * (Nv + Nc) as in the
  /// paper's Nμ ≈ c · Ne rule of thumb.
  Index nmu = 0;
  Real nmu_ratio = 6.0;
  bool include_xc = true;
  TddftEigenOptions eigen;
  isdf::IsdfOptions isdf;  ///< method field is overridden by `version`
};

struct DriverResult {
  std::vector<Real> energies;    ///< lowest k excitation energies
  la::RealMatrix wavefunctions;  ///< Ncv x k
  obs::WallProfiler profiler;         ///< phases: select_points, interp_vectors,
                                 ///< pair_product, fft, gemm, diag
  double seconds_total = 0;
  Index nmu_used = 0;
  double memory_bytes_estimate = 0;  ///< Table 4 closed-form estimate
  Index eigen_iterations = 0;        ///< LOBPCG iterations (0 for SYEV)
};

/// Runs one version end to end on a prepared problem.
DriverResult solve_casida(const CasidaProblem& problem,
                          const DriverOptions& options);

/// Builds the Casida inputs from a converged SCF, restricting to the top
/// `nv_use` valence and bottom `nc_use` conduction states (0 = all).
CasidaProblem make_problem_from_scf(const dft::KohnShamResult& ks,
                                    Index nv_use = 0, Index nc_use = 0);

/// Builds the Casida inputs from synthetic orbitals (scaling benches).
CasidaProblem make_problem_from_synthetic(const grid::RealSpaceGrid& grid,
                                          const dft::SyntheticOrbitals& orbs);

}  // namespace lrt::tddft
