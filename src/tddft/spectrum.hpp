// Spectral post-processing: density of states and oscillator strengths.
//
// Used by the MATBG application bench (paper Fig 9): Gaussian-broadened
// DOS of Kohn-Sham energies and of the excitation spectrum, plus dipole
// oscillator strengths  f_n = (2/3) ω_n Σ_α |Σ_ij d_ij^α X_ij^n|².
// Transition dipoles use positions relative to the cell center; for the
// periodic-cell caveat see the doc comment on transition_dipoles.
#pragma once

#include <array>
#include <vector>

#include "tddft/casida_naive.hpp"

namespace lrt::tddft {

/// Gaussian-broadened density of states on `energy_grid`:
///   DOS(E) = Σ_n w_n exp(-(E - E_n)²/2σ²) / (σ √(2π))
/// `weights` defaults to 1 per state.
std::vector<Real> gaussian_dos(const std::vector<Real>& energies,
                               const std::vector<Real>& energy_grid,
                               Real sigma,
                               const std::vector<Real>* weights = nullptr);

/// Uniform energy grid helper [e_min, e_max] with `count` samples.
std::vector<Real> linspace(Real e_min, Real e_max, Index count);

/// Pair transition dipoles d_ij = ∫ ψ_iv(r) (r - r_center) ψ_ic(r) dv,
/// pair-ordered (Ncv x 3). Exact for the molecule-in-a-box geometry; for
/// periodic crystals it is the standard length-gauge approximation on the
/// wrapped coordinate (adequate for the qualitative Fig 9 DOS).
std::vector<std::array<Real, 3>> transition_dipoles(
    const CasidaProblem& problem);

struct Spectrum {
  std::vector<Real> energies;    ///< excitation energies, ascending
  std::vector<Real> strengths;   ///< oscillator strengths f_n
};

/// Oscillator strengths of solved excitations (X columns over pairs).
Spectrum oscillator_spectrum(const CasidaProblem& problem,
                             const std::vector<Real>& energies,
                             la::RealConstView wavefunctions);

/// Lorentzian-broadened absorption cross-section on `energy_grid`:
///   σ(E) ∝ Σ_n f_n γ / ((E - E_n)² + γ²)
/// with half-width `gamma` — the standard presentation of a computed
/// optical spectrum.
std::vector<Real> absorption_spectrum(const Spectrum& spectrum,
                                      const std::vector<Real>& energy_grid,
                                      Real gamma);

}  // namespace lrt::tddft
