#include "tddft/dist_driver.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "ft/checkpoint.hpp"
#include "isdf/pairproduct.hpp"
#include "kmeans/dist_kmeans.hpp"
#include "la/blas.hpp"
#include "la/lstsq.hpp"
#include "obs/counters.hpp"
#include "obs/obs.hpp"
#include "par/disteig.hpp"
#include "par/pipeline.hpp"
#include "par/transpose.hpp"
#include "obs/phase_registry.hpp"
#include "tddft/dist_implicit.hpp"

namespace lrt::tddft {
namespace {

struct PhaseClock {
  std::map<std::string, double> seconds;
  void add(const std::string& name, double s) { seconds[name] += s; }
};

/// Times one Figure-8 phase region: CPU seconds go to the PhaseClock
/// (the paper's per-rank busy accounting), and an obs::Span with the
/// exact phase name goes to the trace. stop() ends the region early so
/// results can escape the timed scope.
class PhaseTimer {
 public:
  PhaseTimer(PhaseClock& clock, const char* name)
      : clock_(&clock), name_(name), span_(name) {}

  void stop() {
    if (clock_ != nullptr) {
      span_.end();
      clock_->add(name_, t_.seconds());
      clock_ = nullptr;
      // Peak-memory gauge at the phase boundary: one procfs read, off
      // the hot path (phases run for milliseconds to seconds). VmHWM is
      // process-wide, so the counter is the run's high-water mark, not a
      // per-phase delta.
      static obs::Counter& hwm = obs::counter("mem.hwm.bytes");
      const long long bytes = obs::vm_hwm_bytes();
      if (bytes > 0) hwm.record_max(bytes);
    }
  }

  ~PhaseTimer() { stop(); }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  PhaseClock* clock_;
  const char* name_;
  obs::Span span_;
  ThreadCpuTimer t_;
};

/// This rank's contiguous row slab of a replicated Nr x m matrix.
la::RealConstView my_rows(la::RealConstView full, const par::BlockPartition& part,
                          int rank) {
  return full.rows_block(part.offset(rank), part.count(rank));
}

/// Applies the kernel to a row-block distributed matrix: alltoall to
/// column blocks, per-column FFT kernel, alltoall back. Phases: mpi, fft.
la::RealMatrix kernel_apply_distributed(par::Comm& comm,
                                        const HxcKernel& kernel,
                                        la::RealConstView local_rows,
                                        Index n_rows, Index n_cols,
                                        PhaseClock& clock) {
  // Overlapped exchanges: each alltoall is sliced and double-buffered so
  // packing of one slice hides behind the flight time of the previous one
  // (par.overlap.* spans); bitwise identical to the blocking variant.
  PhaseTimer t_mpi(clock, obs::phase::kMpi);
  la::RealMatrix cols =
      par::row_block_to_col_block_overlapped(comm, local_rows, n_rows, n_cols);
  t_mpi.stop();

  la::RealMatrix kcols(cols.rows(), cols.cols());
  PhaseTimer t_fft(clock, obs::phase::kFft);
  kernel.apply(cols.view(), kcols.view(), nullptr);
  t_fft.stop();

  PhaseTimer t_mpi2(clock, obs::phase::kMpi);
  la::RealMatrix result =
      par::col_block_to_row_block_overlapped(comm, kcols.view(), n_rows, n_cols);
  t_mpi2.stop();
  return result;
}

/// Serializes the replicated K-Means phase result for the phase-granular
/// restart of the implicit path (docs/RESILIENCE.md): centroids and
/// interpolation points pin the downstream sampling, objective and the
/// counters just keep reporting consistent.
void save_driver_kmeans(const std::string& path,
                        const kmeans::DistKMeansResult& km) {
  ft::CheckpointWriter writer;
  const std::string kind = "driver_kmeans";
  writer.add("kind", kind.data(), kind.size());
  struct Meta {
    long long nmu;
    long long iterations;
    long long num_pruned;
    Real objective;
  };
  static_assert(std::is_trivially_copyable_v<Meta>);
  Meta meta{static_cast<long long>(km.centroids.size()), km.iterations,
            km.num_pruned, km.objective};
  writer.add_pod("meta", meta);
  writer.add_array("centroids", km.centroids);
  std::vector<long long> ips(km.interpolation_points.begin(),
                             km.interpolation_points.end());
  writer.add_array("interpolation_points", ips);
  writer.write(path);
}

kmeans::DistKMeansResult load_driver_kmeans(const std::string& path,
                                            Index nmu) {
  const ft::CheckpointReader reader(path);
  const std::vector<unsigned char>& kind_bytes = reader.section("kind");
  const std::string kind(kind_bytes.begin(), kind_bytes.end());
  if (kind != "driver_kmeans") {
    throw ft::CheckpointError(ft::CheckpointFault::kBadShape,
                              "checkpoint kind is '" + kind +
                                  "', expected 'driver_kmeans'");
  }
  struct Meta {
    long long nmu;
    long long iterations;
    long long num_pruned;
    Real objective;
  };
  static_assert(std::is_trivially_copyable_v<Meta>);
  const Meta meta = reader.pod<Meta>("meta");
  if (meta.nmu != static_cast<long long>(nmu)) {
    throw ft::CheckpointError(
        ft::CheckpointFault::kBadShape,
        "checkpoint holds " + std::to_string(meta.nmu) +
            " clusters, this run wants " + std::to_string(nmu));
  }
  kmeans::DistKMeansResult km;
  km.iterations = static_cast<Index>(meta.iterations);
  km.num_pruned = static_cast<Index>(meta.num_pruned);
  km.objective = meta.objective;
  km.centroids = reader.array<grid::Vec3>("centroids");
  const std::vector<long long> ips =
      reader.array<long long>("interpolation_points");
  km.interpolation_points.assign(ips.begin(), ips.end());
  return km;
}

/// H = D + 2 dv sym(V) applied in place to a replicated raw product V.
void finalize_hamiltonian(la::RealMatrix& h, const std::vector<Real>& d,
                          Real dv) {
  const Index n = h.rows();
  for (Index i = 0; i < n; ++i) {
    for (Index j = i; j < n; ++j) {
      const Real v = dv * (h(i, j) + h(j, i));
      h(i, j) = v;
      h(j, i) = v;
    }
    h(i, i) += d[static_cast<std::size_t>(i)];
  }
}

std::vector<Real> solve_naive(par::Comm& comm, const CasidaProblem& problem,
                              const HxcKernel& kernel,
                              const DistDriverOptions& options,
                              PhaseClock& clock) {
  const int me = comm.rank();
  const Index nr = problem.nr();
  const Index ncv = problem.ncv();
  const par::BlockPartition rows(nr, comm.size());

  // Row-block pair products (Algorithm 1 line 2).
  PhaseTimer t_pair(clock, obs::phase::kPairProduct);
  const la::RealMatrix p_loc = isdf::pair_product_matrix(
      my_rows(problem.psi_v.view(), rows, me),
      my_rows(problem.psi_c.view(), rows, me));
  t_pair.stop();

  // Kernel with the alltoall sandwich (lines 3-6).
  const la::RealMatrix kp_loc = kernel_apply_distributed(
      comm, kernel, p_loc.view(), nr, ncv, clock);

  // Vhxc assembly (lines 7-8): GEMM + Allreduce, or pipelined Reduce.
  la::RealMatrix h;
  PhaseTimer t_gemm(clock, obs::phase::kGemm);
  if (options.pipelined_reduce) {
    par::PipelineResult piped = par::gram_reduce_pipelined(
        comm, p_loc.view(), kp_loc.view(), options.pipeline_chunk);
    // Replicate for the dense solve (rank rows -> full matrix).
    h.resize(ncv, ncv);
    std::vector<Index> counts(static_cast<std::size_t>(comm.size()));
    std::vector<Index> displs(static_cast<std::size_t>(comm.size()));
    const par::BlockPartition out_rows(ncv, comm.size());
    for (int r = 0; r < comm.size(); ++r) {
      counts[static_cast<std::size_t>(r)] = out_rows.count(r) * ncv;
      displs[static_cast<std::size_t>(r)] = out_rows.offset(r) * ncv;
    }
    comm.allgatherv(piped.local_rows.data(), piped.local_rows.size(),
                    h.data(), counts, displs);
  } else {
    h = par::gram_reduce_monolithic(comm, p_loc.view(), kp_loc.view());
  }
  t_gemm.stop();

  finalize_hamiltonian(h, energy_differences(problem), problem.grid.dv());

  // Dense diagonalization via the block-cyclic SYEVD stand-in (Fig 3c).
  PhaseTimer t_diag(clock, obs::phase::kDiag);
  const par::Layout row_layout =
      par::Layout::block_row(ncv, ncv, comm.size());
  par::DistMatrix h_dist(row_layout, me);
  h_dist.fill_global([&](Index i, Index j) { return h(i, j); });
  par::DistEigResult eig = par::dist_syev(comm, h_dist, options.eig_method);
  t_diag.stop();

  return std::vector<Real>(
      eig.values.begin(), eig.values.begin() + options.num_states);
}

std::vector<Real> solve_implicit(par::Comm& comm,
                                 const CasidaProblem& problem,
                                 const HxcKernel& kernel,
                                 const DistDriverOptions& options,
                                 PhaseClock& clock) {
  const int me = comm.rank();
  const Index nr = problem.nr();
  const Index nv = problem.nv();
  const Index nc = problem.nc();
  const par::BlockPartition rows(nr, comm.size());
  const Index my_count = rows.count(me);
  const Index my_offset = rows.offset(me);

  Index nmu = options.nmu;
  if (nmu <= 0) {
    nmu = static_cast<Index>(
        std::llround(options.nmu_ratio * static_cast<Real>(nv + nc)));
  }
  nmu = std::min({nmu, problem.ncv(), nr});

  const la::RealConstView psi_v_loc = my_rows(problem.psi_v.view(), rows, me);
  const la::RealConstView psi_c_loc = my_rows(problem.psi_c.view(), rows, me);

  // Distributed K-Means on local grid slabs (paper §4.2), or its saved
  // result when restarting (docs/RESILIENCE.md). The existence check is
  // uniform across ranks — rank 0 only renames the checkpoint into place
  // after the collective phase completes, so either every rank sees it or
  // none does — and the restored result is replicated exactly like the
  // allreduced one, so downstream sampling is bit-identical.
  PhaseTimer t_kmeans(clock, obs::phase::kKmeans);
  kmeans::DistKMeansResult km;
  bool restored = false;
  if (!options.checkpoint_path.empty() &&
      ft::checkpoint_exists(options.checkpoint_path)) {
    km = load_driver_kmeans(options.checkpoint_path, nmu);
    restored = true;
  } else {
    const std::vector<Real> weights =
        kmeans::pair_weights(psi_v_loc, psi_c_loc);
    std::vector<grid::Vec3> points(static_cast<std::size_t>(my_count));
    for (Index i = 0; i < my_count; ++i) {
      points[static_cast<std::size_t>(i)] =
          problem.grid.position(my_offset + i);
    }
    km = kmeans::dist_weighted_kmeans(comm, points, weights, my_offset, nmu,
                                      options.kmeans);
  }
  t_kmeans.stop();
  if (!restored && !options.checkpoint_path.empty() && me == 0) {
    save_driver_kmeans(options.checkpoint_path, km);
  }

  // Sampled orbital rows, replicated by summation (each point is owned by
  // exactly one rank). Valence and conduction samples travel side by side
  // in one buffer so replication is a single allreduce; the split after
  // the reduction is an exact copy, so the result is bit-identical to
  // reducing the two matrices separately.
  PhaseTimer t_mpi(clock, obs::phase::kMpi);
  la::RealMatrix samp(nmu, nv + nc);
  for (Index m = 0; m < nmu; ++m) {
    const Index gp = km.interpolation_points[static_cast<std::size_t>(m)];
    if (gp >= my_offset && gp < my_offset + my_count) {
      Real* row = samp.row_ptr(m);
      for (Index j = 0; j < nv; ++j) row[j] = psi_v_loc(gp - my_offset, j);
      for (Index j = 0; j < nc; ++j) row[nv + j] = psi_c_loc(gp - my_offset, j);
    }
  }
  comm.allreduce(samp.data(), samp.size(), par::ReduceOp::kSum);
  const la::RealMatrix psi_v_mu =
      la::to_matrix<Real>(samp.view().cols_block(0, nv));
  const la::RealMatrix psi_c_mu =
      la::to_matrix<Real>(samp.view().cols_block(nv, nc));
  t_mpi.stop();

  // Local rows of Θ via the separable products (paper Eq 10).
  PhaseTimer t_gemm(clock, obs::phase::kGemm);
  const la::RealMatrix av = la::gemm(la::Trans::kNo, la::Trans::kYes,
                                     psi_v_loc, psi_v_mu.view());
  const la::RealMatrix ac = la::gemm(la::Trans::kNo, la::Trans::kYes,
                                     psi_c_loc, psi_c_mu.view());
  la::RealMatrix zct_loc(my_count, nmu);
  for (Index r = 0; r < my_count; ++r) {
    const Real* a = av.row_ptr(r);
    const Real* b = ac.row_ptr(r);
    Real* out = zct_loc.row_ptr(r);
    for (Index m = 0; m < nmu; ++m) out[m] = a[m] * b[m];
  }
  const la::RealMatrix gv = la::gemm(la::Trans::kNo, la::Trans::kYes,
                                     psi_v_mu.view(), psi_v_mu.view());
  const la::RealMatrix gc = la::gemm(la::Trans::kNo, la::Trans::kYes,
                                     psi_c_mu.view(), psi_c_mu.view());
  la::RealMatrix cct(nmu, nmu);
  for (Index m = 0; m < nmu; ++m) {
    for (Index l = 0; l < nmu; ++l) cct(m, l) = gv(m, l) * gc(m, l);
  }
  const la::RealMatrix theta_loc =
      la::solve_gram_from_right(zct_loc.view(), cct.view());
  t_gemm.stop();

  // M = Θᵀ K Θ dv: kernel sandwich + distributed Gram.
  const la::RealMatrix ktheta_loc = kernel_apply_distributed(
      comm, kernel, theta_loc.view(), nr, nmu, clock);
  PhaseTimer t_gemm2(clock, obs::phase::kGemm);
  la::RealMatrix m_mat;
  if (options.pipelined_reduce) {
    par::PipelineResult piped = par::gram_reduce_pipelined(
        comm, theta_loc.view(), ktheta_loc.view(), options.pipeline_chunk);
    m_mat.resize(nmu, nmu);
    std::vector<Index> counts(static_cast<std::size_t>(comm.size()));
    std::vector<Index> displs(static_cast<std::size_t>(comm.size()));
    const par::BlockPartition out_rows(nmu, comm.size());
    for (int r = 0; r < comm.size(); ++r) {
      counts[static_cast<std::size_t>(r)] = out_rows.count(r) * nmu;
      displs[static_cast<std::size_t>(r)] = out_rows.offset(r) * nmu;
    }
    comm.allgatherv(piped.local_rows.data(), piped.local_rows.size(),
                    m_mat.data(), counts, displs);
  } else {
    m_mat = par::gram_reduce_monolithic(comm, theta_loc.view(),
                                        ktheta_loc.view());
  }
  const Real dv = problem.grid.dv();
  for (Index i = 0; i < nmu; ++i) {
    for (Index j = i; j < nmu; ++j) {
      const Real avg = Real{0.5} * dv * (m_mat(i, j) + m_mat(j, i));
      m_mat(i, j) = avg;
      m_mat(j, i) = avg;
    }
  }
  t_gemm2.stop();

  // Distributed implicit LOBPCG (Algorithm 2): the excitation vectors are
  // row-block partitioned over the pair space (valence blocks), the 3k x
  // 3k projected problem is replicated — the paper's parallel layout.
  PhaseTimer t_diag(clock, obs::phase::kDiag);
  const DistImplicitHamiltonian h(comm, energy_differences(problem),
                                  std::move(m_mat), psi_v_mu.view(),
                                  psi_c_mu.view());
  TddftEigenOptions eig = options.eigen;
  eig.num_states = options.num_states;
  const DistCasidaSolution sol =
      solve_casida_lobpcg_distributed(comm, h, eig);
  t_diag.stop();
  return sol.energies;
}

}  // namespace

DistDriverStats solve_casida_distributed(par::Comm& comm,
                                         const CasidaProblem& problem,
                                         const DistDriverOptions& options) {
  LRT_CHECK(options.version == Version::kNaive ||
                options.version == Version::kImplicit,
            "distributed driver supports kNaive and kImplicit");

  comm.reset_comm_seconds();
  PhaseClock clock;
  Timer wall;
  ThreadCpuTimer cpu;

  const grid::GVectors gvectors(problem.grid);
  const HxcKernel kernel(problem.grid, gvectors, problem.ground_density,
                         options.include_xc);

  std::vector<Real> energies =
      (options.version == Version::kNaive)
          ? solve_naive(comm, problem, kernel, options, clock)
          : solve_implicit(comm, problem, kernel, options, clock);

  DistDriverStats stats;
  stats.energies = std::move(energies);
  stats.wall_seconds = wall.seconds();
  stats.comm_seconds = comm.comm_seconds();
  // Busy = this rank's actual CPU cycles (excludes both blocking waits and
  // time descheduled in favour of other rank-threads; DESIGN.md).
  stats.busy_seconds = cpu.seconds();

  // Aggregate maxima across ranks (fixed phase key order so every rank
  // reduces the same vector).
  const char* keys[] = {"pair_product", "kmeans", "fft", "mpi", "gemm",
                        "diag"};
  std::vector<double> values;
  for (const char* key : keys) values.push_back(clock.seconds[key]);
  values.push_back(stats.wall_seconds);
  values.push_back(stats.comm_seconds);
  values.push_back(stats.busy_seconds);
  comm.allreduce(values.data(), static_cast<Index>(values.size()),
                 par::ReduceOp::kMax);
  std::size_t idx = 0;
  for (const char* key : keys) {
    stats.phases.emplace_back(key, values[idx++]);
  }
  stats.wall_seconds = values[idx++];
  stats.comm_seconds = values[idx++];
  stats.busy_seconds = values[idx++];
  return stats;
}

}  // namespace lrt::tddft
