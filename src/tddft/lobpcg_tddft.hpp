// Excited-state LOBPCG (paper Algorithm 2).
//
// Solves for the k lowest excitation energies of the Casida problem with
// the generic LOBPCG core and the paper's Eq (17) preconditioner
//   K = (ε_ic - ε_iv) - θ   (applied as the diagonal inverse, regularized)
// — the energy-difference diagonal is an excellent approximation of H far
// from the targeted eigenvalue, so K⁻¹ r is a cheap quasi-Newton step.
#pragma once

#include "la/davidson.hpp"
#include "la/lobpcg.hpp"
#include "tddft/implicit_hamiltonian.hpp"

namespace lrt::tddft {

/// Iterative eigensolver family (paper §1 cites both Davidson [8] and
/// LOBPCG [11]; the implementation uses LOBPCG, Davidson is provided for
/// the ablation bench).
enum class EigenMethod { kLobpcg, kDavidson };

struct TddftEigenOptions {
  Index num_states = 3;
  Index max_iterations = 300;
  Real tolerance = 1e-8;
  unsigned seed = 7;
  EigenMethod method = EigenMethod::kLobpcg;
};

/// Implicit-operator path (Table 4 version (5)).
la::LobpcgResult solve_casida_lobpcg(const ImplicitHamiltonian& h,
                                     const TddftEigenOptions& options);

/// Explicit-matrix path (Table 4 version (4)): same iteration, H stored.
/// `d` supplies the preconditioner diagonal.
la::LobpcgResult solve_casida_lobpcg_dense(const la::RealMatrix& h,
                                           const std::vector<Real>& d,
                                           const TddftEigenOptions& options);

/// Davidson variant on the implicit operator (ablation; same
/// preconditioner and physically seeded start).
la::DavidsonResult solve_casida_davidson(const ImplicitHamiltonian& h,
                                         const TddftEigenOptions& options);

}  // namespace lrt::tddft
