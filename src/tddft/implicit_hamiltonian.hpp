// Implicitly factored LR-TDDFT Hamiltonian (paper §4.3).
//
// H is never formed. Its action on a block X of trial excitation vectors
// (pair-ordered, Ncv x k) is
//   H X = D ∘ X + 2 Cᵀ (M (C X))
// and both C applications use the factored Khatri-Rao form of C
// (C = Ψ_μ ⊙ Φ_μ row-wise), so total storage is O(Nμ²) + O(Nμ(Nv+Nc))
// — the last line of paper Table 4.
//
//   (C x)(μ)   = Ψ_μ(μ,:) · Xmat · Φ_μ(μ,:)ᵀ     (Xmat: Nv x Nc reshape)
//   (Cᵀ w)     = Ψ_μᵀ diag(w) Φ_μ                (reshaped back to pairs)
#pragma once

#include <vector>

#include "isdf/isdf.hpp"
#include "la/matrix.hpp"

namespace lrt::tddft {

class ImplicitHamiltonian {
 public:
  /// `d` is the pair-ordered diagonal ε_c - ε_v; `m` the Nμ x Nμ kernel
  /// projection; sampled orbitals come from the IsdfResult.
  ImplicitHamiltonian(std::vector<Real> d, la::RealMatrix m,
                      la::RealMatrix psi_v_mu, la::RealMatrix psi_c_mu);

  Index dimension() const { return static_cast<Index>(d_.size()); }
  Index nmu() const { return m_.rows(); }
  Index nv() const { return psi_v_mu_.cols(); }
  Index nc() const { return psi_c_mu_.cols(); }
  const std::vector<Real>& diagonal_d() const { return d_; }

  /// y = H x for a block (Ncv x k).
  void apply(la::RealConstView x, la::RealView y) const;

  /// w = C x (Nμ x k) — exposed for tests.
  la::RealMatrix apply_c(la::RealConstView x) const;

  /// x = Cᵀ w (Ncv x k) — exposed for tests.
  la::RealMatrix apply_ct(la::RealConstView w) const;

  /// Estimated resident bytes of the factored representation.
  double memory_bytes() const;

 private:
  std::vector<Real> d_;
  la::RealMatrix m_;
  la::RealMatrix psi_v_mu_;  ///< Nμ x Nv
  la::RealMatrix psi_c_mu_;  ///< Nμ x Nc
};

/// Convenience assembly from a decomposition + kernel projection.
ImplicitHamiltonian make_implicit_hamiltonian(
    std::vector<Real> d, const isdf::IsdfResult& isdf_result,
    la::RealMatrix m);

}  // namespace lrt::tddft
