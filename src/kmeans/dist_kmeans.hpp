// Distributed weighted K-Means (paper §4.2, last paragraph).
//
// Grid points are row-block partitioned over ranks. Each iteration:
// local assignment (embarrassingly parallel), then the per-cluster
// weighted coordinate sums and total weights are combined with a single
// Allreduce and the updated centroids are implicitly broadcast by the
// reduction — exactly the communication pattern the paper describes.
#pragma once

#include "kmeans/kmeans.hpp"
#include "par/comm.hpp"

namespace lrt::kmeans {

struct DistKMeansResult {
  std::vector<grid::Vec3> centroids;        ///< replicated
  std::vector<Index> interpolation_points;  ///< replicated global indices
  Real objective = 0;
  Index iterations = 0;
  Index num_pruned = 0;  ///< global count
};

/// `points`/`weights` hold this rank's block; `global_offset` is the global
/// index of the first local point. Seeding uses the globally heaviest
/// points (allgathered candidates), so all ranks start identically.
DistKMeansResult dist_weighted_kmeans(par::Comm& comm,
                                      const std::vector<grid::Vec3>& points,
                                      const std::vector<Real>& weights,
                                      Index global_offset, Index k,
                                      const KMeansOptions& options = {});

}  // namespace lrt::kmeans
