// Weighted K-Means clustering of real-space grid points (paper §4.2).
//
// The interpolation points of ISDF are chosen as the grid points closest
// to the centroids of Nμ weighted clusters, with weight function
//   w(r) = Σ_i |ψ_i(r)|² · Σ_j |φ_j(r)|²           (paper Eq 14)
// Three features from the paper are implemented:
//  - pruning: points with w below a threshold (relative to the max) are
//    removed before clustering, shrinking N_r to N_r' ≪ N_r;
//  - weight-aware seeding: centroids start from high-weight points
//    (greedy k-means++-style D² sampling by default, pure top-weight and
//    uniform-random seeding available for the ablation bench);
//  - weighted Lloyd updates with empty-cluster reseeding.
#pragma once

#include <functional>
#include <vector>

#include "ft/checkpoint.hpp"
#include "grid/rsgrid.hpp"
#include "la/matrix.hpp"

namespace lrt::kmeans {

enum class Seeding {
  kWeightedKpp,    ///< weighted k-means++ (D² sampling), default
  kTopWeight,      ///< greedy largest-weight points (paper's description)
  kUniformRandom,  ///< unweighted random seeding (ablation baseline)
};

struct KMeansOptions {
  Index max_iterations = 60;
  /// Stop when the relative objective decrease falls below this.
  Real tolerance = 1e-7;
  /// Points with weight < threshold * max(weight) are pruned before
  /// clustering (paper: "remove the points with weights less than the
  /// threshold"). 0 keeps everything.
  Real weight_threshold = 1e-6;
  Seeding seeding = Seeding::kWeightedKpp;
  unsigned seed = 7;
  /// When set, point-to-centroid distances use the minimum-image
  /// convention of this cell (ablation: the paper clusters with plain
  /// Euclidean distances, which can split a weight blob that straddles
  /// the periodic boundary into two clusters). Centroids remain
  /// arithmetic means — adequate for clusters compact relative to the
  /// cell, which pruned pair-product weights always are.
  const grid::UnitCell* periodic_cell = nullptr;
  /// Elkan-lite assignment pruning: each point carries a lower bound on
  /// its distance to every center but its own, decayed by how far the
  /// other centers moved; points whose exact assigned-center distance
  /// stays strictly under the bound skip the full k-distance scan.
  /// Results are bit-identical to the exact scan — same assignments,
  /// centroids, objective, iteration count (asserted in
  /// tests/test_perf_kernels.cpp) — so this is safe to leave on; the
  /// switch exists for the exactness test and the `--compare` bench.
  bool pruned_assignment = true;
  /// Checkpoint/restart (docs/RESILIENCE.md): every `checkpoint_interval`
  /// completed Lloyd iterations the solver hands its end-of-iteration
  /// state to `checkpoint_sink` (0 disables); `restore` resumes from one.
  /// A resumed run is bit-identical to an uninterrupted one: the first
  /// resumed iteration full-scans every point (no Elkan bounds survive
  /// the restart), which the PR-4 pruning invariant makes exact, and the
  /// serialized Rng stream replays any later empty-cluster reseeds.
  Index checkpoint_interval = 0;
  std::function<void(const ft::KMeansState&)> checkpoint_sink;
  const ft::KMeansState* restore = nullptr;
};

struct KMeansResult {
  std::vector<grid::Vec3> centroids;     ///< k weighted centroids
  std::vector<Index> interpolation_points;  ///< k distinct grid indices
  std::vector<Index> kept_points;        ///< surviving point indices (N_r')
  std::vector<Index> assignment;         ///< cluster of each kept point
  Real objective = 0;                    ///< Σ w |r - c|² at exit
  Index iterations = 0;
  Index num_pruned = 0;
};

/// Clusters `points` (all N_r grid positions) with `weights` into k
/// clusters and returns one representative grid point per cluster.
KMeansResult weighted_kmeans(const std::vector<grid::Vec3>& points,
                             const std::vector<Real>& weights, Index k,
                             const KMeansOptions& options = {});

/// The paper's Eq (14) weight: row norms of the pair-product matrix,
/// w(r) = (Σ_i ψ_i(r)²)(Σ_j φ_j(r)²) for dv-normalized orbital blocks.
std::vector<Real> pair_weights(la::RealConstView psi_v,
                               la::RealConstView psi_c);

}  // namespace lrt::kmeans
