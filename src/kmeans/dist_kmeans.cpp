#include "kmeans/dist_kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/counters.hpp"
#include "obs/obs.hpp"

namespace lrt::kmeans {
namespace {

Real squared_distance(const grid::Vec3& a, const grid::Vec3& b) {
  const Real dx = a[0] - b[0];
  const Real dy = a[1] - b[1];
  const Real dz = a[2] - b[2];
  return dx * dx + dy * dy + dz * dz;
}

// Same Elkan-lite slack margins as kmeans.cpp (docs/PERFORMANCE.md §3):
// the skip test proves strict inequality with 1e-9 relative headroom, so
// pruned assignments stay bit-identical to the exact scan. Because the
// per-point contributions to the packed reduction buffer are unchanged
// and accumulated in the same order, every rank reduces identical local
// buffers and the allreduced Lloyd state (and thus iteration count) is
// identical too.
constexpr Real kPruneSlackUp = Real{1} + Real{1e-9};
constexpr Real kPruneSlackDown = Real{1} - Real{1e-9};

}  // namespace

DistKMeansResult dist_weighted_kmeans(par::Comm& comm,
                                      const std::vector<grid::Vec3>& points,
                                      const std::vector<Real>& weights,
                                      Index global_offset, Index k,
                                      const KMeansOptions& options) {
  const obs::Span span("kmeans.dist");
  const Index n_local = static_cast<Index>(points.size());
  LRT_CHECK(static_cast<Index>(weights.size()) == n_local,
            "points/weights size mismatch");

  DistKMeansResult result;

  // Global pruning threshold from the global max weight.
  Real wmax = 0;
  for (const Real w : weights) wmax = std::max(wmax, w);
  comm.allreduce(&wmax, 1, par::ReduceOp::kMax);
  LRT_CHECK(wmax > 0, "all weights are zero");
  const Real cut = options.weight_threshold * wmax;

  std::vector<Index> kept;  // local indices
  for (Index i = 0; i < n_local; ++i) {
    if (weights[static_cast<std::size_t>(i)] >= cut) kept.push_back(i);
  }
  // The global pruned-point count rides along in the first Lloyd
  // reduction below (one fewer allreduce per solve); a plain allreduce
  // only happens if the loop never executes. Counts up to 2^53 are exact
  // in a Real, and the summation tree is the same, so the fold is
  // bit-identical to the dedicated reduction it replaces.
  Index pruned = n_local - static_cast<Index>(kept.size());
  bool pruned_folded = false;

  Index start_iter = 0;
  Real restored_objective = std::numeric_limits<Real>::max();
  if (options.restore != nullptr) {
    // Resume mid-run (every rank must be handed the same snapshot, like
    // every other uniform-options contract of this collective routine):
    // centroids and the previous objective come from the checkpoint, the
    // kept sets were just recomputed deterministically, and the seeding
    // exchange below is skipped on all ranks together.
    const ft::KMeansState& ck = *options.restore;
    LRT_CHECK(static_cast<Index>(ck.centroids.size()) == k,
              "dist_kmeans restore: snapshot has "
                  << ck.centroids.size() << " centroids, expected " << k);
    result.centroids = ck.centroids;
    start_iter = ck.iteration;
    restored_objective = ck.objective;
  } else {
    // Seeding: every rank contributes its k heaviest kept points; the
    // globally heaviest k of the allgathered candidates seed the clusters
    // identically on every rank.
    struct Candidate {
      Real weight;
      Real x, y, z;
    };
    static_assert(std::is_trivially_copyable_v<Candidate>);
    const Index c_per_rank =
        std::min<Index>(k, static_cast<Index>(kept.size()));
    std::vector<Index> order = kept;
    std::partial_sort(order.begin(), order.begin() + c_per_rank, order.end(),
                      [&](Index a, Index b) {
                        return weights[static_cast<std::size_t>(a)] >
                               weights[static_cast<std::size_t>(b)];
                      });
    std::vector<Candidate> mine(static_cast<std::size_t>(k),
                                Candidate{-1, 0, 0, 0});
    for (Index j = 0; j < c_per_rank; ++j) {
      const Index p = order[static_cast<std::size_t>(j)];
      mine[static_cast<std::size_t>(j)] =
          Candidate{weights[static_cast<std::size_t>(p)],
                    points[static_cast<std::size_t>(p)][0],
                    points[static_cast<std::size_t>(p)][1],
                    points[static_cast<std::size_t>(p)][2]};
    }
    std::vector<Candidate> all(static_cast<std::size_t>(k * comm.size()));
    comm.allgather(mine.data(), k, all.data());
    std::sort(all.begin(), all.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.weight > b.weight;
              });
    result.centroids.resize(static_cast<std::size_t>(k));
    for (Index c = 0; c < k; ++c) {
      LRT_CHECK(all[static_cast<std::size_t>(c)].weight >= 0,
                "not enough kept points to seed " << k << " clusters");
      result.centroids[static_cast<std::size_t>(c)] = {
          all[static_cast<std::size_t>(c)].x,
          all[static_cast<std::size_t>(c)].y,
          all[static_cast<std::size_t>(c)].z};
    }
  }

  // Lloyd iterations with one Allreduce per step.
  std::vector<Index> assignment(kept.size(), 0);
  // Packed reduction buffer: per cluster [w, wx, wy, wz], then objective,
  // then (first executed iteration only) the local pruned-point count.
  std::vector<Real> reduction(static_cast<std::size_t>(4 * k + 2));
  Real previous_objective = restored_objective;

  // Elkan-lite pruning state, as in kmeans.cpp: lb[i] lower-bounds the
  // distance to every center except the assigned one. have_move_state
  // mirrors the serial solver: false on the first iteration and after a
  // restore, forcing a full scan (bit-identical by the PR-4 invariant).
  const bool prune = options.pruned_assignment;
  std::vector<Real> lb(prune ? kept.size() : 0, Real{-1});
  std::vector<grid::Vec3> prev_centroids;
  bool have_move_state = false;
  static obs::Counter& full_counter = obs::counter("kmeans.assign.full");
  static obs::Counter& skip_counter = obs::counter("kmeans.assign.skipped");

  for (Index iter = start_iter; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    std::fill(reduction.begin(), reduction.end(), Real{0});

    Real move1 = 0;
    Real move2 = 0;
    Index move_arg = -1;
    if (prune && have_move_state) {
      for (Index c = 0; c < k; ++c) {
        const Real moved = std::sqrt(squared_distance(
            prev_centroids[static_cast<std::size_t>(c)],
            result.centroids[static_cast<std::size_t>(c)]));
        if (moved > move1) {
          move2 = move1;
          move1 = moved;
          move_arg = c;
        } else if (moved > move2) {
          move2 = moved;
        }
      }
    }

    long long full_scans = 0;
    long long skips = 0;
    for (std::size_t i = 0; i < kept.size(); ++i) {
      const Index p = kept[i];
      const grid::Vec3& r = points[static_cast<std::size_t>(p)];
      const Real w = weights[static_cast<std::size_t>(p)];
      if (prune) {
        const Index a = assignment[i];
        const Real drift = (a == move_arg) ? move2 : move1;
        const Real bound = lb[i] - drift;
        if (bound > 0) {
          const Real d2a = squared_distance(
              r, result.centroids[static_cast<std::size_t>(a)]);
          if (std::sqrt(d2a) * kPruneSlackUp < bound * kPruneSlackDown) {
            // Strictly no other center can win: keep `a`, contribute the
            // identical reduction terms the full scan would.
            lb[i] = bound;
            Real* slot = &reduction[static_cast<std::size_t>(4 * a)];
            slot[0] += w;
            slot[1] += w * r[0];
            slot[2] += w * r[1];
            slot[3] += w * r[2];
            reduction[static_cast<std::size_t>(4 * k)] += w * d2a;
            ++skips;
            continue;
          }
        }
      }
      Real best = std::numeric_limits<Real>::max();
      Real second = std::numeric_limits<Real>::max();
      Index best_c = 0;
      for (Index c = 0; c < k; ++c) {
        const Real d =
            squared_distance(r, result.centroids[static_cast<std::size_t>(c)]);
        if (d < best) {
          second = best;
          best = d;
          best_c = c;
        } else if (d < second) {
          second = d;
        }
      }
      assignment[i] = best_c;
      if (prune) lb[i] = std::sqrt(second);
      ++full_scans;
      Real* slot = &reduction[static_cast<std::size_t>(4 * best_c)];
      slot[0] += w;
      slot[1] += w * r[0];
      slot[2] += w * r[1];
      slot[3] += w * r[2];
      reduction[static_cast<std::size_t>(4 * k)] += w * best;
    }
    full_counter.add(full_scans);
    skip_counter.add(skips);
    if (prune) {
      prev_centroids = result.centroids;
      have_move_state = true;
    }

    if (!pruned_folded) {
      reduction[static_cast<std::size_t>(4 * k + 1)] =
          static_cast<Real>(pruned);
    }
    comm.allreduce(reduction.data(), static_cast<Index>(reduction.size()),
                   par::ReduceOp::kSum);
    if (!pruned_folded) {
      result.num_pruned = static_cast<Index>(
          std::llround(reduction[static_cast<std::size_t>(4 * k + 1)]));
      pruned_folded = true;
    }
    result.objective = reduction[static_cast<std::size_t>(4 * k)];

    for (Index c = 0; c < k; ++c) {
      const Real* slot = &reduction[static_cast<std::size_t>(4 * c)];
      if (slot[0] > 0) {
        result.centroids[static_cast<std::size_t>(c)] = {
            slot[1] / slot[0], slot[2] / slot[0], slot[3] / slot[0]};
      }
      // Empty clusters keep their previous centroid (deterministic across
      // ranks; reseeding would need another round of agreement).
    }

    if (previous_objective < std::numeric_limits<Real>::max() &&
        previous_objective - result.objective <=
            options.tolerance * std::max(previous_objective, Real{1e-30})) {
      break;
    }
    previous_objective = result.objective;

    // End-of-iteration snapshot. The sink typically writes only on rank 0
    // (centroids and objective are replicated by the allreduce above);
    // has_rng stays false — this solver draws no randomness.
    if (options.checkpoint_interval > 0 && options.checkpoint_sink &&
        (iter + 1) % options.checkpoint_interval == 0) {
      ft::KMeansState ck;
      ck.centroids = result.centroids;
      ck.iteration = iter + 1;
      ck.objective = previous_objective;
      options.checkpoint_sink(ck);
    }
  }

  if (!pruned_folded) {
    // max_iterations left no executed Lloyd iteration to carry the count.
    comm.allreduce(&pruned, 1, par::ReduceOp::kSum);
    result.num_pruned = pruned;
  }

  // Representative points: local nearest per cluster, then a global
  // argmin via allgather of (distance, global index) candidates.
  struct Rep {
    Real distance;
    long long global_index;
  };
  static_assert(std::is_trivially_copyable_v<Rep>);
  std::vector<Rep> local_rep(static_cast<std::size_t>(k),
                             Rep{std::numeric_limits<Real>::max(), -1});
  for (std::size_t i = 0; i < kept.size(); ++i) {
    const Index p = kept[i];
    const Index c = assignment[i];
    const Real d = squared_distance(points[static_cast<std::size_t>(p)],
                                    result.centroids[static_cast<std::size_t>(c)]);
    if (d < local_rep[static_cast<std::size_t>(c)].distance) {
      local_rep[static_cast<std::size_t>(c)] =
          Rep{d, static_cast<long long>(global_offset + p)};
    }
  }
  std::vector<Rep> all_rep(static_cast<std::size_t>(k * comm.size()));
  comm.allgather(local_rep.data(), k, all_rep.data());
  result.interpolation_points.assign(static_cast<std::size_t>(k), -1);
  std::vector<long long> used;
  for (Index c = 0; c < k; ++c) {
    Rep best{std::numeric_limits<Real>::max(), -1};
    for (int r = 0; r < comm.size(); ++r) {
      const Rep& cand = all_rep[static_cast<std::size_t>(r * k + c)];
      if (cand.global_index < 0) continue;
      if (std::find(used.begin(), used.end(), cand.global_index) != used.end()) {
        continue;
      }
      if (cand.distance < best.distance) best = cand;
    }
    LRT_CHECK(best.global_index >= 0,
              "cluster " << c << " has no representative point");
    used.push_back(best.global_index);
    result.interpolation_points[static_cast<std::size_t>(c)] =
        static_cast<Index>(best.global_index);
  }
  std::sort(result.interpolation_points.begin(),
            result.interpolation_points.end());
  static obs::Counter& iterations = obs::counter("kmeans.dist.iterations");
  iterations.add(result.iterations);
  return result;
}

}  // namespace lrt::kmeans
