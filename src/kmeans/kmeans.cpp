#include "kmeans/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/random.hpp"
#include "obs/counters.hpp"
#include "obs/obs.hpp"

namespace lrt::kmeans {
namespace {

// Pruned-assignment safety margins (docs/PERFORMANCE.md §3): the skip
// test must prove STRICT inequality "every other center is farther"
// despite the O(1e-14) relative rounding of the distance/sqrt chain, so
// both sides get a 1e-9 relative slack — conservative by five orders of
// magnitude, which is what makes pruned assignments bit-identical to
// the exact scan (including first-lowest-index tie-breaking).
constexpr Real kPruneSlackUp = Real{1} + Real{1e-9};
constexpr Real kPruneSlackDown = Real{1} - Real{1e-9};

Real squared_distance(const grid::Vec3& a, const grid::Vec3& b,
                      const grid::UnitCell* cell) {
  if (cell) {
    return grid::norm2(cell->minimum_image(a, b));
  }
  const Real dx = a[0] - b[0];
  const Real dy = a[1] - b[1];
  const Real dz = a[2] - b[2];
  return dx * dx + dy * dy + dz * dz;
}

/// Seeds k centroids from the kept points according to the chosen policy.
std::vector<grid::Vec3> seed_centroids(const std::vector<grid::Vec3>& points,
                                       const std::vector<Real>& weights,
                                       const std::vector<Index>& kept, Index k,
                                       Seeding seeding, Rng& rng,
                                       const grid::UnitCell* cell) {
  const Index nkept = static_cast<Index>(kept.size());
  std::vector<grid::Vec3> centroids;
  centroids.reserve(static_cast<std::size_t>(k));

  switch (seeding) {
    case Seeding::kUniformRandom: {
      // Sample k distinct kept points uniformly.
      std::vector<Index> pool = kept;
      for (Index j = 0; j < k; ++j) {
        const Index pick =
            static_cast<Index>(rng.uniform_index(
                static_cast<std::uint64_t>(nkept - j)));
        std::swap(pool[static_cast<std::size_t>(pick)],
                  pool[static_cast<std::size_t>(nkept - 1 - j)]);
        centroids.push_back(
            points[static_cast<std::size_t>(pool[static_cast<std::size_t>(
                nkept - 1 - j)])]);
      }
      break;
    }
    case Seeding::kTopWeight: {
      // k heaviest kept points.
      std::vector<Index> order = kept;
      std::partial_sort(order.begin(), order.begin() + k, order.end(),
                        [&](Index a, Index b) {
                          return weights[static_cast<std::size_t>(a)] >
                                 weights[static_cast<std::size_t>(b)];
                        });
      for (Index j = 0; j < k; ++j) {
        centroids.push_back(
            points[static_cast<std::size_t>(order[static_cast<std::size_t>(j)])]);
      }
      break;
    }
    case Seeding::kWeightedKpp: {
      // First seed: heaviest point; then D²-weighted sampling.
      Index first = kept.front();
      for (const Index p : kept) {
        if (weights[static_cast<std::size_t>(p)] >
            weights[static_cast<std::size_t>(first)]) {
          first = p;
        }
      }
      centroids.push_back(points[static_cast<std::size_t>(first)]);
      std::vector<Real> d2(static_cast<std::size_t>(nkept),
                           std::numeric_limits<Real>::max());
      while (static_cast<Index>(centroids.size()) < k) {
        // Update D² against the newest centroid and build the sampling CDF.
        const grid::Vec3& newest = centroids.back();
        Real total = 0;
        for (Index i = 0; i < nkept; ++i) {
          const Index p = kept[static_cast<std::size_t>(i)];
          Real& best = d2[static_cast<std::size_t>(i)];
          best = std::min(best,
                          squared_distance(points[static_cast<std::size_t>(p)],
                                           newest, cell));
          total += weights[static_cast<std::size_t>(p)] * best;
        }
        if (total <= Real{0}) {
          // All mass already covered; fall back to an arbitrary kept point.
          centroids.push_back(points[static_cast<std::size_t>(
              kept[rng.uniform_index(static_cast<std::uint64_t>(nkept))])]);
          continue;
        }
        Real target = rng.uniform() * total;
        Index chosen = kept.back();
        for (Index i = 0; i < nkept; ++i) {
          const Index p = kept[static_cast<std::size_t>(i)];
          target -= weights[static_cast<std::size_t>(p)] *
                    d2[static_cast<std::size_t>(i)];
          if (target <= 0) {
            chosen = p;
            break;
          }
        }
        centroids.push_back(points[static_cast<std::size_t>(chosen)]);
      }
      break;
    }
  }
  return centroids;
}

}  // namespace

std::vector<Real> pair_weights(la::RealConstView psi_v,
                               la::RealConstView psi_c) {
  LRT_CHECK(psi_v.rows() == psi_c.rows(), "orbital grids differ");
  const Index nr = psi_v.rows();
  std::vector<Real> w(static_cast<std::size_t>(nr));
#pragma omp parallel for schedule(static)
  for (Index i = 0; i < nr; ++i) {
    Real sv = 0;
    const Real* rv = psi_v.row_ptr(i);
    for (Index j = 0; j < psi_v.cols(); ++j) sv += rv[j] * rv[j];
    Real sc = 0;
    const Real* rc = psi_c.row_ptr(i);
    for (Index j = 0; j < psi_c.cols(); ++j) sc += rc[j] * rc[j];
    w[static_cast<std::size_t>(i)] = sv * sc;
  }
  return w;
}

KMeansResult weighted_kmeans(const std::vector<grid::Vec3>& points,
                             const std::vector<Real>& weights, Index k,
                             const KMeansOptions& options) {
  const Index n = static_cast<Index>(points.size());
  LRT_CHECK(static_cast<Index>(weights.size()) == n,
            "points/weights size mismatch");
  LRT_CHECK(k >= 1 && k <= n, "bad cluster count " << k << " for " << n
                                                   << " points");

  KMeansResult result;
  Rng rng(options.seed);
  const grid::UnitCell* cell = options.periodic_cell;

  // Prune low-weight points (N_r -> N_r').
  Real wmax = 0;
  for (const Real w : weights) wmax = std::max(wmax, w);
  LRT_CHECK(wmax > 0, "all weights are zero");
  const Real cut = options.weight_threshold * wmax;
  result.kept_points.reserve(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    if (weights[static_cast<std::size_t>(i)] >= cut) {
      result.kept_points.push_back(i);
    }
  }
  result.num_pruned = n - static_cast<Index>(result.kept_points.size());
  LRT_CHECK(static_cast<Index>(result.kept_points.size()) >= k,
            "pruning left fewer points than clusters; lower the threshold");

  const std::vector<Index>& kept = result.kept_points;
  const Index nkept = static_cast<Index>(kept.size());
  Index start_iter = 0;
  Real restored_objective = std::numeric_limits<Real>::max();
  if (options.restore != nullptr) {
    // Resume mid-run: centroids, objective, and the Rng stream (which
    // already consumed the seeding draws, and replays any empty-cluster
    // reseeds after the restore point) come from the snapshot; pruning
    // and kept_points were recomputed above, deterministically.
    const ft::KMeansState& ck = *options.restore;
    LRT_CHECK(static_cast<Index>(ck.centroids.size()) == k,
              "kmeans restore: snapshot has " << ck.centroids.size()
                                              << " centroids, expected " << k);
    result.centroids = ck.centroids;
    start_iter = ck.iteration;
    restored_objective = ck.objective;
    if (ck.has_rng) rng.set_state(ck.rng);
  } else {
    result.centroids =
        seed_centroids(points, weights, kept, k, options.seeding, rng,
                       options.periodic_cell);
  }

  result.assignment.assign(static_cast<std::size_t>(nkept), 0);
  std::vector<Real> sum_w(static_cast<std::size_t>(k));
  std::vector<grid::Vec3> sum_wr(static_cast<std::size_t>(k));

  // Elkan-lite pruning state (docs/PERFORMANCE.md §3): lb[i] lower-bounds
  // the distance from kept point i to every center EXCEPT its assigned
  // one. It is seeded with the second-best distance of the last full scan
  // and decays each iteration by the largest movement any other center
  // made (triangle inequality; minimum-image distances qualify because
  // the torus quotient metric is a metric).
  const bool prune = options.pruned_assignment;
  std::vector<Real> lb(prune ? static_cast<std::size_t>(nkept) : 0,
                       Real{-1});
  std::vector<grid::Vec3> prev_centroids;
  // True once a completed iteration has left movement state behind
  // (prev_centroids + lb). False on the first iteration and on the first
  // iteration after a restore — the restored run full-scans every point,
  // which is bit-identical to the pruned path (docs/PERFORMANCE.md §3).
  bool have_move_state = false;
  static obs::Counter& full_counter = obs::counter("kmeans.assign.full");
  static obs::Counter& skip_counter = obs::counter("kmeans.assign.skipped");

  const obs::Span lloyd_span("kmeans.lloyd");
  Real previous_objective = restored_objective;
  for (Index iter = start_iter; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // How far each center moved in the last update step; a point's bound
    // on "nearest other center" decays by the largest movement among the
    // centers it is NOT assigned to, so track the top two movements and
    // where the largest happened.
    Real move1 = 0;
    Real move2 = 0;
    Index move_arg = -1;
    if (prune && have_move_state) {
      for (Index c = 0; c < k; ++c) {
        const Real moved = std::sqrt(squared_distance(
            prev_centroids[static_cast<std::size_t>(c)],
            result.centroids[static_cast<std::size_t>(c)], cell));
        if (moved > move1) {
          move2 = move1;
          move1 = moved;
          move_arg = c;
        } else if (moved > move2) {
          move2 = moved;
        }
      }
    }

    // Assignment step (paper: "the classification step ... can be locally
    // computed for each group of grid points").
    Real objective = 0;
    long long full_scans = 0;
    long long skips = 0;
#pragma omp parallel for schedule(static) \
    reduction(+ : objective, full_scans, skips)
    for (Index i = 0; i < nkept; ++i) {
      const Index p = kept[static_cast<std::size_t>(i)];
      const grid::Vec3& r = points[static_cast<std::size_t>(p)];
      if (prune) {
        const Index a = result.assignment[static_cast<std::size_t>(i)];
        const Real drift = (a == move_arg) ? move2 : move1;
        const Real bound = lb[static_cast<std::size_t>(i)] - drift;
        if (bound > 0) {
          const Real d2a = squared_distance(
              r, result.centroids[static_cast<std::size_t>(a)], cell);
          if (std::sqrt(d2a) * kPruneSlackUp < bound * kPruneSlackDown) {
            // Every other center is strictly farther than the assigned
            // one, so the full scan would reproduce assignment `a` and
            // the identical objective term w * d2a.
            lb[static_cast<std::size_t>(i)] = bound;
            objective += weights[static_cast<std::size_t>(p)] * d2a;
            ++skips;
            continue;
          }
        }
      }
      Real best = std::numeric_limits<Real>::max();
      Real second = std::numeric_limits<Real>::max();
      Index best_c = 0;
      for (Index c = 0; c < k; ++c) {
        const Real d = squared_distance(
            r, result.centroids[static_cast<std::size_t>(c)], cell);
        if (d < best) {
          second = best;
          best = d;
          best_c = c;
        } else if (d < second) {
          second = d;
        }
      }
      result.assignment[static_cast<std::size_t>(i)] = best_c;
      objective += weights[static_cast<std::size_t>(p)] * best;
      ++full_scans;
      if (prune) lb[static_cast<std::size_t>(i)] = std::sqrt(second);
    }
    result.objective = objective;
    full_counter.add(full_scans);
    skip_counter.add(skips);
    if (prune) {
      prev_centroids = result.centroids;
      have_move_state = true;
    }

    // Update step: weighted centroid of each cluster (paper Eq 13). In
    // periodic mode the mean is taken over minimum-image DISPLACEMENTS
    // from the current centroid (the standard linearization), so clusters
    // straddling the cell boundary do not average to the box middle.
    std::fill(sum_w.begin(), sum_w.end(), Real{0});
    for (auto& s : sum_wr) s = {0, 0, 0};
    for (Index i = 0; i < nkept; ++i) {
      const Index p = kept[static_cast<std::size_t>(i)];
      const Index c = result.assignment[static_cast<std::size_t>(i)];
      const Real w = weights[static_cast<std::size_t>(p)];
      sum_w[static_cast<std::size_t>(c)] += w;
      grid::Vec3 contrib = points[static_cast<std::size_t>(p)];
      if (cell) {
        contrib = cell->minimum_image(
            result.centroids[static_cast<std::size_t>(c)], contrib);
      }
      for (int ax = 0; ax < 3; ++ax) {
        sum_wr[static_cast<std::size_t>(c)][static_cast<std::size_t>(ax)] +=
            w * contrib[static_cast<std::size_t>(ax)];
      }
    }
    for (Index c = 0; c < k; ++c) {
      if (sum_w[static_cast<std::size_t>(c)] > 0) {
        grid::Vec3& centroid = result.centroids[static_cast<std::size_t>(c)];
        for (int ax = 0; ax < 3; ++ax) {
          const Real mean =
              sum_wr[static_cast<std::size_t>(c)][static_cast<std::size_t>(ax)] /
              sum_w[static_cast<std::size_t>(c)];
          centroid[static_cast<std::size_t>(ax)] =
              cell ? centroid[static_cast<std::size_t>(ax)] + mean : mean;
        }
        if (cell) centroid = cell->wrap(centroid);
      } else {
        // Empty cluster: reseed at a random heavy kept point.
        const Index p = kept[static_cast<std::size_t>(
            rng.uniform_index(static_cast<std::uint64_t>(nkept)))];
        result.centroids[static_cast<std::size_t>(c)] =
            points[static_cast<std::size_t>(p)];
      }
    }

    if (previous_objective < std::numeric_limits<Real>::max() &&
        previous_objective - objective <=
            options.tolerance * std::max(previous_objective, Real{1e-30})) {
      break;
    }
    previous_objective = objective;

    if (options.checkpoint_interval > 0 && options.checkpoint_sink &&
        (iter + 1) % options.checkpoint_interval == 0) {
      ft::KMeansState ck;
      ck.centroids = result.centroids;
      ck.iteration = iter + 1;
      ck.objective = previous_objective;
      ck.has_rng = true;
      ck.rng = rng.state();
      options.checkpoint_sink(ck);
    }
  }

  // Representative interpolation point per cluster: the kept point nearest
  // to the centroid; duplicates resolved by claiming points greedily.
  std::vector<char> claimed(static_cast<std::size_t>(n), 0);
  result.interpolation_points.assign(static_cast<std::size_t>(k), -1);
  for (Index c = 0; c < k; ++c) {
    Real best = std::numeric_limits<Real>::max();
    Index best_p = -1;
    for (Index i = 0; i < nkept; ++i) {
      if (result.assignment[static_cast<std::size_t>(i)] != c) continue;
      const Index p = kept[static_cast<std::size_t>(i)];
      if (claimed[static_cast<std::size_t>(p)]) continue;
      const Real d = squared_distance(
          points[static_cast<std::size_t>(p)],
          result.centroids[static_cast<std::size_t>(c)], cell);
      if (d < best) {
        best = d;
        best_p = p;
      }
    }
    if (best_p < 0) {
      // Cluster lost all points: take the globally nearest unclaimed point.
      for (Index i = 0; i < nkept; ++i) {
        const Index p = kept[static_cast<std::size_t>(i)];
        if (claimed[static_cast<std::size_t>(p)]) continue;
        const Real d = squared_distance(
            points[static_cast<std::size_t>(p)],
            result.centroids[static_cast<std::size_t>(c)], cell);
        if (d < best) {
          best = d;
          best_p = p;
        }
      }
    }
    LRT_CHECK(best_p >= 0, "could not assign a representative point");
    claimed[static_cast<std::size_t>(best_p)] = 1;
    result.interpolation_points[static_cast<std::size_t>(c)] = best_p;
  }
  std::sort(result.interpolation_points.begin(),
            result.interpolation_points.end());
  return result;
}

}  // namespace lrt::kmeans
