#include "isdf/isdf.hpp"

#include "isdf/interpolation.hpp"
#include "isdf/pairproduct.hpp"
#include "obs/obs.hpp"

namespace lrt::isdf {

IsdfResult isdf_decompose(const grid::RealSpaceGrid& grid,
                          la::RealConstView psi_v, la::RealConstView psi_c,
                          const IsdfOptions& options, obs::WallProfiler* profiler) {
  LRT_CHECK(options.nmu >= 1, "IsdfOptions::nmu must be set");
  LRT_CHECK(grid.size() == psi_v.rows(), "grid/orbital size mismatch");

  IsdfResult result;
  {
    const obs::Span span("isdf.select_points");
    Timer timer;
    switch (options.method) {
      case PointMethod::kQrcp:
        result.points =
            select_points_qrcp(psi_v, psi_c, options.nmu, options.qrcp);
        break;
      case PointMethod::kKmeans:
        result.points =
            select_points_kmeans(grid, psi_v, psi_c, options.nmu,
                                 options.kmeans)
                .points;
        break;
    }
    if (profiler) profiler->add("select_points", timer.seconds());
  }

  {
    const obs::Span span("isdf.interp_vectors");
    Timer timer;
    result.psi_v_mu = sample_rows(psi_v, result.points);
    result.psi_c_mu = sample_rows(psi_c, result.points);
    if (options.build_coefficients) {
      result.c = coefficient_matrix(psi_v, psi_c, result.points);
    }
    result.theta = interpolation_vectors(psi_v, psi_c, result.points);
    if (profiler) profiler->add("interp_vectors", timer.seconds());
  }
  return result;
}

}  // namespace lrt::isdf
