#include "isdf/pairproduct.hpp"

#include "common/error.hpp"

namespace lrt::isdf {

la::RealMatrix pair_product_matrix(la::RealConstView psi_v,
                                   la::RealConstView psi_c) {
  LRT_CHECK(psi_v.rows() == psi_c.rows(), "orbital grids differ");
  const Index nr = psi_v.rows();
  const Index nv = psi_v.cols();
  const Index nc = psi_c.cols();
  la::RealMatrix z(nr, nv * nc);
#pragma omp parallel for schedule(static)
  for (Index r = 0; r < nr; ++r) {
    const Real* v = psi_v.row_ptr(r);
    const Real* c = psi_c.row_ptr(r);
    Real* out = z.row_ptr(r);
    for (Index iv = 0; iv < nv; ++iv) {
      const Real vv = v[iv];
      for (Index ic = 0; ic < nc; ++ic) {
        out[iv * nc + ic] = vv * c[ic];
      }
    }
  }
  return z;
}

la::RealMatrix coefficient_matrix(la::RealConstView psi_v,
                                  la::RealConstView psi_c,
                                  const std::vector<Index>& points) {
  LRT_CHECK(psi_v.rows() == psi_c.rows(), "orbital grids differ");
  const Index nmu = static_cast<Index>(points.size());
  const Index nv = psi_v.cols();
  const Index nc = psi_c.cols();
  la::RealMatrix c(nmu, nv * nc);
  for (Index m = 0; m < nmu; ++m) {
    const Index r = points[static_cast<std::size_t>(m)];
    LRT_CHECK(r >= 0 && r < psi_v.rows(), "point index out of grid");
    const Real* v = psi_v.row_ptr(r);
    const Real* cc = psi_c.row_ptr(r);
    Real* out = c.row_ptr(m);
    for (Index iv = 0; iv < nv; ++iv) {
      for (Index ic = 0; ic < nc; ++ic) {
        out[iv * nc + ic] = v[iv] * cc[ic];
      }
    }
  }
  return c;
}

la::RealMatrix sample_rows(la::RealConstView psi,
                           const std::vector<Index>& points) {
  const Index nmu = static_cast<Index>(points.size());
  la::RealMatrix s(nmu, psi.cols());
  for (Index m = 0; m < nmu; ++m) {
    const Index r = points[static_cast<std::size_t>(m)];
    LRT_CHECK(r >= 0 && r < psi.rows(), "point index out of grid");
    const Real* src = psi.row_ptr(r);
    Real* dst = s.row_ptr(m);
    for (Index j = 0; j < psi.cols(); ++j) dst[j] = src[j];
  }
  return s;
}

}  // namespace lrt::isdf
