#include "isdf/kmeans_points.hpp"

#include "obs/obs.hpp"

namespace lrt::isdf {

KmeansPointResult select_points_kmeans(const grid::RealSpaceGrid& grid,
                                       la::RealConstView psi_v,
                                       la::RealConstView psi_c, Index nmu,
                                       const kmeans::KMeansOptions& options) {
  const obs::Span span("isdf.points.kmeans");
  LRT_CHECK(grid.size() == psi_v.rows(), "grid/orbital size mismatch");
  const std::vector<Real> weights = kmeans::pair_weights(psi_v, psi_c);
  const std::vector<grid::Vec3> points = grid.positions();
  kmeans::KMeansResult km = weighted_kmeans(points, weights, nmu, options);

  KmeansPointResult result;
  result.points = std::move(km.interpolation_points);
  result.kmeans_iterations = km.iterations;
  result.num_pruned = km.num_pruned;
  result.objective = km.objective;
  return result;
}

}  // namespace lrt::isdf
