// QRCP-based interpolation point selection (paper §4.1.1).
//
// Traditional ISDF: column-pivoted QR of Zᵀ ranks grid points by how much
// independent pair-product information they carry; the first Nμ pivots are
// the interpolation points. Two variants:
//  - plain: QRCP of the full (Nv·Nc) x Nr transposed pair matrix, the
//    expensive O(Ne³)-memory reference the paper's Table 3 times;
//  - randomized: the rows of Zᵀ are compressed with a Khatri-Rao
//    structured Gaussian sketch, (G1ᵀΨᵀ) ⊙ (G2ᵀΦᵀ), giving an
//    (Nμ + oversampling) x Nr matrix at O(Nr (Nv+Nc) s) cost before the
//    same pivoted QR (the "randomized sampling QRCP" the paper cites).
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace lrt::isdf {

struct QrcpPointOptions {
  bool randomized = true;
  Index oversampling = 8;  ///< extra sketch rows beyond Nμ
  unsigned seed = 99;
};

std::vector<Index> select_points_qrcp(la::RealConstView psi_v,
                                      la::RealConstView psi_c, Index nmu,
                                      const QrcpPointOptions& options = {});

}  // namespace lrt::isdf
