// K-Means-based interpolation point selection (paper §4.2) — the drop-in
// replacement for QRCP that this paper contributes.
#pragma once

#include <vector>

#include "grid/rsgrid.hpp"
#include "kmeans/kmeans.hpp"

namespace lrt::isdf {

struct KmeansPointResult {
  std::vector<Index> points;  ///< Nμ sorted grid indices
  Index kmeans_iterations = 0;
  Index num_pruned = 0;  ///< grid points removed by weight pruning
  Real objective = 0;
};

KmeansPointResult select_points_kmeans(
    const grid::RealSpaceGrid& grid, la::RealConstView psi_v,
    la::RealConstView psi_c, Index nmu,
    const kmeans::KMeansOptions& options = {});

}  // namespace lrt::isdf
