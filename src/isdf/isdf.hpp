// ISDF decomposition driver: point selection + interpolation vectors.
//
// IsdfResult carries everything downstream LR-TDDFT needs:
//  - points:      Nμ interpolation grid indices r̂_μ
//  - c:           coefficient matrix C (Nμ x Nv·Nc), the transposed block
//                 face-splitting product of the sampled orbitals
//  - psi_v_mu / psi_c_mu: sampled orbitals (Nμ x Nv / Nc) so C·x can be
//                 applied in factored form without materializing C
//  - theta:       interpolation vectors Θ (Nr x Nμ)
#pragma once

#include <vector>

#include "common/timer.hpp"
#include "isdf/kmeans_points.hpp"
#include "isdf/qrcp_points.hpp"
#include "obs/obs.hpp"

namespace lrt::isdf {

enum class PointMethod { kQrcp, kKmeans };

struct IsdfOptions {
  Index nmu = 0;  ///< required; paper rule of thumb Nμ ≈ 8-12 x Ne
  PointMethod method = PointMethod::kKmeans;
  QrcpPointOptions qrcp;
  kmeans::KMeansOptions kmeans;
  /// Skip building C explicitly (implicit drivers use the sampled factors).
  bool build_coefficients = true;
};

struct IsdfResult {
  std::vector<Index> points;
  la::RealMatrix c;         ///< empty when build_coefficients == false
  la::RealMatrix psi_v_mu;  ///< Nμ x Nv
  la::RealMatrix psi_c_mu;  ///< Nμ x Nc
  la::RealMatrix theta;     ///< Nr x Nμ

  Index nmu() const { return static_cast<Index>(points.size()); }
};

/// Full decomposition. `profiler`, when given, receives "select_points"
/// and "interp_vectors" phases (used by the Table 3 / Fig 8 benches).
IsdfResult isdf_decompose(const grid::RealSpaceGrid& grid,
                          la::RealConstView psi_v, la::RealConstView psi_c,
                          const IsdfOptions& options,
                          obs::WallProfiler* profiler = nullptr);

}  // namespace lrt::isdf
