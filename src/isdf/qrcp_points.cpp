#include "isdf/qrcp_points.hpp"

#include <algorithm>

#include "common/random.hpp"
#include "isdf/pairproduct.hpp"
#include "la/blas.hpp"
#include "la/qrcp.hpp"
#include "obs/obs.hpp"

namespace lrt::isdf {
namespace {

/// Khatri-Rao sketch: Y(s, r) = (Σ_i G1(s,i) ψ_i(r)) (Σ_j G2(s,j) φ_j(r)).
la::RealMatrix khatri_rao_sketch(la::RealConstView psi_v,
                                 la::RealConstView psi_c, Index rows,
                                 Rng& rng) {
  const Index nr = psi_v.rows();
  la::RealMatrix g1 = la::RealMatrix::random_normal(rows, psi_v.cols(), rng);
  la::RealMatrix g2 = la::RealMatrix::random_normal(rows, psi_c.cols(), rng);
  // A = Ψ G1ᵀ (nr x rows), B = Φ G2ᵀ; Y = (A ⊙ B)ᵀ elementwise.
  const la::RealMatrix a =
      la::gemm(la::Trans::kNo, la::Trans::kYes, psi_v, g1.view());
  const la::RealMatrix b =
      la::gemm(la::Trans::kNo, la::Trans::kYes, psi_c, g2.view());
  la::RealMatrix y(rows, nr);
  for (Index r = 0; r < nr; ++r) {
    const Real* ar = a.row_ptr(r);
    const Real* br = b.row_ptr(r);
    for (Index s = 0; s < rows; ++s) {
      y(s, r) = ar[s] * br[s];
    }
  }
  return y;
}

}  // namespace

std::vector<Index> select_points_qrcp(la::RealConstView psi_v,
                                      la::RealConstView psi_c, Index nmu,
                                      const QrcpPointOptions& options) {
  const obs::Span span("isdf.points.qrcp");
  LRT_CHECK(psi_v.rows() == psi_c.rows(), "orbital grids differ");
  const Index nr = psi_v.rows();
  LRT_CHECK(nmu >= 1 && nmu <= nr, "bad Nμ " << nmu);

  la::QrcpOptions qr_opts;
  qr_opts.max_rank = nmu;

  la::QrcpResult factor;
  if (options.randomized) {
    Rng rng(options.seed);
    const Index sketch_rows =
        std::min<Index>(nr, nmu + options.oversampling);
    const la::RealMatrix y =
        khatri_rao_sketch(psi_v, psi_c, sketch_rows, rng);
    factor = la::qrcp_factor(y.view(), qr_opts);
  } else {
    const la::RealMatrix z = pair_product_matrix(psi_v, psi_c);
    const la::RealMatrix zt = la::transpose<Real>(z.view());
    factor = la::qrcp_factor(zt.view(), qr_opts);
  }

  LRT_CHECK(factor.rank >= nmu,
            "QRCP truncated at rank " << factor.rank << " below Nμ " << nmu
                                      << "; pair matrix is rank deficient");
  std::vector<Index> points = la::qrcp_pivots(factor, nmu);
  std::sort(points.begin(), points.end());
  return points;
}

}  // namespace lrt::isdf
