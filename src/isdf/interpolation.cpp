#include "isdf/interpolation.hpp"

#include "isdf/pairproduct.hpp"
#include "la/blas.hpp"
#include "la/lstsq.hpp"

namespace lrt::isdf {

la::RealMatrix interpolation_vectors(la::RealConstView psi_v,
                                     la::RealConstView psi_c,
                                     const std::vector<Index>& points) {
  LRT_CHECK(psi_v.rows() == psi_c.rows(), "orbital grids differ");
  const Index nr = psi_v.rows();
  const Index nmu = static_cast<Index>(points.size());

  const la::RealMatrix psi_v_mu = sample_rows(psi_v, points);
  const la::RealMatrix psi_c_mu = sample_rows(psi_c, points);

  // Z Cᵀ via the separable Hadamard structure.
  const la::RealMatrix av =
      la::gemm(la::Trans::kNo, la::Trans::kYes, psi_v, psi_v_mu.view());
  const la::RealMatrix ac =
      la::gemm(la::Trans::kNo, la::Trans::kYes, psi_c, psi_c_mu.view());
  la::RealMatrix zct(nr, nmu);
#pragma omp parallel for schedule(static)
  for (Index r = 0; r < nr; ++r) {
    const Real* v = av.row_ptr(r);
    const Real* c = ac.row_ptr(r);
    Real* out = zct.row_ptr(r);
    for (Index m = 0; m < nmu; ++m) out[m] = v[m] * c[m];
  }

  // C Cᵀ likewise (Nμ x Nμ).
  const la::RealMatrix gv = la::gemm(la::Trans::kNo, la::Trans::kYes,
                                     psi_v_mu.view(), psi_v_mu.view());
  const la::RealMatrix gc = la::gemm(la::Trans::kNo, la::Trans::kYes,
                                     psi_c_mu.view(), psi_c_mu.view());
  la::RealMatrix cct(nmu, nmu);
  for (Index m = 0; m < nmu; ++m) {
    for (Index l = 0; l < nmu; ++l) cct(m, l) = gv(m, l) * gc(m, l);
  }

  // Θ = (Z Cᵀ)(C Cᵀ)⁻¹ — SPD system solved from the right.
  return la::solve_gram_from_right(zct.view(), cct.view());
}

la::RealMatrix interpolation_vectors_direct(la::RealConstView psi_v,
                                            la::RealConstView psi_c,
                                            const std::vector<Index>& points) {
  const la::RealMatrix z = pair_product_matrix(psi_v, psi_c);
  const la::RealMatrix c = coefficient_matrix(psi_v, psi_c, points);
  const la::RealMatrix zct =
      la::gemm(la::Trans::kNo, la::Trans::kYes, z.view(), c.view());
  const la::RealMatrix cct =
      la::gemm(la::Trans::kNo, la::Trans::kYes, c.view(), c.view());
  return la::solve_gram_from_right(zct.view(), cct.view());
}

Real isdf_relative_error(la::RealConstView psi_v, la::RealConstView psi_c,
                         const std::vector<Index>& points,
                         la::RealConstView theta) {
  const la::RealMatrix z = pair_product_matrix(psi_v, psi_c);
  const la::RealMatrix c = coefficient_matrix(psi_v, psi_c, points);
  la::RealMatrix approx =
      la::gemm(la::Trans::kNo, la::Trans::kNo, theta, c.view());
  const Real denom = la::frobenius_norm(z.view());
  for (Index i = 0; i < z.rows(); ++i) {
    const Real* zr = z.row_ptr(i);
    Real* ar = approx.row_ptr(i);
    for (Index j = 0; j < z.cols(); ++j) ar[j] -= zr[j];
  }
  const Real num = la::frobenius_norm(approx.view());
  return denom > 0 ? num / denom : Real{0};
}

}  // namespace lrt::isdf
