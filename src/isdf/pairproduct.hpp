// Orbital pair products (transposed block face-splitting product).
//
// Z = P_vc is the Nr x (Nv·Nc) matrix with Z(r, iv*Nc + ic) =
// ψ_iv(r) φ_ic(r) — the object whose numerical rank deficiency ISDF
// exploits (paper §4.1). Forming Z explicitly is the O(Nv Nc Nr) memory
// hog of the naive path; the sampled variant only evaluates the rows at
// selected interpolation points.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace lrt::isdf {

/// Column index of the (iv, ic) pair.
inline Index pair_index(Index iv, Index ic, Index nc) { return iv * nc + ic; }

/// Explicit pair-product matrix Z (Nr x Nv*Nc).
la::RealMatrix pair_product_matrix(la::RealConstView psi_v,
                                   la::RealConstView psi_c);

/// Rows of Z at the given grid points: the ISDF coefficient matrix
/// C (Nμ x Nv*Nc) with C(μ, ij) = ψ_iv(r̂_μ) φ_ic(r̂_μ).
la::RealMatrix coefficient_matrix(la::RealConstView psi_v,
                                  la::RealConstView psi_c,
                                  const std::vector<Index>& points);

/// Orbital values sampled at grid points: (Nμ x cols) row-sample of psi.
la::RealMatrix sample_rows(la::RealConstView psi,
                           const std::vector<Index>& points);

}  // namespace lrt::isdf
