// ISDF interpolation vectors (auxiliary basis functions).
//
// Given interpolation points, the vectors Θ = [ζ_1 … ζ_Nμ] solve the
// overdetermined system Z = Θ C in the least-squares (Galerkin) sense:
//   Θ = Z Cᵀ (C Cᵀ)⁻¹                                    (paper Eq 10)
// The separable structure of Z makes both products cheap without ever
// forming Z:
//   (Z Cᵀ)(r, μ)  = (Ψ Ψ_μᵀ)(r, μ) · (Φ Φ_μᵀ)(r, μ)
//   (C Cᵀ)(μ, ν) = (Ψ_μ Ψ_νᵀ)(μ, ν) · (Φ_μ Φ_νᵀ)(μ, ν)
// (elementwise products of thin GEMMs), the standard ISDF evaluation.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace lrt::isdf {

/// Fast separable evaluation of Θ (Nr x Nμ).
la::RealMatrix interpolation_vectors(la::RealConstView psi_v,
                                     la::RealConstView psi_c,
                                     const std::vector<Index>& points);

/// Reference implementation materializing Z (for validation tests).
la::RealMatrix interpolation_vectors_direct(la::RealConstView psi_v,
                                            la::RealConstView psi_c,
                                            const std::vector<Index>& points);

/// Relative Frobenius error ||Z - Θ C|| / ||Z|| of the decomposition,
/// evaluated column-exactly (forms Z; test/diagnostic use only).
Real isdf_relative_error(la::RealConstView psi_v, la::RealConstView psi_c,
                         const std::vector<Index>& points,
                         la::RealConstView theta);

}  // namespace lrt::isdf
