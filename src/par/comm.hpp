// Communicator: MPI-style ranks, tagged p2p, and collectives.
//
// A Comm names a group of ranks (a subset of the runtime's world) plus a
// context id that isolates its traffic from other communicators — the
// thread-runtime equivalent of an MPI communicator. Collectives are built
// from point-to-point messages with textbook algorithms (binomial trees,
// ring allgather, shifted pairwise alltoall), so their cost *structure*
// matches what the paper's MPI runs see.
//
// Time spent inside communication calls is accumulated in comm_seconds();
// the scaling benches subtract it from wall time to get per-rank busy time
// (see DESIGN.md, strong-scaling substitution).
#pragma once

#include <atomic>
#include <map>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/timer.hpp"
#include "obs/obs.hpp"
#include "par/check/verifier.hpp"
#include "par/runtime.hpp"

namespace lrt::par {

enum class ReduceOp { kSum, kMax, kMin };

/// Traffic accounting categories, matching the paper's cost model: bytes
/// are attributed to the *user-facing* collective that caused them (an
/// allreduce's fold/butterfly messages count as allreduce traffic, a
/// split's as allgatherv), and anything sent outside a collective is p2p.
enum class Traffic {
  kP2p = 0,
  kBcast,
  kReduce,
  kAllreduce,
  kAlltoallv,
  kAllgatherv,
  kGather,
  kScatter,
  kBarrier,
};

inline constexpr int kNumTrafficKinds = 9;

/// Short lowercase name ("p2p", "bcast", ...); static storage.
const char* to_string(Traffic kind);

class Comm {
 public:
  /// Ranks in `world_ranks` are runtime (world) ranks; `rank` is this
  /// rank's index within the group. Users normally get a Comm from
  /// par::run or Comm::split.
  Comm(Runtime* runtime, int rank, std::vector<int> world_ranks,
       long long context);

  /// Movable (split returns by value); the atomic counters force a manual
  /// move. Not copyable: two live copies would double-count traffic and
  /// desynchronize the collective sequence numbers.
  Comm(Comm&& other) noexcept;
  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;
  Comm& operator=(Comm&&) = delete;

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(world_ranks_.size()); }

  // ----- point-to-point ----------------------------------------------------

  void send_bytes(const void* data, std::size_t bytes, int dst, int tag);

  /// Receives from `src` (must be explicit; collectives never wildcard) and
  /// requires the payload to be exactly `bytes` long.
  void recv_bytes(void* data, std::size_t bytes, int src, int tag);

  template <typename T>
  void send(const T* data, Index count, int dst, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(data, sizeof(T) * static_cast<std::size_t>(count), dst, tag);
  }

  template <typename T>
  void recv(T* data, Index count, int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    recv_bytes(data, sizeof(T) * static_cast<std::size_t>(count), src, tag);
  }

  /// Simultaneous exchange with a partner (both sides call sendrecv).
  template <typename T>
  void sendrecv(const T* send_data, Index send_count, int dst,
                T* recv_data, Index recv_count, int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    // Deliver first, then block on the inbound message; mailboxes are
    // unbounded so this cannot deadlock.
    send(send_data, send_count, dst, tag);
    recv(recv_data, recv_count, src, tag);
  }

  // ----- collectives --------------------------------------------------------

  /// Dissemination barrier (O(log p) rounds).
  void barrier();

  /// Binomial-tree broadcast from `root`.
  template <typename T>
  void bcast(T* data, Index count, int root);

  /// Binomial-tree reduction onto `root` (in place on every rank's buffer;
  /// non-root buffers are clobbered with partial results).
  template <typename T>
  void reduce(T* data, Index count, ReduceOp op, int root);

  /// Single-round allreduce: a power-of-two butterfly (recursive doubling)
  /// with a fold/unfold step for non-power-of-two sizes — one tree
  /// traversal instead of the old reduce+bcast composite. Combination
  /// order is fixed (lower rank's partial is always the left operand), so
  /// the result is bitwise identical to reduce(op, 0) + bcast(0) on every
  /// rank and for every op.
  template <typename T>
  void allreduce(T* data, Index count, ReduceOp op);

  /// Every rank sends `count` elements to every rank. send/recv buffers are
  /// size*count long, laid out by destination/source rank.
  template <typename T>
  void alltoall(const T* send_buf, T* recv_buf, Index count);

  /// Variable-count alltoall. counts/displs are per-rank element counts and
  /// offsets into the respective buffers.
  template <typename T>
  void alltoallv(const T* send_buf, const std::vector<Index>& send_counts,
                 const std::vector<Index>& send_displs, T* recv_buf,
                 const std::vector<Index>& recv_counts,
                 const std::vector<Index>& recv_displs);

  /// Ring allgather: each rank contributes `count` elements; recv buffer
  /// holds size*count, ordered by rank.
  template <typename T>
  void allgather(const T* send_buf, Index count, T* recv_buf);

  template <typename T>
  void allgatherv(const T* send_buf, Index count, T* recv_buf,
                  const std::vector<Index>& counts,
                  const std::vector<Index>& displs);

  /// Root collects `count` elements from each rank (recv_buf significant at
  /// root only, size*count elements).
  template <typename T>
  void gather(const T* send_buf, Index count, T* recv_buf, int root);

  template <typename T>
  void scatter(const T* send_buf, Index count, T* recv_buf, int root);

  // ----- nonblocking collectives ---------------------------------------------

  /// Handle for an in-flight nonblocking collective. All sends (and the
  /// self-block copy) happen at issue time — mailboxes are unbounded, so
  /// delivery cannot block — and the matching receives are deferred to
  /// wait(). The recv buffer must stay alive and untouched until wait()
  /// returns. Handles are move-only; destroying an un-waited handle does
  /// NOT receive the pending messages (the verifier reports it as a
  /// never-completed handle, and the leaked messages trip the leak sweep).
  class Request {
   public:
    Request() = default;
    Request(Request&& other) noexcept { *this = std::move(other); }
    Request& operator=(Request&& other) noexcept;
    Request(const Request&) = delete;
    Request& operator=(const Request&) = delete;
    ~Request() = default;

    /// Blocks until every pending receive has landed. Idempotent.
    void wait();
    bool pending() const { return !done_; }

   private:
    friend class Comm;
    struct PendingRecv {
      void* data;
      std::size_t bytes;
      int src;
    };
    Comm* comm_ = nullptr;
    const char* name_ = nullptr;
    int tag_ = 0;
    long long seq_ = 0;
    std::vector<PendingRecv> recvs_;
    bool done_ = true;
  };

  /// Nonblocking alltoallv: posts all sends immediately and returns a
  /// handle whose wait() drains the receives, so callers can overlap
  /// packing of the next slab with the exchange of this one.
  template <typename T>
  Request i_alltoallv(const T* send_buf, const std::vector<Index>& send_counts,
                      const std::vector<Index>& send_displs, T* recv_buf,
                      const std::vector<Index>& recv_counts,
                      const std::vector<Index>& recv_displs);

  /// Nonblocking allgatherv. Uses a direct exchange (each rank sends its
  /// block to every peer) rather than the blocking ring — a ring forwards
  /// received data and so cannot run ahead of its receives. Result layout
  /// is identical to allgatherv.
  template <typename T>
  Request i_allgatherv(const T* send_buf, Index count, T* recv_buf,
                       const std::vector<Index>& counts,
                       const std::vector<Index>& displs);

  // ----- communicator management --------------------------------------------

  /// Collective: partitions ranks by `color`; within a color, ranks are
  /// ordered by (key, old rank). Every rank must call split.
  Comm split(int color, int key);

  // ----- diagnostics ---------------------------------------------------------

  /// Seconds this rank has spent inside communication calls on this Comm.
  double comm_seconds() const { return comm_seconds_; }
  void reset_comm_seconds() { comm_seconds_ = 0.0; }

  /// Bytes sent through p2p on this Comm (collectives included): the sum
  /// over all traffic kinds, kept for backward compatibility.
  long long bytes_sent() const {
    long long sum = 0;
    for (int k = 0; k < kNumTrafficKinds; ++k) {
      sum += bytes_by_kind_[k].load(std::memory_order_relaxed);
    }
    return sum;
  }

  /// Bytes attributed to one traffic kind on this Comm.
  long long bytes_sent(Traffic kind) const {
    return bytes_by_kind_[static_cast<int>(kind)].load(
        std::memory_order_relaxed);
  }

  /// User-facing calls of one traffic kind on this Comm (allreduce is a
  /// single-round primitive and counts one allreduce call; the composite
  /// split counts via its leaves as one allgatherv; nonblocking i_*
  /// collectives count at issue time under their blocking kind; p2p
  /// counts user sends).
  long long calls_made(Traffic kind) const {
    return calls_by_kind_[static_cast<int>(kind)].load(
        std::memory_order_relaxed);
  }

 private:
  int world_rank_of(int group_rank) const {
    return world_ranks_[static_cast<std::size_t>(group_rank)];
  }

  /// RAII timer accumulating into comm_seconds_, counting only the
  /// outermost communication call (collectives nest p2p).
  class CommTimerGuard {
   public:
    explicit CommTimerGuard(Comm& comm) : comm_(comm) {
      if (comm_.timer_depth_++ == 0) timer_.reset();
    }
    ~CommTimerGuard() {
      if (--comm_.timer_depth_ == 0) comm_.comm_seconds_ += timer_.seconds();
    }

   private:
    Comm& comm_;
    Timer timer_;
  };

  /// RAII prologue shared by every collective: bumps the nesting depth
  /// (so p2p tag validation knows internal from user traffic), labels
  /// watchdog dumps with the collective's name, routes byte accounting to
  /// this collective's traffic kind, emits an obs::Span, and posts the
  /// call's signature to the verifier (no-op when checking is off).
  class CollectiveGuard {
   public:
    CollectiveGuard(Comm& comm, check::CollKind kind, int root,
                    int reduce_op, std::size_t dtype_size, long long count)
        : comm_(comm),
          kind_(kind),
          prev_(comm.active_collective_),
          prev_traffic_(comm.active_traffic_),
          span_(check::to_string(kind)) {
      ++comm_.coll_depth_;
      comm_.active_collective_ = check::to_string(kind);
      comm_.enter_collective(kind);
      comm_.post_collective(kind, root, reduce_op, dtype_size, count,
                            nullptr, nullptr);
      seq_ = comm_.coll_seq_ - 1;
      entry_ns_ = comm_.collective_entered(seq_);
    }
    /// v-variant: count vectors instead of a uniform count.
    CollectiveGuard(Comm& comm, check::CollKind kind,
                    std::size_t dtype_size,
                    const std::vector<Index>* send_counts,
                    const std::vector<Index>* recv_counts)
        : comm_(comm),
          kind_(kind),
          prev_(comm.active_collective_),
          prev_traffic_(comm.active_traffic_),
          span_(check::to_string(kind)) {
      ++comm_.coll_depth_;
      comm_.active_collective_ = check::to_string(kind);
      comm_.enter_collective(kind);
      comm_.post_collective(kind, /*root=*/-1, /*reduce_op=*/-1, dtype_size,
                            /*count=*/-1, send_counts, recv_counts);
      seq_ = comm_.coll_seq_ - 1;
      entry_ns_ = comm_.collective_entered(seq_);
    }
    ~CollectiveGuard() {
      comm_.collective_exited(kind_, seq_, entry_ns_);
      comm_.active_collective_ = prev_;
      comm_.active_traffic_ = prev_traffic_;
      --comm_.coll_depth_;
    }

    CollectiveGuard(const CollectiveGuard&) = delete;
    CollectiveGuard& operator=(const CollectiveGuard&) = delete;

   private:
    Comm& comm_;
    check::CollKind kind_;
    const char* prev_;
    Traffic prev_traffic_;
    obs::Span span_;
    long long seq_ = -1;       ///< this call's collective sequence number
    long long entry_ns_ = -1;  ///< rendezvous stamp; -1 when tracing is off
  };

  /// Routes subsequent byte accounting to `kind`'s traffic category and
  /// bumps the per-kind call counters (Comm-local + obs registry).
  /// Composite kinds (allreduce, split) only re-route: their nested leaf
  /// collectives do the call counting. Defined in comm.cpp.
  void enter_collective(check::CollKind kind);

  /// Advances the per-communicator collective sequence number and, when a
  /// verifier is attached, posts this call's signature for cross-rank
  /// consistency checking. Defined in comm.cpp.
  void post_collective(check::CollKind kind, int root, int reduce_op,
                       std::size_t dtype_size, long long count,
                       const std::vector<Index>* send_counts,
                       const std::vector<Index>* recv_counts);

  /// Stamps this rank's entry into collective generation `seq` on the
  /// runtime's rendezvous clock. Returns the entry time, or -1 when
  /// tracing is disabled (the disabled-mode cost is one relaxed load).
  long long collective_entered(long long seq);

  /// Closes generation `seq`: reads the last rank's entry stamp and
  /// records `<kind>.wait` (this rank's entry until the last entry — the
  /// straggler wait, exact in the threads-as-ranks runtime) and
  /// `<kind>.xfer` (the rest) trace spans. No-op when entry_ns < 0.
  void collective_exited(check::CollKind kind, long long seq,
                         long long entry_ns);

  Runtime* runtime_;
  int rank_;
  std::vector<int> world_ranks_;
  long long context_;
  check::Verifier* verifier_ = nullptr;
  /// Fault-injection plan cached from the runtime; null (the production
  /// case) reduces every injection hook to one pointer test.
  ft::FaultPlan* fault_plan_ = nullptr;
  std::atomic<int> split_counter_{0};

  double comm_seconds_ = 0.0;
  int timer_depth_ = 0;
  /// Collective nesting depth and the innermost collective's name; both
  /// strictly rank-private (see docs/CONCURRENCY.md).
  int coll_depth_ = 0;
  const char* active_collective_ = nullptr;
  /// Collective calls issued on this communicator so far; the verifier
  /// matches call #s across ranks.
  long long coll_seq_ = 0;
  /// Traffic kind bytes are currently attributed to; rank-private like
  /// coll_depth_ (each rank accounts its own sends).
  Traffic active_traffic_ = Traffic::kP2p;
  /// Per-(dst group rank, tag) monotone send sequence for trace flow
  /// edges; rank-private, only touched when tracing is enabled. The seq
  /// travels inside the message, so the receiver needs no counterpart.
  std::map<std::pair<int, int>, long long> flow_seq_;
  /// Per-kind byte/call totals. Atomic for the same reason bytes_sent_
  /// was: diagnostics may read while rank threads send.
  std::atomic<long long> bytes_by_kind_[kNumTrafficKinds] = {};
  std::atomic<long long> calls_by_kind_[kNumTrafficKinds] = {};
};

namespace detail {

template <typename T>
void apply_reduce(ReduceOp op, T* acc, const T* in, Index count) {
  switch (op) {
    case ReduceOp::kSum:
      for (Index i = 0; i < count; ++i) acc[i] += in[i];
      break;
    case ReduceOp::kMax:
      for (Index i = 0; i < count; ++i) acc[i] = acc[i] < in[i] ? in[i] : acc[i];
      break;
    case ReduceOp::kMin:
      for (Index i = 0; i < count; ++i) acc[i] = in[i] < acc[i] ? in[i] : acc[i];
      break;
  }
}

// Internal tag bases; user tags live below kUserTagLimit.
inline constexpr int kUserTagLimit = 1 << 16;
inline constexpr int kTagBarrier = kUserTagLimit + 1;
inline constexpr int kTagBcast = kUserTagLimit + 2;
inline constexpr int kTagReduce = kUserTagLimit + 3;
inline constexpr int kTagAlltoall = kUserTagLimit + 4;
inline constexpr int kTagAllgather = kUserTagLimit + 5;
inline constexpr int kTagGather = kUserTagLimit + 6;
inline constexpr int kTagScatter = kUserTagLimit + 7;
inline constexpr int kTagSplit = kUserTagLimit + 8;
inline constexpr int kTagAllreduce = kUserTagLimit + 9;
/// Nonblocking collectives tag their traffic per issue (base + seq mod
/// window) so overlapping handles on one communicator never cross-match,
/// even when waited out of issue order. More than kNonblockingTagWindow
/// simultaneously outstanding handles would alias; FIFO matching per
/// (src, tag) keeps even that case ordered.
inline constexpr int kTagNonblockingBase = kUserTagLimit + 16;
inline constexpr int kNonblockingTagWindow = 4096;

}  // namespace detail

// ----- template implementations ----------------------------------------------

template <typename T>
void Comm::bcast(T* data, Index count, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  CommTimerGuard guard(*this);
  CollectiveGuard cguard(*this, check::CollKind::kBcast, root,
                         /*reduce_op=*/-1, sizeof(T), count);
  const int p = size();
  if (p == 1) return;
  // Re-root so the tree logic can assume root 0.
  const int vrank = (rank_ - root + p) % p;
  // Binomial tree: in round k, ranks with vrank < 2^k having the data send
  // to vrank + 2^k.
  for (int offset = 1; offset < p; offset <<= 1) {
    if (vrank < offset) {
      const int peer = vrank + offset;
      if (peer < p) {
        send(data, count, (peer + root) % p, detail::kTagBcast);
      }
    } else if (vrank < 2 * offset) {
      const int peer = vrank - offset;
      recv(data, count, (peer + root) % p, detail::kTagBcast);
    }
  }
}

template <typename T>
void Comm::reduce(T* data, Index count, ReduceOp op, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  CommTimerGuard guard(*this);
  CollectiveGuard cguard(*this, check::CollKind::kReduce, root,
                         static_cast<int>(op), sizeof(T), count);
  const int p = size();
  if (p == 1) return;
  const int vrank = (rank_ - root + p) % p;
  std::vector<T> incoming(static_cast<std::size_t>(count));
  // Reversed binomial tree: in each round the upper half sends down.
  int limit = 1;
  while (limit < p) limit <<= 1;
  for (int offset = limit >> 1; offset >= 1; offset >>= 1) {
    if (vrank < offset) {
      const int peer = vrank + offset;
      if (peer < p) {
        recv(incoming.data(), count, (peer + root) % p, detail::kTagReduce);
        detail::apply_reduce(op, data, incoming.data(), count);
      }
    } else if (vrank < 2 * offset) {
      const int peer = vrank - offset;
      send(data, count, (peer + root) % p, detail::kTagReduce);
      // This rank's contribution is merged; it stops participating.
      break;
    }
  }
}

template <typename T>
void Comm::allreduce(T* data, Index count, ReduceOp op) {
  static_assert(std::is_trivially_copyable_v<T>);
  CommTimerGuard guard(*this);
  CollectiveGuard cguard(*this, check::CollKind::kAllreduce, /*root=*/-1,
                         static_cast<int>(op), sizeof(T), count);
  const int p = size();
  if (p == 1) return;
  // Recursive doubling over the largest power of two q <= p, with a
  // fold/unfold step absorbing the p - q extra ranks. Bitwise contract:
  // after the butterfly round with offset o, rank w holds exactly the
  // partial that the reduce+bcast composite's tree produced for root
  // (w mod 2o) — every combine keeps the lower rank's partial as the left
  // (accumulator) operand, matching the reversed binomial tree's order.
  int q = 1;
  while (q * 2 <= p) q <<= 1;
  std::vector<T> incoming(static_cast<std::size_t>(count));
  // Fold: ranks beyond the power-of-two block send their contribution down.
  if (rank_ >= q) {
    send(data, count, rank_ - q, detail::kTagAllreduce);
  } else if (rank_ + q < p) {
    recv(incoming.data(), count, rank_ + q, detail::kTagAllreduce);
    detail::apply_reduce(op, data, incoming.data(), count);
  }
  if (rank_ < q) {
    // Butterfly with descending offsets: pairs exchange partials and both
    // sides keep the combination ordered lower-rank-first.
    for (int offset = q >> 1; offset >= 1; offset >>= 1) {
      const int peer = rank_ ^ offset;
      sendrecv(data, count, peer, incoming.data(), count, peer,
               detail::kTagAllreduce);
      if (rank_ < peer) {
        detail::apply_reduce(op, data, incoming.data(), count);
      } else {
        detail::apply_reduce(op, incoming.data(), data, count);
        for (Index i = 0; i < count; ++i) data[i] = incoming[i];
      }
    }
  }
  // Unfold: folded ranks get the finished result back.
  if (rank_ >= q) {
    recv(data, count, rank_ - q, detail::kTagAllreduce);
  } else if (rank_ + q < p) {
    send(data, count, rank_ + q, detail::kTagAllreduce);
  }
}

template <typename T>
void Comm::alltoall(const T* send_buf, T* recv_buf, Index count) {
  static_assert(std::is_trivially_copyable_v<T>);
  CommTimerGuard guard(*this);
  CollectiveGuard cguard(*this, check::CollKind::kAlltoall, /*root=*/-1,
                         /*reduce_op=*/-1, sizeof(T), count);
  const int p = size();
  // Shifted pairwise exchange, valid for any p: in step s, send to
  // (rank+s) mod p and receive from (rank-s) mod p.
  for (int s = 0; s < p; ++s) {
    const int dst = (rank_ + s) % p;
    const int src = (rank_ - s + p) % p;
    if (dst == rank_) {
      for (Index i = 0; i < count; ++i) {
        recv_buf[static_cast<Index>(rank_) * count + i] =
            send_buf[static_cast<Index>(rank_) * count + i];
      }
      continue;
    }
    sendrecv(send_buf + static_cast<Index>(dst) * count, count, dst,
             recv_buf + static_cast<Index>(src) * count, count, src,
             detail::kTagAlltoall);
  }
}

template <typename T>
void Comm::alltoallv(const T* send_buf, const std::vector<Index>& send_counts,
                     const std::vector<Index>& send_displs, T* recv_buf,
                     const std::vector<Index>& recv_counts,
                     const std::vector<Index>& recv_displs) {
  static_assert(std::is_trivially_copyable_v<T>);
  CommTimerGuard guard(*this);
  CollectiveGuard cguard(*this, check::CollKind::kAlltoallv, sizeof(T),
                         &send_counts, &recv_counts);
  const int p = size();
  LRT_CHECK(static_cast<int>(send_counts.size()) == p &&
                static_cast<int>(recv_counts.size()) == p,
            "alltoallv counts must have one entry per rank");
  for (int s = 0; s < p; ++s) {
    const int dst = (rank_ + s) % p;
    const int src = (rank_ - s + p) % p;
    const Index scount = send_counts[static_cast<std::size_t>(dst)];
    const Index rcount = recv_counts[static_cast<std::size_t>(src)];
    const T* sptr = send_buf + send_displs[static_cast<std::size_t>(dst)];
    T* rptr = recv_buf + recv_displs[static_cast<std::size_t>(src)];
    if (dst == rank_) {
      for (Index i = 0; i < scount; ++i) rptr[i] = sptr[i];
      continue;
    }
    sendrecv(sptr, scount, dst, rptr, rcount, src, detail::kTagAlltoall);
  }
}

template <typename T>
void Comm::allgather(const T* send_buf, Index count, T* recv_buf) {
  static_assert(std::is_trivially_copyable_v<T>);
  CommTimerGuard guard(*this);
  CollectiveGuard cguard(*this, check::CollKind::kAllgather, /*root=*/-1,
                         /*reduce_op=*/-1, sizeof(T), count);
  const int p = size();
  for (Index i = 0; i < count; ++i) {
    recv_buf[static_cast<Index>(rank_) * count + i] = send_buf[i];
  }
  // Ring: in step s, forward the block that originated at rank - s.
  for (int s = 0; s < p - 1; ++s) {
    const int to = (rank_ + 1) % p;
    const int from = (rank_ - 1 + p) % p;
    const int send_block = (rank_ - s + p) % p;
    const int recv_block = (rank_ - s - 1 + p) % p;
    sendrecv(recv_buf + static_cast<Index>(send_block) * count, count, to,
             recv_buf + static_cast<Index>(recv_block) * count, count, from,
             detail::kTagAllgather);
  }
}

template <typename T>
void Comm::allgatherv(const T* send_buf, Index count, T* recv_buf,
                      const std::vector<Index>& counts,
                      const std::vector<Index>& displs) {
  static_assert(std::is_trivially_copyable_v<T>);
  CommTimerGuard guard(*this);
  CollectiveGuard cguard(*this, check::CollKind::kAllgatherv, sizeof(T),
                         /*send_counts=*/nullptr, &counts);
  const int p = size();
  LRT_CHECK(static_cast<int>(counts.size()) == p, "allgatherv counts size");
  LRT_CHECK(counts[static_cast<std::size_t>(rank_)] == count,
            "allgatherv count mismatch on rank " << rank_);
  for (Index i = 0; i < count; ++i) {
    recv_buf[displs[static_cast<std::size_t>(rank_)] + i] = send_buf[i];
  }
  for (int s = 0; s < p - 1; ++s) {
    const int to = (rank_ + 1) % p;
    const int from = (rank_ - 1 + p) % p;
    const int send_block = (rank_ - s + p) % p;
    const int recv_block = (rank_ - s - 1 + p) % p;
    sendrecv(recv_buf + displs[static_cast<std::size_t>(send_block)],
             counts[static_cast<std::size_t>(send_block)], to,
             recv_buf + displs[static_cast<std::size_t>(recv_block)],
             counts[static_cast<std::size_t>(recv_block)], from,
             detail::kTagAllgather);
  }
}

template <typename T>
void Comm::gather(const T* send_buf, Index count, T* recv_buf, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  CommTimerGuard guard(*this);
  CollectiveGuard cguard(*this, check::CollKind::kGather, root,
                         /*reduce_op=*/-1, sizeof(T), count);
  const int p = size();
  if (rank_ == root) {
    for (Index i = 0; i < count; ++i) {
      recv_buf[static_cast<Index>(root) * count + i] = send_buf[i];
    }
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      recv(recv_buf + static_cast<Index>(r) * count, count, r,
           detail::kTagGather);
    }
  } else {
    send(send_buf, count, root, detail::kTagGather);
  }
}

inline Comm::Request& Comm::Request::operator=(Request&& other) noexcept {
  comm_ = other.comm_;
  name_ = other.name_;
  tag_ = other.tag_;
  seq_ = other.seq_;
  recvs_ = std::move(other.recvs_);
  done_ = other.done_;
  other.recvs_.clear();
  other.done_ = true;
  return *this;
}

template <typename T>
Comm::Request Comm::i_alltoallv(const T* send_buf,
                                const std::vector<Index>& send_counts,
                                const std::vector<Index>& send_displs,
                                T* recv_buf,
                                const std::vector<Index>& recv_counts,
                                const std::vector<Index>& recv_displs) {
  static_assert(std::is_trivially_copyable_v<T>);
  CommTimerGuard guard(*this);
  CollectiveGuard cguard(*this, check::CollKind::kIAlltoallv, sizeof(T),
                         &send_counts, &recv_counts);
  const int p = size();
  LRT_CHECK(static_cast<int>(send_counts.size()) == p &&
                static_cast<int>(recv_counts.size()) == p,
            "i_alltoallv counts must have one entry per rank");
  Request req;
  req.comm_ = this;
  req.name_ = "i_alltoallv";
  req.seq_ = coll_seq_ - 1;  // the seq this call's guard just consumed
  req.tag_ = detail::kTagNonblockingBase +
             static_cast<int>(req.seq_ % detail::kNonblockingTagWindow);
  req.done_ = false;
  // All sends (and the self-block copy) happen now; only receives wait.
  // Zero-count messages are still delivered so the traffic pattern (and
  // the leak sweep's bookkeeping) matches the blocking alltoallv.
  for (int s = 0; s < p; ++s) {
    const int dst = (rank_ + s) % p;
    const Index scount = send_counts[static_cast<std::size_t>(dst)];
    const T* sptr = send_buf + send_displs[static_cast<std::size_t>(dst)];
    if (dst == rank_) {
      T* rptr = recv_buf + recv_displs[static_cast<std::size_t>(rank_)];
      for (Index i = 0; i < scount; ++i) rptr[i] = sptr[i];
      continue;
    }
    send(sptr, scount, dst, req.tag_);
  }
  for (int s = 1; s < p; ++s) {
    const int src = (rank_ - s + p) % p;
    req.recvs_.push_back(Request::PendingRecv{
        recv_buf + recv_displs[static_cast<std::size_t>(src)],
        sizeof(T) *
            static_cast<std::size_t>(recv_counts[static_cast<std::size_t>(src)]),
        src});
  }
  if (verifier_ != nullptr) {
    verifier_->on_handle_issued(world_rank_of(rank_), req.name_, context_,
                                req.seq_);
  }
  return req;
}

template <typename T>
Comm::Request Comm::i_allgatherv(const T* send_buf, Index count, T* recv_buf,
                                 const std::vector<Index>& counts,
                                 const std::vector<Index>& displs) {
  static_assert(std::is_trivially_copyable_v<T>);
  CommTimerGuard guard(*this);
  CollectiveGuard cguard(*this, check::CollKind::kIAllgatherv, sizeof(T),
                         /*send_counts=*/nullptr, &counts);
  const int p = size();
  LRT_CHECK(static_cast<int>(counts.size()) == p, "i_allgatherv counts size");
  LRT_CHECK(counts[static_cast<std::size_t>(rank_)] == count,
            "i_allgatherv count mismatch on rank " << rank_);
  Request req;
  req.comm_ = this;
  req.name_ = "i_allgatherv";
  req.seq_ = coll_seq_ - 1;
  req.tag_ = detail::kTagNonblockingBase +
             static_cast<int>(req.seq_ % detail::kNonblockingTagWindow);
  req.done_ = false;
  for (Index i = 0; i < count; ++i) {
    recv_buf[displs[static_cast<std::size_t>(rank_)] + i] = send_buf[i];
  }
  // Direct exchange: own block to every peer now, peers' blocks received
  // in wait().
  for (int s = 1; s < p; ++s) {
    const int dst = (rank_ + s) % p;
    send(send_buf, count, dst, req.tag_);
  }
  for (int s = 1; s < p; ++s) {
    const int src = (rank_ - s + p) % p;
    req.recvs_.push_back(Request::PendingRecv{
        recv_buf + displs[static_cast<std::size_t>(src)],
        sizeof(T) * static_cast<std::size_t>(counts[static_cast<std::size_t>(src)]),
        src});
  }
  if (verifier_ != nullptr) {
    verifier_->on_handle_issued(world_rank_of(rank_), req.name_, context_,
                                req.seq_);
  }
  return req;
}

template <typename T>
void Comm::scatter(const T* send_buf, Index count, T* recv_buf, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  CommTimerGuard guard(*this);
  CollectiveGuard cguard(*this, check::CollKind::kScatter, root,
                         /*reduce_op=*/-1, sizeof(T), count);
  const int p = size();
  if (rank_ == root) {
    for (int r = 0; r < p; ++r) {
      if (r == root) {
        for (Index i = 0; i < count; ++i) {
          recv_buf[i] = send_buf[static_cast<Index>(root) * count + i];
        }
      } else {
        send(send_buf + static_cast<Index>(r) * count, count, r,
             detail::kTagScatter);
      }
    }
  } else {
    recv(recv_buf, count, root, detail::kTagScatter);
  }
}

}  // namespace lrt::par
