#include "par/comm.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <sstream>

#include "ft/retry.hpp"
#include "obs/counters.hpp"

namespace lrt::par {
namespace {

// Global (cross-Comm) mirrors of the per-kind traffic totals, registered
// as obs counters so BenchReport snapshots and the LRT_PROFILE exit
// report see them. References are resolved once; add() is a relaxed
// fetch_add.
struct TrafficObs {
  obs::Counter* bytes;
  obs::Counter* calls;
};

const TrafficObs& traffic_obs(Traffic kind) {
  static const std::array<TrafficObs, kNumTrafficKinds> table = [] {
    std::array<TrafficObs, kNumTrafficKinds> t{};
    for (int k = 0; k < kNumTrafficKinds; ++k) {
      const std::string base =
          std::string("comm.") + to_string(static_cast<Traffic>(k));
      t[static_cast<std::size_t>(k)].bytes = &obs::counter(base + ".bytes");
      t[static_cast<std::size_t>(k)].calls = &obs::counter(base + ".calls");
    }
    return t;
  }();
  return table[static_cast<std::size_t>(static_cast<int>(kind))];
}

// The user-facing traffic category each collective's internal messages
// bill to. The composite split bills to its leaf via nesting order (the
// inner allgather re-routes to allgatherv); nonblocking i_* calls bill to
// their blocking kind's category.
Traffic traffic_of(check::CollKind kind) {
  switch (kind) {
    case check::CollKind::kBcast:
      return Traffic::kBcast;
    case check::CollKind::kReduce:
      return Traffic::kReduce;
    case check::CollKind::kAllreduce:
      return Traffic::kAllreduce;
    case check::CollKind::kAlltoall:
    case check::CollKind::kAlltoallv:
    case check::CollKind::kIAlltoallv:
      return Traffic::kAlltoallv;
    case check::CollKind::kAllgather:
    case check::CollKind::kAllgatherv:
    case check::CollKind::kIAllgatherv:
    case check::CollKind::kSplit:
      return Traffic::kAllgatherv;
    case check::CollKind::kGather:
      return Traffic::kGather;
    case check::CollKind::kScatter:
      return Traffic::kScatter;
    case check::CollKind::kBarrier:
      return Traffic::kBarrier;
  }
  return Traffic::kP2p;
}

}  // namespace

const char* to_string(Traffic kind) {
  switch (kind) {
    case Traffic::kP2p:
      return "p2p";
    case Traffic::kBcast:
      return "bcast";
    case Traffic::kReduce:
      return "reduce";
    case Traffic::kAllreduce:
      return "allreduce";
    case Traffic::kAlltoallv:
      return "alltoallv";
    case Traffic::kAllgatherv:
      return "allgatherv";
    case Traffic::kGather:
      return "gather";
    case Traffic::kScatter:
      return "scatter";
    case Traffic::kBarrier:
      return "barrier";
  }
  return "unknown";
}

Comm::Comm(Runtime* runtime, int rank, std::vector<int> world_ranks,
           long long context)
    : runtime_(runtime),
      rank_(rank),
      world_ranks_(std::move(world_ranks)),
      context_(context) {
  LRT_CHECK(runtime_ != nullptr, "null runtime");
  LRT_CHECK(rank_ >= 0 && rank_ < size(), "rank out of range");
  verifier_ = runtime_->verifier();
  fault_plan_ = runtime_->fault_plan();
}

Comm::Comm(Comm&& other) noexcept
    : runtime_(other.runtime_),
      rank_(other.rank_),
      world_ranks_(std::move(other.world_ranks_)),
      context_(other.context_),
      verifier_(other.verifier_),
      fault_plan_(other.fault_plan_),
      split_counter_(other.split_counter_.load(std::memory_order_relaxed)),
      comm_seconds_(other.comm_seconds_),
      timer_depth_(other.timer_depth_),
      coll_depth_(other.coll_depth_),
      active_collective_(other.active_collective_),
      coll_seq_(other.coll_seq_),
      active_traffic_(other.active_traffic_),
      flow_seq_(std::move(other.flow_seq_)) {
  for (int k = 0; k < kNumTrafficKinds; ++k) {
    bytes_by_kind_[k].store(
        other.bytes_by_kind_[k].load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    calls_by_kind_[k].store(
        other.calls_by_kind_[k].load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
}

void Comm::enter_collective(check::CollKind kind) {
  // Injection site: a plan may delay this rank here or take it down
  // (ft::RankCrashError propagates through the poison-all abort path).
  // Transient failures are only injected on sends — a whole collective
  // cannot be replayed locally once its signature reaches the verifier,
  // but the p2p messages *inside* one can, so those stay fair game.
  if (fault_plan_ != nullptr) fault_plan_->on_collective(world_rank_of(rank_));
  const Traffic traffic = traffic_of(kind);
  active_traffic_ = traffic;
  // The composite split (= allgather) is counted by its nested leaf call,
  // not here. Everything else — including the single-round allreduce and
  // the nonblocking i_* issues — counts one user-facing call.
  if (kind == check::CollKind::kSplit) return;
  calls_by_kind_[static_cast<int>(traffic)].fetch_add(
      1, std::memory_order_relaxed);
  traffic_obs(traffic).calls->add(1);
}

void Comm::post_collective(check::CollKind kind, int root, int reduce_op,
                           std::size_t dtype_size, long long count,
                           const std::vector<Index>* send_counts,
                           const std::vector<Index>* recv_counts) {
  const long long seq = coll_seq_++;
  if (verifier_ == nullptr) return;
  check::CollectiveRecord record;
  record.kind = kind;
  record.root = root;
  record.reduce_op = reduce_op;
  record.dtype_size = dtype_size;
  record.count = count;
  record.comm_size = size();
  auto to_ll = [](const std::vector<Index>& v) {
    return std::vector<long long>(v.begin(), v.end());
  };
  if (send_counts != nullptr) record.send_counts = to_ll(*send_counts);
  if (recv_counts != nullptr) record.recv_counts = to_ll(*recv_counts);
  verifier_->on_collective(world_rank_of(rank_), rank_, context_, seq,
                           record);
}

long long Comm::collective_entered(long long seq) {
  if (!obs::tracing_enabled()) return -1;
  const long long now = obs::detail::now_ns();
  runtime_->collective_clock().enter(context_, seq, size(), now);
  return now;
}

void Comm::collective_exited(check::CollKind kind, long long seq,
                             long long entry_ns) {
  if (entry_ns < 0) return;
  const long long end_ns = obs::detail::now_ns();
  const long long all_ns =
      runtime_->collective_clock().last_entry_ns(context_, seq);
  // Wait = from my entry until the last rank entered; a rank that exited
  // before the stragglers arrived (bcast root) was never blocked on them,
  // so its wait is zero. Exact, not estimated: one process, one clock.
  long long wait_end = entry_ns;
  if (all_ns > entry_ns) wait_end = std::min(all_ns, end_ns);
  const std::string base = check::to_string(kind);
  if (wait_end > entry_ns) {
    obs::detail::record_span((base + ".wait").c_str(), entry_ns, wait_end);
  }
  obs::detail::record_span((base + ".xfer").c_str(), wait_end, end_ns);
}

void Comm::send_bytes(const void* data, std::size_t bytes, int dst, int tag) {
  LRT_CHECK(dst >= 0 && dst < size(), "send to bad rank " << dst);
  CommTimerGuard guard(*this);
  if (verifier_ != nullptr) {
    verifier_->on_p2p(world_rank_of(rank_), "send", dst, tag, bytes,
                      /*user_call=*/coll_depth_ == 0);
  }
  if (fault_plan_ != nullptr) {
    // Transient-vs-fatal classification of the p2p error surface: an
    // injected failure aborts only this *attempt* — nothing was billed or
    // delivered yet — and Retry re-runs it with deterministic backoff.
    // Only when the budget is exhausted does the TransientError escape as
    // fatal; a RankCrashError passes through untouched. Healed attempts
    // are invisible to byte/call accounting, so traffic totals stay exact
    // under LRT_FAULT.
    static obs::Counter& retry_attempts = obs::counter("comm.retry.attempts");
    static obs::Counter& retry_exhausted =
        obs::counter("comm.retry.exhausted");
    ft::RetryOptions retry_options;
    retry_options.max_attempts = fault_plan_->spec().max_attempts;
    retry_options.base_backoff_us = fault_plan_->spec().backoff_us;
    ft::Retry retry(retry_options,
                    ft::RetrySite{&retry_attempts, &retry_exhausted},
                    fault_plan_, world_rank_of(rank_));
    retry.run([&] { fault_plan_->on_send(world_rank_of(rank_)); });
  }
  detail::Message message;
  message.src = rank_;
  message.tag = tag;
  message.context = context_;
  message.payload.resize(bytes);
  if (bytes > 0) std::memcpy(message.payload.data(), data, bytes);
  // Flow tracing: stamp the per-(dst, tag) channel sequence and the send
  // time into the message and record the ph:"s" endpoint. The stamps
  // travel with the payload, so the matching receive closes the pair
  // without any shared counter (FIFO per key makes the match exact).
  const bool traced = obs::tracing_enabled();
  long long send_ns = 0;
  if (traced) {
    send_ns = obs::detail::now_ns();
    message.flow_seq = flow_seq_[{dst, tag}]++;
    message.flow_send_ns = send_ns;
    obs::detail::FlowRecord flow;
    flow.run = runtime_->run_id();
    flow.context = context_;
    flow.src = world_rank_of(rank_);
    flow.dst = world_rank_of(dst);
    flow.tag = tag;
    flow.seq = message.flow_seq;
    flow.send_ns = send_ns;
    flow.ts_ns = send_ns;
    flow.phase = 's';
    obs::detail::record_flow(flow);
  }
  // Bill the bytes to the enclosing collective's traffic kind, or to p2p
  // for user sends outside any collective (which also count as calls).
  const Traffic kind = coll_depth_ == 0 ? Traffic::kP2p : active_traffic_;
  bytes_by_kind_[static_cast<int>(kind)].fetch_add(
      static_cast<long long>(bytes), std::memory_order_relaxed);
  const TrafficObs& global = traffic_obs(kind);
  global.bytes->add(static_cast<long long>(bytes));
  if (kind == Traffic::kP2p) {
    calls_by_kind_[static_cast<int>(Traffic::kP2p)].fetch_add(
        1, std::memory_order_relaxed);
    global.calls->add(1);
  }
  runtime_->mailbox(world_rank_of(dst)).push(std::move(message));
  // User p2p gets a wrapper span so the flow arrow has a slice to bind
  // to (collective-internal sends bind to the collective's own span).
  if (traced && coll_depth_ == 0) {
    obs::detail::record_span("p2p", send_ns, obs::detail::now_ns());
  }
}

void Comm::recv_bytes(void* data, std::size_t bytes, int src, int tag) {
  LRT_CHECK(src >= 0 && src < size(), "recv from bad rank " << src);
  CommTimerGuard guard(*this);
  const long long recv_start_ns =
      obs::tracing_enabled() ? obs::detail::now_ns() : -1;
  detail::Message message = [&] {
    detail::Mailbox& box = runtime_->mailbox(world_rank_of(rank_));
    if (verifier_ == nullptr) return box.pop(src, tag, context_);
    verifier_->on_p2p(world_rank_of(rank_), "recv", src, tag, bytes,
                      /*user_call=*/coll_depth_ == 0);
    // Label this (possibly indefinite) wait for the deadlock watchdog.
    std::ostringstream os;
    if (active_collective_ != nullptr) os << active_collective_ << ": ";
    os << "recv(src=" << src << ", tag=" << tag << ", bytes=" << bytes
       << ") on communicator " << context_ << " as rank " << rank_;
    check::Verifier::BlockScope scope(verifier_, world_rank_of(rank_),
                                      os.str());
    return box.pop(src, tag, context_);
  }();
  LRT_CHECK(message.payload.size() == bytes,
            "message size mismatch: expected " << bytes << " bytes from rank "
                                               << src << " tag " << tag
                                               << ", got "
                                               << message.payload.size());
  if (bytes > 0) std::memcpy(data, message.payload.data(), bytes);
  // Close the flow pair whenever the *send* was traced — even if tracing
  // was toggled off meanwhile — so every exported ph:"s" has its ph:"f".
  if (message.flow_seq >= 0) {
    const long long end_ns = obs::detail::now_ns();
    obs::detail::FlowRecord flow;
    flow.run = runtime_->run_id();
    flow.context = context_;
    flow.src = world_rank_of(src);
    flow.dst = world_rank_of(rank_);
    flow.tag = tag;
    flow.seq = message.flow_seq;
    flow.send_ns = message.flow_send_ns;
    flow.recv_start_ns = recv_start_ns;
    flow.ts_ns = end_ns;
    flow.phase = 'f';
    obs::detail::record_flow(flow);
    if (recv_start_ns >= 0 && coll_depth_ == 0) {
      obs::detail::record_span("p2p", recv_start_ns, end_ns);
    }
  }
}

void Comm::Request::wait() {
  if (done_) return;
  // Mark done before any receive can throw: a failed wait must not be
  // retried against a mailbox in an unknown state, and the verifier's
  // handle sweep should not re-report a handle whose wait already failed.
  done_ = true;
  Comm& comm = *comm_;
  CommTimerGuard timer(comm);
  // Not a CollectiveGuard: the collective was posted (verifier record,
  // fault hook, call count) at issue time. This scope only marks the
  // receives as collective-internal traffic — so tag validation accepts
  // the reserved nonblocking tag — and labels watchdog dumps.
  struct WaitScope {
    Comm& c;
    const char* prev;
    WaitScope(Comm& c, const char* name) : c(c), prev(c.active_collective_) {
      ++c.coll_depth_;
      c.active_collective_ = name;
    }
    ~WaitScope() {
      c.active_collective_ = prev;
      --c.coll_depth_;
    }
  } scope(comm, name_);
  const obs::Span span("par.overlap.wait");
  for (const PendingRecv& r : recvs_) {
    comm.recv_bytes(r.data, r.bytes, r.src, tag_);
  }
  recvs_.clear();
  if (comm.verifier_ != nullptr) {
    comm.verifier_->on_handle_completed(comm.world_rank_of(comm.rank_),
                                        comm.context_, seq_);
  }
}

void Comm::barrier() {
  CommTimerGuard guard(*this);
  CollectiveGuard cguard(*this, check::CollKind::kBarrier, /*root=*/-1,
                         /*reduce_op=*/-1, /*dtype_size=*/1, /*count=*/1);
  const int p = size();
  char token = 0;
  // Dissemination barrier: log2(p) rounds of shifted exchanges.
  for (int distance = 1; distance < p; distance <<= 1) {
    const int to = (rank_ + distance) % p;
    const int from = (rank_ - distance + p) % p;
    sendrecv(&token, 1, to, &token, 1, from, detail::kTagBarrier);
  }
}

Comm Comm::split(int color, int key) {
  CommTimerGuard guard(*this);
  const int p = size();

  // Gather (color, key) from everyone.
  struct Entry {
    int color;
    int key;
    int rank;
  };
  Entry mine{color, key, rank_};
  std::vector<Entry> all(static_cast<std::size_t>(p));
  {
    CollectiveGuard cguard(*this, check::CollKind::kSplit, /*root=*/-1,
                           /*reduce_op=*/-1, sizeof(Entry), /*count=*/1);
    allgather(&mine, 1, all.data());
  }

  // My group: ranks with my color, ordered by (key, old rank).
  std::vector<Entry> group;
  for (const Entry& e : all) {
    if (e.color == color) group.push_back(e);
  }
  std::sort(group.begin(), group.end(), [](const Entry& a, const Entry& b) {
    return a.key != b.key ? a.key < b.key : a.rank < b.rank;
  });

  std::vector<int> new_world_ranks;
  int new_rank = -1;
  new_world_ranks.reserve(group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    new_world_ranks.push_back(world_rank_of(group[i].rank));
    if (group[i].rank == rank_) new_rank = static_cast<int>(i);
  }
  LRT_CHECK(new_rank >= 0, "split: calling rank missing from its own group");

  // Derive a context id all members agree on without extra traffic: every
  // rank saw the same (color -> lowest old rank) mapping, so hash it with a
  // per-parent split counter. Counter advances identically on all ranks
  // because split is collective.
  const int lowest_old_rank = group.front().rank;
  const long long counter =
      split_counter_.fetch_add(1, std::memory_order_relaxed);
  const long long child_context =
      context_ * 1315423911ll + (counter << 24) +
      (static_cast<long long>(color) << 8) + lowest_old_rank + 1;

  return Comm(runtime_, new_rank, std::move(new_world_ranks), child_context);
}

}  // namespace lrt::par
