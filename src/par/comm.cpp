#include "par/comm.hpp"

#include <algorithm>
#include <cstring>

namespace lrt::par {

Comm::Comm(Runtime* runtime, int rank, std::vector<int> world_ranks,
           long long context)
    : runtime_(runtime),
      rank_(rank),
      world_ranks_(std::move(world_ranks)),
      context_(context) {
  LRT_CHECK(runtime_ != nullptr, "null runtime");
  LRT_CHECK(rank_ >= 0 && rank_ < size(), "rank out of range");
}

void Comm::send_bytes(const void* data, std::size_t bytes, int dst, int tag) {
  LRT_CHECK(dst >= 0 && dst < size(), "send to bad rank " << dst);
  CommTimerGuard guard(*this);
  detail::Message message;
  message.src = rank_;
  message.tag = tag;
  message.context = context_;
  message.payload.resize(bytes);
  if (bytes > 0) std::memcpy(message.payload.data(), data, bytes);
  bytes_sent_ += static_cast<long long>(bytes);
  runtime_->mailbox(world_rank_of(dst)).push(std::move(message));
}

void Comm::recv_bytes(void* data, std::size_t bytes, int src, int tag) {
  LRT_CHECK(src >= 0 && src < size(), "recv from bad rank " << src);
  CommTimerGuard guard(*this);
  detail::Message message =
      runtime_->mailbox(world_rank_of(rank_)).pop(src, tag, context_);
  LRT_CHECK(message.payload.size() == bytes,
            "message size mismatch: expected " << bytes << " bytes from rank "
                                               << src << " tag " << tag
                                               << ", got "
                                               << message.payload.size());
  if (bytes > 0) std::memcpy(data, message.payload.data(), bytes);
}

void Comm::barrier() {
  CommTimerGuard guard(*this);
  const int p = size();
  char token = 0;
  // Dissemination barrier: log2(p) rounds of shifted exchanges.
  for (int distance = 1; distance < p; distance <<= 1) {
    const int to = (rank_ + distance) % p;
    const int from = (rank_ - distance + p) % p;
    sendrecv(&token, 1, to, &token, 1, from, detail::kTagBarrier);
  }
}

Comm Comm::split(int color, int key) {
  CommTimerGuard guard(*this);
  const int p = size();

  // Gather (color, key) from everyone.
  struct Entry {
    int color;
    int key;
    int rank;
  };
  Entry mine{color, key, rank_};
  std::vector<Entry> all(static_cast<std::size_t>(p));
  allgather(&mine, 1, all.data());

  // My group: ranks with my color, ordered by (key, old rank).
  std::vector<Entry> group;
  for (const Entry& e : all) {
    if (e.color == color) group.push_back(e);
  }
  std::sort(group.begin(), group.end(), [](const Entry& a, const Entry& b) {
    return a.key != b.key ? a.key < b.key : a.rank < b.rank;
  });

  std::vector<int> new_world_ranks;
  int new_rank = -1;
  new_world_ranks.reserve(group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    new_world_ranks.push_back(world_rank_of(group[i].rank));
    if (group[i].rank == rank_) new_rank = static_cast<int>(i);
  }
  LRT_CHECK(new_rank >= 0, "split: calling rank missing from its own group");

  // Derive a context id all members agree on without extra traffic: every
  // rank saw the same (color -> lowest old rank) mapping, so hash it with a
  // per-parent split counter. Counter advances identically on all ranks
  // because split is collective.
  const int lowest_old_rank = group.front().rank;
  const long long child_context =
      context_ * 1315423911ll + (static_cast<long long>(split_counter_) << 24) +
      (static_cast<long long>(color) << 8) + lowest_old_rank + 1;
  ++split_counter_;

  return Comm(runtime_, new_rank, std::move(new_world_ranks), child_context);
}

}  // namespace lrt::par
