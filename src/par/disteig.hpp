// Distributed symmetric eigensolve (ScaLAPACK SYEVD stand-in).
//
// The naive LR-TDDFT path redistributes the explicit Hamiltonian to a 2-D
// block-cyclic layout and calls SYEVD. Our stand-in reproduces the data
// movement (redistribute -> solve -> redistribute back) while the numeric
// factorization itself is gathered to rank 0 — on a single-core container
// a truly distributed tridiagonalization would be pure ceremony; the
// communication pattern and interfaces are what the scaling benches need.
#pragma once

#include "la/eig.hpp"
#include "par/distmatrix.hpp"

namespace lrt::par {

struct DistEigResult {
  std::vector<Real> values;  ///< replicated on all ranks, ascending
  DistMatrix vectors;        ///< eigenvector columns in the input layout
};

enum class DistEigMethod {
  /// Redistribute to 2-D block-cyclic, gather, factor on rank 0 (fast
  /// serially, Amdahl-limited).
  kGathered,
  /// Fully distributed one-sided Jacobi (par/jacobi_eig) — no serial
  /// bottleneck, more flops.
  kJacobi,
};

/// Solves the symmetric eigenproblem of a distributed matrix. `a` may be in
/// any layout; internally converts to 2-D block-cyclic (as the paper does
/// before SYEVD), factorizes, and returns vectors in `a`'s layout.
DistEigResult dist_syev(Comm& comm, const DistMatrix& a,
                        DistEigMethod method = DistEigMethod::kGathered);

}  // namespace lrt::par
