#include "par/layout.hpp"

namespace lrt::par {

Index numroc(Index n, Index nb, int iproc, int nprocs) {
  LRT_CHECK(n >= 0 && nb >= 1 && iproc >= 0 && iproc < nprocs, "bad numroc");
  const Index nblocks = n / nb;
  const Index base = (nblocks / nprocs) * nb;
  const Index extra_blocks = nblocks % nprocs;
  Index result = base;
  if (static_cast<Index>(iproc) < extra_blocks) {
    result += nb;
  } else if (static_cast<Index>(iproc) == extra_blocks) {
    result += n % nb;
  }
  return result;
}

Layout Layout::block_row(Index rows, Index cols, int nranks) {
  LRT_CHECK(rows >= 0 && cols >= 0 && nranks >= 1, "bad layout");
  Layout l;
  l.scheme_ = DistScheme::kBlockRow;
  l.rows_ = rows;
  l.cols_ = cols;
  l.nranks_ = nranks;
  return l;
}

Layout Layout::block_col(Index rows, Index cols, int nranks) {
  LRT_CHECK(rows >= 0 && cols >= 0 && nranks >= 1, "bad layout");
  Layout l;
  l.scheme_ = DistScheme::kBlockCol;
  l.rows_ = rows;
  l.cols_ = cols;
  l.nranks_ = nranks;
  return l;
}

Layout Layout::block_cyclic_2d(Index rows, Index cols, int prow, int pcol,
                               Index mb, Index nb) {
  LRT_CHECK(rows >= 0 && cols >= 0 && prow >= 1 && pcol >= 1 && mb >= 1 &&
                nb >= 1,
            "bad block-cyclic layout");
  Layout l;
  l.scheme_ = DistScheme::kBlockCyclic2D;
  l.rows_ = rows;
  l.cols_ = cols;
  l.nranks_ = prow * pcol;
  l.prow_ = prow;
  l.pcol_ = pcol;
  l.mb_ = mb;
  l.nb_ = nb;
  return l;
}

Index Layout::local_rows(int rank) const {
  switch (scheme_) {
    case DistScheme::kBlockRow:
      return BlockPartition(rows_, nranks_).count(rank);
    case DistScheme::kBlockCol:
      return rows_;
    case DistScheme::kBlockCyclic2D:
      return numroc(rows_, mb_, rank / pcol_, prow_);
  }
  return 0;
}

Index Layout::local_cols(int rank) const {
  switch (scheme_) {
    case DistScheme::kBlockRow:
      return cols_;
    case DistScheme::kBlockCol:
      return BlockPartition(cols_, nranks_).count(rank);
    case DistScheme::kBlockCyclic2D:
      return numroc(cols_, nb_, rank % pcol_, pcol_);
  }
  return 0;
}

Layout::Location Layout::locate(Index i, Index j) const {
  LRT_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_, "locate out of range");
  switch (scheme_) {
    case DistScheme::kBlockRow: {
      const BlockPartition part(rows_, nranks_);
      const int rank = part.owner(i);
      return {rank, i - part.offset(rank), j};
    }
    case DistScheme::kBlockCol: {
      const BlockPartition part(cols_, nranks_);
      const int rank = part.owner(j);
      return {rank, i, j - part.offset(rank)};
    }
    case DistScheme::kBlockCyclic2D: {
      const Index rb = i / mb_;
      const Index cb = j / nb_;
      const int pr = static_cast<int>(rb % prow_);
      const int pc = static_cast<int>(cb % pcol_);
      const Index li = (rb / prow_) * mb_ + i % mb_;
      const Index lj = (cb / pcol_) * nb_ + j % nb_;
      return {pr * pcol_ + pc, li, lj};
    }
  }
  return {0, 0, 0};
}

Index Layout::global_row(int rank, Index li) const {
  switch (scheme_) {
    case DistScheme::kBlockRow:
      return BlockPartition(rows_, nranks_).offset(rank) + li;
    case DistScheme::kBlockCol:
      return li;
    case DistScheme::kBlockCyclic2D: {
      const int pr = rank / pcol_;
      const Index local_block = li / mb_;
      return (local_block * prow_ + pr) * mb_ + li % mb_;
    }
  }
  return 0;
}

Index Layout::global_col(int rank, Index lj) const {
  switch (scheme_) {
    case DistScheme::kBlockRow:
      return lj;
    case DistScheme::kBlockCol:
      return BlockPartition(cols_, nranks_).offset(rank) + lj;
    case DistScheme::kBlockCyclic2D: {
      const int pc = rank % pcol_;
      const Index local_block = lj / nb_;
      return (local_block * pcol_ + pc) * nb_ + lj % nb_;
    }
  }
  return 0;
}

}  // namespace lrt::par
