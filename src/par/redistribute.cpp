#include "par/distmatrix.hpp"

namespace lrt::par {

DistMatrix redistribute(Comm& comm, const DistMatrix& src,
                        const Layout& dst_layout) {
  const Layout& sl = src.layout();
  LRT_CHECK(sl.rows() == dst_layout.rows() && sl.cols() == dst_layout.cols(),
            "redistribute: global shape mismatch");
  LRT_CHECK(sl.nranks() == dst_layout.nranks() &&
                dst_layout.nranks() == comm.size(),
            "redistribute: rank count mismatch");

  const int p = comm.size();
  const int me = comm.rank();
  DistMatrix dst(dst_layout, me);

  struct Element {
    Index flat;  ///< global row * cols + global col
    Real value;
  };
  static_assert(std::is_trivially_copyable_v<Element>);

  // Count, then pack, elements per destination rank.
  const la::RealMatrix& local = src.local();
  std::vector<Index> send_counts(static_cast<std::size_t>(p), 0);
  for (Index li = 0; li < local.rows(); ++li) {
    const Index gi = sl.global_row(me, li);
    for (Index lj = 0; lj < local.cols(); ++lj) {
      const Index gj = sl.global_col(me, lj);
      ++send_counts[static_cast<std::size_t>(dst_layout.locate(gi, gj).rank)];
    }
  }
  std::vector<Index> send_displs(static_cast<std::size_t>(p), 0);
  for (int r = 1; r < p; ++r) {
    send_displs[static_cast<std::size_t>(r)] =
        send_displs[static_cast<std::size_t>(r - 1)] +
        send_counts[static_cast<std::size_t>(r - 1)];
  }
  const Index total_send = send_displs.back() + send_counts.back();
  std::vector<Element> send_buf(static_cast<std::size_t>(total_send));
  {
    std::vector<Index> cursor = send_displs;
    for (Index li = 0; li < local.rows(); ++li) {
      const Index gi = sl.global_row(me, li);
      for (Index lj = 0; lj < local.cols(); ++lj) {
        const Index gj = sl.global_col(me, lj);
        const int target = dst_layout.locate(gi, gj).rank;
        send_buf[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(target)]++)] =
            Element{gi * sl.cols() + gj, local(li, lj)};
      }
    }
  }

  // Exchange counts, then payloads.
  std::vector<Index> recv_counts(static_cast<std::size_t>(p));
  comm.alltoall(send_counts.data(), recv_counts.data(), 1);
  std::vector<Index> recv_displs(static_cast<std::size_t>(p), 0);
  for (int r = 1; r < p; ++r) {
    recv_displs[static_cast<std::size_t>(r)] =
        recv_displs[static_cast<std::size_t>(r - 1)] +
        recv_counts[static_cast<std::size_t>(r - 1)];
  }
  const Index total_recv = recv_displs.back() + recv_counts.back();
  std::vector<Element> recv_buf(static_cast<std::size_t>(total_recv));
  comm.alltoallv(send_buf.data(), send_counts, send_displs, recv_buf.data(),
                 recv_counts, recv_displs);

  // Unpack into the destination local block.
  la::RealMatrix& out = dst.local();
  for (const Element& e : recv_buf) {
    const Index gi = e.flat / sl.cols();
    const Index gj = e.flat % sl.cols();
    const Layout::Location loc = dst_layout.locate(gi, gj);
    LRT_ASSERT(loc.rank == me, "element routed to wrong rank");
    out(loc.local_row, loc.local_col) = e.value;
  }
  return dst;
}

}  // namespace lrt::par
