#include "par/transpose.hpp"

#include <algorithm>
#include <utility>

#include "obs/obs.hpp"

namespace lrt::par {
namespace {

/// Shared core: exchanges rectangular intersections of (row part) x
/// (col part). `to_cols` chooses the direction. Templated on the scalar so
/// the complex FFT pencil exchange (fft/dist_fft3d) reuses the same path.
template <typename T>
la::Matrix<T> exchange(Comm& comm, la::ConstMatrixView<T> local, Index n_rows,
                       Index n_cols, bool to_cols) {
  const obs::Span span("par.transpose");
  const int p = comm.size();
  const int me = comm.rank();
  const BlockPartition rows(n_rows, p);
  const BlockPartition cols(n_cols, p);

  // Validate the local shape.
  if (to_cols) {
    LRT_CHECK(local.rows() == rows.count(me) && local.cols() == n_cols,
              "row_block_to_col_block: bad local shape");
  } else {
    LRT_CHECK(local.rows() == n_rows && local.cols() == cols.count(me),
              "col_block_to_row_block: bad local shape");
  }

  // Pack: for destination rank q, the intersection rectangle is
  // (my rows x q's cols) when to_cols, else (q's rows x my cols).
  std::vector<Index> send_counts(static_cast<std::size_t>(p));
  std::vector<Index> send_displs(static_cast<std::size_t>(p));
  std::vector<Index> recv_counts(static_cast<std::size_t>(p));
  std::vector<Index> recv_displs(static_cast<std::size_t>(p));
  Index send_total = 0, recv_total = 0;
  for (int q = 0; q < p; ++q) {
    const Index sc = to_cols ? rows.count(me) * cols.count(q)
                             : rows.count(q) * cols.count(me);
    const Index rc = to_cols ? rows.count(q) * cols.count(me)
                             : rows.count(me) * cols.count(q);
    send_counts[static_cast<std::size_t>(q)] = sc;
    recv_counts[static_cast<std::size_t>(q)] = rc;
    send_displs[static_cast<std::size_t>(q)] = send_total;
    recv_displs[static_cast<std::size_t>(q)] = recv_total;
    send_total += sc;
    recv_total += rc;
  }

  std::vector<T> send_buf(static_cast<std::size_t>(send_total));
  for (int q = 0; q < p; ++q) {
    T* out = send_buf.data() + send_displs[static_cast<std::size_t>(q)];
    if (to_cols) {
      const Index c0 = cols.offset(q);
      const Index nc = cols.count(q);
      for (Index i = 0; i < local.rows(); ++i) {
        const T* src = local.row_ptr(i) + c0;
        for (Index j = 0; j < nc; ++j) *out++ = src[j];
      }
    } else {
      const Index r0 = rows.offset(q);
      const Index nr = rows.count(q);
      for (Index i = 0; i < nr; ++i) {
        const T* src = local.row_ptr(r0 + i);
        for (Index j = 0; j < local.cols(); ++j) *out++ = src[j];
      }
    }
  }

  std::vector<T> recv_buf(static_cast<std::size_t>(recv_total));
  comm.alltoallv(send_buf.data(), send_counts, send_displs, recv_buf.data(),
                 recv_counts, recv_displs);

  // Unpack.
  la::Matrix<T> result;
  if (to_cols) {
    result.resize(n_rows, cols.count(me));
    for (int q = 0; q < p; ++q) {
      const T* in = recv_buf.data() + recv_displs[static_cast<std::size_t>(q)];
      const Index r0 = rows.offset(q);
      const Index nr = rows.count(q);
      for (Index i = 0; i < nr; ++i) {
        T* dst = result.row_ptr(r0 + i);
        for (Index j = 0; j < result.cols(); ++j) dst[j] = *in++;
      }
    }
  } else {
    result.resize(rows.count(me), n_cols);
    for (int q = 0; q < p; ++q) {
      const T* in = recv_buf.data() + recv_displs[static_cast<std::size_t>(q)];
      const Index c0 = cols.offset(q);
      const Index nc = cols.count(q);
      for (Index i = 0; i < result.rows(); ++i) {
        T* dst = result.row_ptr(i) + c0;
        for (Index j = 0; j < nc; ++j) dst[j] = *in++;
      }
    }
  }
  return result;
}

/// One column-range slice [c0, c0+cn) of the exchange: counts, packing and
/// unpacking are the full exchange's restricted to the columns each rank's
/// partition block intersects with the slice.
struct ChunkPlan {
  std::vector<Index> send_counts, send_displs;
  std::vector<Index> recv_counts, recv_displs;
  Index send_total = 0, recv_total = 0;
};

/// Columns of partition block q that fall inside [c0, c0+cn), as a
/// (global offset, count) pair.
std::pair<Index, Index> intersect(const BlockPartition& cols, int q, Index c0,
                                  Index cn) {
  const Index lo = std::max(cols.offset(q), c0);
  const Index hi = std::min(cols.offset(q) + cols.count(q), c0 + cn);
  return {lo, std::max(Index{0}, hi - lo)};
}

ChunkPlan plan_chunk(const BlockPartition& rows, const BlockPartition& cols,
                     int p, int me, bool to_cols, Index c0, Index cn) {
  ChunkPlan plan;
  plan.send_counts.resize(static_cast<std::size_t>(p));
  plan.send_displs.resize(static_cast<std::size_t>(p));
  plan.recv_counts.resize(static_cast<std::size_t>(p));
  plan.recv_displs.resize(static_cast<std::size_t>(p));
  const Index my_chunk_cols = intersect(cols, me, c0, cn).second;
  for (int q = 0; q < p; ++q) {
    const Index q_chunk_cols = intersect(cols, q, c0, cn).second;
    const Index sc = to_cols ? rows.count(me) * q_chunk_cols
                             : rows.count(q) * my_chunk_cols;
    const Index rc = to_cols ? rows.count(q) * my_chunk_cols
                             : rows.count(me) * q_chunk_cols;
    plan.send_counts[static_cast<std::size_t>(q)] = sc;
    plan.recv_counts[static_cast<std::size_t>(q)] = rc;
    plan.send_displs[static_cast<std::size_t>(q)] = plan.send_total;
    plan.recv_displs[static_cast<std::size_t>(q)] = plan.recv_total;
    plan.send_total += sc;
    plan.recv_total += rc;
  }
  return plan;
}

template <typename T>
void pack_chunk(la::ConstMatrixView<T> local, const BlockPartition& rows,
                const BlockPartition& cols, int p, int me, bool to_cols,
                Index c0, Index cn, const ChunkPlan& plan, T* send_buf) {
  const obs::Span span("par.overlap.pack");
  for (int q = 0; q < p; ++q) {
    T* out = send_buf + plan.send_displs[static_cast<std::size_t>(q)];
    if (to_cols) {
      const auto [qc0, qcn] = intersect(cols, q, c0, cn);
      for (Index i = 0; i < local.rows(); ++i) {
        const T* src = local.row_ptr(i) + qc0;
        for (Index j = 0; j < qcn; ++j) *out++ = src[j];
      }
    } else {
      const auto [mc0, mcn] = intersect(cols, me, c0, cn);
      const Index local_c0 = mc0 - cols.offset(me);
      const Index r0 = rows.offset(q);
      const Index nr = rows.count(q);
      for (Index i = 0; i < nr; ++i) {
        const T* src = local.row_ptr(r0 + i) + local_c0;
        for (Index j = 0; j < mcn; ++j) *out++ = src[j];
      }
    }
  }
}

template <typename T>
void unpack_chunk(la::MatrixView<T> result, const BlockPartition& rows,
                  const BlockPartition& cols, int p, int me, bool to_cols,
                  Index c0, Index cn, const ChunkPlan& plan,
                  const T* recv_buf) {
  for (int q = 0; q < p; ++q) {
    const T* in = recv_buf + plan.recv_displs[static_cast<std::size_t>(q)];
    if (to_cols) {
      const auto [mc0, mcn] = intersect(cols, me, c0, cn);
      const Index local_c0 = mc0 - cols.offset(me);
      const Index r0 = rows.offset(q);
      const Index nr = rows.count(q);
      for (Index i = 0; i < nr; ++i) {
        T* dst = result.row_ptr(r0 + i) + local_c0;
        for (Index j = 0; j < mcn; ++j) dst[j] = *in++;
      }
    } else {
      const auto [qc0, qcn] = intersect(cols, q, c0, cn);
      for (Index i = 0; i < result.rows(); ++i) {
        T* dst = result.row_ptr(i) + qc0;
        for (Index j = 0; j < qcn; ++j) dst[j] = *in++;
      }
    }
  }
}

template <typename T>
la::Matrix<T> exchange_overlapped(Comm& comm, la::ConstMatrixView<T> local,
                                  Index n_rows, Index n_cols, bool to_cols,
                                  Index chunks) {
  const obs::Span span("par.transpose");
  const int p = comm.size();
  const int me = comm.rank();
  const BlockPartition rows(n_rows, p);
  const BlockPartition cols(n_cols, p);

  if (to_cols) {
    LRT_CHECK(local.rows() == rows.count(me) && local.cols() == n_cols,
              "row_block_to_col_block: bad local shape");
  } else {
    LRT_CHECK(local.rows() == n_rows && local.cols() == cols.count(me),
              "col_block_to_row_block: bad local shape");
  }

  la::Matrix<T> result;
  if (to_cols) {
    result.resize(n_rows, cols.count(me));
  } else {
    result.resize(rows.count(me), n_cols);
  }

  const Index s_count = std::clamp(chunks, Index{1}, std::max(n_cols, Index{1}));
  const BlockPartition slices(n_cols, static_cast<int>(s_count));

  // Pipeline: pack slice s+1 while slice s's exchange is in flight. Sends
  // copy into mailboxes at issue time, so a send buffer is reusable as
  // soon as the issue returns; receive buffers stay pinned until wait(),
  // so both sides are double-buffered.
  std::vector<ChunkPlan> plans(static_cast<std::size_t>(s_count));
  std::vector<T> send_buf[2], recv_buf[2];
  Comm::Request reqs[2];

  const auto issue = [&](Index s) {
    const std::size_t b = static_cast<std::size_t>(s % 2);
    const int si = static_cast<int>(s);
    const ChunkPlan& plan =
        (plans[static_cast<std::size_t>(s)] = plan_chunk(
             rows, cols, p, me, to_cols, slices.offset(si), slices.count(si)));
    send_buf[b].resize(static_cast<std::size_t>(plan.send_total));
    recv_buf[b].resize(static_cast<std::size_t>(plan.recv_total));
    pack_chunk(local, rows, cols, p, me, to_cols, slices.offset(si),
               slices.count(si), plan, send_buf[b].data());
    reqs[b] = comm.i_alltoallv(send_buf[b].data(), plan.send_counts,
                               plan.send_displs, recv_buf[b].data(),
                               plan.recv_counts, plan.recv_displs);
  };

  issue(0);
  for (Index s = 0; s < s_count; ++s) {
    if (s + 1 < s_count) issue(s + 1);
    const std::size_t b = static_cast<std::size_t>(s % 2);
    reqs[b].wait();
    const int si = static_cast<int>(s);
    unpack_chunk(result.view(), rows, cols, p, me, to_cols, slices.offset(si),
                 slices.count(si), plans[static_cast<std::size_t>(s)],
                 recv_buf[b].data());
  }
  return result;
}

}  // namespace

la::RealMatrix row_block_to_col_block(Comm& comm,
                                      la::RealConstView local_rows,
                                      Index n_rows, Index n_cols) {
  return exchange(comm, local_rows, n_rows, n_cols, /*to_cols=*/true);
}

la::RealMatrix col_block_to_row_block(Comm& comm,
                                      la::RealConstView local_cols,
                                      Index n_rows, Index n_cols) {
  return exchange(comm, local_cols, n_rows, n_cols, /*to_cols=*/false);
}

la::RealMatrix row_block_to_col_block_overlapped(Comm& comm,
                                                 la::RealConstView local_rows,
                                                 Index n_rows, Index n_cols,
                                                 Index chunks) {
  return exchange_overlapped(comm, local_rows, n_rows, n_cols,
                             /*to_cols=*/true, chunks);
}

la::RealMatrix col_block_to_row_block_overlapped(Comm& comm,
                                                 la::RealConstView local_cols,
                                                 Index n_rows, Index n_cols,
                                                 Index chunks) {
  return exchange_overlapped(comm, local_cols, n_rows, n_cols,
                             /*to_cols=*/false, chunks);
}

la::ComplexMatrix row_block_to_col_block_overlapped(
    Comm& comm, la::ComplexConstView local_rows, Index n_rows, Index n_cols,
    Index chunks) {
  return exchange_overlapped(comm, local_rows, n_rows, n_cols,
                             /*to_cols=*/true, chunks);
}

la::ComplexMatrix col_block_to_row_block_overlapped(
    Comm& comm, la::ComplexConstView local_cols, Index n_rows, Index n_cols,
    Index chunks) {
  return exchange_overlapped(comm, local_cols, n_rows, n_cols,
                             /*to_cols=*/false, chunks);
}

}  // namespace lrt::par
