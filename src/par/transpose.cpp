#include "par/transpose.hpp"

#include "obs/obs.hpp"

namespace lrt::par {
namespace {

/// Shared core: exchanges rectangular intersections of (row part) x
/// (col part). `to_cols` chooses the direction.
la::RealMatrix exchange(Comm& comm, la::RealConstView local, Index n_rows,
                        Index n_cols, bool to_cols) {
  const obs::Span span("par.transpose");
  const int p = comm.size();
  const int me = comm.rank();
  const BlockPartition rows(n_rows, p);
  const BlockPartition cols(n_cols, p);

  // Validate the local shape.
  if (to_cols) {
    LRT_CHECK(local.rows() == rows.count(me) && local.cols() == n_cols,
              "row_block_to_col_block: bad local shape");
  } else {
    LRT_CHECK(local.rows() == n_rows && local.cols() == cols.count(me),
              "col_block_to_row_block: bad local shape");
  }

  // Pack: for destination rank q, the intersection rectangle is
  // (my rows x q's cols) when to_cols, else (q's rows x my cols).
  std::vector<Index> send_counts(static_cast<std::size_t>(p));
  std::vector<Index> send_displs(static_cast<std::size_t>(p));
  std::vector<Index> recv_counts(static_cast<std::size_t>(p));
  std::vector<Index> recv_displs(static_cast<std::size_t>(p));
  Index send_total = 0, recv_total = 0;
  for (int q = 0; q < p; ++q) {
    const Index sc = to_cols ? rows.count(me) * cols.count(q)
                             : rows.count(q) * cols.count(me);
    const Index rc = to_cols ? rows.count(q) * cols.count(me)
                             : rows.count(me) * cols.count(q);
    send_counts[static_cast<std::size_t>(q)] = sc;
    recv_counts[static_cast<std::size_t>(q)] = rc;
    send_displs[static_cast<std::size_t>(q)] = send_total;
    recv_displs[static_cast<std::size_t>(q)] = recv_total;
    send_total += sc;
    recv_total += rc;
  }

  std::vector<Real> send_buf(static_cast<std::size_t>(send_total));
  for (int q = 0; q < p; ++q) {
    Real* out = send_buf.data() + send_displs[static_cast<std::size_t>(q)];
    if (to_cols) {
      const Index c0 = cols.offset(q);
      const Index nc = cols.count(q);
      for (Index i = 0; i < local.rows(); ++i) {
        const Real* src = local.row_ptr(i) + c0;
        for (Index j = 0; j < nc; ++j) *out++ = src[j];
      }
    } else {
      const Index r0 = rows.offset(q);
      const Index nr = rows.count(q);
      for (Index i = 0; i < nr; ++i) {
        const Real* src = local.row_ptr(r0 + i);
        for (Index j = 0; j < local.cols(); ++j) *out++ = src[j];
      }
    }
  }

  std::vector<Real> recv_buf(static_cast<std::size_t>(recv_total));
  comm.alltoallv(send_buf.data(), send_counts, send_displs, recv_buf.data(),
                 recv_counts, recv_displs);

  // Unpack.
  la::RealMatrix result;
  if (to_cols) {
    result.resize(n_rows, cols.count(me));
    for (int q = 0; q < p; ++q) {
      const Real* in = recv_buf.data() + recv_displs[static_cast<std::size_t>(q)];
      const Index r0 = rows.offset(q);
      const Index nr = rows.count(q);
      for (Index i = 0; i < nr; ++i) {
        Real* dst = result.row_ptr(r0 + i);
        for (Index j = 0; j < result.cols(); ++j) dst[j] = *in++;
      }
    }
  } else {
    result.resize(rows.count(me), n_cols);
    for (int q = 0; q < p; ++q) {
      const Real* in = recv_buf.data() + recv_displs[static_cast<std::size_t>(q)];
      const Index c0 = cols.offset(q);
      const Index nc = cols.count(q);
      for (Index i = 0; i < result.rows(); ++i) {
        Real* dst = result.row_ptr(i) + c0;
        for (Index j = 0; j < nc; ++j) dst[j] = *in++;
      }
    }
  }
  return result;
}

}  // namespace

la::RealMatrix row_block_to_col_block(Comm& comm,
                                      la::RealConstView local_rows,
                                      Index n_rows, Index n_cols) {
  return exchange(comm, local_rows, n_rows, n_cols, /*to_cols=*/true);
}

la::RealMatrix col_block_to_row_block(Comm& comm,
                                      la::RealConstView local_cols,
                                      Index n_rows, Index n_cols) {
  return exchange(comm, local_cols, n_rows, n_cols, /*to_cols=*/false);
}

}  // namespace lrt::par
