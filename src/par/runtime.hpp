// Thread-backed message-passing runtime.
//
// The paper's implementation runs on MPI across Cori nodes. This container
// has no MPI, so ranks are std::threads inside one process and messages
// travel through per-rank mailboxes. The programming model is kept
// MPI-shaped on purpose: explicit ranks, tagged point-to-point messages,
// collectives built from p2p, communicator splitting — so the data
// distribution schemes of paper §5 (row block / column block / 2-D block
// cyclic, Alltoall redistribution, Reduce pipelines) run unchanged.
//
// Entry point:
//   par::run(4, [](par::Comm& comm) { ... });  // body runs on 4 ranks
//
// Failure handling: if any rank throws, the runtime poisons all mailboxes
// so blocked ranks wake up with AbortError instead of deadlocking, then
// rethrows the first exception on the caller's thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/error.hpp"
#include "ft/fault.hpp"
#include "par/check/verifier.hpp"

namespace lrt::par {

class Comm;

/// Thrown inside ranks blocked on communication when another rank failed.
class AbortError : public Error {
 public:
  AbortError() : Error("parallel runtime aborted by another rank") {}
};

namespace detail {

struct Message {
  int src = -1;
  int tag = 0;
  long long context = 0;
  std::vector<std::byte> payload;
  // Flow-tracing stamps (obs): the sender's per-(dst, tag) channel
  // sequence number and send timestamp travel with the message so the
  // receiver can close the matched ph:"s"/"f" Chrome flow pair without
  // shared counters. flow_seq < 0 means the send was not traced. The
  // verifier never reads these, so tracing cannot perturb signatures.
  long long flow_seq = -1;
  long long flow_send_ns = 0;
};

/// One mailbox per rank: a condition-variable protected queue with
/// (source, tag, context) matching, FIFO per matching key (MPI ordering
/// guarantee between a fixed sender/receiver pair).
class Mailbox {
 public:
  void push(Message message);

  /// Blocks until a message matching (src, tag, context) arrives.
  /// src = kAnySource matches any sender.
  Message pop(int src, int tag, long long context);

  void poison();

  /// Copies the messages still queued — sends that were never matched by
  /// a receive. Used by the verifier's end-of-run leak check.
  std::vector<Message> unreceived();

  static constexpr int kAnySource = -1;

 private:
  bool matches(const Message& m, int src, int tag, long long context) const;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool poisoned_ = false;
};

/// Rendezvous clock for the *.wait vs *.xfer decomposition: every rank
/// entering a collective stamps its entry time; once all expected ranks
/// have both stamped and read, the generation's record is retired. In
/// the threads-as-ranks runtime the last entry time is exact (one
/// steady clock), which is what makes the wait split computable rather
/// than estimated. Only touched when tracing is enabled.
class CollectiveClock {
 public:
  /// Rank `enter`s generation (context, seq) of an `expected`-rank
  /// collective at time `now_ns`.
  void enter(long long context, long long seq, int expected, long long now_ns);

  /// The latest entry stamp of generation (context, seq), or -1 if not
  /// every rank has entered yet. Each caller reads at most once; the
  /// record is erased after `expected` reads (every rank enters before
  /// it reads, so all-read implies all-entered).
  long long last_entry_ns(long long context, long long seq);

 private:
  struct Generation {
    int entered = 0;
    int expected = 0;
    int reads = 0;
    long long last_ns = 0;
  };
  std::mutex mutex_;
  std::map<std::pair<long long, long long>, Generation> generations_;
};

}  // namespace detail

/// Owns the mailboxes of one parallel run. Created by par::run; user code
/// only ever touches Comm.
class Runtime {
 public:
  /// `check_options.enabled` attaches a correctness verifier
  /// (par/check/verifier.hpp) that every Comm of this run reports to.
  /// `fault_spec` attaches a deterministic fault-injection plan
  /// (ft/fault.hpp); null falls back to the LRT_FAULT environment
  /// variable (an explicit spec always wins, so tests stay deterministic
  /// under an ambient CI fault environment).
  explicit Runtime(int nranks, const check::Options& check_options = {},
                   const ft::FaultSpec* fault_spec = nullptr);

  int size() const { return static_cast<int>(mailboxes_.size()); }

  detail::Mailbox& mailbox(int rank) {
    LRT_ASSERT(rank >= 0 && rank < size(), "bad rank " << rank);
    return *mailboxes_[static_cast<std::size_t>(rank)];
  }

  /// Null when checking is disabled.
  check::Verifier* verifier() { return verifier_.get(); }

  /// Null when fault injection is disabled (the common case); Comm caches
  /// this pointer, so the disabled-mode hot-path cost is one pointer test.
  ft::FaultPlan* fault_plan() { return fault_plan_.get(); }

  /// Rendezvous stamps for the *.wait/*.xfer trace decomposition; only
  /// consulted when tracing is enabled.
  detail::CollectiveClock& collective_clock() { return collective_clock_; }

  /// Process-unique id of this runtime instance. Flow-trace ids embed it
  /// so two par::run invocations writing into one trace never collide.
  long long run_id() const { return run_id_; }

  void poison_all();

 private:
  std::vector<std::unique_ptr<detail::Mailbox>> mailboxes_;
  std::unique_ptr<check::Verifier> verifier_;
  std::unique_ptr<ft::FaultPlan> fault_plan_;
  detail::CollectiveClock collective_clock_;
  long long run_id_ = 0;
};

/// Runs `body(comm)` on `nranks` rank threads and joins them. Rethrows the
/// first rank exception. nranks == 1 runs inline on the calling thread.
/// Correctness checking follows check::Options::from_env() (LRT_CHECK=1).
void run(int nranks, const std::function<void(Comm&)>& body);

/// Same, with explicit verifier options (tests force-enable checking and
/// shrink the watchdog threshold through this overload). On a verifier
/// finding — collective mismatch, reserved-tag p2p, stall, message leak —
/// throws check::VerifierError with the full per-rank report.
void run(int nranks, const std::function<void(Comm&)>& body,
         const check::Options& check_options);

/// Same, with an explicit fault-injection plan (overrides LRT_FAULT).
/// Injected transient send failures are retried inside Comm and heal
/// transparently; an exhausted retry budget rethrows ft::TransientError,
/// and an injected rank crash surfaces as ft::RankCrashError after the
/// surviving ranks are aborted — see docs/RESILIENCE.md.
void run(int nranks, const std::function<void(Comm&)>& body,
         const check::Options& check_options, const ft::FaultSpec& fault_spec);

}  // namespace lrt::par
