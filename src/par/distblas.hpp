// Distributed matrix products used by the LR-TDDFT driver.
//
// The paper's hot pattern is Vhxc = Pvcᵀ (K Pvc) with Pvc row-block
// distributed over the grid dimension: every rank multiplies its local
// slabs and the partial products are summed with an Allreduce (paper
// Algorithm 1, lines 7-8). dist_gemm_tn implements exactly that. The
// row-block x replicated product needs no communication at all.
#pragma once

#include "la/blas.hpp"
#include "par/comm.hpp"

namespace lrt::par {

/// C = Aᵀ B where A (m_loc x k) and B (m_loc x n) are row-block distributed
/// slabs of global matrices; the k x n result is summed across ranks and
/// returned replicated on every rank.
la::RealMatrix dist_gemm_tn(Comm& comm, la::RealConstView a_local,
                            la::RealConstView b_local);

/// Replicated Gram matrix AᵀA of a row-block distributed A.
la::RealMatrix dist_gram(Comm& comm, la::RealConstView a_local);

/// Local partial of [A_0 | A_1 | ...]ᵀ B written into `out` as stacked row
/// blocks, one per A_i (blocks with zero columns are skipped). B is packed
/// once and every A_i streams through it (la::gemm_many). No communication:
/// callers reduce `out` themselves, typically fused with whatever else
/// rides in the same round (see dist_lobpcg's communication-avoiding path).
void local_gram_tn_blocks(const std::vector<la::RealConstView>& a_blocks,
                          la::RealConstView b, la::RealView out);

/// C_local = A_local * B with A row-block distributed and B replicated;
/// the result inherits A's row distribution. Pure local compute.
la::RealMatrix local_gemm_nn(la::RealConstView a_local, la::RealConstView b);

/// Frobenius norm of a row-block distributed matrix.
Real dist_frobenius_norm(Comm& comm, la::RealConstView a_local);

/// Sum of a scalar across ranks.
Real dist_sum(Comm& comm, Real value);

}  // namespace lrt::par
