#include "par/runtime.hpp"

#include <atomic>
#include <exception>
#include <thread>

#include "obs/obs.hpp"
#include "par/comm.hpp"

namespace lrt::par {

namespace detail {

void Mailbox::push(Message message) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(message));
  }
  cv_.notify_all();
}

bool Mailbox::matches(const Message& m, int src, int tag,
                      long long context) const {
  if (m.context != context) return false;
  if (m.tag != tag) return false;
  return src == kAnySource || m.src == src;
}

Message Mailbox::pop(int src, int tag, long long context) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (poisoned_) throw AbortError();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (matches(*it, src, tag, context)) {
        Message m = std::move(*it);
        queue_.erase(it);
        return m;
      }
    }
    cv_.wait(lock);
  }
}

void Mailbox::poison() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    poisoned_ = true;
  }
  cv_.notify_all();
}

std::vector<Message> Mailbox::unreceived() {
  std::lock_guard<std::mutex> lock(mutex_);
  return {queue_.begin(), queue_.end()};
}

void CollectiveClock::enter(long long context, long long seq, int expected,
                            long long now_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  Generation& g = generations_[{context, seq}];
  g.expected = expected;
  g.entered += 1;
  if (now_ns > g.last_ns) g.last_ns = now_ns;
}

long long CollectiveClock::last_entry_ns(long long context, long long seq) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = generations_.find({context, seq});
  if (it == generations_.end()) return -1;
  Generation& g = it->second;
  // A rank can exit before the stragglers entered (a bcast root blocks on
  // nobody); its read fails but still counts toward retirement — each
  // rank reads exactly once, after its own enter, so reads == expected
  // implies entered == expected and the record can go.
  const long long last = g.entered >= g.expected ? g.last_ns : -1;
  if (++g.reads >= g.expected) generations_.erase(it);
  return last;
}

}  // namespace detail

Runtime::Runtime(int nranks, const check::Options& check_options,
                 const ft::FaultSpec* fault_spec) {
  LRT_CHECK(nranks >= 1, "need at least one rank, got " << nranks);
  static std::atomic<long long> run_counter{0};
  run_id_ = run_counter.fetch_add(1, std::memory_order_relaxed) + 1;
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    mailboxes_.push_back(std::make_unique<detail::Mailbox>());
  }
  if (check_options.enabled) {
    verifier_ = std::make_unique<check::Verifier>(nranks, check_options);
  }
  if (fault_spec != nullptr) {
    fault_plan_ = std::make_unique<ft::FaultPlan>(*fault_spec, nranks);
  } else {
    fault_plan_ = ft::FaultPlan::from_env(nranks);
  }
}

void Runtime::poison_all() {
  for (auto& box : mailboxes_) box->poison();
}

namespace {

void run_impl(int nranks, const std::function<void(Comm&)>& body,
              const check::Options& check_options,
              const ft::FaultSpec* fault_spec);

}  // namespace

void run(int nranks, const std::function<void(Comm&)>& body) {
  run_impl(nranks, body, check::Options::from_env(), nullptr);
}

void run(int nranks, const std::function<void(Comm&)>& body,
         const check::Options& check_options) {
  run_impl(nranks, body, check_options, nullptr);
}

void run(int nranks, const std::function<void(Comm&)>& body,
         const check::Options& check_options,
         const ft::FaultSpec& fault_spec) {
  run_impl(nranks, body, check_options, &fault_spec);
}

namespace {

void run_impl(int nranks, const std::function<void(Comm&)>& body,
              const check::Options& check_options,
              const ft::FaultSpec* fault_spec) {
  Runtime runtime(nranks, check_options, fault_spec);
  check::Verifier* verifier = runtime.verifier();
  if (verifier) verifier->start([&runtime] { runtime.poison_all(); });

  std::mutex error_mutex;
  std::exception_ptr first_error;

  if (nranks == 1) {
    try {
      // Tag the calling thread as rank 0 so obs spans recorded inside the
      // body attribute to a rank, same as the threaded path below.
      obs::ThreadRankScope rank_scope(0);
      Comm comm(&runtime, /*rank=*/0, /*world_ranks=*/{0}, /*context=*/0);
      body(comm);
    } catch (...) {
      first_error = std::current_exception();
    }
  } else {
    std::vector<int> world_ranks(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      world_ranks[static_cast<std::size_t>(r)] = r;
    }

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      threads.emplace_back([&, r]() {
        try {
          obs::ThreadRankScope rank_scope(r);
          Comm comm(&runtime, r, world_ranks, /*context=*/0);
          body(comm);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
          runtime.poison_all();
        }
      });
    }
    for (auto& t : threads) t.join();
  }

  if (verifier) {
    verifier->stop();
    // Leak detection only makes sense after a clean finish: an aborted run
    // legitimately strands in-flight messages.
    if (!first_error && !verifier->failed() &&
        verifier->options().check_leaks) {
      // Handle check first: an abandoned i_* handle also strands its
      // messages, and the handle diagnosis names the offending call.
      verifier->finish_handle_check();
      for (int r = 0; r < nranks; ++r) {
        for (const detail::Message& m : runtime.mailbox(r).unreceived()) {
          verifier->on_leftover_message(r, m.src, m.tag, m.payload.size(),
                                        m.context);
        }
      }
      verifier->finish_leak_check();
    }
    // A verifier finding outranks the secondary AbortErrors it caused in
    // the other ranks: report the diagnosis, not the symptom.
    if (verifier->failed()) throw check::VerifierError(verifier->failure());
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

}  // namespace lrt::par
