// Explicit instantiations of the collective templates for the element
// types used across the library, keeping template expansion in one TU.
#include <complex>

#include "par/comm.hpp"

namespace lrt::par {

#define LRT_INSTANTIATE_COLLECTIVES(T)                                        \
  template void Comm::bcast<T>(T*, Index, int);                               \
  template void Comm::reduce<T>(T*, Index, ReduceOp, int);                    \
  template void Comm::allreduce<T>(T*, Index, ReduceOp);                      \
  template void Comm::alltoall<T>(const T*, T*, Index);                       \
  template void Comm::alltoallv<T>(const T*, const std::vector<Index>&,       \
                                   const std::vector<Index>&, T*,             \
                                   const std::vector<Index>&,                 \
                                   const std::vector<Index>&);                \
  template void Comm::allgather<T>(const T*, Index, T*);                      \
  template void Comm::allgatherv<T>(const T*, Index, T*,                      \
                                    const std::vector<Index>&,                \
                                    const std::vector<Index>&);               \
  template void Comm::gather<T>(const T*, Index, T*, int);                    \
  template void Comm::scatter<T>(const T*, Index, T*, int)

LRT_INSTANTIATE_COLLECTIVES(double);
LRT_INSTANTIATE_COLLECTIVES(int);
LRT_INSTANTIATE_COLLECTIVES(long);
LRT_INSTANTIATE_COLLECTIVES(long long);

#undef LRT_INSTANTIATE_COLLECTIVES

}  // namespace lrt::par
