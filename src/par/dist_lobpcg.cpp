#include "par/dist_lobpcg.hpp"

#include <algorithm>
#include <cmath>

#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/eig.hpp"
#include "la/qr.hpp"
#include "obs/counters.hpp"
#include "obs/obs.hpp"
#include "par/distblas.hpp"

namespace lrt::par {
namespace {

/// Cholesky of a (possibly rank-deficient) Gram matrix: regularizes the
/// diagonal instead of a QR fallback (which would need the full matrix on
/// one rank).
la::RealMatrix gram_cholesky(const la::RealMatrix& g) {
  la::RealMatrix l;
  if (!la::try_cholesky(g.view(), l)) {
    la::RealMatrix g2 = g;
    Real trace = 0;
    for (Index i = 0; i < g2.rows(); ++i) trace += g2(i, i);
    for (Index i = 0; i < g2.rows(); ++i) {
      g2(i, i) += 1e-12 * std::max(trace, Real{1});
    }
    l = la::cholesky(g2.view());
  }
  return l;
}

/// a := a L⁻ᵀ (local rows; the triangular factor is replicated).
void apply_inverse_factor(const la::RealMatrix& l, la::RealView a_local) {
  la::RealMatrix at = la::transpose<Real>(a_local);
  la::solve_lower_triangular(l.view(), at.view());
  const la::RealMatrix back = la::transpose<Real>(at.view());
  la::copy<Real>(back.view(), a_local);
}

/// One distributed CholQR pass (one Gram allreduce).
void cholqr_pass(Comm& comm, la::RealView a_local) {
  const la::RealMatrix g = dist_gram(comm, a_local);
  apply_inverse_factor(gram_cholesky(g), a_local);
}

/// Distributed CholQR²: orthonormalizes the global columns of a
/// row-slab-distributed block in place.
void dist_cholqr2(Comm& comm, la::RealView a_local) {
  for (int pass = 0; pass < 2; ++pass) cholqr_pass(comm, a_local);
}

/// x_local := x_local - q_local (qᵀ x) with the dot products reduced.
void dist_project_out(Comm& comm, la::RealConstView q_local,
                      la::RealView x_local) {
  if (q_local.cols() == 0 || x_local.cols() == 0) return;
  const la::RealMatrix coeff = dist_gemm_tn(comm, q_local, x_local);
  la::gemm(la::Trans::kNo, la::Trans::kNo, Real{-1}, q_local, coeff.view(),
           Real{1}, x_local);
}

la::RealMatrix hcat(la::RealConstView a, la::RealConstView b,
                    la::RealConstView c) {
  const Index n = a.rows();
  const Index k = a.cols() + b.cols() + c.cols();
  la::RealMatrix s(n, k);
  la::copy<Real>(a, s.view().cols_block(0, a.cols()));
  if (b.cols() > 0) {
    la::copy<Real>(b, s.view().cols_block(a.cols(), b.cols()));
  }
  if (c.cols() > 0) {
    la::copy<Real>(c, s.view().cols_block(a.cols() + b.cols(), c.cols()));
  }
  return s;
}

void symmetrize(la::RealView a) {
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index j = i + 1; j < a.cols(); ++j) {
      const Real avg = 0.5 * (a(i, j) + a(j, i));
      a(i, j) = avg;
      a(j, i) = avg;
    }
  }
}

/// The communication-avoiding iteration (GramReduction::kPerBlock and
/// kFused). Three reduction rounds per iteration instead of legacy's seven:
///
///   round 1  [residual norms | Gram of the concatenated basis [X P W]]
///   round 2  the operator application (reduces internally)
///   round 3  [projected operator matrix S'HS | overlap S'S]
///
/// The orthogonalization consumes round 1's Gram matrix for everything the
/// legacy path bought with separate reductions: the classical Gram-Schmidt
/// coefficients against X and P, and the CholQR factor of the projected
/// residual (assembled algebraically from the same blocks). `fused` only
/// controls whether each round's blocks travel in one allreduce or one per
/// block — the summed values are elementwise identical either way, which is
/// what makes kPerBlock a bitwise reference twin for kFused.
la::LobpcgResult dist_lobpcg_ca(Comm& comm, const DistBlockOperator& apply_h,
                                const DistBlockPreconditioner& preconditioner,
                                la::RealMatrix x0_local,
                                const la::LobpcgOptions& options, bool fused) {
  const Index n_local = x0_local.rows();
  const Index k = x0_local.cols();
  LRT_CHECK(k > 0, "dist_lobpcg: empty block");

  la::LobpcgResult result;
  result.eigenvalues.assign(static_cast<std::size_t>(k), Real{0});
  result.residual_norms.assign(static_cast<std::size_t>(k), Real{0});

  la::RealMatrix x;
  la::RealMatrix hx;
  la::RealMatrix p;
  la::RealMatrix hp;
  Index start_iter = 0;

  if (options.restore != nullptr) {
    const la::LobpcgCheckpoint& ck = *options.restore;
    LRT_CHECK(ck.x.rows() == n_local && ck.x.cols() == k,
              "dist_lobpcg restore: snapshot slab is "
                  << ck.x.rows() << "x" << ck.x.cols() << ", expected "
                  << n_local << "x" << k);
    x = ck.x;
    hx = ck.hx;
    p = ck.p;
    hp = ck.hp;
    result.eigenvalues = ck.eigenvalues;
    start_iter = ck.iteration;
  } else {
    // Setup in three rounds: single-pass CholQR (the basis is used once
    // and re-orthogonalized every iteration, so the second pass legacy
    // pays for buys nothing here), the operator, and the Rayleigh quotient.
    x = std::move(x0_local);
    cholqr_pass(comm, x.view());

    hx.resize(n_local, k);
    apply_h(x.view(), hx.view());

    const la::RealMatrix xhx = dist_gemm_tn(comm, x.view(), hx.view());
    la::EigResult rr = la::syev(xhx.view());
    x = la::gemm(la::Trans::kNo, la::Trans::kNo, x.view(), rr.vectors.view());
    hx = la::gemm(la::Trans::kNo, la::Trans::kNo, hx.view(),
                  rr.vectors.view());
    result.eigenvalues = rr.values;
  }

  for (Index iter = start_iter; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    la::RealMatrix r = la::to_matrix<Real>(hx.view());
    for (Index j = 0; j < k; ++j) {
      const Real theta = result.eigenvalues[static_cast<std::size_t>(j)];
      for (Index i = 0; i < n_local; ++i) r(i, j) -= theta * x(i, j);
    }

    // Round 1: residual norms and the basis Gram matrix share one
    // reduction, so the preconditioner runs before the convergence verdict
    // is known; on the final iteration that work is simply discarded.
    const Index kp = p.cols();
    const Index m = 2 * k + kp;
    std::vector<Real> round1(static_cast<std::size_t>(k + m * m), Real{0});
    for (Index j = 0; j < k; ++j) {
      Real sum = 0;
      for (Index i = 0; i < n_local; ++i) sum += r(i, j) * r(i, j);
      round1[static_cast<std::size_t>(j)] = sum;
    }
    if (preconditioner) preconditioner(r.view(), result.eigenvalues);

    const la::RealMatrix basis = hcat(x.view(), p.view(), r.view());
    local_gram_tn_blocks({x.view(), p.view(), r.view()}, basis.view(),
                         la::RealView(round1.data() + k, m, m, m));
    if (fused) {
      comm.allreduce(round1.data(), static_cast<Index>(round1.size()),
                     ReduceOp::kSum);
    } else {
      comm.allreduce(round1.data(), k, ReduceOp::kSum);
    }

    bool all_converged = true;
    for (Index j = 0; j < k; ++j) {
      const Real norm = std::sqrt(round1[static_cast<std::size_t>(j)]);
      result.residual_norms[static_cast<std::size_t>(j)] = norm;
      const Real scale = std::max(
          Real{1}, std::abs(result.eigenvalues[static_cast<std::size_t>(j)]));
      if (norm > options.tolerance * scale) all_converged = false;
    }
    if (all_converged) {
      result.converged = true;
      break;
    }
    if (!fused) comm.allreduce(round1.data() + k, m * m, ReduceOp::kSum);

    // Orthogonalize the preconditioned residual against [X P] and
    // normalize it, all against round 1's Gram matrix. Blocks of G in
    // basis order [X P W]: X at 0, P at k, W at k+kp.
    const la::RealConstView g(round1.data() + k, m, m, m);
    const Index kq = k + kp;   // columns of the projector basis [X P]
    const Index ow = k + kp;   // offset of the W (= residual) block
    const la::RealMatrix c_x = la::to_matrix<Real>(g.block(0, ow, k, k));
    la::RealMatrix cproj(kq, k);
    la::copy<Real>(c_x.view(), cproj.view().rows_block(0, k));
    if (kp > 0) {
      // Both Gram-Schmidt stages ride the same reduction: the coefficient
      // against P is corrected for the X projection already applied,
      // C_p = P'(W - X C_x) = G_pw - G_px C_x.
      la::copy<Real>(g.block(k, ow, kp, k), cproj.view().rows_block(k, kp));
      la::gemm(la::Trans::kNo, la::Trans::kNo, Real{-1}, g.block(k, 0, kp, k),
               c_x.view(), Real{1}, cproj.view().rows_block(k, kp));
    }
    la::gemm(la::Trans::kNo, la::Trans::kNo, Real{-1},
             basis.view().cols_block(0, kq), cproj.view(), Real{1}, r.view());

    // CholQR of the projected residual without another reduction:
    // (W - QC)'(W - QC) = G_ww - G_wq C - C'G_qw + C'G_qq C with Q = [X P].
    la::RealMatrix g2 = la::to_matrix<Real>(g.block(ow, ow, k, k));
    la::gemm(la::Trans::kNo, la::Trans::kNo, Real{-1}, g.block(ow, 0, k, kq),
             cproj.view(), Real{1}, g2.view());
    la::gemm(la::Trans::kYes, la::Trans::kNo, Real{-1}, cproj.view(),
             g.block(0, ow, kq, k), Real{1}, g2.view());
    const la::RealMatrix gqq_c = la::gemm(
        la::Trans::kNo, la::Trans::kNo, g.block(0, 0, kq, kq), cproj.view());
    la::gemm(la::Trans::kYes, la::Trans::kNo, Real{1}, cproj.view(),
             gqq_c.view(), Real{1}, g2.view());
    symmetrize(g2.view());
    apply_inverse_factor(gram_cholesky(g2), r.view());

    // Round 2: the operator reduces internally.
    la::RealMatrix hr(n_local, k);
    apply_h(r.view(), hr.view());

    // Round 3: projected operator matrix and overlap in one reduction.
    const la::RealMatrix s = hcat(x.view(), r.view(), p.view());
    const la::RealMatrix hs_blocks = hcat(hx.view(), hr.view(), hp.view());
    std::vector<Real> round3(static_cast<std::size_t>(2 * m * m), Real{0});
    local_gram_tn_blocks({x.view(), r.view(), p.view()}, hs_blocks.view(),
                         la::RealView(round3.data(), m, m, m));
    local_gram_tn_blocks({x.view(), r.view(), p.view()}, s.view(),
                         la::RealView(round3.data() + m * m, m, m, m));
    if (fused) {
      comm.allreduce(round3.data(), 2 * m * m, ReduceOp::kSum);
    } else {
      comm.allreduce(round3.data(), m * m, ReduceOp::kSum);
      comm.allreduce(round3.data() + m * m, m * m, ReduceOp::kSum);
    }
    const la::RealConstView hs_c(round3.data(), m, m, m);
    const la::RealConstView gs_c(round3.data() + m * m, m, m, m);
    la::RealMatrix hs = la::to_matrix<Real>(hs_c);
    la::RealMatrix gs = la::to_matrix<Real>(gs_c);
    symmetrize(hs.view());

    la::EigResult small;
    bool used_p = kp > 0;
    try {
      small = la::sygv(hs.view(), gs.view());
    } catch (const Error&) {
      // Drop P by extracting the leading 2k x 2k of the already-reduced
      // matrices — [X W] lead the basis ordering, so unlike legacy the
      // retry costs no extra reduction round.
      hs = la::to_matrix<Real>(hs_c.block(0, 0, 2 * k, 2 * k));
      gs = la::to_matrix<Real>(gs_c.block(0, 0, 2 * k, 2 * k));
      symmetrize(hs.view());
      small = la::sygv(hs.view(), gs.view());
      used_p = false;
      p.resize(0, 0);
      hp.resize(0, 0);
    }

    la::RealMatrix c1(k, k), c2(k, k), c3(used_p ? k : 0, used_p ? k : 0);
    for (Index j = 0; j < k; ++j) {
      for (Index i = 0; i < k; ++i) c1(i, j) = small.vectors(i, j);
      for (Index i = 0; i < k; ++i) c2(i, j) = small.vectors(k + i, j);
      if (used_p) {
        for (Index i = 0; i < k; ++i) c3(i, j) = small.vectors(2 * k + i, j);
      }
    }

    // Coefficient updates in shared-B pairs: each small coefficient matrix
    // is packed once and both tall slabs stream through it.
    la::RealMatrix new_x(n_local, k), new_hx(n_local, k);
    la::RealMatrix new_p(n_local, k), new_hp(n_local, k);
    la::gemm_many(la::Trans::kNo, la::Trans::kNo, Real{1},
                  {{x.view(), new_x.view()}, {hx.view(), new_hx.view()}},
                  c1.view(), Real{0});
    la::gemm_many(la::Trans::kNo, la::Trans::kNo, Real{1},
                  {{r.view(), new_p.view()}, {hr.view(), new_hp.view()}},
                  c2.view(), Real{0});
    if (used_p) {
      la::gemm_many(la::Trans::kNo, la::Trans::kNo, Real{1},
                    {{p.view(), new_p.view()}, {hp.view(), new_hp.view()}},
                    c3.view(), Real{1});
    }
    for (Index i = 0; i < n_local; ++i) {
      for (Index j = 0; j < k; ++j) {
        new_x(i, j) += new_p(i, j);
        new_hx(i, j) += new_hp(i, j);
      }
    }
    x = std::move(new_x);
    hx = std::move(new_hx);
    p = std::move(new_p);
    hp = std::move(new_hp);

    for (Index j = 0; j < k; ++j) {
      result.eigenvalues[static_cast<std::size_t>(j)] =
          small.values[static_cast<std::size_t>(j)];
    }

    if ((iter + 1) % 20 == 0) {
      cholqr_pass(comm, x.view());
      apply_h(x.view(), hx.view());
      const la::RealMatrix xhx = dist_gemm_tn(comm, x.view(), hx.view());
      la::EigResult rr = la::syev(xhx.view());
      x = la::gemm(la::Trans::kNo, la::Trans::kNo, x.view(),
                   rr.vectors.view());
      hx = la::gemm(la::Trans::kNo, la::Trans::kNo, hx.view(),
                    rr.vectors.view());
      result.eigenvalues = rr.values;
      p.resize(0, 0);
      hp.resize(0, 0);
    }

    // Per-rank slab snapshot, taken after the drift-control block for the
    // same bit-replay reason as the serial solver (la/lobpcg.cpp).
    if (options.checkpoint_interval > 0 && options.checkpoint_sink &&
        (iter + 1) % options.checkpoint_interval == 0) {
      la::LobpcgCheckpoint ck;
      ck.x = x;
      ck.hx = hx;
      ck.p = p;
      ck.hp = hp;
      ck.eigenvalues = result.eigenvalues;
      ck.previous_values = result.eigenvalues;
      ck.residual_norms = result.residual_norms;
      ck.iteration = iter + 1;
      options.checkpoint_sink(ck);
    }
  }

  result.eigenvectors = std::move(x);
  static obs::Counter& iterations = obs::counter("par.dist_lobpcg.iterations");
  iterations.add(result.iterations);
  return result;
}

}  // namespace

la::LobpcgResult dist_lobpcg(Comm& comm, const DistBlockOperator& apply_h,
                             const DistBlockPreconditioner& preconditioner,
                             la::RealMatrix x0_local,
                             const la::LobpcgOptions& options,
                             GramReduction reduction) {
  const obs::Span span("par.dist_lobpcg");
  if (reduction != GramReduction::kLegacy) {
    return dist_lobpcg_ca(comm, apply_h, preconditioner, std::move(x0_local),
                          options, reduction == GramReduction::kFused);
  }
  const Index n_local = x0_local.rows();
  const Index k = x0_local.cols();
  LRT_CHECK(k > 0, "dist_lobpcg: empty block");

  la::LobpcgResult result;
  result.eigenvalues.assign(static_cast<std::size_t>(k), Real{0});
  result.residual_norms.assign(static_cast<std::size_t>(k), Real{0});

  la::RealMatrix x;
  la::RealMatrix hx;
  la::RealMatrix p;
  la::RealMatrix hp;
  Index start_iter = 0;

  // Resume from a per-rank slab snapshot or run the setup phase; every
  // rank must agree on which branch it takes (same options on all ranks),
  // exactly like the uniform-options contract of the collectives below.
  if (options.restore != nullptr) {
    const la::LobpcgCheckpoint& ck = *options.restore;
    LRT_CHECK(ck.x.rows() == n_local && ck.x.cols() == k,
              "dist_lobpcg restore: snapshot slab is "
                  << ck.x.rows() << "x" << ck.x.cols() << ", expected "
                  << n_local << "x" << k);
    x = ck.x;
    hx = ck.hx;
    p = ck.p;
    hp = ck.hp;
    result.eigenvalues = ck.eigenvalues;
    start_iter = ck.iteration;
  } else {
    x = std::move(x0_local);
    dist_cholqr2(comm, x.view());

    hx.resize(n_local, k);
    apply_h(x.view(), hx.view());

    const la::RealMatrix xhx = dist_gemm_tn(comm, x.view(), hx.view());
    la::EigResult rr = la::syev(xhx.view());
    x = la::gemm(la::Trans::kNo, la::Trans::kNo, x.view(), rr.vectors.view());
    hx = la::gemm(la::Trans::kNo, la::Trans::kNo, hx.view(),
                  rr.vectors.view());
    result.eigenvalues = rr.values;
  }

  for (Index iter = start_iter; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    la::RealMatrix r = la::to_matrix<Real>(hx.view());
    for (Index j = 0; j < k; ++j) {
      const Real theta = result.eigenvalues[static_cast<std::size_t>(j)];
      for (Index i = 0; i < n_local; ++i) r(i, j) -= theta * x(i, j);
    }

    // Global residual norms (column-wise) in one reduction.
    std::vector<Real> norms(static_cast<std::size_t>(k), Real{0});
    for (Index j = 0; j < k; ++j) {
      for (Index i = 0; i < n_local; ++i) {
        norms[static_cast<std::size_t>(j)] += r(i, j) * r(i, j);
      }
    }
    comm.allreduce(norms.data(), k, ReduceOp::kSum);
    bool all_converged = true;
    for (Index j = 0; j < k; ++j) {
      const Real norm = std::sqrt(norms[static_cast<std::size_t>(j)]);
      result.residual_norms[static_cast<std::size_t>(j)] = norm;
      const Real scale = std::max(
          Real{1}, std::abs(result.eigenvalues[static_cast<std::size_t>(j)]));
      if (norm > options.tolerance * scale) all_converged = false;
    }
    if (all_converged) {
      result.converged = true;
      break;
    }

    if (preconditioner) preconditioner(r.view(), result.eigenvalues);
    dist_project_out(comm, x.view(), r.view());
    if (p.cols() > 0) dist_project_out(comm, p.view(), r.view());
    dist_cholqr2(comm, r.view());

    la::RealMatrix hr(n_local, k);
    apply_h(r.view(), hr.view());

    const la::RealMatrix s = hcat(x.view(), r.view(), p.view());
    const la::RealMatrix hs_blocks = hcat(hx.view(), hr.view(), hp.view());
    la::RealMatrix hs = dist_gemm_tn(comm, s.view(), hs_blocks.view());
    la::RealMatrix gs = dist_gram(comm, s.view());
    const Index m = s.cols();
    for (Index i = 0; i < m; ++i) {
      for (Index j = i + 1; j < m; ++j) {
        const Real avg = 0.5 * (hs(i, j) + hs(j, i));
        hs(i, j) = avg;
        hs(j, i) = avg;
      }
    }

    la::EigResult small;
    bool used_p = p.cols() > 0;
    try {
      small = la::sygv(hs.view(), gs.view());
    } catch (const Error&) {
      const la::RealMatrix s2 =
          hcat(x.view(), r.view(), la::RealMatrix().view());
      const la::RealMatrix hs2 =
          hcat(hx.view(), hr.view(), la::RealMatrix().view());
      hs = dist_gemm_tn(comm, s2.view(), hs2.view());
      gs = dist_gram(comm, s2.view());
      small = la::sygv(hs.view(), gs.view());
      used_p = false;
      p.resize(0, 0);
      hp.resize(0, 0);
    }

    la::RealMatrix c1(k, k), c2(k, k), c3(used_p ? k : 0, used_p ? k : 0);
    for (Index j = 0; j < k; ++j) {
      for (Index i = 0; i < k; ++i) c1(i, j) = small.vectors(i, j);
      for (Index i = 0; i < k; ++i) c2(i, j) = small.vectors(k + i, j);
      if (used_p) {
        for (Index i = 0; i < k; ++i) c3(i, j) = small.vectors(2 * k + i, j);
      }
    }

    la::RealMatrix new_p =
        la::gemm(la::Trans::kNo, la::Trans::kNo, r.view(), c2.view());
    la::RealMatrix new_hp =
        la::gemm(la::Trans::kNo, la::Trans::kNo, hr.view(), c2.view());
    if (used_p) {
      la::gemm(la::Trans::kNo, la::Trans::kNo, Real{1}, p.view(), c3.view(),
               Real{1}, new_p.view());
      la::gemm(la::Trans::kNo, la::Trans::kNo, Real{1}, hp.view(), c3.view(),
               Real{1}, new_hp.view());
    }
    la::RealMatrix new_x =
        la::gemm(la::Trans::kNo, la::Trans::kNo, x.view(), c1.view());
    la::RealMatrix new_hx =
        la::gemm(la::Trans::kNo, la::Trans::kNo, hx.view(), c1.view());
    for (Index i = 0; i < n_local; ++i) {
      for (Index j = 0; j < k; ++j) {
        new_x(i, j) += new_p(i, j);
        new_hx(i, j) += new_hp(i, j);
      }
    }
    x = std::move(new_x);
    hx = std::move(new_hx);
    p = std::move(new_p);
    hp = std::move(new_hp);

    for (Index j = 0; j < k; ++j) {
      result.eigenvalues[static_cast<std::size_t>(j)] =
          small.values[static_cast<std::size_t>(j)];
    }

    if ((iter + 1) % 20 == 0) {
      dist_cholqr2(comm, x.view());
      apply_h(x.view(), hx.view());
      const la::RealMatrix xhx = dist_gemm_tn(comm, x.view(), hx.view());
      la::EigResult rr = la::syev(xhx.view());
      x = la::gemm(la::Trans::kNo, la::Trans::kNo, x.view(),
                   rr.vectors.view());
      hx = la::gemm(la::Trans::kNo, la::Trans::kNo, hx.view(),
                    rr.vectors.view());
      result.eigenvalues = rr.values;
      p.resize(0, 0);
      hp.resize(0, 0);
    }

    // Per-rank slab snapshot, taken after the drift-control block for the
    // same bit-replay reason as the serial solver (la/lobpcg.cpp).
    if (options.checkpoint_interval > 0 && options.checkpoint_sink &&
        (iter + 1) % options.checkpoint_interval == 0) {
      la::LobpcgCheckpoint ck;
      ck.x = x;
      ck.hx = hx;
      ck.p = p;
      ck.hp = hp;
      ck.eigenvalues = result.eigenvalues;
      ck.previous_values = result.eigenvalues;
      ck.residual_norms = result.residual_norms;
      ck.iteration = iter + 1;
      options.checkpoint_sink(ck);
    }
  }

  result.eigenvectors = std::move(x);
  static obs::Counter& iterations = obs::counter("par.dist_lobpcg.iterations");
  iterations.add(result.iterations);
  return result;
}

}  // namespace lrt::par
