#include "par/dist_lobpcg.hpp"

#include <algorithm>
#include <cmath>

#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/eig.hpp"
#include "la/qr.hpp"
#include "obs/counters.hpp"
#include "obs/obs.hpp"
#include "par/distblas.hpp"

namespace lrt::par {
namespace {

/// Distributed CholQR²: orthonormalizes the global columns of a
/// row-slab-distributed block in place.
void dist_cholqr2(Comm& comm, la::RealView a_local) {
  for (int pass = 0; pass < 2; ++pass) {
    const la::RealMatrix g = dist_gram(comm, a_local);
    la::RealMatrix l;
    if (!la::try_cholesky(g.view(), l)) {
      // Rank-deficient block: regularize instead of a QR fallback (which
      // would need the full matrix on one rank).
      la::RealMatrix g2 = g;
      Real trace = 0;
      for (Index i = 0; i < g2.rows(); ++i) trace += g2(i, i);
      for (Index i = 0; i < g2.rows(); ++i) {
        g2(i, i) += 1e-12 * std::max(trace, Real{1});
      }
      l = la::cholesky(g2.view());
    }
    // a := a L⁻ᵀ (local rows; the triangular factor is replicated).
    la::RealMatrix at = la::transpose<Real>(a_local);
    la::solve_lower_triangular(l.view(), at.view());
    const la::RealMatrix back = la::transpose<Real>(at.view());
    la::copy<Real>(back.view(), a_local);
  }
}

/// x_local := x_local - q_local (qᵀ x) with the dot products reduced.
void dist_project_out(Comm& comm, la::RealConstView q_local,
                      la::RealView x_local) {
  if (q_local.cols() == 0 || x_local.cols() == 0) return;
  const la::RealMatrix coeff = dist_gemm_tn(comm, q_local, x_local);
  la::gemm(la::Trans::kNo, la::Trans::kNo, Real{-1}, q_local, coeff.view(),
           Real{1}, x_local);
}

la::RealMatrix hcat(la::RealConstView a, la::RealConstView b,
                    la::RealConstView c) {
  const Index n = a.rows();
  const Index k = a.cols() + b.cols() + c.cols();
  la::RealMatrix s(n, k);
  la::copy<Real>(a, s.view().cols_block(0, a.cols()));
  la::copy<Real>(b, s.view().cols_block(a.cols(), b.cols()));
  if (c.cols() > 0) {
    la::copy<Real>(c, s.view().cols_block(a.cols() + b.cols(), c.cols()));
  }
  return s;
}

}  // namespace

la::LobpcgResult dist_lobpcg(Comm& comm, const DistBlockOperator& apply_h,
                             const DistBlockPreconditioner& preconditioner,
                             la::RealMatrix x0_local,
                             const la::LobpcgOptions& options) {
  const obs::Span span("par.dist_lobpcg");
  const Index n_local = x0_local.rows();
  const Index k = x0_local.cols();
  LRT_CHECK(k > 0, "dist_lobpcg: empty block");

  la::LobpcgResult result;
  result.eigenvalues.assign(static_cast<std::size_t>(k), Real{0});
  result.residual_norms.assign(static_cast<std::size_t>(k), Real{0});

  la::RealMatrix x;
  la::RealMatrix hx;
  la::RealMatrix p;
  la::RealMatrix hp;
  Index start_iter = 0;

  // Resume from a per-rank slab snapshot or run the setup phase; every
  // rank must agree on which branch it takes (same options on all ranks),
  // exactly like the uniform-options contract of the collectives below.
  if (options.restore != nullptr) {
    const la::LobpcgCheckpoint& ck = *options.restore;
    LRT_CHECK(ck.x.rows() == n_local && ck.x.cols() == k,
              "dist_lobpcg restore: snapshot slab is "
                  << ck.x.rows() << "x" << ck.x.cols() << ", expected "
                  << n_local << "x" << k);
    x = ck.x;
    hx = ck.hx;
    p = ck.p;
    hp = ck.hp;
    result.eigenvalues = ck.eigenvalues;
    start_iter = ck.iteration;
  } else {
    x = std::move(x0_local);
    dist_cholqr2(comm, x.view());

    hx.resize(n_local, k);
    apply_h(x.view(), hx.view());

    const la::RealMatrix xhx = dist_gemm_tn(comm, x.view(), hx.view());
    la::EigResult rr = la::syev(xhx.view());
    x = la::gemm(la::Trans::kNo, la::Trans::kNo, x.view(), rr.vectors.view());
    hx = la::gemm(la::Trans::kNo, la::Trans::kNo, hx.view(),
                  rr.vectors.view());
    result.eigenvalues = rr.values;
  }

  for (Index iter = start_iter; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    la::RealMatrix r = la::to_matrix<Real>(hx.view());
    for (Index j = 0; j < k; ++j) {
      const Real theta = result.eigenvalues[static_cast<std::size_t>(j)];
      for (Index i = 0; i < n_local; ++i) r(i, j) -= theta * x(i, j);
    }

    // Global residual norms (column-wise) in one reduction.
    std::vector<Real> norms(static_cast<std::size_t>(k), Real{0});
    for (Index j = 0; j < k; ++j) {
      for (Index i = 0; i < n_local; ++i) {
        norms[static_cast<std::size_t>(j)] += r(i, j) * r(i, j);
      }
    }
    comm.allreduce(norms.data(), k, ReduceOp::kSum);
    bool all_converged = true;
    for (Index j = 0; j < k; ++j) {
      const Real norm = std::sqrt(norms[static_cast<std::size_t>(j)]);
      result.residual_norms[static_cast<std::size_t>(j)] = norm;
      const Real scale = std::max(
          Real{1}, std::abs(result.eigenvalues[static_cast<std::size_t>(j)]));
      if (norm > options.tolerance * scale) all_converged = false;
    }
    if (all_converged) {
      result.converged = true;
      break;
    }

    if (preconditioner) preconditioner(r.view(), result.eigenvalues);
    dist_project_out(comm, x.view(), r.view());
    if (p.cols() > 0) dist_project_out(comm, p.view(), r.view());
    dist_cholqr2(comm, r.view());

    la::RealMatrix hr(n_local, k);
    apply_h(r.view(), hr.view());

    const la::RealMatrix s = hcat(x.view(), r.view(), p.view());
    const la::RealMatrix hs_blocks = hcat(hx.view(), hr.view(), hp.view());
    la::RealMatrix hs = dist_gemm_tn(comm, s.view(), hs_blocks.view());
    la::RealMatrix gs = dist_gram(comm, s.view());
    const Index m = s.cols();
    for (Index i = 0; i < m; ++i) {
      for (Index j = i + 1; j < m; ++j) {
        const Real avg = 0.5 * (hs(i, j) + hs(j, i));
        hs(i, j) = avg;
        hs(j, i) = avg;
      }
    }

    la::EigResult small;
    bool used_p = p.cols() > 0;
    try {
      small = la::sygv(hs.view(), gs.view());
    } catch (const Error&) {
      const la::RealMatrix s2 =
          hcat(x.view(), r.view(), la::RealMatrix().view());
      const la::RealMatrix hs2 =
          hcat(hx.view(), hr.view(), la::RealMatrix().view());
      hs = dist_gemm_tn(comm, s2.view(), hs2.view());
      gs = dist_gram(comm, s2.view());
      small = la::sygv(hs.view(), gs.view());
      used_p = false;
      p.resize(0, 0);
      hp.resize(0, 0);
    }

    la::RealMatrix c1(k, k), c2(k, k), c3(used_p ? k : 0, used_p ? k : 0);
    for (Index j = 0; j < k; ++j) {
      for (Index i = 0; i < k; ++i) c1(i, j) = small.vectors(i, j);
      for (Index i = 0; i < k; ++i) c2(i, j) = small.vectors(k + i, j);
      if (used_p) {
        for (Index i = 0; i < k; ++i) c3(i, j) = small.vectors(2 * k + i, j);
      }
    }

    la::RealMatrix new_p =
        la::gemm(la::Trans::kNo, la::Trans::kNo, r.view(), c2.view());
    la::RealMatrix new_hp =
        la::gemm(la::Trans::kNo, la::Trans::kNo, hr.view(), c2.view());
    if (used_p) {
      la::gemm(la::Trans::kNo, la::Trans::kNo, Real{1}, p.view(), c3.view(),
               Real{1}, new_p.view());
      la::gemm(la::Trans::kNo, la::Trans::kNo, Real{1}, hp.view(), c3.view(),
               Real{1}, new_hp.view());
    }
    la::RealMatrix new_x =
        la::gemm(la::Trans::kNo, la::Trans::kNo, x.view(), c1.view());
    la::RealMatrix new_hx =
        la::gemm(la::Trans::kNo, la::Trans::kNo, hx.view(), c1.view());
    for (Index i = 0; i < n_local; ++i) {
      for (Index j = 0; j < k; ++j) {
        new_x(i, j) += new_p(i, j);
        new_hx(i, j) += new_hp(i, j);
      }
    }
    x = std::move(new_x);
    hx = std::move(new_hx);
    p = std::move(new_p);
    hp = std::move(new_hp);

    for (Index j = 0; j < k; ++j) {
      result.eigenvalues[static_cast<std::size_t>(j)] =
          small.values[static_cast<std::size_t>(j)];
    }

    if ((iter + 1) % 20 == 0) {
      dist_cholqr2(comm, x.view());
      apply_h(x.view(), hx.view());
      const la::RealMatrix xhx = dist_gemm_tn(comm, x.view(), hx.view());
      la::EigResult rr = la::syev(xhx.view());
      x = la::gemm(la::Trans::kNo, la::Trans::kNo, x.view(),
                   rr.vectors.view());
      hx = la::gemm(la::Trans::kNo, la::Trans::kNo, hx.view(),
                    rr.vectors.view());
      result.eigenvalues = rr.values;
      p.resize(0, 0);
      hp.resize(0, 0);
    }

    // Per-rank slab snapshot, taken after the drift-control block for the
    // same bit-replay reason as the serial solver (la/lobpcg.cpp).
    if (options.checkpoint_interval > 0 && options.checkpoint_sink &&
        (iter + 1) % options.checkpoint_interval == 0) {
      la::LobpcgCheckpoint ck;
      ck.x = x;
      ck.hx = hx;
      ck.p = p;
      ck.hp = hp;
      ck.eigenvalues = result.eigenvalues;
      ck.previous_values = result.eigenvalues;
      ck.residual_norms = result.residual_norms;
      ck.iteration = iter + 1;
      options.checkpoint_sink(ck);
    }
  }

  result.eigenvectors = std::move(x);
  static obs::Counter& iterations = obs::counter("par.dist_lobpcg.iterations");
  iterations.add(result.iterations);
  return result;
}

}  // namespace lrt::par
