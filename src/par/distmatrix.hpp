// Distributed dense matrix.
//
// A DistMatrix pairs a Layout with this rank's local block. All ranks of
// the owning communicator construct the same global picture; methods that
// need communication take the Comm explicitly so call sites read like the
// MPI code they stand in for.
#pragma once

#include <functional>

#include "la/matrix.hpp"
#include "par/comm.hpp"
#include "par/layout.hpp"

namespace lrt::par {

class DistMatrix {
 public:
  /// Creates a zero-initialized distributed matrix; every rank calls this
  /// with the same layout.
  DistMatrix(const Layout& layout, int rank);

  const Layout& layout() const { return layout_; }
  int rank() const { return rank_; }
  Index global_rows() const { return layout_.rows(); }
  Index global_cols() const { return layout_.cols(); }

  la::RealMatrix& local() { return local_; }
  const la::RealMatrix& local() const { return local_; }

  /// Fills the local block from a global generator f(i, j) — collective by
  /// convention (each rank fills its own part; no communication).
  void fill_global(const std::function<Real(Index, Index)>& f);

  /// Gathers the full matrix on `root` (other ranks get an empty matrix).
  la::RealMatrix gather(Comm& comm, int root = 0) const;

  /// Gathers and broadcasts so every rank holds the full matrix.
  la::RealMatrix allgather_full(Comm& comm) const;

  /// Scatters a root-resident global matrix into the distributed blocks.
  static DistMatrix scatter(Comm& comm, const Layout& layout,
                            la::RealConstView global, int root = 0);

 private:
  Layout layout_;
  int rank_;
  la::RealMatrix local_;
};

/// pdgemr2d analog: redistributes src into the destination layout over the
/// same communicator. Implemented with a single alltoallv of (index, value)
/// pairs — the generic path that handles every scheme pair, including the
/// row-block -> 2-D block-cyclic conversion before SYEVD in the paper.
DistMatrix redistribute(Comm& comm, const DistMatrix& src,
                        const Layout& dst_layout);

}  // namespace lrt::par
