// Distributed LOBPCG: the paper's Algorithm 2 with the long (pair-space)
// dimension row-block partitioned over ranks.
//
// Each rank owns a contiguous row slab of every tall block (X, W, P and
// their operator images); the 3k x 3k projected problem, its
// eigendecomposition and all coefficient updates are replicated. The only
// communication per iteration is the handful of Allreduces behind the
// Gram/projection products — identical in structure to the paper's
// parallel LOBPCG.
#pragma once

#include <functional>

#include "la/lobpcg.hpp"
#include "par/comm.hpp"

namespace lrt::par {

/// Applies the operator to this rank's row slab: y_local = (H x)_local.
/// Implementations communicate internally if H mixes rows (the implicit
/// Casida operator does, through the Nμ-space contraction).
using DistBlockOperator =
    std::function<void(la::RealConstView x_local, la::RealView y_local)>;

/// In-place preconditioner on the local residual slab.
using DistBlockPreconditioner =
    std::function<void(la::RealView r_local, const std::vector<Real>& theta)>;

/// Strategy for the per-iteration Gram/projection reductions.
///
///  - kLegacy: the original iteration — CholQR², one projection (and one
///    allreduce) per basis block. Bit-for-bit the pre-existing behavior.
///  - kPerBlock: the communication-avoiding iteration (single-reduction
///    classical Gram-Schmidt over [X P W] plus single-pass CholQR assembled
///    from the same Gram matrix) with each logical block reduced in its own
///    allreduce. Reference twin for kFused.
///  - kFused: the same iteration with every block of a round concatenated
///    into one contiguous buffer and reduced in a single allreduce — three
///    reduction rounds per iteration (fused norms+Gram, the operator
///    application, fused Rayleigh-Ritz). Bitwise identical to kPerBlock:
///    the reduction is elementwise over the same tree, so packing blocks
///    side by side cannot change a single bit. It is NOT bitwise identical
///    to kLegacy, whose orthogonalization is a different (two-pass)
///    algorithm; see docs/PERFORMANCE.md.
enum class GramReduction { kLegacy, kPerBlock, kFused };

/// Lowest-k eigenpairs; `x0_local` is this rank's slab of the initial
/// block (global row count implied by the sum over ranks). The returned
/// eigenvectors are this rank's slab. Deterministic across rank counts up
/// to roundoff. Collective. `reduction` picks the communication schedule;
/// every rank must pass the same value.
la::LobpcgResult dist_lobpcg(Comm& comm, const DistBlockOperator& apply_h,
                             const DistBlockPreconditioner& preconditioner,
                             la::RealMatrix x0_local,
                             const la::LobpcgOptions& options = {},
                             GramReduction reduction = GramReduction::kLegacy);

}  // namespace lrt::par
