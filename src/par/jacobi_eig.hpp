// Distributed one-sided Jacobi symmetric eigensolver.
//
// A genuinely distributed alternative to the gathered SYEVD stand-in of
// dist_syev: columns of the (Gershgorin-shifted, hence SPD) matrix are
// block-partitioned over ranks; plane rotations orthogonalize column
// pairs of W = (A + σI) V while the same rotations accumulate into V.
// At convergence W's columns are mutually orthogonal, so
//   A + σI = U Σ Vᵀ  with U = V   (SPD ⇒ SVD = eigendecomposition),
// giving eigenpairs (Σ - σ, V). Cross-rank column pairs are handled with
// a round-robin block tournament: every sweep, each rank rotates its own
// block internally, then exchanges blocks with a sequence of partners so
// every column pair meets (the classic parallel Jacobi ordering).
//
// Jacobi is the textbook "embarrassingly parallelizable" eigensolver —
// slower serially than tridiagonalization but with no serial bottleneck,
// which is exactly the trade the scaling benches probe.
#pragma once

#include "la/matrix.hpp"
#include "par/comm.hpp"

namespace lrt::par {

struct JacobiEigOptions {
  Index max_sweeps = 30;
  /// Converged when every |w_p · w_q| <= tol * ||w_p|| ||w_q||.
  Real tolerance = 1e-10;
};

struct JacobiEigResult {
  std::vector<Real> values;  ///< ascending, replicated
  la::RealMatrix vectors;    ///< n x n, replicated, columns ascending
  Index sweeps = 0;
  bool converged = false;
};

/// Solves the full symmetric eigenproblem of the replicated input matrix
/// `a` (every rank passes the same matrix); work and column storage are
/// distributed, results replicated. Collective.
JacobiEigResult dist_jacobi_syev(Comm& comm, la::RealConstView a,
                                 const JacobiEigOptions& options = {});

}  // namespace lrt::par
