#include "par/summa.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace lrt::par {

ProcessGrid2D::ProcessGrid2D(Comm& world, int prow, int pcol)
    : prow_(prow),
      pcol_(pcol),
      my_row_(world.rank() / pcol),
      my_col_(world.rank() % pcol),
      // Key by the orthogonal coordinate so the sub-rank equals it.
      row_comm_(world.split(my_row_, my_col_)),
      col_comm_(world.split(pcol + my_col_, my_row_)) {
  LRT_CHECK(prow >= 1 && pcol >= 1 && prow * pcol == world.size(),
            "grid " << prow << "x" << pcol << " != comm size "
                    << world.size());
  LRT_ASSERT(row_comm_.rank() == my_col_, "row communicator key mismatch");
  LRT_ASSERT(col_comm_.rank() == my_row_, "col communicator key mismatch");
}

la::RealMatrix summa_gemm(ProcessGrid2D& grid, la::RealConstView a_local,
                          la::RealConstView b_local, Index m, Index n,
                          Index k, const SummaOptions& options) {
  const obs::Span span("par.summa");
  const BlockPartition rows_m(m, grid.prow());
  const BlockPartition cols_n(n, grid.pcol());
  const BlockPartition k_by_col(k, grid.pcol());  // A's column split
  const BlockPartition k_by_row(k, grid.prow());  // B's row split

  const Index m_loc = rows_m.count(grid.my_row());
  const Index n_loc = cols_n.count(grid.my_col());
  LRT_CHECK(a_local.rows() == m_loc &&
                a_local.cols() == k_by_col.count(grid.my_col()),
            "summa: bad A block shape");
  LRT_CHECK(b_local.rows() == k_by_row.count(grid.my_row()) &&
                b_local.cols() == n_loc,
            "summa: bad B block shape");

  la::RealMatrix c(m_loc, n_loc);
  la::RealMatrix a_panel(m_loc, options.panel);
  la::RealMatrix b_panel(options.panel, n_loc);

  Index k0 = 0;
  while (k0 < k) {
    // Panel clipped at both partitions' boundaries and the max width.
    const int a_owner = k_by_col.owner(k0);
    const int b_owner = k_by_row.owner(k0);
    const Index a_end = k_by_col.offset(a_owner) + k_by_col.count(a_owner);
    const Index b_end = k_by_row.offset(b_owner) + k_by_row.count(b_owner);
    const Index k1 = std::min({k0 + options.panel, a_end, b_end, k});
    const Index width = k1 - k0;

    // Pack / broadcast the A panel along the process row (packed into a
    // contiguous buffer so one broadcast carries it).
    la::MatrixView<Real> ap = a_panel.view().cols_block(0, width);
    {
      std::vector<Real> packed(static_cast<std::size_t>(m_loc * width));
      if (grid.my_col() == a_owner) {
        const la::ConstMatrixView<Real> src =
            a_local.cols_block(k0 - k_by_col.offset(a_owner), width);
        for (Index i = 0; i < m_loc; ++i) {
          for (Index j = 0; j < width; ++j) {
            packed[static_cast<std::size_t>(i * width + j)] = src(i, j);
          }
        }
      }
      grid.row_comm().bcast(packed.data(), m_loc * width, a_owner);
      for (Index i = 0; i < m_loc; ++i) {
        for (Index j = 0; j < width; ++j) {
          ap(i, j) = packed[static_cast<std::size_t>(i * width + j)];
        }
      }
    }

    // Pack / broadcast the B panel along the process column (rows are
    // contiguous, one bcast suffices when width rows are packed).
    la::MatrixView<Real> bp = b_panel.view().rows_block(0, width);
    if (grid.my_row() == b_owner) {
      la::copy<Real>(
          b_local.rows_block(k0 - k_by_row.offset(b_owner), width), bp);
    }
    grid.col_comm().bcast(b_panel.data(), width * n_loc, b_owner);

    // Local panel product through the batched packed path: panels are
    // short in k, so the flop-count dispatch in la::gemm would send them
    // to the reference kernel; gemm_many always packs.
    la::gemm_many(la::Trans::kNo, la::Trans::kNo, Real{1},
                  {{la::ConstMatrixView<Real>(ap), c.view()}},
                  la::ConstMatrixView<Real>(bp), Real{1});
    k0 = k1;
  }
  return c;
}

}  // namespace lrt::par
