// Distributed three-dimensional complex FFT, slab-decomposed over axis 0.
//
// Each rank owns a contiguous slab of i0 planes (par::BlockPartition over
// n0); axes 2 and 1 transform locally with the same batched plan calls as
// the serial Fft3D, and axis 0 redistributes to a pencil layout — each
// rank owning a block of (i1, i2) lines — through the overlapped
// nonblocking alltoallv (par/transpose), transforms, and redistributes
// back. Every per-line 1-D transform is bitwise identical to the serial
// path's and the exchanges are pure data movement, so the distributed
// transform reproduces Fft3D bit for bit on every rank count.
#pragma once

#include <array>

#include "fft/fft1d.hpp"
#include "la/matrix.hpp"
#include "par/comm.hpp"

namespace lrt::par {

class DistFft3D {
 public:
  /// Collective: every rank constructs with the same shape.
  DistFft3D(Comm& comm, Index n0, Index n1, Index n2);

  std::array<Index, 3> shape() const { return n_; }
  /// This rank's slab: i0 planes [offset0, offset0 + count0).
  Index count0() const { return count0_; }
  Index offset0() const { return offset0_; }
  /// Elements in the local slab (count0 * n1 * n2).
  Index local_size() const { return count0_ * n_[1] * n_[2]; }

  /// In-place forward transform of the local slab (unnormalized).
  /// Collective.
  void forward(fft::Complex* x_local) const;

  /// In-place inverse transform (normalized by 1/(n0*n1*n2)). Collective.
  void inverse(fft::Complex* x_local) const;

 private:
  void transform(fft::Complex* x, bool inverse) const;

  Comm* comm_;
  std::array<Index, 3> n_;
  Index count0_, offset0_;
  fft::Fft1D plan0_, plan1_, plan2_;
};

}  // namespace lrt::par
