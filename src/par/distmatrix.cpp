#include "par/distmatrix.hpp"

namespace lrt::par {

DistMatrix::DistMatrix(const Layout& layout, int rank)
    : layout_(layout), rank_(rank) {
  LRT_CHECK(rank >= 0 && rank < layout.nranks(),
            "rank " << rank << " outside layout with " << layout.nranks()
                    << " ranks");
  local_.resize(layout.local_rows(rank), layout.local_cols(rank));
}

void DistMatrix::fill_global(const std::function<Real(Index, Index)>& f) {
  for (Index li = 0; li < local_.rows(); ++li) {
    const Index gi = layout_.global_row(rank_, li);
    for (Index lj = 0; lj < local_.cols(); ++lj) {
      const Index gj = layout_.global_col(rank_, lj);
      local_(li, lj) = f(gi, gj);
    }
  }
}

la::RealMatrix DistMatrix::gather(Comm& comm, int root) const {
  const int p = comm.size();
  LRT_CHECK(p == layout_.nranks(), "comm size != layout ranks");

  // Serialize the local block as (global flat index, value) pairs and use
  // gatherv-style point-to-point to the root, which scatters into place.
  const Index my_count = local_.rows() * local_.cols();
  std::vector<Index> counts(static_cast<std::size_t>(p));
  comm.allgather(&my_count, 1, counts.data());

  la::RealMatrix full;
  if (comm.rank() == root) {
    full.resize(layout_.rows(), layout_.cols());
  }

  // Pack my pairs.
  std::vector<Real> values(static_cast<std::size_t>(my_count));
  std::vector<Index> indices(static_cast<std::size_t>(my_count));
  Index pos = 0;
  for (Index li = 0; li < local_.rows(); ++li) {
    const Index gi = layout_.global_row(rank_, li);
    for (Index lj = 0; lj < local_.cols(); ++lj) {
      const Index gj = layout_.global_col(rank_, lj);
      indices[static_cast<std::size_t>(pos)] = gi * layout_.cols() + gj;
      values[static_cast<std::size_t>(pos)] = local_(li, lj);
      ++pos;
    }
  }

  constexpr int kTagIdx = 301;
  constexpr int kTagVal = 302;
  if (comm.rank() == root) {
    auto place = [&](const std::vector<Index>& idx,
                     const std::vector<Real>& val) {
      for (std::size_t k = 0; k < idx.size(); ++k) {
        const Index flat = idx[k];
        full(flat / layout_.cols(), flat % layout_.cols()) = val[k];
      }
    };
    place(indices, values);
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      const Index count = counts[static_cast<std::size_t>(r)];
      std::vector<Index> idx(static_cast<std::size_t>(count));
      std::vector<Real> val(static_cast<std::size_t>(count));
      comm.recv(idx.data(), count, r, kTagIdx);
      comm.recv(val.data(), count, r, kTagVal);
      place(idx, val);
    }
  } else {
    comm.send(indices.data(), my_count, root, kTagIdx);
    comm.send(values.data(), my_count, root, kTagVal);
  }
  return full;
}

la::RealMatrix DistMatrix::allgather_full(Comm& comm) const {
  la::RealMatrix full = gather(comm, /*root=*/0);
  if (comm.rank() != 0) full.resize(layout_.rows(), layout_.cols());
  comm.bcast(full.data(), full.size(), /*root=*/0);
  return full;
}

DistMatrix DistMatrix::scatter(Comm& comm, const Layout& layout,
                               la::RealConstView global, int root) {
  DistMatrix result(layout, comm.rank());
  if (comm.rank() == root) {
    LRT_CHECK(global.rows() == layout.rows() && global.cols() == layout.cols(),
              "scatter: global shape mismatch");
  }
  // Broadcast the full matrix then take the local part — simple and fine
  // for the scales the tests use; redistribute() is the scalable path.
  la::RealMatrix full(layout.rows(), layout.cols());
  if (comm.rank() == root) la::copy(global, full.view());
  comm.bcast(full.data(), full.size(), root);
  result.fill_global([&](Index i, Index j) { return full(i, j); });
  return result;
}

}  // namespace lrt::par
