#include "par/distblas.hpp"

#include <cmath>

namespace lrt::par {

la::RealMatrix dist_gemm_tn(Comm& comm, la::RealConstView a_local,
                            la::RealConstView b_local) {
  LRT_CHECK(a_local.rows() == b_local.rows(),
            "dist_gemm_tn: local row blocks must align");
  la::RealMatrix c =
      la::gemm(la::Trans::kYes, la::Trans::kNo, a_local, b_local);
  comm.allreduce(c.data(), c.size(), ReduceOp::kSum);
  return c;
}

la::RealMatrix dist_gram(Comm& comm, la::RealConstView a_local) {
  la::RealMatrix g = la::gram(a_local);
  comm.allreduce(g.data(), g.size(), ReduceOp::kSum);
  return g;
}

void local_gram_tn_blocks(const std::vector<la::RealConstView>& a_blocks,
                          la::RealConstView b, la::RealView out) {
  std::vector<la::GemmBatchItem> items;
  Index r0 = 0;
  for (const la::RealConstView& a : a_blocks) {
    if (a.cols() == 0) continue;
    LRT_CHECK(a.rows() == b.rows(),
              "local_gram_tn_blocks: local row blocks must align");
    items.push_back({a, out.rows_block(r0, a.cols())});
    r0 += a.cols();
  }
  LRT_CHECK(r0 == out.rows() && out.cols() == b.cols(),
            "local_gram_tn_blocks: output is " << out.rows() << "x"
                                               << out.cols() << ", expected "
                                               << r0 << "x" << b.cols());
  la::gemm_many(la::Trans::kYes, la::Trans::kNo, Real{1}, items, b, Real{0});
}

la::RealMatrix local_gemm_nn(la::RealConstView a_local, la::RealConstView b) {
  return la::gemm(la::Trans::kNo, la::Trans::kNo, a_local, b);
}

Real dist_frobenius_norm(Comm& comm, la::RealConstView a_local) {
  Real sum = 0.0;
  for (Index i = 0; i < a_local.rows(); ++i) {
    const Real* row = a_local.row_ptr(i);
    for (Index j = 0; j < a_local.cols(); ++j) sum += row[j] * row[j];
  }
  comm.allreduce(&sum, 1, ReduceOp::kSum);
  return std::sqrt(sum);
}

Real dist_sum(Comm& comm, Real value) {
  comm.allreduce(&value, 1, ReduceOp::kSum);
  return value;
}

}  // namespace lrt::par
