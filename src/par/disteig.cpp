#include "par/disteig.hpp"

#include "par/jacobi_eig.hpp"

namespace lrt::par {

DistEigResult dist_syev(Comm& comm, const DistMatrix& a,
                        DistEigMethod method) {
  LRT_CHECK(a.global_rows() == a.global_cols(),
            "dist_syev needs a square matrix");
  const Index n = a.global_rows();
  const int p = comm.size();

  if (method == DistEigMethod::kJacobi) {
    // Fully distributed path: replicate the (square, assumed moderate)
    // input and run the column-distributed Jacobi sweeps.
    const la::RealMatrix full = a.allgather_full(comm);
    const JacobiEigResult jacobi = dist_jacobi_syev(comm, full.view());
    LRT_CHECK(jacobi.converged, "distributed Jacobi did not converge");
    DistEigResult result{jacobi.values, DistMatrix(a.layout(), comm.rank())};
    result.vectors.fill_global(
        [&](Index i, Index j) { return jacobi.vectors(i, j); });
    return result;
  }

  // Step 1: convert to the 2-D block-cyclic layout the dense solver wants
  // (pdgemr2d in the paper). Pick a near-square process grid.
  int prow = 1;
  for (int r = 1; r * r <= p; ++r) {
    if (p % r == 0) prow = r;
  }
  const int pcol = p / prow;
  const Index block = std::max<Index>(1, std::min<Index>(64, n / p + 1));
  const Layout cyclic =
      Layout::block_cyclic_2d(n, n, prow, pcol, block, block);
  const DistMatrix a_cyclic = redistribute(comm, a, cyclic);

  // Step 2: factorize (gathered SYEVD stand-in).
  la::RealMatrix full = a_cyclic.gather(comm, /*root=*/0);
  DistEigResult result{std::vector<Real>(static_cast<std::size_t>(n)),
                       DistMatrix(a.layout(), comm.rank())};
  DistMatrix vec_cyclic(cyclic, comm.rank());
  if (comm.rank() == 0) {
    la::EigResult eig = la::syev(full.view());
    result.values = std::move(eig.values);
    // Scatter eigenvectors into the cyclic layout from root.
    vec_cyclic = DistMatrix::scatter(comm, cyclic, eig.vectors.view(), 0);
  } else {
    la::RealMatrix empty;
    vec_cyclic = DistMatrix::scatter(comm, cyclic, empty.view(), 0);
  }
  comm.bcast(result.values.data(), n, /*root=*/0);

  // Step 3: convert the eigenvectors back to the caller's layout.
  result.vectors = redistribute(comm, vec_cyclic, a.layout());
  return result;
}

}  // namespace lrt::par
