#include "par/jacobi_eig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "la/blas.hpp"
#include "par/layout.hpp"

namespace lrt::par {
namespace {

/// Applies one one-sided rotation to columns u, w (length n), returning
/// the pre-rotation normalized overlap |γ|/√(αβ) (0 when skipped).
Real rotate_pair(Real* u, Real* w, Index n, Real tolerance) {
  const Real alpha = la::dot(u, u, n);
  const Real beta = la::dot(w, w, n);
  const Real gamma = la::dot(u, w, n);
  if (alpha <= 0 || beta <= 0) return 0;
  const Real ratio = std::abs(gamma) / std::sqrt(alpha * beta);
  if (ratio <= tolerance) return ratio;

  const Real zeta = (beta - alpha) / (2 * gamma);
  const Real t = (zeta >= 0 ? Real{1} : Real{-1}) /
                 (std::abs(zeta) + std::sqrt(1 + zeta * zeta));
  const Real c = Real{1} / std::sqrt(1 + t * t);
  const Real s = c * t;
  for (Index i = 0; i < n; ++i) {
    const Real ui = u[i];
    const Real wi = w[i];
    u[i] = c * ui - s * wi;
    w[i] = s * ui + c * wi;
  }
  return ratio;
}

}  // namespace

JacobiEigResult dist_jacobi_syev(Comm& comm, la::RealConstView a,
                                 const JacobiEigOptions& options) {
  const Index n = a.rows();
  LRT_CHECK(n == a.cols(), "dist_jacobi_syev needs a square matrix");
  const int p = comm.size();
  const int me = comm.rank();
  const BlockPartition part(n, p);
  const Index my_cols = part.count(me);
  const Index my_off = part.offset(me);

  // Gershgorin shift so A + σI is safely positive definite.
  Real lower = 0;
  Real scale = 0;
  for (Index i = 0; i < n; ++i) {
    Real radius = 0;
    for (Index j = 0; j < n; ++j) {
      if (j != i) radius += std::abs(a(i, j));
      scale = std::max(scale, std::abs(a(i, j)));
    }
    lower = std::min(lower, a(i, i) - radius);
  }
  const Real shift = -lower + std::max(scale, Real{1}) * Real{1e-3} + 1;

  // Local column block of W = A + σI, stored COLUMN-wise: row j of
  // `w_loc` is global column (my_off + j) — contiguous columns make the
  // rotation kernel and the block exchanges simple.
  la::RealMatrix w_loc(my_cols, n);
  for (Index j = 0; j < my_cols; ++j) {
    const Index gj = my_off + j;
    for (Index i = 0; i < n; ++i) {
      w_loc(j, i) = a(i, gj) + (i == gj ? shift : Real{0});
    }
  }

  JacobiEigResult result;
  constexpr int kTagBlock = 611;

  for (Index sweep = 0; sweep < options.max_sweeps; ++sweep) {
    result.sweeps = sweep + 1;
    Real worst = 0;

    // (1) Local pairs.
    for (Index x = 0; x < my_cols; ++x) {
      for (Index y = x + 1; y < my_cols; ++y) {
        worst = std::max(
            worst, rotate_pair(w_loc.row_ptr(x), w_loc.row_ptr(y), n,
                               options.tolerance));
      }
    }

    // (2) Cross-rank pairs: every ordered pair of ranks meets once per
    // sweep. Lower rank hosts the rotation; the partner's block travels
    // there and back. Deterministic pairing: rounds s = 1..p-1, partner
    // = me XOR ... (use simple all-pairs schedule keyed on (i, j)).
    for (int i = 0; i < p; ++i) {
      for (int j = i + 1; j < p; ++j) {
        if (me == i) {
          const Index other_cols = part.count(j);
          la::RealMatrix other(other_cols, n);
          comm.recv(other.data(), other.size(), j, kTagBlock);
          for (Index x = 0; x < my_cols; ++x) {
            for (Index y = 0; y < other_cols; ++y) {
              worst = std::max(
                  worst, rotate_pair(w_loc.row_ptr(x), other.row_ptr(y), n,
                                     options.tolerance));
            }
          }
          comm.send(other.data(), other.size(), j, kTagBlock);
        } else if (me == j) {
          comm.send(w_loc.data(), w_loc.size(), i, kTagBlock);
          comm.recv(w_loc.data(), w_loc.size(), i, kTagBlock);
        }
      }
    }

    comm.allreduce(&worst, 1, ReduceOp::kMax);
    if (worst <= options.tolerance) {
      result.converged = true;
      break;
    }
  }

  // Extract local eigenpairs: value = ||w_j|| - σ, vector = w_j / ||w_j||.
  std::vector<Real> local_values(static_cast<std::size_t>(my_cols));
  for (Index j = 0; j < my_cols; ++j) {
    const Real norm = la::nrm2(w_loc.row_ptr(j), n);
    LRT_CHECK(norm > 0, "Jacobi produced a zero column");
    local_values[static_cast<std::size_t>(j)] = norm - shift;
    la::scal(Real{1} / norm, w_loc.row_ptr(j), n);
  }

  // Replicate values and vectors (columns stored as rows of w_loc).
  std::vector<Index> counts(static_cast<std::size_t>(p));
  std::vector<Index> displs(static_cast<std::size_t>(p));
  std::vector<Index> vec_counts(static_cast<std::size_t>(p));
  std::vector<Index> vec_displs(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    counts[static_cast<std::size_t>(r)] = part.count(r);
    displs[static_cast<std::size_t>(r)] = part.offset(r);
    vec_counts[static_cast<std::size_t>(r)] = part.count(r) * n;
    vec_displs[static_cast<std::size_t>(r)] = part.offset(r) * n;
  }
  std::vector<Real> all_values(static_cast<std::size_t>(n));
  comm.allgatherv(local_values.data(), my_cols, all_values.data(), counts,
                  displs);
  la::RealMatrix all_vectors_rows(n, n);  // row g = eigenvector g
  comm.allgatherv(w_loc.data(), my_cols * n, all_vectors_rows.data(),
                  vec_counts, vec_displs);

  // Sort ascending and emit vectors in columns.
  std::vector<Index> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), Index{0});
  std::sort(order.begin(), order.end(), [&](Index x, Index y) {
    return all_values[static_cast<std::size_t>(x)] <
           all_values[static_cast<std::size_t>(y)];
  });
  result.values.resize(static_cast<std::size_t>(n));
  result.vectors.resize(n, n);
  for (Index k = 0; k < n; ++k) {
    const Index src = order[static_cast<std::size_t>(k)];
    result.values[static_cast<std::size_t>(k)] =
        all_values[static_cast<std::size_t>(src)];
    for (Index i = 0; i < n; ++i) {
      result.vectors(i, k) = all_vectors_rows(src, i);
    }
  }
  return result;
}

}  // namespace lrt::par
