#include "par/pipeline.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace lrt::par {

la::RealMatrix gram_reduce_monolithic(Comm& comm, la::RealConstView a_local,
                                      la::RealConstView b_local) {
  const obs::Span span("par.gram_reduce.monolithic");
  LRT_CHECK(a_local.rows() == b_local.rows(), "local row blocks must align");
  la::RealMatrix c =
      la::gemm(la::Trans::kYes, la::Trans::kNo, a_local, b_local);
  comm.allreduce(c.data(), c.size(), ReduceOp::kSum);
  return c;
}

PipelineResult gram_reduce_pipelined(Comm& comm, la::RealConstView a_local,
                                     la::RealConstView b_local,
                                     Index chunk_rows) {
  const obs::Span span("par.gram_reduce.pipelined");
  LRT_CHECK(a_local.rows() == b_local.rows(), "local row blocks must align");
  LRT_CHECK(chunk_rows >= 1, "chunk_rows must be positive");
  const Index k = a_local.cols();  // global rows of C
  const Index n = b_local.cols();
  const int p = comm.size();
  const int me = comm.rank();
  const BlockPartition part(k, p);

  PipelineResult result;
  result.row_offset = part.offset(me);
  result.local_rows.resize(part.count(me), n);

  // Walk the owner blocks; within each, multiply-and-reduce chunk by chunk.
  // The GEMM for chunk i+1 only starts after chunk i's Reduce has been
  // issued, so on a real network the send of chunk i overlaps the compute
  // of chunk i+1 (Fig 5); with the thread transport sends complete eagerly,
  // which models the same ordering.
  la::RealMatrix partial;
  for (int owner = 0; owner < p; ++owner) {
    const Index block_begin = part.offset(owner);
    const Index block_rows = part.count(owner);
    for (Index c0 = 0; c0 < block_rows; c0 += chunk_rows) {
      const Index rows = std::min(chunk_rows, block_rows - c0);
      const Index global_row = block_begin + c0;
      // C[global_row : global_row+rows, :] = A[:, those cols]ᵀ B.
      partial.resize(rows, n);
      la::gemm(la::Trans::kYes, la::Trans::kNo, Real{1},
               a_local.cols_block(global_row, rows), b_local, Real{0},
               partial.view());
      comm.reduce(partial.data(), partial.size(), ReduceOp::kSum, owner);
      if (owner == me) {
        la::copy<Real>(partial.view(),
                       result.local_rows.view().rows_block(c0, rows));
      }
    }
  }
  return result;
}

}  // namespace lrt::par
