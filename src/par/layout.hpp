// Data distribution layouts (paper §5.2, Figure 3).
//
// Three schemes exactly as in the paper:
//  - BlockRow: contiguous row blocks per rank — used for the face-splitting
//    product and GEMM steps (each rank owns a slab of real-space grid
//    points, all orbitals).
//  - BlockCol: contiguous column blocks per rank — used for the FFT step
//    (each rank owns whole orbital pair columns and transforms them
//    independently).
//  - BlockCyclic2D: ScaLAPACK-style 2-D block-cyclic over a prow x pcol
//    process grid — used for the dense SYEVD diagonalization.
#pragma once

#include <array>

#include "common/config.hpp"
#include "common/error.hpp"

namespace lrt::par {

/// 1-D block partition of n items over p parts: part r gets n/p items plus
/// one extra for the first n%p parts (ScaLAPACK-compatible "big blocks
/// first" convention).
struct BlockPartition {
  Index n = 0;
  int parts = 1;

  BlockPartition() = default;
  BlockPartition(Index n_, int parts_) : n(n_), parts(parts_) {
    LRT_CHECK(n >= 0 && parts >= 1, "bad partition " << n << "/" << parts);
  }

  Index count(int r) const {
    const Index base = n / parts;
    const Index extra = n % parts;
    return base + (r < extra ? 1 : 0);
  }

  Index offset(int r) const {
    const Index base = n / parts;
    const Index extra = n % parts;
    const Index rr = static_cast<Index>(r);
    return rr * base + (rr < extra ? rr : extra);
  }

  int owner(Index i) const {
    LRT_ASSERT(i >= 0 && i < n, "index out of partition");
    const Index base = n / parts;
    const Index extra = n % parts;
    const Index boundary = extra * (base + 1);
    if (i < boundary) return static_cast<int>(i / (base + 1));
    return static_cast<int>(extra + (i - boundary) / base);
  }
};

/// numroc: number of rows/cols of a cyclically blocked dimension owned by
/// process `iproc` out of `nprocs`, with block size `nb` (ScaLAPACK NUMROC
/// with ISRCPROC = 0).
Index numroc(Index n, Index nb, int iproc, int nprocs);

enum class DistScheme { kBlockRow, kBlockCol, kBlockCyclic2D };

/// Describes how a rows x cols global matrix is spread over nranks.
class Layout {
 public:
  static Layout block_row(Index rows, Index cols, int nranks);
  static Layout block_col(Index rows, Index cols, int nranks);

  /// 2-D block cyclic over a prow x pcol grid (prow*pcol == nranks) with
  /// mb x nb blocks. Rank r maps to grid position (r / pcol, r % pcol).
  static Layout block_cyclic_2d(Index rows, Index cols, int prow, int pcol,
                                Index mb, Index nb);

  DistScheme scheme() const { return scheme_; }
  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  int nranks() const { return nranks_; }

  Index local_rows(int rank) const;
  Index local_cols(int rank) const;

  struct Location {
    int rank;
    Index local_row;
    Index local_col;
  };

  /// Maps a global element to its owner and local coordinates.
  Location locate(Index i, Index j) const;

  /// Inverse map: global row index of local row `li` on `rank`.
  Index global_row(int rank, Index li) const;
  Index global_col(int rank, Index lj) const;

  bool operator==(const Layout& other) const = default;

 private:
  Layout() = default;

  DistScheme scheme_ = DistScheme::kBlockRow;
  Index rows_ = 0, cols_ = 0;
  int nranks_ = 1;
  // Block-cyclic parameters (unused for 1-D schemes).
  int prow_ = 1, pcol_ = 1;
  Index mb_ = 1, nb_ = 1;
};

}  // namespace lrt::par
