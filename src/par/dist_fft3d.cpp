#include "par/dist_fft3d.hpp"

#include "common/error.hpp"
#include "obs/obs.hpp"
#include "par/layout.hpp"
#include "par/transpose.hpp"

namespace lrt::par {

DistFft3D::DistFft3D(Comm& comm, Index n0, Index n1, Index n2)
    : comm_(&comm), n_{n0, n1, n2}, plan0_(n0), plan1_(n1), plan2_(n2) {
  LRT_CHECK(n0 >= 1 && n1 >= 1 && n2 >= 1,
            "bad 3-D FFT shape " << n0 << "x" << n1 << "x" << n2);
  const BlockPartition slabs(n0, comm.size());
  count0_ = slabs.count(comm.rank());
  offset0_ = slabs.offset(comm.rank());
}

void DistFft3D::transform(fft::Complex* x, bool inverse) const {
  const Index n0 = n_[0], n1 = n_[1], n2 = n_[2];
  const obs::Span span("par.dist_fft3d");

  // Axes 2 and 1: local to the slab, same batched calls as Fft3D.
  if (count0_ > 0) {
    if (inverse) {
      plan2_.inverse_many(x, count0_ * n1, /*stride=*/1, /*dist=*/n2);
    } else {
      plan2_.forward_many(x, count0_ * n1, /*stride=*/1, /*dist=*/n2);
    }
    for (Index i0 = 0; i0 < count0_; ++i0) {
      fft::Complex* slab = x + i0 * n1 * n2;
      if (inverse) {
        plan1_.inverse_many(slab, n2, /*stride=*/n2, /*dist=*/1);
      } else {
        plan1_.forward_many(slab, n2, /*stride=*/n2, /*dist=*/1);
      }
    }
  }

  // Axis 0: the slab is this rank's row block of the (n0 x n1*n2) matrix
  // M(i0, i1*n2 + i2), so the pencil redistribution is the overlapped
  // column-block transpose; pencils hold full axis-0 lines with stride
  // equal to the local line count, exactly the serial axis-0 batch shape.
  const la::ComplexConstView slab_view(x, count0_, n1 * n2, n1 * n2);
  la::ComplexMatrix pencil = row_block_to_col_block_overlapped(
      *comm_, slab_view, n0, n1 * n2);
  const Index lines = pencil.cols();
  if (lines > 0) {
    if (inverse) {
      plan0_.inverse_many(pencil.data(), lines, /*stride=*/lines, /*dist=*/1);
    } else {
      plan0_.forward_many(pencil.data(), lines, /*stride=*/lines, /*dist=*/1);
    }
  }
  const la::ComplexMatrix back = col_block_to_row_block_overlapped(
      *comm_, pencil.view(), n0, n1 * n2);
  for (Index i = 0; i < count0_ * n1 * n2; ++i) x[i] = back.data()[i];
}

void DistFft3D::forward(fft::Complex* x_local) const {
  transform(x_local, /*inverse=*/false);
}

void DistFft3D::inverse(fft::Complex* x_local) const {
  transform(x_local, /*inverse=*/true);
}

}  // namespace lrt::par
