// GEMM + reduction strategies for assembling Vhxc (paper §5.3, Fig 4-5).
//
// Baseline: each rank multiplies its full local slabs and an Allreduce
// replicates the complete Vhxc on every rank — simple, but memory and
// communication scale with the whole matrix.
//
// Optimized: the output rows are block-partitioned over ranks; the local
// GEMM is split into row chunks and each finished chunk is immediately
// MPI_Reduce'd to its owning rank only. Each rank stores just its slice
// and the wire volume drops from p copies to one.
#pragma once

#include "la/blas.hpp"
#include "par/comm.hpp"
#include "par/layout.hpp"

namespace lrt::par {

/// Baseline (Algorithm 1 lines 7-8): returns the full k x n product
/// Aᵀ B replicated on every rank.
la::RealMatrix gram_reduce_monolithic(Comm& comm, la::RealConstView a_local,
                                      la::RealConstView b_local);

struct PipelineResult {
  la::RealMatrix local_rows;  ///< this rank's block of C's rows
  Index row_offset = 0;       ///< global row index of local_rows(0, :)
};

/// Pipelined GEMM + Reduce: computes the same Aᵀ B but leaves C row-block
/// distributed. `chunk_rows` controls the pipeline granularity (how many
/// C rows are multiplied before their Reduce is issued).
PipelineResult gram_reduce_pipelined(Comm& comm, la::RealConstView a_local,
                                     la::RealConstView b_local,
                                     Index chunk_rows = 64);

}  // namespace lrt::par
