// Row-block <-> column-block redistribution of a dense matrix
// (the MPI_Alltoall steps around the FFT in paper Algorithm 1 / Fig 3).
//
// Faster than the generic DistMatrix redistribute: block intersections of
// the two 1-D partitions are contiguous rectangles, so payloads carry no
// per-element indices.
#pragma once

#include "la/matrix.hpp"
#include "par/comm.hpp"
#include "par/layout.hpp"

namespace lrt::par {

/// Input: this rank's row block (local_rows x n_cols) of an
/// (n_rows x n_cols) global matrix, rows partitioned by BlockPartition.
/// Output: this rank's column block (n_rows x local_cols).
la::RealMatrix row_block_to_col_block(Comm& comm,
                                      la::RealConstView local_rows,
                                      Index n_rows, Index n_cols);

/// Inverse conversion.
la::RealMatrix col_block_to_row_block(Comm& comm,
                                      la::RealConstView local_cols,
                                      Index n_rows, Index n_cols);

}  // namespace lrt::par
