// Row-block <-> column-block redistribution of a dense matrix
// (the MPI_Alltoall steps around the FFT in paper Algorithm 1 / Fig 3).
//
// Faster than the generic DistMatrix redistribute: block intersections of
// the two 1-D partitions are contiguous rectangles, so payloads carry no
// per-element indices.
#pragma once

#include "la/matrix.hpp"
#include "par/comm.hpp"
#include "par/layout.hpp"

namespace lrt::par {

/// Input: this rank's row block (local_rows x n_cols) of an
/// (n_rows x n_cols) global matrix, rows partitioned by BlockPartition.
/// Output: this rank's column block (n_rows x local_cols).
la::RealMatrix row_block_to_col_block(Comm& comm,
                                      la::RealConstView local_rows,
                                      Index n_rows, Index n_cols);

/// Inverse conversion.
la::RealMatrix col_block_to_row_block(Comm& comm,
                                      la::RealConstView local_cols,
                                      Index n_rows, Index n_cols);

/// Communication-overlapped variant: the global column range is sliced
/// into `chunks` contiguous sub-exchanges, each posted as a nonblocking
/// alltoallv (Comm::i_alltoallv); slice s+1 is packed while slice s is in
/// flight, double-buffered. Pure data movement, so the result is bitwise
/// identical to row_block_to_col_block. chunks <= 1 degenerates to one
/// nonblocking round with nothing overlapped.
la::RealMatrix row_block_to_col_block_overlapped(Comm& comm,
                                                 la::RealConstView local_rows,
                                                 Index n_rows, Index n_cols,
                                                 Index chunks = 4);

/// Inverse conversion, same overlap scheme.
la::RealMatrix col_block_to_row_block_overlapped(Comm& comm,
                                                 la::RealConstView local_cols,
                                                 Index n_rows, Index n_cols,
                                                 Index chunks = 4);

/// Complex overloads of the overlapped exchanges (same core, same overlap
/// scheme); the distributed FFT's slab <-> pencil redistributions are
/// plain transposes of an (n0 x n1*n2) complex matrix.
la::ComplexMatrix row_block_to_col_block_overlapped(
    Comm& comm, la::ComplexConstView local_rows, Index n_rows, Index n_cols,
    Index chunks = 4);
la::ComplexMatrix col_block_to_row_block_overlapped(
    Comm& comm, la::ComplexConstView local_cols, Index n_rows, Index n_cols,
    Index chunks = 4);

}  // namespace lrt::par
