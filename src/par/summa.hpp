// SUMMA distributed matrix multiplication (van de Geijn & Watts).
//
// C = A B with all three matrices block-distributed over a prow x pcol
// process grid (rank r at grid position (r / pcol, r % pcol); contiguous
// blocks via BlockPartition in each dimension). For every panel of the
// contraction dimension, the owning column of ranks broadcasts its A
// panel along process rows, the owning row broadcasts its B panel along
// process columns, and every rank accumulates a local GEMM — the
// communication pattern behind ScaLAPACK's PDGEMM that the paper's
// ScaLAPACK steps rely on.
#pragma once

#include "la/blas.hpp"
#include "par/comm.hpp"
#include "par/layout.hpp"

namespace lrt::par {

/// 2-D process grid with row and column subcommunicators.
class ProcessGrid2D {
 public:
  /// Collective over `world`; prow * pcol must equal world.size().
  ProcessGrid2D(Comm& world, int prow, int pcol);

  int prow() const { return prow_; }
  int pcol() const { return pcol_; }
  int my_row() const { return my_row_; }
  int my_col() const { return my_col_; }

  Comm& row_comm() { return row_comm_; }  ///< ranks sharing my_row
  Comm& col_comm() { return col_comm_; }  ///< ranks sharing my_col

 private:
  int prow_, pcol_, my_row_, my_col_;
  Comm row_comm_;
  Comm col_comm_;
};

struct SummaOptions {
  Index panel = 64;  ///< max contraction-panel width
};

/// C_local = (A B)_local. `a_local` is this rank's (rows(m) x cols(k))
/// block, `b_local` its (rows(k) x cols(n)) block, where rows(d)/cols(d)
/// are the BlockPartition pieces of dimension d over prow/pcol. Returns
/// this rank's block of C (rows(m) x cols(n)).
la::RealMatrix summa_gemm(ProcessGrid2D& grid, la::RealConstView a_local,
                          la::RealConstView b_local, Index m, Index n,
                          Index k, const SummaOptions& options = {});

}  // namespace lrt::par
