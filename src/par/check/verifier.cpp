#include "par/check/verifier.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/log.hpp"

namespace lrt::par::check {

const char* to_string(CollKind kind) {
  switch (kind) {
    case CollKind::kBarrier: return "barrier";
    case CollKind::kBcast: return "bcast";
    case CollKind::kReduce: return "reduce";
    case CollKind::kAllreduce: return "allreduce";
    case CollKind::kAlltoall: return "alltoall";
    case CollKind::kAlltoallv: return "alltoallv";
    case CollKind::kAllgather: return "allgather";
    case CollKind::kAllgatherv: return "allgatherv";
    case CollKind::kGather: return "gather";
    case CollKind::kScatter: return "scatter";
    case CollKind::kSplit: return "split";
    case CollKind::kIAlltoallv: return "i_alltoallv";
    case CollKind::kIAllgatherv: return "i_allgatherv";
  }
  return "?";
}

std::string CollectiveRecord::describe() const {
  std::ostringstream os;
  os << to_string(kind) << "(comm_size=" << comm_size;
  if (root >= 0) os << ", root=" << root;
  if (reduce_op >= 0) os << ", op=" << reduce_op;
  os << ", dtype_size=" << dtype_size;
  if (count >= 0) os << ", count=" << count;
  auto print_vec = [&os](const char* name,
                         const std::vector<long long>& v) {
    os << ", " << name << "=[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i > 0) os << ",";
      os << v[i];
    }
    os << "]";
  };
  if (!send_counts.empty()) print_vec("send_counts", send_counts);
  if (!recv_counts.empty()) print_vec("recv_counts", recv_counts);
  os << ")";
  return os.str();
}

Options Options::from_env() {
  Options options;
  const char* enabled = std::getenv("LRT_CHECK");
  options.enabled =
      enabled != nullptr && *enabled != '\0' && std::string(enabled) != "0";
  if (const char* stall = std::getenv("LRT_CHECK_STALL_SECONDS")) {
    options.stall_seconds = std::strtod(stall, nullptr);
  }
  if (const char* leaks = std::getenv("LRT_CHECK_LEAKS")) {
    options.check_leaks = std::string(leaks) != "0";
  }
  return options;
}

Verifier::Verifier(int world_size, Options options)
    : world_size_(world_size),
      options_(options),
      blocked_(static_cast<std::size_t>(world_size)) {}

Verifier::~Verifier() { stop(); }

void Verifier::start(std::function<void()> poison) {
  poison_ = std::move(poison);
  if (options_.stall_seconds > 0 && !watchdog_.joinable()) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

void Verifier::stop() {
  if (!watchdog_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(watchdog_mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  watchdog_.join();
}

// ----- failure state ---------------------------------------------------------

bool Verifier::failed() const {
  std::lock_guard<std::mutex> lock(failure_mutex_);
  return failed_;
}

std::string Verifier::failure() const {
  std::lock_guard<std::mutex> lock(failure_mutex_);
  return failure_;
}

void Verifier::record_failure(const std::string& message) {
  {
    std::lock_guard<std::mutex> lock(failure_mutex_);
    if (!failed_) {
      failed_ = true;
      failure_ = message;
      log::error("par::check: " + message);
    }
  }
  // Wake ranks blocked in mailbox waits so the run unwinds instead of
  // hanging on the very bug we just diagnosed.
  if (poison_) poison_();
}

void Verifier::fail(const std::string& message) {
  record_failure(message);
  throw VerifierError(message);
}

// ----- collective consistency ------------------------------------------------

namespace {

/// The alltoallv contract: what rank i says it sends to rank j must be
/// exactly what rank j says it expects from rank i.
std::string check_alltoallv_matrix(
    const std::map<int, CollectiveRecord>& per_rank) {
  for (const auto& [src, src_rec] : per_rank) {
    for (const auto& [dst, dst_rec] : per_rank) {
      const long long sent =
          src_rec.send_counts[static_cast<std::size_t>(dst)];
      const long long expected =
          dst_rec.recv_counts[static_cast<std::size_t>(src)];
      if (sent != expected) {
        std::ostringstream os;
        os << "alltoallv count matrix inconsistent: rank " << src
           << " sends " << sent << " element(s) to rank " << dst
           << ", but rank " << dst << " expects " << expected
           << " element(s) from rank " << src;
        return os.str();
      }
    }
  }
  return {};
}

/// allgatherv requires every rank to pass the same counts vector.
std::string check_allgatherv_counts(
    const std::map<int, CollectiveRecord>& per_rank) {
  const auto& first = *per_rank.begin();
  for (const auto& [rank, rec] : per_rank) {
    if (rec.recv_counts != first.second.recv_counts) {
      std::ostringstream os;
      os << "allgatherv counts disagree: rank " << first.first << " passed "
         << first.second.describe() << " but rank " << rank << " passed "
         << rec.describe();
      return os.str();
    }
  }
  return {};
}

}  // namespace

void Verifier::on_collective(int world_rank, int group_rank,
                             long long context, long long seq,
                             const CollectiveRecord& record) {
  std::string error;
  {
    std::lock_guard<std::mutex> lock(ledger_mutex_);
    auto [it, inserted] =
        ledger_.try_emplace({context, seq}, PendingCollective{});
    PendingCollective& pending = it->second;
    if (inserted) {
      pending.expected = record;
      pending.first_world_rank = world_rank;
      pending.first_group_rank = group_rank;
    } else {
      const CollectiveRecord& expected = pending.expected;
      const bool uniform_match = expected.kind == record.kind &&
                                 expected.root == record.root &&
                                 expected.reduce_op == record.reduce_op &&
                                 expected.dtype_size == record.dtype_size &&
                                 expected.count == record.count &&
                                 expected.comm_size == record.comm_size;
      if (!uniform_match) {
        std::ostringstream os;
        os << "collective mismatch on communicator " << context
           << " (call #" << seq << "):\n  rank " << pending.first_group_rank
           << " (world " << pending.first_world_rank << ") called "
           << expected.describe() << "\n  rank " << group_rank << " (world "
           << world_rank << ") called " << record.describe();
        error = os.str();
      }
    }
    if (error.empty()) {
      pending.per_rank.emplace(group_rank, record);
      if (static_cast<int>(pending.per_rank.size()) == record.comm_size) {
        // All ranks arrived with matching uniform signatures; cross-check
        // the v-variant count vectors, then retire the ledger entry.
        if (record.kind == CollKind::kAlltoallv ||
            record.kind == CollKind::kIAlltoallv) {
          error = check_alltoallv_matrix(pending.per_rank);
        } else if (record.kind == CollKind::kAllgatherv ||
                   record.kind == CollKind::kIAllgatherv) {
          error = check_allgatherv_counts(pending.per_rank);
        }
        ledger_.erase(it);
      }
    }
  }
  if (!error.empty()) fail(error);
}

// ----- p2p validation --------------------------------------------------------

void Verifier::on_p2p(int world_rank, const char* op, int peer_group_rank,
                      int tag, std::size_t bytes, bool user_call) {
  if (tag < 0) {
    std::ostringstream os;
    os << op << " on world rank " << world_rank << " (peer "
       << peer_group_rank << ", " << bytes << " bytes) uses negative tag "
       << tag;
    fail(os.str());
  }
  // Tags at or above kUserTagLimit are reserved for the collective
  // algorithms; user p2p traffic there could be matched by a collective's
  // internal messages and corrupt it.
  constexpr int kUserTagLimit = 1 << 16;
  if (user_call && tag >= kUserTagLimit) {
    std::ostringstream os;
    os << op << " on world rank " << world_rank << " (peer "
       << peer_group_rank << ", " << bytes << " bytes) uses tag " << tag
       << " >= " << kUserTagLimit
       << ", which is reserved for internal collective traffic";
    fail(os.str());
  }
}

// ----- deadlock watchdog -----------------------------------------------------

Verifier::BlockScope::BlockScope(Verifier* verifier, int world_rank,
                                 std::string what)
    : verifier_(verifier), world_rank_(world_rank) {
  if (verifier_) verifier_->set_blocked(world_rank_, std::move(what));
}

Verifier::BlockScope::~BlockScope() {
  if (verifier_) verifier_->clear_blocked(world_rank_);
}

void Verifier::set_blocked(int world_rank, std::string what) {
  std::lock_guard<std::mutex> lock(blocked_mutex_);
  BlockedState& state = blocked_[static_cast<std::size_t>(world_rank)];
  state.what = std::move(what);
  state.since = std::chrono::steady_clock::now();
}

void Verifier::clear_blocked(int world_rank) {
  std::lock_guard<std::mutex> lock(blocked_mutex_);
  blocked_[static_cast<std::size_t>(world_rank)].what.clear();
}

std::string Verifier::dump_rank_states(
    std::chrono::steady_clock::time_point now) {
  std::ostringstream os;
  std::lock_guard<std::mutex> lock(blocked_mutex_);
  for (int r = 0; r < world_size_; ++r) {
    const BlockedState& state = blocked_[static_cast<std::size_t>(r)];
    os << "\n  rank " << r << ": ";
    if (state.what.empty()) {
      os << "running (not in a blocking communication call)";
    } else {
      const double blocked_for =
          std::chrono::duration<double>(now - state.since).count();
      os << "blocked " << blocked_for << "s in " << state.what;
    }
  }
  return os.str();
}

void Verifier::watchdog_loop() {
  using Clock = std::chrono::steady_clock;
  const double poll_seconds =
      std::clamp(options_.stall_seconds / 4.0, 0.01, 1.0);
  std::unique_lock<std::mutex> lock(watchdog_mutex_);
  for (;;) {
    watchdog_cv_.wait_for(
        lock, std::chrono::duration<double>(poll_seconds),
        [this] { return watchdog_stop_; });
    if (watchdog_stop_) return;

    const auto now = Clock::now();
    bool stalled = false;
    {
      std::lock_guard<std::mutex> blocked_lock(blocked_mutex_);
      for (const BlockedState& state : blocked_) {
        if (state.what.empty()) continue;
        const double blocked_for =
            std::chrono::duration<double>(now - state.since).count();
        if (blocked_for > options_.stall_seconds) {
          stalled = true;
          break;
        }
      }
    }
    if (stalled) {
      std::ostringstream os;
      os << "deadlock watchdog: a rank has been blocked for more than "
         << options_.stall_seconds << "s; per-rank state:"
         << dump_rank_states(now);
      record_failure(os.str());
      return;
    }
  }
}

// ----- nonblocking handle tracking -------------------------------------------

void Verifier::on_handle_issued(int world_rank, const char* kind,
                                long long context, long long seq) {
  std::ostringstream os;
  os << kind << " handle (communicator " << context << ", call #" << seq
     << ") issued by world rank " << world_rank;
  std::lock_guard<std::mutex> lock(handle_mutex_);
  open_handles_.emplace(std::make_tuple(context, seq, world_rank), os.str());
}

void Verifier::on_handle_completed(int world_rank, long long context,
                                   long long seq) {
  std::lock_guard<std::mutex> lock(handle_mutex_);
  open_handles_.erase(std::make_tuple(context, seq, world_rank));
}

void Verifier::finish_handle_check() {
  std::lock_guard<std::mutex> lock(handle_mutex_);
  if (open_handles_.empty()) return;
  std::ostringstream os;
  os << "nonblocking handle leak: " << open_handles_.size()
     << " handle(s) were issued but never waited:";
  for (const auto& [key, what] : open_handles_) os << "\n  " << what;
  record_failure(os.str());
}

// ----- message-leak detection ------------------------------------------------

void Verifier::on_leftover_message(int dst_world_rank, int src, int tag,
                                   std::size_t bytes, long long context) {
  std::ostringstream os;
  os << "message from rank " << src << " to world rank " << dst_world_rank
     << " (tag " << tag << ", " << bytes << " bytes, communicator "
     << context << ") was sent but never received";
  std::lock_guard<std::mutex> lock(leak_mutex_);
  leaks_.push_back(os.str());
}

void Verifier::finish_leak_check() {
  std::lock_guard<std::mutex> lock(leak_mutex_);
  if (leaks_.empty()) return;
  std::ostringstream os;
  os << "message leak: " << leaks_.size()
     << " message(s) left in mailboxes after all ranks returned:";
  for (const std::string& leak : leaks_) os << "\n  " << leak;
  record_failure(os.str());
}

}  // namespace lrt::par::check
