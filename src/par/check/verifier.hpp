// MUST-style runtime correctness checker for the thread-rank runtime.
//
// Real MPI codes lean on tools like MUST to catch collective mismatches,
// message-size errors, and deadlocks at run time. Our ranks are threads
// (par/runtime.hpp), so those bug classes turn into shared-memory data
// corruption or a silently hung process — worse than on MPI, not better.
// This subsystem provides the equivalent safety net:
//
//  * Collective consistency: every collective call posts a record
//    (per-communicator sequence number, op kind, root, dtype size,
//    counts) to a shared ledger. The first rank to reach sequence number
//    s on a communicator defines the expected signature; any rank that
//    posts a different one aborts the run with a per-rank diff. For
//    alltoallv the full count matrix is cross-checked (rank i must send
//    to rank j exactly what j expects from i); for allgatherv all ranks
//    must agree on the counts vector.
//  * P2p validation: send/recv outside a collective must use a
//    non-negative tag below kUserTagLimit (internal tags are reserved
//    for collective algorithms); violations abort with the offending
//    call. Payload-size mismatches on recv already throw in Comm.
//  * Deadlock watchdog: a monitor thread wakes periodically; if any rank
//    has been blocked in a receive for longer than `stall_seconds` it
//    dumps every rank's current blocked call site (or "running") and
//    poisons the mailboxes so the run aborts instead of hanging.
//  * Message-leak detection: after a clean run, leftover mailbox
//    messages (sends that were never received) fail the run with their
//    (src, dst, tag, bytes).
//
// The checker is compiled in always and enabled per run: either
// explicitly via par::run(n, body, options) or ambiently via environment
// variables (read by check::Options::from_env):
//
//   LRT_CHECK=1                  enable the verifier
//   LRT_CHECK_STALL_SECONDS=30   watchdog threshold (0 disables watchdog)
//   LRT_CHECK_LEAKS=0            disable end-of-run leak detection
//
// When disabled (the default) the hooks reduce to a null-pointer test on
// the hot paths. See docs/CONCURRENCY.md for usage and output format.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/config.hpp"
#include "common/error.hpp"

namespace lrt::par::check {

/// Thrown (on the caller of par::run) when the verifier detects a
/// correctness violation: collective mismatch, bad tag, stall, or leaked
/// messages. The what() string carries the full per-rank report.
class VerifierError : public Error {
 public:
  explicit VerifierError(const std::string& what) : Error(what) {}
};

enum class CollKind {
  kBarrier,
  kBcast,
  kReduce,
  kAllreduce,
  kAlltoall,
  kAlltoallv,
  kAllgather,
  kAllgatherv,
  kGather,
  kScatter,
  kSplit,
  kIAlltoallv,
  kIAllgatherv,
};

const char* to_string(CollKind kind);

/// Signature of one collective call as seen by one rank. Uniform fields
/// (kind/root/dtype_size/count/comm_size) must match across ranks
/// exactly; v-variant count vectors are cross-checked once every rank of
/// the communicator has posted.
struct CollectiveRecord {
  CollKind kind = CollKind::kBarrier;
  int root = -1;               ///< group rank; -1 for rootless collectives
  int reduce_op = -1;          ///< static_cast<int>(ReduceOp); -1 if n/a
  std::size_t dtype_size = 0;  ///< sizeof(element type)
  long long count = 0;         ///< uniform per-rank element count; -1 for v
  int comm_size = 0;
  std::vector<long long> send_counts;  ///< v-variants only
  std::vector<long long> recv_counts;  ///< v-variants only

  std::string describe() const;
};

struct Options {
  bool enabled = false;
  /// Watchdog threshold in seconds; <= 0 disables the watchdog.
  double stall_seconds = 60.0;
  /// Fail the run if mailboxes still hold messages after a clean finish.
  bool check_leaks = true;

  /// Reads LRT_CHECK / LRT_CHECK_STALL_SECONDS / LRT_CHECK_LEAKS.
  static Options from_env();
};

/// One verifier instance per par::run, shared by all rank threads. All
/// methods are thread-safe; rank threads only ever touch their own
/// blocked-state slot plus the shared collective ledger (mutex-guarded).
class Verifier {
 public:
  Verifier(int world_size, Options options);
  ~Verifier();

  const Options& options() const { return options_; }

  /// Installs the callback used to wake blocked ranks on failure
  /// (Runtime::poison_all) and starts the watchdog thread if enabled.
  void start(std::function<void()> poison);

  /// Joins the watchdog. Idempotent; called by run() after the ranks.
  void stop();

  // ----- collective consistency ---------------------------------------------

  /// Posts rank `group_rank`'s signature for collective number `seq` on
  /// communicator `context`. Throws VerifierError (after waking all other
  /// ranks) on mismatch with a previously posted signature.
  void on_collective(int world_rank, int group_rank, long long context,
                     long long seq, const CollectiveRecord& record);

  // ----- p2p validation -----------------------------------------------------

  /// Validates a point-to-point call. `user_call` is true when issued
  /// outside any collective (user code), which restricts the tag range.
  void on_p2p(int world_rank, const char* op, int peer_group_rank, int tag,
              std::size_t bytes, bool user_call);

  // ----- deadlock watchdog --------------------------------------------------

  /// Marks `world_rank` as blocked with a human-readable call-site
  /// description; cleared on destruction. Used around mailbox waits.
  class BlockScope {
   public:
    BlockScope(Verifier* verifier, int world_rank, std::string what);
    ~BlockScope();

    BlockScope(const BlockScope&) = delete;
    BlockScope& operator=(const BlockScope&) = delete;

   private:
    Verifier* verifier_;
    int world_rank_;
  };

  // ----- message-leak detection ---------------------------------------------

  /// Reports a message still sitting in `dst_world_rank`'s mailbox after
  /// all ranks returned. Accumulated into the final leak report.
  void on_leftover_message(int dst_world_rank, int src, int tag,
                           std::size_t bytes, long long context);

  /// Converts accumulated leftovers into a failure. Call after all
  /// on_leftover_message calls.
  void finish_leak_check();

  // ----- nonblocking handle tracking ----------------------------------------

  /// Records that `world_rank` issued a nonblocking collective (call `seq`
  /// on communicator `context`). Matched against on_handle_completed.
  void on_handle_issued(int world_rank, const char* kind, long long context,
                        long long seq);

  /// Marks the handle issued as (context, seq) by `world_rank` completed
  /// (its wait() finished draining receives).
  void on_handle_completed(int world_rank, long long context, long long seq);

  /// Fails the run if any issued handle was never waited. Call after all
  /// ranks returned, before the leak sweep (the un-received messages of an
  /// abandoned handle also show up there; this check names the handle).
  void finish_handle_check();

  // ----- failure state ------------------------------------------------------

  bool failed() const;
  std::string failure() const;

 private:
  struct BlockedState {
    std::string what;                                  ///< empty = running
    std::chrono::steady_clock::time_point since{};
  };

  struct PendingCollective {
    CollectiveRecord expected;
    int first_world_rank = -1;
    int first_group_rank = -1;
    /// group rank -> record, for v-variant cross-checks.
    std::map<int, CollectiveRecord> per_rank;
  };

  void set_blocked(int world_rank, std::string what);
  void clear_blocked(int world_rank);

  /// Records the first failure, wakes all ranks. Does not throw.
  void record_failure(const std::string& message);

  /// record_failure + throw VerifierError (rank-thread call sites).
  [[noreturn]] void fail(const std::string& message);

  void watchdog_loop();
  std::string dump_rank_states(std::chrono::steady_clock::time_point now);

  const int world_size_;
  const Options options_;

  std::function<void()> poison_;

  mutable std::mutex failure_mutex_;
  std::string failure_;
  bool failed_ = false;

  std::mutex ledger_mutex_;
  std::map<std::pair<long long, long long>, PendingCollective> ledger_;

  std::mutex blocked_mutex_;
  std::vector<BlockedState> blocked_;

  std::mutex leak_mutex_;
  std::vector<std::string> leaks_;

  std::mutex handle_mutex_;
  /// (context, seq, world rank) -> description of the issued handle; an
  /// entry is erased when its wait() completes.
  std::map<std::tuple<long long, long long, int>, std::string> open_handles_;

  std::thread watchdog_;
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
};

}  // namespace lrt::par::check
