// The scope-aware passes: omp-race, hot-path-purity, counter-registry.
//
// These build on analyze/scope.hpp (block extents, declaration sites,
// parsed omp directives) instead of the flat token scans in passes.cpp.
// All three err toward exemption — docs/STATIC_ANALYSIS.md lists the
// false-negative shapes — because a static race/purity gate that cries
// wolf gets baselined into uselessness.
#include <cstddef>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/callgraph.hpp"
#include "analyze/passes.hpp"
#include "analyze/registry_gen.hpp"
#include "analyze/scope.hpp"

namespace lrt::analyze {

// Shared write/purity vocabulary (declared in passes.hpp): the call-graph
// summary builder (callgraph.cpp) detects the same token shapes inside
// callees that the scoped passes detect inside regions, so the sets live
// in one place.

const std::set<std::string>& assign_ops() {
  static const std::set<std::string> kOps = {
      "=",  "+=", "-=", "*=",  "/=", "%=",
      "&=", "|=", "^=", "<<=", ">>="};
  return kOps;
}

const std::set<std::string>& mutating_methods() {
  static const std::set<std::string> kNames = {
      "push_back", "emplace_back", "resize", "reserve", "insert",
      "erase",     "clear",        "assign", "pop_back", "emplace"};
  return kNames;
}

const std::set<std::string>& heap_fns() {
  static const std::set<std::string> kNames = {
      "malloc", "calloc", "realloc", "free", "aligned_alloc",
      "posix_memalign"};
  return kNames;
}

const std::set<std::string>& lock_types() {
  static const std::set<std::string> kNames = {
      "mutex",       "recursive_mutex", "shared_mutex",
      "lock_guard",  "unique_lock",     "scoped_lock",
      "shared_lock", "condition_variable", "condition_variable_any"};
  return kNames;
}

const std::set<std::string>& io_fns() {
  static const std::set<std::string> kNames = {
      "printf", "fprintf", "puts",   "fputs",  "fputc",  "putchar",
      "fwrite", "fread",   "fopen",  "fclose", "fflush", "fscanf",
      "scanf",  "fgets",   "getchar"};
  return kNames;
}

const std::set<std::string>& io_streams() {
  static const std::set<std::string> kNames = {
      "cout", "cerr", "clog", "ofstream", "ifstream", "fstream"};
  return kNames;
}

namespace {

using Tokens = std::vector<Token>;

bool is_punct(const Token& tok, const char* text) {
  return tok.kind == TokKind::kPunct && tok.text == text;
}

bool is_ident(const Token& tok, const char* text) {
  return tok.kind == TokKind::kIdentifier && tok.text == text;
}

bool in_dir(const std::string& path, const std::string& dir) {
  return path.compare(0, dir.size() + 1, dir + "/") == 0;
}

void add_finding(const PassContext& ctx, std::string pass, std::string file,
                 int line, std::string message) {
  Finding f;
  f.pass = std::move(pass);
  f.file = std::move(file);
  f.line = line;
  f.message = std::move(message);
  ctx.findings->push_back(std::move(f));
}

// ----- omp-race ---------------------------------------------------------------

bool checkable_region(const OmpDirective& d) {
  return (d.has_kind("parallel") || d.has_kind("for") || d.has_kind("simd")) &&
         !d.has_kind("declare") && d.region.end > d.region.begin;
}

bool guard_region(const OmpDirective& d) {
  return d.has_kind("atomic") || d.has_kind("critical") ||
         d.has_kind("single") || d.has_kind("master") ||
         d.has_kind("masked") || d.has_kind("ordered");
}

/// Exempts identifiers ASSIGNED (not declared) in a for-init directly
/// after an omp looping construct: the spec privatizes the iteration
/// variable of the associated loop even without a private clause.
void exempt_for_init_vars(const Tokens& t, const OmpDirective& d,
                          std::set<std::string>* exempt) {
  std::size_t i = d.region.begin;
  if (i >= t.size() || !is_ident(t[i], "for") || i + 1 >= t.size() ||
      !is_punct(t[i + 1], "(")) {
    return;
  }
  for (std::size_t j = i + 2; j < t.size() && !is_punct(t[j], ";"); ++j) {
    if (t[j].kind == TokKind::kIdentifier && j + 1 < t.size() &&
        is_punct(t[j + 1], "=")) {
      exempt->insert(t[j].text);
    }
  }
}

/// One region's shared-write scan state.
struct RegionScan {
  TokenRange region;
  std::set<std::string> exempt;      ///< privatized + declared-in-region
  std::vector<TokenRange> skips;     ///< atomic/critical/... sub-regions
  std::vector<TokenRange> extents;   ///< directive token extents
};

bool in_ranges(const std::vector<TokenRange>& ranges, std::size_t i,
               std::size_t* resume) {
  for (const TokenRange& r : ranges) {
    if (r.contains(i)) {
      *resume = r.end;
      return true;
    }
  }
  return false;
}

/// A subscript/call group in the lvalue chain mentions a privatized name
/// or the thread id: per-thread/per-iteration indexing, assumed disjoint.
bool index_exempt(const Tokens& t, const Lvalue& lv,
                  const std::set<std::string>& exempt) {
  for (const TokenRange& g : lv.groups) {
    for (std::size_t j = g.begin; j < g.end; ++j) {
      if (t[j].kind != TokKind::kIdentifier) continue;
      if (exempt.count(t[j].text) != 0 ||
          t[j].text == "omp_get_thread_num") {
        return true;
      }
    }
  }
  return false;
}

/// `NAME = ORIGIN.data()` assignments in [begin, end): NAME aliases the
/// storage of ORIGIN, so a write through NAME is a write to ORIGIN.
std::map<std::string, std::string> build_alias_map(const Tokens& t,
                                                   std::size_t begin,
                                                   std::size_t end) {
  std::map<std::string, std::string> alias;
  for (std::size_t w = begin + 2; w + 2 < end; ++w) {
    if (!is_ident(t[w], "data") ||
        !(is_punct(t[w - 1], ".") || is_punct(t[w - 1], "->")) ||
        !is_punct(t[w + 1], "(") || !is_punct(t[w + 2], ")")) {
      continue;
    }
    const Lvalue origin = walk_lvalue_back(t, w - 2, begin);
    if (!origin.ok || origin.chain_begin < begin + 2) continue;
    if (!is_punct(t[origin.chain_begin - 1], "=")) continue;
    const Token& named = t[origin.chain_begin - 2];
    if (named.kind != TokKind::kIdentifier) continue;
    if (named.text == origin.base) continue;
    alias[named.text] = origin.base;
  }
  return alias;
}

/// Final origin of `name` through the alias map; empty when `name` is not
/// an alias. Visited guard: `a = b.data(); b = a.data();` is legal C++.
std::string resolve_alias(const std::map<std::string, std::string>& alias,
                          const std::string& name) {
  std::set<std::string> visited;
  std::string cur = name;
  while (visited.insert(cur).second) {
    const auto it = alias.find(cur);
    if (it == alias.end()) break;
    cur = it->second;
  }
  return cur == name ? std::string{} : cur;
}

/// The argument as a plain forwarded lvalue (`name`, `&name`, `*name`);
/// empty otherwise. Mirrors the propagation rule in callgraph.cpp.
std::string plain_arg(const Tokens& t, const TokenRange& r) {
  if (r.end == r.begin + 1 && t[r.begin].kind == TokKind::kIdentifier) {
    return t[r.begin].text;
  }
  if (r.end == r.begin + 2 &&
      (is_punct(t[r.begin], "&") || is_punct(t[r.begin], "*")) &&
      t[r.begin + 1].kind == TokKind::kIdentifier) {
    return t[r.begin + 1].text;
  }
  return {};
}

std::string region_hint() {
  return " (make it private/reduction, declare it inside the region, "
         "index it per-thread, or guard with omp atomic/critical; "
         "suppress with `lrt-analyze: allow(omp-race)` if provably safe)";
}

void omp_race_scan(const PassContext& ctx, const LexedFile& file,
                   std::size_t file_index) {
  const Tokens& t = file.tokens;
  const std::vector<OmpDirective> dirs = parse_omp_directives(file);
  if (dirs.empty()) return;
  const std::vector<TokenRange> fns = function_bodies(t);

  std::size_t scanned_until = 0;
  for (std::size_t di = 0; di < dirs.size(); ++di) {
    const OmpDirective& d = dirs[di];
    if (!checkable_region(d) || d.begin < scanned_until) continue;

    RegionScan rs;
    rs.region = d.region;
    rs.exempt = d.privatized;
    rs.extents.push_back(TokenRange{d.begin, d.end});
    exempt_for_init_vars(t, d, &rs.exempt);
    // Alias assignments anywhere in the enclosing function up to the
    // region's end: `double* p = out.data();` saved before the pragma
    // still aliases `out` inside the region.
    std::size_t alias_begin = rs.region.begin;
    for (const TokenRange& fn : fns) {
      if (fn.contains(d.begin)) {
        alias_begin = fn.begin;
        break;
      }
    }
    const std::map<std::string, std::string> alias =
        build_alias_map(t, alias_begin, rs.region.end);
    for (std::size_t dj = di + 1;
         dj < dirs.size() && dirs[dj].begin < rs.region.end; ++dj) {
      const OmpDirective& n = dirs[dj];
      rs.extents.push_back(TokenRange{n.begin, n.end});
      rs.exempt.insert(n.privatized.begin(), n.privatized.end());
      exempt_for_init_vars(t, n, &rs.exempt);
      if (guard_region(n) && n.region.end > n.region.begin) {
        rs.skips.push_back(n.region);
      }
    }
    const std::set<std::string> decls =
        collect_declarations(t, rs.region.begin, rs.region.end);
    rs.exempt.insert(decls.begin(), decls.end());

    for (std::size_t w = rs.region.begin; w < rs.region.end; ++w) {
      std::size_t resume = 0;
      if (in_ranges(rs.extents, w, &resume) ||
          in_ranges(rs.skips, w, &resume)) {
        w = resume - 1;
        continue;
      }
      const Token& tok = t[w];
      Lvalue lv;
      std::string what;
      if (tok.kind == TokKind::kPunct && assign_ops().count(tok.text) != 0) {
        if (w == rs.region.begin) continue;
        if (is_ident(t[w - 1], "operator")) continue;
        lv = walk_lvalue_back(t, w - 1, rs.region.begin);
        what = "write ('" + tok.text + "') to";
      } else if (is_punct(tok, "++") || is_punct(tok, "--")) {
        if (w > rs.region.begin &&
            (t[w - 1].kind == TokKind::kIdentifier ||
             is_punct(t[w - 1], "]") || is_punct(t[w - 1], ")"))) {
          lv = walk_lvalue_back(t, w - 1, rs.region.begin);
        } else if (w + 1 < rs.region.end &&
                   t[w + 1].kind == TokKind::kIdentifier) {
          lv.ok = true;
          lv.base = t[w + 1].text;
          lv.chain_begin = w + 1;
          lv.chain_end = w + 2;
        }
        what = "increment ('" + tok.text + "') of";
      } else if (tok.kind == TokKind::kIdentifier &&
                 mutating_methods().count(tok.text) != 0 &&
                 w > rs.region.begin + 1 &&
                 (is_punct(t[w - 1], ".") || is_punct(t[w - 1], "->")) &&
                 w + 1 < rs.region.end && is_punct(t[w + 1], "(")) {
        lv = walk_lvalue_back(t, w - 2, rs.region.begin);
        what = "mutating call '." + tok.text + "' on";
      } else if (is_punct(tok, "&") && w > rs.region.begin &&
                 (is_punct(t[w - 1], "(") || is_punct(t[w - 1], ",")) &&
                 w + 1 < rs.region.end &&
                 t[w + 1].kind == TokKind::kIdentifier) {
        lv.ok = true;
        lv.base = t[w + 1].text;
        lv.chain_begin = w + 1;
        lv.chain_end = w + 2;
        what = "address of";
      } else if (ctx.graph != nullptr && tok.kind == TokKind::kIdentifier &&
                 w + 1 < rs.region.end && is_punct(t[w + 1], "(") &&
                 !(w > rs.region.begin && (is_punct(t[w - 1], ".") ||
                                           is_punct(t[w - 1], "->")))) {
        // A call that forwards a shared variable to a callee writing its
        // by-ref parameter races exactly like an in-region assignment.
        const std::size_t callee = ctx.graph->resolve_call(t, w, file_index);
        if (callee != kNoFunction) {
          const FunctionInfo& cf = ctx.graph->functions()[callee];
          if (!cf.writes.empty()) {
            const std::vector<TokenRange> args = CallGraph::call_args(t, w);
            for (const auto& [k, pw] : cf.writes) {
              (void)pw;
              if (k >= args.size()) continue;
              const std::string arg = plain_arg(t, args[k]);
              if (arg.empty()) continue;
              std::string shown = arg;
              std::string note;
              if (arg == "this" || rs.exempt.count(arg) != 0) {
                const std::string origin = resolve_alias(alias, arg);
                if (origin.empty() || origin == "this" ||
                    rs.exempt.count(origin) != 0) {
                  continue;
                }
                shown = origin;
                note = " forwarded as alias '" + arg + "'";
              }
              add_finding(
                  ctx, "omp-race", file.path, tok.line,
                  "call to '" + tok.text + "' writes shared '" + shown +
                      "'" + note + " through parameter '" +
                      cf.params[k].name + "' (" +
                      ctx.graph->write_chain(callee, k) +
                      ") inside an omp parallel region" + region_hint());
            }
          }
        }
        continue;
      } else {
        continue;
      }
      if (!lv.ok || index_exempt(t, lv, rs.exempt)) continue;
      if (lv.base != "this" && rs.exempt.count(lv.base) == 0) {
        add_finding(ctx, "omp-race", file.path, tok.line,
                    what + " shared '" + lv.base +
                        "' inside an omp parallel region" + region_hint());
        continue;
      }
      // The base is exempt, but a region-local pointer saved from
      // `.data()` is a window onto shared storage, not private state.
      // Only dereferencing writes count (`p[0] = x`, `*p += y`) —
      // reassigning or advancing the pointer itself touches nothing
      // shared, and the saving declaration must not flag itself.
      bool deref = !lv.groups.empty();
      if (!deref && lv.chain_begin > rs.region.begin &&
          is_punct(t[lv.chain_begin - 1], "*")) {
        // `*p = x` dereferences; `Real* p = x.data()` declares. A star
        // preceded by a type-ish token (identifier, '>', ')', ']') is
        // part of a declarator, not a dereference.
        const std::size_t before = lv.chain_begin - 1;
        deref = before == rs.region.begin ||
                !(t[before - 1].kind == TokKind::kIdentifier ||
                  is_punct(t[before - 1], ">") ||
                  is_punct(t[before - 1], ")") ||
                  is_punct(t[before - 1], "]"));
      }
      if (!deref) continue;
      const std::string origin = resolve_alias(alias, lv.base);
      if (!origin.empty() && origin != "this" &&
          rs.exempt.count(origin) == 0) {
        add_finding(ctx, "omp-race", file.path, tok.line,
                    what + " '" + lv.base + "', an alias of shared '" +
                        origin + "' (saved from .data()), inside an omp "
                        "parallel region" + region_hint());
      }
    }
    scanned_until = rs.region.end;
  }
}

// ----- hot-path-purity --------------------------------------------------------

const std::set<std::string>& growth_methods() {
  static const std::set<std::string> kNames = {"push_back", "emplace_back",
                                               "resize"};
  return kNames;
}

std::string purity_hint() {
  return " (docs/PERFORMANCE.md hot-path rules; hoist it out of the hot "
         "path or suppress with `lrt-analyze: allow(hot-path-purity)`)";
}

void purity_scan(const PassContext& ctx, const LexedFile& file,
                 std::size_t file_index) {
  if (!in_dir(file.path, "src")) return;
  const Tokens& t = file.tokens;
  const bool hot_tu = ctx.config->hot_files.count(file.path) != 0;
  const std::vector<OmpDirective> dirs = parse_omp_directives(file);
  if (!hot_tu && dirs.empty()) return;

  // Regions with their declaration sets, for the per-thread-scratch
  // exemption (a vector declared inside the parallel region may grow).
  std::vector<std::pair<TokenRange, std::set<std::string>>> regions;
  for (const OmpDirective& d : dirs) {
    if (d.region.end > d.region.begin) {
      regions.emplace_back(
          d.region, collect_declarations(t, d.region.begin, d.region.end));
    }
  }

  std::vector<TokenRange> checked;
  for (const TokenRange& fn : function_bodies(t)) {
    if (hot_tu) {
      checked.push_back(fn);
      continue;
    }
    for (const OmpDirective& d : dirs) {
      if (fn.contains(d.begin)) {
        checked.push_back(fn);
        break;
      }
    }
  }

  for (const TokenRange& fn : checked) {
    // First `.reserve(` site per object chain in this function.
    std::map<std::string, std::size_t> reserved_at;
    for (std::size_t w = fn.begin + 2; w + 1 < fn.end; ++w) {
      if (!is_ident(t[w], "reserve") ||
          !(is_punct(t[w - 1], ".") || is_punct(t[w - 1], "->")) ||
          !is_punct(t[w + 1], "(")) {
        continue;
      }
      const Lvalue lv = walk_lvalue_back(t, w - 2, fn.begin);
      if (!lv.ok) continue;
      const std::string key = chain_key(t, lv);
      if (reserved_at.count(key) == 0) reserved_at[key] = w;
    }
    const std::vector<TokenRange> loops = loop_ranges(t, fn.begin, fn.end);

    for (std::size_t w = fn.begin; w < fn.end; ++w) {
      const Token& tok = t[w];
      if (tok.kind != TokKind::kIdentifier) continue;
      const bool member_call =
          w > fn.begin &&
          (is_punct(t[w - 1], ".") || is_punct(t[w - 1], "->"));
      const bool called = w + 1 < fn.end && is_punct(t[w + 1], "(");

      if (tok.text == "new") {
        add_finding(ctx, "hot-path-purity", file.path, tok.line,
                    "heap allocation (new) on a hot path" + purity_hint());
        continue;
      }
      if (heap_fns().count(tok.text) != 0 && called && !member_call) {
        add_finding(ctx, "hot-path-purity", file.path, tok.line,
                    "C heap call '" + tok.text + "' on a hot path" +
                        purity_hint());
        continue;
      }
      if (lock_types().count(tok.text) != 0 && w > fn.begin &&
          is_punct(t[w - 1], "::")) {
        add_finding(ctx, "hot-path-purity", file.path, tok.line,
                    "lock/synchronization type 'std::" + tok.text +
                        "' on a hot path" + purity_hint());
        continue;
      }
      if ((tok.text == "lock" || tok.text == "unlock" ||
           tok.text == "try_lock") &&
          member_call && called) {
        add_finding(ctx, "hot-path-purity", file.path, tok.line,
                    "explicit '." + tok.text + "()' on a hot path" +
                        purity_hint());
        continue;
      }
      if (io_fns().count(tok.text) != 0 && called && !member_call) {
        add_finding(ctx, "hot-path-purity", file.path, tok.line,
                    "I/O call '" + tok.text + "' on a hot path" +
                        purity_hint());
        continue;
      }
      if (io_streams().count(tok.text) != 0 && w > fn.begin &&
          is_punct(t[w - 1], "::")) {
        add_finding(ctx, "hot-path-purity", file.path, tok.line,
                    "stream I/O 'std::" + tok.text + "' on a hot path" +
                        purity_hint());
        continue;
      }
      if (growth_methods().count(tok.text) != 0 && member_call && called) {
        bool in_loop = false;
        for (const TokenRange& l : loops) in_loop = in_loop || l.contains(w);
        const std::pair<TokenRange, std::set<std::string>>* region = nullptr;
        for (const auto& r : regions) {
          if (r.first.contains(w)) {
            region = &r;
            break;
          }
        }
        if (!in_loop && region == nullptr) continue;  // setup-time growth
        const Lvalue lv = walk_lvalue_back(t, w - 2, fn.begin);
        if (!lv.ok) continue;
        // Per-thread scratch declared inside the region may grow.
        if (region != nullptr && region->second.count(lv.base) != 0) {
          continue;
        }
        const auto it = reserved_at.find(chain_key(t, lv));
        if (it != reserved_at.end() && it->second < w) continue;
        add_finding(ctx, "hot-path-purity", file.path, tok.line,
                    "'." + tok.text + "' on '" + lv.base +
                        "' inside a loop without a prior reserve()" +
                        purity_hint());
        continue;
      }
      // Transitive: a resolvable call whose callee (through any depth)
      // allocates, locks, or does I/O, sitting inside a hot-TU loop or an
      // omp region. Setup-time calls at function scope (obs counters,
      // spans) stay exempt — the impurity has to be *in the iteration*.
      if (ctx.graph != nullptr && called && !member_call) {
        bool in_loop = false;
        for (const TokenRange& l : loops) in_loop = in_loop || l.contains(w);
        bool in_region = false;
        for (const auto& r : regions) {
          in_region = in_region || r.first.contains(w);
        }
        if (!((hot_tu && in_loop) || in_region)) continue;
        const std::size_t callee = ctx.graph->resolve_call(t, w, file_index);
        if (callee == kNoFunction) continue;
        const FunctionInfo& cf = ctx.graph->functions()[callee];
        const struct {
          Fact FunctionInfo::*fact;
          const char* label;
        } kChecks[] = {
            {&FunctionInfo::allocates, "allocates ('"},
            {&FunctionInfo::locks, "locks ('"},
            {&FunctionInfo::does_io, "does I/O ('"},
        };
        for (const auto& c : kChecks) {
          const Fact& fact = cf.*(c.fact);
          if (!fact.holds) continue;
          add_finding(ctx, "hot-path-purity", file.path, tok.line,
                      "call to '" + tok.text + "' " + c.label + fact.what +
                          "' via " +
                          ctx.graph->fact_chain(callee, c.fact) +
                          ") on a hot path" + purity_hint());
        }
      }
    }
  }
}

// ----- counter-registry -------------------------------------------------------

/// Counter names feed bench reports and CI gates from src/ and bench/;
/// tests exercise the counter registry itself with synthetic names.
bool counter_checked_file(const std::string& path) {
  return in_dir(path, "src") || in_dir(path, "bench");
}

}  // namespace

void run_omp_race(const PassContext& ctx) {
  for (std::size_t i = 0; i < ctx.files->size(); ++i) {
    const LexedFile& file = (*ctx.files)[i];
    if (in_dir(file.path, "tests")) continue;
    omp_race_scan(ctx, file, i);
  }
}

void run_hot_path_purity(const PassContext& ctx) {
  for (std::size_t i = 0; i < ctx.files->size(); ++i) {
    purity_scan(ctx, (*ctx.files)[i], i);
  }
}

void run_counter_registry(const PassContext& ctx) {
  if (ctx.config->counter_registry.empty()) {
    add_finding(ctx, "counter-registry", "src/obs/counters.def", 1,
                "counter registry is empty or missing; the "
                "counter-registry pass has nothing to check against");
    return;
  }
  for (const LexedFile& file : *ctx.files) {
    if (!counter_checked_file(file.path)) continue;
    const Tokens& t = file.tokens;
    for (std::size_t i = 2; i + 2 < t.size(); ++i) {
      if (!is_ident(t[i], "counter") || !is_punct(t[i - 1], "::") ||
          !is_ident(t[i - 2], "obs") || !is_punct(t[i + 1], "(")) {
        continue;
      }
      const Token& arg = t[i + 2];
      // Non-literal or concatenated names are built at runtime; the
      // registry pass cannot see them (documented false negative).
      if (arg.kind != TokKind::kString) continue;
      if (i + 3 < t.size() && is_punct(t[i + 3], "+")) continue;
      if (ctx.config->counter_registry.count(arg.text) != 0) continue;
      add_finding(ctx, "counter-registry", file.path, arg.line,
                  "obs::counter name \"" + arg.text +
                      "\" is not registered in src/obs/counters.def "
                      "(add it there and run `lrt-analyze gen-counters "
                      "--write`, or use a registered name)");
    }
  }
}

void run_counter_registry_sync(const PassContext& ctx) {
  const std::string def_path = ctx.config->root + "/src/obs/counters.def";
  const std::string header_path =
      ctx.config->root + "/src/obs/counter_registry.hpp";
  std::string def_text;
  std::string header_text;
  try {
    def_text = read_file(def_path);
  } catch (const std::exception&) {
    add_finding(ctx, "counter-registry-sync", "src/obs/counters.def", 1,
                "missing counter definition file");
    return;
  }
  try {
    header_text = read_file(header_path);
  } catch (const std::exception&) {
    add_finding(ctx, "counter-registry-sync", "src/obs/counter_registry.hpp",
                1,
                "missing generated registry header; run "
                "`lrt-analyze gen-counters --write`");
    return;
  }
  const std::string expected =
      generate_counter_registry_header(parse_phases_def_entries(def_text));
  if (header_text != expected) {
    add_finding(ctx, "counter-registry-sync", "src/obs/counter_registry.hpp",
                1,
                "out of sync with src/obs/counters.def; run "
                "`lrt-analyze gen-counters --write`");
  }
}

}  // namespace lrt::analyze
