// The scope-aware passes: omp-race, hot-path-purity, counter-registry.
//
// These build on analyze/scope.hpp (block extents, declaration sites,
// parsed omp directives) instead of the flat token scans in passes.cpp.
// All three err toward exemption — docs/STATIC_ANALYSIS.md lists the
// false-negative shapes — because a static race/purity gate that cries
// wolf gets baselined into uselessness.
#include <cstddef>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/passes.hpp"
#include "analyze/registry_gen.hpp"
#include "analyze/scope.hpp"

namespace lrt::analyze {

namespace {

using Tokens = std::vector<Token>;

bool is_punct(const Token& tok, const char* text) {
  return tok.kind == TokKind::kPunct && tok.text == text;
}

bool is_ident(const Token& tok, const char* text) {
  return tok.kind == TokKind::kIdentifier && tok.text == text;
}

bool in_dir(const std::string& path, const std::string& dir) {
  return path.compare(0, dir.size() + 1, dir + "/") == 0;
}

void add_finding(const PassContext& ctx, std::string pass, std::string file,
                 int line, std::string message) {
  Finding f;
  f.pass = std::move(pass);
  f.file = std::move(file);
  f.line = line;
  f.message = std::move(message);
  ctx.findings->push_back(std::move(f));
}

/// Index of the open token matching the close token at `close`, scanning
/// backward but not below `floor`; npos when unmatched.
std::size_t match_group_back(const Tokens& t, std::size_t close,
                             std::size_t floor, const char* open_text,
                             const char* close_text) {
  int depth = 0;
  for (std::size_t j = close + 1; j-- > floor;) {
    if (is_punct(t[j], close_text)) ++depth;
    if (is_punct(t[j], open_text)) {
      --depth;
      if (depth == 0) return j;
    }
  }
  return static_cast<std::size_t>(-1);
}

/// A parsed lvalue expression ending at token `last`: the leftmost base
/// identifier, the member/qualifier chain extent, and every subscript or
/// call-operator argument group along the way.
struct Lvalue {
  bool ok = false;
  std::string base;            ///< leftmost identifier
  std::size_t chain_begin = 0; ///< token index of the base identifier
  std::size_t chain_end = 0;   ///< one past `last`
  std::vector<TokenRange> groups;  ///< [...] and (...) argument extents
};

/// Walks backward from `last` (the lvalue's final token) to its leftmost
/// base identifier, collecting subscript/call groups. Fails (ok=false) on
/// anything it does not understand; callers stay silent then.
Lvalue walk_lvalue_back(const Tokens& t, std::size_t last,
                        std::size_t floor) {
  Lvalue lv;
  if (last >= t.size() || last < floor) return lv;
  std::size_t j = last;
  const std::size_t npos = static_cast<std::size_t>(-1);
  // Trailing subscript/call groups: v[i][j], m(r, c).
  while (j > floor) {
    std::size_t open = npos;
    if (is_punct(t[j], "]")) {
      open = match_group_back(t, j, floor, "[", "]");
    } else if (is_punct(t[j], ")")) {
      open = match_group_back(t, j, floor, "(", ")");
    } else {
      break;
    }
    if (open == npos || open == 0) return lv;
    lv.groups.push_back(TokenRange{open + 1, j});
    j = open - 1;
  }
  if (t[j].kind != TokKind::kIdentifier) return lv;
  // Qualifier/member chain: a.b, p->c, ns::x, f(...).m, v[i].w.
  while (j >= floor + 2 &&
         (is_punct(t[j - 1], ".") || is_punct(t[j - 1], "->") ||
          is_punct(t[j - 1], "::"))) {
    const std::size_t before = j - 2;
    if (t[before].kind == TokKind::kIdentifier) {
      j = before;
      continue;
    }
    std::size_t open = npos;
    if (is_punct(t[before], "]")) {
      open = match_group_back(t, before, floor, "[", "]");
    } else if (is_punct(t[before], ")")) {
      open = match_group_back(t, before, floor, "(", ")");
    }
    if (open == npos || open <= floor ||
        t[open - 1].kind != TokKind::kIdentifier) {
      break;
    }
    lv.groups.push_back(TokenRange{open + 1, before});
    j = open - 1;
  }
  lv.base = t[j].text;
  lv.chain_begin = j;
  lv.chain_end = last + 1;
  lv.ok = true;
  return lv;
}

/// The member chain as written ("result.kept_points"), used to pair
/// growth calls with earlier reserve() calls on the same object.
std::string chain_key(const Tokens& t, const Lvalue& lv) {
  std::string key;
  for (std::size_t j = lv.chain_begin; j < lv.chain_end; ++j) {
    key += t[j].text;
  }
  return key;
}

// ----- omp-race ---------------------------------------------------------------

const std::set<std::string>& assign_ops() {
  static const std::set<std::string> kOps = {
      "=",  "+=", "-=", "*=",  "/=", "%=",
      "&=", "|=", "^=", "<<=", ">>="};
  return kOps;
}

const std::set<std::string>& mutating_methods() {
  static const std::set<std::string> kNames = {
      "push_back", "emplace_back", "resize", "reserve", "insert",
      "erase",     "clear",        "assign", "pop_back", "emplace"};
  return kNames;
}

bool checkable_region(const OmpDirective& d) {
  return (d.has_kind("parallel") || d.has_kind("for") || d.has_kind("simd")) &&
         !d.has_kind("declare") && d.region.end > d.region.begin;
}

bool guard_region(const OmpDirective& d) {
  return d.has_kind("atomic") || d.has_kind("critical") ||
         d.has_kind("single") || d.has_kind("master") ||
         d.has_kind("masked") || d.has_kind("ordered");
}

/// Exempts identifiers ASSIGNED (not declared) in a for-init directly
/// after an omp looping construct: the spec privatizes the iteration
/// variable of the associated loop even without a private clause.
void exempt_for_init_vars(const Tokens& t, const OmpDirective& d,
                          std::set<std::string>* exempt) {
  std::size_t i = d.region.begin;
  if (i >= t.size() || !is_ident(t[i], "for") || i + 1 >= t.size() ||
      !is_punct(t[i + 1], "(")) {
    return;
  }
  for (std::size_t j = i + 2; j < t.size() && !is_punct(t[j], ";"); ++j) {
    if (t[j].kind == TokKind::kIdentifier && j + 1 < t.size() &&
        is_punct(t[j + 1], "=")) {
      exempt->insert(t[j].text);
    }
  }
}

/// One region's shared-write scan state.
struct RegionScan {
  TokenRange region;
  std::set<std::string> exempt;      ///< privatized + declared-in-region
  std::vector<TokenRange> skips;     ///< atomic/critical/... sub-regions
  std::vector<TokenRange> extents;   ///< directive token extents
};

bool in_ranges(const std::vector<TokenRange>& ranges, std::size_t i,
               std::size_t* resume) {
  for (const TokenRange& r : ranges) {
    if (r.contains(i)) {
      *resume = r.end;
      return true;
    }
  }
  return false;
}

bool lvalue_exempt(const Tokens& t, const Lvalue& lv,
                   const std::set<std::string>& exempt) {
  if (lv.base == "this" || exempt.count(lv.base) != 0) return true;
  for (const TokenRange& g : lv.groups) {
    for (std::size_t j = g.begin; j < g.end; ++j) {
      if (t[j].kind != TokKind::kIdentifier) continue;
      if (exempt.count(t[j].text) != 0 ||
          t[j].text == "omp_get_thread_num") {
        return true;
      }
    }
  }
  return false;
}

std::string region_hint() {
  return " (make it private/reduction, declare it inside the region, "
         "index it per-thread, or guard with omp atomic/critical; "
         "suppress with `lrt-analyze: allow(omp-race)` if provably safe)";
}

void omp_race_scan(const PassContext& ctx, const LexedFile& file) {
  const Tokens& t = file.tokens;
  const std::vector<OmpDirective> dirs = parse_omp_directives(file);
  if (dirs.empty()) return;

  std::size_t scanned_until = 0;
  for (std::size_t di = 0; di < dirs.size(); ++di) {
    const OmpDirective& d = dirs[di];
    if (!checkable_region(d) || d.begin < scanned_until) continue;

    RegionScan rs;
    rs.region = d.region;
    rs.exempt = d.privatized;
    rs.extents.push_back(TokenRange{d.begin, d.end});
    exempt_for_init_vars(t, d, &rs.exempt);
    for (std::size_t dj = di + 1;
         dj < dirs.size() && dirs[dj].begin < rs.region.end; ++dj) {
      const OmpDirective& n = dirs[dj];
      rs.extents.push_back(TokenRange{n.begin, n.end});
      rs.exempt.insert(n.privatized.begin(), n.privatized.end());
      exempt_for_init_vars(t, n, &rs.exempt);
      if (guard_region(n) && n.region.end > n.region.begin) {
        rs.skips.push_back(n.region);
      }
    }
    const std::set<std::string> decls =
        collect_declarations(t, rs.region.begin, rs.region.end);
    rs.exempt.insert(decls.begin(), decls.end());

    for (std::size_t w = rs.region.begin; w < rs.region.end; ++w) {
      std::size_t resume = 0;
      if (in_ranges(rs.extents, w, &resume) ||
          in_ranges(rs.skips, w, &resume)) {
        w = resume - 1;
        continue;
      }
      const Token& tok = t[w];
      Lvalue lv;
      std::string what;
      if (tok.kind == TokKind::kPunct && assign_ops().count(tok.text) != 0) {
        if (w == rs.region.begin) continue;
        if (is_ident(t[w - 1], "operator")) continue;
        lv = walk_lvalue_back(t, w - 1, rs.region.begin);
        what = "write ('" + tok.text + "') to";
      } else if (is_punct(tok, "++") || is_punct(tok, "--")) {
        if (w > rs.region.begin &&
            (t[w - 1].kind == TokKind::kIdentifier ||
             is_punct(t[w - 1], "]") || is_punct(t[w - 1], ")"))) {
          lv = walk_lvalue_back(t, w - 1, rs.region.begin);
        } else if (w + 1 < rs.region.end &&
                   t[w + 1].kind == TokKind::kIdentifier) {
          lv.ok = true;
          lv.base = t[w + 1].text;
          lv.chain_begin = w + 1;
          lv.chain_end = w + 2;
        }
        what = "increment ('" + tok.text + "') of";
      } else if (tok.kind == TokKind::kIdentifier &&
                 mutating_methods().count(tok.text) != 0 &&
                 w > rs.region.begin + 1 &&
                 (is_punct(t[w - 1], ".") || is_punct(t[w - 1], "->")) &&
                 w + 1 < rs.region.end && is_punct(t[w + 1], "(")) {
        lv = walk_lvalue_back(t, w - 2, rs.region.begin);
        what = "mutating call '." + tok.text + "' on";
      } else if (is_punct(tok, "&") && w > rs.region.begin &&
                 (is_punct(t[w - 1], "(") || is_punct(t[w - 1], ",")) &&
                 w + 1 < rs.region.end &&
                 t[w + 1].kind == TokKind::kIdentifier) {
        lv.ok = true;
        lv.base = t[w + 1].text;
        lv.chain_begin = w + 1;
        lv.chain_end = w + 2;
        what = "address of";
      } else {
        continue;
      }
      if (!lv.ok || lvalue_exempt(t, lv, rs.exempt)) continue;
      add_finding(ctx, "omp-race", file.path, tok.line,
                  what + " shared '" + lv.base +
                      "' inside an omp parallel region" + region_hint());
    }
    scanned_until = rs.region.end;
  }
}

// ----- hot-path-purity --------------------------------------------------------

const std::set<std::string>& heap_fns() {
  static const std::set<std::string> kNames = {
      "malloc", "calloc", "realloc", "free", "aligned_alloc",
      "posix_memalign"};
  return kNames;
}

const std::set<std::string>& lock_types() {
  static const std::set<std::string> kNames = {
      "mutex",       "recursive_mutex", "shared_mutex",
      "lock_guard",  "unique_lock",     "scoped_lock",
      "shared_lock", "condition_variable", "condition_variable_any"};
  return kNames;
}

const std::set<std::string>& io_fns() {
  static const std::set<std::string> kNames = {
      "printf", "fprintf", "puts",   "fputs",  "fputc",  "putchar",
      "fwrite", "fread",   "fopen",  "fclose", "fflush", "fscanf",
      "scanf",  "fgets",   "getchar"};
  return kNames;
}

const std::set<std::string>& io_streams() {
  static const std::set<std::string> kNames = {
      "cout", "cerr", "clog", "ofstream", "ifstream", "fstream"};
  return kNames;
}

const std::set<std::string>& growth_methods() {
  static const std::set<std::string> kNames = {"push_back", "emplace_back",
                                               "resize"};
  return kNames;
}

std::string purity_hint() {
  return " (docs/PERFORMANCE.md hot-path rules; hoist it out of the hot "
         "path or suppress with `lrt-analyze: allow(hot-path-purity)`)";
}

void purity_scan(const PassContext& ctx, const LexedFile& file) {
  if (!in_dir(file.path, "src")) return;
  const Tokens& t = file.tokens;
  const bool hot_tu = ctx.config->hot_files.count(file.path) != 0;
  const std::vector<OmpDirective> dirs = parse_omp_directives(file);
  if (!hot_tu && dirs.empty()) return;

  // Regions with their declaration sets, for the per-thread-scratch
  // exemption (a vector declared inside the parallel region may grow).
  std::vector<std::pair<TokenRange, std::set<std::string>>> regions;
  for (const OmpDirective& d : dirs) {
    if (d.region.end > d.region.begin) {
      regions.emplace_back(
          d.region, collect_declarations(t, d.region.begin, d.region.end));
    }
  }

  std::vector<TokenRange> checked;
  for (const TokenRange& fn : function_bodies(t)) {
    if (hot_tu) {
      checked.push_back(fn);
      continue;
    }
    for (const OmpDirective& d : dirs) {
      if (fn.contains(d.begin)) {
        checked.push_back(fn);
        break;
      }
    }
  }

  for (const TokenRange& fn : checked) {
    // First `.reserve(` site per object chain in this function.
    std::map<std::string, std::size_t> reserved_at;
    for (std::size_t w = fn.begin + 2; w + 1 < fn.end; ++w) {
      if (!is_ident(t[w], "reserve") ||
          !(is_punct(t[w - 1], ".") || is_punct(t[w - 1], "->")) ||
          !is_punct(t[w + 1], "(")) {
        continue;
      }
      const Lvalue lv = walk_lvalue_back(t, w - 2, fn.begin);
      if (!lv.ok) continue;
      const std::string key = chain_key(t, lv);
      if (reserved_at.count(key) == 0) reserved_at[key] = w;
    }
    const std::vector<TokenRange> loops = loop_ranges(t, fn.begin, fn.end);

    for (std::size_t w = fn.begin; w < fn.end; ++w) {
      const Token& tok = t[w];
      if (tok.kind != TokKind::kIdentifier) continue;
      const bool member_call =
          w > fn.begin &&
          (is_punct(t[w - 1], ".") || is_punct(t[w - 1], "->"));
      const bool called = w + 1 < fn.end && is_punct(t[w + 1], "(");

      if (tok.text == "new") {
        add_finding(ctx, "hot-path-purity", file.path, tok.line,
                    "heap allocation (new) on a hot path" + purity_hint());
        continue;
      }
      if (heap_fns().count(tok.text) != 0 && called && !member_call) {
        add_finding(ctx, "hot-path-purity", file.path, tok.line,
                    "C heap call '" + tok.text + "' on a hot path" +
                        purity_hint());
        continue;
      }
      if (lock_types().count(tok.text) != 0 && w > fn.begin &&
          is_punct(t[w - 1], "::")) {
        add_finding(ctx, "hot-path-purity", file.path, tok.line,
                    "lock/synchronization type 'std::" + tok.text +
                        "' on a hot path" + purity_hint());
        continue;
      }
      if ((tok.text == "lock" || tok.text == "unlock" ||
           tok.text == "try_lock") &&
          member_call && called) {
        add_finding(ctx, "hot-path-purity", file.path, tok.line,
                    "explicit '." + tok.text + "()' on a hot path" +
                        purity_hint());
        continue;
      }
      if (io_fns().count(tok.text) != 0 && called && !member_call) {
        add_finding(ctx, "hot-path-purity", file.path, tok.line,
                    "I/O call '" + tok.text + "' on a hot path" +
                        purity_hint());
        continue;
      }
      if (io_streams().count(tok.text) != 0 && w > fn.begin &&
          is_punct(t[w - 1], "::")) {
        add_finding(ctx, "hot-path-purity", file.path, tok.line,
                    "stream I/O 'std::" + tok.text + "' on a hot path" +
                        purity_hint());
        continue;
      }
      if (growth_methods().count(tok.text) != 0 && member_call && called) {
        bool in_loop = false;
        for (const TokenRange& l : loops) in_loop = in_loop || l.contains(w);
        const std::pair<TokenRange, std::set<std::string>>* region = nullptr;
        for (const auto& r : regions) {
          if (r.first.contains(w)) {
            region = &r;
            break;
          }
        }
        if (!in_loop && region == nullptr) continue;  // setup-time growth
        const Lvalue lv = walk_lvalue_back(t, w - 2, fn.begin);
        if (!lv.ok) continue;
        // Per-thread scratch declared inside the region may grow.
        if (region != nullptr && region->second.count(lv.base) != 0) {
          continue;
        }
        const auto it = reserved_at.find(chain_key(t, lv));
        if (it != reserved_at.end() && it->second < w) continue;
        add_finding(ctx, "hot-path-purity", file.path, tok.line,
                    "'." + tok.text + "' on '" + lv.base +
                        "' inside a loop without a prior reserve()" +
                        purity_hint());
      }
    }
  }
}

// ----- counter-registry -------------------------------------------------------

/// Counter names feed bench reports and CI gates from src/ and bench/;
/// tests exercise the counter registry itself with synthetic names.
bool counter_checked_file(const std::string& path) {
  return in_dir(path, "src") || in_dir(path, "bench");
}

}  // namespace

void run_omp_race(const PassContext& ctx) {
  for (const LexedFile& file : *ctx.files) {
    if (in_dir(file.path, "tests")) continue;
    omp_race_scan(ctx, file);
  }
}

void run_hot_path_purity(const PassContext& ctx) {
  for (const LexedFile& file : *ctx.files) purity_scan(ctx, file);
}

void run_counter_registry(const PassContext& ctx) {
  if (ctx.config->counter_registry.empty()) {
    add_finding(ctx, "counter-registry", "src/obs/counters.def", 1,
                "counter registry is empty or missing; the "
                "counter-registry pass has nothing to check against");
    return;
  }
  for (const LexedFile& file : *ctx.files) {
    if (!counter_checked_file(file.path)) continue;
    const Tokens& t = file.tokens;
    for (std::size_t i = 2; i + 2 < t.size(); ++i) {
      if (!is_ident(t[i], "counter") || !is_punct(t[i - 1], "::") ||
          !is_ident(t[i - 2], "obs") || !is_punct(t[i + 1], "(")) {
        continue;
      }
      const Token& arg = t[i + 2];
      // Non-literal or concatenated names are built at runtime; the
      // registry pass cannot see them (documented false negative).
      if (arg.kind != TokKind::kString) continue;
      if (i + 3 < t.size() && is_punct(t[i + 3], "+")) continue;
      if (ctx.config->counter_registry.count(arg.text) != 0) continue;
      add_finding(ctx, "counter-registry", file.path, arg.line,
                  "obs::counter name \"" + arg.text +
                      "\" is not registered in src/obs/counters.def "
                      "(add it there and run `lrt-analyze gen-counters "
                      "--write`, or use a registered name)");
    }
  }
}

void run_counter_registry_sync(const PassContext& ctx) {
  const std::string def_path = ctx.config->root + "/src/obs/counters.def";
  const std::string header_path =
      ctx.config->root + "/src/obs/counter_registry.hpp";
  std::string def_text;
  std::string header_text;
  try {
    def_text = read_file(def_path);
  } catch (const std::exception&) {
    add_finding(ctx, "counter-registry-sync", "src/obs/counters.def", 1,
                "missing counter definition file");
    return;
  }
  try {
    header_text = read_file(header_path);
  } catch (const std::exception&) {
    add_finding(ctx, "counter-registry-sync", "src/obs/counter_registry.hpp",
                1,
                "missing generated registry header; run "
                "`lrt-analyze gen-counters --write`");
    return;
  }
  const std::string expected =
      generate_counter_registry_header(parse_phases_def_entries(def_text));
  if (header_text != expected) {
    add_finding(ctx, "counter-registry-sync", "src/obs/counter_registry.hpp",
                1,
                "out of sync with src/obs/counters.def; run "
                "`lrt-analyze gen-counters --write`");
  }
}

}  // namespace lrt::analyze
