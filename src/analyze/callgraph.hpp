// Project-wide symbol index, call graph, and per-function summaries.
//
// This is the semantic layer between the scope heuristics (scope.hpp)
// and the interprocedural passes: function definitions are discovered
// per TU from function_bodies() extents, call sites are resolved by a
// name + argument-count heuristic, strongly connected components are
// condensed with an iterative DFS, and four bottom-up summary facts are
// propagated callee-first:
//
//   writes   which parameters the function mutates through a non-const
//            reference/pointer (directly or by forwarding to a callee)
//   allocates / does_io / locks
//            the function (transitively) contains a literal allocation
//            (`new`, malloc family), I/O (printf family, std::cout-style
//            streams), or a lock (std:: lock types, .lock() calls)
//   enters_collective
//            the function (transitively) performs a member call named
//            like a Comm collective (barrier, allreduce, ...)
//
// Resolution errs toward "unknown": member calls through an object,
// virtual dispatch, function pointers, std::-qualified names, template
// calls with explicit arguments, and ambiguous overload sets all resolve
// to kNoFunction — no edge, no finding. docs/STATIC_ANALYSIS.md lists
// the shapes this closes and the ones that still degrade.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analyze/lexer.hpp"
#include "analyze/scope.hpp"

namespace lrt::analyze {

/// Sentinel function index: "no function" / "could not resolve".
constexpr std::size_t kNoFunction = static_cast<std::size_t>(-1);

/// Worker count for the parallel per-TU stages: `jobs` when positive,
/// the OpenMP default team size for 0 or negative, always 1 without
/// OpenMP.
int effective_jobs(int jobs);

/// One declared parameter of a discovered function definition.
struct ParamInfo {
  std::string name;
  /// Non-const reference or pointer: a write through this parameter is
  /// visible to the caller. Rvalue references and const-qualified types
  /// do not count (err toward exemption).
  bool mutable_ref = false;
};

/// One bottom-up summary fact with its evidence trail.
struct Fact {
  bool holds = false;
  /// Evidence token: "new", "printf", "std::mutex", "allreduce", ...
  std::string what;
  /// Callee whose summary supplied the fact; kNoFunction when the
  /// evidence sits directly in this function's body.
  std::size_t via = kNoFunction;
};

/// How a parameter write is established: directly in the body, or by
/// forwarding the parameter to a callee that writes its own parameter.
struct ParamWrite {
  std::size_t via = kNoFunction;  ///< callee index; kNoFunction = direct
  std::size_t via_param = 0;      ///< that callee's written parameter
};

/// One discovered function definition with its summary.
struct FunctionInfo {
  std::string name;       ///< unqualified name ("gemm", not "la::gemm")
  std::size_t file = 0;   ///< index into the analyzed file vector
  std::string path;       ///< repo-relative path of that file
  int line = 0;           ///< line of the body's open brace
  TokenRange body;        ///< '{' index .. one past '}'
  std::vector<ParamInfo> params;
  /// Parameter indices this function writes through (mutable_ref only).
  std::map<std::size_t, ParamWrite> writes;
  Fact allocates;
  Fact does_io;
  Fact locks;
  Fact enters_collective;
};

/// The project call graph. Build once per analysis run, share across
/// passes via PassContext::graph.
class CallGraph {
 public:
  /// Discovers functions in every lexed file (OpenMP-parallel per-TU
  /// when `jobs` != 1; `jobs` <= 0 means the OpenMP default team size),
  /// resolves call sites, and propagates summaries callee-first over the
  /// SCC condensation.
  static CallGraph build(const std::vector<LexedFile>& files, int jobs);

  const std::vector<FunctionInfo>& functions() const { return functions_; }

  /// Resolves the call site whose name token is `t[i]` in file
  /// `file_index`. Checks the call shape first (identifier followed by
  /// '(', not a member access, not a keyword or declaration, not
  /// std::-qualified), then matches name + argument count against the
  /// definition index; same-file definitions win ties (internal
  /// linkage). Everything else returns kNoFunction.
  std::size_t resolve_call(const std::vector<Token>& t, std::size_t i,
                           std::size_t file_index) const;

  /// Top-level argument extents of the call whose name token is t[i]
  /// (t[i + 1] must be '('); empty for a nullary call.
  static std::vector<TokenRange> call_args(const std::vector<Token>& t,
                                           std::size_t i);

  /// "f -> g -> h" evidence trail for `fact` of functions()[fn], starting
  /// at fn's own name; just the name when the fact is direct.
  std::string fact_chain(std::size_t fn, Fact FunctionInfo::*fact) const;

  /// Same, for the write of parameter `param` of functions()[fn].
  std::string write_chain(std::size_t fn, std::size_t param) const;

 private:
  std::vector<FunctionInfo> functions_;
  /// Unqualified name -> indices into functions_ (the overload set).
  std::map<std::string, std::vector<std::size_t>> by_name_;
};

}  // namespace lrt::analyze
