// Generator for src/obs/phase_registry.hpp from src/obs/phases.def.
//
// phases.def is the single source of truth for the phase/span name
// vocabulary: every obs::Span / ScopedPhase / PhaseTimer literal and
// every `validate_trace --require-phase` argument must name an entry
// (enforced by the phase-registry pass). The committed header is checked
// byte-for-byte against this generator by the phase-registry-sync pass,
// so the vocabulary can't drift between code, CI gates, and docs.
//
// def format: one name per line, '#' starts a comment, text after the
// name is a human description carried into the generated header.
#pragma once

#include <string>
#include <vector>

namespace lrt::analyze {

struct PhaseDef {
  std::string name;         ///< e.g. "pair_product", "fft.fft3d"
  std::string description;  ///< may be empty
};

/// Parses phases.def. Throws lrt::Error on an invalid name (allowed:
/// [a-z0-9_.], must start with a letter) or a duplicate.
std::vector<PhaseDef> parse_phases_def_entries(const std::string& text);

/// "pair_product" -> "kPairProduct", "fft.fft3d" -> "kFftFft3d".
std::string phase_constant_name(const std::string& phase);

/// The full generated header text (byte-stable).
std::string generate_phase_registry_header(const std::vector<PhaseDef>& defs);

/// Same for src/obs/counter_registry.hpp from src/obs/counters.def (the
/// obs::counter name vocabulary; same def format and parser). Checked
/// byte-for-byte by the counter-registry-sync pass.
std::string generate_counter_registry_header(const std::vector<PhaseDef>& defs);

}  // namespace lrt::analyze
