#include "analyze/analyzer.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "analyze/callgraph.hpp"
#include "analyze/passes.hpp"
#include "analyze/registry_gen.hpp"
#include "common/error.hpp"

namespace lrt::analyze {

namespace fs = std::filesystem;

const std::vector<std::string>& all_pass_names() {
  static const std::vector<std::string> kNames = {
      "layer-dag",      "collective-divergence", "omp-race",
      "hot-path-purity", "phase-registry",       "phase-registry-sync",
      "counter-registry", "counter-registry-sync", "naked-new-delete",
      "banned-volatile", "banned-thread",        "banned-sleep",
      "parent-include", "pragma-once"};
  return kNames;
}

void load_baseline(const std::string& text, Config* config) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string pass;
    if (!(fields >> pass)) continue;
    const auto& names = all_pass_names();
    LRT_CHECK(std::find(names.begin(), names.end(), pass) != names.end(),
              "baseline line " << lineno << ": unknown pass '" << pass << "'");
    if (pass == "layer-dag") {
      std::string from;
      std::string arrow;
      std::string to;
      LRT_CHECK(static_cast<bool>(fields >> from >> arrow >> to) &&
                    arrow == "->",
                "baseline line " << lineno
                                 << ": expected 'layer-dag FROM -> TO'");
      config->baseline_layer_edges.insert(from + "->" + to);
    } else {
      std::string path;
      LRT_CHECK(static_cast<bool>(fields >> path),
                "baseline line " << lineno << ": expected '" << pass
                                 << " PATH'");
      config->baseline_files.insert(pass + ":" + path);
    }
  }
}

std::set<std::string> parse_phases_def(const std::string& text) {
  std::set<std::string> names;
  for (const PhaseDef& def : parse_phases_def_entries(text)) {
    names.insert(def.name);
  }
  return names;
}

void load_hot_tus(const std::string& cmake_text, Config* config) {
  // Whitespace-tokenize the CMake text with '#' comments stripped and
  // parens split into their own tokens; inside each
  // set_source_files_properties(...) call, everything before PROPERTIES
  // is a source path. The block only counts when its property arguments
  // mention "-O3".
  std::vector<std::string> words;
  {
    std::istringstream lines(cmake_text);
    std::string line;
    while (std::getline(lines, line)) {
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      std::string word;
      auto flush = [&]() {
        if (!word.empty()) {
          words.push_back(word);
          word.clear();
        }
      };
      for (const char c : line) {
        if (c == ' ' || c == '\t') {
          flush();
        } else if (c == '(' || c == ')') {
          flush();
          words.emplace_back(1, c);
        } else {
          word.push_back(c);
        }
      }
      flush();
    }
  }
  for (std::size_t i = 0; i + 1 < words.size(); ++i) {
    if (words[i] != "set_source_files_properties" || words[i + 1] != "(") {
      continue;
    }
    std::vector<std::string> files;
    bool in_props = false;
    bool promotes = false;
    int depth = 0;
    for (std::size_t j = i + 1; j < words.size(); ++j) {
      if (words[j] == "(") {
        ++depth;
        continue;
      }
      if (words[j] == ")") {
        if (--depth == 0) break;
        continue;
      }
      std::string clean;  // without surrounding quotes
      for (const char c : words[j]) {
        if (c != '"') clean.push_back(c);
      }
      if (clean == "PROPERTIES") {
        in_props = true;
      } else if (!in_props && !clean.empty()) {
        files.push_back(clean);
      } else if (clean.find("-O3") != std::string::npos) {
        promotes = true;
      }
    }
    if (!promotes) continue;
    for (const std::string& f : files) {
      if (f.size() > 4 && (f.compare(f.size() - 4, 4, ".cpp") == 0 ||
                           f.compare(f.size() - 4, 4, ".hpp") == 0)) {
        config->hot_files.insert("src/" + f);
      }
    }
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  LRT_CHECK(static_cast<bool>(in), "cannot read " << path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> discover_sources(const std::string& root) {
  std::vector<std::string> out;
  for (const char* top : {"src", "tests", "bench", "examples"}) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp") continue;
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      if (rel.find("analyze_fixtures/") != std::string::npos) continue;
      out.push_back(rel);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

/// Reads (serial — the I/O is ordered and cheap) then lexes (parallel —
/// the lexer is pure per file) every input. Output order matches the
/// input order regardless of thread count: each worker writes only its
/// own index.
std::vector<LexedFile> lex_files(const Config& config,
                                 const std::vector<std::string>& files) {
  std::vector<std::string> texts(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    texts[i] = read_file(config.root + "/" + files[i]);
  }
  std::vector<LexedFile> lexed(files.size());
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(files.size());
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) \
    num_threads(effective_jobs(config.jobs))
#endif
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::size_t u = static_cast<std::size_t>(i);
    lexed[u] = lex(files[u], texts[u]);
  }
  return lexed;
}

}  // namespace

Report analyze(const Config& config, const std::vector<std::string>& files) {
  const std::vector<LexedFile> lexed = lex_files(config, files);
  const CallGraph graph = CallGraph::build(lexed, config.jobs);

  std::vector<Finding> findings;
  PassContext ctx;
  ctx.config = &config;
  ctx.files = &lexed;
  ctx.findings = &findings;
  ctx.graph = &graph;

  if (ctx.enabled("layer-dag")) run_layer_dag(ctx);
  if (ctx.enabled("collective-divergence")) run_collective_divergence(ctx);
  if (ctx.enabled("omp-race")) run_omp_race(ctx);
  if (ctx.enabled("hot-path-purity")) run_hot_path_purity(ctx);
  if (ctx.enabled("counter-registry")) run_counter_registry(ctx);
  if (ctx.enabled("counter-registry-sync")) run_counter_registry_sync(ctx);
  if (ctx.enabled("phase-registry")) {
    run_phase_registry(ctx);
    const fs::path tools_dir = fs::path(config.root) / "tools";
    if (fs::is_directory(tools_dir)) {
      std::vector<fs::path> scripts;
      for (const auto& entry : fs::directory_iterator(tools_dir)) {
        if (entry.is_regular_file() && entry.path().extension() == ".sh") {
          scripts.push_back(entry.path());
        }
      }
      std::sort(scripts.begin(), scripts.end());
      for (const fs::path& script : scripts) {
        run_phase_registry_shell(
            ctx, fs::relative(script, config.root).generic_string(),
            read_file(script.string()));
      }
    }
  }
  if (ctx.enabled("phase-registry-sync")) run_phase_registry_sync(ctx);
  run_pattern_gates(ctx);

  // Resolve inline suppressions, then the baseline. Passes may have
  // pre-baselined findings themselves (layer-dag edge/cycle matching).
  std::map<std::string, const LexedFile*> by_path;
  for (const LexedFile& file : lexed) by_path[file.path] = &file;
  for (Finding& f : findings) {
    if (f.status != Finding::Status::kNew) continue;
    const auto it = by_path.find(f.file);
    if (it != by_path.end() && it->second->suppressed(f.pass, f.line)) {
      f.status = Finding::Status::kSuppressed;
      continue;
    }
    if (config.baseline_files.count(f.pass + ":" + f.file) != 0) {
      f.status = Finding::Status::kBaselined;
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.pass < b.pass;
            });

  Report report;
  report.findings = std::move(findings);
  for (const Finding& f : report.findings) {
    switch (f.status) {
      case Finding::Status::kNew: ++report.new_count; break;
      case Finding::Status::kSuppressed: ++report.suppressed_count; break;
      case Finding::Status::kBaselined: ++report.baselined_count; break;
    }
  }
  return report;
}

Report analyze_repo(const Config& config) {
  return analyze(config, discover_sources(config.root));
}

obs::json::Value report_to_json(const Config& config, const Report& report) {
  using obs::json::Value;
  auto str = [](const std::string& s) {
    Value v;
    v.kind = Value::Kind::kString;
    v.string = s;
    return v;
  };
  auto num = [](double d) {
    Value v;
    v.kind = Value::Kind::kNumber;
    v.number = d;
    return v;
  };

  Value findings;
  findings.kind = Value::Kind::kArray;
  for (const Finding& f : report.findings) {
    Value item;
    item.kind = Value::Kind::kObject;
    item.object.emplace_back("pass", str(f.pass));
    item.object.emplace_back("file", str(f.file));
    item.object.emplace_back("line", num(static_cast<double>(f.line)));
    item.object.emplace_back("message", str(f.message));
    const char* status = f.status == Finding::Status::kNew ? "new"
                         : f.status == Finding::Status::kSuppressed
                             ? "suppressed"
                             : "baselined";
    item.object.emplace_back("status", str(status));
    findings.array.push_back(std::move(item));
  }

  Value passes;
  passes.kind = Value::Kind::kArray;
  for (const std::string& name : all_pass_names()) {
    if (config.passes.empty() || config.passes.count(name) != 0) {
      passes.array.push_back(str(name));
    }
  }

  Value summary;
  summary.kind = Value::Kind::kObject;
  summary.object.emplace_back("new", num(static_cast<double>(report.new_count)));
  summary.object.emplace_back(
      "suppressed", num(static_cast<double>(report.suppressed_count)));
  summary.object.emplace_back(
      "baselined", num(static_cast<double>(report.baselined_count)));

  Value root;
  root.kind = Value::Kind::kObject;
  root.object.emplace_back("schema", str("lrt.analyze/1"));
  root.object.emplace_back("passes", std::move(passes));
  root.object.emplace_back("summary", std::move(summary));
  root.object.emplace_back("findings", std::move(findings));
  return root;
}

std::string report_to_text(const Report& report, bool verbose) {
  std::ostringstream os;
  for (const Finding& f : report.findings) {
    if (f.status == Finding::Status::kNew) {
      os << f.file << ":" << f.line << ": [" << f.pass << "] " << f.message
         << "\n";
    } else if (verbose) {
      const char* tag =
          f.status == Finding::Status::kSuppressed ? "suppressed" : "baselined";
      os << f.file << ":" << f.line << ": [" << f.pass << ", " << tag << "] "
         << f.message << "\n";
    }
  }
  os << "lrt-analyze: " << report.new_count << " new, "
     << report.baselined_count << " baselined, " << report.suppressed_count
     << " suppressed finding(s)\n";
  return os.str();
}

}  // namespace lrt::analyze
