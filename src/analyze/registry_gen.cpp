#include "analyze/registry_gen.hpp"

#include <cstddef>
#include <set>
#include <sstream>

#include "common/error.hpp"

namespace lrt::analyze {

namespace {

bool valid_phase_name(const std::string& name) {
  if (name.empty() || !(name[0] >= 'a' && name[0] <= 'z')) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

std::vector<PhaseDef> parse_phases_def_entries(const std::string& text) {
  std::vector<PhaseDef> defs;
  std::set<std::string> seen;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    PhaseDef def;
    if (!(fields >> def.name)) continue;  // blank / comment-only line
    LRT_CHECK(valid_phase_name(def.name),
              "phases.def line " << lineno << ": invalid phase name '"
                                 << def.name << "'");
    LRT_CHECK(seen.insert(def.name).second,
              "phases.def line " << lineno << ": duplicate phase '"
                                 << def.name << "'");
    std::string word;
    while (fields >> word) {
      if (!def.description.empty()) def.description += ' ';
      def.description += word;
    }
    defs.push_back(std::move(def));
  }
  return defs;
}

std::string phase_constant_name(const std::string& phase) {
  std::string out = "k";
  bool upper_next = true;
  for (const char c : phase) {
    if (c == '.' || c == '_') {
      upper_next = true;
      continue;
    }
    if (upper_next && c >= 'a' && c <= 'z') {
      out.push_back(static_cast<char>(c - 'a' + 'A'));
    } else {
      out.push_back(c);
    }
    upper_next = false;
  }
  return out;
}

std::string generate_phase_registry_header(const std::vector<PhaseDef>& defs) {
  std::ostringstream os;
  os << "// GENERATED FILE — DO NOT EDIT.\n"
     << "//\n"
     << "// Registered phase/span name vocabulary, generated from\n"
     << "// src/obs/phases.def by `lrt-analyze gen-phases --write`. The\n"
     << "// phase-registry-sync pass fails CI when this file and the def\n"
     << "// drift apart; the phase-registry pass requires every\n"
     << "// obs::Span / ScopedPhase / PhaseTimer literal and every\n"
     << "// `validate_trace --require-phase` argument to name an entry.\n"
     << "#pragma once\n"
     << "\n"
     << "#include <cstddef>\n"
     << "#include <string_view>\n"
     << "\n"
     << "namespace lrt::obs::phase {\n"
     << "\n";
  for (const PhaseDef& def : defs) {
    os << "inline constexpr const char* " << phase_constant_name(def.name)
       << " = \"" << def.name << "\";";
    if (!def.description.empty()) os << "  // " << def.description;
    os << "\n";
  }
  os << "\n"
     << "inline constexpr const char* kAll[] = {\n";
  for (const PhaseDef& def : defs) {
    os << "    " << phase_constant_name(def.name) << ",\n";
  }
  os << "};\n"
     << "\n"
     << "inline constexpr std::size_t kCount = sizeof(kAll) / sizeof(kAll[0]);\n"
     << "\n"
     << "/// True when `name` is a registered phase/span name.\n"
     << "constexpr bool is_registered(std::string_view name) {\n"
     << "  for (const char* phase : kAll) {\n"
     << "    if (name == phase) return true;\n"
     << "  }\n"
     << "  return false;\n"
     << "}\n"
     << "\n"
     << "}  // namespace lrt::obs::phase\n";
  return os.str();
}

std::string generate_counter_registry_header(
    const std::vector<PhaseDef>& defs) {
  std::ostringstream os;
  os << "// GENERATED FILE — DO NOT EDIT.\n"
     << "//\n"
     << "// Registered counter name vocabulary, generated from\n"
     << "// src/obs/counters.def by `lrt-analyze gen-counters --write`. The\n"
     << "// counter-registry-sync pass fails CI when this file and the def\n"
     << "// drift apart; the counter-registry pass requires every\n"
     << "// obs::counter(\"...\") literal in src/ and bench/ to name an\n"
     << "// entry. Dynamically built names (e.g. the comm.<kind> family)\n"
     << "// must still enumerate every reachable name here.\n"
     << "#pragma once\n"
     << "\n"
     << "#include <cstddef>\n"
     << "#include <string_view>\n"
     << "\n"
     << "namespace lrt::obs::cnt {\n"
     << "\n";
  for (const PhaseDef& def : defs) {
    os << "inline constexpr const char* " << phase_constant_name(def.name)
       << " = \"" << def.name << "\";";
    if (!def.description.empty()) os << "  // " << def.description;
    os << "\n";
  }
  os << "\n"
     << "inline constexpr const char* kAll[] = {\n";
  for (const PhaseDef& def : defs) {
    os << "    " << phase_constant_name(def.name) << ",\n";
  }
  os << "};\n"
     << "\n"
     << "inline constexpr std::size_t kCount = sizeof(kAll) / sizeof(kAll[0]);\n"
     << "\n"
     << "/// True when `name` is a registered counter name.\n"
     << "constexpr bool is_registered(std::string_view name) {\n"
     << "  for (const char* counter : kAll) {\n"
     << "    if (name == counter) return true;\n"
     << "  }\n"
     << "  return false;\n"
     << "}\n"
     << "\n"
     << "}  // namespace lrt::obs::cnt\n";
  return os.str();
}

}  // namespace lrt::analyze
