#include "analyze/scope.hpp"

namespace lrt::analyze {

namespace {

using Tokens = std::vector<Token>;

bool is_punct(const Token& tok, const char* text) {
  return tok.kind == TokKind::kPunct && tok.text == text;
}

bool is_ident(const Token& tok, const char* text) {
  return tok.kind == TokKind::kIdentifier && tok.text == text;
}

bool is_open(const Token& tok) {
  return tok.kind == TokKind::kPunct &&
         (tok.text == "(" || tok.text == "[" || tok.text == "{");
}

bool is_close(const Token& tok) {
  return tok.kind == TokKind::kPunct &&
         (tok.text == ")" || tok.text == "]" || tok.text == "}");
}

std::size_t match_paren_end(const Tokens& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (is_punct(t[i], "(")) ++depth;
    if (is_punct(t[i], ")")) {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return t.size();
}

bool control_keyword(const Token& tok) {
  return tok.kind == TokKind::kIdentifier &&
         (tok.text == "if" || tok.text == "for" || tok.text == "while" ||
          tok.text == "switch");
}

/// Keywords that can never BE a declared name.
bool name_keyword_banned(const std::string& s) {
  static const std::set<std::string> kBan = {
      "return",   "new",      "delete",  "else",     "case",     "goto",
      "break",    "continue", "sizeof",  "typedef",  "using",    "namespace",
      "throw",    "operator", "if",      "while",    "for",      "switch",
      "do",       "const",    "static",  "auto",     "struct",   "class",
      "union",    "enum",     "public",  "private",  "protected","template",
      "typename", "inline",   "constexpr","virtual", "override", "final",
      "noexcept", "this",     "true",    "false",    "nullptr",  "void",
      "try",      "catch",    "default", "explicit", "friend",   "mutable",
      "extern"};
  return kBan.count(s) != 0;
}

/// Identifiers that cannot act as the TYPE preceding a declared name.
bool type_position_banned(const std::string& s) {
  static const std::set<std::string> kBan = {
      "return", "new",   "delete",    "else",     "case",   "goto",
      "sizeof", "throw", "operator",  "typedef",  "using",  "namespace",
      "break",  "continue", "co_return", "co_await", "co_yield"};
  return kBan.count(s) != 0;
}

}  // namespace

std::size_t match_brace_end(const Tokens& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (is_punct(t[i], "{")) ++depth;
    if (is_punct(t[i], "}")) {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return t.size();
}

std::size_t statement_end(const Tokens& t, std::size_t i) {
  if (i >= t.size()) return t.size();
  if (is_punct(t[i], "{")) return match_brace_end(t, i);
  if (control_keyword(t[i]) && i + 1 < t.size() && is_punct(t[i + 1], "(")) {
    const std::size_t after = match_paren_end(t, i + 1);
    std::size_t e = statement_end(t, after);
    if (is_ident(t[i], "if") && e < t.size() && is_ident(t[e], "else")) {
      e = statement_end(t, e + 1);
    }
    return e;
  }
  if (is_ident(t[i], "do")) {
    std::size_t e = statement_end(t, i + 1);  // the body
    if (e < t.size() && is_ident(t[e], "while") && e + 1 < t.size() &&
        is_punct(t[e + 1], "(")) {
      e = match_paren_end(t, e + 1);
      if (e < t.size() && is_punct(t[e], ";")) ++e;
    }
    return e;
  }
  // Plain statement: scan to the ';' at the current nesting depth.
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (is_open(t[j])) ++depth;
    if (is_close(t[j])) {
      --depth;
      if (depth < 0) return j;  // hit an enclosing close; malformed input
    }
    if (depth == 0 && is_punct(t[j], ";")) return j + 1;
  }
  return t.size();
}

std::vector<OmpDirective> parse_omp_directives(const LexedFile& file) {
  const Tokens& t = file.tokens;
  std::vector<OmpDirective> out;
  for (const DirectiveExtent& d : file.directives) {
    if (d.begin + 2 >= d.end || !is_punct(t[d.begin], "#") ||
        !is_ident(t[d.begin + 1], "pragma") ||
        !is_ident(t[d.begin + 2], "omp")) {
      continue;
    }
    OmpDirective dir;
    dir.begin = d.begin;
    dir.end = d.end;
    dir.line = t[d.begin].line;
    std::size_t i = d.begin + 3;
    while (i < d.end) {
      if (t[i].kind == TokKind::kIdentifier && i + 1 < d.end &&
          is_punct(t[i + 1], "(")) {
        // A clause with arguments. Collect the privatizing ones.
        const std::string& clause = t[i].text;
        const std::size_t close = match_paren_end(t, i + 1);  // one past ')'
        const std::size_t arg_begin = i + 2;
        const std::size_t arg_end = close > 0 ? close - 1 : close;
        std::size_t colon = arg_end;
        for (std::size_t j = arg_begin; j < arg_end; ++j) {
          if (is_punct(t[j], ":")) {
            colon = j;
            break;
          }
        }
        std::size_t from = arg_end;
        std::size_t to = arg_end;
        if (clause == "private" || clause == "firstprivate" ||
            clause == "lastprivate") {
          from = arg_begin;
          to = arg_end;
        } else if (clause == "reduction") {
          // reduction(op : list) — only the list names are private.
          from = colon < arg_end ? colon + 1 : arg_begin;
          to = arg_end;
        } else if (clause == "linear") {
          // linear(list : step) — only the list names.
          from = arg_begin;
          to = colon;
        }
        for (std::size_t j = from; j < to; ++j) {
          if (t[j].kind == TokKind::kIdentifier) {
            dir.privatized.insert(t[j].text);
          }
        }
        i = close;
      } else {
        if (t[i].kind == TokKind::kIdentifier) dir.kinds.insert(t[i].text);
        ++i;
      }
    }
    // Standalone directives have no associated construct.
    const bool standalone =
        dir.has_kind("barrier") || dir.has_kind("taskwait") ||
        dir.has_kind("taskyield") || dir.has_kind("flush") ||
        dir.has_kind("threadprivate") || dir.has_kind("declare");
    if (!standalone && d.end < t.size()) {
      dir.region.begin = d.end;
      dir.region.end = statement_end(t, d.end);
    }
    out.push_back(std::move(dir));
  }
  return out;
}

std::set<std::string> collect_declarations(const Tokens& t, std::size_t begin,
                                           std::size_t end) {
  std::set<std::string> out;
  if (end > t.size()) end = t.size();
  for (std::size_t i = begin; i < end; ++i) {
    if (t[i].kind != TokKind::kIdentifier || name_keyword_banned(t[i].text)) {
      continue;
    }
    if (i == 0 || i + 1 >= end) continue;
    const Token& prev = t[i - 1];
    const bool type_before =
        (prev.kind == TokKind::kIdentifier &&
         !type_position_banned(prev.text)) ||
        is_punct(prev, ">") || is_punct(prev, "*") || is_punct(prev, "&") ||
        is_punct(prev, "&&");
    if (!type_before) continue;
    const Token& next = t[i + 1];
    const bool declarator_after =
        is_punct(next, "=") || is_punct(next, ";") || is_punct(next, ",") ||
        is_punct(next, "(") || is_punct(next, "[") || is_punct(next, ")") ||
        is_punct(next, "{") || is_punct(next, ":");
    if (!declarator_after) continue;
    out.insert(t[i].text);
    // Follow the declarator comma chain: `std::vector<Real> wr, wi;` also
    // declares wi. Depth-track so call/subscript commas don't leak in.
    int depth = 0;
    for (std::size_t j = i + 1; j < end; ++j) {
      if (is_open(t[j])) ++depth;
      if (is_close(t[j])) {
        --depth;
        if (depth < 0) break;
      }
      if (depth != 0) continue;
      if (is_punct(t[j], ";")) break;
      if (is_punct(t[j], ",") && j + 1 < end &&
          t[j + 1].kind == TokKind::kIdentifier &&
          !name_keyword_banned(t[j + 1].text)) {
        out.insert(t[j + 1].text);
      }
    }
  }
  return out;
}

std::vector<TokenRange> function_bodies(const Tokens& t) {
  std::vector<TokenRange> out;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_punct(t[i], "{")) continue;
    // Statement head: tokens since the previous ';', '{', or '}'.
    std::size_t head = i;
    while (head > 0 && !is_punct(t[head - 1], ";") &&
           !is_punct(t[head - 1], "{") && !is_punct(t[head - 1], "}")) {
      --head;
    }
    bool container = false;
    bool has_paren = false;
    for (std::size_t j = head; j < i; ++j) {
      if (t[j].kind == TokKind::kIdentifier &&
          (t[j].text == "namespace" || t[j].text == "struct" ||
           t[j].text == "class" || t[j].text == "union" ||
           t[j].text == "enum")) {
        container = true;
      }
      if (is_punct(t[j], "(")) has_paren = true;
    }
    if (container && !has_paren) continue;  // descend, don't record
    const std::size_t body_end = match_brace_end(t, i);
    out.push_back(TokenRange{i, body_end});
    i = body_end - 1;  // outermost only: skip the whole body
  }
  return out;
}

namespace {

/// Index of the open token matching the close token at `close`, scanning
/// backward but not below `floor`; npos when unmatched.
std::size_t match_group_back(const Tokens& t, std::size_t close,
                             std::size_t floor, const char* open_text,
                             const char* close_text) {
  int depth = 0;
  for (std::size_t j = close + 1; j-- > floor;) {
    if (is_punct(t[j], close_text)) ++depth;
    if (is_punct(t[j], open_text)) {
      --depth;
      if (depth == 0) return j;
    }
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace

Lvalue walk_lvalue_back(const Tokens& t, std::size_t last,
                        std::size_t floor) {
  Lvalue lv;
  if (last >= t.size() || last < floor) return lv;
  std::size_t j = last;
  const std::size_t npos = static_cast<std::size_t>(-1);
  // Trailing subscript/call groups: v[i][j], m(r, c).
  while (j > floor) {
    std::size_t open = npos;
    if (is_punct(t[j], "]")) {
      open = match_group_back(t, j, floor, "[", "]");
    } else if (is_punct(t[j], ")")) {
      open = match_group_back(t, j, floor, "(", ")");
    } else {
      break;
    }
    if (open == npos || open == 0) return lv;
    lv.groups.push_back(TokenRange{open + 1, j});
    j = open - 1;
  }
  if (t[j].kind != TokKind::kIdentifier) return lv;
  // Qualifier/member chain: a.b, p->c, ns::x, f(...).m, v[i].w.
  while (j >= floor + 2 &&
         (is_punct(t[j - 1], ".") || is_punct(t[j - 1], "->") ||
          is_punct(t[j - 1], "::"))) {
    const std::size_t before = j - 2;
    if (t[before].kind == TokKind::kIdentifier) {
      j = before;
      continue;
    }
    std::size_t open = npos;
    if (is_punct(t[before], "]")) {
      open = match_group_back(t, before, floor, "[", "]");
    } else if (is_punct(t[before], ")")) {
      open = match_group_back(t, before, floor, "(", ")");
    }
    if (open == npos || open <= floor ||
        t[open - 1].kind != TokKind::kIdentifier) {
      break;
    }
    lv.groups.push_back(TokenRange{open + 1, before});
    j = open - 1;
  }
  lv.base = t[j].text;
  lv.chain_begin = j;
  lv.chain_end = last + 1;
  lv.ok = true;
  return lv;
}

std::string chain_key(const Tokens& t, const Lvalue& lv) {
  std::string key;
  for (std::size_t j = lv.chain_begin; j < lv.chain_end; ++j) {
    key += t[j].text;
  }
  return key;
}

std::vector<TokenRange> loop_ranges(const Tokens& t, std::size_t begin,
                                    std::size_t end) {
  std::vector<TokenRange> out;
  if (end > t.size()) end = t.size();
  for (std::size_t i = begin; i < end; ++i) {
    const bool head =
        (is_ident(t[i], "for") || is_ident(t[i], "while")) && i + 1 < end &&
        is_punct(t[i + 1], "(");
    const bool do_head = is_ident(t[i], "do");
    if (!head && !do_head) continue;
    // `while (...)` of a do-while tail was already covered by the `do`.
    if (head && is_ident(t[i], "while") && !out.empty() &&
        out.back().contains(i)) {
      continue;
    }
    out.push_back(TokenRange{i, statement_end(t, i)});
  }
  return out;
}

}  // namespace lrt::analyze
