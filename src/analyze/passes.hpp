// The project-specific analysis passes.
//
// Each pass walks lexed token streams (analyze/lexer.hpp) and appends
// findings; pass names are the vocabulary used by suppression comments,
// the baseline file, and --pass selection:
//
//   layer-dag              module include order + cycle detection
//   collective-divergence  Comm collectives under rank-dependent control
//   omp-race               writes to shared variables inside omp regions
//                          (scope-aware; see analyze/scope.hpp)
//   hot-path-purity        no allocation/locks/IO in -O3 TUs and
//                          omp-containing functions
//   phase-registry         Span/ScopedPhase/PhaseTimer names and
//                          --require-phase args must be registered
//   phase-registry-sync    committed registry header matches generator
//   counter-registry       obs::counter("...") literals must be listed
//                          in src/obs/counters.def
//   counter-registry-sync  committed counter header matches generator
//   naked-new-delete       RAII codebase: no naked new/delete in src/
//   banned-volatile        volatile is not a synchronization primitive
//   banned-thread          std::thread outside par/runtime + par/check
//   banned-sleep           no sleep_for/sleep_until waiting in src/
//   parent-include         no `#include "../..."` anywhere
//   pragma-once            every src/ header starts with #pragma once
//
// See docs/STATIC_ANALYSIS.md for the rationale behind each.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "analyze/analyzer.hpp"
#include "analyze/lexer.hpp"

namespace lrt::analyze {

class CallGraph;

/// Shared input for one analysis run.
struct PassContext {
  const Config* config = nullptr;
  const std::vector<LexedFile>* files = nullptr;
  std::vector<Finding>* findings = nullptr;
  /// Project call graph + function summaries (analyze/callgraph.hpp);
  /// null in reduced test setups — passes then skip the interprocedural
  /// checks and degrade to their PR-5 lexical behavior.
  const CallGraph* graph = nullptr;

  bool enabled(const std::string& pass) const {
    return config->passes.empty() || config->passes.count(pass) != 0;
  }
};

/// Shared token vocabulary. The scoped passes and the call-graph summary
/// builder must agree on what counts as a write, an allocation, I/O, a
/// lock, or a collective, so the sets live here rather than per-pass.
const std::set<std::string>& assign_ops();        ///< =, +=, ..., >>=
const std::set<std::string>& mutating_methods();  ///< push_back, resize, ...
const std::set<std::string>& heap_fns();          ///< malloc, free, ...
const std::set<std::string>& lock_types();        ///< mutex, lock_guard, ...
const std::set<std::string>& io_fns();            ///< printf, fopen, ...
const std::set<std::string>& io_streams();        ///< cout, ofstream, ...
const std::set<std::string>& collective_names();  ///< barrier, allreduce, ...

/// Identifiers that mark a condition as rank-dependent (rank, my_rank,
/// is_root, ...), shared by collective-divergence and its tests.
bool is_rank_marker(const Token& tok);

/// The bottom-up module layering of src/ enforced by layer-dag. A module
/// may include itself and anything at the same or a lower index.
const std::vector<std::string>& layer_order();

void run_layer_dag(const PassContext& ctx);
void run_collective_divergence(const PassContext& ctx);
void run_phase_registry(const PassContext& ctx);
void run_pattern_gates(const PassContext& ctx);

/// Scope-aware passes (analyze/scoped_passes.cpp, built on
/// analyze/scope.hpp). omp-race flags writes to shared variables inside
/// `#pragma omp parallel/for/simd` regions; hot-path-purity flags heap
/// allocation, locking, and I/O in -O3-promoted TUs (Config::hot_files)
/// and in functions containing an omp region; counter-registry requires
/// every obs::counter("...") literal to name a Config::counter_registry
/// entry.
void run_omp_race(const PassContext& ctx);
void run_hot_path_purity(const PassContext& ctx);
void run_counter_registry(const PassContext& ctx);

/// Compares the committed src/obs/counter_registry.hpp against what the
/// generator produces from src/obs/counters.def.
void run_counter_registry_sync(const PassContext& ctx);

/// Scans one shell script for `--require-phase NAME` arguments (the
/// validate_trace CI gate) and `--gate METRIC:PCT` arguments (the
/// lrt-report regression gate) and flags names that reference no
/// registered phase, registered counter, or known bench metric.
/// Separate entry point because shell scripts don't go through the C++
/// lexer.
void run_phase_registry_shell(const PassContext& ctx, const std::string& path,
                              const std::string& text);

/// Compares the committed src/obs/phase_registry.hpp against what the
/// generator produces from src/obs/phases.def.
void run_phase_registry_sync(const PassContext& ctx);

}  // namespace lrt::analyze
