// SARIF 2.1.0 output for lrt-analyze, so CI systems and editors that
// speak the OASIS Static Analysis Results Interchange Format can ingest
// findings without knowing the lrt.analyze/1 schema.
//
// The document carries the minimum required properties plus what the
// gate semantics need: one reportingDescriptor per ran pass, one result
// per finding (level "error" for new findings, "note" for resolved
// ones), and a `suppressions` entry distinguishing inline allows
// (kind "inSource") from baseline entries (kind "external").
#pragma once

#include "analyze/analyzer.hpp"
#include "obs/json.hpp"

namespace lrt::analyze {

/// The SARIF 2.1.0 document for one run.
obs::json::Value report_to_sarif(const Config& config, const Report& report);

}  // namespace lrt::analyze
