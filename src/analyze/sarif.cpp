#include "analyze/sarif.hpp"

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace lrt::analyze {

namespace {

using obs::json::Value;

Value str(const std::string& s) {
  Value v;
  v.kind = Value::Kind::kString;
  v.string = s;
  return v;
}

Value num(double d) {
  Value v;
  v.kind = Value::Kind::kNumber;
  v.number = d;
  return v;
}

Value object() {
  Value v;
  v.kind = Value::Kind::kObject;
  return v;
}

Value array() {
  Value v;
  v.kind = Value::Kind::kArray;
  return v;
}

}  // namespace

Value report_to_sarif(const Config& config, const Report& report) {
  // One reportingDescriptor per pass that ran, in reporting order;
  // results reference them by index.
  std::vector<std::string> ran;
  std::map<std::string, std::size_t> rule_index;
  for (const std::string& name : all_pass_names()) {
    if (!config.passes.empty() && config.passes.count(name) == 0) continue;
    rule_index[name] = ran.size();
    ran.push_back(name);
  }

  Value rules = array();
  for (const std::string& name : ran) {
    Value rule = object();
    rule.object.emplace_back("id", str(name));
    Value desc = object();
    desc.object.emplace_back("text",
                             str("lrt-analyze pass '" + name +
                                 "'; see docs/STATIC_ANALYSIS.md"));
    rule.object.emplace_back("shortDescription", std::move(desc));
    rules.array.push_back(std::move(rule));
  }

  Value results = array();
  for (const Finding& f : report.findings) {
    Value result = object();
    result.object.emplace_back("ruleId", str(f.pass));
    const auto it = rule_index.find(f.pass);
    if (it != rule_index.end()) {
      result.object.emplace_back("ruleIndex",
                                 num(static_cast<double>(it->second)));
    }
    result.object.emplace_back(
        "level", str(f.status == Finding::Status::kNew ? "error" : "note"));
    Value message = object();
    message.object.emplace_back("text", str(f.message));
    result.object.emplace_back("message", std::move(message));

    Value artifact = object();
    artifact.object.emplace_back("uri", str(f.file));
    Value region = object();
    region.object.emplace_back("startLine",
                               num(static_cast<double>(f.line)));
    Value physical = object();
    physical.object.emplace_back("artifactLocation", std::move(artifact));
    physical.object.emplace_back("region", std::move(region));
    Value location = object();
    location.object.emplace_back("physicalLocation", std::move(physical));
    Value locations = array();
    locations.array.push_back(std::move(location));
    result.object.emplace_back("locations", std::move(locations));

    if (f.status != Finding::Status::kNew) {
      Value suppression = object();
      suppression.object.emplace_back(
          "kind", str(f.status == Finding::Status::kSuppressed ? "inSource"
                                                               : "external"));
      Value suppressions = array();
      suppressions.array.push_back(std::move(suppression));
      result.object.emplace_back("suppressions", std::move(suppressions));
    }
    results.array.push_back(std::move(result));
  }

  Value driver = object();
  driver.object.emplace_back("name", str("lrt-analyze"));
  driver.object.emplace_back("informationUri",
                             str("docs/STATIC_ANALYSIS.md"));
  driver.object.emplace_back("rules", std::move(rules));
  Value tool = object();
  tool.object.emplace_back("driver", std::move(driver));

  Value run = object();
  run.object.emplace_back("tool", std::move(tool));
  run.object.emplace_back("results", std::move(results));
  Value runs = array();
  runs.array.push_back(std::move(run));

  Value root = object();
  root.object.emplace_back(
      "$schema",
      str("https://json.schemastore.org/sarif-2.1.0.json"));
  root.object.emplace_back("version", str("2.1.0"));
  root.object.emplace_back("runs", std::move(runs));
  return root;
}

}  // namespace lrt::analyze
