#include "analyze/passes.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "analyze/callgraph.hpp"
#include "analyze/registry_gen.hpp"

namespace lrt::analyze {

namespace {

using Tokens = std::vector<Token>;

bool is_punct(const Token& tok, const char* text) {
  return tok.kind == TokKind::kPunct && tok.text == text;
}

bool is_ident(const Token& tok, const char* text) {
  return tok.kind == TokKind::kIdentifier && tok.text == text;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool in_dir(const std::string& path, const std::string& dir) {
  return starts_with(path, dir + "/");
}

void add_finding(const PassContext& ctx, std::string pass, std::string file,
                 int line, std::string message) {
  Finding f;
  f.pass = std::move(pass);
  f.file = std::move(file);
  f.line = line;
  f.message = std::move(message);
  ctx.findings->push_back(std::move(f));
}

/// Index of the matching close paren for the open paren at `open`, or
/// tokens.size() when unbalanced.
std::size_t match_paren(const Tokens& tokens, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (is_punct(tokens[i], "(")) ++depth;
    if (is_punct(tokens[i], ")")) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return tokens.size();
}

// ----- layer-dag --------------------------------------------------------------

/// The src/ module for `path` ("src/par/check/verifier.cpp" -> "par"),
/// empty for files outside src/.
std::string module_of(const std::string& path) {
  if (!in_dir(path, "src")) return {};
  const std::size_t start = 4;  // past "src/"
  const std::size_t slash = path.find('/', start);
  if (slash == std::string::npos) return {};
  return path.substr(start, slash - start);
}

/// Module an include path points into ("obs/json.hpp" -> "obs"), empty
/// when the first component is not a known module.
std::string include_module(const std::string& include_path) {
  const std::size_t slash = include_path.find('/');
  if (slash == std::string::npos) return {};
  const std::string head = include_path.substr(0, slash);
  const auto& order = layer_order();
  if (std::find(order.begin(), order.end(), head) == order.end()) return {};
  return head;
}

struct LayerEdge {
  std::string from;
  std::string to;
  std::string file;  ///< first include site creating this edge
  int line = 0;
};

void report_cycles(const PassContext& ctx,
                   const std::map<std::string, std::vector<LayerEdge>>& graph) {
  // Iterative DFS over the module graph; every cycle through the DFS
  // stack is reported once, anchored at the include site of its closing
  // edge. A cycle is baselined when one of its edges is grandfathered
  // (that edge explains the cycle).
  std::set<std::string> done;
  std::set<std::string> reported;
  for (const auto& [start, unused] : graph) {
    (void)unused;
    if (done.count(start) != 0) continue;
    std::vector<std::string> stack;
    std::set<std::string> on_stack;
    // (module, next edge index) DFS frames.
    std::vector<std::pair<std::string, std::size_t>> frames;
    frames.emplace_back(start, 0);
    stack.push_back(start);
    on_stack.insert(start);
    while (!frames.empty()) {
      auto& [node, next] = frames.back();
      const auto it = graph.find(node);
      const std::size_t degree = it == graph.end() ? 0 : it->second.size();
      if (next >= degree) {
        done.insert(node);
        on_stack.erase(node);
        stack.pop_back();
        frames.pop_back();
        continue;
      }
      const LayerEdge& edge = it->second[next];
      ++next;
      if (on_stack.count(edge.to) != 0) {
        // Cycle: the stack suffix starting at edge.to, closed by `edge`.
        const auto begin =
            std::find(stack.begin(), stack.end(), edge.to);
        std::vector<std::string> cycle(begin, stack.end());
        std::ostringstream names;
        bool baselined = false;
        for (std::size_t i = 0; i < cycle.size(); ++i) {
          const std::string& from = cycle[i];
          const std::string& to = cycle[(i + 1) % cycle.size()];
          names << from << " -> ";
          if (ctx.config->baseline_layer_edges.count(from + "->" + to) != 0) {
            baselined = true;
          }
        }
        names << edge.to;
        std::string key = names.str();
        if (reported.insert(key).second) {
          Finding f;
          f.pass = "layer-dag";
          f.file = edge.file;
          f.line = edge.line;
          f.message = "module cycle: " + key;
          if (baselined) f.status = Finding::Status::kBaselined;
          ctx.findings->push_back(std::move(f));
        }
        continue;
      }
      if (done.count(edge.to) != 0) continue;
      frames.emplace_back(edge.to, 0);
      stack.push_back(edge.to);
      on_stack.insert(edge.to);
    }
  }
}

}  // namespace

const std::vector<std::string>& layer_order() {
  // Bottom-up. obs sits directly above common because the whole numeric
  // stack is instrumented (PR 2). The one legacy back-edge common -> obs
  // (common/timer.hpp's ScopedPhase shim) was retired when the shim
  // moved into obs/; the layer DAG has no grandfathered edges left.
  // ft (resilience) sits between io and par: checkpoints build on io-level
  // plumbing only, while the parallel runtime (retry around sends), the
  // solvers, and the driver all consume ft.
  static const std::vector<std::string> kOrder = {
      "common", "obs", "grid",   "la",   "fft",   "io",
      "ft",     "par", "dft",    "kmeans", "isdf", "tddft", "analyze"};
  return kOrder;
}

void run_layer_dag(const PassContext& ctx) {
  const auto& order = layer_order();
  auto rank_of = [&](const std::string& module) {
    const auto it = std::find(order.begin(), order.end(), module);
    return static_cast<std::size_t>(it - order.begin());
  };

  std::map<std::string, std::vector<LayerEdge>> graph;
  std::set<std::string> seen_edges;
  for (const LexedFile& file : *ctx.files) {
    const std::string from = module_of(file.path);
    if (from.empty()) continue;
    for (const Token& tok : file.tokens) {
      if (tok.kind != TokKind::kIncludePath) continue;
      const std::string to = include_module(tok.text);
      if (to.empty() || to == from) continue;
      if (seen_edges.insert(from + "->" + to).second) {
        graph[from].push_back(LayerEdge{from, to, file.path, tok.line});
      }
      if (rank_of(from) < rank_of(to)) {
        Finding f;
        f.pass = "layer-dag";
        f.file = file.path;
        f.line = tok.line;
        f.message = "layer violation: module '" + from + "' includes '" +
                    tok.text + "' from higher layer '" + to +
                    "' (order: " + from + " < " + to + ")";
        if (ctx.config->baseline_layer_edges.count(from + "->" + to) != 0) {
          f.status = Finding::Status::kBaselined;
        }
        ctx.findings->push_back(std::move(f));
      }
    }
  }
  report_cycles(ctx, graph);
}

// ----- collective-divergence --------------------------------------------------

const std::set<std::string>& collective_names() {
  static const std::set<std::string> kNames = {
      "barrier",    "bcast",       "reduce",        "allreduce",
      "alltoall",   "alltoallv",   "allgather",     "allgatherv",
      "gather",     "scatter",     "split",         "i_alltoallv",
      "i_allgatherv"};
  return kNames;
}

bool is_rank_marker(const Token& tok) {
  if (tok.kind != TokKind::kIdentifier) return false;
  return tok.text == "rank" || tok.text == "rank_" || tok.text == "myrank" ||
         tok.text == "my_rank" || tok.text == "world_rank" ||
         tok.text == "is_root";
}

namespace {

void divergence_scan(const PassContext& ctx, const LexedFile& file,
                     std::size_t file_index) {
  const Tokens& t = file.tokens;
  struct Region {
    bool brace;          ///< brace block vs single statement
    int depth;           ///< brace depth the region opened at
  };
  std::vector<Region> regions;
  int brace_depth = 0;
  // Token index where a rank-dependent body begins (one past the
  // condition's close paren, or one past an `else`); npos when none.
  std::size_t body_at = std::string::npos;

  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];

    if (i == body_at) {
      if (is_punct(tok, "{")) {
        regions.push_back(Region{true, brace_depth});
        body_at = std::string::npos;
      } else if (tok.kind == TokKind::kIdentifier &&
                 (tok.text == "if" || tok.text == "while" ||
                  tok.text == "for" || tok.text == "switch") &&
                 i + 1 < t.size() && is_punct(t[i + 1], "(")) {
        // `else if (...)`: the whole chain is rank-dependent; skip the
        // condition and treat the construct's body as the region.
        const std::size_t close = match_paren(t, i + 1);
        body_at = close + 1;
        i = close;  // loop ++ lands on the body
        continue;
      } else {
        regions.push_back(Region{false, brace_depth});
        body_at = std::string::npos;
      }
    }

    if (tok.kind == TokKind::kIdentifier &&
        (tok.text == "if" || tok.text == "while" || tok.text == "for" ||
         tok.text == "switch") &&
        i + 1 < t.size() && is_punct(t[i + 1], "(")) {
      const std::size_t close = match_paren(t, i + 1);
      bool rank_cond = false;
      for (std::size_t j = i + 2; j < close && j < t.size(); ++j) {
        if (is_rank_marker(t[j])) {
          rank_cond = true;
          break;
        }
      }
      if (rank_cond && close < t.size()) {
        body_at = close + 1;
        i = close;  // skip the condition; collectives there are p2p-free
        continue;
      }
    }

    if (!regions.empty() && tok.kind == TokKind::kIdentifier &&
        collective_names().count(tok.text) != 0 && i > 0 &&
        (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->")) &&
        i + 1 < t.size() && is_punct(t[i + 1], "(")) {
      add_finding(ctx, "collective-divergence", file.path, tok.line,
                  "collective '" + tok.text +
                      "' under rank-dependent control flow: every rank "
                      "must execute the same collective sequence "
                      "(see docs/CONCURRENCY.md)");
    } else if (!regions.empty() && ctx.graph != nullptr &&
               tok.kind == TokKind::kIdentifier && i + 1 < t.size() &&
               is_punct(t[i + 1], "(") &&
               !(i > 0 &&
                 (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->")))) {
      // Reachability: a free call whose callee (transitively) enters a
      // collective diverges just as surely as the collective itself.
      const std::size_t callee = ctx.graph->resolve_call(t, i, file_index);
      if (callee != kNoFunction) {
        const FunctionInfo& fn = ctx.graph->functions()[callee];
        if (fn.enters_collective.holds) {
          add_finding(
              ctx, "collective-divergence", file.path, tok.line,
              "call to '" + tok.text + "' reaches collective '" +
                  fn.enters_collective.what + "' (via " +
                  ctx.graph->fact_chain(callee,
                                        &FunctionInfo::enters_collective) +
                  ") under rank-dependent control flow: every rank must "
                  "execute the same collective sequence "
                  "(see docs/CONCURRENCY.md)");
        }
      }
    }

    auto maybe_close_region = [&](bool was_brace) {
      bool closed = false;
      while (!regions.empty() && regions.back().brace == was_brace &&
             regions.back().depth == brace_depth) {
        regions.pop_back();
        closed = true;
        if (was_brace) break;  // one `}` closes exactly one block
      }
      if (closed && i + 1 < t.size() && is_ident(t[i + 1], "else")) {
        body_at = i + 2;  // else body is rank-dependent too
      }
    };

    if (is_punct(tok, "{")) ++brace_depth;
    if (is_punct(tok, "}")) {
      --brace_depth;
      maybe_close_region(/*was_brace=*/true);
    }
    if (is_punct(tok, ";")) maybe_close_region(/*was_brace=*/false);
  }
}

}  // namespace

void run_collective_divergence(const PassContext& ctx) {
  for (std::size_t i = 0; i < ctx.files->size(); ++i) {
    divergence_scan(ctx, (*ctx.files)[i], i);
  }
}

// ----- phase-registry ---------------------------------------------------------

namespace {

/// True for files whose phase names feed traces and CI gates. Tests are
/// exempt: they exercise the tracer itself with synthetic names.
bool phase_checked_file(const std::string& path) {
  return in_dir(path, "src") || in_dir(path, "bench");
}

}  // namespace

void run_phase_registry(const PassContext& ctx) {
  if (ctx.config->phase_registry.empty()) {
    add_finding(ctx, "phase-registry", "src/obs/phases.def", 1,
                "phase registry is empty or missing; the phase-registry "
                "pass has nothing to check against");
    return;
  }
  static const std::set<std::string> kSinks = {"Span", "ScopedPhase",
                                               "PhaseTimer"};
  for (const LexedFile& file : *ctx.files) {
    if (!phase_checked_file(file.path)) continue;
    const Tokens& t = file.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdentifier || kSinks.count(t[i].text) == 0) {
        continue;
      }
      // Constructor forms: `Span("x")`, `Span name("x")`. Anything else
      // (declarations, qualified names, comments) has no literal args.
      std::size_t open = std::string::npos;
      if (i + 1 < t.size() && is_punct(t[i + 1], "(")) {
        open = i + 1;
      } else if (i + 2 < t.size() && t[i + 1].kind == TokKind::kIdentifier &&
                 is_punct(t[i + 2], "(")) {
        open = i + 2;
      }
      if (open == std::string::npos) continue;
      const std::size_t close = match_paren(t, open);
      for (std::size_t j = open + 1; j < close && j < t.size(); ++j) {
        if (t[j].kind != TokKind::kString) continue;
        if (ctx.config->phase_registry.count(t[j].text) != 0) continue;
        add_finding(ctx, "phase-registry", file.path, t[j].line,
                    t[i].text + " name \"" + t[j].text +
                        "\" is not registered in src/obs/phases.def "
                        "(add it there and regenerate, or use a "
                        "registered name)");
      }
    }
  }
}

void run_phase_registry_shell(const PassContext& ctx, const std::string& path,
                              const std::string& text) {
  if (ctx.config->phase_registry.empty()) return;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip shell comments (approximate: '#' at start or after space).
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '#' && (i == 0 || line[i - 1] == ' ' ||
                             line[i - 1] == '\t')) {
        line.erase(i);
        break;
      }
    }
    const std::string flag = "--require-phase";
    std::size_t pos = 0;
    while ((pos = line.find(flag, pos)) != std::string::npos) {
      pos += flag.size();
      while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) {
        ++pos;
      }
      std::string name;
      while (pos < line.size() && line[pos] != ' ' && line[pos] != '\t' &&
             line[pos] != '\\') {
        name.push_back(line[pos]);
        ++pos;
      }
      if (!name.empty() && (name.front() == '"' || name.front() == '\'')) {
        name.erase(name.begin());
        if (!name.empty() && (name.back() == '"' || name.back() == '\'')) {
          name.pop_back();
        }
      }
      if (name.empty() || name[0] == '$') continue;  // variable: runtime check
      if (ctx.config->phase_registry.count(name) == 0) {
        add_finding(ctx, "phase-registry", path, lineno,
                    "--require-phase \"" + name +
                        "\" is not registered in src/obs/phases.def");
      }
    }
    // `lrt-report --gate METRIC:PCT` arguments must reference a registered
    // phase, a registered counter, or a known bench metric — a typo'd gate
    // matches nothing and the regression check silently never fires.
    // Bench metric names are not registry-backed; enumerate the ones the
    // bench mains emit.
    static const std::set<std::string> kBenchMetrics = {
        "wall_seconds",      "comm_seconds",
        "busy_seconds",      "gemm_mpi_share_pct",
        "speedup_vs_1rank",  "parallel_efficiency_pct",
        "kmeans_seconds",    "qrcp_seconds",
        "qrcp_randomized_seconds", "speedup_kmeans_vs_qrcp",
        "isdf_err_kmeans",   "isdf_err_qrcp",
        "seconds",           "seconds_best",
        "gflops",            "speedup_vs_ref",
        "bytes_per_point",   "kept_points",
        "iterations",        "objective",
    };
    const std::string gate_flag = "--gate";
    pos = 0;
    while ((pos = line.find(gate_flag, pos)) != std::string::npos) {
      pos += gate_flag.size();
      // Word boundary: `--gate-max-collective-calls` (validate_bench)
      // shares the prefix and is not a report gate.
      if (pos < line.size() && line[pos] != ' ' && line[pos] != '\t') {
        continue;
      }
      while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) {
        ++pos;
      }
      std::string arg;
      while (pos < line.size() && line[pos] != ' ' && line[pos] != '\t' &&
             line[pos] != '\\') {
        arg.push_back(line[pos]);
        ++pos;
      }
      if (!arg.empty() && (arg.front() == '"' || arg.front() == '\'')) {
        arg.erase(arg.begin());
        if (!arg.empty() && (arg.back() == '"' || arg.back() == '\'')) {
          arg.pop_back();
        }
      }
      if (arg.empty() || arg[0] == '$') continue;  // variable: runtime check
      const std::size_t colon = arg.rfind(':');
      if (colon == std::string::npos || colon == 0 || colon + 1 >= arg.size()) {
        add_finding(ctx, "phase-registry", path, lineno,
                    "--gate \"" + arg +
                        "\" is malformed; expected METRIC:MAX_REGRESS_PCT");
        continue;
      }
      const std::string metric = arg.substr(0, colon);
      if (ctx.config->phase_registry.count(metric) == 0 &&
          ctx.config->counter_registry.count(metric) == 0 &&
          kBenchMetrics.count(metric) == 0) {
        add_finding(ctx, "phase-registry", path, lineno,
                    "--gate metric \"" + metric +
                        "\" names no registered phase, registered counter, "
                        "or known bench metric");
      }
    }
  }
}

void run_phase_registry_sync(const PassContext& ctx) {
  const std::string def_path = ctx.config->root + "/src/obs/phases.def";
  const std::string header_path =
      ctx.config->root + "/src/obs/phase_registry.hpp";
  std::string def_text;
  std::string header_text;
  try {
    def_text = read_file(def_path);
  } catch (const std::exception&) {
    add_finding(ctx, "phase-registry-sync", "src/obs/phases.def", 1,
                "missing phase definition file");
    return;
  }
  try {
    header_text = read_file(header_path);
  } catch (const std::exception&) {
    add_finding(ctx, "phase-registry-sync", "src/obs/phase_registry.hpp", 1,
                "missing generated registry header; run "
                "`lrt-analyze gen-phases --write`");
    return;
  }
  const std::string expected =
      generate_phase_registry_header(parse_phases_def_entries(def_text));
  if (header_text != expected) {
    add_finding(ctx, "phase-registry-sync", "src/obs/phase_registry.hpp", 1,
                "out of sync with src/obs/phases.def; run "
                "`lrt-analyze gen-phases --write`");
  }
}

// ----- migrated pattern gates -------------------------------------------------

namespace {

/// std::thread is allowed only in the runtime (which implements the rank
/// threads) and the verifier (whose watchdog is sanctioned).
bool thread_allowed_file(const std::string& path) {
  return starts_with(path, "src/par/runtime") ||
         starts_with(path, "src/par/check/");
}

void pattern_gates_scan(const PassContext& ctx, const LexedFile& file) {
  const bool in_src = in_dir(file.path, "src");
  const Tokens& t = file.tokens;

  const bool check_new = ctx.enabled("naked-new-delete") && in_src;
  const bool check_volatile = ctx.enabled("banned-volatile") && in_src;
  const bool check_thread = ctx.enabled("banned-thread") && in_src &&
                            !thread_allowed_file(file.path);
  const bool check_sleep = ctx.enabled("banned-sleep") && in_src;
  const bool check_parent = ctx.enabled("parent-include");

  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];
    if (check_parent && tok.kind == TokKind::kIncludePath &&
        starts_with(tok.text, "../")) {
      add_finding(ctx, "parent-include", file.path, tok.line,
                  "parent-relative #include \"" + tok.text +
                      "\" (use src/-relative paths)");
    }
    if (tok.kind != TokKind::kIdentifier) continue;
    if (check_new && tok.text == "new") {
      add_finding(ctx, "naked-new-delete", file.path, tok.line,
                  "naked new (use containers or std::make_unique)");
    }
    if (check_new && tok.text == "delete") {
      // `= delete;` declarations are not deallocations.
      if (!(i > 0 && is_punct(t[i - 1], "="))) {
        add_finding(ctx, "naked-new-delete", file.path, tok.line,
                    "naked delete (use containers or smart pointers)");
      }
    }
    if (check_volatile && tok.text == "volatile") {
      add_finding(ctx, "banned-volatile", file.path, tok.line,
                  "volatile is not a synchronization primitive "
                  "(use std::atomic or a mutex)");
    }
    if (check_thread && tok.text == "std" && i + 2 < t.size() &&
        is_punct(t[i + 1], "::") && is_ident(t[i + 2], "thread")) {
      add_finding(ctx, "banned-thread", file.path, tok.line,
                  "std::thread outside par/runtime and par/check "
                  "(route work through par::run)");
    }
    if (check_sleep && (tok.text == "sleep_for" || tok.text == "sleep_until")) {
      add_finding(ctx, "banned-sleep", file.path, tok.line,
                  "sleep-based waiting (use condition variables; the "
                  "verifier provides the watchdog)");
    }
  }

  // Header self-containment: every src/ header declares #pragma once.
  if (ctx.enabled("pragma-once") && in_src &&
      file.path.size() > 4 &&
      file.path.compare(file.path.size() - 4, 4, ".hpp") == 0) {
    bool found = false;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
      if (is_punct(t[i], "#") && is_ident(t[i + 1], "pragma") &&
          is_ident(t[i + 2], "once")) {
        found = true;
        break;
      }
    }
    if (!found) {
      add_finding(ctx, "pragma-once", file.path, 1,
                  "header does not declare #pragma once");
    }
  }
}

}  // namespace

void run_pattern_gates(const PassContext& ctx) {
  for (const LexedFile& file : *ctx.files) pattern_gates_scan(ctx, file);
}

}  // namespace lrt::analyze
