// Lightweight scope and symbol information on top of the lexer.
//
// This is deliberately NOT a C++ parse. The scoped passes (omp-race,
// hot-path-purity) need exactly four things, all recoverable from a
// brace/paren-matched token walk:
//
//   - function body extents (which block of tokens is "one function"),
//   - loop body extents (is this call site inside a for/while/do?),
//   - declaration sites (was this name introduced inside this range?),
//   - parsed `#pragma omp` directives (kinds, privatization clauses, and
//     the token range of the associated construct).
//
// Every helper is heuristic by design; docs/STATIC_ANALYSIS.md documents
// the known false-negative shapes (writes through pointers obtained via
// .data(), pass-by-reference mutation, macro-hidden code). The heuristics
// err toward exemption: a missed finding is recoverable by review, a
// noisy gate gets disabled.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "analyze/lexer.hpp"

namespace lrt::analyze {

/// Half-open token index range.
struct TokenRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  bool contains(std::size_t i) const { return i >= begin && i < end; }
};

/// One parsed `#pragma omp ...` directive.
struct OmpDirective {
  std::size_t begin = 0;  ///< token index of the '#'
  std::size_t end = 0;    ///< one past the last directive token
  int line = 0;
  /// Construct names at the directive's top level: parallel, for, simd,
  /// atomic, critical, single, barrier, ...
  std::set<std::string> kinds;
  /// Variables named in private/firstprivate/lastprivate clauses, after
  /// the ':' of reduction clauses, and before the ':' of linear clauses.
  std::set<std::string> privatized;
  /// Token range of the associated construct (the following block, for
  /// statement, or plain statement); empty for standalone directives
  /// (barrier, taskwait, flush, declare ...).
  TokenRange region;

  bool has_kind(const char* k) const { return kinds.count(k) != 0; }
};

/// Index one past the matching close brace for the open brace at `open`
/// (i.e. a half-open range end); tokens.size() when unbalanced.
std::size_t match_brace_end(const std::vector<Token>& tokens,
                            std::size_t open);

/// One past the end of the statement starting at token `i`: a `{...}`
/// block, a control statement including its body (and any else chain), or
/// a plain statement through its ';'. Nested braces/parens are skipped.
std::size_t statement_end(const std::vector<Token>& tokens, std::size_t i);

/// Parses every `#pragma omp` directive of `file` (using the lexer's
/// DirectiveExtent table, so clause lists continued with backslash
/// splices parse as one directive).
std::vector<OmpDirective> parse_omp_directives(const LexedFile& file);

/// Names declared in tokens [begin, end): the per-function (or
/// per-region) symbol table. Heuristic: an identifier is a declared name
/// when it is preceded by a type-ish token (identifier, '>', '*', '&',
/// '&&') and followed by a declarator-ish token ('=', ';', ',', '(',
/// '[', ')', '{', ':'); multi-declarator statements follow their comma
/// chain. Over-approximates (an expression like `a * b;` reads as a
/// declaration) — acceptable because callers use the result to EXEMPT.
std::set<std::string> collect_declarations(const std::vector<Token>& tokens,
                                           std::size_t begin,
                                           std::size_t end);

/// Function-like body extents (functions, lambdas and constructors at
/// namespace/class scope), outermost only. Namespace/class/enum braces
/// are descended into, not reported.
std::vector<TokenRange> function_bodies(const std::vector<Token>& tokens);

/// Extents of for/while/do statements (header + body) inside
/// [begin, end).
std::vector<TokenRange> loop_ranges(const std::vector<Token>& tokens,
                                    std::size_t begin, std::size_t end);

/// A parsed lvalue expression ending at some token: the leftmost base
/// identifier, the member/qualifier chain extent, and every subscript or
/// call-operator argument group along the way. Shared by the scoped
/// passes (omp-race write targets) and the call graph (parameter-write
/// summaries).
struct Lvalue {
  bool ok = false;
  std::string base;             ///< leftmost identifier
  std::size_t chain_begin = 0;  ///< token index of the base identifier
  std::size_t chain_end = 0;    ///< one past the lvalue's final token
  std::vector<TokenRange> groups;  ///< [...] and (...) argument extents
};

/// Walks backward from `last` (the lvalue's final token) to its leftmost
/// base identifier, collecting subscript/call groups; never looks below
/// `floor`. Fails (ok=false) on anything it does not understand; callers
/// stay silent then.
Lvalue walk_lvalue_back(const std::vector<Token>& tokens, std::size_t last,
                        std::size_t floor);

/// The member chain as written ("result.kept_points"), used to pair
/// growth calls with earlier reserve() calls on the same object.
std::string chain_key(const std::vector<Token>& tokens, const Lvalue& lv);

}  // namespace lrt::analyze
