// lrt-analyze orchestration: file discovery, pass execution, suppression
// and baseline handling, and the `lrt.analyze/1` machine-readable report.
//
// The analyzer is the static leg of the project's three-legged
// correctness tooling: lrt-analyze (before the code runs), the LRT_CHECK
// runtime verifier (while it runs, src/par/check/), and the obs tracer
// (after it ran, src/obs/). See docs/STATIC_ANALYSIS.md.
//
// Findings resolve to one of three states:
//   new        fails the gate (non-zero exit)
//   suppressed an inline `// lrt-analyze: allow(<pass>)` covers the line
//   baselined  the baseline file grandfathers the edge or the whole file
#pragma once

#include <set>
#include <string>
#include <vector>

#include "analyze/lexer.hpp"
#include "obs/json.hpp"

namespace lrt::analyze {

struct Finding {
  std::string pass;
  std::string file;  ///< repo-relative
  int line = 0;
  std::string message;

  enum class Status { kNew, kSuppressed, kBaselined };
  Status status = Status::kNew;
};

/// Everything a run needs; the CLI driver fills this from flags and the
/// committed baseline/registry files, tests fill it by hand.
struct Config {
  std::string root;  ///< repo root (directory holding src/)

  /// Pass names to run; empty means every pass.
  std::set<std::string> passes;

  /// Registered phase/span vocabulary (from src/obs/phases.def). When
  /// empty the phase-registry pass reports a configuration finding
  /// instead of silently passing.
  std::set<std::string> phase_registry;

  /// Registered counter-name vocabulary (from src/obs/counters.def).
  /// Same contract as phase_registry, for the counter-registry pass.
  std::set<std::string> counter_registry;

  /// Repo-relative TUs promoted to -O3 (parsed from src/CMakeLists.txt by
  /// load_hot_tus); the hot-path-purity pass checks these whole files in
  /// addition to every function containing an omp region.
  std::set<std::string> hot_files;

  /// Grandfathered layer edges, as "from->to" module pairs.
  std::set<std::string> baseline_layer_edges;
  /// Whole files grandfathered for a pass, as "pass:path" entries.
  std::set<std::string> baseline_files;

  /// Worker threads for the per-TU lex and call-graph discovery stages
  /// (the `--jobs` flag). 0 = the OpenMP default team size; builds
  /// without OpenMP always run serially. Finding order is deterministic
  /// either way — parallel stages write into index-addressed slots.
  int jobs = 0;
};

struct Report {
  std::vector<Finding> findings;  ///< sorted by (file, line, pass)
  int new_count = 0;
  int suppressed_count = 0;
  int baselined_count = 0;

  bool clean() const { return new_count == 0; }
};

/// Names of every pass, in reporting order.
const std::vector<std::string>& all_pass_names();

/// Parses the baseline file format into `config` (one entry per line):
///
///   # comment
///   layer-dag common -> obs
///   collective-divergence tests/test_par_check.cpp
///
/// Throws lrt::Error on a malformed line.
void load_baseline(const std::string& text, Config* config);

/// Parses the phases.def format (one name per line, '#' comments,
/// anything after the name is description) into a name set.
std::set<std::string> parse_phases_def(const std::string& text);

/// Parses `set_source_files_properties(... COMPILE_OPTIONS "-O3")` blocks
/// out of a src/CMakeLists.txt and fills config->hot_files with the
/// listed TUs as "src/<path>" entries. Blocks without "-O3" are ignored.
void load_hot_tus(const std::string& cmake_text, Config* config);

/// Reads a file into a string. Throws lrt::Error when unreadable.
std::string read_file(const std::string& path);

/// Discovers the .cpp/.hpp files under root/{src,tests,bench,examples},
/// skipping any path containing an `analyze_fixtures` component (the
/// seeded-violation corpus must not fail the real gate). Returned paths
/// are repo-relative with forward slashes, sorted.
std::vector<std::string> discover_sources(const std::string& root);

/// Lexes and analyzes the given repo-relative files plus the tools/*.sh
/// scripts (for `--require-phase` vocabulary checks). This is the whole
/// pipeline: passes, suppressions, baseline, sort.
Report analyze(const Config& config, const std::vector<std::string>& files);

/// Convenience: discover_sources + analyze.
Report analyze_repo(const Config& config);

/// The `lrt.analyze/1` report document.
obs::json::Value report_to_json(const Config& config, const Report& report);

/// Human-readable findings (new ones in full, one summary line). Returns
/// the text rather than printing so tests can assert on it.
std::string report_to_text(const Report& report, bool verbose);

}  // namespace lrt::analyze
